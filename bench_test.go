// Package pandora_test is the benchmark harness: one benchmark per table
// and figure of the paper (each regenerates the artifact through the
// core experiment registry and reports its headline metric), plus
// micro-benchmarks of the substrates the reproduction is built on.
//
// Run with: go test -bench=. -benchmem
package pandora_test

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pandora/internal/asm"
	"pandora/internal/attack"
	"pandora/internal/bsaes"
	"pandora/internal/cache"
	"pandora/internal/channel"
	"pandora/internal/core"
	"pandora/internal/dmp"
	"pandora/internal/ebpf"
	"pandora/internal/leakage"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
)

// benchExperiment runs a registered experiment b.N times and reports the
// chosen metric.
func benchExperiment(b *testing.B, name, metric string, opts core.Options) {
	b.Helper()
	e, ok := core.Get(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	var last core.Result
	for i := 0; i < b.N; i++ {
		res, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Pass {
			b.Fatalf("%s did not reproduce:\n%s", name, res.Text)
		}
		last = res
	}
	if v, ok := last.Metrics[metric]; ok {
		b.ReportMetric(v, metric)
	}
}

// --- One benchmark per paper artifact ---

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1", "mismatches", core.Options{}) }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2", "classes", core.Options{}) }

func BenchmarkFig1URG(b *testing.B) {
	benchExperiment(b, "urg", "correct", core.Options{SecretLen: 4})
}

func BenchmarkFig2and3MLDs(b *testing.B) {
	benchExperiment(b, "mld", "descriptors", core.Options{})
}

func BenchmarkFig4Cases(b *testing.B)  { benchExperiment(b, "fig4", "caseA_silent", core.Options{}) }
func BenchmarkFig5Gadget(b *testing.B) { benchExperiment(b, "fig5", "gap_cycles", core.Options{}) }

func BenchmarkFig6BSAES(b *testing.B) {
	benchExperiment(b, "fig6", "gap_cycles", core.Options{Samples: 20})
}

func BenchmarkFig7Verify(b *testing.B) { benchExperiment(b, "fig7", "jit_len", core.Options{}) }

func BenchmarkKeyRecovery(b *testing.B) {
	benchExperiment(b, "keyrec", "window", core.Options{})
}

// BenchmarkKeyRecoveryFullSweep runs the paper-scale sweep (65536 values
// per slot, up to 524288 online attempts). Expensive: minutes. Enable
// with -timeout high and -bench BenchmarkKeyRecoveryFullSweep -benchtime 1x.
func BenchmarkKeyRecoveryFullSweep(b *testing.B) {
	if testing.Short() {
		b.Skip("full sweep skipped in -short mode")
	}
	if b.N > 1 {
		b.Skip("full sweep is single-shot; use -benchtime 1x")
	}
	benchExperiment(b, "keyrec", "window", core.Options{Full: true})
}

func BenchmarkURGRange(b *testing.B) {
	benchExperiment(b, "urg2level", "lvl2_confirmed", core.Options{})
}

func BenchmarkReuseVariants(b *testing.B) {
	benchExperiment(b, "reuse", "sv_leak", core.Options{})
}

func BenchmarkPrefetchBuffer(b *testing.B) {
	benchExperiment(b, "prefetchbuffer", "correct", core.Options{})
}

func BenchmarkWitnesses(b *testing.B) {
	benchExperiment(b, "witness", "witnesses", core.Options{})
}

// --- Parallel-engine benchmarks ---

// timeExperiment runs an experiment once and returns the wall-clock
// seconds, for computing speedup metrics inside a benchmark.
func timeExperiment(b *testing.B, name string, opts core.Options) float64 {
	b.Helper()
	e, ok := core.Get(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	start := time.Now()
	if res, err := e.Run(opts); err != nil {
		b.Fatal(err)
	} else if !res.Pass {
		b.Fatalf("%s did not reproduce:\n%s", name, res.Text)
	}
	return time.Since(start).Seconds()
}

// BenchmarkRecoverKeyParallel times the full bitslice-AES key recovery
// through the parallel engine at GOMAXPROCS workers and reports the
// speedup over a Parallel=1 run of the same sweep. On a single-core
// host the speedup hovers around 1.0; it grows with available cores
// because the 32 slot sweeps are independent.
func BenchmarkRecoverKeyParallel(b *testing.B) {
	serial := timeExperiment(b, "keyrec", core.Options{Parallel: 1})
	b.ResetTimer()
	var par float64
	for i := 0; i < b.N; i++ {
		par = timeExperiment(b, "keyrec", core.Options{Parallel: runtime.GOMAXPROCS(0)})
	}
	b.ReportMetric(serial/par, "speedup")
}

// BenchmarkAllExperiments times one pass over every registered
// experiment with the parallel engine and reports the speedup over the
// serial pass. Guarded against -short because it runs the whole suite.
func BenchmarkAllExperiments(b *testing.B) {
	if testing.Short() {
		b.Skip("full suite skipped in -short mode")
	}
	runAll := func(workers int) float64 {
		var total float64
		for _, e := range core.Experiments() {
			total += timeExperiment(b, e.Name, core.Options{Parallel: workers})
		}
		return total
	}
	serial := runAll(1)
	b.ResetTimer()
	var par float64
	for i := 0; i < b.N; i++ {
		par = runAll(runtime.GOMAXPROCS(0))
	}
	b.ReportMetric(serial/par, "speedup")
}

// --- Attack-rate benchmarks (how fast the attacker's online loop runs) ---

// BenchmarkBSAESOnlineAttempt measures one silent-store probe (victim
// call + instrumented attacker call). The paper's worst case is 524288
// such attempts.
func BenchmarkBSAESOnlineAttempt(b *testing.B) {
	var vk, vp, ak [16]byte
	rng := rand.New(rand.NewSource(1))
	rng.Read(vk[:])
	rng.Read(vp[:])
	rng.Read(ak[:])
	a, err := attack.NewBSAESAttack(attack.DefaultBSAESConfig(), vk, vp, ak)
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := a.Calibrate(); err != nil {
		b.Fatal(err)
	}
	truth := a.VictimSlices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate hit/miss probes.
		v := truth[0] ^ uint16(i&1)
		if _, _, err := a.RecoverSliceDirect(0, []uint16{v}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkURGLeakByte measures leaking one protected byte (replays,
// priming, sandbox run and probing included).
func BenchmarkURGLeakByte(b *testing.B) {
	u, err := attack.NewURG(attack.DefaultURGConfig(), []byte{0x42})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := u.LeakByte(0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkPipelineLoop(b *testing.B) {
	prog := asm.MustAssemble(`
		addi x1, x0, 1000
		addi x2, x0, 0
	loop:
		add  x2, x2, x1
		addi x1, x1, -1
		bne  x1, x0, loop
		halt
	`)
	m, err := pipeline.New(pipeline.DefaultConfig(), mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := m.Run(prog)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(3003)/float64(cycles), "IPC")
}

func BenchmarkBSAESEncrypt(b *testing.B) {
	key := make([]byte, 16)
	pt := make([]byte, 16)
	for i := 0; i < b.N; i++ {
		if _, err := bsaes.Encrypt(pt, key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeakageAnalyzer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := leakage.NewAnalyzer().TableI()
		if len(tbl) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkVerifier(b *testing.B) {
	env := &ebpf.Env{Maps: []ebpf.Map{
		{Name: "Z", ElemSize: 8, NElems: 24, Base: 0x10000},
		{Name: "Y", ElemSize: 1, NElems: 4096, Base: 0x100000},
		{Name: "X", ElemSize: 64, NElems: 256, Base: 0x200000},
	}}
	prog := ebpf.Figure7Program(0, 1, 2, 24, 8, 1, 1)
	for i := 0; i < b.N; i++ {
		if err := ebpf.Verify(prog, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJIT(b *testing.B) {
	env := &ebpf.Env{Maps: []ebpf.Map{
		{Name: "Z", ElemSize: 8, NElems: 24, Base: 0x10000},
		{Name: "Y", ElemSize: 1, NElems: 4096, Base: 0x100000},
		{Name: "X", ElemSize: 64, NElems: 256, Base: 0x200000},
	}}
	prog := ebpf.Figure7Program(0, 1, 2, 24, 8, 1, 1)
	for i := 0; i < b.N; i++ {
		if _, err := ebpf.Compile(prog, env); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrimeProbeRound(b *testing.B) {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	pp, err := channel.NewPrimeProbe(h, channel.L2, 0x10000000)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pp.PrimeAll()
		h.Access(0x200000+uint64(i%256)*64, 0, false)
		if hot := channel.HotSets(pp.ProbeAll()); len(hot) != 1 {
			b.Fatalf("hot = %v", hot)
		}
	}
}

func BenchmarkIMPTrainAndChase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := mem.New()
		zb, yb := uint64(0x1000), uint64(0x40000)
		vals := []uint64{5, 150, 9, 277, 23, 361, 130, 490, 31, 170, 402, 44}
		for j, v := range vals {
			m.Write(zb+uint64(j*4), 4, v)
			m.Write(yb+v*4, 4, v+100)
		}
		h := cache.MustNewHierarchy(cache.DefaultHierConfig())
		p := dmp.New(dmp.DefaultConfig(dmp.ThreeLevel), h, m)
		h.AddListener(p)
		for j := 0; j < len(vals); j++ {
			za := zb + uint64(j*4)
			z := m.Read(za, 4)
			h.Access(za, z, false)
			ya := yb + z*4
			y := m.Read(ya, 4)
			h.Access(ya, y, false)
			h.Access(0x80000+y*4, 0, false)
		}
		if l1, _ := p.Confirmed(); !l1 {
			b.Fatal("IMP did not train")
		}
	}
}

func BenchmarkDefenses(b *testing.B) {
	benchExperiment(b, "defenses", "pack_cost", core.Options{})
}

func BenchmarkCapacity(b *testing.B) {
	benchExperiment(b, "capacity", "cache_measured_bits", core.Options{})
}

func BenchmarkCovertChannels(b *testing.B) {
	benchExperiment(b, "covert", "ss_cycles_per_bit", core.Options{})
}

// BenchmarkSilentStoreCovertBit measures the raw silent-store covert
// channel bit rate.
func BenchmarkSilentStoreCovertBit(b *testing.B) {
	c, err := attack.NewSilentStoreChannel()
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := c.TransmitByte(0xAA); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(i&1 == 0); err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.Receive(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContinuousOptimization(b *testing.B) {
	benchExperiment(b, "continuous", "fusion_benefit", core.Options{})
}

func BenchmarkBlindEvictionSet(b *testing.B) {
	benchExperiment(b, "blind", "tests", core.Options{})
}
