GO ?= go

.PHONY: build test race ci check check-quick scan fault fault-quick trace trace-quick serve serve-quick serve-chaos contract contract-quick statscheck bench bench-cycles bench-cycles-check bench-serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci:
	./ci.sh

# Differential oracle: full sweep (512 programs, all 512 toggle masks
# including the speculation bits).
check: build
	$(GO) run ./cmd/pandora check

# Bounded variant used by CI, under the race detector.
check-quick: build
	$(GO) run -race ./cmd/pandora check -quick

# Leakage scanner: taint-based leak assertions (AES, eBPF, StLF,
# spec-vectorization, self-test), under the race detector.
scan: build
	$(GO) run -race ./cmd/pandora scan -quick

# Fault-injection campaign: full sweep (8 trials per site class).
fault: build
	$(GO) run ./cmd/pandora fault

# Bounded campaign used by CI, under the race detector.
fault-quick: build
	$(GO) run -race ./cmd/pandora fault -quick

# Cycle-accurate trace of the aes scenario, Chrome trace-event format
# (load TRACE_aes.json in Perfetto or chrome://tracing).
trace: build
	$(GO) run ./cmd/pandora trace -scenario aes -format chrome -o TRACE_aes.json

# Trace validation suite used by CI, under the race detector.
trace-quick: build
	$(GO) run -race ./cmd/pandora trace -quick

# Leakage-analysis-as-a-service: HTTP job API with the content-addressed
# result cache in .pandora-cache (Ctrl-C drains gracefully).
serve: build
	$(GO) run ./cmd/pandora serve

# Service self-test used by CI, under the race detector: job round-trips
# per type, cache hit byte-identity, tamper rejection.
serve-quick: build
	$(GO) run -race ./cmd/pandora serve -quick

# Chaos self-test used by CI, under the race detector: injected panics
# retried to success, deterministic failures cached, deadline
# enforcement, crash-recovery replay, journal tamper rejection, circuit
# shedding.
serve-chaos: build
	$(GO) run -race ./cmd/pandora serve -chaos-quick

# Leakage-contract enumeration: every crypto kernel × all 512
# optimization-toggle masks × every cache variant, regenerating the
# committed CONTRACT_table.json golden (byte-identical at any -parallel).
contract: build
	$(GO) run ./cmd/pandora contract -json -o CONTRACT_table.json
	git diff --stat CONTRACT_table.json

# Bounded gate used by CI, under the race detector: full kernel library
# over the rotating mask schedule, designed verdicts pinned, report
# byte-identical at 1 and 8 workers.
contract-quick: build
	$(GO) run -race ./cmd/pandora contract -quick

# Stats-encapsulation lint: no cross-package raw Stats writes.
statscheck:
	$(GO) run ./tools/statscheck -v internal cmd

# Regenerate BENCH_parallel.json (serial vs parallel wall-clock).
bench: build
	$(GO) run ./cmd/pandora bench -parallel 4 -json BENCH_parallel.json

# Re-measure single-core cycle-loop throughput and rewrite
# BENCH_cycles.json (refuses to overwrite a baseline from a different
# CPU count without -force).
bench-cycles: build
	$(GO) run ./cmd/pandora bench -cycles -json BENCH_cycles.json

# Regression gate: fail if measured cycles/sec fall more than 10% below
# the committed BENCH_cycles.json baseline. Skips (exit 0, with a
# warning) when the committed baseline was recorded on a machine with a
# different CPU count.
bench-cycles-check: build
	$(GO) run ./cmd/pandora bench -cycles -check -json BENCH_cycles.json

# Benchmark the job service (cold vs warm jobs/sec, latency percentiles)
# and rewrite BENCH_serve.json (refuses to overwrite a baseline from a
# different CPU count without -force).
bench-serve: build
	$(GO) run ./cmd/pandora bench -serve -json BENCH_serve.json

clean:
	$(GO) clean ./...
