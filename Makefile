GO ?= go

.PHONY: build test race ci check check-quick scan bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci:
	./ci.sh

# Differential oracle: full sweep (500 programs, all 128 toggle masks).
check: build
	$(GO) run ./cmd/pandora check

# Bounded variant used by CI.
check-quick: build
	$(GO) run ./cmd/pandora check -quick

# Leakage scanner: taint-based leak assertions (AES, eBPF, self-test).
scan: build
	$(GO) run ./cmd/pandora scan -quick

# Regenerate BENCH_parallel.json (serial vs parallel wall-clock).
bench: build
	$(GO) run ./cmd/pandora bench -parallel 4 -json BENCH_parallel.json

clean:
	$(GO) clean ./...
