GO ?= go

.PHONY: build test race ci bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

ci:
	./ci.sh

# Regenerate BENCH_parallel.json (serial vs parallel wall-clock).
bench: build
	$(GO) run ./cmd/pandora bench -parallel 4 -json BENCH_parallel.json

clean:
	$(GO) clean ./...
