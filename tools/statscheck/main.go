// Command statscheck enforces the stats-encapsulation rule introduced
// with the observability layer: no package may write through another
// package's exported Stats value. Counters are owned by the package
// that declares them; external readers go through getters
// (Machine.Stats(), Cache.Stats()) or the obs.Registry snapshots.
//
// The check is syntactic: it walks every non-test Go file under the
// given roots (default internal/ and cmd/) and flags assignment or
// increment statements whose left-hand side selects through a field or
// value named Stats — unless the file's package declares `type Stats`
// itself, in which case the writes are the owner maintaining its own
// counters.
//
// With -v (before the roots) the clean path also lists the Stats-owning
// packages, so CI output shows which packages the rule currently
// covers (internal/cache, internal/pipeline, internal/serve, ...).
//
// Exit status is non-zero when any violation is found.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	verbose := false
	if len(args) > 0 && args[0] == "-v" {
		verbose = true
		args = args[1:]
	}
	roots := args
	if len(roots) == 0 {
		roots = []string{"internal", "cmd"}
	}
	var files []string
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			files = append(files, path)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "statscheck: %v\n", err)
			os.Exit(2)
		}
	}
	sort.Strings(files)

	fset := token.NewFileSet()
	parsed := make(map[string]*ast.File, len(files))
	// A package owns Stats writes if any of its files declares the type;
	// group ownership by directory (one package per directory here).
	ownsStats := make(map[string]bool)
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "statscheck: %v\n", err)
			os.Exit(2)
		}
		parsed[path] = f
		if declaresStatsType(f) {
			ownsStats[filepath.Dir(path)] = true
		}
	}

	violations := 0
	for _, path := range files {
		if ownsStats[filepath.Dir(path)] {
			continue
		}
		ast.Inspect(parsed[path], func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					if sel := statsSelector(lhs); sel != nil {
						report(fset, sel, &violations)
					}
				}
			case *ast.IncDecStmt:
				if sel := statsSelector(s.X); sel != nil {
					report(fset, sel, &violations)
				}
			}
			return true
		})
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "statscheck: %d violation(s)\n", violations)
		os.Exit(1)
	}
	if verbose {
		owners := make([]string, 0, len(ownsStats))
		for dir := range ownsStats {
			owners = append(owners, dir)
		}
		sort.Strings(owners)
		fmt.Printf("statscheck: %d Stats-owning package(s): %s\n", len(owners), strings.Join(owners, " "))
	}
	fmt.Println("statscheck: ok")
}

// declaresStatsType reports whether the file declares `type Stats`.
func declaresStatsType(f *ast.File) bool {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			if ts, ok := spec.(*ast.TypeSpec); ok && ts.Name.Name == "Stats" {
				return true
			}
		}
	}
	return false
}

// statsSelector returns the Stats selector inside an lvalue expression,
// if the write goes through one: `x.Stats = ...`, `x.Stats.Field++`,
// `a.b.Stats.Field += n`.
func statsSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "Stats" {
				return x
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func report(fset *token.FileSet, sel *ast.SelectorExpr, violations *int) {
	pos := fset.Position(sel.Sel.Pos())
	fmt.Fprintf(os.Stderr, "%s: write through exported Stats field from outside its package\n", pos)
	*violations++
}
