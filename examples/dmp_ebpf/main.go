// dmp_ebpf runs the paper's Figure 1 / Section V-B proof of concept: a
// verifier-approved eBPF program trains the 3-level indirect-memory
// prefetcher, which then dereferences an attacker-planted pointer into
// protected memory and transmits the secret through the cache — a
// universal read gadget without speculative execution.
package main

import (
	"fmt"
	"log"

	"pandora/internal/attack"
	"pandora/internal/ebpf"
)

func main() {
	secret := []byte("open the box")
	cfg := attack.DefaultURGConfig()
	u, err := attack.NewURG(cfg, secret)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("attacker bytecode (Figure 7a — accepted by the verifier):")
	for i, in := range u.BPFProgram() {
		fmt.Printf("  %2d: %v\n", i, in)
	}

	unchecked := ebpf.Figure7ProgramUnchecked(0, 1, 2, 24, 8, 1, 1)
	fmt.Printf("\nthe same program without NULL checks: %v\n", ebpf.Verify(unchecked, u.Env))

	fmt.Printf("\nleaking %d bytes of protected memory the sandbox can never read...\n\n", len(secret))
	got, correct, err := u.LeakRange(len(secret))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  leaked   : %q\n", string(got))
	fmt.Printf("  expected : %q\n", string(secret))
	fmt.Printf("  accuracy : %d/%d bytes\n", correct, len(secret))
	fmt.Printf("  prefetcher reads inside the protected region: %d\n", u.IMP.Stats.ProtectedReads)
	fmt.Println("\nThe program itself returned 0 every run — every out-of-bounds access")
	fmt.Println("was architecturally blocked. The prefetcher did the reading.")
}
