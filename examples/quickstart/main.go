// Quickstart: assemble a small program, run it on the cycle-level
// out-of-order core, and watch a microarchitectural optimization turn a
// secret operand value into a timing difference.
package main

import (
	"fmt"
	"log"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
	"pandora/internal/uopt"
)

func run(cfg pipeline.Config, secret int64) (int64, error) {
	src := fmt.Sprintf(`
		addi x1, x0, %d      # "secret" multiplier operand
		addi x2, x0, 12345
		addi x5, x0, 64
	loop:
		mul  x3, x1, x2      # constant-time on a plain multiplier...
		mul  x3, x1, x3
		addi x5, x5, -1
		bne  x5, x0, loop
		halt
	`, secret)
	m, err := pipeline.New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		return 0, err
	}
	res, err := m.Run(asm.MustAssemble(src))
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

func main() {
	baseline := pipeline.DefaultConfig()

	zeroSkip := pipeline.DefaultConfig()
	zeroSkip.Simplifier = &uopt.Simplifier{ZeroSkipMul: true}

	fmt.Println("quickstart: the same program, two secrets, two machines")
	fmt.Println()
	for _, secret := range []int64{0, 3} {
		b, err := run(baseline, secret)
		if err != nil {
			log.Fatal(err)
		}
		z, err := run(zeroSkip, secret)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  secret=%d   baseline: %4d cycles   zero-skip multiplier: %4d cycles\n", secret, b, z)
	}
	fmt.Println()
	fmt.Println("On the baseline the cycle counts match: multiplier operands are safe.")
	fmt.Println("With the zero-skip multiplier (computation simplification), the secret")
	fmt.Println("is visible in time — the Table I transition S → U, live.")
}
