// mld_playground shows how to use the leakage-descriptor framework as a
// library: define an MLD for a hypothetical optimization you are
// considering, then let the machinery tell you what it leaks, to whom,
// and how fast — the paper's recipe for "architecting security-conscious
// microarchitecture" applied before building anything.
package main

import (
	"fmt"
	"math/bits"

	"pandora/internal/mld"
)

func main() {
	// A hypothetical "operand-compressed ALU" someone proposes: skip the
	// upper-half adder when both operands fit in 32 bits.
	halfAdder := &mld.Descriptor{
		Name:   "half_width_adder",
		Class:  "pipeline compression (proposed)",
		Params: []mld.Param{{Name: "i1", Kind: mld.KindInst}},
		Eval: func(a mld.Assignment) uint64 {
			i1 := a["i1"].(mld.Inst)
			return mld.Bit(bits.Len64(i1.Args[0]) <= 32 && bits.Len64(i1.Args[1]) <= 32)
		},
	}

	fmt.Println("descriptor:", halfAdder)
	fmt.Println("category:  ", halfAdder.Signature().Category())

	// 1. Does it leak operands at all? Vary one operand, hold the other.
	samples := []uint64{0, 1, 1 << 10, 1 << 31, 1 << 32, 1 << 60}
	part := mld.PartitionOver(halfAdder, func(v uint64) mld.Assignment {
		return mld.Assignment{"i1": mld.Inst{Args: [2]uint64{v, 5}}}
	}, samples)
	fmt.Printf("\noperand partition over %v:\n  %v blocks -> ", samples, mld.Blocks(part))
	if mld.Trivial(part) {
		fmt.Println("Safe")
	} else {
		fmt.Println("Unsafe: a secret operand's width is observable")
	}

	// 2. How much per observation?
	var outs []uint64
	for _, v := range samples {
		outs = append(outs, halfAdder.MustEval(mld.Assignment{"i1": mld.Inst{Args: [2]uint64{v, 5}}}))
	}
	fmt.Printf("channel capacity bound: %.2f bits/observation\n", mld.Capacity(outs))

	// 3. What can an active attacker (controlling the other operand) do?
	best, ctrl := mld.BestControlledPartition(halfAdder,
		func(priv, ctrl uint64) mld.Assignment {
			return mld.Assignment{"i1": mld.Inst{Args: [2]uint64{priv, ctrl}}}
		}, samples, []uint64{1, 1 << 40})
	fmt.Printf("best active preconditioning: other operand = %#x -> %d distinguishable classes\n",
		ctrl, mld.Blocks(best))

	// 4. Compare with the repaired design: always drive both halves.
	fixed := &mld.Descriptor{
		Name:   "full_width_adder",
		Class:  "pipeline compression (repaired)",
		Params: []mld.Param{{Name: "i1", Kind: mld.KindInst}},
		Eval:   func(mld.Assignment) uint64 { return 0 },
	}
	part = mld.PartitionOver(fixed, func(v uint64) mld.Assignment {
		return mld.Assignment{"i1": mld.Inst{Args: [2]uint64{v, 5}}}
	}, samples)
	fmt.Printf("\nrepaired design partition: %d block(s) -> Safe\n", mld.Blocks(part))
	fmt.Println("\nVerdict before a single gate is built: the proposal turns every ADD")
	fmt.Println("into a transmitter of operand significance. Either pin the width")
	fmt.Println("(cost: the optimization) or gate the fast path on public state only.")
}
