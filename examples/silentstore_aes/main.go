// silentstore_aes runs the paper's Section V-A proof of concept end to
// end: a constant-time bitslice AES-128 server, silent stores in the
// store queue, the Figure 5 amplification gadget, the Figure 6 timing
// histograms, and full key recovery via the invertible key schedule.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pandora/internal/attack"
	"pandora/internal/histo"
)

func main() {
	var victimKey, victimPlain, attackerKey [16]byte
	rng := rand.New(rand.NewSource(2021))
	rng.Read(victimKey[:])
	rng.Read(victimPlain[:])
	rng.Read(attackerKey[:])

	a, err := attack.NewBSAESAttack(attack.DefaultBSAESConfig(), victimKey, victimPlain, attackerKey)
	if err != nil {
		log.Fatal(err)
	}

	silent, nonSilent, err := a.Calibrate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibration: silent call = %d cycles, non-silent = %d cycles (gap %d)\n\n",
		silent, nonSilent, nonSilent-silent)

	correct, incorrect, err := a.Figure6(30, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Figure 6 — runtime distributions for one instrumented store:")
	fmt.Print(histo.Render(map[string]*histo.Histogram{
		"Correct guess (silent)":       correct,
		"Incorrect guess (non-silent)": incorrect,
	}, 40))

	// Recover the key. The demo narrows each 16-bit sweep to a 256-value
	// window around the truth so it finishes in seconds; `pandora keyrec
	// -full` runs the paper's full 65536-per-slot sweep.
	truth := a.VictimSlices()
	fmt.Println("\nrecovering the eight spilled slices via silent-store probes...")
	key, err := a.RecoverKey(func(slot int) []uint16 {
		base := truth[slot] &^ 0xff
		out := make([]uint16, 256)
		for i := range out {
			out[i] = base + uint16(i)
		}
		return out
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvictim key    : %x\n", victimKey)
	fmt.Printf("recovered key : %x\n", key)
	if key == victimKey {
		fmt.Println("key recovery: SUCCESS — constant-time AES broken through silent stores")
	} else {
		fmt.Println("key recovery: FAILED")
	}
}
