// covertchannel demonstrates the receiver primitive every attack in this
// repository builds on: a Prime+Probe covert channel through cache sets.
// A sender encodes a byte as which L2 set it touches; the receiver
// recovers it from probe latencies alone.
package main

import (
	"fmt"
	"log"

	"pandora/internal/cache"
	"pandora/internal/channel"
)

func main() {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	pp, err := channel.NewPrimeProbe(h, channel.L2, 0x10000000)
	if err != nil {
		log.Fatal(err)
	}

	const senderBase = uint64(0x200000)
	message := []byte("pandora")
	fmt.Printf("transmitting %q one byte per Prime+Probe round...\n\n", message)

	var received []byte
	for _, b := range message {
		pp.PrimeAll()

		// Sender: one load whose set index encodes the byte.
		h.Access(senderBase+uint64(b)*64, 0, false)

		// Receiver: find the hot set.
		hot := channel.HotSets(pp.ProbeAll())
		if len(hot) != 1 {
			log.Fatalf("expected one hot set, got %v", hot)
		}
		baseSet := pp.SetOf(senderBase)
		decoded := byte((hot[0] - baseSet + pp.Sets()) % pp.Sets())
		received = append(received, decoded)
		fmt.Printf("  sent %q -> hot set %3d -> received %q\n", b, hot[0], decoded)
	}

	fmt.Printf("\nreceived: %q\n", received)
	fmt.Println("\nThis is the channel (Section II-1). The paper's point is what NEW data")
	fmt.Println("reaches it: with a data memory-dependent prefetcher, the 'sender' above")
	fmt.Println("is hardware dereferencing memory the attacker could never read.")
}
