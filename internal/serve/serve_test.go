package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// startServer runs a service on an ephemeral port with a fresh cache
// directory and tears it down (gracefully) at test end.
func startServer(t *testing.T) (base string, srv *Server) {
	t.Helper()
	return startServerWith(t, Options{CacheDir: t.TempDir()})
}

// startServerWith is startServer with explicit options (CacheDir is
// filled in when empty).
func startServerWith(t *testing.T, opts Options) (base string, srv *Server) {
	t.Helper()
	if opts.CacheDir == "" {
		opts.CacheDir = t.TempDir()
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	t.Cleanup(func() {
		cancel()
		if err := <-served; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return "http://" + ln.Addr().String(), srv
}

// post submits a spec and decodes the job view.
func post(t *testing.T, base string, spec JobSpec) (JobView, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode submit response (HTTP %d): %v", resp.StatusCode, err)
	}
	return view, resp.StatusCode
}

// wait blocks until the job settles and returns its final view.
func wait(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?wait=55s")
		if err != nil {
			t.Fatalf("GET job %s: %v", id, err)
		}
		var view JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
		if view.State == string(stateDone) || view.State == string(stateFailed) {
			return view
		}
	}
	t.Fatalf("job %s did not settle", id)
	return JobView{}
}

// smallCheck is a fast check-job spec used across the tests.
var smallCheck = JobSpec{Kind: KindCheck, Programs: 4, Masks: 1, Seed: 7}

func TestSubmitMissThenByteIdenticalHit(t *testing.T) {
	base, srv := startServer(t)

	first, code := post(t, base, smallCheck)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	done := wait(t, base, first.ID)
	if done.State != string(stateDone) || done.Cached {
		t.Fatalf("first run: state=%s cached=%v error=%q; want fresh done", done.State, done.Cached, done.Error)
	}
	if len(done.Result) == 0 {
		t.Fatalf("first run returned no result body")
	}

	// Identical resubmission: served from the store, byte-identical,
	// without executing again.
	second, code := post(t, base, smallCheck)
	if code != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200", code)
	}
	if !second.Cached || second.State != string(stateDone) {
		t.Fatalf("resubmit: state=%s cached=%v; want cached done", second.State, second.Cached)
	}
	if !bytes.Equal(done.Result, second.Result) {
		t.Fatalf("cached result differs from computed result:\n%s\nvs\n%s", done.Result, second.Result)
	}
	if got := srv.stats.Executed.Load(); got != 1 {
		t.Fatalf("executed %d jobs, want 1 (cache hit must not re-execute)", got)
	}
	if got := srv.stats.CacheHits.Load(); got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}

	// The two submissions also used different job IDs but one key.
	if first.Key != second.Key || first.ID == second.ID {
		t.Fatalf("key/id bookkeeping: first %s/%s second %s/%s", first.ID, first.Key, second.ID, second.Key)
	}
}

func TestConcurrentIdenticalSubmissionsSingleflight(t *testing.T) {
	base, srv := startServer(t)
	spec := JobSpec{Kind: KindCheck, Programs: 24, Masks: 2, Seed: 11}

	const clients = 8
	var wg sync.WaitGroup
	views := make([]JobView, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _ := post(t, base, spec)
			views[i] = v
		}(i)
	}
	wg.Wait()

	for i, v := range views {
		if v.ID == "" {
			t.Fatalf("client %d got no job", i)
		}
		final := wait(t, base, v.ID)
		if final.State != string(stateDone) {
			t.Fatalf("client %d job %s: state=%s error=%q", i, v.ID, final.State, final.Error)
		}
	}
	// The acceptance criterion: one execution total, no matter how the
	// submissions raced (followers either coalesced onto the flight or
	// hit the cache after it settled).
	if got := srv.stats.Executed.Load(); got != 1 {
		t.Fatalf("executed %d jobs for %d identical submissions, want 1", got, clients)
	}
	if hits, dedup := srv.stats.CacheHits.Load(), srv.stats.Deduped.Load(); hits+dedup != clients-1 {
		t.Fatalf("hits(%d)+deduped(%d) = %d, want %d", hits, dedup, hits+dedup, clients-1)
	}
}

func TestTamperedEntryIsRejectedAndRecomputed(t *testing.T) {
	base, srv := startServer(t)

	first, _ := post(t, base, smallCheck)
	done := wait(t, base, first.ID)
	if done.State != string(stateDone) {
		t.Fatalf("first run failed: %s", done.Error)
	}

	// Corrupt the stored body on disk behind the server's back.
	path := srv.Store().EntryPath(first.Key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	raw[len(raw)-2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("corrupt entry: %v", err)
	}

	second, _ := post(t, base, smallCheck)
	final := wait(t, base, second.ID)
	if final.State != string(stateDone) || final.Cached {
		t.Fatalf("post-tamper resubmit: state=%s cached=%v; want fresh recompute", final.State, final.Cached)
	}
	if !bytes.Equal(final.Result, done.Result) {
		t.Fatalf("recomputed result differs from the original")
	}
	if got := srv.stats.CacheRejected.Load(); got != 1 {
		t.Fatalf("cache rejected = %d, want 1", got)
	}
	if got := srv.stats.Executed.Load(); got != 2 {
		t.Fatalf("executed %d, want 2 (original + recompute)", got)
	}
	// The recompute restored an authentic entry: a third submission hits.
	third, _ := post(t, base, smallCheck)
	if !third.Cached {
		t.Fatalf("third submission missed the repaired cache")
	}
}

func TestEventsStreamJSONLAndSSE(t *testing.T) {
	base, _ := startServer(t)
	spec := JobSpec{Kind: KindTrace, Scenario: "stlf", Format: "report"}
	v, _ := post(t, base, spec)
	wait(t, base, v.ID)

	// JSONL: full replay, phases in lifecycle order, probe events from
	// the obs bridge in between.
	resp, err := http.Get(base + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type %q", ct)
	}
	phases := map[string]int{}
	var lastSeq = -1
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("event seq gap: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		phases[ev.Phase]++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan events: %v", err)
	}
	for _, want := range []string{PhaseQueued, PhaseStarted, PhaseProbe, PhaseDone} {
		if phases[want] == 0 {
			t.Fatalf("no %q event in stream (saw %v)", want, phases)
		}
	}

	// SSE: same stream framed as text/event-stream data: lines.
	req, _ := http.NewRequest("GET", base+"/v1/jobs/"+v.ID+"/events", nil)
	req.Header.Set("Accept", "text/event-stream")
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events (SSE): %v", err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content-type %q", ct)
	}
	ssc := bufio.NewScanner(sresp.Body)
	ssc.Buffer(make([]byte, 1<<20), 1<<20)
	dataLines := 0
	for ssc.Scan() {
		line := ssc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("SSE line %q lacks data: prefix", line)
		}
		dataLines++
	}
	if dataLines != lastSeq+1 {
		t.Fatalf("SSE delivered %d events, JSONL delivered %d", dataLines, lastSeq+1)
	}
}

func TestStatsEndpointExposesRegistry(t *testing.T) {
	base, _ := startServer(t)
	v, _ := post(t, base, smallCheck)
	wait(t, base, v.ID)

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var stats map[string]uint64
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	for name, want := range map[string]uint64{
		"serve.submitted":    1,
		"serve.executed":     1,
		"serve.completed":    1,
		"serve.cache.misses": 1,
	} {
		if stats[name] != want {
			t.Fatalf("stats[%s] = %d, want %d (full: %v)", name, stats[name], want, stats)
		}
	}
	if _, ok := stats["serve.jobs.tracked"]; !ok {
		t.Fatalf("stats missing serve.jobs.tracked gauge")
	}
}

func TestSubmitValidation(t *testing.T) {
	base, _ := startServer(t)
	for _, tc := range []JobSpec{
		{Kind: "juggle"},
		{Kind: KindScan},
		{Kind: KindBench, Experiment: "no-such-figure"},
		{Kind: KindTrace, Scenario: "stlf", Format: "yaml"},
		{Kind: KindFault, Sites: []string{"bogus-site"}},
	} {
		body, _ := json.Marshal(tc)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %+v: HTTP %d, want 400", tc, resp.StatusCode)
		}
	}
	// Unknown fields are rejected too (strict decode).
	resp, err := http.Post(base+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"check","bogus_field":1}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestListJobs(t *testing.T) {
	base, _ := startServer(t)
	a, _ := post(t, base, smallCheck)
	wait(t, base, a.ID)
	b, _ := post(t, base, JobSpec{Kind: KindScan, Scenario: "stlf"})
	wait(t, base, b.ID)

	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET jobs: %v", err)
	}
	defer resp.Body.Close()
	var views []JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(views) != 2 {
		t.Fatalf("listed %d jobs, want 2", len(views))
	}
	for i := 1; i < len(views); i++ {
		if views[i-1].ID >= views[i].ID {
			t.Fatalf("list not id-ordered: %s before %s", views[i-1].ID, views[i].ID)
		}
	}
	for _, v := range views {
		if len(v.Result) != 0 {
			t.Fatalf("list includes result bodies")
		}
	}
}

func TestRunnersCoverEveryKindDeterministically(t *testing.T) {
	// Every kind's runner produces the same result bytes when run twice
	// — the property the content-addressed cache is built on. Specs are
	// the same scaled-down jobs the -quick self-test submits.
	specs := map[JobKind]JobSpec{
		KindBench: {Kind: KindBench, Experiment: "fig4"},
		KindCheck: smallCheck,
		KindScan:  {Kind: KindScan, Scenario: "stlf"},
		KindFault: {Kind: KindFault, Trials: 1, Sites: []string{"fence-stuck"}, Seed: 3},
		KindTrace: {Kind: KindTrace, Scenario: "stlf", Format: "jsonl"},
		KindContract: {Kind: KindContract, Kernels: []string{"montladder-cswap"},
			Variants: []string{"default-lru"}, Masks: 4},
	}
	for _, kind := range Kinds() {
		spec, ok := specs[kind]
		if !ok {
			t.Fatalf("no spec for kind %s", kind)
		}
		key, canon, err := Key(spec)
		if err != nil {
			t.Fatalf("%s: Key: %v", kind, err)
		}
		runner, ok := Runner(kind)
		if !ok {
			t.Fatalf("no runner for kind %s", kind)
		}
		run := func() []byte {
			res, err := runner.Run(context.Background(), canon, RunOpts{})
			if err != nil {
				t.Fatalf("%s: Run: %v", kind, err)
			}
			res.Key = key
			b, err := MarshalResult(res)
			if err != nil {
				t.Fatalf("%s: marshal: %v", kind, err)
			}
			return b
		}
		if a, b := run(), run(); !bytes.Equal(a, b) {
			t.Fatalf("%s: two runs of one canonical spec produced different bytes", kind)
		}
	}
}

func TestGracefulDrainRunsQueuedJobs(t *testing.T) {
	// A server whose context is cancelled right after accepting work
	// still runs the queued job to a stored result before Serve returns.
	dir := t.TempDir()
	srv, err := New(Options{CacheDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	v, code := post(t, base, smallCheck)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if got := srv.stats.Completed.Load(); got != 1 {
		t.Fatalf("drain completed %d jobs, want 1", got)
	}
	key, _, err := Key(smallCheck)
	if err != nil {
		t.Fatalf("Key: %v", err)
	}
	if _, outcome, _ := srv.Store().Get(key); outcome != Hit {
		t.Fatalf("drained job %s left no cache entry (outcome %v)", v.ID, outcome)
	}
}
