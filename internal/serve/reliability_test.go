package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"pandora/internal/faults"
)

// TestTransientFailureRetriedToSuccess: a chaos plan that panics every
// job's first attempt must cost retries, not results — and the stored
// result carries its attempt history.
func TestTransientFailureRetriedToSuccess(t *testing.T) {
	base, srv := startServerWith(t, Options{
		Chaos: &faults.ChaosPlan{Seed: 1, PanicPerMille: 1000, FirstAttemptsOnly: true},
	})
	v, _ := post(t, base, smallCheck)
	final := wait(t, base, v.ID)
	if final.State != string(stateDone) {
		t.Fatalf("chaos-hit job: state=%s error=%q, want done after retry", final.State, final.Error)
	}
	if got := srv.stats.Retries.Load(); got != 1 {
		t.Fatalf("retries = %d, want 1", got)
	}
	var res JobResult
	if err := json.Unmarshal(final.Result, &res); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if len(res.Attempts) != 1 || res.Attempts[0].Class != "transient" {
		t.Fatalf("stored attempts = %+v, want one transient failure", res.Attempts)
	}
	if !strings.Contains(res.Attempts[0].Error, "injected chaos panic") {
		t.Fatalf("attempt error %q does not name the injected chaos", res.Attempts[0].Error)
	}
	// The event stream shows the retry.
	resp, err := http.Get(base + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	var events bytes.Buffer
	events.ReadFrom(resp.Body)
	if !bytes.Contains(events.Bytes(), []byte(`"phase":"retry"`)) {
		t.Fatalf("no retry phase in event stream:\n%s", events.String())
	}
}

// TestTransientExhaustionVisiblyFails: chaos on every attempt runs the
// budget out; the job fails visibly, is journaled done (no replay), and
// the failure is NOT cached — a clean resubmission succeeds.
func TestTransientExhaustionVisiblyFails(t *testing.T) {
	dir := t.TempDir()
	base, srv := startServerWith(t, Options{
		CacheDir:    dir,
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		Chaos:       &faults.ChaosPlan{Seed: 3, StallPerMille: 1000},
	})
	v, _ := post(t, base, smallCheck)
	final := wait(t, base, v.ID)
	if final.State != string(stateFailed) || !strings.Contains(final.Error, "attempts exhausted") {
		t.Fatalf("state=%s error=%q, want exhausted failure", final.State, final.Error)
	}
	if got := srv.stats.Retries.Load(); got != 1 {
		t.Fatalf("retries = %d, want 1 (budget 2)", got)
	}
	if pending, _ := srv.WALDiagnostics(); pending != 0 {
		t.Fatalf("exhausted job left %d pending journal records, want 0 (visibly failed)", pending)
	}
	// Not cached: the store has no entry for the key.
	if _, outcome, _ := srv.Store().Get(v.Key); outcome != Miss {
		t.Fatalf("transient exhaustion was cached (outcome %v)", outcome)
	}
}

// TestDeterministicFailureCachedNotRetried: a spec that fails the same
// way every time (unassemblable source) is never retried, and its
// failure is cached — the resubmission serves the failure without
// executing.
func TestDeterministicFailureCachedNotRetried(t *testing.T) {
	base, srv := startServerWith(t, Options{})
	badScan := JobSpec{Kind: KindScan, Source: "this is not assembly\nhalt halt halt\n"}

	v, _ := post(t, base, badScan)
	final := wait(t, base, v.ID)
	if final.State != string(stateFailed) || final.Error == "" {
		t.Fatalf("state=%s error=%q, want deterministic failure", final.State, final.Error)
	}
	if got := srv.stats.Retries.Load(); got != 0 {
		t.Fatalf("deterministic failure was retried %d times", got)
	}

	second, _ := post(t, base, badScan)
	sfinal := wait(t, base, second.ID)
	if sfinal.State != string(stateFailed) || !sfinal.Cached {
		t.Fatalf("resubmit: state=%s cached=%v, want cached failure", sfinal.State, sfinal.Cached)
	}
	if sfinal.Error != final.Error {
		t.Fatalf("cached failure error %q differs from original %q", sfinal.Error, final.Error)
	}
	if got := srv.stats.Executed.Load(); got != 1 {
		t.Fatalf("executed %d, want 1 (cached failure must not re-execute)", got)
	}
}

// TestJobDeadlineCancelsRun: a deadline far shorter than the job's
// runtime terminates it mid-simulation through the cooperative
// cancellation checkpoint, as a visible journaled failure.
func TestJobDeadlineCancelsRun(t *testing.T) {
	base, srv := startServerWith(t, Options{})
	big := JobSpec{Kind: KindCheck, Programs: 50000, Masks: 3, Seed: 5, TimeoutMS: 80}
	v, code := post(t, base, big)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: HTTP %d", code)
	}
	final := wait(t, base, v.ID)
	if final.State != string(stateFailed) || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("state=%s error=%q, want deadline failure", final.State, final.Error)
	}
	if got := srv.stats.TimedOut.Load(); got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
	if pending, _ := srv.WALDiagnostics(); pending != 0 {
		t.Fatalf("timed-out job left %d pending journal records (visible failures must be journaled done)", pending)
	}
	// The timeout knob never fragments the cache: the same spec without
	// it hashes to the same key.
	withoutTimeout := big
	withoutTimeout.TimeoutMS = 0
	k1, _, _ := Key(big)
	k2, _, _ := Key(withoutTimeout)
	if k1 != k2 {
		t.Fatalf("TimeoutMS leaked into the cache key: %s vs %s", k1, k2)
	}
}

// TestRestartRecoversCrashedJob is the restart-recovery gate: a process
// that died after journaling an acceptance (but before storing the
// result) is simulated, a new server on the same directory replays the
// job to a stored result, exactly once, byte-identical to a crash-free
// run.
func TestRestartRecoversCrashedJob(t *testing.T) {
	// A crash-free reference run in its own directory.
	refBase, _ := startServerWith(t, Options{})
	ref, _ := post(t, refBase, smallCheck)
	refFinal := wait(t, refBase, ref.ID)
	if refFinal.State != string(stateDone) {
		t.Fatalf("reference run failed: %s", refFinal.Error)
	}

	// The crashed server's remains: an accept record, no done marker,
	// no cache entry.
	dir := t.TempDir()
	key, err := SimulateCrashedJob(dir, smallCheck)
	if err != nil {
		t.Fatalf("SimulateCrashedJob: %v", err)
	}

	srv, err := New(Options{CacheDir: dir})
	if err != nil {
		t.Fatalf("New on crashed dir: %v", err)
	}
	t.Cleanup(srv.Close)
	if got := srv.stats.WALReplayed.Load(); got != 1 {
		t.Fatalf("wal_replayed = %d, want 1", got)
	}
	deadline := time.Now().Add(60 * time.Second)
	var body []byte
	for {
		var outcome Outcome
		body, outcome, _ = srv.Store().Get(key)
		if outcome == Hit {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed job never reached the store")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.stats.Executed.Load(); got != 1 {
		t.Fatalf("executed = %d, want exactly 1", got)
	}
	// The HTTP view re-indents; compare the compact forms byte for byte.
	var gotC, refC bytes.Buffer
	if err := json.Compact(&gotC, bytes.TrimRight(body, "\n")); err != nil {
		t.Fatalf("compact replayed result: %v", err)
	}
	if err := json.Compact(&refC, refFinal.Result); err != nil {
		t.Fatalf("compact reference result: %v", err)
	}
	if !bytes.Equal(gotC.Bytes(), refC.Bytes()) {
		t.Fatalf("replayed result differs from crash-free run:\n%s\nvs\n%s", gotC.Bytes(), refC.Bytes())
	}
	if pending, _ := srv.WALDiagnostics(); pending != 0 {
		t.Fatalf("journal still pending after replay: %d", pending)
	}
}

// TestRestartCompletedJobNotReExecuted: the other crash window — the
// result reached the store but the done marker was lost. Replay must
// serve the cache, not execute again.
func TestRestartCompletedJobNotReExecuted(t *testing.T) {
	dir := t.TempDir()
	base, srv := startServerWith(t, Options{CacheDir: dir})
	v, _ := post(t, base, smallCheck)
	if final := wait(t, base, v.ID); final.State != string(stateDone) {
		t.Fatalf("first run failed: %s", final.Error)
	}
	srv.Close()

	// Forge the lost done marker: a fresh accept with no done.
	if _, err := SimulateCrashedJob(dir, smallCheck); err != nil {
		t.Fatalf("SimulateCrashedJob: %v", err)
	}
	srv2, err := New(Options{CacheDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv2.Close)
	if got := srv2.stats.WALReplayed.Load(); got != 1 {
		t.Fatalf("wal_replayed = %d, want 1", got)
	}
	if got := srv2.stats.Executed.Load(); got != 0 {
		t.Fatalf("executed = %d, want 0 (result was already cached)", got)
	}
	if pending, _ := srv2.WALDiagnostics(); pending != 0 {
		t.Fatalf("journal still pending: %d", pending)
	}
}

// TestShutdownDrainsQueuedJobsUnderChaos is the SIGTERM-drain gate:
// jobs queued at shutdown — including ones whose first attempts die to
// injected panics — still run to stored results before Serve returns.
func TestShutdownDrainsQueuedJobsUnderChaos(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{
		CacheDir:  dir,
		RetryBase: time.Millisecond,
		Chaos:     &faults.ChaosPlan{Seed: 11, PanicPerMille: 1000, FirstAttemptsOnly: true},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	specs := []JobSpec{
		{Kind: KindCheck, Programs: 4, Masks: 1, Seed: 21},
		{Kind: KindCheck, Programs: 4, Masks: 1, Seed: 22},
		{Kind: KindScan, Scenario: "stlf"},
	}
	keys := make([]string, len(specs))
	for i, spec := range specs {
		v, code := post(t, base, spec)
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit %d: HTTP %d (%s)", i, code, v.Error)
		}
		keys[i] = v.Key
	}
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}

	for i, key := range keys {
		if _, outcome, _ := srv.Store().Get(key); outcome != Hit {
			t.Fatalf("drained job %d (key %.12s…) left no stored result (outcome %v)", i, key, outcome)
		}
	}
	if got := srv.stats.Retries.Load(); got != uint64(len(specs)) {
		t.Fatalf("retries = %d, want %d (every first attempt panicked)", got, len(specs))
	}
	if pending, _ := srv.WALDiagnostics(); pending != 0 {
		t.Fatalf("journal pending after full drain: %d", pending)
	}
}

// TestShutdownCancelsLongJobAndReplays: a job still running when the
// drain window closes is cancelled through the lifecycle context,
// stays pending in the journal, and a restart replays it.
func TestShutdownCancelsLongJobAndReplays(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Options{CacheDir: dir, DrainWindow: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	long := JobSpec{Kind: KindCheck, Programs: 200000, Masks: 3, Seed: 9}
	v, code := post(t, base, long)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	// Give the job a moment to start executing, then pull the plug.
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	cancel()
	if err := <-served; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if waited := time.Since(start); waited > 20*time.Second {
		t.Fatalf("shutdown took %v; the drain window did not cancel the long job", waited)
	}
	if _, outcome, _ := srv.Store().Get(v.Key); outcome == Hit {
		t.Skipf("long job finished before the drain window; nothing to replay")
	}
	pending, _ := srv.WALDiagnostics()
	if pending != 1 {
		t.Fatalf("cancelled job not pending in journal (pending=%d)", pending)
	}

	// The restart replays it (we don't wait for this huge job to finish
	// — seeing it queued and counted is the recovery property).
	srv2, err := New(Options{CacheDir: dir})
	if err != nil {
		t.Fatalf("New after shutdown: %v", err)
	}
	if got := srv2.stats.WALReplayed.Load(); got != 1 {
		t.Fatalf("wal_replayed = %d, want 1", got)
	}
	srv2.Close() // drain window applies; the replayed job cancels again
}

// TestBreakerShedsAfterConsecutiveFailures: enough deterministic
// failures of one kind open its circuit; the next submission of that
// kind is shed with 503 + Retry-After while other kinds stay admitted.
func TestBreakerShedsAfterConsecutiveFailures(t *testing.T) {
	base, srv := startServerWith(t, Options{BreakerThreshold: 2, BreakerCooldown: time.Hour})
	for i := 0; i < 2; i++ {
		v, _ := post(t, base, JobSpec{Kind: KindScan, Source: "bogus instruction " + strings.Repeat("x", i+1)})
		if final := wait(t, base, v.ID); final.State != string(stateFailed) {
			t.Fatalf("setup failure %d did not fail", i)
		}
	}
	body, _ := json.Marshal(JobSpec{Kind: KindScan, Scenario: "stlf"})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open-circuit submission: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("503 without Retry-After")
	}
	if got := srv.stats.Shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}

	// Other kinds are unaffected.
	v, code := post(t, base, smallCheck)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("check submission during scan outage: HTTP %d", code)
	}
	wait(t, base, v.ID)

	// readyz reports the open circuit.
	rresp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("GET readyz: %v", err)
	}
	defer rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz: HTTP %d, want 503 with an open breaker", rresp.StatusCode)
	}
	var ready struct {
		Ready    bool              `json:"ready"`
		Breakers map[string]string `json:"breakers"`
	}
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatalf("decode readyz: %v", err)
	}
	if ready.Ready || ready.Breakers["scan"] != "open" {
		t.Fatalf("readyz = %+v, want scan breaker open", ready)
	}
}

// TestKindConcurrencyLimitSheds: with a one-job-per-kind cap, a second
// submission while the first occupies the slot is shed.
func TestKindConcurrencyLimitSheds(t *testing.T) {
	base, srv := startServerWith(t, Options{
		KindConcurrency: 1,
		Chaos:           &faults.ChaosPlan{Seed: 5, SlowPerMille: 1000, SlowDelay: 500 * time.Millisecond, FirstAttemptsOnly: true},
	})
	first, code := post(t, base, JobSpec{Kind: KindCheck, Programs: 4, Masks: 1, Seed: 31})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d", code)
	}
	body, _ := json.Marshal(JobSpec{Kind: KindCheck, Programs: 4, Masks: 1, Seed: 32})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-limit submission: HTTP %d, want 503", resp.StatusCode)
	}
	if got := srv.stats.Shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
	wait(t, base, first.ID)
}

// TestHealthEndpoints: liveness always OK, readiness OK on a healthy
// idle server.
func TestHealthEndpoints(t *testing.T) {
	base, _ := startServer(t)
	for path, wantCode := range map[string]int{"/healthz": 200, "/readyz": 200} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("%s: HTTP %d, want %d", path, resp.StatusCode, wantCode)
		}
	}
}
