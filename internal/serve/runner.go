package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"pandora/internal/core"
	"pandora/internal/diffcheck"
	"pandora/internal/faults"
	"pandora/internal/faults/campaign"
	"pandora/internal/kernels"
	"pandora/internal/obs"
	"pandora/internal/taint"
)

// RunOpts carries the execution-local knobs that are deliberately NOT
// part of a job's canonical spec: they change how a result is computed
// or observed, never what it is.
type RunOpts struct {
	// Workers bounds the analysis' internal fan-out (0 = GOMAXPROCS).
	// Results are bit-identical at every worker count.
	Workers int
	// Log receives narrative progress lines (nil = silent). The server
	// bridges it into the job's event stream.
	Log func(format string, args ...any)
	// Probe receives a copy of every obs event for analyses that run
	// under the probe (trace jobs). May be emitted to concurrently.
	Probe obs.Probe
	// Journal / Resume / DumpDir are the fault CLI's checkpoint options;
	// the server leaves them empty.
	Journal string
	Resume  bool
	DumpDir string
}

// JobRunner is one analysis behind the job API. Normalize maps a
// submitted spec to its canonical form (defaults filled, foreign fields
// zeroed, names validated) — the form the job key hashes — and Run
// executes it. Run must be deterministic in the canonical spec: the
// content-addressed cache serves any later submission of the same spec
// the stored bytes without re-executing.
type JobRunner interface {
	Kind() JobKind
	Normalize(spec JobSpec) (JobSpec, error)
	Run(ctx context.Context, spec JobSpec, opts RunOpts) (*JobResult, error)
}

// runners is the registry, one entry per JobKind.
var runners = map[JobKind]JobRunner{
	KindBench:    benchRunner{},
	KindCheck:    checkRunner{},
	KindScan:     scanRunner{},
	KindFault:    faultRunner{},
	KindTrace:    traceRunner{},
	KindContract: contractRunner{},
}

// Runner returns the registered runner for a kind.
func Runner(kind JobKind) (JobRunner, bool) {
	r, ok := runners[kind]
	return r, ok
}

// Kinds lists the job kinds in display order.
func Kinds() []JobKind {
	return []JobKind{KindBench, KindCheck, KindScan, KindFault, KindTrace, KindContract}
}

// benchRunner reproduces one registered core experiment. The bench CLI
// measures wall-clock around experiments; the job returns the
// experiment's own (simulated, deterministic) report and metrics.
type benchRunner struct{}

func (benchRunner) Kind() JobKind { return KindBench }

func (benchRunner) Normalize(spec JobSpec) (JobSpec, error) {
	if spec.Experiment == "" {
		return JobSpec{}, fmt.Errorf("serve: bench job needs an experiment (one of %v)", core.Names())
	}
	if _, ok := core.Get(spec.Experiment); !ok {
		return JobSpec{}, fmt.Errorf("serve: unknown experiment %q (want one of %v)", spec.Experiment, core.Names())
	}
	return JobSpec{
		Experiment: spec.Experiment,
		Samples:    spec.Samples,
		SecretLen:  spec.SecretLen,
		Full:       spec.Full,
	}, nil
}

func (benchRunner) Run(ctx context.Context, spec JobSpec, opts RunOpts) (*JobResult, error) {
	e, ok := core.Get(spec.Experiment)
	if !ok {
		return nil, fmt.Errorf("serve: unknown experiment %q", spec.Experiment)
	}
	res, err := e.Run(core.Options{
		Samples:   spec.Samples,
		SecretLen: spec.SecretLen,
		Full:      spec.Full,
		Parallel:  opts.Workers,
		Trace:     opts.Log,
		Ctx:       ctx,
	})
	if err != nil {
		return nil, err
	}
	out := &JobResult{Kind: KindBench, Pass: res.Pass, Text: res.Text, Metrics: res.Metrics}
	if !res.Pass {
		out.Note = "experiment did not reproduce"
	}
	return out, nil
}

// checkRunner is the differential-oracle sweep (`pandora check`).
type checkRunner struct{}

func (checkRunner) Kind() JobKind { return KindCheck }

func (checkRunner) Normalize(spec JobSpec) (JobSpec, error) {
	if spec.Programs < 0 || spec.Masks < 0 {
		return JobSpec{}, fmt.Errorf("serve: check job: negative programs/masks")
	}
	norm := JobSpec{Seed: spec.Seed, Programs: spec.Programs, Masks: spec.Masks}
	if norm.Seed == 0 {
		norm.Seed = 1
	}
	if norm.Programs == 0 {
		norm.Programs = 512
	}
	if norm.Masks == 0 {
		norm.Masks = 3
	}
	return norm, nil
}

func (checkRunner) Run(ctx context.Context, spec JobSpec, opts RunOpts) (*JobResult, error) {
	rep, err := diffcheck.Check(ctx, diffcheck.Options{
		Programs:        spec.Programs,
		Seed:            spec.Seed,
		MasksPerProgram: spec.Masks,
		Workers:         opts.Workers,
		Log:             opts.Log,
	})
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Kind: KindCheck,
		Pass: rep.Ok(),
		Text: rep.String(),
		Metrics: map[string]float64{
			"programs":    float64(rep.Programs),
			"runs":        float64(rep.Runs),
			"divergences": float64(len(rep.Failures)),
		},
	}
	if !rep.Ok() {
		out.Note = fmt.Sprintf("%d divergence(s)", len(rep.Failures))
	}
	return out, nil
}

// scanRunner is the taint-based leakage scanner (`pandora scan`): a
// built-in scenario, or user assembly whose `.secret` directives (plus
// Secrets entries) declare the labeled regions.
type scanRunner struct{}

func (scanRunner) Kind() JobKind { return KindScan }

func (scanRunner) Normalize(spec JobSpec) (JobSpec, error) {
	switch {
	case spec.Scenario != "" && spec.Source != "":
		return JobSpec{}, fmt.Errorf("serve: scan job: scenario and source are mutually exclusive")
	case spec.Scenario != "":
		if s, ok := core.ScenarioByName(spec.Scenario); !ok || !s.Supports(core.AnalysisScan) {
			return JobSpec{}, fmt.Errorf("serve: unknown scan scenario %q (want one of %v)", spec.Scenario, core.ScanScenarios())
		}
		return JobSpec{Scenario: spec.Scenario}, nil
	case spec.Source != "":
		// The canonical spelling — not the submitted one — goes into the
		// job key, so "vp:8,ss" and "silentstores, vp : 8" share a cache
		// entry.
		machine, err := core.CanonicalMachineSpec(spec.Machine)
		if err != nil {
			return JobSpec{}, fmt.Errorf("serve: scan job: %w", err)
		}
		for _, s := range spec.Secrets {
			if _, err := taint.ParseSecret(s); err != nil {
				return JobSpec{}, fmt.Errorf("serve: scan job: %w", err)
			}
		}
		return JobSpec{Source: spec.Source, Machine: machine, Secrets: spec.Secrets}, nil
	default:
		return JobSpec{}, fmt.Errorf("serve: scan job needs a scenario or source")
	}
}

func (scanRunner) Run(ctx context.Context, spec JobSpec, opts RunOpts) (*JobResult, error) {
	var (
		sum core.ScanSummary
		err error
	)
	if spec.Scenario != "" {
		if opts.Log != nil {
			opts.Log("scan: scenario %s", spec.Scenario)
		}
		sum, err = core.ScanScenario(ctx, spec.Scenario)
	} else {
		if opts.Log != nil {
			opts.Log("scan: %d bytes of source on machine %q", len(spec.Source), spec.Machine)
		}
		var extra []taint.Secret
		for _, s := range spec.Secrets {
			sec, perr := taint.ParseSecret(s)
			if perr != nil {
				return nil, perr
			}
			extra = append(extra, sec)
		}
		sum, err = core.ScanSource(ctx, spec.Source, spec.Machine, extra)
	}
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(sum)
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Kind:   KindScan,
		Pass:   sum.Total == 0,
		Text:   sum.Format(),
		Output: raw,
		Metrics: map[string]float64{
			"total_events":   float64(sum.Total),
			"dropped_events": float64(sum.Dropped),
		},
	}
	if sum.Total > 0 {
		out.Note = fmt.Sprintf("%d leak event(s)", sum.Total)
	}
	return out, nil
}

// faultRunner is the fault-injection campaign (`pandora fault`).
type faultRunner struct{}

func (faultRunner) Kind() JobKind { return KindFault }

func (faultRunner) Normalize(spec JobSpec) (JobSpec, error) {
	if spec.Trials < 0 {
		return JobSpec{}, fmt.Errorf("serve: fault job: negative trials")
	}
	for _, name := range spec.Sites {
		if _, err := faults.ParseSite(name); err != nil {
			return JobSpec{}, fmt.Errorf("serve: fault job: %w", err)
		}
	}
	norm := JobSpec{Seed: spec.Seed, Trials: spec.Trials, Sites: spec.Sites}
	if norm.Seed == 0 {
		norm.Seed = 1
	}
	if norm.Trials == 0 {
		norm.Trials = campaign.DefaultTrials
	}
	return norm, nil
}

func (faultRunner) Run(ctx context.Context, spec JobSpec, opts RunOpts) (*JobResult, error) {
	copts := campaign.Options{
		Seed:    spec.Seed,
		Trials:  spec.Trials,
		Workers: opts.Workers,
		Journal: opts.Journal,
		Resume:  opts.Resume,
		DumpDir: opts.DumpDir,
		Log:     opts.Log,
	}
	for _, name := range spec.Sites {
		s, err := faults.ParseSite(name)
		if err != nil {
			return nil, err
		}
		copts.Sites = append(copts.Sites, s)
	}
	rep, err := campaign.Run(ctx, copts)
	if err != nil {
		return nil, err
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		return nil, err
	}
	out := &JobResult{
		Kind:   KindFault,
		Pass:   true,
		Text:   rep.Format(),
		Output: raw,
		Metrics: map[string]float64{
			"sites":           float64(len(rep.Sites)),
			"trials_per_site": float64(rep.TrialsPerSite),
			"false_positives": float64(rep.FalsePositives),
		},
	}
	if err := campaign.Verify(rep); err != nil {
		out.Pass = false
		out.Note = err.Error()
	}
	return out, nil
}

// traceRunner runs a scenario under the cycle-accurate probe and
// exports the trace (`pandora trace`).
type traceRunner struct{}

func (traceRunner) Kind() JobKind { return KindTrace }

func (traceRunner) Normalize(spec JobSpec) (JobSpec, error) {
	if spec.Scenario == "" {
		return JobSpec{}, fmt.Errorf("serve: trace job needs a scenario (one of %v)", core.TraceScenarios())
	}
	if s, ok := core.ScenarioByName(spec.Scenario); !ok || !s.Supports(core.AnalysisTrace) {
		return JobSpec{}, fmt.Errorf("serve: unknown trace scenario %q (want one of %v)", spec.Scenario, core.TraceScenarios())
	}
	norm := JobSpec{Scenario: spec.Scenario, Format: spec.Format}
	switch norm.Format {
	case "":
		norm.Format = "report"
	case "jsonl", "chrome", "report":
	default:
		return JobSpec{}, fmt.Errorf("serve: trace job: unknown format %q (want jsonl, chrome or report)", spec.Format)
	}
	// Only the sweep scenario consumes the seed; zeroing it elsewhere
	// keeps equivalent jobs on one cache key.
	if spec.Scenario == "sweep" {
		norm.Seed = spec.Seed
		if norm.Seed == 0 {
			norm.Seed = 1
		}
	}
	return norm, nil
}

// contractRunner is the crypto-kernel leakage-contract enumeration
// (`pandora contract`): selected kernels × toggle masks × cache
// variants under the taint scanner, verdicts against each kernel's
// designed constant-time contract.
type contractRunner struct{}

func (contractRunner) Kind() JobKind { return KindContract }

func (contractRunner) Normalize(spec JobSpec) (JobSpec, error) {
	names, err := kernels.ValidateNames(spec.Kernels)
	if err != nil {
		return JobSpec{}, fmt.Errorf("serve: contract job: %w", err)
	}
	variants, err := kernels.ValidateVariants(spec.Variants)
	if err != nil {
		return JobSpec{}, fmt.Errorf("serve: contract job: %w", err)
	}
	if spec.Masks < 0 || spec.Masks > diffcheck.AllMasks {
		return JobSpec{}, fmt.Errorf("serve: contract job: masks %d out of range [0, %d]", spec.Masks, diffcheck.AllMasks)
	}
	norm := JobSpec{Kernels: names, Variants: variants, Masks: spec.Masks}
	if norm.Masks == 0 {
		norm.Masks = diffcheck.AllMasks
	}
	return norm, nil
}

func (contractRunner) Run(ctx context.Context, spec JobSpec, opts RunOpts) (*JobResult, error) {
	if opts.Log != nil {
		opts.Log("contract: %d kernel(s) × %d mask(s) × %d cache variant(s)",
			len(spec.Kernels), spec.Masks, len(spec.Variants))
	}
	masks := make([]diffcheck.ToggleMask, spec.Masks)
	for i := range masks {
		masks[i] = diffcheck.ToggleMask(i)
	}
	rep, err := kernels.Enumerate(ctx, kernels.Options{
		Kernels:  spec.Kernels,
		Masks:    masks,
		Variants: spec.Variants,
		Workers:  opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	raw, err := rep.Marshal()
	if err != nil {
		return nil, err
	}
	// Pass means every kernel honored its designed base contract: the
	// constant-time kernels scanned clean at mask 0 and the deliberate
	// violations were caught there. Optimization-induced leaks at other
	// masks are the finding, not a failure.
	out := &JobResult{Kind: KindContract, Pass: true, Text: rep.Format(), Output: raw}
	cells, leaking := 0, 0
	for _, k := range rep.Kernels {
		want := "leaks"
		if k.ConstantTime {
			want = "clean"
		}
		if k.BaselineVerdict != want {
			out.Pass = false
			out.Note = fmt.Sprintf("kernel %s: baseline verdict %s, designed %s", k.Kernel, k.BaselineVerdict, want)
		}
		for _, v := range k.Variants {
			cells += v.Clean + v.Leaking
			leaking += v.Leaking
		}
	}
	out.Metrics = map[string]float64{
		"kernels":       float64(len(rep.Kernels)),
		"cells":         float64(cells),
		"leaking_cells": float64(leaking),
	}
	return out, nil
}

func (traceRunner) Run(ctx context.Context, spec JobSpec, opts RunOpts) (*JobResult, error) {
	res, err := core.RunTraceProbed(ctx, spec.Scenario, spec.Seed, opts.Workers, opts.Probe)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	switch spec.Format {
	case "jsonl":
		err = res.Trace.WriteJSONL(&buf)
	case "chrome":
		err = res.Trace.WriteChrome(&buf)
	case "report":
		fmt.Fprintf(&buf, "scenario %s: %d cycles, %d retired, %d events\n",
			res.Scenario, res.Cycles, res.Retired, res.Trace.Len())
		err = res.Trace.WriteReport(&buf)
	default:
		err = fmt.Errorf("serve: trace job: unknown format %q", spec.Format)
	}
	if err != nil {
		return nil, err
	}
	return &JobResult{
		Kind:   KindTrace,
		Pass:   true,
		Text:   fmt.Sprintf("scenario %s: %d cycles, %d retired, %d events", res.Scenario, res.Cycles, res.Retired, res.Trace.Len()),
		Export: buf.String(),
		Metrics: map[string]float64{
			"cycles":  float64(res.Cycles),
			"retired": float64(res.Retired),
			"events":  float64(res.Trace.Len()),
		},
	}, nil
}
