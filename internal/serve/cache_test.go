package serve

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"testing"
)

func testStore(t *testing.T) *Store {
	t.Helper()
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := testStore(t)
	key := "aa11bb22"
	body := []byte(`{"kind":"scan","pass":true}` + "\n")
	if err := s.Put(key, body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, outcome, err := s.Get(key)
	if err != nil || outcome != Hit {
		t.Fatalf("Get = outcome %v, err %v; want hit", outcome, err)
	}
	if !bytes.Equal(got, body) {
		t.Fatalf("Get returned %q, want the stored %q", got, body)
	}
	if _, outcome, _ := s.Get("ffee0011"); outcome != Miss {
		t.Fatalf("Get(absent) outcome = %v, want miss", outcome)
	}
}

func TestStoreSecretPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	body := []byte("result-bytes\n")
	if err := s1.Put("cafe01", body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got, outcome, err := s2.Get("cafe01")
	if outcome != Hit || !bytes.Equal(got, body) {
		t.Fatalf("reopened Get = %q outcome %v err %v; want hit with original body", got, outcome, err)
	}
}

// tamper rewrites an entry file through fn and returns whether the file
// existed.
func tamper(t *testing.T, s *Store, key string, fn func([]byte) []byte) {
	t.Helper()
	path := s.EntryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
		t.Fatalf("rewrite entry: %v", err)
	}
}

func TestStoreRejectsTamperedBody(t *testing.T) {
	s := testStore(t)
	key := "0123456789abcdef"
	if err := s.Put(key, []byte(`{"pass":true}`+"\n")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Flip the verdict inside the body; the header (and its MAC) are
	// untouched, so only body authentication can catch this.
	tamper(t, s, key, func(raw []byte) []byte {
		return bytes.Replace(raw, []byte(`"pass":true`), []byte(`"pass":niet`), 1)
	})
	_, outcome, err := s.Get(key)
	if outcome != Rejected || err == nil {
		t.Fatalf("Get(tampered body) = outcome %v err %v; want rejected with diagnostic", outcome, err)
	}
	if _, err := os.Stat(s.EntryPath(key)); !os.IsNotExist(err) {
		t.Fatalf("rejected entry still on disk: %v", err)
	}
	// A recompute can repopulate the slot.
	if err := s.Put(key, []byte(`{"pass":true}`+"\n")); err != nil {
		t.Fatalf("re-Put after rejection: %v", err)
	}
	if _, outcome, _ := s.Get(key); outcome != Hit {
		t.Fatalf("Get after re-Put = %v, want hit", outcome)
	}
}

func TestStoreRejectsTamperedHeader(t *testing.T) {
	s := testStore(t)
	key := "fedcba9876543210"
	body := []byte("authentic-body\n")
	if err := s.Put(key, body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Rewrite the identity header's MAC (body untouched): the entry now
	// claims an identity it cannot prove.
	tamper(t, s, key, func(raw []byte) []byte {
		nl := bytes.IndexByte(raw, '\n')
		var hdr entryHeader
		if err := json.Unmarshal(raw[:nl], &hdr); err != nil {
			t.Fatalf("parse header: %v", err)
		}
		hdr.MAC = "00" + hdr.MAC[2:]
		out, _ := json.Marshal(hdr)
		return append(append(out, '\n'), raw[nl+1:]...)
	})
	if _, outcome, err := s.Get(key); outcome != Rejected || err == nil {
		t.Fatalf("Get(tampered header) = outcome %v err %v; want rejected", outcome, err)
	}
}

func TestStoreRejectsCodeVersionSkew(t *testing.T) {
	s := testStore(t)
	key := "00ff00ff00ff00ff"
	body := []byte("old-version-body\n")
	if err := s.Put(key, body); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Forge an entry from a hypothetical older build: the header names
	// another code version WITH a MAC valid under it (same store
	// secret), isolating the version check from MAC failure.
	tamper(t, s, key, func(raw []byte) []byte {
		oldCode := "pandora-serve-v0"
		// mac() binds the running CodeVersion; recompute by hand under
		// the old one so the version check (not MAC failure) fires.
		hm := hmac.New(sha256.New, s.secret)
		hm.Write([]byte(key))
		hm.Write([]byte{'\n'})
		hm.Write([]byte(oldCode))
		hm.Write([]byte{'\n'})
		hm.Write(body)
		h := entryHeader{
			Version: storeVersion,
			Key:     key,
			Code:    oldCode,
			MAC:     hex.EncodeToString(hm.Sum(nil)),
		}
		out, _ := json.Marshal(h)
		return append(append(out, '\n'), body...)
	})
	_, outcome, err := s.Get(key)
	if outcome != Rejected || err == nil {
		t.Fatalf("Get(version skew) = outcome %v err %v; want rejected", outcome, err)
	}
}

func TestKeyCanonicalization(t *testing.T) {
	// Defaults filled: an empty check spec and the explicit defaults
	// must share a key.
	k1, _, err := Key(JobSpec{Kind: KindCheck})
	if err != nil {
		t.Fatalf("Key(check defaults): %v", err)
	}
	k2, _, err := Key(JobSpec{Kind: KindCheck, Seed: 1, Programs: 512, Masks: 3})
	if err != nil {
		t.Fatalf("Key(check explicit): %v", err)
	}
	if k1 != k2 {
		t.Fatalf("default and explicit check specs hash differently: %s vs %s", k1, k2)
	}

	// Foreign fields zeroed: a scan job's key ignores fault-only fields.
	k3, _, err := Key(JobSpec{Kind: KindScan, Scenario: "stlf"})
	if err != nil {
		t.Fatalf("Key(scan): %v", err)
	}
	k4, _, err := Key(JobSpec{Kind: KindScan, Scenario: "stlf", Trials: 99, Experiment: "fig4"})
	if err != nil {
		t.Fatalf("Key(scan with foreign fields): %v", err)
	}
	if k3 != k4 {
		t.Fatalf("foreign fields leaked into the scan key: %s vs %s", k3, k4)
	}

	// Different work hashes differently.
	k5, _, err := Key(JobSpec{Kind: KindScan, Scenario: "aes"})
	if err != nil {
		t.Fatalf("Key(scan aes): %v", err)
	}
	if k3 == k5 {
		t.Fatalf("distinct scenarios share a key")
	}

	// Invalid specs are refused before hashing.
	if _, _, err := Key(JobSpec{Kind: "juggle"}); err == nil {
		t.Fatalf("Key(unknown kind) succeeded")
	}
	if _, _, err := Key(JobSpec{Kind: KindScan}); err == nil {
		t.Fatalf("Key(scan with neither scenario nor source) succeeded")
	}
	if _, _, err := Key(JobSpec{Kind: KindTrace, Scenario: "stlf", Format: "yaml"}); err == nil {
		t.Fatalf("Key(trace with bogus format) succeeded")
	}
}
