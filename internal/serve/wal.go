package serve

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The job journal makes accepted work crash-safe: every job the server
// accepts for execution is appended (and fsynced) to an append-only
// write-ahead log before it is queued, and marked done when it reaches
// a terminal state the client could observe (stored result, cached
// failure, exhausted retries, expired deadline). A job the process died
// holding — accepted, never marked done — is replayed on the next open,
// so an accepted job is either completed-and-cached or visibly failed,
// never silently lost. Jobs cancelled by a server shutdown are
// deliberately NOT marked done: they are the replay set.
//
// Records carry the store's HMAC identity discipline (the campaign
// journal's header idea applied per record): a record whose bytes were
// modified on disk fails authentication on open and is skipped and
// counted, never replayed — a tampered journal can lose pending work
// (like deleting the file can) but cannot make the server run a spec it
// never accepted. Torn trailing writes from a crash mid-append are
// tolerated the same way.

// walFile is the journal's name inside the cache directory.
const walFile = "jobs.wal"

// WALPath returns where the job journal for a cache directory lives
// (exported for the -chaos-quick self-test, which tampers with it).
func WALPath(dir string) string { return filepath.Join(dir, walFile) }

type walOp string

const (
	walAccept walOp = "accept"
	walDone   walOp = "done"
)

// walRecord is one journal line.
type walRecord struct {
	Seq  int      `json:"seq"`
	Op   walOp    `json:"op"`
	Key  string   `json:"key"`
	Spec *JobSpec `json:"spec,omitempty"` // accept records only
	MAC  string   `json:"mac"`
}

// walPending is one accepted-but-unfinished job recovered on open.
type walPending struct {
	Key  string
	Spec JobSpec
}

// wal is the open journal handle. Appends are serialized and fsynced:
// an accept record is durable before the job is queued.
type wal struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	secret []byte
	seq    int
	closed bool
}

// walMAC authenticates one record's identity fields under the store
// secret. The sequence number is bound in, so records cannot be
// reordered or replayed under another sequence, and the spec bytes are
// bound for accepts, so a tampered spec fails authentication.
func walMAC(secret []byte, seq int, op walOp, key string, spec *JobSpec) (string, error) {
	h := hmac.New(sha256.New, secret)
	fmt.Fprintf(h, "%d\n%s\n%s\n", seq, op, key)
	if spec != nil {
		b, err := json.Marshal(spec)
		if err != nil {
			return "", fmt.Errorf("serve: wal: marshal spec: %w", err)
		}
		h.Write(b)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// openWAL opens (creating if needed) the journal in dir, returning the
// handle, the jobs left pending by the previous process in acceptance
// order, and how many records were rejected (tampered or torn). The
// surviving pending set is compacted into a fresh journal before the
// handle is returned, so the file does not grow without bound across
// restarts.
func openWAL(dir string, secret []byte) (*wal, []walPending, int, error) {
	path := filepath.Join(dir, walFile)
	pending, rejected := replayWAL(path, secret)

	// Compact: rewrite only the pending accepts, re-sequenced, through a
	// temp file + rename so a crash mid-compaction leaves the old
	// journal intact.
	w := &wal{path: path, secret: secret}
	tmp, err := os.CreateTemp(dir, "."+walFile+".tmp*")
	if err != nil {
		return nil, nil, rejected, fmt.Errorf("serve: wal: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, p := range pending {
		spec := p.Spec
		line, err := w.encode(walAccept, p.Key, &spec)
		if err != nil {
			tmp.Close()
			return nil, nil, rejected, err
		}
		if _, err := tmp.Write(line); err != nil {
			tmp.Close()
			return nil, nil, rejected, fmt.Errorf("serve: wal: compact: %w", err)
		}
		w.seq++
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, nil, rejected, fmt.Errorf("serve: wal: compact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return nil, nil, rejected, fmt.Errorf("serve: wal: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return nil, nil, rejected, fmt.Errorf("serve: wal: compact: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, nil, rejected, fmt.Errorf("serve: wal: open: %w", err)
	}
	w.f = f
	return w, pending, rejected, nil
}

// replayWAL reads a journal and reduces it to the pending set:
// authenticated accepts minus authenticated dones, in acceptance order.
// Unparseable, torn or MAC-failing lines are skipped and counted.
func replayWAL(path string, secret []byte) (pending []walPending, rejected int) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0 // no journal yet (or unreadable: nothing to replay)
	}
	open := map[string]int{} // key → index into pending (-1 = done)
	for _, line := range bytes.Split(raw, []byte{'\n'}) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			rejected++
			continue
		}
		want, err := walMAC(secret, rec.Seq, rec.Op, rec.Key, rec.Spec)
		if err != nil || !hmac.Equal([]byte(want), []byte(rec.MAC)) {
			rejected++
			continue
		}
		switch rec.Op {
		case walAccept:
			if _, seen := open[rec.Key]; seen || rec.Spec == nil {
				continue // duplicate accept or malformed: keep first
			}
			open[rec.Key] = len(pending)
			pending = append(pending, walPending{Key: rec.Key, Spec: *rec.Spec})
		case walDone:
			if i, seen := open[rec.Key]; seen && i >= 0 {
				pending[i].Key = "" // tombstone, filtered below
				open[rec.Key] = -1
			}
		default:
			rejected++
		}
	}
	out := pending[:0]
	for _, p := range pending {
		if p.Key != "" {
			out = append(out, p)
		}
	}
	return out, rejected
}

// encode serializes the next record (advancing no state; the caller
// owns w.seq) as a newline-terminated JSON line.
func (w *wal) encode(op walOp, key string, spec *JobSpec) ([]byte, error) {
	mac, err := walMAC(w.secret, w.seq, op, key, spec)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(walRecord{Seq: w.seq, Op: op, Key: key, Spec: spec, MAC: mac})
	if err != nil {
		return nil, fmt.Errorf("serve: wal: marshal record: %w", err)
	}
	return append(b, '\n'), nil
}

// append writes and fsyncs one record. The record is durable when
// append returns.
func (w *wal) append(op walOp, key string, spec *JobSpec) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("serve: wal: append to closed journal")
	}
	line, err := w.encode(op, key, spec)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(line); err != nil {
		return fmt.Errorf("serve: wal: append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("serve: wal: sync: %w", err)
	}
	w.seq++
	return nil
}

// accept journals a job acceptance; it must be durable before the job
// is queued.
func (w *wal) accept(key string, spec JobSpec) error {
	return w.append(walAccept, key, &spec)
}

// done journals a job's terminal state.
func (w *wal) done(key string) error {
	return w.append(walDone, key, nil)
}

// close releases the journal handle. Pending records stay on disk for
// the next open to replay.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.f.Close()
}

// verifyWAL re-reads a journal from disk and reports its pending and
// rejected counts — the -chaos-quick self-test's view into journal
// integrity without opening a second append handle.
func verifyWAL(dir string, secret []byte) (pending, rejected int) {
	p, r := replayWAL(filepath.Join(dir, walFile), secret)
	return len(p), r
}

// SimulateCrashedJob forges the on-disk state of a server that crashed
// after accepting spec but before storing its result: an authenticated
// accept record with no done marker, appended to dir's journal. The
// restart-recovery tests and the -chaos-quick self-test use it to
// exercise replay without killing a process mid-job. It returns the
// job key the next server must recover.
func SimulateCrashedJob(dir string, spec JobSpec) (string, error) {
	store, err := OpenStore(dir)
	if err != nil {
		return "", err
	}
	key, canon, err := Key(spec)
	if err != nil {
		return "", err
	}
	w, _, _, err := openWAL(dir, store.secret)
	if err != nil {
		return "", err
	}
	defer w.close()
	if err := w.accept(key, canon); err != nil {
		return "", err
	}
	return key, nil
}
