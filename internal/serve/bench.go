package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"
)

// This file measures the service end to end — HTTP submit, pool
// dispatch, analysis, store write — and is the engine behind
// `pandora bench -serve` (BENCH_serve.json). Two passes over the same
// job set: a cold pass against an empty store (every job executes) and
// a warm pass resubmitting the identical specs (every job must be a
// cache hit). Like BENCH_cycles.json, the artifact is wall-clock
// derived, so it records the CPU configuration and the CLI refuses to
// overwrite a baseline from a different one without -force.

// BenchSchema identifies the BENCH_serve.json format.
const BenchSchema = "pandora-bench-serve/v1"

// BenchOptions parameterizes one service benchmark.
type BenchOptions struct {
	// Jobs is how many distinct jobs form the workload (default 10).
	// Each is a trace sweep with its own seed, so cold keys are unique.
	Jobs int
	// Workers bounds each job's analysis fan-out (0 = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, receives one line per pass.
	Progress func(format string, args ...any)
}

// BenchPass is one pass's throughput and latency profile.
type BenchPass struct {
	Jobs       int     `json:"jobs"`
	Seconds    float64 `json:"seconds"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	P50Millis  float64 `json:"p50_ms"`
	P99Millis  float64 `json:"p99_ms"`
}

// BenchReport is the JSON artifact (BENCH_serve.json).
type BenchReport struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Jobs int `json:"jobs"`

	Cold BenchPass `json:"cold"`
	Warm BenchPass `json:"warm"`
	// WarmSpeedup is warm jobs/sec over cold jobs/sec — what the
	// content-addressed cache buys on repeated submissions.
	WarmSpeedup float64 `json:"warm_speedup"`
}

// SameCPU reports whether two reports were measured under the same CPU
// configuration (the precondition for comparing wall-clock numbers).
func (r BenchReport) SameCPU(o BenchReport) bool {
	return r.NumCPU == o.NumCPU && r.GOMAXPROCS == o.GOMAXPROCS
}

// ReadBenchFile loads a committed BENCH_serve.json.
func ReadBenchFile(path string) (BenchReport, error) {
	var rep BenchReport
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("serve: %s: %w", path, err)
	}
	if rep.Schema != BenchSchema {
		return rep, fmt.Errorf("serve: %s: schema %q, want %q", path, rep.Schema, BenchSchema)
	}
	return rep, nil
}

// WriteFile writes the report as indented JSON.
func (r BenchReport) WriteFile(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// benchRound trims float noise so the JSON artifact diffs cleanly.
func benchRound(v float64) float64 { return float64(int64(v*100)) / 100 }

// percentile returns the p-th percentile (0..100) of sorted durations.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Bench runs the service benchmark: an in-process server on an
// ephemeral port with a fresh cache directory, a cold pass, a warm
// pass, and a stats cross-check that the warm pass really was served
// from the cache.
func Bench(opts BenchOptions) (BenchReport, error) {
	if opts.Jobs <= 0 {
		opts.Jobs = 10
	}
	progress := func(format string, args ...any) {
		if opts.Progress != nil {
			opts.Progress(format, args...)
		}
	}

	dir, err := os.MkdirTemp("", "pandora-bench-serve-")
	if err != nil {
		return BenchReport{}, err
	}
	defer os.RemoveAll(dir)

	srv, err := New(Options{CacheDir: dir, Workers: opts.Workers})
	if err != nil {
		return BenchReport{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BenchReport{}, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ctx, ln) }()
	defer func() {
		cancel()
		<-served
	}()
	base := "http://" + ln.Addr().String()
	client := &http.Client{}

	// One trace sweep per seed: distinct seeds mean distinct cache keys,
	// so the cold pass executes every job.
	specs := make([]JobSpec, opts.Jobs)
	for i := range specs {
		specs[i] = JobSpec{Kind: KindTrace, Scenario: "sweep", Format: "report", Seed: int64(1000 + i)}
	}

	// submit POSTs one spec and blocks until the job settles; the
	// returned latency covers submit → settled result.
	submit := func(spec JobSpec) (JobView, time.Duration, error) {
		body, err := json.Marshal(spec)
		if err != nil {
			return JobView{}, 0, err
		}
		start := time.Now()
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return JobView{}, 0, err
		}
		var view JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			return JobView{}, 0, err
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			return view, 0, fmt.Errorf("serve: bench: submit: HTTP %d", resp.StatusCode)
		}
		for view.State != string(stateDone) && view.State != string(stateFailed) {
			wresp, err := client.Get(base + "/v1/jobs/" + view.ID + "?wait=60s")
			if err != nil {
				return view, 0, err
			}
			err = json.NewDecoder(wresp.Body).Decode(&view)
			wresp.Body.Close()
			if err != nil {
				return view, 0, err
			}
		}
		if view.State != string(stateDone) {
			return view, 0, fmt.Errorf("serve: bench: job %s failed: %s", view.ID, view.Error)
		}
		return view, time.Since(start), nil
	}

	pass := func(name string, wantCached bool) (BenchPass, error) {
		lats := make([]time.Duration, 0, len(specs))
		start := time.Now()
		for i, spec := range specs {
			view, lat, err := submit(spec)
			if err != nil {
				return BenchPass{}, err
			}
			if view.Cached != wantCached {
				return BenchPass{}, fmt.Errorf("serve: bench: %s pass job %d: cached=%v, want %v",
					name, i, view.Cached, wantCached)
			}
			lats = append(lats, lat)
		}
		total := time.Since(start)
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		p := BenchPass{
			Jobs:       len(specs),
			Seconds:    benchRound(total.Seconds()),
			JobsPerSec: benchRound(float64(len(specs)) / total.Seconds()),
			P50Millis:  benchRound(float64(percentile(lats, 50).Microseconds()) / 1000),
			P99Millis:  benchRound(float64(percentile(lats, 99).Microseconds()) / 1000),
		}
		progress("%s: %d jobs in %.2fs (%.2f jobs/sec, p50 %.2fms, p99 %.2fms)",
			name, p.Jobs, p.Seconds, p.JobsPerSec, p.P50Millis, p.P99Millis)
		return p, nil
	}

	cold, err := pass("cold", false)
	if err != nil {
		return BenchReport{}, err
	}
	warm, err := pass("warm", true)
	if err != nil {
		return BenchReport{}, err
	}

	// Cross-check against the server's own counters: the warm pass must
	// have been pure cache hits, with no extra executions.
	if got, want := srv.stats.Executed.Load(), uint64(opts.Jobs); got != want {
		return BenchReport{}, fmt.Errorf("serve: bench: %d executions, want %d (warm pass re-executed)", got, want)
	}
	if got, want := srv.stats.CacheHits.Load(), uint64(opts.Jobs); got != want {
		return BenchReport{}, fmt.Errorf("serve: bench: %d cache hits, want %d", got, want)
	}

	rep := BenchReport{
		Schema:     BenchSchema,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Jobs:       opts.Jobs,
		Cold:       cold,
		Warm:       warm,
	}
	if cold.JobsPerSec > 0 {
		rep.WarmSpeedup = benchRound(warm.JobsPerSec / cold.JobsPerSec)
	}
	return rep, nil
}
