package serve

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func walSecret(t *testing.T, dir string) []byte {
	t.Helper()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return store.secret
}

func TestWALAcceptDoneRoundTrip(t *testing.T) {
	dir := t.TempDir()
	secret := walSecret(t, dir)
	w, pending, rejected, err := openWAL(dir, secret)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	if len(pending) != 0 || rejected != 0 {
		t.Fatalf("fresh journal: pending=%d rejected=%d", len(pending), rejected)
	}
	specA := JobSpec{Kind: KindCheck, Programs: 4, Masks: 1, Seed: 7}
	specB := JobSpec{Kind: KindScan, Scenario: "stlf"}
	if err := w.accept("key-a", specA); err != nil {
		t.Fatalf("accept a: %v", err)
	}
	if err := w.accept("key-b", specB); err != nil {
		t.Fatalf("accept b: %v", err)
	}
	if err := w.done("key-a"); err != nil {
		t.Fatalf("done a: %v", err)
	}
	if err := w.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen: only the unfinished job is pending, with its spec intact.
	w2, pending, rejected, err := openWAL(dir, secret)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.close()
	if rejected != 0 {
		t.Fatalf("reopen rejected %d records from a clean journal", rejected)
	}
	if len(pending) != 1 || pending[0].Key != "key-b" || pending[0].Spec.Scenario != "stlf" {
		t.Fatalf("pending = %+v, want key-b with its spec", pending)
	}

	// Compaction rewrote the journal to the pending set only.
	raw, err := os.ReadFile(WALPath(dir))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	if strings.Contains(string(raw), "key-a") {
		t.Fatalf("compacted journal still carries the finished job:\n%s", raw)
	}
	if !strings.Contains(string(raw), "key-b") {
		t.Fatalf("compacted journal lost the pending job:\n%s", raw)
	}
}

func TestWALTamperedRecordRejected(t *testing.T) {
	dir := t.TempDir()
	secret := walSecret(t, dir)
	w, _, _, err := openWAL(dir, secret)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	if err := w.accept("key-a", JobSpec{Kind: KindCheck, Programs: 4}); err != nil {
		t.Fatalf("accept: %v", err)
	}
	w.close()

	// Flip one byte inside the record (the spec's programs count).
	raw, err := os.ReadFile(WALPath(dir))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	tampered := bytes.Replace(raw, []byte(`"programs":4`), []byte(`"programs":9`), 1)
	if bytes.Equal(tampered, raw) {
		t.Fatalf("tamper target not found in journal:\n%s", raw)
	}
	if err := os.WriteFile(WALPath(dir), tampered, 0o600); err != nil {
		t.Fatalf("write tampered journal: %v", err)
	}

	w2, pending, rejected, err := openWAL(dir, secret)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.close()
	if len(pending) != 0 {
		t.Fatalf("tampered record replayed: %+v", pending)
	}
	if rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	secret := walSecret(t, dir)
	w, _, _, err := openWAL(dir, secret)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	if err := w.accept("key-a", JobSpec{Kind: KindScan, Scenario: "stlf"}); err != nil {
		t.Fatalf("accept: %v", err)
	}
	w.close()

	// A crash mid-append leaves a torn trailing line.
	f, err := os.OpenFile(WALPath(dir), os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	f.WriteString(`{"seq":1,"op":"done","key":"key-a","ma`)
	f.Close()

	w2, pending, rejected, err := openWAL(dir, secret)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.close()
	if len(pending) != 1 || pending[0].Key != "key-a" {
		t.Fatalf("pending = %+v, want the intact accept", pending)
	}
	if rejected != 1 {
		t.Fatalf("rejected = %d, want 1 (the torn line)", rejected)
	}
}

func TestWALDoneForUnknownKeyIgnored(t *testing.T) {
	dir := t.TempDir()
	secret := walSecret(t, dir)
	w, _, _, err := openWAL(dir, secret)
	if err != nil {
		t.Fatalf("openWAL: %v", err)
	}
	if err := w.done("never-accepted"); err != nil {
		t.Fatalf("done: %v", err)
	}
	w.close()
	w2, pending, rejected, err := openWAL(dir, secret)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.close()
	if len(pending) != 0 || rejected != 0 {
		t.Fatalf("pending=%d rejected=%d, want 0/0", len(pending), rejected)
	}
}
