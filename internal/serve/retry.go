package serve

import (
	"context"
	"errors"
	"hash/fnv"
	"time"

	"pandora/internal/faults"
	"pandora/internal/parallel"
	"pandora/internal/pipeline"
)

// FailureClass sorts a job attempt's error into the service's failure
// taxonomy, which decides what happens next:
//
//   - Transient failures (a worker panic, a forward-progress watchdog
//     stall, injected chaos) are environmental: the same spec can
//     succeed on a clean retry, so the server retries them with capped
//     exponential backoff and never caches the failure.
//   - Deterministic failures (validation, a pipeline invariant
//     violation, an oracle mismatch, an analysis error) are a property
//     of the spec: retrying reruns the same deterministic computation to
//     the same end, so the failure is cached as a failed result and
//     served like any other — visibly failed, never re-executed.
//   - Aborted attempts (job deadline expired, server shutting down) are
//     neither: the result was never computed, so nothing is cached, and
//     whether the job is retried depends on why it aborted (a replay
//     after restart for shutdown, a terminal visible failure for a
//     deadline).
type FailureClass int

const (
	// ClassDeterministic is the default: an error that is a pure
	// function of the canonical spec.
	ClassDeterministic FailureClass = iota
	// ClassTransient is an environmental failure worth retrying.
	ClassTransient
	// ClassAborted is a cancelled attempt (deadline or shutdown).
	ClassAborted
)

func (c FailureClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassAborted:
		return "aborted"
	default:
		return "deterministic"
	}
}

// Classify maps an attempt error onto the taxonomy. The transient set
// is deliberately explicit — worker panics (parallel.PanicError),
// watchdog stalls (pipeline.StallError with the watchdog reason) and
// injected chaos (faults.ChaosError) — because misclassifying a
// deterministic failure as transient turns every bad spec into
// MaxAttempts wasted executions.
func Classify(err error) FailureClass {
	if err == nil {
		return ClassDeterministic
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, pipeline.ErrCancelled) {
		return ClassAborted
	}
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		return ClassTransient
	}
	var ce *faults.ChaosError
	if errors.As(err, &ce) {
		return ClassTransient
	}
	var se *pipeline.StallError
	if errors.As(err, &se) && se.Reason == pipeline.ReasonWatchdog {
		return ClassTransient
	}
	return ClassDeterministic
}

// RetryPolicy is the server's transient-failure retry schedule.
type RetryPolicy struct {
	// MaxAttempts is the total attempt budget per job, first try
	// included. 1 disables retries.
	MaxAttempts int
	// Base is the backoff before the first retry; each further retry
	// doubles it, capped at Max.
	Base time.Duration
	// Max caps the exponential growth.
	Max time.Duration
}

// Backoff returns the delay before retry number attempt (0 = the delay
// after the first failed try): capped exponential growth plus a
// deterministic jitter in [0, base/2) derived from the job key, so
// retries of distinct jobs de-synchronize while a chaos run stays
// reproducible.
func (p RetryPolicy) Backoff(attempt int, key string) time.Duration {
	d := p.Base
	for i := 0; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	if d <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{byte(attempt)})
	jitter := time.Duration(h.Sum64() % uint64(d/2+1))
	return d + jitter
}

// Attempt records one failed try preceding a job's terminal state; the
// slice lives in JobResult.Attempts, so a stored result carries its own
// retry history. Retry-free jobs leave Attempts empty (and omitted from
// the serialized result), keeping their bodies byte-identical to a
// server that never retried anything.
type Attempt struct {
	// N is the attempt number, 0-based.
	N int `json:"n"`
	// Class is the failure's taxonomy class.
	Class string `json:"class"`
	// Error is the attempt's error text.
	Error string `json:"error"`
	// BackoffMS is the delay scheduled after this attempt (0 for the
	// last attempt of an exhausted budget).
	BackoffMS int64 `json:"backoff_ms"`
}
