// Package serve is the leakage-analysis-as-a-service layer behind
// `pandora serve`: a long-running HTTP/JSON job service that runs the
// repository's six analyses — bench (experiment reproduction), check
// (differential oracle), scan (taint scanner), fault (injection
// campaign), trace (cycle-accurate probe) and contract (crypto-kernel
// leakage-contract enumeration) — on a sharded worker pool behind a
// content-addressed, tamper-evident result cache.
//
// Every job is described by a JobSpec whose canonical form (defaults
// filled in, fields foreign to the job kind zeroed) is hashed together
// with the service code version into a SHA-256 job key. Because every
// analysis in this repository is deterministic — results are a pure
// function of the canonical spec, bit-identical at any worker count —
// the key fully identifies the result, and a repeated submission is a
// cache lookup instead of a re-execution. Results are stored under an
// authenticated identity header (HMAC-SHA256 over key and body, the
// campaign journal's identity-header discipline applied to a
// content-addressed store), so a tampered or version-skewed entry is
// detected, rejected and transparently recomputed.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// CodeVersion fingerprints the analysis semantics baked into this
// build. It participates in every job key, so results cached by an
// older service version miss (rather than poison) a newer one. Bump it
// whenever an analysis' observable output changes.
// v2: scan jobs canonicalize the machine spec (equivalent spellings now
// share a cache key) and the contract kind exists.
const CodeVersion = "pandora-serve-v2"

// JobKind names one of the six analyses.
type JobKind string

const (
	KindBench    JobKind = "bench"
	KindCheck    JobKind = "check"
	KindScan     JobKind = "scan"
	KindFault    JobKind = "fault"
	KindTrace    JobKind = "trace"
	KindContract JobKind = "contract"
)

// JobSpec describes one job. Only the fields meaningful for the Kind
// are significant; Canonical zeroes the rest and fills in defaults, so
// two specs describing the same work hash to the same key. Execution
// concurrency is deliberately NOT part of the spec: every analysis is
// bit-identical at any worker count, so the server chooses workers
// freely without fragmenting the cache.
type JobSpec struct {
	Kind JobKind `json:"kind"`
	// Seed seeds the seeded analyses (check corpus, fault campaign,
	// trace sweep, bench experiments that sample).
	Seed int64 `json:"seed,omitempty"`

	// TimeoutMS bounds the job's execution in wall-clock milliseconds.
	// Zero means the server default; the server caps requested values at
	// its configured maximum. Like Workers, a timeout changes how long a
	// result may take to compute, never what it is, so Normalize drops it
	// from the canonical spec and it does not fragment the cache.
	TimeoutMS int `json:"timeout_ms,omitempty"`

	// Experiment names the core experiment a bench job reproduces.
	Experiment string `json:"experiment,omitempty"`
	// Samples / SecretLen / Full mirror core.Options for bench jobs.
	Samples   int  `json:"samples,omitempty"`
	SecretLen int  `json:"secret_len,omitempty"`
	Full      bool `json:"full,omitempty"`

	// Programs / Masks mirror diffcheck.Options for check jobs.
	Programs int `json:"programs,omitempty"`
	Masks    int `json:"masks,omitempty"`

	// Scenario names a built-in scenario for scan and trace jobs.
	Scenario string `json:"scenario,omitempty"`
	// Source is assembly text for scan jobs over user programs (the
	// "program bytes" component of the job key); Machine is the machine
	// spec it runs on and Secrets lists extra labeled regions as
	// "base:len[:name]" strings.
	Source  string   `json:"source,omitempty"`
	Machine string   `json:"machine,omitempty"`
	Secrets []string `json:"secrets,omitempty"`

	// Format selects the trace export: jsonl, chrome or report.
	Format string `json:"format,omitempty"`

	// Trials / Sites mirror campaign.Options for fault jobs.
	Trials int      `json:"trials,omitempty"`
	Sites  []string `json:"sites,omitempty"`

	// Kernels / Variants select the crypto-kernel and cache-variant
	// subsets for contract jobs (empty = all, in library/harness order).
	// Contract jobs reuse Masks as "enumerate the first N toggle masks"
	// (0 = the full 2⁹ space).
	Kernels  []string `json:"kernels,omitempty"`
	Variants []string `json:"variants,omitempty"`
}

// JobResult is the canonical result body stored in the cache and
// returned to clients. Marshaling is deterministic: struct fields keep
// declaration order and encoding/json sorts map keys, so a result
// serializes to the same bytes every time it is computed.
type JobResult struct {
	Kind JobKind `json:"kind"`
	Key  string  `json:"key"`
	// Pass is the analysis verdict: the experiment reproduced, the
	// check/fault sweep came back clean, the scan found no leaks.
	Pass bool `json:"pass"`
	// Text is the human-readable report the equivalent CLI would print.
	Text string `json:"text,omitempty"`
	// Note carries the verdict detail when Pass is false (e.g. the fault
	// campaign's Verify error).
	Note string `json:"note,omitempty"`
	// Export is the trace export body (JSONL, Chrome JSON or report
	// text) for trace jobs.
	Export string `json:"export,omitempty"`
	// Output is kind-specific structured data (the scan summary, the
	// fault campaign report) as embedded JSON.
	Output json.RawMessage `json:"output,omitempty"`
	// Metrics carries headline numbers (cycles, event counts, rates).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Error is set on cached deterministic failures: the analysis error
	// that any re-execution of this spec would reproduce. A result with
	// Error set serves as a failed job, never re-executed.
	Error string `json:"error,omitempty"`
	// Attempts lists the failed tries that preceded this terminal result,
	// oldest first. Empty (and omitted) when the first attempt succeeded,
	// so retry-free results serialize byte-identically to a server that
	// never retried anything.
	Attempts []Attempt `json:"attempts,omitempty"`
}

// keyEnvelope is what the job key actually hashes: the code version and
// the canonical spec, in fixed field order.
type keyEnvelope struct {
	Code string  `json:"code"`
	Spec JobSpec `json:"spec"`
}

// Canonical returns the spec's canonical form: kind-specific defaults
// filled, fields foreign to the kind zeroed, and the spec validated
// against the runner registry. The canonical form — not the submitted
// one — is what the job key hashes and what the runner executes.
func Canonical(spec JobSpec) (JobSpec, error) {
	r, ok := runners[spec.Kind]
	if !ok {
		return JobSpec{}, fmt.Errorf("serve: unknown job kind %q (want bench, check, scan, fault, trace or contract)", spec.Kind)
	}
	norm, err := r.Normalize(spec)
	if err != nil {
		return JobSpec{}, err
	}
	norm.Kind = spec.Kind
	return norm, nil
}

// Key returns the job's content-addressed cache key: hex SHA-256 over
// the canonical (code version, spec) envelope.
func Key(spec JobSpec) (string, JobSpec, error) {
	canon, err := Canonical(spec)
	if err != nil {
		return "", JobSpec{}, err
	}
	b, err := json.Marshal(keyEnvelope{Code: CodeVersion, Spec: canon})
	if err != nil {
		return "", JobSpec{}, fmt.Errorf("serve: canonicalize: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), canon, nil
}

// MarshalResult serializes a result to its canonical cache-body bytes.
func MarshalResult(res *JobResult) ([]byte, error) {
	b, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("serve: marshal result: %w", err)
	}
	return append(b, '\n'), nil
}
