package serve

import (
	"fmt"
	"sync"

	"pandora/internal/obs"
)

// JobEvent is one line of a job's progress stream, delivered to clients
// over GET /v1/jobs/{id}/events as SSE or JSONL.
type JobEvent struct {
	Seq   int    `json:"seq"`
	Phase string `json:"phase"`
	Text  string `json:"text,omitempty"`
}

// Event phases, in rough lifecycle order. A job emits queued, then
// either cached (served from the store without executing) or
// started…done/failed; log and probe events appear between started and
// the terminal phase.
const (
	PhaseQueued   = "queued"
	PhaseStarted  = "started"
	PhaseLog      = "log"
	PhaseProbe    = "probe"
	PhaseCached   = "cached"
	PhaseRejected = "rejected"
	PhaseRetry    = "retry"
	PhaseReplayed = "replayed"
	PhaseDone     = "done"
	PhaseFailed   = "failed"
)

// eventLog is a job's append-only progress stream: an in-memory replay
// buffer plus live fan-out to subscribers. Closing it (on job
// completion) ends every subscriber's stream after the buffered events
// drain.
type eventLog struct {
	mu     sync.Mutex
	events []JobEvent
	subs   map[chan JobEvent]struct{}
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{subs: make(map[chan JobEvent]struct{})}
}

// append records an event and delivers it to live subscribers. Slow
// subscribers do not block the job: a subscriber whose channel is full
// is dropped (its stream ends early; the replay buffer still holds the
// history for a reconnect).
func (l *eventLog) append(phase, text string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev := JobEvent{Seq: len(l.events), Phase: phase, Text: text}
	l.events = append(l.events, ev)
	for ch := range l.subs {
		select {
		case ch <- ev:
		default:
			delete(l.subs, ch)
			close(ch)
		}
	}
}

func (l *eventLog) appendf(phase, format string, args ...any) {
	l.append(phase, fmt.Sprintf(format, args...))
}

// close ends the stream: subscribers' channels are closed after the
// events already sent, and later subscribe calls see replay only.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		close(ch)
	}
	l.subs = nil
}

// subscribe returns the replay of everything so far plus a live channel
// (nil if the log is already closed). cancel detaches the subscriber;
// it is safe to call after the log closed.
func (l *eventLog) subscribe() (replay []JobEvent, live <-chan JobEvent, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	replay = append([]JobEvent(nil), l.events...)
	if l.closed {
		return replay, nil, func() {}
	}
	ch := make(chan JobEvent, 256)
	l.subs[ch] = struct{}{}
	return replay, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[ch]; ok {
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// probeBridge adapts the obs probe interface onto a job's event stream:
// the first probeDetail events are forwarded verbatim (cycle, kind,
// track, pc), after which only every probeEvery-th event emits a
// running count — a trace job can carry tens of thousands of µop events
// and the stream must stay proportionate.
type probeBridge struct {
	log *eventLog
	mu  sync.Mutex
	n   uint64
}

const (
	probeDetail = 64
	probeEvery  = 4096
)

func (b *probeBridge) Emit(ev obs.Event) {
	b.mu.Lock()
	b.n++
	n := b.n
	b.mu.Unlock()
	switch {
	case n <= probeDetail:
		b.log.appendf(PhaseProbe, "cycle %d %s/%s seq=%d pc=%#x",
			ev.Cycle, ev.Track, ev.Kind, ev.Seq, ev.PC)
	case n%probeEvery == 0:
		b.log.appendf(PhaseProbe, "%d probe events so far", n)
	}
}

// count returns how many probe events the bridge saw.
func (b *probeBridge) count() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}
