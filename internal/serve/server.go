package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pandora/internal/faults"
	"pandora/internal/obs"
	"pandora/internal/parallel"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address for ListenAndServe ("127.0.0.1:0"
	// picks an ephemeral port).
	Addr string
	// CacheDir roots the content-addressed result store and the job
	// journal.
	CacheDir string
	// Shards / QueueDepth size the worker pool (0 = defaults: one shard
	// per CPU, 64 queued jobs per shard).
	Shards     int
	QueueDepth int
	// Workers bounds each job's internal analysis fan-out (0 =
	// GOMAXPROCS). Never part of the cache key.
	Workers int
	// Log receives server narrative lines (nil = silent).
	Log func(format string, args ...any)

	// DefaultTimeout bounds jobs that request no deadline of their own
	// (0 = unbounded). MaxTimeout caps client-requested deadlines
	// (0 = a 10-minute default cap).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DrainWindow is how long a shutting-down server lets in-flight and
	// queued jobs run before cancelling them (cancelled jobs replay from
	// the journal on the next start). 0 = 15s.
	DrainWindow time.Duration
	// MaxAttempts is the per-job attempt budget for transient failures
	// (0 = 3; 1 disables retries). RetryBase/RetryMax shape the capped
	// exponential backoff between attempts (0 = 25ms / 2s).
	MaxAttempts int
	RetryBase   time.Duration
	RetryMax    time.Duration
	// BreakerThreshold consecutive terminal failures of one job kind
	// open that kind's circuit for BreakerCooldown, shedding its
	// submissions with 503 + Retry-After (0 = 5 failures / 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// KindConcurrency caps concurrently executing jobs per kind;
	// submissions over the cap are shed with 503 (0 = unlimited).
	KindConcurrency int
	// Chaos, when non-nil, injects seeded failures (panics, stalls,
	// slow-downs) into job attempts. Test-only: the -chaos-quick gate
	// and the chaos tests drive it; production servers leave it nil.
	Chaos *faults.ChaosPlan
}

// Defaulted option values.
const (
	defaultMaxTimeout       = 10 * time.Minute
	defaultDrainWindow      = 15 * time.Second
	defaultMaxAttempts      = 3
	defaultRetryBase        = 25 * time.Millisecond
	defaultRetryMax         = 2 * time.Second
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 5 * time.Second
)

// Stats counts the server's job traffic. Fields are atomics because
// jobs complete on pool workers while HTTP handlers submit and read
// concurrently; the obs registry reads them through Load closures.
type Stats struct {
	Submitted     atomic.Uint64 // jobs accepted by POST /v1/jobs
	Executed      atomic.Uint64 // jobs actually run on the pool
	Completed     atomic.Uint64 // jobs that ran to a stored result
	Failed        atomic.Uint64 // jobs whose analysis reached a terminal failure
	Deduped       atomic.Uint64 // submissions coalesced onto an in-flight job
	CacheHits     atomic.Uint64 // submissions served from the store
	CacheMisses   atomic.Uint64 // submissions that found no entry
	CacheRejected atomic.Uint64 // entries that failed authentication
	Retries       atomic.Uint64 // extra attempts after transient failures
	Shed          atomic.Uint64 // submissions refused by breaker/concurrency limits
	TimedOut      atomic.Uint64 // jobs terminated by their deadline
	WALReplayed   atomic.Uint64 // journaled jobs recovered on startup
	WALRejected   atomic.Uint64 // journal records that failed authentication
}

// register exposes the counters on an obs registry under serve.*.
func (st *Stats) register(reg *obs.Registry) {
	reg.Counter("serve.submitted", st.Submitted.Load)
	reg.Counter("serve.executed", st.Executed.Load)
	reg.Counter("serve.completed", st.Completed.Load)
	reg.Counter("serve.failed", st.Failed.Load)
	reg.Counter("serve.deduped", st.Deduped.Load)
	reg.Counter("serve.cache.hits", st.CacheHits.Load)
	reg.Counter("serve.cache.misses", st.CacheMisses.Load)
	reg.Counter("serve.cache.rejected", st.CacheRejected.Load)
	reg.Counter("serve.retries", st.Retries.Load)
	reg.Counter("serve.shed", st.Shed.Load)
	reg.Counter("serve.timeouts", st.TimedOut.Load)
	reg.Counter("serve.wal_replayed", st.WALReplayed.Load)
	reg.Counter("serve.wal_rejected", st.WALRejected.Load)
}

type jobState string

const (
	stateQueued  jobState = "queued"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// Job is one tracked submission. Identical submissions share one Job
// while it is in flight (singleflight) and share its cache entry after.
type Job struct {
	id      string
	key     string
	spec    JobSpec
	timeout time.Duration
	log     *eventLog
	done    chan struct{}

	// executing marks a job that holds an in-flight execution slot
	// (guarded by Server.mu, released at settle).
	executing bool

	mu     sync.Mutex
	state  jobState
	cached bool
	body   []byte
	errMsg string
}

// JobView is the client-facing rendering of a Job.
type JobView struct {
	ID      string          `json:"id"`
	Key     string          `json:"key"`
	Kind    JobKind         `json:"kind"`
	Spec    JobSpec         `json:"spec"`
	State   string          `json:"state"`
	Cached  bool            `json:"cached,omitempty"`
	Deduped bool            `json:"deduped,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

func (j *Job) view(deduped bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.id,
		Key:     j.key,
		Kind:    j.spec.Kind,
		Spec:    j.spec,
		State:   string(j.state),
		Cached:  j.cached,
		Deduped: deduped,
		Error:   j.errMsg,
	}
	// Failed jobs carry a body too when the failure was cached (a
	// deterministic failure's result records the error and any attempt
	// history).
	if len(j.body) > 0 {
		v.Result = json.RawMessage(j.body)
	}
	return v
}

// Server is the `pandora serve` service: HTTP job API in front of the
// content-addressed store, the job journal and the sharded worker pool.
type Server struct {
	opts  Options
	store *Store
	pool  *parallel.ShardPool
	reg   *obs.Registry
	stats Stats
	wal   *wal

	// lifeCtx is the server's lifecycle context: every job attempt runs
	// under a context derived from it, so a shutdown (after the drain
	// window) cancels in-flight work instead of orphaning it.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc

	breakers map[JobKind]*breaker
	draining atomic.Bool
	stopOnce sync.Once

	mu       sync.Mutex
	jobs     map[string]*Job
	flights  map[string]*Job // cache key → in-flight job
	inflight map[JobKind]int // executing jobs per kind
	seq      int
}

// New builds a Server: opens (or creates) the store and the job
// journal, starts the worker pool, and replays any jobs a previous
// process accepted but never finished.
func New(opts Options) (*Server, error) {
	if opts.CacheDir == "" {
		return nil, fmt.Errorf("serve: Options.CacheDir is required")
	}
	if opts.MaxTimeout == 0 {
		opts.MaxTimeout = defaultMaxTimeout
	}
	if opts.DrainWindow == 0 {
		opts.DrainWindow = defaultDrainWindow
	}
	if opts.MaxAttempts == 0 {
		opts.MaxAttempts = defaultMaxAttempts
	}
	if opts.RetryBase == 0 {
		opts.RetryBase = defaultRetryBase
	}
	if opts.RetryMax == 0 {
		opts.RetryMax = defaultRetryMax
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = defaultBreakerThreshold
	}
	if opts.BreakerCooldown == 0 {
		opts.BreakerCooldown = defaultBreakerCooldown
	}
	store, err := OpenStore(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	w, pending, rejected, err := openWAL(opts.CacheDir, store.secret)
	if err != nil {
		return nil, err
	}
	lifeCtx, lifeCancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		store:      store,
		pool:       parallel.NewShardPool(opts.Shards, opts.QueueDepth),
		reg:        obs.NewRegistry(),
		wal:        w,
		lifeCtx:    lifeCtx,
		lifeCancel: lifeCancel,
		breakers:   make(map[JobKind]*breaker),
		jobs:       make(map[string]*Job),
		flights:    make(map[string]*Job),
		inflight:   make(map[JobKind]int),
	}
	for _, kind := range Kinds() {
		s.breakers[kind] = newBreaker(opts.BreakerThreshold, opts.BreakerCooldown)
	}
	s.stats.WALRejected.Add(uint64(rejected))
	s.stats.register(s.reg)
	s.reg.Gauge("serve.jobs.tracked", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(len(s.jobs))
	})
	if err := s.replay(pending); err != nil {
		lifeCancel()
		return nil, err
	}
	return s, nil
}

// replay recovers the journal's pending jobs: each is either already in
// the cache (the process died between storing the result and marking
// the journal — complete it without re-executing) or re-queued for
// execution. Replayed jobs bypass the breaker and concurrency checks:
// they were accepted once already.
func (s *Server) replay(pending []walPending) error {
	for _, p := range pending {
		s.stats.WALReplayed.Add(1)
		j := s.newJobLocked(p.Key, p.Spec, s.effectiveTimeout(p.Spec.TimeoutMS))
		j.log.appendf(PhaseReplayed, "recovered from journal (accepted by a previous process)")
		s.logf("serve: replaying journaled job %s key %.12s…", j.id, j.key)

		if body, outcome, _ := s.store.Get(p.Key); outcome == Hit {
			// Completed before the crash; only the done marker was lost.
			s.stats.CacheHits.Add(1)
			s.walDone(j.key)
			s.settleFromBody(j, body, true)
			continue
		}
		s.mu.Lock()
		j.executing = true
		s.inflight[j.spec.Kind]++
		s.mu.Unlock()
		if err := s.pool.Submit(keyShard(p.Key), func() { s.run(j) }); err != nil {
			return fmt.Errorf("serve: replay %s: %w", p.Key, err)
		}
	}
	return nil
}

// newJobLocked allocates and registers a Job (takes s.mu itself).
func (s *Server) newJobLocked(key string, spec JobSpec, timeout time.Duration) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j := &Job{
		id:      fmt.Sprintf("j%06d", s.seq),
		key:     key,
		spec:    spec,
		timeout: timeout,
		log:     newEventLog(),
		done:    make(chan struct{}),
		state:   stateQueued,
	}
	s.jobs[j.id] = j
	s.flights[key] = j
	return j
}

// effectiveTimeout resolves a job's deadline from its requested
// TimeoutMS and the server's default/max policy.
func (s *Server) effectiveTimeout(requestedMS int) time.Duration {
	d := s.opts.DefaultTimeout
	if requestedMS > 0 {
		d = time.Duration(requestedMS) * time.Millisecond
	}
	if s.opts.MaxTimeout > 0 && d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d
}

// Store exposes the underlying result store (the -quick self-test
// tampers entries through it).
func (s *Server) Store() *Store { return s.store }

// WALDiagnostics re-reads the on-disk journal and reports its pending
// and rejected record counts (exported for the -chaos-quick self-test).
func (s *Server) WALDiagnostics() (pending, rejected int) {
	return verifyWAL(s.store.Dir(), s.store.secret)
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log(format, args...)
	}
}

// keyShard routes identical keys to one pool shard, so even a missed
// dedup would serialize rather than race.
func keyShard(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// ListenAndServe binds opts.Addr and serves until ctx is cancelled,
// then shuts down gracefully: stop accepting, finish in-flight
// handlers, drain the worker pool (queued jobs still run to a stored
// result within the drain window).
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.logf("serve: listening on http://%s (cache %s, %d shards)", ln.Addr(), s.store.Dir(), s.pool.Shards())
	return s.Serve(ctx, ln)
}

// Serve runs the service on an existing listener (tests and -quick use
// an ephemeral port). It owns the listener and the graceful drain:
// on ctx cancellation intake stops, queued and in-flight jobs get
// DrainWindow to finish, and whatever is still running after that is
// cancelled through the lifecycle context — those jobs stay pending in
// the journal and replay on the next start.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.stop()
		return err
	case <-ctx.Done():
	}
	s.logf("serve: shutting down")
	s.draining.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		s.logf("serve: shutdown: %v", err)
	}
	<-errc // http.ErrServerClosed
	s.stop()
	s.logf("serve: drained")
	return nil
}

// stop drains the pool under the drain window, cancels whatever
// outlives it, and closes the journal. Safe to call more than once.
func (s *Server) stop() {
	s.stopOnce.Do(func() {
		s.draining.Store(true)
		timer := time.AfterFunc(s.opts.DrainWindow, s.lifeCancel)
		s.pool.Drain()
		timer.Stop()
		s.lifeCancel()
		if err := s.wal.close(); err != nil {
			s.logf("serve: %v", err)
		}
	})
}

// Close shuts the server down outside Serve: drains the pool (within
// the drain window) and closes the journal. Tests and the -chaos-quick
// gate use it to release the cache directory before a restart.
func (s *Server) Close() { s.stop() }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// shed refuses a submission with 503 + Retry-After and counts it.
func (s *Server) shed(w http.ResponseWriter, retryAfter time.Duration, format string, args ...any) {
	s.stats.Shed.Add(1)
	if retryAfter < time.Second {
		retryAfter = time.Second
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds()+0.999)))
	httpError(w, http.StatusServiceUnavailable, format, args...)
}

// handleSubmit is POST /v1/jobs: canonicalize, dedupe against flights,
// consult the store, and only then — behind the breaker and concurrency
// limits, through the journal — queue an execution.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	key, canon, err := Key(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.stats.Submitted.Add(1)

	s.mu.Lock()
	if leader, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.stats.Deduped.Add(1)
		writeJSON(w, http.StatusOK, leader.view(true))
		return
	}
	s.mu.Unlock()
	j := s.newJobLocked(key, canon, s.effectiveTimeout(spec.TimeoutMS))
	j.log.appendf(PhaseQueued, "%s job %s key %s", canon.Kind, j.id, key)

	// The store consult happens with the flight registered, so a
	// concurrent identical submission coalesces instead of racing the
	// lookup. Cache hits are served even while shedding: they cost no
	// execution.
	body, outcome, cerr := s.store.Get(key)
	switch outcome {
	case Hit:
		s.stats.CacheHits.Add(1)
		s.settleFromBody(j, body, true)
		writeJSON(w, http.StatusOK, j.view(false))
		return
	case Rejected:
		s.stats.CacheRejected.Add(1)
		s.logf("%v (recomputing)", cerr)
		j.log.appendf(PhaseRejected, "%v", cerr)
	default:
		s.stats.CacheMisses.Add(1)
	}

	unregister := func() {
		s.mu.Lock()
		delete(s.jobs, j.id)
		delete(s.flights, key)
		s.mu.Unlock()
		j.log.close()
	}

	// Execution needed: check the kind's circuit breaker and concurrency
	// limit before committing to it.
	now := time.Now()
	if ok, retryAfter := s.breakerFor(canon.Kind).allow(now); !ok {
		unregister()
		s.shed(w, retryAfter, "%s circuit open (recent failures); retry later", canon.Kind)
		return
	}
	s.mu.Lock()
	if s.opts.KindConcurrency > 0 && s.inflight[canon.Kind] >= s.opts.KindConcurrency {
		s.mu.Unlock()
		unregister()
		s.shed(w, time.Second, "%s concurrency limit reached; retry later", canon.Kind)
		return
	}
	j.executing = true
	s.inflight[canon.Kind]++
	s.mu.Unlock()

	// Journal the acceptance before queueing: from here the job either
	// reaches a terminal state or replays after a crash.
	if err := s.wal.accept(key, canon); err != nil {
		s.logf("%v", err)
	}
	if err := s.pool.Submit(keyShard(key), func() { s.run(j) }); err != nil {
		s.walDone(key) // never queued; the client sees the refusal
		s.mu.Lock()
		s.inflight[canon.Kind]--
		j.executing = false
		s.mu.Unlock()
		unregister()
		if errors.Is(err, parallel.ErrDraining) {
			s.shed(w, time.Second, "server is draining")
		} else {
			s.shed(w, time.Second, "job queue full, retry later")
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.view(false))
}

func (s *Server) breakerFor(kind JobKind) *breaker {
	if b, ok := s.breakers[kind]; ok {
		return b
	}
	// Unreachable for validated specs; keep a permissive fallback.
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.breakers[kind]; ok {
		return b
	}
	b := newBreaker(s.opts.BreakerThreshold, s.opts.BreakerCooldown)
	s.breakers[kind] = b
	return b
}

// walDone marks a job terminal in the journal, tolerating journal
// errors (worst case the job replays once more).
func (s *Server) walDone(key string) {
	if err := s.wal.done(key); err != nil {
		s.logf("%v", err)
	}
}

// run executes one job on a pool worker: attempts with retry/backoff
// for transient failures, deterministic failures cached as failed
// results, deadline and shutdown cancellation told apart at the end.
func (s *Server) run(j *Job) {
	j.mu.Lock()
	j.state = stateRunning
	j.mu.Unlock()
	s.stats.Executed.Add(1)
	j.log.appendf(PhaseStarted, "executing %s job (workers=%d)", j.spec.Kind, parallel.Workers(s.opts.Workers))

	ctx := s.lifeCtx
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}
	policy := RetryPolicy{MaxAttempts: s.opts.MaxAttempts, Base: s.opts.RetryBase, Max: s.opts.RetryMax}

	var attempts []Attempt
	for att := 0; ; att++ {
		if att > 0 {
			s.stats.Retries.Add(1)
		}
		res, err := s.attempt(ctx, j, att)
		if err == nil {
			res.Key = j.key
			res.Attempts = attempts
			body, merr := MarshalResult(res)
			if merr != nil {
				s.failTerminal(j, merr, true)
				return
			}
			if perr := s.store.Put(j.key, body); perr != nil {
				// The result still serves from memory; only later
				// submissions lose the cache.
				s.logf("%v", perr)
			}
			s.stats.Completed.Add(1)
			s.walDone(j.key)
			s.breakerFor(j.spec.Kind).record(true, time.Now())
			s.settle(j, body, false, "")
			return
		}

		switch class := Classify(err); class {
		case ClassAborted:
			if s.lifeCtx.Err() != nil {
				// Server shutdown: no done marker — the journal keeps the
				// job pending and the next start replays it, so the
				// accepted job is not silently lost.
				s.logf("serve: job %s cancelled by shutdown (will replay)", j.id)
				s.stats.Failed.Add(1)
				s.settle(j, nil, false, "server shutting down; job will resume on restart")
				return
			}
			// The job's own deadline: a terminal, client-visible failure.
			s.stats.TimedOut.Add(1)
			s.logf("serve: job %s exceeded its %v deadline", j.id, j.timeout)
			s.failTerminal(j, fmt.Errorf("job deadline (%v) exceeded: %w", j.timeout, err), true)
			return
		case ClassTransient:
			if att+1 < policy.MaxAttempts {
				backoff := policy.Backoff(att, j.key)
				attempts = append(attempts, Attempt{N: att, Class: class.String(), Error: err.Error(), BackoffMS: backoff.Milliseconds()})
				j.log.appendf(PhaseRetry, "attempt %d failed (%v): retrying in %v", att, err, backoff)
				s.logf("serve: job %s attempt %d transient failure: %v (retry in %v)", j.id, att, err, backoff)
				t := time.NewTimer(backoff)
				select {
				case <-t.C:
					continue
				case <-ctx.Done():
					t.Stop()
					// Re-enter the loop; the next attempt sees the
					// cancelled context and takes the aborted path.
					continue
				}
			}
			attempts = append(attempts, Attempt{N: att, Class: class.String(), Error: err.Error()})
			s.failTerminal(j, fmt.Errorf("%d attempts exhausted, last: %w", policy.MaxAttempts, err), true)
			return
		default: // deterministic: cache the failure, never retry
			res := &JobResult{Kind: j.spec.Kind, Key: j.key, Error: err.Error(), Attempts: attempts}
			body, merr := MarshalResult(res)
			if merr != nil {
				s.failTerminal(j, err, true)
				return
			}
			if perr := s.store.Put(j.key, body); perr != nil {
				s.logf("%v", perr)
			}
			s.stats.Failed.Add(1)
			s.walDone(j.key)
			s.breakerFor(j.spec.Kind).record(false, time.Now())
			s.logf("serve: job %s failed deterministically (cached): %v", j.id, err)
			s.settle(j, body, false, err.Error())
			return
		}
	}
}

// attempt runs one try of a job's analysis: chaos injection first, then
// the runner under the attempt context, with panics recovered into
// parallel.PanicError — a pool shard must survive a buggy (or
// chaos-poisoned) runner.
func (s *Server) attempt(ctx context.Context, j *Job, att int) (res *JobResult, err error) {
	defer func() {
		if v := recover(); v != nil {
			if ce, ok := v.(*faults.ChaosError); ok {
				err = &parallel.PanicError{Index: att, Value: ce, Stack: string(debug.Stack())}
				return
			}
			err = &parallel.PanicError{Index: att, Value: v, Stack: string(debug.Stack())}
		}
	}()
	if d := s.opts.Chaos.Decide(j.key, att); d.Action != faults.ChaosNone {
		switch d.Action {
		case faults.ChaosPanic:
			panic(&faults.ChaosError{Action: d.Action, Key: j.key, Att: att})
		case faults.ChaosStall:
			return nil, &faults.ChaosError{Action: d.Action, Key: j.key, Att: att}
		case faults.ChaosSlow:
			t := time.NewTimer(d.Delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	runner, ok := Runner(j.spec.Kind)
	if !ok { // unreachable: Key validated the kind
		return nil, fmt.Errorf("serve: no runner for kind %q", j.spec.Kind)
	}
	bridge := &probeBridge{log: j.log}
	res, err = runner.Run(ctx, j.spec, RunOpts{
		Workers: s.opts.Workers,
		Log:     func(format string, args ...any) { j.log.appendf(PhaseLog, format, args...) },
		Probe:   bridge,
	})
	if err == nil {
		if n := bridge.count(); n > 0 {
			j.log.appendf(PhaseLog, "probe emitted %d events", n)
		}
	}
	return res, err
}

// failTerminal finishes a job in a visible, journaled failure (without
// caching it — transient exhaustion and deadlines may succeed on a
// fresh submission).
func (s *Server) failTerminal(j *Job, err error, walDone bool) {
	s.stats.Failed.Add(1)
	if walDone {
		s.walDone(j.key)
	}
	s.breakerFor(j.spec.Kind).record(false, time.Now())
	s.logf("serve: job %s failed: %v", j.id, err)
	s.settle(j, nil, false, err.Error())
}

// settleFromBody finishes a job from stored result bytes, surfacing
// cached deterministic failures as failed jobs.
func (s *Server) settleFromBody(j *Job, body []byte, cached bool) {
	var probe struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(body, &probe)
	s.settle(j, body, cached, probe.Error)
}

// settle moves a job to its terminal state, emits the terminal event,
// releases the flight and execution slot, and closes the stream.
func (s *Server) settle(j *Job, body []byte, cached bool, errMsg string) {
	j.mu.Lock()
	j.body = body
	j.cached = cached
	j.errMsg = errMsg
	switch {
	case errMsg != "":
		j.state = stateFailed
	default:
		j.state = stateDone
	}
	j.mu.Unlock()

	s.mu.Lock()
	if s.flights[j.key] == j {
		delete(s.flights, j.key)
	}
	if j.executing {
		s.inflight[j.spec.Kind]--
		j.executing = false
	}
	s.mu.Unlock()

	switch {
	case errMsg != "":
		j.log.appendf(PhaseFailed, "%s", errMsg)
	case cached:
		j.log.appendf(PhaseCached, "served from cache entry %s", j.key)
	default:
		j.log.appendf(PhaseDone, "result stored under %s", j.key)
	}
	close(j.done)
	j.log.close()
}

func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// handleJob is GET /v1/jobs/{id}, with ?wait=<duration> blocking until
// the job settles (or the wait/request expires — the job view then
// reports whatever state it reached).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad wait %q: %v", waitStr, err)
			return
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, j.view(false))
}

// handleList is GET /v1/jobs: every tracked job, id-ordered, without
// result bodies.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		v := j.view(false)
		v.Result = nil
		views = append(views, v)
	}
	s.mu.Unlock()
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	writeJSON(w, http.StatusOK, views)
}

// handleHealthz is GET /healthz: liveness — the process is up and
// serving HTTP. Always 200; drain state is reported, not failed, so
// orchestrators do not kill a server mid-drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"draining": s.draining.Load(),
	})
}

// handleReadyz is GET /readyz: readiness to take new work — 503 while
// draining or while any kind's circuit is open, with the per-kind
// breaker and in-flight detail either way.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	draining := s.draining.Load()
	breakers := map[string]string{}
	ready := !draining
	for _, kind := range Kinds() {
		st := s.breakerFor(kind).state(now)
		breakers[string(kind)] = st
		if st == "open" {
			ready = false
		}
	}
	inflight := map[string]int{}
	s.mu.Lock()
	for kind, n := range s.inflight {
		if n > 0 {
			inflight[string(kind)] = n
		}
	}
	s.mu.Unlock()
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"ready":    ready,
		"draining": draining,
		"breakers": breakers,
		"inflight": inflight,
	})
}

// handleEvents is GET /v1/jobs/{id}/events: the job's progress stream,
// as Server-Sent Events when the client asks for text/event-stream and
// as JSON Lines otherwise. The stream replays history, follows live
// events, and ends when the job settles.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(ev JobEvent) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	replay, live, cancel := j.log.subscribe()
	defer cancel()
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleStats is GET /v1/stats: the obs registry snapshot as a flat
// name → value JSON object.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot().Map())
}
