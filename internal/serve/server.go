package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pandora/internal/obs"
	"pandora/internal/parallel"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address for ListenAndServe ("127.0.0.1:0"
	// picks an ephemeral port).
	Addr string
	// CacheDir roots the content-addressed result store.
	CacheDir string
	// Shards / QueueDepth size the worker pool (0 = defaults: one shard
	// per CPU, 64 queued jobs per shard).
	Shards     int
	QueueDepth int
	// Workers bounds each job's internal analysis fan-out (0 =
	// GOMAXPROCS). Never part of the cache key.
	Workers int
	// Log receives server narrative lines (nil = silent).
	Log func(format string, args ...any)
}

// Stats counts the server's job traffic. Fields are atomics because
// jobs complete on pool workers while HTTP handlers submit and read
// concurrently; the obs registry reads them through Load closures.
type Stats struct {
	Submitted     atomic.Uint64 // jobs accepted by POST /v1/jobs
	Executed      atomic.Uint64 // jobs actually run on the pool
	Completed     atomic.Uint64 // jobs that ran to a stored result
	Failed        atomic.Uint64 // jobs whose analysis returned an error
	Deduped       atomic.Uint64 // submissions coalesced onto an in-flight job
	CacheHits     atomic.Uint64 // submissions served from the store
	CacheMisses   atomic.Uint64 // submissions that found no entry
	CacheRejected atomic.Uint64 // entries that failed authentication
}

// register exposes the counters on an obs registry under serve.*.
func (st *Stats) register(reg *obs.Registry) {
	reg.Counter("serve.submitted", st.Submitted.Load)
	reg.Counter("serve.executed", st.Executed.Load)
	reg.Counter("serve.completed", st.Completed.Load)
	reg.Counter("serve.failed", st.Failed.Load)
	reg.Counter("serve.deduped", st.Deduped.Load)
	reg.Counter("serve.cache.hits", st.CacheHits.Load)
	reg.Counter("serve.cache.misses", st.CacheMisses.Load)
	reg.Counter("serve.cache.rejected", st.CacheRejected.Load)
}

type jobState string

const (
	stateQueued  jobState = "queued"
	stateRunning jobState = "running"
	stateDone    jobState = "done"
	stateFailed  jobState = "failed"
)

// Job is one tracked submission. Identical submissions share one Job
// while it is in flight (singleflight) and share its cache entry after.
type Job struct {
	id   string
	key  string
	spec JobSpec
	log  *eventLog
	done chan struct{}

	mu     sync.Mutex
	state  jobState
	cached bool
	body   []byte
	errMsg string
}

// JobView is the client-facing rendering of a Job.
type JobView struct {
	ID      string          `json:"id"`
	Key     string          `json:"key"`
	Kind    JobKind         `json:"kind"`
	Spec    JobSpec         `json:"spec"`
	State   string          `json:"state"`
	Cached  bool            `json:"cached,omitempty"`
	Deduped bool            `json:"deduped,omitempty"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

func (j *Job) view(deduped bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.id,
		Key:     j.key,
		Kind:    j.spec.Kind,
		Spec:    j.spec,
		State:   string(j.state),
		Cached:  j.cached,
		Deduped: deduped,
		Error:   j.errMsg,
	}
	if j.state == stateDone {
		v.Result = json.RawMessage(j.body)
	}
	return v
}

// Server is the `pandora serve` service: HTTP job API in front of the
// content-addressed store and the sharded worker pool.
type Server struct {
	opts  Options
	store *Store
	pool  *parallel.ShardPool
	reg   *obs.Registry
	stats Stats

	mu      sync.Mutex
	jobs    map[string]*Job
	flights map[string]*Job // cache key → in-flight job
	seq     int
}

// New builds a Server: opens (or creates) the store and starts the
// worker pool.
func New(opts Options) (*Server, error) {
	if opts.CacheDir == "" {
		return nil, fmt.Errorf("serve: Options.CacheDir is required")
	}
	store, err := OpenStore(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		store:   store,
		pool:    parallel.NewShardPool(opts.Shards, opts.QueueDepth),
		reg:     obs.NewRegistry(),
		jobs:    make(map[string]*Job),
		flights: make(map[string]*Job),
	}
	s.stats.register(s.reg)
	s.reg.Gauge("serve.jobs.tracked", func() uint64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return uint64(len(s.jobs))
	})
	return s, nil
}

// Store exposes the underlying result store (the -quick self-test
// tampers entries through it).
func (s *Server) Store() *Store { return s.store }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log(format, args...)
	}
}

// keyShard routes identical keys to one pool shard, so even a missed
// dedup would serialize rather than race.
func keyShard(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// ListenAndServe binds opts.Addr and serves until ctx is cancelled,
// then shuts down gracefully: stop accepting, finish in-flight
// handlers, drain the worker pool (queued jobs still run to a stored
// result).
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.logf("serve: listening on http://%s (cache %s, %d shards)", ln.Addr(), s.store.Dir(), s.pool.Shards())
	return s.Serve(ctx, ln)
}

// Serve runs the service on an existing listener (tests and -quick use
// an ephemeral port). It owns the listener and the graceful drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		s.pool.Drain()
		return err
	case <-ctx.Done():
	}
	s.logf("serve: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		s.logf("serve: shutdown: %v", err)
	}
	<-errc // http.ErrServerClosed
	s.pool.Drain()
	s.logf("serve: drained")
	return nil
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit is POST /v1/jobs: canonicalize, dedupe against flights,
// consult the store, and only then queue an execution.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	key, canon, err := Key(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.stats.Submitted.Add(1)

	s.mu.Lock()
	if leader, ok := s.flights[key]; ok {
		s.mu.Unlock()
		s.stats.Deduped.Add(1)
		writeJSON(w, http.StatusOK, leader.view(true))
		return
	}
	s.seq++
	j := &Job{
		id:    fmt.Sprintf("j%06d", s.seq),
		key:   key,
		spec:  canon,
		log:   newEventLog(),
		done:  make(chan struct{}),
		state: stateQueued,
	}
	s.jobs[j.id] = j
	s.flights[key] = j
	s.mu.Unlock()
	j.log.appendf(PhaseQueued, "%s job %s key %s", canon.Kind, j.id, key)

	// The store consult happens with the flight registered, so a
	// concurrent identical submission coalesces instead of racing the
	// lookup.
	body, outcome, cerr := s.store.Get(key)
	switch outcome {
	case Hit:
		s.stats.CacheHits.Add(1)
		s.settle(j, body, true, "")
		writeJSON(w, http.StatusOK, j.view(false))
		return
	case Rejected:
		s.stats.CacheRejected.Add(1)
		s.logf("%v (recomputing)", cerr)
		j.log.appendf(PhaseRejected, "%v", cerr)
	default:
		s.stats.CacheMisses.Add(1)
	}

	if err := s.pool.Submit(keyShard(key), func() { s.run(j) }); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		delete(s.flights, key)
		s.mu.Unlock()
		j.log.close()
		if errors.Is(err, parallel.ErrDraining) {
			httpError(w, http.StatusServiceUnavailable, "server is draining")
		} else {
			httpError(w, http.StatusServiceUnavailable, "job queue full, retry later")
		}
		return
	}
	writeJSON(w, http.StatusAccepted, j.view(false))
}

// run executes one job on a pool worker and stores its result.
func (s *Server) run(j *Job) {
	j.mu.Lock()
	j.state = stateRunning
	j.mu.Unlock()
	s.stats.Executed.Add(1)
	j.log.appendf(PhaseStarted, "executing %s job (workers=%d)", j.spec.Kind, parallel.Workers(s.opts.Workers))

	bridge := &probeBridge{log: j.log}
	runner, ok := Runner(j.spec.Kind)
	if !ok { // unreachable: Key validated the kind
		s.fail(j, fmt.Errorf("serve: no runner for kind %q", j.spec.Kind))
		return
	}
	res, err := runner.Run(context.Background(), j.spec, RunOpts{
		Workers: s.opts.Workers,
		Log:     func(format string, args ...any) { j.log.appendf(PhaseLog, format, args...) },
		Probe:   bridge,
	})
	if err != nil {
		s.fail(j, err)
		return
	}
	res.Key = j.key
	body, err := MarshalResult(res)
	if err != nil {
		s.fail(j, err)
		return
	}
	if err := s.store.Put(j.key, body); err != nil {
		// The result still serves from memory; only later submissions
		// lose the cache.
		s.logf("%v", err)
	}
	s.stats.Completed.Add(1)
	if n := bridge.count(); n > 0 {
		j.log.appendf(PhaseLog, "probe emitted %d events", n)
	}
	s.settle(j, body, false, "")
}

// fail finishes a job whose analysis errored.
func (s *Server) fail(j *Job, err error) {
	s.stats.Failed.Add(1)
	s.logf("serve: job %s failed: %v", j.id, err)
	s.settle(j, nil, false, err.Error())
}

// settle moves a job to its terminal state, emits the terminal event,
// releases the flight and closes the stream.
func (s *Server) settle(j *Job, body []byte, cached bool, errMsg string) {
	j.mu.Lock()
	j.body = body
	j.cached = cached
	j.errMsg = errMsg
	switch {
	case errMsg != "":
		j.state = stateFailed
	default:
		j.state = stateDone
	}
	j.mu.Unlock()

	s.mu.Lock()
	if s.flights[j.key] == j {
		delete(s.flights, j.key)
	}
	s.mu.Unlock()

	switch {
	case errMsg != "":
		j.log.appendf(PhaseFailed, "%s", errMsg)
	case cached:
		j.log.appendf(PhaseCached, "served from cache entry %s", j.key)
	default:
		j.log.appendf(PhaseDone, "result stored under %s", j.key)
	}
	close(j.done)
	j.log.close()
}

func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// handleJob is GET /v1/jobs/{id}, with ?wait=<duration> blocking until
// the job settles (or the wait/request expires — the job view then
// reports whatever state it reached).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad wait %q: %v", waitStr, err)
			return
		}
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, j.view(false))
}

// handleList is GET /v1/jobs: every tracked job, id-ordered, without
// result bodies.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		v := j.view(false)
		v.Result = nil
		views = append(views, v)
	}
	s.mu.Unlock()
	sort.Slice(views, func(a, b int) bool { return views[a].ID < views[b].ID })
	writeJSON(w, http.StatusOK, views)
}

// handleEvents is GET /v1/jobs/{id}/events: the job's progress stream,
// as Server-Sent Events when the client asks for text/event-stream and
// as JSON Lines otherwise. The stream replays history, follows live
// events, and ends when the job settles.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	emit := func(ev JobEvent) bool {
		b, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", b)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", b)
		}
		if err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}

	replay, live, cancel := j.log.subscribe()
	defer cancel()
	for _, ev := range replay {
		if !emit(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok {
				return
			}
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleStats is GET /v1/stats: the obs registry snapshot as a flat
// name → value JSON object.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot().Map())
}
