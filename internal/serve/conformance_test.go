package serve

import (
	"context"
	"strings"
	"testing"

	"pandora/internal/core"
	"pandora/internal/kernels"
)

// TestEveryScenarioReachableFromEveryFrontEnd is the registry
// conformance gate: every scenario in the core registry — built-ins and
// the self-registered crypto kernels alike — is reachable exactly
// through the front ends its Supports declares: core.ScanScenario,
// core.RunTrace, and serve job submission (Canonical). Unsupported
// directions must be rejected with an error, never a panic.
func TestEveryScenarioReachableFromEveryFrontEnd(t *testing.T) {
	all := core.Scenarios()
	if len(all) < 8+len(kernels.Kernels()) {
		t.Fatalf("registry has %d scenarios, want the 8 built-ins plus %d kernels", len(all), len(kernels.Kernels()))
	}
	for _, s := range all {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			_, scanErr := Canonical(JobSpec{Kind: KindScan, Scenario: s.Name})
			if s.Supports(core.AnalysisScan) != (scanErr == nil) {
				t.Errorf("scan job submission: supports=%v err=%v", s.Supports(core.AnalysisScan), scanErr)
			}
			_, traceErr := Canonical(JobSpec{Kind: KindTrace, Scenario: s.Name})
			if s.Supports(core.AnalysisTrace) != (traceErr == nil) {
				t.Errorf("trace job submission: supports=%v err=%v", s.Supports(core.AnalysisTrace), traceErr)
			}
			if !s.Supports(core.AnalysisScan) {
				if _, err := core.ScanScenario(context.Background(), s.Name); err == nil {
					t.Error("ScanScenario accepted an unsupported scenario")
				}
			}
			if !s.Supports(core.AnalysisTrace) {
				if _, err := core.RunTrace(context.Background(), s.Name, 0, 1); err == nil {
					t.Error("RunTrace accepted an unsupported scenario")
				}
			}
		})
	}
}

// TestKernelScenariosRegistered: importing the serve package (which any
// front end does) is enough to make every kernel a scan AND trace
// scenario — the "registration stays open" acceptance criterion.
func TestKernelScenariosRegistered(t *testing.T) {
	for _, k := range kernels.Kernels() {
		s, ok := core.ScenarioByName(k.Name)
		if !ok {
			t.Errorf("kernel %q not in the scenario registry", k.Name)
			continue
		}
		if !s.Supports(core.AnalysisScan) || !s.Supports(core.AnalysisTrace) {
			t.Errorf("kernel %q: scan=%v trace=%v, want both", k.Name,
				s.Supports(core.AnalysisScan), s.Supports(core.AnalysisTrace))
		}
	}
}

// TestScanJobCanonicalizesMachineSpec: two spellings of one machine are
// one cache key, and the canonical spelling is what the spec stores.
func TestScanJobCanonicalizesMachineSpec(t *testing.T) {
	src := "halt\n"
	a, canonA, err := Key(JobSpec{Kind: KindScan, Source: src, Machine: " vp:8 , silentstores "})
	if err != nil {
		t.Fatal(err)
	}
	b, canonB, err := Key(JobSpec{Kind: KindScan, Source: src, Machine: "silentstores,vp:8"})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equivalent machine spellings hash to different keys:\n%s\n%s", a, b)
	}
	if canonA.Machine != "silentstores,vp:8" || canonB.Machine != canonA.Machine {
		t.Fatalf("canonical machine = %q / %q, want %q", canonA.Machine, canonB.Machine, "silentstores,vp:8")
	}
	// A different machine still means a different job.
	c, _, err := Key(JobSpec{Kind: KindScan, Source: src, Machine: "vp:9,silentstores"})
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different machines share a key")
	}
	// And a bad spec surfaces the structured grammar error.
	_, _, err = Key(JobSpec{Kind: KindScan, Source: src, Machine: "vp:zero"})
	if err == nil || !strings.Contains(err.Error(), "bad argument") {
		t.Fatalf("bad machine spec error = %v, want a bad-argument SpecError", err)
	}
}

// TestContractJobCanonicalization: kernel/variant subsets canonicalize
// to library/harness order, empty selections expand to the full sets,
// and unknown names are rejected.
func TestContractJobCanonicalization(t *testing.T) {
	canon, err := Canonical(JobSpec{Kind: KindContract})
	if err != nil {
		t.Fatal(err)
	}
	if len(canon.Kernels) != len(kernels.Names()) || len(canon.Variants) == 0 {
		t.Fatalf("empty selection canonicalized to %v / %v", canon.Kernels, canon.Variants)
	}
	if canon.Masks != 512 {
		t.Fatalf("default masks = %d, want 512", canon.Masks)
	}
	reordered, err := Canonical(JobSpec{Kind: KindContract,
		Kernels: []string{"bsaes-sbox", "chacha20-qr"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(reordered.Kernels) != 2 || reordered.Kernels[0] != "chacha20-qr" {
		t.Fatalf("subset not in library order: %v", reordered.Kernels)
	}
	if _, err := Canonical(JobSpec{Kind: KindContract, Kernels: []string{"des"}}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if _, err := Canonical(JobSpec{Kind: KindContract, Variants: []string{"huge-fa"}}); err == nil {
		t.Fatal("unknown variant accepted")
	}
	if _, err := Canonical(JobSpec{Kind: KindContract, Masks: 1000}); err == nil {
		t.Fatal("out-of-range mask count accepted")
	}
}
