package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pandora/internal/faults"
	"pandora/internal/parallel"
	"pandora/internal/pipeline"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want FailureClass
	}{
		{nil, ClassDeterministic},
		{errors.New("assembly failed"), ClassDeterministic},
		{&pipeline.StallError{Reason: pipeline.ReasonPipelineError, Cause: errors.New("invariant"), Dump: &pipeline.CoreDump{}}, ClassDeterministic},
		{&pipeline.StallError{Reason: pipeline.ReasonWatchdog, Dump: &pipeline.CoreDump{}}, ClassTransient},
		{&parallel.PanicError{Index: 0, Value: "boom"}, ClassTransient},
		{&faults.ChaosError{Action: faults.ChaosStall, Key: "k", Att: 0}, ClassTransient},
		{fmt.Errorf("wrapped: %w", &faults.ChaosError{Action: faults.ChaosPanic, Key: "k"}), ClassTransient},
		{context.Canceled, ClassAborted},
		{context.DeadlineExceeded, ClassAborted},
		{pipeline.ErrCancelled, ClassAborted},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), ClassAborted},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	prev := time.Duration(0)
	for att := 0; att < 4; att++ {
		d := p.Backoff(att, "key")
		if d < prev {
			t.Fatalf("backoff shrank: attempt %d gave %v after %v", att, d, prev)
		}
		prev = d
	}
	// The cap bounds growth: base*2^10 would be ~10s, the cap plus its
	// jitter allowance keeps it under 1.5*Max.
	if d := p.Backoff(10, "key"); d > p.Max+p.Max/2 {
		t.Fatalf("capped backoff %v exceeds max %v plus jitter", d, p.Max)
	}
}

func TestBackoffDeterministicPerKeyJitteredAcrossKeys(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3, Base: 10 * time.Millisecond, Max: time.Second}
	if a, b := p.Backoff(1, "job-a"), p.Backoff(1, "job-a"); a != b {
		t.Fatalf("backoff not deterministic for one key: %v vs %v", a, b)
	}
	distinct := map[time.Duration]bool{}
	for i := 0; i < 16; i++ {
		distinct[p.Backoff(1, fmt.Sprintf("job-%d", i))] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("jitter produced no spread across 16 keys")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, time.Minute)

	// Closed: failures below the threshold do not shed.
	for i := 0; i < 2; i++ {
		if ok, _ := b.allow(now); !ok {
			t.Fatalf("breaker shed below threshold (failure %d)", i)
		}
		b.record(false, now)
	}
	if st := b.state(now); st != "closed" {
		t.Fatalf("state %q after 2 failures, want closed", st)
	}

	// Third consecutive failure opens the circuit.
	b.record(false, now)
	ok, retryAfter := b.allow(now)
	if ok || retryAfter <= 0 {
		t.Fatalf("open breaker allowed a submission (retryAfter=%v)", retryAfter)
	}
	if st := b.state(now); st != "open" {
		t.Fatalf("state %q, want open", st)
	}

	// After the cooldown: one half-open probe, everything else shed.
	later := now.Add(2 * time.Minute)
	if ok, _ := b.allow(later); !ok {
		t.Fatalf("half-open breaker refused the probe")
	}
	if ok, _ := b.allow(later); ok {
		t.Fatalf("half-open breaker admitted a second concurrent probe")
	}

	// Probe failure re-opens; probe success closes.
	b.record(false, later)
	if ok, _ := b.allow(later); ok {
		t.Fatalf("breaker closed after a failed probe")
	}
	evenLater := later.Add(2 * time.Minute)
	if ok, _ := b.allow(evenLater); !ok {
		t.Fatalf("no second probe after another cooldown")
	}
	b.record(true, evenLater)
	if st := b.state(evenLater); st != "closed" {
		t.Fatalf("state %q after successful probe, want closed", st)
	}
	if ok, _ := b.allow(evenLater); !ok {
		t.Fatalf("closed breaker shed traffic")
	}
}
