package serve

import (
	"bytes"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Store is the content-addressed result cache. Entries live at
// dir/<key[:2]>/<key>.entry as a one-line JSON identity header followed
// by the result body. The header carries an HMAC-SHA256 over (key, code
// version, body) under a per-store secret key, so an entry whose body
// or header was modified on disk — or that was written by a different
// code version — fails authentication on read and is rejected and
// deleted, forcing a recompute. This is the campaign journal's
// identity-header discipline applied to a content-addressed store.
type Store struct {
	dir    string
	secret []byte
}

// entryHeader is the identity header, one JSON line ahead of the body.
type entryHeader struct {
	Version int    `json:"version"`
	Key     string `json:"key"`
	Code    string `json:"code"`
	MAC     string `json:"mac"`
}

// storeVersion is the on-disk entry layout version.
const storeVersion = 1

// secretFile holds the store's MAC key, created on first open.
const secretFile = "secret.key"

// Outcome classifies one Get.
type Outcome int

const (
	// Miss: no entry on disk.
	Miss Outcome = iota
	// Hit: entry present and authenticated.
	Hit
	// Rejected: entry present but failed authentication (tampered body,
	// tampered header, or version skew); it has been deleted.
	Rejected
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Rejected:
		return "rejected"
	default:
		return "miss"
	}
}

// OpenStore opens (creating if needed) a store rooted at dir and loads
// or generates its MAC secret.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: open store: %w", err)
	}
	path := filepath.Join(dir, secretFile)
	secret, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		secret = make([]byte, 32)
		if _, err := rand.Read(secret); err != nil {
			return nil, fmt.Errorf("serve: generate store secret: %w", err)
		}
		if err := os.WriteFile(path, secret, 0o600); err != nil {
			return nil, fmt.Errorf("serve: write store secret: %w", err)
		}
	} else if err != nil {
		return nil, fmt.Errorf("serve: read store secret: %w", err)
	}
	if len(secret) < 16 {
		return nil, fmt.Errorf("serve: store secret %s too short (%d bytes)", path, len(secret))
	}
	return &Store{dir: dir, secret: secret}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// EntryPath returns where the entry for a key lives (whether or not it
// exists yet).
func (s *Store) EntryPath(key string) string {
	prefix := key
	if len(prefix) > 2 {
		prefix = prefix[:2]
	}
	return filepath.Join(s.dir, prefix, key+".entry")
}

// mac computes the identity MAC binding a body to its key and code
// version under the store secret.
func (s *Store) mac(key string, body []byte) string {
	h := hmac.New(sha256.New, s.secret)
	h.Write([]byte(key))
	h.Write([]byte{'\n'})
	h.Write([]byte(CodeVersion))
	h.Write([]byte{'\n'})
	h.Write(body)
	return hex.EncodeToString(h.Sum(nil))
}

// Put stores a result body under its key, atomically (write to a temp
// file in the same directory, then rename).
func (s *Store) Put(key string, body []byte) error {
	hdr, err := json.Marshal(entryHeader{
		Version: storeVersion,
		Key:     key,
		Code:    CodeVersion,
		MAC:     s.mac(key, body),
	})
	if err != nil {
		return fmt.Errorf("serve: marshal entry header: %w", err)
	}
	path := s.EntryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(append(hdr, '\n'), body...)); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: store put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: store put: %w", err)
	}
	return nil
}

// Get looks up a key. On Hit the returned body is the exact bytes Put
// stored. On Rejected the entry failed authentication and has been
// deleted so the caller recomputes; the error explains why (it is
// diagnostic, not fatal). On Miss both returns are nil.
func (s *Store) Get(key string) ([]byte, Outcome, error) {
	path := s.EntryPath(key)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, Miss, nil
	}
	if err != nil {
		return nil, Miss, fmt.Errorf("serve: store get: %w", err)
	}
	reject := func(why string) ([]byte, Outcome, error) {
		os.Remove(path)
		return nil, Rejected, fmt.Errorf("serve: cache entry %s rejected: %s", key, why)
	}
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return reject("no identity header")
	}
	var hdr entryHeader
	if err := json.Unmarshal(raw[:nl], &hdr); err != nil {
		return reject("unparseable identity header")
	}
	body := raw[nl+1:]
	switch {
	case hdr.Version != storeVersion:
		return reject(fmt.Sprintf("entry version %d (want %d)", hdr.Version, storeVersion))
	case hdr.Key != key:
		return reject("identity header names a different key")
	case hdr.Code != CodeVersion:
		return reject(fmt.Sprintf("code version %q (running %q)", hdr.Code, CodeVersion))
	case !hmac.Equal([]byte(hdr.MAC), []byte(s.mac(key, body))):
		return reject("identity MAC mismatch")
	}
	return body, Hit, nil
}
