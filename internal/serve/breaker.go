package serve

import (
	"sync"
	"time"
)

// breaker is a per-job-kind circuit breaker: consecutive terminal
// failures past a threshold open the circuit, and while it is open the
// server sheds that kind's submissions with 503 + Retry-After instead
// of queueing work it expects to fail. After the cooldown one probe
// submission is let through half-open: success closes the circuit,
// failure re-opens it for another cooldown.
//
// The breaker sees terminal verdicts only — a transient failure that a
// retry recovered counts as the success it ended in, and cache hits
// never touch it.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	consecutive int
	openUntil   time.Time
	probing     bool
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a submission may proceed now. When it may not,
// retryAfter is how long the client should wait before retrying.
func (b *breaker) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.consecutive < b.threshold {
		return true, 0
	}
	if now.Before(b.openUntil) {
		return false, b.openUntil.Sub(now)
	}
	// Cooldown elapsed: admit one half-open probe, shed the rest until
	// its verdict lands.
	if b.probing {
		return false, b.cooldown
	}
	b.probing = true
	return true, 0
}

// record feeds one terminal job verdict back.
func (b *breaker) record(success bool, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if success {
		b.consecutive = 0
		return
	}
	b.consecutive++
	if b.consecutive >= b.threshold {
		b.openUntil = now.Add(b.cooldown)
	}
}

// state summarizes the breaker for the readiness endpoint.
func (b *breaker) state(now time.Time) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.consecutive < b.threshold:
		return "closed"
	case now.Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}
