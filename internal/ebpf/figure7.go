package ebpf

// Figure7Program constructs the paper's Figure 7a attacker program as
// bytecode: for j in [0, n-1): v=Z.lookup(j); if(!v) return 0;
// v=Y.lookup(*v); if(!v) return 0; v=X.lookup(*v); if(!v) return 0;
// if(!*v) return 0. The explicit NULL checks after every lookup are
// "bounds checks in disguise" — they are exactly what makes the verifier
// accept the program while the hardware prefetcher runs ahead of them.
//
// ChaseLevel names one indirection level of a chase program: the map to
// look up and the width of the value load from its element.
type ChaseLevel struct {
	Map      int64
	LoadSize int
}

// ChaseProgram generalizes Figure 7a to an arbitrary indirection depth:
// for j in [0, n-1): v = L0.lookup(j); check; v = L1.lookup(*v); check;
// ... — the access pattern of an N-level data memory-dependent
// prefetcher (Yu et al. for 3 levels, Ainsworth & Jones for 4).
func ChaseProgram(levels []ChaseLevel, n int64) Program {
	const (
		rJ   = Reg(6)
		rTmp = Reg(7)
	)
	var p Program
	emit := func(in Inst) { p = append(p, in) }

	// Layout: [0] j=0, [1] key=j, [2..2+4L) levels (4 each), then j++ and
	// the back-branch, then the shared exit path.
	exitPath := int64(2 + 4*len(levels) + 2)

	emit(Inst{Op: OpMovImm, Dst: rJ, Imm: 0})
	loopStart := int64(len(p))
	emit(Inst{Op: OpMovReg, Dst: 2, Src: rJ})
	for i, lv := range levels {
		emit(Inst{Op: OpCallLookup, Imm: lv.Map})
		emit(Inst{Op: OpJEqImm, Dst: 0, Imm: 0, Off: exitPath})
		emit(Inst{Op: OpLoad, Dst: rTmp, Src: 0, Size: lv.LoadSize})
		if i+1 < len(levels) {
			emit(Inst{Op: OpMovReg, Dst: 2, Src: rTmp})
		} else {
			// The final `if (!*v)` read needs no further key move; pad so
			// every level is the same length (keeps exitPath static).
			emit(Inst{Op: OpMovReg, Dst: rTmp, Src: rTmp})
		}
	}
	emit(Inst{Op: OpAddImm, Dst: rJ, Imm: 1})
	emit(Inst{Op: OpJLtImm, Dst: rJ, Imm: n - 1, Off: loopStart})
	// exitPath:
	emit(Inst{Op: OpMovImm, Dst: 0, Imm: 0})
	emit(Inst{Op: OpExit})
	return p
}

// z, y, x are map indices in the environment; n is the Z iteration bound;
// zSize, ySize and xSize are the widths of the value loads from each map
// (at most the corresponding element size).
func Figure7Program(z, y, x int64, n int64, zSize, ySize, xSize int) Program {
	const (
		rJ   = Reg(6)
		rTmp = Reg(7)
	)
	var p Program
	emit := func(in Inst) { p = append(p, in) }

	// Indices of labeled instructions, laid out up front: the program is
	// a fixed shape so targets are known constants.
	const (
		loopStart = 1
		exitPath  = 15
	)

	emit(Inst{Op: OpMovImm, Dst: rJ, Imm: 0}) // 0: j = 0
	// loop (1):
	emit(Inst{Op: OpMovReg, Dst: 2, Src: rJ})                     // 1: key = j
	emit(Inst{Op: OpCallLookup, Imm: z})                          // 2: r0 = Z.lookup(j)
	emit(Inst{Op: OpJEqImm, Dst: 0, Imm: 0, Off: exitPath})       // 3: if (!v) return
	emit(Inst{Op: OpLoad, Dst: rTmp, Src: 0, Size: zSize})        // 4: t = *v  (Z[j])
	emit(Inst{Op: OpMovReg, Dst: 2, Src: rTmp})                   // 5: key = Z[j]
	emit(Inst{Op: OpCallLookup, Imm: y})                          // 6: r0 = Y.lookup(Z[j])
	emit(Inst{Op: OpJEqImm, Dst: 0, Imm: 0, Off: exitPath})       // 7
	emit(Inst{Op: OpLoad, Dst: rTmp, Src: 0, Size: ySize})        // 8: t = Y[Z[j]]
	emit(Inst{Op: OpMovReg, Dst: 2, Src: rTmp})                   // 9
	emit(Inst{Op: OpCallLookup, Imm: x})                          // 10: r0 = X.lookup(Y[Z[j]])
	emit(Inst{Op: OpJEqImm, Dst: 0, Imm: 0, Off: exitPath})       // 11
	emit(Inst{Op: OpLoad, Dst: rTmp, Src: 0, Size: xSize})        // 12: if (!*v) — the read
	emit(Inst{Op: OpAddImm, Dst: rJ, Imm: 1})                     // 13: j++
	emit(Inst{Op: OpJLtImm, Dst: rJ, Imm: n - 1, Off: loopStart}) // 14: j < N-1
	emit(Inst{Op: OpMovImm, Dst: 0, Imm: 0})                      // 15 (exitPath): return 0
	emit(Inst{Op: OpExit})                                        // 16
	return p
}

// Figure7ProgramUnchecked is the same access pattern without the NULL
// checks — the program a naive attacker would write. The verifier must
// reject it; the test for that rejection is the reproduction of the
// paper's observation that "eBPF complains unless one adds explicit NULL
// dereference checks".
func Figure7ProgramUnchecked(z, y, x int64, n int64, zSize, ySize, xSize int) Program {
	const (
		rJ   = Reg(6)
		rTmp = Reg(7)
	)
	return Program{
		{Op: OpMovImm, Dst: rJ, Imm: 0},
		{Op: OpMovReg, Dst: 2, Src: rJ},
		{Op: OpCallLookup, Imm: z},
		{Op: OpLoad, Dst: rTmp, Src: 0, Size: zSize}, // deref without check
		{Op: OpMovReg, Dst: 2, Src: rTmp},
		{Op: OpCallLookup, Imm: y},
		{Op: OpLoad, Dst: rTmp, Src: 0, Size: ySize},
		{Op: OpMovReg, Dst: 2, Src: rTmp},
		{Op: OpCallLookup, Imm: x},
		{Op: OpLoad, Dst: rTmp, Src: 0, Size: xSize},
		{Op: OpAddImm, Dst: rJ, Imm: 1},
		{Op: OpJLtImm, Dst: rJ, Imm: n - 1, Off: 1},
		{Op: OpMovImm, Dst: 0, Imm: 0},
		{Op: OpExit},
	}
}
