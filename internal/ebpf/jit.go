package ebpf

import (
	"fmt"

	"pandora/internal/isa"
)

// JIT lowers verified bytecode to the toy ISA. eBPF registers R0..R10 map
// to x5..x15; x20/x21 are JIT temporaries. Map lookups are inlined as a
// bounds check plus scaled base addition — the same shape as the kernel
// JIT output shown in the paper's Figure 7b (cmp/jae/shl/add) — so the
// dependent loads `Z[i]` → `Y[Z[i]]` reach the memory system back to
// back, which is what trains the indirect-memory prefetcher.
//
// The contract mirrors the kernel's: only programs accepted by Verify may
// be JITed (Compile re-runs the verifier to enforce it).

// regBase is the ISA register backing eBPF R0.
const regBase = 5

func x(r Reg) isa.Reg { return isa.Reg(regBase + uint8(r)) }

// JIT temporaries.
const (
	tmp0 = isa.Reg(20)
	tmp1 = isa.Reg(21)
)

// Compile verifies prog against env and lowers it to an ISA program that
// ends with HALT; the eBPF return value (R0) lands in register x5.
func Compile(prog Program, env *Env) (isa.Program, error) {
	if err := Verify(prog, env); err != nil {
		return nil, err
	}

	// First pass: the ISA length of each bytecode instruction, to resolve
	// absolute branch targets.
	lens := make([]int, len(prog))
	for i, in := range prog {
		n, err := instLen(in, env)
		if err != nil {
			return nil, fmt.Errorf("ebpf: jit: insn %d: %w", i, err)
		}
		lens[i] = n
	}
	starts := make([]int64, len(prog)+1)
	for i, n := range lens {
		starts[i+1] = starts[i] + int64(n)
	}

	var out isa.Program
	emit := func(in isa.Inst) { out = append(out, in) }
	for i, in := range prog {
		target := func(bpfIdx int64) int64 {
			if bpfIdx < 0 || bpfIdx > int64(len(prog)) {
				return -1 // unreachable: the verifier bounds targets
			}
			return starts[bpfIdx]
		}
		switch in.Op {
		case OpMovImm:
			emit(isa.Inst{Op: isa.ADDI, Rd: x(in.Dst), Rs1: isa.X0, Imm: in.Imm})
		case OpMovReg:
			emit(isa.Inst{Op: isa.ADDI, Rd: x(in.Dst), Rs1: x(in.Src), Imm: 0})
		case OpAddImm:
			emit(isa.Inst{Op: isa.ADDI, Rd: x(in.Dst), Rs1: x(in.Dst), Imm: in.Imm})
		case OpAddReg:
			emit(isa.Inst{Op: isa.ADD, Rd: x(in.Dst), Rs1: x(in.Dst), Rs2: x(in.Src)})
		case OpSubImm:
			emit(isa.Inst{Op: isa.ADDI, Rd: x(in.Dst), Rs1: x(in.Dst), Imm: -in.Imm})
		case OpSubReg:
			emit(isa.Inst{Op: isa.SUB, Rd: x(in.Dst), Rs1: x(in.Dst), Rs2: x(in.Src)})
		case OpMulImm:
			emit(isa.Inst{Op: isa.ADDI, Rd: tmp0, Rs1: isa.X0, Imm: in.Imm})
			emit(isa.Inst{Op: isa.MUL, Rd: x(in.Dst), Rs1: x(in.Dst), Rs2: tmp0})
		case OpMulReg:
			emit(isa.Inst{Op: isa.MUL, Rd: x(in.Dst), Rs1: x(in.Dst), Rs2: x(in.Src)})
		case OpAndImm:
			emit(isa.Inst{Op: isa.ANDI, Rd: x(in.Dst), Rs1: x(in.Dst), Imm: in.Imm})
		case OpAndReg:
			emit(isa.Inst{Op: isa.AND, Rd: x(in.Dst), Rs1: x(in.Dst), Rs2: x(in.Src)})
		case OpOrImm:
			emit(isa.Inst{Op: isa.ORI, Rd: x(in.Dst), Rs1: x(in.Dst), Imm: in.Imm})
		case OpOrReg:
			emit(isa.Inst{Op: isa.OR, Rd: x(in.Dst), Rs1: x(in.Dst), Rs2: x(in.Src)})
		case OpXorImm:
			emit(isa.Inst{Op: isa.XORI, Rd: x(in.Dst), Rs1: x(in.Dst), Imm: in.Imm})
		case OpXorReg:
			emit(isa.Inst{Op: isa.XOR, Rd: x(in.Dst), Rs1: x(in.Dst), Rs2: x(in.Src)})
		case OpLshImm:
			emit(isa.Inst{Op: isa.SLLI, Rd: x(in.Dst), Rs1: x(in.Dst), Imm: in.Imm})
		case OpRshImm:
			emit(isa.Inst{Op: isa.SRLI, Rd: x(in.Dst), Rs1: x(in.Dst), Imm: in.Imm})

		case OpLoad:
			op := map[int]isa.Op{1: isa.LBU, 2: isa.LHU, 4: isa.LWU, 8: isa.LD}[in.Size]
			emit(isa.Inst{Op: op, Rd: x(in.Dst), Rs1: x(in.Src), Imm: in.Off})
		case OpStore:
			op := map[int]isa.Op{1: isa.SB, 2: isa.SH, 4: isa.SW, 8: isa.SD}[in.Size]
			emit(isa.Inst{Op: op, Rs1: x(in.Dst), Rs2: x(in.Src), Imm: in.Off})

		case OpJmp:
			emit(isa.Inst{Op: isa.JAL, Rd: isa.X0, Imm: target(in.Imm)})
		case OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm:
			emit(isa.Inst{Op: isa.ADDI, Rd: tmp0, Rs1: isa.X0, Imm: in.Imm})
			bop := map[Op]isa.Op{
				OpJEqImm: isa.BEQ, OpJNeImm: isa.BNE, OpJLtImm: isa.BLTU, OpJGeImm: isa.BGEU,
			}[in.Op]
			emit(isa.Inst{Op: bop, Rs1: x(in.Dst), Rs2: tmp0, Imm: target(in.Off)})
		case OpJEqReg:
			emit(isa.Inst{Op: isa.BEQ, Rs1: x(in.Dst), Rs2: x(in.Src), Imm: target(in.Off)})
		case OpJNeReg:
			emit(isa.Inst{Op: isa.BNE, Rs1: x(in.Dst), Rs2: x(in.Src), Imm: target(in.Off)})

		case OpCallLookup:
			m := env.Maps[in.Imm]
			shift, err := m.ElemShift()
			if err != nil {
				return nil, err
			}
			// r0 = (r2 < nelems) ? base + (r2 << shift) : 0
			// Shape of Figure 7b: cmp $nelems; jae null; shl; add base.
			base := starts[i]
			emit(isa.Inst{Op: isa.ADDI, Rd: tmp0, Rs1: isa.X0, Imm: int64(m.NElems)})
			emit(isa.Inst{Op: isa.BGEU, Rs1: x(2), Rs2: tmp0, Imm: base + 5}) // → null
			emit(isa.Inst{Op: isa.SLLI, Rd: x(0), Rs1: x(2), Imm: int64(shift)})
			emit(isa.Inst{Op: isa.ADDI, Rd: x(0), Rs1: x(0), Imm: int64(m.Base)})
			emit(isa.Inst{Op: isa.JAL, Rd: isa.X0, Imm: base + 6}) // → done
			emit(isa.Inst{Op: isa.ADDI, Rd: x(0), Rs1: isa.X0, Imm: 0})
			// done:

		case OpExit:
			emit(isa.Inst{Op: isa.HALT})

		default:
			return nil, fmt.Errorf("ebpf: jit: insn %d: unsupported op %v", i, in.Op)
		}
		if got := int64(len(out)) - starts[i]; got != int64(lens[i]) {
			return nil, fmt.Errorf("ebpf: jit: insn %d: emitted %d, planned %d", i, got, lens[i])
		}
	}
	return out, nil
}

// instLen returns the number of ISA instructions instruction in lowers to.
func instLen(in Inst, env *Env) (int, error) {
	switch in.Op {
	case OpMovImm, OpMovReg, OpAddImm, OpAddReg, OpSubImm, OpSubReg,
		OpMulReg, OpAndImm, OpAndReg, OpOrImm, OpOrReg, OpXorImm, OpXorReg,
		OpLshImm, OpRshImm, OpJmp, OpJEqReg, OpJNeReg, OpExit:
		return 1, nil
	case OpMulImm, OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm:
		return 2, nil
	case OpLoad, OpStore:
		switch in.Size {
		case 1, 2, 4, 8:
			return 1, nil
		}
		return 0, fmt.Errorf("bad access size %d", in.Size)
	case OpCallLookup:
		if in.Imm < 0 || int(in.Imm) >= len(env.Maps) {
			return 0, fmt.Errorf("unknown map %d", in.Imm)
		}
		return 6, nil
	}
	return 0, fmt.Errorf("unsupported op %v", in.Op)
}
