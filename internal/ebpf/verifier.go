package ebpf

import "fmt"

// The verifier performs the kernel's static memory-safety analysis by
// abstract interpretation over register types, exploring both sides of
// every data-dependent branch. The discipline it enforces is the one the
// paper's Figure 7 relies on:
//
//   - a map lookup yields a pointer-or-NULL; dereferencing it before a
//     null check is rejected ("eBPF complains unless one adds explicit
//     NULL dereference checks ... bounds checks in disguise");
//   - memory accesses through a checked pointer must stay inside the map
//     element;
//   - pointer arithmetic is rejected;
//   - every path must reach exit with R0 holding a scalar.
//
// Path exploration is bounded by a state budget with (pc, state) pruning,
// so counted loops whose register types stabilize verify in a few
// iterations — and runaway programs are rejected, as in the kernel.

// VerifyError reports a rejected program.
type VerifyError struct {
	PC  int
	Msg string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("ebpf: verifier: insn %d: %s", e.PC, e.Msg)
}

type regKind uint8

const (
	kindUninit regKind = iota
	kindScalar
	kindMapPtrOrNull
	kindMapPtr
	kindNull // a checked-NULL lookup result
)

func (k regKind) String() string {
	switch k {
	case kindScalar:
		return "scalar"
	case kindMapPtrOrNull:
		return "map_ptr_or_null"
	case kindMapPtr:
		return "map_ptr"
	case kindNull:
		return "null"
	}
	return "uninit"
}

type regState struct {
	kind regKind
	m    int // map index for pointer kinds
}

type vstate struct {
	pc   int
	regs [NumRegs]regState
}

func (s vstate) key() string {
	b := make([]byte, 0, 2+2*NumRegs)
	b = append(b, byte(s.pc), byte(s.pc>>8))
	for _, r := range s.regs {
		b = append(b, byte(r.kind), byte(r.m))
	}
	return string(b)
}

// maxVerifierStates bounds path exploration (the kernel's analogous
// instruction-processing budget).
const maxVerifierStates = 100_000

// Verify checks prog against env. A nil return means the sandbox accepts
// the program.
func Verify(prog Program, env *Env) error {
	if len(prog) == 0 {
		return &VerifyError{0, "empty program"}
	}
	var init vstate
	// R1 and R2 hold scalar arguments from the sandbox ABI.
	init.regs[1] = regState{kind: kindScalar}
	init.regs[2] = regState{kind: kindScalar}

	work := []vstate{init}
	seen := map[string]bool{}
	states := 0

	push := func(s vstate) error {
		if s.pc < 0 || s.pc >= len(prog) {
			return &VerifyError{s.pc, "jump target out of program"}
		}
		k := s.key()
		if !seen[k] {
			seen[k] = true
			work = append(work, s)
		}
		return nil
	}

	for len(work) > 0 {
		states++
		if states > maxVerifierStates {
			return &VerifyError{0, "state budget exhausted (program too complex)"}
		}
		s := work[len(work)-1]
		work = work[:len(work)-1]

		if s.pc >= len(prog) {
			return &VerifyError{s.pc, "fell off the end of the program"}
		}
		in := prog[s.pc]
		next := s
		next.pc = s.pc + 1

		fail := func(format string, args ...any) error {
			return &VerifyError{s.pc, fmt.Sprintf(format, args...)}
		}
		requireScalar := func(r Reg) error {
			switch s.regs[r].kind {
			case kindScalar, kindNull:
				return nil
			case kindUninit:
				return fail("%v used before initialization", r)
			default:
				return fail("%v is a %v; pointer arithmetic/use as scalar is not allowed", r, s.regs[r].kind)
			}
		}

		switch in.Op {
		case OpMovImm:
			next.regs[in.Dst] = regState{kind: kindScalar}
		case OpMovReg:
			if s.regs[in.Src].kind == kindUninit {
				return fail("%v used before initialization", in.Src)
			}
			next.regs[in.Dst] = s.regs[in.Src]
		case OpAddImm, OpSubImm, OpMulImm, OpAndImm, OpOrImm, OpXorImm, OpLshImm, OpRshImm:
			if err := requireScalar(in.Dst); err != nil {
				return err
			}
			next.regs[in.Dst] = regState{kind: kindScalar}
		case OpAddReg, OpSubReg, OpMulReg, OpAndReg, OpOrReg, OpXorReg:
			if err := requireScalar(in.Dst); err != nil {
				return err
			}
			if err := requireScalar(in.Src); err != nil {
				return err
			}
			next.regs[in.Dst] = regState{kind: kindScalar}

		case OpLoad:
			if err := checkMemAccess(&s, in.Src, in, env); err != nil {
				return err
			}
			next.regs[in.Dst] = regState{kind: kindScalar}
		case OpStore:
			if err := checkMemAccess(&s, in.Dst, in, env); err != nil {
				return err
			}
			if s.regs[in.Src].kind == kindUninit {
				return fail("store of uninitialized %v", in.Src)
			}
			if s.regs[in.Src].kind == kindMapPtr || s.regs[in.Src].kind == kindMapPtrOrNull {
				return fail("storing a pointer to a map leaks sandbox layout")
			}

		case OpJmp:
			next.pc = int(in.Imm)
			if err := push(next); err != nil {
				return err
			}
			continue

		case OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm:
			dk := s.regs[in.Dst].kind
			// Null-check refinement: comparing a ptr-or-null against 0.
			if dk == kindMapPtrOrNull && (in.Op == OpJEqImm || in.Op == OpJNeImm) && in.Imm == 0 {
				taken, fall := next, next
				taken.pc = int(in.Off)
				if in.Op == OpJEqImm {
					// taken: ptr == 0 → null; fallthrough: valid pointer.
					taken.regs[in.Dst] = regState{kind: kindNull}
					fall.regs[in.Dst] = regState{kind: kindMapPtr, m: s.regs[in.Dst].m}
				} else {
					taken.regs[in.Dst] = regState{kind: kindMapPtr, m: s.regs[in.Dst].m}
					fall.regs[in.Dst] = regState{kind: kindNull}
				}
				if err := push(taken); err != nil {
					return err
				}
				if err := push(fall); err != nil {
					return err
				}
				continue
			}
			if err := requireScalar(in.Dst); err != nil {
				return err
			}
			taken := next
			taken.pc = int(in.Off)
			if err := push(taken); err != nil {
				return err
			}
			if err := push(next); err != nil {
				return err
			}
			continue

		case OpJEqReg, OpJNeReg:
			if err := requireScalar(in.Dst); err != nil {
				return err
			}
			if err := requireScalar(in.Src); err != nil {
				return err
			}
			taken := next
			taken.pc = int(in.Off)
			if err := push(taken); err != nil {
				return err
			}
			if err := push(next); err != nil {
				return err
			}
			continue

		case OpCallLookup:
			mi := int(in.Imm)
			if mi < 0 || mi >= len(env.Maps) {
				return fail("lookup of unknown map %d", mi)
			}
			if err := requireScalar(2); err != nil {
				return err
			}
			next.regs[0] = regState{kind: kindMapPtrOrNull, m: mi}
			// Caller-saved registers are clobbered by helper calls in the
			// kernel ABI; keep R1-R5 scalars conservative (they already
			// are scalars or the program re-initializes them).

		case OpExit:
			if s.regs[0].kind != kindScalar && s.regs[0].kind != kindNull {
				return fail("exit with R0 of type %v", s.regs[0].kind)
			}
			continue // path done

		default:
			return fail("unknown opcode %v", in.Op)
		}

		if err := push(next); err != nil {
			return err
		}
	}
	return nil
}

func checkMemAccess(s *vstate, ptr Reg, in Inst, env *Env) error {
	r := s.regs[ptr]
	switch r.kind {
	case kindMapPtrOrNull:
		return &VerifyError{s.pc, fmt.Sprintf("%v may be NULL; add a null check before dereferencing (the bounds check in disguise)", ptr)}
	case kindMapPtr:
	case kindNull:
		return &VerifyError{s.pc, fmt.Sprintf("%v is NULL on this path", ptr)}
	default:
		return &VerifyError{s.pc, fmt.Sprintf("memory access through non-pointer %v (%v)", ptr, r.kind)}
	}
	switch in.Size {
	case 1, 2, 4, 8:
	default:
		return &VerifyError{s.pc, fmt.Sprintf("bad access size %d", in.Size)}
	}
	m := env.Maps[r.m]
	if in.Off < 0 || in.Off+int64(in.Size) > int64(m.ElemSize) {
		return &VerifyError{s.pc, fmt.Sprintf("access [%d,%d) outside map %q element of %d bytes",
			in.Off, in.Off+int64(in.Size), m.Name, m.ElemSize)}
	}
	return nil
}
