package ebpf

import (
	"fmt"

	"pandora/internal/mem"
)

// Interp is the reference interpreter, used to differential-test the JIT.
// It enforces at runtime what the verifier proves statically, so it also
// serves as a dynamic sandbox oracle in tests.
type Interp struct {
	Env *Env
	Mem *mem.Memory
	// MaxSteps bounds execution; zero means 1e6.
	MaxSteps int
}

// Run executes prog with arguments r1, r2 and returns R0 at exit.
func (ip *Interp) Run(prog Program, r1, r2 uint64) (uint64, error) {
	max := ip.MaxSteps
	if max == 0 {
		max = 1_000_000
	}
	var regs [NumRegs]uint64
	regs[1], regs[2] = r1, r2
	pc := 0
	for step := 0; step < max; step++ {
		if pc < 0 || pc >= len(prog) {
			return 0, fmt.Errorf("ebpf: interp: pc %d out of program", pc)
		}
		in := prog[pc]
		next := pc + 1
		switch in.Op {
		case OpMovImm:
			regs[in.Dst] = uint64(in.Imm)
		case OpMovReg:
			regs[in.Dst] = regs[in.Src]
		case OpAddImm:
			regs[in.Dst] += uint64(in.Imm)
		case OpAddReg:
			regs[in.Dst] += regs[in.Src]
		case OpSubImm:
			regs[in.Dst] -= uint64(in.Imm)
		case OpSubReg:
			regs[in.Dst] -= regs[in.Src]
		case OpMulImm:
			regs[in.Dst] *= uint64(in.Imm)
		case OpMulReg:
			regs[in.Dst] *= regs[in.Src]
		case OpAndImm:
			regs[in.Dst] &= uint64(in.Imm)
		case OpAndReg:
			regs[in.Dst] &= regs[in.Src]
		case OpOrImm:
			regs[in.Dst] |= uint64(in.Imm)
		case OpOrReg:
			regs[in.Dst] |= regs[in.Src]
		case OpXorImm:
			regs[in.Dst] ^= uint64(in.Imm)
		case OpXorReg:
			regs[in.Dst] ^= regs[in.Src]
		case OpLshImm:
			regs[in.Dst] <<= uint(in.Imm) & 63
		case OpRshImm:
			regs[in.Dst] >>= uint(in.Imm) & 63
		case OpLoad:
			if regs[in.Src] == 0 {
				return 0, fmt.Errorf("ebpf: interp: pc %d: NULL dereference", pc)
			}
			regs[in.Dst] = ip.Mem.Read(regs[in.Src]+uint64(in.Off), in.Size)
		case OpStore:
			if regs[in.Dst] == 0 {
				return 0, fmt.Errorf("ebpf: interp: pc %d: NULL dereference", pc)
			}
			ip.Mem.Write(regs[in.Dst]+uint64(in.Off), in.Size, regs[in.Src])
		case OpJmp:
			next = int(in.Imm)
		case OpJEqImm:
			if regs[in.Dst] == uint64(in.Imm) {
				next = int(in.Off)
			}
		case OpJNeImm:
			if regs[in.Dst] != uint64(in.Imm) {
				next = int(in.Off)
			}
		case OpJLtImm:
			if regs[in.Dst] < uint64(in.Imm) {
				next = int(in.Off)
			}
		case OpJGeImm:
			if regs[in.Dst] >= uint64(in.Imm) {
				next = int(in.Off)
			}
		case OpJEqReg:
			if regs[in.Dst] == regs[in.Src] {
				next = int(in.Off)
			}
		case OpJNeReg:
			if regs[in.Dst] != regs[in.Src] {
				next = int(in.Off)
			}
		case OpCallLookup:
			m := ip.Env.Maps[in.Imm]
			key := regs[2]
			if key >= uint64(m.NElems) {
				regs[0] = 0
			} else {
				shift, err := m.ElemShift()
				if err != nil {
					return 0, err
				}
				regs[0] = m.Base + key<<shift
			}
		case OpExit:
			return regs[0], nil
		default:
			return 0, fmt.Errorf("ebpf: interp: pc %d: bad op %v", pc, in.Op)
		}
		pc = next
	}
	return 0, fmt.Errorf("ebpf: interp: step budget exhausted")
}
