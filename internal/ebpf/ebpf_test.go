package ebpf

import (
	"strings"
	"testing"

	"pandora/internal/emu"
	"pandora/internal/isa"
	"pandora/internal/mem"
)

func testEnv() *Env {
	return &Env{Maps: []Map{
		{Name: "Z", ElemSize: 4, NElems: 64, Base: 0x1000},
		{Name: "Y", ElemSize: 4, NElems: 64, Base: 0x2000},
		{Name: "X", ElemSize: 4, NElems: 64, Base: 0x3000},
	}}
}

// --- Verifier ---

func TestVerifierAcceptsFigure7(t *testing.T) {
	env := testEnv()
	prog := Figure7Program(0, 1, 2, 16, 4, 4, 4)
	if err := Verify(prog, env); err != nil {
		t.Fatalf("Figure 7 program rejected: %v", err)
	}
}

func TestVerifierRejectsUncheckedFigure7(t *testing.T) {
	env := testEnv()
	prog := Figure7ProgramUnchecked(0, 1, 2, 16, 4, 4, 4)
	err := Verify(prog, env)
	if err == nil {
		t.Fatal("unchecked program accepted — the sandbox would be trivially broken")
	}
	if !strings.Contains(err.Error(), "NULL") {
		t.Errorf("rejection should cite the missing null check: %v", err)
	}
}

func TestVerifierRejections(t *testing.T) {
	env := testEnv()
	cases := []struct {
		name string
		prog Program
		want string
	}{
		{"uninitialized register", Program{
			{Op: OpAddReg, Dst: 3, Src: 4},
			{Op: OpMovImm, Dst: 0, Imm: 0},
			{Op: OpExit},
		}, "before initialization"},
		{"pointer arithmetic", Program{
			{Op: OpMovImm, Dst: 2, Imm: 1},
			{Op: OpCallLookup, Imm: 0},
			{Op: OpJEqImm, Dst: 0, Imm: 0, Off: 5},
			{Op: OpAddImm, Dst: 0, Imm: 8}, // ptr += 8
			{Op: OpLoad, Dst: 3, Src: 0, Size: 4},
			{Op: OpMovImm, Dst: 0, Imm: 0},
			{Op: OpExit},
		}, "pointer"},
		{"out-of-element access", Program{
			{Op: OpMovImm, Dst: 2, Imm: 1},
			{Op: OpCallLookup, Imm: 0},
			{Op: OpJEqImm, Dst: 0, Imm: 0, Off: 4},
			{Op: OpLoad, Dst: 3, Src: 0, Off: 4, Size: 4}, // [4,8) of a 4-byte elem
			{Op: OpMovImm, Dst: 0, Imm: 0},
			{Op: OpExit},
		}, "outside map"},
		{"deref on null path", Program{
			{Op: OpMovImm, Dst: 2, Imm: 1},
			{Op: OpCallLookup, Imm: 0},
			{Op: OpJNeImm, Dst: 0, Imm: 0, Off: 4}, // jump away when valid
			{Op: OpLoad, Dst: 3, Src: 0, Size: 4},  // reached only when NULL
			{Op: OpMovImm, Dst: 0, Imm: 0},
			{Op: OpExit},
		}, "NULL on this path"},
		{"unknown map", Program{
			{Op: OpMovImm, Dst: 2, Imm: 0},
			{Op: OpCallLookup, Imm: 9},
			{Op: OpMovImm, Dst: 0, Imm: 0},
			{Op: OpExit},
		}, "unknown map"},
		{"fall off end", Program{
			{Op: OpMovImm, Dst: 0, Imm: 0},
		}, "out of program"},
		{"exit with pointer", Program{
			{Op: OpMovImm, Dst: 2, Imm: 0},
			{Op: OpCallLookup, Imm: 0},
			{Op: OpExit},
		}, "exit with R0"},
		{"jump out of range", Program{
			{Op: OpMovImm, Dst: 0, Imm: 0},
			{Op: OpJmp, Imm: 99},
			{Op: OpExit},
		}, "out of program"},
		{"storing a map pointer", Program{
			{Op: OpMovImm, Dst: 2, Imm: 0},
			{Op: OpCallLookup, Imm: 0},
			{Op: OpJEqImm, Dst: 0, Imm: 0, Off: 6},
			{Op: OpMovReg, Dst: 3, Src: 0},
			{Op: OpStore, Dst: 0, Src: 3, Size: 4},
			{Op: OpMovImm, Dst: 0, Imm: 0},
			{Op: OpExit},
		}, "leaks sandbox layout"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Verify(c.prog, env)
			if err == nil {
				t.Fatal("program accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestVerifierAcceptsStoreThroughCheckedPtr(t *testing.T) {
	env := testEnv()
	prog := Program{
		{Op: OpMovImm, Dst: 2, Imm: 3},
		{Op: OpCallLookup, Imm: 0},
		{Op: OpJEqImm, Dst: 0, Imm: 0, Off: 5},
		{Op: OpMovImm, Dst: 3, Imm: 77},
		{Op: OpStore, Dst: 0, Src: 3, Size: 4},
		{Op: OpMovImm, Dst: 0, Imm: 0},
		{Op: OpExit},
	}
	if err := Verify(prog, env); err != nil {
		t.Fatalf("valid store rejected: %v", err)
	}
}

func TestVerifierLoopConverges(t *testing.T) {
	// A counted loop must verify without exhausting the state budget.
	env := testEnv()
	prog := Figure7Program(0, 1, 2, 1<<20, 4, 4, 4) // huge trip count: static state is identical
	if err := Verify(prog, env); err != nil {
		t.Fatalf("loop did not converge: %v", err)
	}
}

// --- Interpreter & JIT differential ---

// setupMaps writes Z[i]=i+1 (in-bounds chains), Y[j]=j, X[k]=k+100.
func setupMaps(env *Env, m *mem.Memory) {
	for _, mp := range env.Maps {
		for i := 0; i < mp.NElems; i++ {
			var v uint64
			switch mp.Name {
			case "Z":
				v = uint64(i+1) % uint64(mp.NElems)
			case "Y":
				v = uint64(i)
			case "X":
				v = uint64(i + 100)
			}
			m.Write(mp.Base+uint64(i*mp.ElemSize), mp.ElemSize, v)
		}
	}
}

func TestInterpRunsFigure7(t *testing.T) {
	env := testEnv()
	m := mem.New()
	setupMaps(env, m)
	ip := &Interp{Env: env, Mem: m}
	r0, err := ip.Run(Figure7Program(0, 1, 2, 16, 4, 4, 4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != 0 {
		t.Errorf("r0 = %d, want 0", r0)
	}
}

func TestInterpNullLookup(t *testing.T) {
	env := testEnv()
	m := mem.New()
	prog := Program{
		{Op: OpMovImm, Dst: 2, Imm: 9999}, // out of bounds key
		{Op: OpCallLookup, Imm: 0},
		{Op: OpMovReg, Dst: 3, Src: 0},
		{Op: OpMovImm, Dst: 0, Imm: 0},
		{Op: OpJEqReg, Dst: 3, Src: 0, Off: 6}, // NULL → exit with 0
		{Op: OpMovImm, Dst: 0, Imm: 1},
		{Op: OpExit},
	}
	ip := &Interp{Env: env, Mem: m}
	r0, err := ip.Run(prog, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != 0 {
		t.Errorf("out-of-bounds lookup must yield NULL (r0=%d)", r0)
	}
}

// jitPrograms are verified programs used for JIT-vs-interpreter checks.
func jitPrograms() map[string]Program {
	return map[string]Program{
		"figure7": Figure7Program(0, 1, 2, 16, 4, 4, 4),
		"arith": {
			{Op: OpMovImm, Dst: 3, Imm: 7},
			{Op: OpMovImm, Dst: 4, Imm: 9},
			{Op: OpAddReg, Dst: 3, Src: 4},
			{Op: OpMulImm, Dst: 3, Imm: 3},
			{Op: OpXorImm, Dst: 3, Imm: 0xff},
			{Op: OpLshImm, Dst: 3, Imm: 4},
			{Op: OpRshImm, Dst: 3, Imm: 2},
			{Op: OpSubImm, Dst: 3, Imm: 5},
			{Op: OpMovReg, Dst: 0, Src: 3},
			{Op: OpExit},
		},
		"map-store-load": {
			{Op: OpMovImm, Dst: 2, Imm: 5},
			{Op: OpCallLookup, Imm: 1},
			{Op: OpJEqImm, Dst: 0, Imm: 0, Off: 8},
			{Op: OpMovImm, Dst: 3, Imm: 1234},
			{Op: OpStore, Dst: 0, Src: 3, Size: 4},
			{Op: OpLoad, Dst: 4, Src: 0, Size: 4},
			{Op: OpMovReg, Dst: 0, Src: 4},
			{Op: OpExit},
			{Op: OpMovImm, Dst: 0, Imm: 0},
			{Op: OpExit},
		},
		"loop-sum": {
			{Op: OpMovImm, Dst: 3, Imm: 0},  // sum
			{Op: OpMovImm, Dst: 4, Imm: 10}, // i
			{Op: OpAddReg, Dst: 3, Src: 4},  // 2: loop
			{Op: OpSubImm, Dst: 4, Imm: 1},
			{Op: OpJNeImm, Dst: 4, Imm: 0, Off: 2},
			{Op: OpMovReg, Dst: 0, Src: 3},
			{Op: OpExit},
		},
	}
}

func TestJITMatchesInterpreter(t *testing.T) {
	for name, prog := range jitPrograms() {
		t.Run(name, func(t *testing.T) {
			env := testEnv()

			im := mem.New()
			setupMaps(env, im)
			ip := &Interp{Env: env, Mem: im}
			wantR0, err := ip.Run(prog, 0, 0)
			if err != nil {
				t.Fatalf("interp: %v", err)
			}

			isaProg, err := Compile(prog, env)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			jm := mem.New()
			setupMaps(env, jm)
			machine := emu.New(jm)
			if err := machine.Run(isaProg, 1_000_000); err != nil {
				t.Fatalf("emu: %v", err)
			}
			if got := machine.Regs[x(0)]; got != wantR0 {
				t.Errorf("JIT r0 = %d, interp r0 = %d", got, wantR0)
			}
			// Map memory must agree byte for byte.
			for _, mp := range env.Maps {
				for i := 0; i < mp.NElems*mp.ElemSize; i++ {
					a := mp.Base + uint64(i)
					if im.LoadByte(a) != jm.LoadByte(a) {
						t.Fatalf("map %s byte %d differs: interp %#x jit %#x",
							mp.Name, i, im.LoadByte(a), jm.LoadByte(a))
					}
				}
			}
		})
	}
}

func TestCompileRejectsUnverifiable(t *testing.T) {
	env := testEnv()
	if _, err := Compile(Figure7ProgramUnchecked(0, 1, 2, 8, 4, 4, 4), env); err == nil {
		t.Fatal("Compile must run the verifier")
	}
}

// TestJITLookupShape checks that the emitted lookup matches the paper's
// Figure 7b: a bounds check (cmp/jae), a shift, a base add — and no
// additional memory accesses between reading Z[i] and loading Y[Z[i]].
func TestJITLookupShape(t *testing.T) {
	env := testEnv()
	prog := Program{
		{Op: OpMovImm, Dst: 2, Imm: 3},
		{Op: OpCallLookup, Imm: 0},
		{Op: OpJEqImm, Dst: 0, Imm: 0, Off: 6},
		{Op: OpLoad, Dst: 3, Src: 0, Size: 4},
		{Op: OpMovImm, Dst: 0, Imm: 0},
		{Op: OpExit},
		{Op: OpMovImm, Dst: 0, Imm: 0},
		{Op: OpExit},
	}
	isaProg, err := Compile(prog, env)
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	for _, in := range isaProg {
		if isa.IsLoad(in.Op) || isa.IsStore(in.Op) {
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("JIT emitted %d memory ops, want exactly the program's single load (no hidden accesses)", loads)
	}
}

func TestMapElemShift(t *testing.T) {
	for size, want := range map[int]uint{1: 0, 2: 1, 4: 2, 8: 3} {
		m := Map{ElemSize: size}
		got, err := m.ElemShift()
		if err != nil || got != want {
			t.Errorf("ElemShift(%d) = %d, %v", size, got, err)
		}
	}
	if _, err := (Map{ElemSize: 3}).ElemShift(); err == nil {
		t.Error("non-power-of-two element size accepted")
	}
}

func TestChaseProgramGeneralizesFigure7(t *testing.T) {
	env := testEnv()
	levels := []ChaseLevel{{Map: 0, LoadSize: 4}, {Map: 1, LoadSize: 4}, {Map: 2, LoadSize: 4}}
	chase := ChaseProgram(levels, 16)
	if err := Verify(chase, env); err != nil {
		t.Fatalf("3-level chase rejected: %v", err)
	}
	// Same architectural behavior as the canonical Figure 7 program.
	m1, m2 := mem.New(), mem.New()
	setupMaps(env, m1)
	setupMaps(env, m2)
	r1, err := (&Interp{Env: env, Mem: m1}).Run(chase, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := (&Interp{Env: env, Mem: m2}).Run(Figure7Program(0, 1, 2, 16, 4, 4, 4), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("chase r0=%d, figure7 r0=%d", r1, r2)
	}
}

func TestChaseProgramTwoAndFourLevels(t *testing.T) {
	env := testEnv()
	env.Maps = append(env.Maps, Map{Name: "W", ElemSize: 4, NElems: 64, Base: 0x4000})
	for _, n := range []int{1, 2, 3, 4} {
		levels := make([]ChaseLevel, n)
		for i := range levels {
			levels[i] = ChaseLevel{Map: int64(i), LoadSize: 4}
		}
		prog := ChaseProgram(levels, 8)
		if err := Verify(prog, env); err != nil {
			t.Errorf("%d-level chase rejected: %v", n, err)
		}
		m := mem.New()
		setupMaps(env, m)
		if _, err := (&Interp{Env: env, Mem: m}).Run(prog, 0, 0); err != nil {
			t.Errorf("%d-level chase: %v", n, err)
		}
	}
}

func TestInstStringsAndHelpers(t *testing.T) {
	env := testEnv()
	cases := []Inst{
		{Op: OpMovImm, Dst: 1, Imm: 5},
		{Op: OpMovReg, Dst: 1, Src: 2},
		{Op: OpLoad, Dst: 1, Src: 0, Size: 4, Off: 8},
		{Op: OpStore, Dst: 0, Src: 1, Size: 4},
		{Op: OpJmp, Imm: 3},
		{Op: OpJEqImm, Dst: 1, Imm: 0, Off: 5},
		{Op: OpJNeReg, Dst: 1, Src: 2, Off: 5},
		{Op: OpCallLookup, Imm: 1},
		{Op: OpExit},
	}
	for _, in := range cases {
		if in.String() == "" {
			t.Errorf("empty String for %+v", in)
		}
	}
	if Reg(3).String() != "r3" {
		t.Error("reg string")
	}
	m, i, ok := env.MapByName("Y")
	if !ok || i != 1 || m.ElemSize != 4 {
		t.Errorf("MapByName: %+v %d %v", m, i, ok)
	}
	if _, _, ok := env.MapByName("nope"); ok {
		t.Error("found nonexistent map")
	}
}

func TestJITRejectsBadSizes(t *testing.T) {
	env := testEnv()
	// Size 3 loads fail at verification already; exercise instLen's guard
	// through a program the verifier would otherwise accept.
	if _, err := instLen(Inst{Op: OpLoad, Size: 3}, env); err == nil {
		t.Error("bad load size accepted by instLen")
	}
	if _, err := instLen(Inst{Op: OpCallLookup, Imm: 99}, env); err == nil {
		t.Error("unknown map accepted by instLen")
	}
	if _, err := instLen(Inst{Op: OpInvalid}, env); err == nil {
		t.Error("invalid op accepted by instLen")
	}
}
