// Package ebpf implements the miniature eBPF subsystem used by the
// paper's data memory-dependent prefetcher proof of concept (Section V-B,
// Figure 7): a small register bytecode with array maps, a verifier that
// enforces the kernel's memory-safety discipline (map lookups return
// NULL-or-pointer; pointers must be null-checked before dereference and
// accesses must stay inside the element), a JIT that lowers programs to
// the toy ISA — inlining bounds-checked array lookups exactly as the
// kernel JIT does in Figure 7b — and a reference interpreter for
// differential testing.
//
// Deviations from Linux eBPF, chosen to keep the model small while
// preserving everything the attack depends on: branch targets are
// absolute instruction indices; the map-lookup helper takes its key as a
// value in R2 (not a pointer to stack); there is no stack frame.
package ebpf

import "fmt"

// Reg is an eBPF register R0..R10 (R10 is reserved; unused here).
type Reg uint8

// NumRegs is the number of eBPF registers.
const NumRegs = 11

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op enumerates the supported bytecode operations.
type Op uint8

// Bytecode operations.
const (
	OpInvalid Op = iota

	OpMovImm // dst = imm
	OpMovReg // dst = src

	OpAddImm
	OpAddReg
	OpSubImm
	OpSubReg
	OpMulImm
	OpMulReg
	OpAndImm
	OpAndReg
	OpOrImm
	OpOrReg
	OpXorImm
	OpXorReg
	OpLshImm
	OpRshImm

	// OpLoad: dst = *(size bytes)(src + off), zero-extended.
	OpLoad
	// OpStore: *(size bytes)(dst + off) = src.
	OpStore

	// OpJmp jumps unconditionally to the absolute index Imm.
	OpJmp
	// Conditional jumps compare dst against src (register) or Imm
	// (immediate) and jump to the absolute index Off when true.
	OpJEqImm
	OpJNeImm
	OpJLtImm // unsigned
	OpJGeImm // unsigned
	OpJEqReg
	OpJNeReg

	// OpCallLookup is the bpf_map_lookup_elem helper: map index in Imm,
	// key (an element index) in R2; R0 receives a pointer to the element
	// or 0 when the key is out of bounds.
	OpCallLookup

	// OpExit returns R0.
	OpExit
)

var opNames = map[Op]string{
	OpMovImm: "mov", OpMovReg: "mov", OpAddImm: "add", OpAddReg: "add",
	OpSubImm: "sub", OpSubReg: "sub", OpMulImm: "mul", OpMulReg: "mul",
	OpAndImm: "and", OpAndReg: "and", OpOrImm: "or", OpOrReg: "or",
	OpXorImm: "xor", OpXorReg: "xor", OpLshImm: "lsh", OpRshImm: "rsh",
	OpLoad: "ldx", OpStore: "stx", OpJmp: "ja", OpJEqImm: "jeq",
	OpJNeImm: "jne", OpJLtImm: "jlt", OpJGeImm: "jge", OpJEqReg: "jeq",
	OpJNeReg: "jne", OpCallLookup: "call lookup", OpExit: "exit",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Inst is one bytecode instruction.
type Inst struct {
	Op   Op
	Dst  Reg
	Src  Reg
	Off  int64 // branch target (absolute index) or memory offset
	Imm  int64
	Size int // memory access size (1/2/4/8) for OpLoad/OpStore
}

// Program is a bytecode sequence.
type Program []Inst

// Map describes one BPF_ARRAY map: NElems elements of ElemSize bytes,
// materialized at Base in simulated memory.
type Map struct {
	Name     string
	ElemSize int
	NElems   int
	Base     uint64
}

// ElemShift returns log2(ElemSize); ElemSize must be a power of two no
// larger than 4096 (arrays of structs up to a page are common BPF usage).
func (m Map) ElemShift() (uint, error) {
	if m.ElemSize <= 0 || m.ElemSize > 4096 || m.ElemSize&(m.ElemSize-1) != 0 {
		return 0, fmt.Errorf("ebpf: map %s element size %d not a supported power of two", m.Name, m.ElemSize)
	}
	var s uint
	for v := m.ElemSize; v > 1; v >>= 1 {
		s++
	}
	return s, nil
}

// Env is the sandbox environment a program runs against.
type Env struct {
	Maps []Map
}

// MapByName returns the named map and its index.
func (e *Env) MapByName(name string) (Map, int, bool) {
	for i, m := range e.Maps {
		if m.Name == name {
			return m, i, true
		}
	}
	return Map{}, 0, false
}

func (in Inst) String() string {
	switch in.Op {
	case OpMovImm, OpAddImm, OpSubImm, OpMulImm, OpAndImm, OpOrImm, OpXorImm, OpLshImm, OpRshImm:
		return fmt.Sprintf("%v %v, %d", in.Op, in.Dst, in.Imm)
	case OpMovReg, OpAddReg, OpSubReg, OpMulReg, OpAndReg, OpOrReg, OpXorReg:
		return fmt.Sprintf("%v %v, %v", in.Op, in.Dst, in.Src)
	case OpLoad:
		return fmt.Sprintf("ldx%d %v, [%v%+d]", in.Size, in.Dst, in.Src, in.Off)
	case OpStore:
		return fmt.Sprintf("stx%d [%v%+d], %v", in.Size, in.Dst, in.Off, in.Src)
	case OpJmp:
		return fmt.Sprintf("ja %d", in.Imm)
	case OpJEqImm, OpJNeImm, OpJLtImm, OpJGeImm:
		return fmt.Sprintf("%v %v, %d, -> %d", in.Op, in.Dst, in.Imm, in.Off)
	case OpJEqReg, OpJNeReg:
		return fmt.Sprintf("%v %v, %v, -> %d", in.Op, in.Dst, in.Src, in.Off)
	case OpCallLookup:
		return fmt.Sprintf("r0 = lookup(map%d, key=r2)", in.Imm)
	case OpExit:
		return "exit"
	}
	return fmt.Sprintf("%v ...", in.Op)
}
