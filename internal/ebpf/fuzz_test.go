package ebpf

import (
	"math/rand"
	"testing"

	"pandora/internal/emu"
	"pandora/internal/mem"
)

// genProgram builds a random but well-formed (verifier-acceptable)
// program from structured blocks: scalar arithmetic, bounds-checked map
// lookup/load/store sequences, and forward skips over scalar blocks.
func genProgram(rng *rand.Rand, env *Env) Program {
	var p Program
	emit := func(in Inst) { p = append(p, in) }

	scalars := []Reg{3, 4, 5, 6, 7}
	for _, r := range scalars {
		emit(Inst{Op: OpMovImm, Dst: r, Imm: int64(rng.Intn(1 << 16))})
	}

	blocks := 3 + rng.Intn(8)
	for i := 0; i < blocks; i++ {
		switch rng.Intn(4) {
		case 0: // scalar arithmetic
			ops := []Op{OpAddReg, OpSubReg, OpMulReg, OpAndReg, OpOrReg, OpXorReg}
			emit(Inst{Op: ops[rng.Intn(len(ops))],
				Dst: scalars[rng.Intn(len(scalars))], Src: scalars[rng.Intn(len(scalars))]})
		case 1: // immediate arithmetic
			ops := []Op{OpAddImm, OpMulImm, OpXorImm, OpAndImm, OpLshImm, OpRshImm}
			op := ops[rng.Intn(len(ops))]
			imm := int64(rng.Intn(1 << 12))
			if op == OpLshImm || op == OpRshImm {
				imm = int64(rng.Intn(16))
			}
			emit(Inst{Op: op, Dst: scalars[rng.Intn(len(scalars))], Imm: imm})
		case 2: // checked lookup + load (+ optional store)
			m := rng.Intn(len(env.Maps))
			size := env.Maps[m].ElemSize
			if size > 8 {
				size = 8
			}
			// key: sometimes in bounds, sometimes way out (NULL path).
			key := int64(rng.Intn(env.Maps[m].NElems * 2))
			store := rng.Intn(2) == 0
			blockLen := 4
			if store {
				blockLen = 5
			}
			after := int64(len(p)) + int64(blockLen)
			emit(Inst{Op: OpMovImm, Dst: 2, Imm: key})
			emit(Inst{Op: OpCallLookup, Imm: int64(m)})
			emit(Inst{Op: OpJEqImm, Dst: 0, Imm: 0, Off: after})
			if store {
				emit(Inst{Op: OpStore, Dst: 0, Src: scalars[rng.Intn(len(scalars))], Size: size})
			}
			emit(Inst{Op: OpLoad, Dst: scalars[rng.Intn(len(scalars))], Src: 0, Size: size})
		case 3: // conditional forward skip over one scalar op
			target := int64(len(p)) + 2
			emit(Inst{Op: OpJLtImm, Dst: scalars[rng.Intn(len(scalars))],
				Imm: int64(rng.Intn(1 << 10)), Off: target})
			emit(Inst{Op: OpAddImm, Dst: scalars[rng.Intn(len(scalars))], Imm: 1})
		}
	}
	emit(Inst{Op: OpMovReg, Dst: 0, Src: scalars[rng.Intn(len(scalars))]})
	emit(Inst{Op: OpExit})
	return p
}

// TestJITFuzzDifferential: random verified programs behave identically
// under the interpreter and under the JIT on the functional emulator —
// return value and all map memory.
func TestJITFuzzDifferential(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 30
	}
	rng := rand.New(rand.NewSource(0xBEEF))
	env := testEnv()
	for i := 0; i < iters; i++ {
		prog := genProgram(rng, env)
		if err := Verify(prog, env); err != nil {
			t.Fatalf("iter %d: generated program rejected: %v\n%v", i, err, prog)
		}

		im := mem.New()
		setupMaps(env, im)
		ip := &Interp{Env: env, Mem: im}
		wantR0, err := ip.Run(prog, 0, 0)
		if err != nil {
			t.Fatalf("iter %d: interp: %v", i, err)
		}

		isaProg, err := Compile(prog, env)
		if err != nil {
			t.Fatalf("iter %d: compile: %v", i, err)
		}
		jm := mem.New()
		setupMaps(env, jm)
		machine := emu.New(jm)
		if err := machine.Run(isaProg, 1_000_000); err != nil {
			t.Fatalf("iter %d: emu: %v", i, err)
		}
		if got := machine.Regs[x(0)]; got != wantR0 {
			t.Fatalf("iter %d: JIT r0 = %#x, interp r0 = %#x\nprogram:\n%v", i, got, wantR0, prog)
		}
		for _, mp := range env.Maps {
			for off := 0; off < mp.NElems*mp.ElemSize; off++ {
				a := mp.Base + uint64(off)
				if im.LoadByte(a) != jm.LoadByte(a) {
					t.Fatalf("iter %d: map %s byte %d differs (interp %#x, jit %#x)",
						i, mp.Name, off, im.LoadByte(a), jm.LoadByte(a))
				}
			}
		}
	}
}
