package taint

import (
	"fmt"

	"pandora/internal/emu"
	"pandora/internal/faults"
	"pandora/internal/isa"
	"pandora/internal/mem"
)

// VerifyOptions tunes VerifyPropagation.
type VerifyOptions struct {
	// MaxSteps bounds each functional run (default 200000).
	MaxSteps int
	// BreakALU injects a deliberately broken propagation rule (ALU
	// results drop their operand labels) into both runs, so the caller
	// can check that the invariant check actually fails — the scanner's
	// self-test.
	BreakALU bool
	// FlipMask is XORed into every secret byte to produce the second
	// run's initial state (default 0xff).
	FlipMask byte
}

// VerifyPropagation checks the no-under-tainting invariant on one
// program: it runs prog twice on the functional emulator with shadow
// propagation attached, where the two runs' initial states differ only in
// the declared secret bytes, and requires every byte of final
// architectural state (registers and memory) that differs between the
// runs to carry a label in at least one run's shadow. A difference
// without a label means some secret-derived dataflow escaped the
// propagation rules. init seeds the initial memory (may be nil); secrets
// must be non-empty.
func VerifyPropagation(prog isa.Program, init func(*mem.Memory), secrets []Secret, opts VerifyOptions) error {
	if len(secrets) == 0 {
		return fmt.Errorf("taint: VerifyPropagation needs at least one secret region")
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 200000
	}
	if opts.FlipMask == 0 {
		opts.FlipMask = 0xff
	}

	run := func(flip bool) (*emu.Machine, *State, error) {
		m := mem.New()
		if init != nil {
			init(m)
		}
		st := NewState()
		st.BreakALU = opts.BreakALU
		for _, s := range secrets {
			if _, err := st.DefineSecret(s); err != nil {
				return nil, nil, err
			}
			if flip {
				for i := uint64(0); i < s.Len; i++ {
					a := s.Base + i
					m.StoreByte(a, m.LoadByte(a)^opts.FlipMask)
				}
			}
		}
		mc := emu.New(m)
		st.Attach(mc)
		if err := mc.Run(prog, opts.MaxSteps); err != nil {
			return nil, nil, err
		}
		return mc, st, nil
	}

	mcA, stA, err := run(false)
	if err != nil {
		return fmt.Errorf("taint: run A: %w", err)
	}
	mcB, stB, err := run(true)
	if err != nil {
		return fmt.Errorf("taint: run B: %w", err)
	}

	for r := 1; r < isa.NumRegs; r++ {
		if mcA.Regs[r] != mcB.Regs[r] && !(stA.Regs[r] | stB.Regs[r]).Any() {
			return fmt.Errorf("taint: under-taint: x%d differs (%#x vs %#x) but carries no label",
				r, mcA.Regs[r], mcB.Regs[r])
		}
	}
	for _, d := range mem.Diff(mcA.Mem, mcB.Mem, 0) {
		if !(stA.Mem.Get(d.Addr) | stB.Mem.Get(d.Addr)).Any() {
			return fmt.Errorf("taint: under-taint: mem[%#x] differs (%#x vs %#x) but carries no label",
				d.Addr, d.A, d.B)
		}
	}
	return nil
}

// selfTestProg is a minimal secret dataflow: load a secret byte, route it
// through an ALU op, and store the result to an untainted location. With
// propagation intact the stored bytes are labeled; with the ALU rule
// broken they are not, and VerifyPropagation must object.
func selfTestProg() (isa.Program, func(*mem.Memory), []Secret) {
	prog := isa.Program{
		{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 0x1000},
		{Op: isa.LD, Rd: 2, Rs1: 1, Imm: 0},
		{Op: isa.ADDI, Rd: 3, Rs1: 2, Imm: 1},
		{Op: isa.XOR, Rd: 4, Rs1: 3, Rs2: 2},
		{Op: isa.SD, Rs1: 1, Rs2: 3, Imm: 0x100},
		{Op: isa.SD, Rs1: 1, Rs2: 4, Imm: 0x108},
		{Op: isa.HALT},
	}
	init := func(m *mem.Memory) { m.Write(0x1000, 8, 0x0123456789abcdef) }
	return prog, init, []Secret{{Name: "secret", Base: 0x1000, Len: 8}}
}

// SelfTestPlan proves the propagation checker has teeth against a fault
// plan from internal/faults — the same injection mechanism `pandora
// fault` uses. A SiteTaintALU plan breaks the ALU propagation rule, and
// VerifyPropagation must report under-tainting; under a nil (or inert)
// plan the probe program must verify cleanly. The returned error is
// non-nil whenever the expectation does not hold.
func SelfTestPlan(plan *faults.Plan) error {
	broken := faults.NewInjector(plan).BreaksTaintALU()
	prog, init, secrets := selfTestProg()
	err := VerifyPropagation(prog, init, secrets, VerifyOptions{BreakALU: broken})
	if broken {
		if err == nil {
			return fmt.Errorf("taint: broken ALU propagation rule was NOT caught")
		}
		return nil
	}
	return err
}

// SelfTest is SelfTestPlan with the SiteTaintALU plan (broken=true) or no
// plan at all (broken=false).
func SelfTest(broken bool) error {
	if broken {
		return SelfTestPlan(&faults.Plan{Site: faults.SiteTaintALU})
	}
	return SelfTestPlan(nil)
}
