package taint

import (
	"testing"

	"pandora/internal/emu"
	"pandora/internal/isa"
	"pandora/internal/mem"
)

func TestRegistry(t *testing.T) {
	var r Registry
	key, err := r.Define("key")
	if err != nil {
		t.Fatal(err)
	}
	kern, err := r.Define("kernel")
	if err != nil {
		t.Fatal(err)
	}
	if key == kern || !key.Any() || !kern.Any() {
		t.Fatalf("labels not distinct: %v %v", key, kern)
	}
	both := key.Union(kern)
	if got := r.Format(both); got != "{key,kernel}" {
		t.Fatalf("Format = %q", got)
	}
	if got := r.Names(both); len(got) != 2 || got[0] != "key" || got[1] != "kernel" {
		t.Fatalf("Names = %v", got)
	}
	if r.Format(0) != "{}" {
		t.Fatalf("empty Format = %q", r.Format(0))
	}
}

func TestRegistryLimit(t *testing.T) {
	var r Registry
	for i := 0; i < MaxLabels; i++ {
		if _, err := r.Define("l"); err != nil {
			t.Fatalf("label %d: %v", i, err)
		}
	}
	if _, err := r.Define("overflow"); err == nil {
		t.Fatal("expected error past MaxLabels")
	}
}

func TestShadowMemory(t *testing.T) {
	sm := NewShadowMemory()
	sm.TaintRange(0x100, 4, 1)
	if sm.Labeled() != 4 {
		t.Fatalf("Labeled = %d", sm.Labeled())
	}
	if got := sm.Read(0x0fe, 4); got != 1 {
		t.Fatalf("overlapping Read = %v", got) // covers 0x100,0x101
	}
	if got := sm.Read(0x104, 8); got != 0 {
		t.Fatalf("disjoint Read = %v", got)
	}
	// An unlabeled write scrubs the shadow (and frees the entries).
	sm.Write(0x100, 2, 0)
	if got := sm.Read(0x100, 4); got != 1 {
		t.Fatalf("partial scrub Read = %v", got) // 0x102,0x103 still labeled
	}
	if sm.Labeled() != 2 {
		t.Fatalf("Labeled after scrub = %d", sm.Labeled())
	}
	sm.Write(0x102, 2, 2)
	if got := sm.Get(0x102); got != 2 {
		t.Fatalf("Get after overwrite = %v", got)
	}
}

func TestRecorderCap(t *testing.T) {
	r := &Recorder{Limit: 2}
	for i := 0; i < 5; i++ {
		r.Record(LeakEvent{Opt: OptSilentStore, Labels: 1})
	}
	if r.Total() != 5 || r.CountOf(OptSilentStore) != 5 {
		t.Fatalf("counts: total=%d class=%d", r.Total(), r.CountOf(OptSilentStore))
	}
	if len(r.Events) != 2 || r.Dropped != 3 {
		t.Fatalf("retained=%d dropped=%d", len(r.Events), r.Dropped)
	}
	var nilRec *Recorder
	nilRec.Record(LeakEvent{}) // must not panic
	if nilRec.Total() != 0 {
		t.Fatal("nil recorder total")
	}
}

// TestStepEmuRules drives each propagation rule through the emulator
// hook on a hand-written program.
func TestStepEmuRules(t *testing.T) {
	m := mem.New()
	m.Write(0x1000, 8, 0xdead)
	st := NewState()
	lbl, err := st.DefineSecret(Secret{Name: "s", Base: 0x1000, Len: 8})
	if err != nil {
		t.Fatal(err)
	}
	mc := emu.New(m)
	st.Attach(mc)

	prog := isa.Program{
		{Op: isa.ADDI, Rd: 1, Imm: 0x1000},     // x1 = &secret (unlabeled)
		{Op: isa.LD, Rd: 2, Rs1: 1},            // x2 <- secret       (load rule)
		{Op: isa.ADD, Rd: 3, Rs1: 2, Rs2: 0},   // x3 <- x2           (ALU rule)
		{Op: isa.ADDI, Rd: 4, Rs1: 0, Imm: 7},  // x4 clean
		{Op: isa.SD, Rs1: 1, Rs2: 3, Imm: 8},   // mem[0x1008] <- x3  (store rule)
		{Op: isa.SD, Rs1: 1, Rs2: 4, Imm: 16},  // clean store
		{Op: isa.BEQ, Rs1: 2, Rs2: 2, Imm: 8},  // predicate labeled  (control rule)
		{Op: isa.ADDI, Rd: 5, Rs1: 0, Imm: 1},  // skipped
		{Op: isa.ADDI, Rd: 6, Rs1: 0, Imm: 2},  // x6 <- Control
		{Op: isa.RDCYCLE, Rd: 7},               // x7 <- Control      (CSR rule)
		{Op: isa.HALT},
	}
	if err := mc.Run(prog, 1000); err != nil {
		t.Fatal(err)
	}

	if st.Regs[1] != 0 {
		t.Fatalf("x1 labeled %v", st.Regs[1])
	}
	for _, r := range []isa.Reg{2, 3} {
		if st.Regs[r] != lbl {
			t.Fatalf("x%d = %v, want %v", r, st.Regs[r], lbl)
		}
	}
	if got := st.Mem.Read(0x1008, 8); got != lbl {
		t.Fatalf("stored labels = %v", got)
	}
	if got := st.Mem.Read(0x1010, 8); got != 0 {
		t.Fatalf("clean store labels = %v", got)
	}
	if st.Control != lbl {
		t.Fatalf("Control = %v", st.Control)
	}
	// Post-branch writes inherit the control set.
	if st.Regs[6] != lbl || st.Regs[7] != lbl {
		t.Fatalf("control fold: x6=%v x7=%v", st.Regs[6], st.Regs[7])
	}
}

func TestResetRun(t *testing.T) {
	st := NewState()
	st.Regs[3] = 1
	st.Control = 1
	st.Mem.Write(0x10, 1, 1)
	st.Pred[7] = 1
	st.ResetRun()
	if st.Regs[3] != 0 || st.Control != 0 {
		t.Fatal("architectural shadow not cleared")
	}
	if st.Mem.Get(0x10) != 1 || st.Pred[7] != 1 {
		t.Fatal("persistent shadow was cleared")
	}
}

func TestObserversNilSafe(t *testing.T) {
	var st *State
	// All observers must be no-ops on a nil state (unshadowed machines).
	st.ObserveSilentStore(1, 2, false, 1)
	st.ObserveSimplify(1, 2, "", 1)
	st.ObservePack(1, 2, 1)
	st.ObserveReuse(1, 2, 1)
	st.ObserveValuePred(1, 2, 1)
	st.ObserveRFC(1, 2, 1)
	st.ObservePrefetch(0x10, "d", 1)
	st.ObserveControlFlow(1, 2, 1)

	// Unlabeled trigger conditions record nothing.
	st = NewState()
	st.ObserveSilentStore(1, 2, false, 0)
	if st.Rec.Total() != 0 {
		t.Fatal("unlabeled observation recorded")
	}
	st.ObserveSilentStore(1, 2, true, 1)
	if st.Rec.Total() != 1 || st.Rec.Events[0].MLDRef != "silent_stores_lsq" {
		t.Fatalf("events: %+v", st.Rec.Events)
	}
}

func TestMLDRefs(t *testing.T) {
	for c := OptClass(0); c < OptClass(NumOptClasses); c++ {
		if c.MLDRef() == "" {
			t.Errorf("%v has no MLD descriptor", c)
		}
		if c.String() == "" {
			t.Errorf("class %d has no name", c)
		}
	}
}

func TestSelfTest(t *testing.T) {
	if err := SelfTest(false); err != nil {
		t.Fatalf("intact rules: %v", err)
	}
	if err := SelfTest(true); err != nil {
		t.Fatalf("broken rule: %v", err)
	}
}
