// Package taint is the shadow-label engine behind `pandora scan`: it
// propagates per-byte secret labels alongside architectural state so that
// leakage observers — one per optimization class from the paper's Table I
// — can report exactly when an optimization's *trigger condition* (store
// value equals old value, multiply operand is zero, two physical
// registers hold the same value, ...) came to depend on a secret.
//
// The representation is deliberately simple: a LabelSet is a 64-bit mask
// of named labels, registers carry one set each, and memory is shadowed
// by a sparse per-byte map (ShadowMemory). Propagation follows standard
// dynamic-taint union rules, shared between the functional emulator
// (through emu.Machine's Shadow hook, see StepEmu) and the out-of-order
// pipeline (which mirrors the same rules at retire so shadow state is
// updated in program order). Control-flow taint is sticky: once a branch
// or indirect-jump predicate is labeled, every later architectural write
// inherits the label, which keeps the engine sound (no under-tainting)
// at the cost of precision — the right trade for a scanner whose job is
// to prove the *absence* of secret-dependent triggers.
package taint

import (
	"fmt"
	"strconv"
	"strings"

	"pandora/internal/emu"
	"pandora/internal/isa"
	"pandora/internal/obs"
)

// LabelSet is a set of secret labels, one bit per label defined in a
// Registry. The zero LabelSet is "untainted".
type LabelSet uint64

// MaxLabels is the number of distinct labels a Registry can hold.
const MaxLabels = 64

// Any reports whether the set contains at least one label.
func (s LabelSet) Any() bool { return s != 0 }

// Union returns s ∪ t.
func (s LabelSet) Union(t LabelSet) LabelSet { return s | t }

// Has reports whether label bit i is in the set.
func (s LabelSet) Has(i int) bool { return i >= 0 && i < MaxLabels && s&(1<<uint(i)) != 0 }

// Registry maps label bits to human-readable names ("key", "kernel").
type Registry struct {
	names []string
}

// Define allocates a new label bit under the given name.
func (r *Registry) Define(name string) (LabelSet, error) {
	if len(r.names) >= MaxLabels {
		return 0, fmt.Errorf("taint: more than %d labels", MaxLabels)
	}
	r.names = append(r.names, name)
	return 1 << uint(len(r.names)-1), nil
}

// Names returns the names of every label in s, in definition order.
func (r *Registry) Names(s LabelSet) []string {
	var out []string
	for i, n := range r.names {
		if s.Has(i) {
			out = append(out, n)
		}
	}
	return out
}

// Format renders s as "{key,kernel}" ("{}" when empty). Labels beyond the
// registry are rendered by bit number.
func (r *Registry) Format(s LabelSet) string {
	out := "{"
	first := true
	for i := 0; i < MaxLabels; i++ {
		if !s.Has(i) {
			continue
		}
		if !first {
			out += ","
		}
		first = false
		if r != nil && i < len(r.names) {
			out += r.names[i]
		} else {
			out += fmt.Sprintf("label%d", i)
		}
	}
	return out + "}"
}

// Secret names one memory region whose contents are secret. It is the
// package-level mirror of the assembler's `.secret base,len,name`
// directive.
type Secret struct {
	Name string
	Base uint64
	Len  uint64
}

// ParseSecret parses the textual secret-region form "base:len[:name]"
// (numbers in any Go literal base) shared by the `pandora scan -secret`
// flag and the serve job API. The name defaults to "secret".
func ParseSecret(s string) (Secret, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return Secret{}, fmt.Errorf("taint: bad secret %q: want base:len[:name]", s)
	}
	base, err := strconv.ParseUint(parts[0], 0, 64)
	if err != nil {
		return Secret{}, fmt.Errorf("taint: bad secret base %q: %v", parts[0], err)
	}
	n, err := strconv.ParseUint(parts[1], 0, 64)
	if err != nil || n == 0 {
		return Secret{}, fmt.Errorf("taint: bad secret length %q", parts[1])
	}
	name := "secret"
	if len(parts) == 3 {
		name = parts[2]
	}
	return Secret{Name: name, Base: base, Len: n}, nil
}

// State is the full shadow of one machine: register labels, per-byte
// memory labels, the sticky control-flow set, and the event recorder the
// observers write to. One State may be shared between an emulator and a
// pipeline (e.g. to pre-label memory once), but not concurrently.
type State struct {
	Names *Registry
	Regs  [isa.NumRegs]LabelSet
	Mem   *ShadowMemory

	// Control accumulates the labels of every branch or indirect-jump
	// predicate executed so far. It is folded into every subsequent
	// architectural write (implicit-flow over-approximation).
	Control LabelSet

	// Pred tracks, per load PC, the labels of the last value retired by
	// that load — the shadow of a value predictor's table, used when a
	// consumer reads a predicted value whose producer has not executed.
	Pred map[int64]LabelSet

	Rec *Recorder

	// Probe, when non-nil, receives an obs.KindTaintLeak event for every
	// recorded leak — the taint track of the observability layer.
	// pipeline.New wires it from Config.Probe; it never affects what the
	// Recorder stores.
	Probe obs.Probe

	// BreakALU, when set, deliberately drops operand labels across ALU
	// results. It exists only so the self-test (`pandora scan -inject`)
	// can prove VerifyPropagation detects a broken propagation rule.
	BreakALU bool

	// ObserveAddrs arms the cache-address observer: every demand load or
	// store whose address-formation operands carry labels records an
	// OptCacheAddr event. Off by default — the optimization scenarios
	// study channels beyond the classical cache one, and their reports
	// stay byte-identical with the flag off. The contract checker
	// (internal/kernels) turns it on to enforce the constant-time
	// baseline contract.
	ObserveAddrs bool
}

// NewState returns an empty shadow with a fresh registry and recorder.
func NewState() *State {
	return &State{
		Names: &Registry{},
		Mem:   NewShadowMemory(),
		Pred:  make(map[int64]LabelSet),
		Rec:   NewRecorder(),
	}
}

// DefineSecret allocates a label named s.Name and applies it to the
// region's shadow bytes.
func (st *State) DefineSecret(s Secret) (LabelSet, error) {
	l, err := st.Names.Define(s.Name)
	if err != nil {
		return 0, err
	}
	st.Mem.TaintRange(s.Base, s.Len, l)
	return l, nil
}

// ResetRun clears the architectural shadow (registers and control taint)
// for a fresh program run. Shadow memory and the predictor-table shadow
// persist — like their architectural and microarchitectural counterparts,
// they are exactly the state that carries secrets across runs.
func (st *State) ResetRun() {
	st.Regs = [isa.NumRegs]LabelSet{}
	st.Control = 0
}

func (st *State) setReg(r isa.Reg, l LabelSet) {
	if r != isa.X0 {
		st.Regs[r] = l
	}
}

// Attach binds the shadow to a functional emulator via its Shadow hook.
func (st *State) Attach(mc *emu.Machine) { mc.Shadow = st.StepEmu }

// StepEmu propagates labels for one instruction, given the pre-execution
// register file. Its signature matches emu.Machine.Shadow. The rules are
// the same ones the pipeline applies at retire:
//
//   - ALU/mul/div: rd ← labels(rs1) ∪ labels(rs2) ∪ Control
//     (immediates carry no labels; Uses() already maps them to X0)
//   - load:        rd ← labels(mem bytes) ∪ labels(base) ∪ Control
//   - store:       mem bytes ← labels(data) ∪ labels(base) ∪ Control
//   - branch:      Control ← Control ∪ labels(predicate)
//   - JALR:        Control ← Control ∪ labels(target base); link ← Control
//   - RDCYCLE:     rd ← Control (the counter reflects the executed path)
func (st *State) StepEmu(pc int64, in isa.Inst, regs *[isa.NumRegs]uint64) {
	switch isa.ClassOf(in.Op) {
	case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
		r1, r2 := in.Uses()
		l := st.Regs[r1] | st.Regs[r2]
		if st.BreakALU {
			l = 0
		}
		st.setReg(in.Writes(), l|st.Control)

	case isa.ClassLoad:
		addr := in.EffectiveAddr(regs[in.Rs1])
		l := st.Mem.Read(addr, isa.MemWidth(in.Op)) | st.Regs[in.Rs1]
		st.setReg(in.Writes(), l|st.Control)

	case isa.ClassStore:
		addr := in.EffectiveAddr(regs[in.Rs1])
		st.Mem.Write(addr, isa.MemWidth(in.Op), st.Regs[in.Rs2]|st.Regs[in.Rs1]|st.Control)

	case isa.ClassBranch:
		if l := st.Regs[in.Rs1] | st.Regs[in.Rs2]; l.Any() {
			st.Control |= l
		}

	case isa.ClassJump:
		if in.Op == isa.JALR {
			st.Control |= st.Regs[in.Rs1]
		}
		st.setReg(in.Writes(), st.Control)

	case isa.ClassCSR:
		st.setReg(in.Writes(), st.Control)
	}
}
