package taint

// ShadowMemory mirrors internal/mem's sparse byte-addressed memory with a
// label set per byte. Untainted bytes occupy no space, so shadowing a
// 64-bit address space costs only as much as the secrets actually touch.
type ShadowMemory struct {
	m map[uint64]LabelSet
}

// NewShadowMemory returns an empty shadow.
func NewShadowMemory() *ShadowMemory {
	return &ShadowMemory{m: make(map[uint64]LabelSet)}
}

// Get returns the labels of one byte.
func (s *ShadowMemory) Get(addr uint64) LabelSet { return s.m[addr] }

// Read returns the union of the labels of width bytes starting at addr —
// the label set of a load's value.
func (s *ShadowMemory) Read(addr uint64, width int) LabelSet {
	var l LabelSet
	for i := 0; i < width; i++ {
		l |= s.m[addr+uint64(i)]
	}
	return l
}

// Write sets the labels of width bytes starting at addr, deleting map
// entries when the set is empty (stores of untainted data scrub taint).
func (s *ShadowMemory) Write(addr uint64, width int, l LabelSet) {
	for i := 0; i < width; i++ {
		a := addr + uint64(i)
		if l == 0 {
			delete(s.m, a)
		} else {
			s.m[a] = l
		}
	}
}

// TaintRange ORs l into n bytes starting at base (marking a secret region
// without disturbing labels already present).
func (s *ShadowMemory) TaintRange(base, n uint64, l LabelSet) {
	for i := uint64(0); i < n; i++ {
		s.m[base+i] |= l
	}
}

// Labeled returns the number of bytes currently carrying any label.
func (s *ShadowMemory) Labeled() int { return len(s.m) }

// Each calls f for every labeled byte, in no particular order.
func (s *ShadowMemory) Each(f func(addr uint64, l LabelSet)) {
	for a, l := range s.m {
		f(a, l)
	}
}
