package taint_test

import (
	"math/rand"
	"testing"

	"pandora/internal/diffcheck"
	"pandora/internal/taint"
)

// verifySeed generates one random program with diffcheck's generator,
// declares a random sub-range of its scratch regions secret, and checks
// the no-under-tainting invariant: every byte of final architectural
// state that changes when the secret bytes are flipped must carry a
// label. Generated programs route loaded data through every ALU shape,
// all load/store widths, and data-dependent branches, so the invariant
// exercises the full propagation rule set including the sticky
// control-flow over-approximation.
func verifySeed(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	prog := diffcheck.Generate(rng)
	bases, span := diffcheck.ScratchRegions()
	base := bases[rng.Intn(len(bases))]
	n := uint64(8 * (1 + rng.Intn(7)))
	off := uint64(rng.Intn(int(span-n)/8)) * 8
	sec := taint.Secret{Name: "fuzz", Base: base + off, Len: n}
	return taint.VerifyPropagation(prog, diffcheck.InitMemory, []taint.Secret{sec}, taint.VerifyOptions{})
}

func FuzzTaint(f *testing.F) {
	for s := int64(1); s <= 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if err := verifySeed(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	})
}

// TestVerifyPropagationCorpus is the deterministic slice of FuzzTaint
// that always runs: 200 seeded programs with random secret regions.
func TestVerifyPropagationCorpus(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		if err := verifySeed(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
