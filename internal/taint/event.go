package taint

import "fmt"

// OptClass identifies which optimization class's trigger condition
// observed secret-dependent state — one per Table I column plus the
// control-flow baseline every machine shares.
type OptClass uint8

const (
	// OptSilentStore: a store-elision check compared the (tainted) store
	// value against memory (Section IV-A, Figure 6 precondition).
	OptSilentStore OptClass = iota
	// OptCompSimp: an ALU/mul/div simplifier consulted tainted operands
	// to pick a latency (zero-skip, trivial ops, early-exit division).
	OptCompSimp
	// OptPipeComp: an operand packer tested tainted operands for
	// narrowness to decide port sharing.
	OptPipeComp
	// OptCompReuse: a value-keyed reuse buffer compared tainted operands
	// against memoized entries.
	OptCompReuse
	// OptValuePred: a load value predictor trained on, or verified
	// against, a tainted loaded value.
	OptValuePred
	// OptRFC: a register-file compressor tested whether a tainted result
	// value duplicates one already at rest in the physical file.
	OptRFC
	// OptPrefetcher: an indirect-memory prefetcher read tainted bytes or
	// formed a prefetch address from them (the IMP/eBPF channel).
	OptPrefetcher
	// OptControlFlow: a branch or indirect-jump predicate was tainted —
	// the classical leak every machine has, reported so scans separate
	// "new" optimization channels from pre-existing ones.
	OptControlFlow
	// OptSpecForward: a store-to-load forwarding predictor speculatively
	// forwarded tainted store data (or decided on a tainted address
	// match) before the store's address resolved — the Store-to-Leak
	// Forwarding substrate (Schwarz et al., 1905.05725).
	OptSpecForward
	// OptWrongPath: a squashed wrong-path load accessed the cache with a
	// secret-derived address — the speculative-vectorization channel
	// (Karuppanan & Mirbagher, 2302.01131). The squash unwinds the ROB,
	// not the cache.
	OptWrongPath
	// OptCacheAddr: a demand load or store formed its cache-visible
	// address from tainted state — the classical cache side channel the
	// constant-time contract forbids. Unlike every other class this is
	// not an optimization's trigger condition but the baseline
	// observation model itself, so it is gated behind State.ObserveAddrs
	// and only the contract checker (internal/kernels) turns it on.
	OptCacheAddr

	numOptClasses // sentinel
)

// NumOptClasses is the number of distinct observer classes.
const NumOptClasses = int(numOptClasses)

func (c OptClass) String() string {
	switch c {
	case OptSilentStore:
		return "silent-store"
	case OptCompSimp:
		return "comp-simplification"
	case OptPipeComp:
		return "pipeline-compression"
	case OptCompReuse:
		return "comp-reuse"
	case OptValuePred:
		return "value-prediction"
	case OptRFC:
		return "rf-compression"
	case OptPrefetcher:
		return "prefetcher"
	case OptControlFlow:
		return "control-flow"
	case OptSpecForward:
		return "spec-forward"
	case OptWrongPath:
		return "wrong-path-load"
	case OptCacheAddr:
		return "cache-addr"
	}
	return fmt.Sprintf("opt(%d)", uint8(c))
}

// MLDRef returns the name of the class's default internal/mld descriptor.
// Observers may substitute a more specific one (e.g. OptCompSimp refines
// to zero_skip_mul or early_exit_div depending on the functional unit).
func (c OptClass) MLDRef() string {
	switch c {
	case OptSilentStore:
		return "silent_stores"
	case OptCompSimp:
		return "trivial_alu"
	case OptPipeComp:
		return "operand_packing"
	case OptCompReuse:
		return "instruction_reuse"
	case OptValuePred:
		return "v_prediction"
	case OptRFC:
		return "rf_compression"
	case OptPrefetcher:
		return "im3l_prefetcher"
	case OptControlFlow:
		return "branch_direction"
	case OptSpecForward:
		return "store_to_leak"
	case OptWrongPath:
		return "spec_vectorization"
	case OptCacheAddr:
		return "cache_address"
	}
	return ""
}

// LeakEvent records one occurrence of an optimization trigger condition
// depending on tainted state. Cycle and PC are -1 when the observer has
// no pipeline context (e.g. prefetcher training off the demand stream).
type LeakEvent struct {
	Cycle  int64
	PC     int64
	Opt    OptClass
	Labels LabelSet
	// MLDRef names the internal/mld descriptor this event instantiates.
	MLDRef string
	// Detail is free-form context (address, functional unit, ...).
	Detail string
}

// Recorder accumulates leak events with a storage cap: counts are always
// exact, but at most Limit events are retained verbatim.
type Recorder struct {
	Limit   int
	Events  []LeakEvent
	Counts  [numOptClasses]uint64
	Dropped uint64
}

// DefaultEventLimit bounds retained events per scan.
const DefaultEventLimit = 4096

// NewRecorder returns a recorder with the default storage cap.
func NewRecorder() *Recorder { return &Recorder{Limit: DefaultEventLimit} }

// Record stores ev (subject to the cap) and bumps its class counter.
func (r *Recorder) Record(ev LeakEvent) {
	if r == nil {
		return
	}
	if int(ev.Opt) < len(r.Counts) {
		r.Counts[ev.Opt]++
	}
	if len(r.Events) < r.Limit {
		r.Events = append(r.Events, ev)
	} else {
		r.Dropped++
	}
}

// Total returns the exact number of events recorded across all classes.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// CountOf returns the exact event count for one class.
func (r *Recorder) CountOf(c OptClass) uint64 {
	if r == nil || int(c) >= len(r.Counts) {
		return 0
	}
	return r.Counts[c]
}
