package taint

import (
	"fmt"

	"pandora/internal/obs"
)

// Leakage observers: one entry point per optimization class. Each is
// called from the point in the pipeline (or prefetcher) where the
// optimization evaluates its trigger condition, with the union of the
// labels that condition read. All observers are nil-safe and drop
// untainted calls, so instrumentation sites stay unconditional.

func (st *State) observe(c OptClass, cycle, pc int64, mldRef, detail string, labels LabelSet) {
	if st == nil || st.Rec == nil || !labels.Any() {
		return
	}
	if mldRef == "" {
		mldRef = c.MLDRef()
	}
	st.Rec.Record(LeakEvent{Cycle: cycle, PC: pc, Opt: c, Labels: labels, MLDRef: mldRef, Detail: detail})
	if st.Probe != nil {
		st.Probe.Emit(obs.Event{
			Cycle: cycle, Kind: obs.KindTaintLeak, Track: obs.TrackTaint,
			PC: pc, Arg: int64(labels), Detail: c.String(),
		})
	}
}

// ObserveSilentStore reports a store-elision comparison ("new value equals
// old value") over tainted data. lsq selects the LSQ-compare descriptor.
func (st *State) ObserveSilentStore(cycle, pc int64, lsq bool, labels LabelSet) {
	ref := "silent_stores"
	detail := "read-port-stealing verify load"
	if lsq {
		ref = "silent_stores_lsq"
		detail = "LSQ same-address compare"
	}
	st.observe(OptSilentStore, cycle, pc, ref, detail, labels)
}

// ObserveSimplify reports a computation-simplification latency choice
// (zero-skip multiply, trivial ALU op, early-exit division) made from
// tainted operands. mldRef selects the specific descriptor.
func (st *State) ObserveSimplify(cycle, pc int64, mldRef string, labels LabelSet) {
	st.observe(OptCompSimp, cycle, pc, mldRef, "operand-dependent latency", labels)
}

// ObservePack reports an operand-packing narrowness test over tainted
// operands.
func (st *State) ObservePack(cycle, pc int64, labels LabelSet) {
	st.observe(OptPipeComp, cycle, pc, "", "narrow-operand co-issue test", labels)
}

// ObserveReuse reports a value-keyed reuse-buffer lookup with tainted
// operands (the Sn name-keyed scheme never observes values and must not
// call this).
func (st *State) ObserveReuse(cycle, pc int64, labels LabelSet) {
	st.observe(OptCompReuse, cycle, pc, "", "value-keyed lookup", labels)
}

// ObserveValuePred reports a value predictor trained on / verified
// against a tainted loaded value.
func (st *State) ObserveValuePred(cycle, pc int64, labels LabelSet) {
	st.observe(OptValuePred, cycle, pc, "", "prediction table update", labels)
}

// ObserveRFC reports a register-file compression duplicate-value test on
// a tainted result.
func (st *State) ObserveRFC(cycle, pc int64, labels LabelSet) {
	st.observe(OptRFC, cycle, pc, "", "duplicate-value test at writeback", labels)
}

// ObservePrefetch reports a prefetcher reading tainted bytes or forming
// an address from a tainted value. There is no pipeline context: the
// event carries the address instead.
func (st *State) ObservePrefetch(addr uint64, detail string, labels LabelSet) {
	st.observe(OptPrefetcher, -1, -1, "", fmt.Sprintf("%s @%#x", detail, addr), labels)
}

// ObserveControlFlow reports a tainted branch/indirect-jump predicate —
// the baseline channel, recorded so scans can distinguish optimization
// leaks from classical PC leaks.
func (st *State) ObserveControlFlow(cycle, pc int64, labels LabelSet) {
	st.observe(OptControlFlow, cycle, pc, "", "tainted predicate", labels)
}

// ObserveSpecForward reports a predictive store-to-load forward whose
// forwarded data or address-match outcome is tainted: whether the load
// issues fast (forwarded) and whether retire later replays it are both
// functions of that state.
func (st *State) ObserveSpecForward(cycle, pc int64, labels LabelSet) {
	st.observe(OptSpecForward, cycle, pc, "", "predictive store-to-load forward", labels)
}

// ObserveWrongPathLoad reports a wrong-path load forming its address from
// tainted state. The µop will be squashed, but the cache access is real —
// a squashed leak is still a leak.
func (st *State) ObserveWrongPathLoad(cycle, pc int64, labels LabelSet) {
	st.observe(OptWrongPath, cycle, pc, "", "squashed load's cache access", labels)
}

// ObserveCacheAddr reports a demand access whose address was computed
// from tainted state — the classical data-cache channel every machine
// has. labels must be the address-formation labels only, never the
// data's: a constant-time kernel is free to store secret bytes to a
// public address. No-op unless the state was armed with ObserveAddrs,
// so scenarios studying only the optimization channels are unaffected.
func (st *State) ObserveCacheAddr(cycle, pc int64, addr uint64, labels LabelSet) {
	if st == nil || !st.ObserveAddrs {
		return
	}
	st.observe(OptCacheAddr, cycle, pc, "", fmt.Sprintf("tainted access address %#x", addr), labels)
}
