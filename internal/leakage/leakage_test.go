package leakage

import (
	"strings"
	"testing"
)

// TestTableIMatchesPaper is the headline check for experiment E-T1: the
// landscape derived by probing the MLDs must reproduce the paper's
// Table I cell for cell.
func TestTableIMatchesPaper(t *testing.T) {
	got := NewAnalyzer().TableI()
	if diffs := DiffTableI(got, PaperTableI()); len(diffs) != 0 {
		t.Errorf("derived Table I disagrees with the paper:\n%s", strings.Join(diffs, "\n"))
		t.Logf("derived:\n%s", RenderTableI(got))
	}
}

func TestBaselineColumn(t *testing.T) {
	a := NewAnalyzer()
	unsafe := map[Item]bool{
		OpIntDiv: true, OpFP: true, AddrLoad: true, AddrStore: true, ControlFlow: true,
	}
	for _, it := range Items() {
		want := Safe
		if unsafe[it] {
			want = Unsafe
		}
		if got := a.Cell(it, Baseline); got != want {
			t.Errorf("baseline %v = %v, want %v", it, got, want)
		}
	}
}

// TestMetaTakeaway verifies the paper's meta takeaway: under the union of
// all studied optimizations, no instruction operand/result (or data at
// rest) remains safe.
func TestMetaTakeaway(t *testing.T) {
	tbl := NewAnalyzer().TableI()
	for _, it := range Items() {
		safeEverywhere := tbl[it][Baseline] == Safe
		for _, c := range Columns()[1:] {
			if tbl[it][c] == Unsafe || tbl[it][c] == UnsafePrime {
				safeEverywhere = false
			}
		}
		if safeEverywhere {
			t.Errorf("%v stays safe under every optimization — contradicts the paper's takeaway", it)
		}
	}
}

func TestTableIIMatchesPaper(t *testing.T) {
	want := map[Column]string{
		CS:  "stateless instruction-centric",
		PC:  "stateless instruction-centric",
		SS:  "stateful instruction-centric (arch)",
		CR:  "stateful instruction-centric (uarch)",
		VP:  "stateful instruction-centric (uarch)",
		RFC: "memory-centric",
		DMP: "memory-centric",
	}
	entries := TableII()
	if len(entries) != 7 {
		t.Fatalf("TableII has %d entries, want 7", len(entries))
	}
	for _, e := range entries {
		if e.Category != want[e.Column] {
			t.Errorf("%v classified %q, want %q", e.Column, e.Category, want[e.Column])
		}
	}
}

func TestRenderSmoke(t *testing.T) {
	tbl := NewAnalyzer().TableI()
	s := RenderTableI(tbl)
	for _, frag := range []string{"Baseline", "DMP", "Data memory", "U'"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered Table I missing %q:\n%s", frag, s)
		}
	}
	s2 := RenderTableII(TableII())
	if !strings.Contains(s2, "memory-centric") {
		t.Errorf("rendered Table II missing category:\n%s", s2)
	}
}

func TestVerdictStrings(t *testing.T) {
	if Dash.String() != "-" || Safe.String() != "S" || Unsafe.String() != "U" || UnsafePrime.String() != "U'" {
		t.Error("verdict strings wrong")
	}
}

func TestItemColumnEnums(t *testing.T) {
	if len(Items()) != 15 {
		t.Errorf("Items = %d, want 15 rows", len(Items()))
	}
	if len(Columns()) != 8 {
		t.Errorf("Columns = %d, want 8", len(Columns()))
	}
	for _, it := range Items() {
		if strings.Contains(it.String(), "?") {
			t.Errorf("item %d has no name", it)
		}
	}
}
