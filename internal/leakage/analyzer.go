package leakage

import (
	"context"

	"pandora/internal/mld"
	"pandora/internal/parallel"
)

// Analyzer derives the Table I landscape by probing descriptors.
//
// For each (item, column) pair the analyzer builds a sequence of
// assignments that differ only in the item's data, evaluates the column's
// descriptor for that item over the sequence, and classifies the cell:
//
//   - no descriptor, or a trivial partition → '-' (no change)
//   - non-trivial partition, baseline trivial/absent → U (newly unsafe)
//   - non-trivial partition equal to the baseline's → '-'
//   - non-trivial partition different from the baseline's → U′
//
// The baseline column itself reports S/U by partition triviality.
type Analyzer struct {
	// probes[column][item] produces the outcome vector over the item's
	// sample set, or nil when the column has no mechanism for the item.
	probes [numColumns][numItems]func() []uint64
}

// Sample sets. The "magic" values 42 (integer) and fpOne (float) are the
// values planted in microarchitectural/architectural state by the probes,
// so equality-keyed descriptors partition the samples non-trivially.
var (
	intSamples = []uint64{0, 1, 2, 3, 42, 0x7f, 0x80, 0x1234, 0xffff, 0x10000, 1 << 32, ^uint64(0)}
	fpOne      = uint64(0x3ff0000000000000)
	fpSamples  = []uint64{0, 1 /* subnormal */, 2 /* subnormal */, fpOne,
		0x4045000000000000 /* 42.0 */, 0x7fe0000000000000 /* large */, 0x0010000000000000 /* smallest normal */}
	addrSamples = []uint64{0, 64, 128, 192, 256, 320, 2048, 2112}
	memSamples  = intSamples
)

// NewAnalyzer wires every probe.
func NewAnalyzer() *Analyzer {
	a := &Analyzer{}

	inst1 := func(d *mld.Descriptor, mk func(v uint64) mld.Inst, samples []uint64) func() []uint64 {
		return func() []uint64 {
			outs := make([]uint64, len(samples))
			for i, v := range samples {
				outs[i] = d.MustEval(mld.Assignment{"i1": mk(v)})
			}
			return outs
		}
	}
	varyArg0 := func(v uint64) mld.Inst { return mld.Inst{Args: [2]uint64{v, 5}} }
	varyDst := func(v uint64) mld.Inst { return mld.Inst{PC: 7, Dst: v} }

	// ---- Baseline ----
	a.probes[Baseline][OpIntDiv] = inst1(mld.BaselineDivLatency(), func(v uint64) mld.Inst {
		return mld.Inst{Args: [2]uint64{v, 3}}
	}, intSamples)
	// The fixed FP operand must be a normal number (small integers are
	// subnormal bit patterns).
	varyArg0FP := func(v uint64) mld.Inst { return mld.Inst{Args: [2]uint64{v, fpOne}} }
	a.probes[Baseline][OpFP] = inst1(mld.FPSubnormal(), varyArg0FP, fpSamples)
	cacheProbe := func() []uint64 {
		d := mld.CacheRand()
		c := mld.NewCacheState(32, 64)
		outs := make([]uint64, len(addrSamples))
		for i, addr := range addrSamples {
			outs[i] = d.MustEval(mld.Assignment{"i1": mld.Inst{Addr: addr}, "cache": c})
		}
		return outs
	}
	a.probes[Baseline][AddrLoad] = cacheProbe
	a.probes[Baseline][AddrStore] = cacheProbe
	a.probes[Baseline][ControlFlow] = inst1(mld.BranchDirection(), func(v uint64) mld.Inst {
		return mld.Inst{Args: [2]uint64{v, 0x8000}}
	}, intSamples)

	// ---- Computation simplification ----
	a.probes[CS][OpIntSimple] = inst1(mld.TrivialALU(), varyArg0, intSamples)
	a.probes[CS][OpIntMul] = inst1(mld.ZeroSkipMul(), varyArg0, intSamples)
	a.probes[CS][OpIntDiv] = inst1(mld.EarlyExitDiv(), func(v uint64) mld.Inst {
		return mld.Inst{Args: [2]uint64{v, 3}}
	}, intSamples)
	a.probes[CS][OpFP] = inst1(mld.FPTrivial(), varyArg0, fpSamples)

	// ---- Pipeline compression ----
	packProbe := func(samples []uint64) func() []uint64 {
		d := mld.OperandPacking()
		return func() []uint64 {
			outs := make([]uint64, len(samples))
			for i, v := range samples {
				outs[i] = d.MustEval(mld.Assignment{
					"i1": mld.Inst{Args: [2]uint64{v, 5}},
					"i2": mld.Inst{Args: [2]uint64{3, 9}}, // attacker-controlled: narrow
				})
			}
			return outs
		}
	}
	a.probes[PC][OpIntSimple] = packProbe(intSamples)
	a.probes[PC][OpIntMul] = packProbe(intSamples)
	a.probes[PC][OpIntDiv] = inst1(mld.SignificanceOperands(), func(v uint64) mld.Inst {
		return mld.Inst{Args: [2]uint64{v, 3}}
	}, intSamples)
	a.probes[PC][RestRegFile] = func() []uint64 {
		d := mld.SignificanceRegFile()
		outs := make([]uint64, len(memSamples))
		for i, v := range memSamples {
			outs[i] = d.MustEval(mld.Assignment{"register_file": mld.RegFile{7, v, 0x1000}})
		}
		return outs
	}

	// ---- Silent stores ----
	a.probes[SS][DataStore] = func() []uint64 {
		d := mld.SilentStores()
		m := mld.MemoryState{0x800: 42} // attacker-preconditioned memory
		outs := make([]uint64, len(intSamples))
		for i, v := range intSamples {
			outs[i] = d.MustEval(mld.Assignment{"i1": mld.Inst{Addr: 0x800, Data: v}, "data_memory": m})
		}
		return outs
	}
	a.probes[SS][RestDataMemory] = func() []uint64 {
		d := mld.SilentStores()
		outs := make([]uint64, len(memSamples))
		for i, v := range memSamples {
			outs[i] = d.MustEval(mld.Assignment{
				"i1":          mld.Inst{Addr: 0x800, Data: 42}, // attacker-controlled store
				"data_memory": mld.MemoryState{0x800: v},
			})
		}
		return outs
	}

	// ---- Computation reuse (Sv) ----
	reuseProbe := func(samples []uint64, memoized uint64) func() []uint64 {
		d := mld.InstructionReuse()
		tbl := mld.ReuseTable{0: {memoized, 5}}
		return func() []uint64 {
			outs := make([]uint64, len(samples))
			for i, v := range samples {
				outs[i] = d.MustEval(mld.Assignment{"i1": mld.Inst{PC: 0, Args: [2]uint64{v, 5}}, "reuse_buffer": tbl})
			}
			return outs
		}
	}
	a.probes[CR][OpIntSimple] = reuseProbe(intSamples, 42)
	a.probes[CR][OpIntMul] = reuseProbe(intSamples, 42)
	a.probes[CR][OpIntDiv] = reuseProbe(intSamples, 42)
	a.probes[CR][OpFP] = reuseProbe(fpSamples, fpOne)

	// ---- Value prediction ----
	vpProbe := func() []uint64 {
		d := mld.VPrediction()
		tbl := mld.PredTable{7: {Conf: mld.PredMaxConf, Prediction: 42}}
		outs := make([]uint64, len(intSamples))
		for i, v := range intSamples {
			outs[i] = d.MustEval(mld.Assignment{"i1": varyDst(v), "prediction_table": tbl})
		}
		return outs
	}
	a.probes[VP][ResIntSimple] = vpProbe
	a.probes[VP][ResIntMul] = vpProbe
	a.probes[VP][ResIntDiv] = vpProbe
	a.probes[VP][ResFP] = func() []uint64 {
		d := mld.VPrediction()
		tbl := mld.PredTable{7: {Conf: mld.PredMaxConf, Prediction: fpOne}}
		outs := make([]uint64, len(fpSamples))
		for i, v := range fpSamples {
			outs[i] = d.MustEval(mld.Assignment{"i1": varyDst(v), "prediction_table": tbl})
		}
		return outs
	}
	a.probes[VP][DataLoad] = vpProbe // load value prediction

	// ---- Register-file compression ----
	rfcResultProbe := func(samples []uint64) func() []uint64 {
		d := mld.RFCResult()
		rf := mld.RegFile{0, 1, 42, fpOne, 0x1234}
		return func() []uint64 {
			outs := make([]uint64, len(samples))
			for i, v := range samples {
				outs[i] = d.MustEval(mld.Assignment{"i1": varyDst(v), "register_file": rf})
			}
			return outs
		}
	}
	a.probes[RFC][ResIntSimple] = rfcResultProbe(intSamples)
	a.probes[RFC][ResIntMul] = rfcResultProbe(intSamples)
	a.probes[RFC][ResIntDiv] = rfcResultProbe(intSamples)
	a.probes[RFC][ResFP] = rfcResultProbe(fpSamples)
	a.probes[RFC][RestRegFile] = func() []uint64 {
		d := mld.RFCompression()
		outs := make([]uint64, len(memSamples))
		for i, v := range memSamples {
			outs[i] = d.MustEval(mld.Assignment{"register_file": mld.RegFile{7, v, 0x1000}})
		}
		return outs
	}

	// ---- Data memory-dependent prefetching ----
	a.probes[DMP][RestDataMemory] = func() []uint64 {
		d := mld.IM3LPrefetcher()
		imp := mld.IMPState{Start: 4, BaseZ: 0x1000, BaseY: 0x40000, BaseX: 0x80000, ElemShift: 2}
		outs := make([]uint64, len(memSamples))
		for i, v := range memSamples {
			// The varied item is a word of victim memory: the value the
			// prefetcher dereferences at the second level.
			m := mld.MemoryState{
				0x1000 + 4<<2:   50, // Z[i+Δ], attacker-controlled target
				0x40000 + 50<<2: v,  // secret = Y[target]
			}
			outs[i] = d.MustEval(mld.Assignment{"imp": imp, "cache": mld.NewCacheState(32, 64), "data_memory": m})
		}
		return outs
	}

	return a
}

// Cell classifies one Table I cell.
func (a *Analyzer) Cell(item Item, col Column) Verdict {
	probe := a.probes[col][item]
	if col == Baseline {
		if probe == nil {
			return Safe
		}
		if mld.Trivial(mld.Partition(probe())) {
			return Safe
		}
		return Unsafe
	}
	if probe == nil {
		return Dash
	}
	optPart := mld.Partition(probe())
	if mld.Trivial(optPart) {
		return Dash
	}
	base := a.probes[Baseline][item]
	if base == nil {
		return Unsafe
	}
	basePart := mld.Partition(base())
	if mld.Trivial(basePart) {
		return Unsafe
	}
	if mld.EqualPartitions(optPart, basePart) {
		return Dash
	}
	return UnsafePrime
}

// Row classifies every column for one Table I item.
func (a *Analyzer) Row(it Item) map[Column]Verdict {
	row := make(map[Column]Verdict, numColumns)
	for _, c := range Columns() {
		row[c] = a.Cell(it, c)
	}
	return row
}

// TableI derives the full landscape.
func (a *Analyzer) TableI() map[Item]map[Column]Verdict {
	out := make(map[Item]map[Column]Verdict, numItems)
	for _, it := range Items() {
		out[it] = a.Row(it)
	}
	return out
}

// TableIParallel derives the landscape with rows sharded over a worker
// pool (workers <= 0 selects GOMAXPROCS). Each worker probes through
// its own pooled Analyzer, so no descriptor state is shared across
// goroutines; verdicts are pure functions of the (item, column) pair,
// so the result is identical to TableI at every worker count.
func TableIParallel(workers int) map[Item]map[Column]Verdict {
	items := Items()
	pool := parallel.NewPool(parallel.Workers(workers), func() (*Analyzer, error) {
		return NewAnalyzer(), nil
	})
	rows, err := parallel.Map(context.Background(), workers, items,
		func(_ context.Context, _ int, it Item) (map[Column]Verdict, error) {
			a, err := pool.Get()
			if err != nil {
				return nil, err
			}
			defer pool.Put(a)
			return a.Row(it), nil
		})
	if err != nil {
		// Analyzer construction cannot fail and Row does not error; a
		// panic inside a probe is re-raised rather than silently dropped.
		panic(err)
	}
	out := make(map[Item]map[Column]Verdict, len(items))
	for i, it := range items {
		out[it] = rows[i]
	}
	return out
}

// ClassEntry is one Table II row: an optimization class and its MLD
// signature category.
type ClassEntry struct {
	Column     Column
	Descriptor string
	Category   string
}

// TableII classifies each optimization class by its primary descriptor's
// input-kind signature, reproducing the paper's Table II.
func TableII() []ClassEntry {
	primaries := []struct {
		col Column
		d   *mld.Descriptor
	}{
		{CS, mld.ZeroSkipMul()},
		{PC, mld.OperandPacking()},
		{SS, mld.SilentStores()},
		{CR, mld.InstructionReuse()},
		{VP, mld.VPrediction()},
		{RFC, mld.RFCompression()},
		{DMP, mld.IM3LPrefetcher()},
	}
	out := make([]ClassEntry, len(primaries))
	for i, p := range primaries {
		out[i] = ClassEntry{
			Column:     p.col,
			Descriptor: p.d.Name,
			Category:   p.d.Signature().Category(),
		}
	}
	return out
}
