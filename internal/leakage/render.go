package leakage

import (
	"fmt"
	"strings"
)

// RenderTableI formats a landscape as aligned text resembling the paper's
// Table I.
func RenderTableI(tbl map[Item]map[Column]Verdict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s", "Data item")
	for _, c := range Columns() {
		fmt.Fprintf(&b, "%-10s", c)
	}
	b.WriteString("\n")
	b.WriteString(strings.Repeat("-", 28+10*int(numColumns)) + "\n")
	section := ""
	for _, it := range Items() {
		name := it.String()
		if parts := strings.SplitN(name, ": ", 2); len(parts) == 2 && parts[0] != section {
			section = parts[0]
			fmt.Fprintf(&b, "[%s]\n", section)
		}
		fmt.Fprintf(&b, "%-28s", "  "+strings.TrimPrefix(name, section+": "))
		for _, c := range Columns() {
			fmt.Fprintf(&b, "%-10s", tbl[it][c])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// DiffTableI compares a derived landscape against the paper's, returning
// a list of mismatched cells (empty when the reproduction agrees).
func DiffTableI(got, want map[Item]map[Column]Verdict) []string {
	var diffs []string
	for _, it := range Items() {
		for _, c := range Columns() {
			if got[it][c] != want[it][c] {
				diffs = append(diffs, fmt.Sprintf("%v x %v: derived %v, paper %v",
					it, c, got[it][c], want[it][c]))
			}
		}
	}
	return diffs
}

// RenderTableII formats the classification as text resembling Table II.
func RenderTableII(entries []ClassEntry) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-22s %s\n", "Class", "Primary MLD", "Category")
	b.WriteString(strings.Repeat("-", 72) + "\n")
	for _, e := range entries {
		fmt.Fprintf(&b, "%-8s %-22s %s\n", e.Column, e.Descriptor, e.Category)
	}
	return b.String()
}
