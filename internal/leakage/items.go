// Package leakage regenerates the paper's leakage landscape (Table I) and
// optimization classification (Table II) from first principles: for every
// (data item, optimization) pair it probes the optimization's
// microarchitectural leakage descriptor with controlled input samples that
// differ only in that data item, then classifies the cell by comparing the
// induced outcome partitions against the baseline architecture's.
//
// Verdicts follow the paper's notation: S (Safe — the descriptor cannot
// distinguish the samples), U (Unsafe — previously-safe data becomes
// distinguishable), U′ (Unsafe-prime — data already unsafe in the
// baseline leaks through a *different* function), and '-' (no change
// relative to the baseline).
package leakage

// Item enumerates the rows of Table I: what program data is at risk.
type Item int

// Table I rows, in paper order.
const (
	OpIntSimple Item = iota // operands of simple integer ops
	OpIntMul
	OpIntDiv
	OpFP
	ResIntSimple // results
	ResIntMul
	ResIntDiv
	ResFP
	AddrLoad // address operands
	AddrStore
	DataLoad // data operands/results of memory ops
	DataStore
	ControlFlow
	RestRegFile // data at rest
	RestDataMemory
	numItems
)

var itemNames = [...]string{
	OpIntSimple:    "Operands: Int simple ops",
	OpIntMul:       "Operands: Int mul",
	OpIntDiv:       "Operands: Int div",
	OpFP:           "Operands: FP ops",
	ResIntSimple:   "Result: Int simple ops",
	ResIntMul:      "Result: Int mul",
	ResIntDiv:      "Result: Int div",
	ResFP:          "Result: FP ops",
	AddrLoad:       "Addr: Load",
	AddrStore:      "Addr: Store",
	DataLoad:       "Data: Load",
	DataStore:      "Data: Store",
	ControlFlow:    "Control flow",
	RestRegFile:    "At rest: Register file",
	RestDataMemory: "At rest: Data memory",
}

func (it Item) String() string {
	if int(it) < len(itemNames) {
		return itemNames[it]
	}
	return "item?"
}

// Items returns all Table I rows in order.
func Items() []Item {
	out := make([]Item, numItems)
	for i := range out {
		out[i] = Item(i)
	}
	return out
}

// Column enumerates the Table I columns: the baseline plus the seven
// studied optimization classes.
type Column int

// Table I columns, in paper order.
const (
	Baseline Column = iota
	CS              // computation simplification
	PC              // pipeline compression
	SS              // silent stores
	CR              // computation reuse
	VP              // value prediction
	RFC             // register-file compression
	DMP             // data memory-dependent prefetching
	numColumns
)

var columnNames = [...]string{
	Baseline: "Baseline", CS: "CS", PC: "PC", SS: "SS",
	CR: "CR", VP: "VP", RFC: "RFC", DMP: "DMP",
}

func (c Column) String() string {
	if int(c) < len(columnNames) {
		return columnNames[c]
	}
	return "col?"
}

// Columns returns all Table I columns in order.
func Columns() []Column {
	out := make([]Column, numColumns)
	for i := range out {
		out[i] = Column(i)
	}
	return out
}

// Verdict is one Table I cell.
type Verdict int

// Verdict values; Dash means "no change relative to baseline".
const (
	Dash Verdict = iota
	Safe
	Unsafe
	UnsafePrime
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "S"
	case Unsafe:
		return "U"
	case UnsafePrime:
		return "U'"
	}
	return "-"
}

// PaperTableI returns the landscape exactly as reported in the paper's
// Table I, used by tests and EXPERIMENTS.md to check agreement with the
// derived table.
func PaperTableI() map[Item]map[Column]Verdict {
	row := func(base Verdict, cs, pc, ss, cr, vp, rfc, dmp Verdict) map[Column]Verdict {
		return map[Column]Verdict{
			Baseline: base, CS: cs, PC: pc, SS: ss, CR: cr, VP: vp, RFC: rfc, DMP: dmp,
		}
	}
	return map[Item]map[Column]Verdict{
		OpIntSimple:    row(Safe, Unsafe, Unsafe, Dash, Unsafe, Dash, Dash, Dash),
		OpIntMul:       row(Safe, Unsafe, Unsafe, Dash, Unsafe, Dash, Dash, Dash),
		OpIntDiv:       row(Unsafe, UnsafePrime, UnsafePrime, Dash, UnsafePrime, Dash, Dash, Dash),
		OpFP:           row(Unsafe, UnsafePrime, Dash, Dash, UnsafePrime, Dash, Dash, Dash),
		ResIntSimple:   row(Safe, Dash, Dash, Dash, Dash, Unsafe, Unsafe, Dash),
		ResIntMul:      row(Safe, Dash, Dash, Dash, Dash, Unsafe, Unsafe, Dash),
		ResIntDiv:      row(Safe, Dash, Dash, Dash, Dash, Unsafe, Unsafe, Dash),
		ResFP:          row(Safe, Dash, Dash, Dash, Dash, Unsafe, Unsafe, Dash),
		AddrLoad:       row(Unsafe, Dash, Dash, Dash, Dash, Dash, Dash, Dash),
		AddrStore:      row(Unsafe, Dash, Dash, Dash, Dash, Dash, Dash, Dash),
		DataLoad:       row(Safe, Dash, Dash, Dash, Dash, Unsafe, Dash, Dash),
		DataStore:      row(Safe, Dash, Dash, Unsafe, Dash, Dash, Dash, Dash),
		ControlFlow:    row(Unsafe, Dash, Dash, Dash, Dash, Dash, Dash, Dash),
		RestRegFile:    row(Safe, Dash, Unsafe, Dash, Dash, Dash, Unsafe, Dash),
		RestDataMemory: row(Safe, Dash, Dash, Unsafe, Dash, Dash, Dash, Unsafe),
	}
}
