package campaign

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pandora/internal/faults"
)

// smallOpts is a bounded campaign profile used by every test: two sites
// with short detection paths plus the control arm, two trials each.
func smallOpts() Options {
	return Options{
		Seed:    3,
		Trials:  2,
		Sites:   []faults.Site{faults.SiteCacheLine, faults.SiteMiscompile},
		Workers: 2,
	}
}

func TestSmallCampaignPassesVerify(t *testing.T) {
	rep, err := Run(context.Background(), smallOpts())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := Verify(rep); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if rep.ControlTrials != 2 || rep.FalsePositives != 0 {
		t.Errorf("control arm: %d trials, %d false positives", rep.ControlTrials, rep.FalsePositives)
	}
	// Two swept sites plus the control arm's own summary row.
	if len(rep.Sites) != 3 || rep.Sites[2].Site != ControlSite {
		t.Fatalf("report covers %d sites (last %q), want 3 ending in control",
			len(rep.Sites), rep.Sites[len(rep.Sites)-1].Site)
	}
	for _, s := range rep.Sites[:2] {
		if s.Fired == 0 || s.Detected == 0 {
			t.Errorf("site %s: fired %d, detected %d", s.Site, s.Fired, s.Detected)
		}
	}
	// 2 sites × 2 trials + 2 control trials, in canonical order.
	if len(rep.Trials) != 6 {
		t.Fatalf("report has %d trials, want 6", len(rep.Trials))
	}
}

func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	reports := make([][]byte, 0, 2)
	for _, workers := range []int{1, 4} {
		opts := smallOpts()
		opts.Workers = workers
		rep, err := Run(context.Background(), opts)
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		reports = append(reports, b)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Errorf("worker count changed the report:\n1: %s\n4: %s", reports[0], reports[1])
	}
}

// TestResumeByteIdentical is the ISSUE acceptance criterion: interrupt a
// journaled campaign (simulated by truncating the journal to a prefix of
// completed trials), resume it, and require the final report to be
// byte-identical to the uninterrupted run.
func TestResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()

	full := smallOpts()
	full.Journal = filepath.Join(dir, "full.journal")
	wantRep, err := Run(context.Background(), full)
	if err != nil {
		t.Fatalf("uninterrupted Run: %v", err)
	}
	want, err := json.Marshal(wantRep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}

	// Interrupt: keep the header and the first two completed trials.
	data, err := os.ReadFile(full.Journal)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal has %d lines, want >= 4", len(lines))
	}
	truncated := filepath.Join(dir, "resume.journal")
	if err := os.WriteFile(truncated, bytes.Join(lines[:3], nil), 0o644); err != nil {
		t.Fatalf("write truncated journal: %v", err)
	}

	res := smallOpts()
	res.Journal = truncated
	res.Resume = true
	res.Workers = 1 // different worker count must not matter either
	gotRep, err := Run(context.Background(), res)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	got, err := json.Marshal(gotRep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed report differs from uninterrupted run:\nwant: %s\ngot:  %s", want, got)
	}
}

// TestResumeToleratesTornFinalLine simulates an append interrupted
// mid-write: the half-written trial line must be ignored and rerun, not
// poison the resume.
func TestResumeToleratesTornFinalLine(t *testing.T) {
	dir := t.TempDir()

	full := smallOpts()
	full.Journal = filepath.Join(dir, "full.journal")
	wantRep, err := Run(context.Background(), full)
	if err != nil {
		t.Fatalf("uninterrupted Run: %v", err)
	}
	want, _ := json.Marshal(wantRep)

	data, err := os.ReadFile(full.Journal)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	torn := append(bytes.Join(lines[:3], nil), lines[3][:len(lines[3])/2]...)
	tornPath := filepath.Join(dir, "torn.journal")
	if err := os.WriteFile(tornPath, torn, 0o644); err != nil {
		t.Fatalf("write torn journal: %v", err)
	}

	res := smallOpts()
	res.Journal = tornPath
	res.Resume = true
	gotRep, err := Run(context.Background(), res)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	got, _ := json.Marshal(gotRep)
	if !bytes.Equal(got, want) {
		t.Errorf("torn-line resume report differs:\nwant: %s\ngot:  %s", want, got)
	}
}

func TestResumeRejectsForeignJournal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.journal")

	first := smallOpts()
	first.Journal = path
	if _, err := Run(context.Background(), first); err != nil {
		t.Fatalf("Run: %v", err)
	}

	other := smallOpts()
	other.Seed = 99 // different campaign identity
	other.Journal = path
	other.Resume = true
	if _, err := Run(context.Background(), other); err == nil ||
		!strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("resume with mismatched seed: err = %v, want identity rejection", err)
	}
}

func TestJournalRecordsEveryTrial(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.Journal = filepath.Join(dir, "c.journal")
	if _, err := Run(context.Background(), opts); err != nil {
		t.Fatalf("Run: %v", err)
	}
	f, err := os.Open(opts.Journal)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		t.Fatalf("journal missing header")
	}
	var h journalHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		t.Fatalf("header: %v", err)
	}
	if h.Version != journalVersion || h.Seed != 3 || h.Image == "" {
		t.Errorf("header %+v: want version %d, seed 3, non-empty image digest", h, journalVersion)
	}
	n := 0
	for sc.Scan() {
		var tr Trial
		if err := json.Unmarshal(sc.Bytes(), &tr); err != nil {
			t.Fatalf("trial line %d: %v", n, err)
		}
		n++
	}
	if n != 6 {
		t.Errorf("journal holds %d trials, want 6", n)
	}
}

func TestVerifyGates(t *testing.T) {
	ok := &Report{
		Sites: []SiteSummary{{Site: "prf", Trials: 2, Fired: 2, Detected: 2}},
	}
	if err := Verify(ok); err != nil {
		t.Errorf("clean report rejected: %v", err)
	}
	if err := Verify(&Report{
		Sites: []SiteSummary{{Site: ControlSite, Trials: 2, Detected: 1}},
	}); err == nil {
		t.Errorf("control-arm false positive accepted")
	}
	if err := Verify(&Report{
		Sites: []SiteSummary{{Site: "prf", Trials: 2, Fired: 2, Detected: 0}},
	}); err == nil {
		t.Errorf("undetected site accepted")
	}
	if err := Verify(&Report{
		Sites: []SiteSummary{{Site: "prf", Trials: 2, Fired: 0, Detected: 0}},
	}); err == nil {
		t.Errorf("never-firing site accepted")
	}
	if err := Verify(&Report{
		Trials: []Trial{{Site: "prf", Note: "harness error"}},
	}); err == nil {
		t.Errorf("infrastructure note accepted")
	}
}
