package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"pandora/internal/diffcheck"
	"pandora/internal/mem"
)

// journalVersion guards the journal line format.
const journalVersion = 1

// journalHeader is the journal's first line: it fingerprints the campaign
// so Resume refuses to mix trials from incompatible runs. Image digests
// the memory snapshot every trial starts from — if the generator's
// initial image ever changes, old journal entries are meaningless.
type journalHeader struct {
	Version int      `json:"version"`
	Seed    int64    `json:"seed"`
	Trials  int      `json:"trials"`
	Control int      `json:"control"`
	Sites   []string `json:"sites"`
	Image   string   `json:"image"`
}

func headerFor(opts *Options) journalHeader {
	h := journalHeader{
		Version: journalVersion,
		Seed:    opts.Seed,
		Trials:  opts.trials(),
		Control: opts.control(),
		Image:   imageDigest(),
	}
	for _, s := range opts.sites() {
		h.Sites = append(h.Sites, s.String())
	}
	return h
}

func (h journalHeader) equal(o journalHeader) bool {
	if h.Version != o.Version || h.Seed != o.Seed || h.Trials != o.Trials ||
		h.Control != o.Control || h.Image != o.Image || len(h.Sites) != len(o.Sites) {
		return false
	}
	for i := range h.Sites {
		if h.Sites[i] != o.Sites[i] {
			return false
		}
	}
	return true
}

// imageDigest fingerprints the initial memory image trials run against:
// an FNV-64a over a snapshot of the generator's scratch regions.
func imageDigest() string {
	m := mem.New()
	diffcheck.InitMemory(m)
	snap := m.Snapshot()
	h := fnv.New64a()
	bases, span := diffcheck.ScratchRegions()
	for _, b := range bases {
		h.Write(snap.LoadBytes(b, int(span)))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func trialKey(site string, index int) string {
	return fmt.Sprintf("%s/%d", site, index)
}

// journal is the append side of the checkpoint file. Appends are
// serialized: trial workers finish concurrently.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func (j *journal) append(t Trial) error {
	b, err := json.Marshal(t)
	if err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("campaign: journal: %w", err)
	}
	// One fsync per trial keeps the checkpoint crash-consistent; trials
	// cost millions of simulated cycles, so the sync is noise.
	return j.f.Sync()
}

func (j *journal) close() {
	if j != nil && j.f != nil {
		j.f.Close()
	}
}

// openJournal creates (or, under Resume, reopens and replays) the
// campaign journal. It returns the append handle and the trials already
// completed, keyed by trialKey.
func openJournal(opts *Options) (*journal, map[string]Trial, error) {
	want := headerFor(opts)
	done := map[string]Trial{}

	if opts.Resume {
		data, err := os.ReadFile(opts.Journal)
		switch {
		case os.IsNotExist(err):
			// Nothing to resume; fall through to a fresh journal.
		case err != nil:
			return nil, nil, fmt.Errorf("campaign: journal: %w", err)
		default:
			sc := bufio.NewScanner(bytes.NewReader(data))
			sc.Buffer(make([]byte, 1<<20), 1<<20)
			if !sc.Scan() {
				return nil, nil, fmt.Errorf("campaign: journal %s: empty", opts.Journal)
			}
			var got journalHeader
			if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
				return nil, nil, fmt.Errorf("campaign: journal %s: bad header: %w", opts.Journal, err)
			}
			if !got.equal(want) {
				return nil, nil, fmt.Errorf(
					"campaign: journal %s was written by a different campaign (seed/sites/trials/image differ); delete it or drop -resume",
					opts.Journal)
			}
			for sc.Scan() {
				var t Trial
				// A torn final line from an interrupted append is not an
				// error — that trial simply reruns.
				if err := json.Unmarshal(sc.Bytes(), &t); err != nil {
					continue
				}
				key := trialKey(t.Site, t.Index)
				if _, dup := done[key]; !dup {
					done[key] = t
				}
			}
			f, err := os.OpenFile(opts.Journal, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, fmt.Errorf("campaign: journal: %w", err)
			}
			return &journal{f: f}, done, nil
		}
	}

	f, err := os.Create(opts.Journal)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: journal: %w", err)
	}
	hb, err := json.Marshal(want)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: journal: %w", err)
	}
	if _, err := f.Write(append(hb, '\n')); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("campaign: journal: %w", err)
	}
	return &journal{f: f}, done, nil
}
