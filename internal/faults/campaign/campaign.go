// Package campaign is the fault-injection campaign runner behind
// `pandora fault`: it sweeps seeded fault plans (internal/faults) over
// randomly generated programs and measures, per fault site, which
// detector caught the fault and how many cycles after injection.
//
// Each trial is a self-contained differential experiment. A seeded
// program is generated (internal/diffcheck), run once on the functional
// emulator (the golden run), once on the pipeline without a fault (the
// reference run, fixing the expected cycle count and statistics), and
// once with the fault armed. Whatever the faulty run reports — a watchdog
// stall, an invariant violation, an oracle mismatch at retire — or leaves
// behind — an architectural state diff against the golden run, a timing
// deviation from the reference run — is attributed to a named detector.
// A control arm runs the same protocol with no fault armed; any detection
// there is a false positive and fails Verify.
//
// Campaigns checkpoint: with Options.Journal set, every completed trial
// is appended to a journal file as one JSON line under a header that
// fingerprints the campaign (seed, trial counts, sites, and the memory
// image the generator programs run against). Options.Resume skips the
// journaled trials, and because every trial's randomness derives from
// parallel.Seed(Seed, globalIndex), a resumed campaign reports results
// byte-identical to an uninterrupted one.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"pandora/internal/cache"
	"pandora/internal/diffcheck"
	"pandora/internal/emu"
	"pandora/internal/faults"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/parallel"
	"pandora/internal/pipeline"
)

// DefaultTrials is the per-site trial count when Options.Trials is zero.
const DefaultTrials = 8

// ControlSite is the site name of the no-fault control arm.
const ControlSite = "control"

// Detector names, in the order a trial checks them.
const (
	DetWatchdog  = "watchdog"   // forward-progress supervisor (incl. MaxCycles)
	DetInvariant = "invariant"  // per-cycle structural self-checks
	DetOracle    = "oracle"     // retire verification / divergence checks
	DetStateDiff = "state-diff" // final architectural state vs golden run
	DetTiming    = "timing"     // cycle count / statistics vs reference run
)

// Options parameterizes a campaign.
type Options struct {
	// Seed is the campaign master seed; every trial derives its own seed
	// from it and its stable global index.
	Seed int64
	// Trials is the per-site trial count (0 = DefaultTrials).
	Trials int
	// Control is the no-fault control-arm trial count (0 = Trials).
	Control int
	// Sites selects the fault sites to sweep (nil = faults.CampaignSites).
	Sites []faults.Site
	// Workers bounds trial concurrency (0 = GOMAXPROCS).
	Workers int
	// Journal, when non-empty, is the checkpoint file: completed trials
	// append as JSON lines and Resume skips them.
	Journal string
	// Resume continues a journaled campaign instead of restarting it.
	Resume bool
	// DumpDir, when non-empty, receives the CoreDump JSON of every trial
	// the supervisor aborted (watchdog stalls, invariant violations).
	DumpDir string
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

func (o *Options) trials() int {
	if o.Trials > 0 {
		return o.Trials
	}
	return DefaultTrials
}

func (o *Options) control() int {
	if o.Control > 0 {
		return o.Control
	}
	return o.trials()
}

func (o *Options) sites() []faults.Site {
	if len(o.Sites) > 0 {
		return o.Sites
	}
	return faults.CampaignSites()
}

func (o *Options) log(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// Detection is one detector firing on one trial.
type Detection struct {
	Detector string `json:"detector"`
	// Cycle is when the detector fired (the abort cycle for supervised
	// errors, the end of the run for state/timing comparisons).
	Cycle int64 `json:"cycle"`
	// Latency is Cycle minus the fault's first-firing cycle.
	Latency int64  `json:"latency"`
	Detail  string `json:"detail,omitempty"`
}

// Trial is one completed experiment: the plan that ran and everything the
// detectors reported. Trials serialize to the journal and the report.
type Trial struct {
	Site    string       `json:"site"`
	Index   int          `json:"index"`
	Seed    int64        `json:"seed"`
	Plan    *faults.Plan `json:"plan,omitempty"` // nil on the control arm
	Mask    uint16       `json:"mask"`
	Toggles string       `json:"toggles"`
	// RefCycles is the fault-free reference run's cycle count.
	RefCycles int64 `json:"ref_cycles"`
	// Fired/FiredCycle report whether and when the fault actually
	// triggered; an unfired trial cannot count against detection rate.
	Fired      bool        `json:"fired"`
	FiredCycle int64       `json:"fired_cycle,omitempty"`
	Detections []Detection `json:"detections,omitempty"`
	// Note records infrastructure failures (golden or reference run
	// errors); a healthy campaign has none.
	Note string `json:"note,omitempty"`
}

// Detected reports whether any detector fired.
func (t *Trial) Detected() bool { return len(t.Detections) > 0 }

// SiteSummary aggregates one site's trials.
type SiteSummary struct {
	Site   string `json:"site"`
	Trials int    `json:"trials"`
	// Fired counts trials whose fault actually triggered; DetectionRate
	// is Detected/Fired (the control arm keeps both at zero).
	Fired         int     `json:"fired"`
	Detected      int     `json:"detected"`
	DetectionRate float64 `json:"detection_rate"`
	// MeanLatency averages the first detection's latency (cycles from
	// injection to detection) over detected trials.
	MeanLatency float64 `json:"mean_latency_cycles"`
	// Detectors counts first detections per detector name.
	Detectors map[string]int `json:"detectors,omitempty"`
}

// Report is a campaign's full result: per-site summaries plus every
// trial, in canonical (site, index) order so that a resumed campaign
// serializes byte-identically to an uninterrupted one.
type Report struct {
	Seed           int64         `json:"seed"`
	TrialsPerSite  int           `json:"trials_per_site"`
	ControlTrials  int           `json:"control_trials"`
	FalsePositives int           `json:"false_positives"`
	Sites          []SiteSummary `json:"sites"`
	Trials         []Trial       `json:"trials"`
}

// Format renders the report as the human-readable per-site table both
// `pandora fault` and the serve fault runner print. Deterministic: the
// detector summaries are sorted by name (map iteration order is not).
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault campaign: seed=%d trials/site=%d control=%d\n\n",
		r.Seed, r.TrialsPerSite, r.ControlTrials)
	fmt.Fprintf(&b, "%-12s %7s %6s %9s %6s %12s  %s\n",
		"site", "trials", "fired", "detected", "rate", "mean-latency", "detectors")
	for _, s := range r.Sites {
		dets := make([]string, 0, len(s.Detectors))
		for name, n := range s.Detectors {
			dets = append(dets, fmt.Sprintf("%s:%d", name, n))
		}
		sort.Strings(dets)
		rate := "-"
		if s.Fired > 0 {
			rate = fmt.Sprintf("%3.0f%%", 100*s.DetectionRate)
		}
		lat := "-"
		if s.Detected > 0 {
			lat = fmt.Sprintf("%.1f", s.MeanLatency)
		}
		fmt.Fprintf(&b, "%-12s %7d %6d %9d %6s %12s  %s\n",
			s.Site, s.Trials, s.Fired, s.Detected, rate, lat, strings.Join(dets, " "))
	}
	b.WriteString("\n")
	return b.String()
}

// workItem is one scheduled trial. global is its position in the full
// canonical work list — the seed derives from it, so resuming with a
// shorter pending list cannot shift any trial's randomness.
type workItem struct {
	site   faults.Site // SiteNone on the control arm
	name   string
	index  int
	global int
}

// Run executes the campaign and returns its report. Completed trials are
// journaled as they finish when Options.Journal is set; a context
// cancellation or worker error returns early with the journal intact, and
// a later Run with Resume picks up the remaining trials.
func Run(ctx context.Context, opts Options) (*Report, error) {
	sites := opts.sites()
	var items []workItem
	for _, s := range sites {
		for i := 0; i < opts.trials(); i++ {
			items = append(items, workItem{site: s, name: s.String(), index: i, global: len(items)})
		}
	}
	for i := 0; i < opts.control(); i++ {
		items = append(items, workItem{site: faults.SiteNone, name: ControlSite, index: i, global: len(items)})
	}

	done := map[string]Trial{}
	var j *journal
	if opts.Journal != "" {
		var err error
		j, done, err = openJournal(&opts)
		if err != nil {
			return nil, err
		}
		defer j.close()
	}
	if opts.DumpDir != "" {
		if err := os.MkdirAll(opts.DumpDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}

	var pending []workItem
	for _, it := range items {
		if _, ok := done[trialKey(it.name, it.index)]; !ok {
			pending = append(pending, it)
		}
	}
	if n := len(items) - len(pending); n > 0 {
		opts.log("campaign: resuming: %d/%d trials already journaled", n, len(items))
	}

	results, err := parallel.MapSeeded(ctx, opts.Workers, pending,
		func(_ int, it workItem) int64 { return parallel.Seed(opts.Seed, it.global) },
		func(_ context.Context, _ int, seed int64, it workItem) (Trial, error) {
			tr := runTrial(&opts, it, seed)
			if j != nil {
				if err := j.append(tr); err != nil {
					return tr, err
				}
			}
			opts.log("campaign: %s trial %d: fired=%v detections=%d",
				tr.Site, tr.Index, tr.Fired, len(tr.Detections))
			return tr, nil
		})
	if err != nil {
		return nil, err
	}

	trials := make([]Trial, 0, len(items))
	for _, t := range done {
		trials = append(trials, t)
	}
	trials = append(trials, results...)
	sitePos := map[string]int{}
	for i, s := range sites {
		sitePos[s.String()] = i
	}
	sitePos[ControlSite] = len(sites)
	sort.Slice(trials, func(a, b int) bool {
		if pa, pb := sitePos[trials[a].Site], sitePos[trials[b].Site]; pa != pb {
			return pa < pb
		}
		return trials[a].Index < trials[b].Index
	})

	return buildReport(&opts, sites, trials), nil
}

func buildReport(opts *Options, sites []faults.Site, trials []Trial) *Report {
	r := &Report{
		Seed:          opts.Seed,
		TrialsPerSite: opts.trials(),
		ControlTrials: opts.control(),
		Trials:        trials,
	}
	order := make([]string, 0, len(sites)+1)
	for _, s := range sites {
		order = append(order, s.String())
	}
	order = append(order, ControlSite)
	bySite := map[string][]Trial{}
	for _, t := range trials {
		bySite[t.Site] = append(bySite[t.Site], t)
	}
	for _, name := range order {
		sum := SiteSummary{Site: name, Trials: len(bySite[name])}
		var latSum int64
		for _, t := range bySite[name] {
			if t.Fired {
				sum.Fired++
			}
			if !t.Detected() {
				continue
			}
			sum.Detected++
			first := t.Detections[0]
			latSum += first.Latency
			if sum.Detectors == nil {
				sum.Detectors = map[string]int{}
			}
			sum.Detectors[first.Detector]++
		}
		if sum.Fired > 0 {
			sum.DetectionRate = float64(sum.Detected) / float64(sum.Fired)
		}
		if sum.Detected > 0 {
			sum.MeanLatency = float64(latSum) / float64(sum.Detected)
		}
		if name == ControlSite {
			r.FalsePositives = sum.Detected
		}
		r.Sites = append(r.Sites, sum)
	}
	return r
}

// Verify applies the campaign's acceptance gates: every swept site fired
// and was caught by at least one detector, the control arm produced zero
// detections, and no trial hit an infrastructure failure.
func Verify(r *Report) error {
	var problems []string
	for _, s := range r.Sites {
		switch {
		case s.Site == ControlSite:
			if s.Detected != 0 {
				problems = append(problems,
					fmt.Sprintf("control arm reported %d false positive(s)", s.Detected))
			}
		case s.Fired == 0:
			problems = append(problems,
				fmt.Sprintf("site %s: fault never fired in %d trials", s.Site, s.Trials))
		case s.Detected == 0:
			problems = append(problems,
				fmt.Sprintf("site %s: fired in %d trials, never detected", s.Site, s.Fired))
		}
	}
	for _, t := range r.Trials {
		if t.Note != "" {
			problems = append(problems,
				fmt.Sprintf("trial %s/%d: %s", t.Site, t.Index, t.Note))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("campaign: %s", strings.Join(problems, "; "))
	}
	return nil
}

// Tail registers: x28 is the generator's JALR staging register and x11/x12
// are scratch destinations; all are dead once the generated body ends, so
// the site-specific tail may clobber them freely.
const (
	tailBase = 28
	tailScr  = 11
	tailScr2 = 12
)

// siteTail returns the instructions a site needs appended (before the
// final HALT — generated branch targets are absolute, so prepending would
// break them, but nothing ever targets the HALT) to guarantee the fault
// has something to bite: a fence/store pair for the stuck-fence rule, a
// store-to-load forwarding pair, a final never-overwritten store for the
// LSQ flip, and a negative arithmetic shift the miscompile rewrite must
// corrupt.
func siteTail(site faults.Site) isa.Program {
	bases, _ := diffcheck.ScratchRegions()
	regionA, regionB := int64(bases[0]), int64(bases[1])
	switch site {
	case faults.SiteFenceStuck:
		// The SB's SQ slot is allocated at rename, long before the FENCE
		// reaches the ROB head — under the buggy empty-queue rule the
		// fence waits on it while it waits on the fence.
		return isa.Program{
			{Op: isa.ADDI, Rd: tailBase, Imm: regionA},
			{Op: isa.FENCE},
			{Op: isa.SB, Rs1: tailBase, Imm: 0x40},
		}
	case faults.SiteForward:
		return isa.Program{
			{Op: isa.ADDI, Rd: tailBase, Imm: regionB},
			{Op: isa.SD, Rs1: tailBase, Rs2: tailBase, Imm: 0x1c0},
			{Op: isa.LD, Rd: tailScr, Rs1: tailBase, Imm: 0x1c0},
		}
	case faults.SiteLSQ:
		// A last-in-program-order store: if the flip lands here, nothing
		// can overwrite the corrupted bytes before the final state diff.
		return isa.Program{
			{Op: isa.ADDI, Rd: tailScr, Imm: 0x5a5a},
			{Op: isa.ADDI, Rd: tailBase, Imm: regionA},
			{Op: isa.SD, Rs1: tailBase, Rs2: tailScr, Imm: 0x1c8},
		}
	case faults.SiteMiscompile:
		// SRAI of -1 is the one shape the SRA→SRL rewrite cannot fake.
		return isa.Program{
			{Op: isa.ADDI, Rd: tailScr2, Imm: -1},
			{Op: isa.SRAI, Rd: tailScr2, Rs1: tailScr2, Imm: 1},
		}
	}
	return nil
}

// adjustProgram inserts the site tail before the program's final HALT.
func adjustProgram(site faults.Site, p isa.Program) isa.Program {
	tail := siteTail(site)
	if len(tail) == 0 || len(p) == 0 || p[len(p)-1].Op != isa.HALT {
		return p
	}
	out := make(isa.Program, 0, len(p)+len(tail))
	out = append(out, p[:len(p)-1]...)
	out = append(out, tail...)
	out = append(out, p[len(p)-1])
	return out
}

// siteCount is the per-site firing budget: value flips that may land on
// dead state fire a few times to raise the odds one lands on live state;
// faults that are certainly observable fire once.
func siteCount(s faults.Site) int {
	switch s {
	case faults.SitePRF:
		// A single committed-file flip is almost always architecturally
		// dead in generated code: every scratch register is rewritten
		// each loop iteration, and in-flight consumers bypass the
		// committed file entirely (they read their producer µop). Arm a
		// persistent corruption instead — every retire after the trigger
		// flips — so each register's final write is corrupted too and the
		// end-state diff must see it. 256 exceeds any generated program's
		// dynamic instruction count.
		return 256
	case faults.SiteLSQ, faults.SiteForward, faults.SiteFillDelay:
		return 2
	case faults.SiteMispredictStorm:
		// Each forced mispredict costs one BranchPenalty redirect; a few
		// firings separate the storm from single-cycle timing noise.
		return 4
	}
	return 1
}

// runPipe is one pipeline run under the campaign's fixed protocol: fresh
// memory image, default (LRU) hierarchy, the toggle mask's configuration
// with invariant checking on, and the forward-progress watchdog armed.
func runPipe(prog isa.Program, mask diffcheck.ToggleMask, inj *faults.Injector) (pipeline.Result, *pipeline.Machine, error) {
	pm := mem.New()
	diffcheck.InitMemory(pm)
	hier := cache.MustNewHierarchy(cache.DefaultHierConfig())
	cfg := diffcheck.PipeConfig(mask)
	cfg.Watchdog = &pipeline.WatchdogConfig{}
	cfg.Faults = inj
	m := pipeline.MustNew(cfg, pm, hier)
	res, err := m.Run(prog)
	return res, m, err
}

// runTrial executes one trial. All randomness comes from seed; the result
// is a pure function of (seed, site, index), which is what makes resumed
// campaigns byte-identical to uninterrupted ones.
func runTrial(opts *Options, it workItem, seed int64) Trial {
	rng := rand.New(rand.NewSource(seed))
	prog := adjustProgram(it.site, diffcheck.Generate(rng))
	// TogPredictor is withheld: value prediction's squash-and-replay both
	// rescues stuck µops (un-sticking dropped wakeups) and perturbs
	// timing on its own, which would blur detection attribution. TogSpec
	// and TogStLF are withheld for the same reason — mispredict squashes
	// and forwarding replays also reset stuck µops.
	mask := diffcheck.ToggleMask(rng.Intn(diffcheck.AllMasks)) &^
		(diffcheck.TogPredictor | diffcheck.TogSpec | diffcheck.TogStLF)
	tr := Trial{Site: it.name, Index: it.index, Seed: seed, Mask: uint16(mask), Toggles: mask.String()}

	golden := emu.New(mem.New())
	diffcheck.InitMemory(golden.Mem)
	if err := golden.Run(prog, 1_000_000); err != nil {
		tr.Note = "golden run failed: " + err.Error()
		return tr
	}
	refRes, _, refErr := runPipe(prog, mask, nil)
	if refErr != nil {
		tr.Note = "reference run failed: " + refErr.Error()
		return tr
	}
	tr.RefCycles = refRes.Cycles

	if it.site == faults.SiteNone {
		// Control arm: identical protocol, no fault armed. Any detection
		// below is a false positive.
		tr.runSubject(opts, prog, mask, nil, golden, refRes)
		return tr
	}

	window := tr.RefCycles * 3 / 4
	if it.site == faults.SiteMispredictStorm {
		// Fetch-time site: the frontend finishes fetching (and with it the
		// last conditional-branch prediction the storm could invert) long
		// before the run ends — the tail of RefCycles is memory drain. A
		// trigger drawn from the full window would usually arm after the
		// last branch fetch and never fire.
		window = tr.RefCycles / 4
	}
	if window < 1 {
		window = 1
	}
	plan := &faults.Plan{
		Site:         it.site,
		TriggerCycle: 1 + rng.Int63n(window),
		Count:        siteCount(it.site),
		Seed:         seed,
	}
	tr.Plan = plan
	tr.runSubject(opts, prog, mask, faults.NewInjector(plan), golden, refRes)
	return tr
}

// runSubject executes the (possibly faulty) subject run and applies every
// detector in order: supervised errors first, then the end-state diff
// against the golden run, then the timing comparison against the
// reference run.
func (tr *Trial) runSubject(opts *Options, prog isa.Program, mask diffcheck.ToggleMask,
	inj *faults.Injector, golden *emu.Machine, refRes pipeline.Result) {
	// The rewrite is the program-level fault (miscompile); the pipeline's
	// inline oracle runs the same rewritten program, so only the golden
	// run of the original can convict it.
	subjProg := inj.Rewrite(prog)
	res, m, err := runPipe(subjProg, mask, inj)
	tr.Fired = inj.Fired()
	tr.FiredCycle = inj.FiredCycle()

	detect := func(detector string, cycle int64, detail string) {
		tr.Detections = append(tr.Detections, Detection{
			Detector: detector,
			Cycle:    cycle,
			Latency:  cycle - tr.FiredCycle,
			Detail:   detail,
		})
	}

	if err != nil {
		var se *pipeline.StallError
		if errors.As(err, &se) {
			cycle := res.Cycles
			if se.Dump != nil {
				cycle = se.Dump.Cycle
			}
			tr.writeDump(opts, se)
			switch se.Reason {
			case pipeline.ReasonWatchdog, pipeline.ReasonMaxCycles:
				detect(DetWatchdog, cycle, se.Error())
			default:
				detect(classifyCause(err), cycle, se.Error())
			}
			return
		}
		detect(classifyCause(err), res.Cycles, err.Error())
		return
	}

	if d := stateDiff(m, golden); d != "" {
		detect(DetStateDiff, res.Cycles, d)
	}
	if res.Cycles != refRes.Cycles {
		detect(DetTiming, res.Cycles,
			fmt.Sprintf("ran %d cycles, reference ran %d", res.Cycles, refRes.Cycles))
	} else if res.Stats != refRes.Stats {
		detect(DetTiming, res.Cycles, "statistics diverge from the reference run")
	}
}

// classifyCause separates the per-cycle structural self-checks (every
// message is prefixed "invariant:") from the oracle's value checks.
func classifyCause(err error) string {
	if strings.Contains(err.Error(), "invariant:") {
		return DetInvariant
	}
	return DetOracle
}

// stateDiff compares the pipeline's final architectural state against the
// golden run, skipping RDCYCLE-derived values exactly as the differential
// harness does. Returns "" when the states agree.
func stateDiff(m *pipeline.Machine, golden *emu.Machine) string {
	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if m.RegTainted(r) {
			continue
		}
		if got, want := m.Reg(r), golden.Regs[r]; got != want {
			return fmt.Sprintf("%v = %#x, golden run has %#x", r, got, want)
		}
	}
	for _, d := range mem.Diff(m.Memory(), golden.Mem, 0) {
		if m.MemTainted(d.Addr) {
			continue
		}
		return fmt.Sprintf("mem[%#x] = %#x, golden run has %#x", d.Addr, d.A, d.B)
	}
	return ""
}

// writeDump captures a supervised abort's CoreDump as a JSON artifact.
func (tr *Trial) writeDump(opts *Options, se *pipeline.StallError) {
	if opts.DumpDir == "" || se.Dump == nil {
		return
	}
	b := se.Dump.JSON()
	path := filepath.Join(opts.DumpDir, fmt.Sprintf("%s-%03d.json", tr.Site, tr.Index))
	if werr := os.WriteFile(path, b, 0o644); werr == nil {
		opts.log("campaign: %s trial %d: core dump written to %s", tr.Site, tr.Index, path)
	}
}
