package faults

import (
	"strings"
	"testing"

	"pandora/internal/isa"
)

func TestSiteNamesRoundTrip(t *testing.T) {
	for s := SitePRF; s < numSites; s++ {
		got, err := ParseSite(s.String())
		if err != nil {
			t.Fatalf("ParseSite(%q): %v", s.String(), err)
		}
		if got != s {
			t.Fatalf("ParseSite(%q) = %v, want %v", s.String(), got, s)
		}
	}
	if _, err := ParseSite("none"); err == nil {
		t.Fatalf("ParseSite(\"none\") should be rejected")
	}
	if _, err := ParseSite("nonsense"); err == nil || !strings.Contains(err.Error(), "unknown site") {
		t.Fatalf("ParseSite(\"nonsense\") = %v, want unknown-site error", err)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	for _, in := range []*Injector{nil, NewInjector(nil), NewInjector(&Plan{})} {
		if in != nil {
			t.Fatalf("inert plans must yield a nil injector, got %+v", in)
		}
		if v, flipped := in.FlipValue(SitePRF, 10, 42); flipped || v != 42 {
			t.Fatalf("nil FlipValue = (%d, %v), want (42, false)", v, flipped)
		}
		if in.DropWakeup(10) {
			t.Fatalf("nil DropWakeup fired")
		}
		if in.FenceRequiresEmptySQ(10, 3) {
			t.Fatalf("nil FenceRequiresEmptySQ fired")
		}
		if d, ok := in.FillDelay(10); ok || d != 0 {
			t.Fatalf("nil FillDelay = (%d, %v)", d, ok)
		}
		if _, ok := in.CacheFaultDue(10); ok {
			t.Fatalf("nil CacheFaultDue fired")
		}
		if in.Fired() || in.FiredCycle() != 0 || in.BreaksTaintALU() {
			t.Fatalf("nil injector reports state")
		}
		prog := isa.Program{{Op: isa.SRA, Rd: 1, Rs1: 2, Rs2: 3}}
		if got := in.Rewrite(prog); got[0].Op != isa.SRA {
			t.Fatalf("nil Rewrite changed the program")
		}
	}
}

func TestFlipValueTriggerAndCount(t *testing.T) {
	in := NewInjector(&Plan{Site: SitePRF, TriggerCycle: 100, Count: 2, Payload: 0b1000})
	if _, flipped := in.FlipValue(SitePRF, 99, 7); flipped {
		t.Fatalf("fired before TriggerCycle")
	}
	if _, flipped := in.FlipValue(SiteLSQ, 100, 7); flipped {
		t.Fatalf("fired at the wrong site")
	}
	v, flipped := in.FlipValue(SitePRF, 100, 7)
	if !flipped || v != 7^0b1000 {
		t.Fatalf("first flip = (%#x, %v), want (%#x, true)", v, flipped, 7^0b1000)
	}
	if !in.Fired() || in.FiredCycle() != 100 {
		t.Fatalf("Fired/FiredCycle = %v/%d after first flip", in.Fired(), in.FiredCycle())
	}
	if _, flipped := in.FlipValue(SitePRF, 150, 7); !flipped {
		t.Fatalf("second flip within Count did not fire")
	}
	if _, flipped := in.FlipValue(SitePRF, 200, 7); flipped {
		t.Fatalf("flip fired past Count")
	}
	if in.FiredCycle() != 100 {
		t.Fatalf("FiredCycle moved to %d; must stay at the first firing", in.FiredCycle())
	}
}

func TestZeroPayloadDerivesMaskFromSeed(t *testing.T) {
	in := NewInjector(&Plan{Site: SitePRF, Seed: 7})
	v, flipped := in.FlipValue(SitePRF, 0, 0)
	if !flipped || v == 0 {
		t.Fatalf("seed-derived mask must change the value, got %#x", v)
	}
	again := NewInjector(&Plan{Site: SitePRF, Seed: 7})
	v2, _ := again.FlipValue(SitePRF, 0, 0)
	if v != v2 {
		t.Fatalf("same seed produced different masks: %#x vs %#x", v, v2)
	}
}

func TestFenceStuckCommitsOnFirstBlockedCycle(t *testing.T) {
	in := NewInjector(&Plan{Site: SiteFenceStuck})
	if !in.FenceRequiresEmptySQ(5, 0) {
		t.Fatalf("structural site must be active regardless of occupancy")
	}
	if in.Fired() {
		t.Fatalf("an empty queue does not block the fence; nothing fired yet")
	}
	if !in.FenceRequiresEmptySQ(9, 2) || !in.Fired() || in.FiredCycle() != 9 {
		t.Fatalf("first blocking cycle must count as the firing (fired=%v cycle=%d)",
			in.Fired(), in.FiredCycle())
	}
}

func TestRewriteMiscompile(t *testing.T) {
	prog := isa.Program{
		{Op: isa.SRA, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: isa.SRAI, Rd: 4, Rs1: 5, Imm: 7},
		{Op: isa.ADD, Rd: 6, Rs1: 7, Rs2: 8},
		{Op: isa.HALT},
	}
	in := NewInjector(&Plan{Site: SiteMiscompile})
	out := in.Rewrite(prog)
	if out[0].Op != isa.SRL || out[1].Op != isa.SRLI || out[2].Op != isa.ADD {
		t.Fatalf("rewrite produced %v %v %v", out[0].Op, out[1].Op, out[2].Op)
	}
	if prog[0].Op != isa.SRA {
		t.Fatalf("rewrite mutated the input program")
	}
	if !in.Fired() {
		t.Fatalf("a rewrite that changed instructions must count as fired")
	}
	// A program with no arithmetic shifts is not a firing.
	in2 := NewInjector(&Plan{Site: SiteMiscompile})
	in2.Rewrite(isa.Program{{Op: isa.ADD}, {Op: isa.HALT}})
	if in2.Fired() {
		t.Fatalf("rewrite with nothing to change must not count as fired")
	}
}

func TestCampaignSitesExcludeDetectorFaults(t *testing.T) {
	for _, s := range CampaignSites() {
		if s == SiteTaintALU || s == SiteNone {
			t.Fatalf("campaign sites must not include %v", s)
		}
	}
}
