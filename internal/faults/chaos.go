package faults

import (
	"fmt"
	"hash/fnv"
	"time"
)

// Chaos is the service-level sibling of the microarchitectural fault
// plans: where a Plan flips bits inside a simulated structure, a
// ChaosPlan injects process-level failures — worker panics, stalls and
// slow-downs — into the serve layer's job execution, so the retry,
// watchdog and crash-recovery machinery can be proven against real
// failures instead of hand-mocked ones.
//
// The same discipline applies as everywhere else in this package: a
// decision is a pure function of (plan, job key, attempt), so a chaos
// run is reproducible from its seed, and a nil *ChaosPlan is a
// guaranteed no-op — production servers pay one nil check per job.

// ChaosAction is what a chaos decision tells the executor to do.
type ChaosAction uint8

const (
	// ChaosNone means run the job normally.
	ChaosNone ChaosAction = iota
	// ChaosPanic means panic mid-execution, as a buggy runner would.
	ChaosPanic
	// ChaosStall means fail the attempt the way the forward-progress
	// watchdog reports a hung run (the executor converts this to its
	// stall error path rather than actually burning wall-clock).
	ChaosStall
	// ChaosSlow means delay the attempt by ChaosDecision.Delay before
	// running it normally — load for deadline and drain testing.
	ChaosSlow
)

var chaosActionNames = [...]string{
	ChaosNone:  "none",
	ChaosPanic: "panic",
	ChaosStall: "stall",
	ChaosSlow:  "slow",
}

func (a ChaosAction) String() string {
	if int(a) < len(chaosActionNames) {
		return chaosActionNames[a]
	}
	return fmt.Sprintf("chaos(%d)", uint8(a))
}

// ChaosPlan decides, deterministically, which job attempts fail and
// how. Rates are per-mille (0-1000) so plans stay integer-only; they
// are evaluated in order panic, stall, slow against disjoint slices of
// one uniform draw, so PanicPerMille=100 and StallPerMille=100 means
// 10% panics, 10% stalls, 80% untouched.
type ChaosPlan struct {
	// Seed isolates one chaos run from another; two plans with the same
	// rates but different seeds pick different victims.
	Seed int64
	// PanicPerMille is the per-attempt probability (in 1/1000) of a
	// ChaosPanic decision.
	PanicPerMille int
	// StallPerMille likewise for ChaosStall.
	StallPerMille int
	// SlowPerMille likewise for ChaosSlow.
	SlowPerMille int
	// SlowDelay is the delay attached to ChaosSlow decisions.
	SlowDelay time.Duration
	// FirstAttemptsOnly restricts injection to attempt 0 of each job,
	// guaranteeing every chaos-hit transient succeeds on retry — the
	// configuration the chaos gate uses to assert "all transients
	// retried to success".
	FirstAttemptsOnly bool
}

// ChaosDecision is one attempt's fate.
type ChaosDecision struct {
	Action ChaosAction
	// Delay is non-zero for ChaosSlow.
	Delay time.Duration
}

// ChaosError is the error surfaced by executors honoring a ChaosStall
// (and the panic value for ChaosPanic), tagged so failure classifiers
// can treat injected chaos as transient.
type ChaosError struct {
	Action ChaosAction
	Key    string
	Att    int
}

func (e *ChaosError) Error() string {
	return fmt.Sprintf("faults: injected chaos %s (job %s attempt %d)", e.Action, e.Key, e.Att)
}

// Decide returns the fate of one attempt of one job. A nil plan always
// returns ChaosNone. The draw hashes (seed, key, attempt) through
// FNV-1a and a splitmix64 finisher, so decisions are independent across
// jobs and attempts but fully reproducible.
func (p *ChaosPlan) Decide(key string, attempt int) ChaosDecision {
	if p == nil {
		return ChaosDecision{}
	}
	if p.FirstAttemptsOnly && attempt > 0 {
		return ChaosDecision{}
	}
	h := fnv.New64a()
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(p.Seed) >> (8 * i))
		b[8+i] = byte(uint64(attempt) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	x := splitmix64(h.Sum64())
	draw := int(x % 1000)
	switch {
	case draw < p.PanicPerMille:
		return ChaosDecision{Action: ChaosPanic}
	case draw < p.PanicPerMille+p.StallPerMille:
		return ChaosDecision{Action: ChaosStall}
	case draw < p.PanicPerMille+p.StallPerMille+p.SlowPerMille:
		return ChaosDecision{Action: ChaosSlow, Delay: p.SlowDelay}
	default:
		return ChaosDecision{}
	}
}

// splitmix64 is the standard finisher: it scrambles the FNV digest so
// the modulo draw is uniform even for near-identical inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
