package faults

import (
	"fmt"
	"testing"
	"time"
)

func TestChaosNilPlanIsNoOp(t *testing.T) {
	var p *ChaosPlan
	for a := 0; a < 4; a++ {
		if d := p.Decide("job", a); d.Action != ChaosNone || d.Delay != 0 {
			t.Fatalf("nil plan decided %+v, want none", d)
		}
	}
}

func TestChaosDeterministic(t *testing.T) {
	p := &ChaosPlan{Seed: 42, PanicPerMille: 300, StallPerMille: 300, SlowPerMille: 300, SlowDelay: time.Millisecond}
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("job-%d", i)
		first := p.Decide(key, 0)
		if again := p.Decide(key, 0); again != first {
			t.Fatalf("job %s: decision not deterministic: %+v vs %+v", key, first, again)
		}
	}
}

func TestChaosRatesRoughlyHold(t *testing.T) {
	p := &ChaosPlan{Seed: 7, PanicPerMille: 250, StallPerMille: 250}
	counts := map[ChaosAction]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[p.Decide(fmt.Sprintf("k%d", i), 0).Action]++
	}
	// 25% each with generous slack; the draw is a hash, not a statistics
	// engine, so only gross miscalibration should fail.
	for _, a := range []ChaosAction{ChaosPanic, ChaosStall} {
		if c := counts[a]; c < n/8 || c > n/2 {
			t.Fatalf("%v fired %d/%d times, want roughly %d", a, c, n, n/4)
		}
	}
	if counts[ChaosSlow] != 0 {
		t.Fatalf("slow fired with zero rate")
	}
}

func TestChaosSeedChangesVictims(t *testing.T) {
	a := &ChaosPlan{Seed: 1, PanicPerMille: 500}
	b := &ChaosPlan{Seed: 2, PanicPerMille: 500}
	same := 0
	const n = 256
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.Decide(k, 0).Action == b.Decide(k, 0).Action {
			same++
		}
	}
	if same == n {
		t.Fatalf("seeds 1 and 2 picked identical victims across %d jobs", n)
	}
}

func TestChaosFirstAttemptsOnly(t *testing.T) {
	p := &ChaosPlan{Seed: 9, PanicPerMille: 1000, FirstAttemptsOnly: true}
	if d := p.Decide("k", 0); d.Action != ChaosPanic {
		t.Fatalf("attempt 0: %+v, want panic at rate 1000", d)
	}
	if d := p.Decide("k", 1); d.Action != ChaosNone {
		t.Fatalf("attempt 1: %+v, want none under FirstAttemptsOnly", d)
	}
}

func TestChaosErrorMessage(t *testing.T) {
	e := &ChaosError{Action: ChaosStall, Key: "abc", Att: 2}
	want := "faults: injected chaos stall (job abc attempt 2)"
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
}
