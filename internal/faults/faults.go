// Package faults is the deterministic fault-injection layer behind
// `pandora fault`: seeded plans that flip bits in simulated structures
// (physical register file, store queue, forwarded load data, cache tags
// and replacement metadata), drop an issue wakeup, delay a cache fill,
// or re-introduce previously fixed structural bugs (the PR-2 fence/SQ
// deadlock, the SRA-as-SRL miscompile, the broken taint ALU rule).
//
// The point of the package is to close the detection loop: the pipeline's
// invariant checks, the differential oracle, the taint verifier and the
// forward-progress watchdog only prove value when they demonstrably catch
// real faults. A Plan is a pure value — (site, trigger cycle, payload,
// seed) — so every injected fault is reproducible from its seed, and a
// nil Injector is a guaranteed no-op: production sweeps pay nothing.
//
// The simulator owns the hook points (internal/pipeline, internal/cache);
// this package only decides, deterministically, *whether* and *how* a
// given hook fires. Fault sites come in two flavors: transient sites fire
// Count times once TriggerCycle is reached (a bit flips, a fill is late),
// while structural sites (fence-stuck, miscompile, taint-rule) are active
// for the whole run — they model a wrong design, not a wrong bit.
package faults

import (
	"fmt"

	"pandora/internal/isa"
	"pandora/internal/obs"
)

// Site identifies one class of injectable fault.
type Site uint8

const (
	// SiteNone is the zero Site; a Plan with SiteNone never fires.
	SiteNone Site = iota
	// SitePRF flips a bit of a register value in the committed register
	// file, immediately after retire verification accepted it — a bit
	// flip at rest, visible only to later readers.
	SitePRF
	// SiteLSQ flips a bit of a store-queue entry's data while the store
	// waits at the queue head, after younger loads may already have
	// forwarded the correct value.
	SiteLSQ
	// SiteForward flips a bit of a load value that was (at least partly)
	// satisfied by store-to-load forwarding.
	SiteForward
	// SiteIssueDrop permanently drops one ready µop's issue wakeup: the
	// µop stays dispatched forever, and the machine livelocks once it is
	// the oldest — the watchdog's canonical prey.
	SiteIssueDrop
	// SiteFenceStuck re-introduces the PR-2 fence bug: a fence at the
	// head of the ROB waits for a fully empty store queue, deadlocking
	// against younger stores whose SQ slots were allocated at rename.
	SiteFenceStuck
	// SiteCacheLine flips a tag bit of a valid L1 line, typically
	// breaking L2 ⊇ L1 inclusivity or duplicating a tag within a set.
	SiteCacheLine
	// SiteReplacement corrupts L1 replacement metadata: an LRU/Random
	// timestamp pushed ahead of the access tick, or a flipped tree-PLRU
	// bit (a timing-only fault — legal-looking state, wrong victim).
	SiteReplacement
	// SiteFillDelay adds Payload cycles of latency to one cache fill — a
	// pure timing fault with no architectural footprint.
	SiteFillDelay
	// SiteMiscompile rewrites the program before the pipeline runs it,
	// executing every arithmetic right shift as a logical one (the
	// canonical injected bug of the differential harness).
	SiteMiscompile
	// SiteTaintALU breaks the taint engine's ALU propagation rule (ALU
	// results drop their operand labels), the fault the no-under-tainting
	// verifier must catch.
	SiteTaintALU
	// SiteMispredictStorm forces conditional branches to predict against
	// the architectural outcome, Count times from TriggerCycle on: each
	// firing turns a correctly predicted branch into a mispredict (a
	// redirect bubble, or a wrong-path fetch-and-squash under
	// Speculation.WrongPath) — a pure timing fault.
	SiteMispredictStorm
	// SiteStuckPredictor freezes predictor training for the whole run:
	// the bimodal direction counters and the store-to-load forwarding
	// confidence counters keep predicting from stale state. Structural,
	// and only observable on a machine with Config.Speculation — it is
	// exercised by unit tests, not the campaign sweep.
	SiteStuckPredictor

	numSites
)

var siteNames = [numSites]string{
	SiteNone:        "none",
	SitePRF:         "prf",
	SiteLSQ:         "lsq",
	SiteForward:     "forward",
	SiteIssueDrop:   "issue-drop",
	SiteFenceStuck:  "fence-stuck",
	SiteCacheLine:   "cache-line",
	SiteReplacement: "replacement",
	SiteFillDelay:   "fill-delay",
	SiteMiscompile:      "miscompile",
	SiteTaintALU:        "taint-alu",
	SiteMispredictStorm: "mispredict-storm",
	SiteStuckPredictor:  "stuck-predictor",
}

func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// ParseSite maps a site name (as printed by Site.String) back to its Site.
func ParseSite(name string) (Site, error) {
	for i, n := range siteNames {
		if n == name && Site(i) != SiteNone {
			return Site(i), nil
		}
	}
	return SiteNone, fmt.Errorf("faults: unknown site %q (want one of %v)", name, CampaignSites())
}

// CampaignSites returns the sites the fault campaign sweeps: every
// runtime site plus the miscompile rewrite. SiteTaintALU is excluded —
// it faults the detector itself, not the simulator, and is exercised by
// `pandora scan -inject`.
func CampaignSites() []Site {
	return []Site{
		SitePRF, SiteLSQ, SiteForward, SiteIssueDrop, SiteFenceStuck,
		SiteCacheLine, SiteReplacement, SiteFillDelay, SiteMiscompile,
		SiteMispredictStorm,
	}
}

// structural reports whether the site models a wrong design rather than a
// transient bit flip: active for the whole run, ignoring TriggerCycle and
// Count.
func (s Site) structural() bool {
	switch s {
	case SiteFenceStuck, SiteMiscompile, SiteTaintALU, SiteStuckPredictor:
		return true
	}
	return false
}

// Plan describes one deterministic fault: what to break (Site), when it
// may first fire (TriggerCycle), how often (Count, default 1), and the
// payload (a XOR mask for bit-flip sites, a cycle count for
// SiteFillDelay; 0 selects a Seed-derived default). Seed additionally
// drives site-internal choices (which cache line, which tag bit).
// Structural sites ignore TriggerCycle and Count. The zero Plan is valid
// and never fires.
type Plan struct {
	Site         Site   `json:"site"`
	TriggerCycle int64  `json:"trigger_cycle"`
	Count        int    `json:"count,omitempty"`
	Payload      uint64 `json:"payload,omitempty"`
	Seed         int64  `json:"seed,omitempty"`
}

// count returns the effective firing budget.
func (p *Plan) count() int {
	if p.Count <= 0 {
		return 1
	}
	return p.Count
}

// mask returns the XOR payload for bit-flip sites: Payload when set, else
// one Seed-derived bit so a zero-payload plan still changes the value.
func (p *Plan) mask() uint64 {
	if p.Payload != 0 {
		return p.Payload
	}
	return 1 << (uint(splitmix(uint64(p.Seed))) & 63)
}

// delay returns the extra fill latency for SiteFillDelay.
func (p *Plan) delay() int64 {
	if p.Payload != 0 {
		return int64(p.Payload)
	}
	return 37 // long enough to survive out-of-order slack absorption
}

// splitmix is a splitmix64 finalizer, used to derive payload bits and
// corruption sub-seeds from Plan.Seed without a full RNG.
func splitmix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Injector executes one Plan against the simulator's hook points. All
// methods are nil-safe no-ops, so hook sites stay unconditional; a nil
// Injector (or a nil Plan) changes nothing. An Injector is single-run
// state: build a fresh one per simulated run.
type Injector struct {
	plan  Plan
	fired int
	first int64 // cycle of the first firing
	probe obs.Probe
}

// SetProbe attaches an event probe; every fault firing emits an
// obs.KindFault event naming the site. Nil-safe on a nil injector.
func (in *Injector) SetProbe(p obs.Probe) {
	if in == nil {
		return
	}
	in.probe = p
}

// NewInjector builds an injector for plan; nil plan yields a nil (inert)
// injector.
func NewInjector(plan *Plan) *Injector {
	if plan == nil || plan.Site == SiteNone {
		return nil
	}
	return &Injector{plan: *plan}
}

// Plan returns the plan this injector executes, and whether there is one.
func (in *Injector) Plan() (Plan, bool) {
	if in == nil {
		return Plan{}, false
	}
	return in.plan, true
}

// Fired reports whether the fault has fired at least once.
func (in *Injector) Fired() bool { return in != nil && in.fired > 0 }

// FiredCycle returns the cycle of the first firing (0 if never fired).
// Detection latency is measured from here.
func (in *Injector) FiredCycle() int64 {
	if in == nil {
		return 0
	}
	return in.first
}

// due reports whether a transient fault at site may fire this cycle.
func (in *Injector) due(site Site, cycle int64) bool {
	return in != nil && in.plan.Site == site &&
		in.fired < in.plan.count() && cycle >= in.plan.TriggerCycle
}

// active reports whether a structural fault at site is enabled.
func (in *Injector) active(site Site) bool {
	return in != nil && in.plan.Site == site && site.structural()
}

// commit records one firing.
func (in *Injector) commit(cycle int64) {
	if in.fired == 0 {
		in.first = cycle
	}
	in.fired++
	if in.probe != nil {
		in.probe.Emit(obs.Event{
			Cycle: cycle, Kind: obs.KindFault, Track: obs.TrackFaults,
			PC: -1, Arg: int64(in.fired), Detail: in.plan.Site.String(),
		})
	}
}

// FlipValue XORs the plan's payload mask into v when a bit-flip fault at
// site is due. The second return reports whether the flip happened.
func (in *Injector) FlipValue(site Site, cycle int64, v uint64) (uint64, bool) {
	if !in.due(site, cycle) {
		return v, false
	}
	in.commit(cycle)
	return v ^ in.plan.mask(), true
}

// DropWakeup reports whether the issue stage should permanently drop the
// wakeup of the ready µop it is currently considering.
func (in *Injector) DropWakeup(cycle int64) bool {
	if !in.due(SiteIssueDrop, cycle) {
		return false
	}
	in.commit(cycle)
	return true
}

// FenceRequiresEmptySQ reports whether the fence issue condition should
// use the pre-PR-2 (buggy) rule — wait for a fully empty store queue.
// sqOccupancy is the current queue depth; the first cycle the buggy rule
// actually blocks a fence that the fixed rule would release counts as the
// firing.
func (in *Injector) FenceRequiresEmptySQ(cycle int64, sqOccupancy int) bool {
	if !in.active(SiteFenceStuck) {
		return false
	}
	if sqOccupancy > 0 && in.fired == 0 {
		in.commit(cycle)
	}
	return true
}

// FillDelay returns extra latency to add to one cache fill, firing at
// most Count times.
func (in *Injector) FillDelay(cycle int64) (int64, bool) {
	if !in.due(SiteFillDelay, cycle) {
		return 0, false
	}
	in.commit(cycle)
	return in.plan.delay(), true
}

// CacheFaultDue reports whether a cache-state corruption (SiteCacheLine
// or SiteReplacement) is due this cycle. The caller applies the
// corruption and, if it found state to corrupt, reports success through
// CommitCacheFault; an empty cache retries on later cycles.
func (in *Injector) CacheFaultDue(cycle int64) (Site, bool) {
	for _, s := range [...]Site{SiteCacheLine, SiteReplacement} {
		if in.due(s, cycle) {
			return s, true
		}
	}
	return SiteNone, false
}

// CommitCacheFault records that a due cache corruption found a target.
func (in *Injector) CommitCacheFault(cycle int64) { in.commit(cycle) }

// CorruptionSeed returns the sub-seed driving which line/bit a cache
// corruption picks.
func (in *Injector) CorruptionSeed() int64 {
	if in == nil {
		return 0
	}
	return int64(splitmix(uint64(in.plan.Seed) ^ 0xfa017))
}

// BreaksTaintALU reports whether the plan disables the taint engine's ALU
// propagation rule.
func (in *Injector) BreaksTaintALU() bool { return in.active(SiteTaintALU) }

// MispredictStorm reports whether the frontend should invert the current
// conditional branch's direction prediction. wouldPredictCorrectly is
// whether the unfaulted prediction matches the architectural outcome:
// the storm only spends budget (and counts a firing) on branches it
// actually breaks — inverting an already-wrong prediction changes
// nothing, so Fired would otherwise overstate the fault's effect.
func (in *Injector) MispredictStorm(cycle int64, wouldPredictCorrectly bool) bool {
	if !in.due(SiteMispredictStorm, cycle) || !wouldPredictCorrectly {
		return false
	}
	in.commit(cycle)
	return true
}

// PredictorStuck reports whether predictor training (bimodal direction
// counters, forwarding confidence counters) is frozen. The first
// suppressed update counts as the firing.
func (in *Injector) PredictorStuck(cycle int64) bool {
	if !in.active(SiteStuckPredictor) {
		return false
	}
	if in.fired == 0 {
		in.commit(cycle)
	}
	return true
}

// Rewrite applies program-level faults: under SiteMiscompile every
// arithmetic right shift becomes a logical one (it only diverges when a
// shifted value is negative, so catching it requires real data-dependent
// coverage). Other sites return prog unchanged. The rewrite counts as the
// firing when it changed at least one instruction.
func (in *Injector) Rewrite(prog isa.Program) isa.Program {
	if !in.active(SiteMiscompile) {
		return prog
	}
	out := make(isa.Program, len(prog))
	copy(out, prog)
	changed := false
	for i := range out {
		switch out[i].Op {
		case isa.SRA:
			out[i].Op = isa.SRL
			changed = true
		case isa.SRAI:
			out[i].Op = isa.SRLI
			changed = true
		}
	}
	if changed && in.fired == 0 {
		in.commit(0)
	}
	return out
}
