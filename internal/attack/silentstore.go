package attack

import (
	"context"
	"fmt"
	"math/rand"

	"pandora/internal/bsaes"
	"pandora/internal/cache"
	"pandora/internal/histo"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/parallel"
	"pandora/internal/pipeline"
)

// The silent-store attack of Section V-A: a cloud-model encryption server
// runs constant-time bitslice AES-128; the byte-substitution stage spills
// eight 16-bit intermediate values (the final-round slices) to the stack,
// and those slots are not cleared between calls. The attacker and the
// victim both trigger encryptions; each attacker encryption overwrites the
// victim's stale slice values, and a single dynamic store is silent
// exactly when the attacker's value equals the victim's. The amplification
// gadget (Figure 5) turns that one store's silence into a >100-cycle
// end-to-end timing difference (Figure 6); sweeping values recovers all
// eight slices, which together with one observed ciphertext yield the last
// round key and — because the key schedule is invertible — the master key
// (Section V-A3).

// Memory layout of the BSAES scenario.
const (
	bsStackBase = uint64(0x8000) // victim stack; slice slot k at +k*64
	bsSlotStep  = uint64(64)     // one cache line per spilled slot
	bsDelayAddr = uint64(0x4040) // delay-gadget load (kept cold)
	// bsFlushStep is the L2 same-set stride (256 sets * 64B lines).
	bsFlushStep = uint64(0x4000)
)

// BSAESConfig parameterizes the attack.
type BSAESConfig struct {
	// SQSize is the victim core's store-queue depth (the paper evaluates
	// a 5-entry SQ).
	SQSize int
	// ClearSpills enables the Section VI-A2 software defense: the server
	// zeroes the spilled intermediate slots after every call, so a later
	// caller's stores can never silently match a previous caller's
	// secrets ("it may be sufficient to clear data memory in a targeted
	// fashion").
	ClearSpills bool
	// Trace receives progress lines when non-nil.
	Trace func(format string, args ...any)
}

// DefaultBSAESConfig returns the paper's evaluation configuration:
// 5-entry SQ and a direct-mapped first-level cache (Figure 5's setting;
// the paper's own histogram uses a 4-way cache with a set-contention
// flush, which our flush gadget generalizes).
func DefaultBSAESConfig() BSAESConfig {
	return BSAESConfig{SQSize: 5}
}

// BSAESAttack is one instantiated cloud scenario.
type BSAESAttack struct {
	cfg BSAESConfig

	Mem     *mem.Memory
	Hier    *cache.Hierarchy
	Machine *pipeline.Machine

	victimKey   [16]byte // server-side secret (used only to run the victim)
	victimPlain [16]byte // public data the victim repeatedly encrypts
	victimTrace bsaes.Trace

	attackerKey [16]byte // the attacker's own session key (known to it)

	// snap is the canonical post-construction memory image; Reset
	// restores it so pooled scenarios start every sweep shard from
	// identical state regardless of which shard ran on them before.
	snap *mem.Memory

	threshold int64 // cycles separating silent from non-silent attempts
}

// NewBSAESAttack builds the scenario.
func NewBSAESAttack(cfg BSAESConfig, victimKey, victimPlain, attackerKey [16]byte) (*BSAESAttack, error) {
	tr, err := bsaes.EncryptTrace(victimPlain[:], victimKey[:])
	if err != nil {
		return nil, err
	}
	return newBSAESScenario(cfg, victimKey, victimPlain, attackerKey, tr)
}

// newBSAESScenario wires memory, caches and the machine around an
// already-computed victim trace (Clone reuses the parent's trace instead
// of re-running the bitslice encryption).
func newBSAESScenario(cfg BSAESConfig, victimKey, victimPlain, attackerKey [16]byte, tr bsaes.Trace) (*BSAESAttack, error) {
	if cfg.SQSize <= 0 {
		cfg.SQSize = 5
	}
	m := mem.New()
	hcfg := cache.DefaultHierConfig()
	hcfg.L1.Ways = 1 // direct-mapped, as in Figure 5
	hier, err := cache.NewHierarchy(hcfg)
	if err != nil {
		return nil, err
	}
	pcfg := pipeline.DefaultConfig()
	pcfg.SilentStores = &pipeline.SilentStoreConfig{}
	pcfg.SQSize = cfg.SQSize
	machine, err := pipeline.New(pcfg, m, hier)
	if err != nil {
		return nil, err
	}
	// The delay gadget's load yields the first flush-line address.
	m.Write(bsDelayAddr, 8, bsStackBase+bsFlushStep)

	a := &BSAESAttack{
		cfg:         cfg,
		Mem:         m,
		Hier:        hier,
		Machine:     machine,
		victimKey:   victimKey,
		victimPlain: victimPlain,
		victimTrace: tr,
		attackerKey: attackerKey,
		snap:        m.Snapshot(),
	}
	return a, nil
}

// Clone builds an independent scenario with the same configuration,
// keys and victim trace (and any calibrated threshold), for sharding a
// sweep across workers. The clone shares no mutable state with a.
func (a *BSAESAttack) Clone() (*BSAESAttack, error) {
	c, err := newBSAESScenario(a.cfg, a.victimKey, a.victimPlain, a.attackerKey, a.victimTrace)
	if err != nil {
		return nil, err
	}
	c.threshold = a.threshold
	return c, nil
}

// Reset rewinds the scenario's machine-visible state — data memory and
// both cache levels — to the canonical post-construction image. The
// calibrated threshold survives (it is the attacker's knowledge, not
// machine state). After Reset every run sequence is a pure function of
// the programs executed since, which is what makes pooled scenario
// reuse deterministic.
func (a *BSAESAttack) Reset() {
	a.Mem.Restore(a.snap)
	a.Hier.FlushAll()
}

// VictimCiphertext is the encryption result the server returns for the
// victim's public data — observable by the attacker on the wire.
func (a *BSAESAttack) VictimCiphertext() [16]byte { return a.victimTrace.Ciphertext }

// SpillSlotAddr returns the stack address of spilled slice k — the
// byte-substitution stage's k-th 16-bit spill slot.
func SpillSlotAddr(k int) uint64 { return bsStackBase + uint64(k)*bsSlotStep }

// EncryptKernel builds the simulated server kernel for one encryption
// call: the eight final-round slice stores, with the Figure 5
// amplification gadget (delay load + eight-line flush) spliced in before
// the target store. target < 0 builds the un-instrumented kernel.
// clearSpills appends the defensive zeroing epilogue.
func EncryptKernel(slices bsaes.State, target int, clearSpills bool) isa.Program {
	var p isa.Program
	emit := func(in isa.Inst) { p = append(p, in) }

	const (
		rStack = isa.Reg(1)
		rDelay = isa.Reg(2)
		rVal   = isa.Reg(3)
		rPtr   = isa.Reg(4) // delay result = flush base
	)
	emit(isa.Inst{Op: isa.ADDI, Rd: rStack, Rs1: isa.X0, Imm: int64(bsStackBase)})
	emit(isa.Inst{Op: isa.ADDI, Rd: rDelay, Rs1: isa.X0, Imm: int64(bsDelayAddr)})

	for k := 0; k < 8; k++ {
		if k == target {
			// Delay gadget: a load miss whose result the flush loads
			// depend on, guaranteeing the SS-Load completes first.
			emit(isa.Inst{Op: isa.LD, Rd: rPtr, Rs1: rDelay, Imm: 0})
			// Flush gadget: eight loads covering the target line's L2
			// set (and, being multiples of the L1 stride, its L1 set).
			// rPtr holds stack+flushStep, so line n is
			// stack + target*slotStep + n*flushStep for n = 1..8 — never
			// the target line itself.
			for n := 1; n <= 8; n++ {
				emit(isa.Inst{Op: isa.LD, Rd: isa.Reg(7 + n), Rs1: rPtr,
					Imm: int64(uint64(n)*bsFlushStep) + int64(uint64(target)*bsSlotStep) - int64(bsFlushStep)})
			}
		}
		emit(isa.Inst{Op: isa.ADDI, Rd: rVal, Rs1: isa.X0, Imm: int64(slices[k])})
		emit(isa.Inst{Op: isa.SH, Rs1: rStack, Rs2: rVal, Imm: int64(uint64(k) * bsSlotStep)})
	}
	if clearSpills {
		for k := 0; k < 8; k++ {
			emit(isa.Inst{Op: isa.SH, Rs1: rStack, Rs2: isa.X0, Imm: int64(uint64(k) * bsSlotStep)})
		}
	}
	emit(isa.Inst{Op: isa.HALT})
	return p
}

// resetGadgetLines evicts the delay and flush lines so the gadget's
// preconditions hold for the next call.
func (a *BSAESAttack) resetGadgetLines(target int) {
	a.Hier.EvictAll(bsDelayAddr)
	base := bsStackBase + uint64(target)*bsSlotStep
	for n := 1; n <= 8; n++ {
		a.Hier.EvictAll(base + uint64(n)*bsFlushStep)
	}
}

// runVictim performs one victim encryption on the server: the victim's
// slice values are spilled to the stack (and its slot lines end up warm in
// the cache). Un-instrumented: the victim's own call timing is irrelevant.
func (a *BSAESAttack) runVictim() error {
	_, err := a.Machine.Run(EncryptKernel(a.victimTrace.FinalSlices, -1, a.cfg.ClearSpills))
	return err
}

// runAttempt performs one attacker encryption with the gadget on store
// `target`, returning the call's cycle count.
func (a *BSAESAttack) runAttempt(slices bsaes.State, target int) (int64, error) {
	a.resetGadgetLines(target)
	res, err := a.Machine.Run(EncryptKernel(slices, target, a.cfg.ClearSpills))
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// SetThreshold overrides the silent/non-silent classification threshold;
// experiment harnesses use it to carry a calibration across
// configurations (e.g. when evaluating defenses that break in-place
// calibration).
func (a *BSAESAttack) SetThreshold(cycles int64) { a.threshold = cycles }

// Calibrate measures known-silent and known-non-silent attacker attempts
// (back-to-back encryptions of the attacker's own data) and fixes the
// classification threshold between the two modes.
func (a *BSAESAttack) Calibrate() (silent, nonSilent int64, err error) {
	var sl bsaes.State
	for i := range sl {
		sl[i] = uint16(0x1111 * (i + 1))
	}
	if _, err = a.runAttempt(sl, 0); err != nil { // settle stale values
		return
	}
	if silent, err = a.runAttempt(sl, 0); err != nil { // identical → silent
		return
	}
	diff := sl
	diff[0] ^= 0xffff
	if nonSilent, err = a.runAttempt(diff, 0); err != nil { // mismatch → refill
		return
	}
	if nonSilent-silent < 16 {
		err = fmt.Errorf("attack: calibration gap too small (%d vs %d)", silent, nonSilent)
		return
	}
	a.threshold = (silent + nonSilent) / 2
	return
}

// attemptIsSilent runs victim-then-attacker and classifies the target
// store.
func (a *BSAESAttack) attemptIsSilent(slices bsaes.State, target int) (bool, int64, error) {
	if err := a.runVictim(); err != nil {
		return false, 0, err
	}
	cycles, err := a.runAttempt(slices, target)
	if err != nil {
		return false, 0, err
	}
	return cycles < a.threshold, cycles, nil
}

// attackerSlicesWith returns a slice vector whose target entry is v and
// whose other entries avoid accidental matches with anything previously
// stored (they still produce small silent-store noise either way, which
// calibration absorbs).
func attackerSlicesWith(target int, v uint16) bsaes.State {
	var s bsaes.State
	for i := range s {
		s[i] = uint16(0xA5A5 ^ i*0x0101)
	}
	s[target] = v
	return s
}

// RecoverSliceDirect recovers the victim's spilled slice `target` by
// sweeping candidate values directly (the attacker with a precomputed
// plaintext→slice dictionary; each probe is one online experiment).
func (a *BSAESAttack) RecoverSliceDirect(target int, candidates []uint16) (uint16, bool, error) {
	if a.threshold == 0 {
		if _, _, err := a.Calibrate(); err != nil {
			return 0, false, err
		}
	}
	for _, v := range candidates {
		silent, cycles, err := a.attemptIsSilent(attackerSlicesWith(target, v), target)
		if err != nil {
			return 0, false, err
		}
		if silent {
			if a.cfg.Trace != nil {
				a.cfg.Trace("bsaes: slot %d = %#04x (%d cycles)", target, v, cycles)
			}
			return v, true, nil
		}
	}
	return 0, false, nil
}

// RecoverSliceViaPlaintexts is the fully faithful online loop: the
// attacker varies its plaintext, computes its own slice value under its
// own key, and watches for the silent-store timing signal. It returns the
// recovered value and the number of online attempts used.
func (a *BSAESAttack) RecoverSliceViaPlaintexts(target int, maxAttempts int) (uint16, int, bool, error) {
	if a.threshold == 0 {
		if _, _, err := a.Calibrate(); err != nil {
			return 0, 0, false, err
		}
	}
	var pt [16]byte
	for i := 0; i < maxAttempts; i++ {
		// Counter-mode plaintext sweep.
		for b := 0; b < 8; b++ {
			pt[b] = byte(i >> (8 * b))
		}
		tr, err := bsaes.EncryptTrace(pt[:], a.attackerKey[:])
		if err != nil {
			return 0, 0, false, err
		}
		silent, _, err := a.attemptIsSilent(tr.FinalSlices, target)
		if err != nil {
			return 0, 0, false, err
		}
		if silent {
			return tr.FinalSlices[target], i + 1, true, nil
		}
	}
	return 0, maxAttempts, false, nil
}

// RecoverKey runs the complete Section V-A3 chain: recover all eight
// spilled slices, combine with the observed victim ciphertext into the
// round-10 key, and invert the key schedule. candidatesFor supplies the
// value sweep per slot (the full attack uses all 65536; experiments may
// narrow it).
func (a *BSAESAttack) RecoverKey(candidatesFor func(slot int) []uint16) ([16]byte, error) {
	var recovered bsaes.State
	for k := 0; k < 8; k++ {
		v, ok, err := a.RecoverSliceDirect(k, candidatesFor(k))
		if err != nil {
			return [16]byte{}, err
		}
		if !ok {
			return [16]byte{}, fmt.Errorf("attack: slot %d not recovered", k)
		}
		recovered[k] = v
	}
	k10 := bsaes.RecoverRound10Key(recovered, a.VictimCiphertext())
	return bsaes.InvertKeySchedule(k10), nil
}

// RecoverKeyParallel is RecoverKey sharded by slot over a worker pool:
// each of the eight spilled slices is recovered on its own cloned
// scenario reset to canonical state, so the recovered key is
// bit-identical at every worker count (workers <= 0 selects
// GOMAXPROCS). candidatesFor must be safe for concurrent calls.
func (a *BSAESAttack) RecoverKeyParallel(workers int, candidatesFor func(slot int) []uint16) ([16]byte, error) {
	// Fix the classification threshold once, from canonical state, so
	// every shard classifies identically. (A shard-local calibration
	// would also be deterministic, but would redo three runs per slot.)
	if a.threshold == 0 {
		cal, err := a.Clone()
		if err != nil {
			return [16]byte{}, err
		}
		if _, _, err := cal.Calibrate(); err != nil {
			return [16]byte{}, err
		}
		a.threshold = cal.threshold
	}

	pool := parallel.NewPool(parallel.Workers(workers), a.Clone)
	type slotResult struct {
		v   uint16
		ok  bool
		err error
	}
	res, err := parallel.Sweep(context.Background(), workers, len(a.victimTrace.FinalSlices),
		func(_ context.Context, k int) (slotResult, error) {
			c, err := pool.Get()
			if err != nil {
				return slotResult{err: err}, nil
			}
			defer pool.Put(c)
			c.Reset()
			c.threshold = a.threshold
			v, ok, err := c.RecoverSliceDirect(k, candidatesFor(k))
			return slotResult{v: v, ok: ok, err: err}, nil
		})
	if err != nil {
		return [16]byte{}, err
	}
	var recovered bsaes.State
	for k, r := range res {
		if r.err != nil {
			return [16]byte{}, r.err
		}
		if !r.ok {
			return [16]byte{}, fmt.Errorf("attack: slot %d not recovered", k)
		}
		recovered[k] = r.v
	}
	k10 := bsaes.RecoverRound10Key(recovered, a.VictimCiphertext())
	return bsaes.InvertKeySchedule(k10), nil
}

// VictimSlices exposes the ground-truth spilled values for experiment
// scoring only.
func (a *BSAESAttack) VictimSlices() bsaes.State { return a.victimTrace.FinalSlices }

// Figure6 collects the paper's Figure 6 data: end-to-end runtime
// histograms for attacker encryptions whose instrumented store (slot 0)
// carries the correct vs an incorrect guess of the victim's stale value.
// The seven uninstrumented slices vary randomly per sample, as they would
// across attacker plaintexts — that variation is the distribution's
// spread; the silent/non-silent gap dwarfs it.
func (a *BSAESAttack) Figure6(samples int, rng *rand.Rand) (correct, incorrect *histo.Histogram, err error) {
	if a.threshold == 0 {
		if _, _, err = a.Calibrate(); err != nil {
			return nil, nil, err
		}
	}
	const target = 0
	truth := a.victimTrace.FinalSlices[target]
	correct, incorrect = histo.New(25), histo.New(25)
	for i := 0; i < samples; i++ {
		var s bsaes.State
		for j := range s {
			s[j] = uint16(rng.Intn(1 << 16))
		}
		s[target] = truth
		if err = a.runVictim(); err != nil {
			return nil, nil, err
		}
		cyc, rerr := a.runAttempt(s, target)
		if rerr != nil {
			return nil, nil, rerr
		}
		correct.Add(cyc)

		s[target] = truth ^ uint16(1+rng.Intn(1<<16-1))
		if err = a.runVictim(); err != nil {
			return nil, nil, err
		}
		cyc, rerr = a.runAttempt(s, target)
		if rerr != nil {
			return nil, nil, rerr
		}
		incorrect.Add(cyc)
	}
	return correct, incorrect, nil
}

// fig6Sample is one Figure6Parallel observation pair.
type fig6Sample struct {
	correct, incorrect int64
}

// Figure6Parallel collects the Figure 6 distributions with samples
// sharded over a worker pool. Each sample runs on a pooled scenario
// reset to canonical state with an RNG seeded from (seed, sample index),
// so both histograms are bit-identical at every worker count — the
// per-sample randomness no longer depends on how earlier samples drew
// from a shared stream.
func (a *BSAESAttack) Figure6Parallel(samples, workers int, seed int64) (correct, incorrect *histo.Histogram, err error) {
	const target = 0
	truth := a.victimTrace.FinalSlices[target]
	pool := parallel.NewPool(parallel.Workers(workers), a.Clone)
	res, err := parallel.Sweep(context.Background(), workers, samples,
		func(_ context.Context, i int) (fig6Sample, error) {
			c, err := pool.Get()
			if err != nil {
				return fig6Sample{}, err
			}
			defer pool.Put(c)
			c.Reset()
			rng := rand.New(rand.NewSource(parallel.Seed(seed, i)))
			var s bsaes.State
			for j := range s {
				s[j] = uint16(rng.Intn(1 << 16))
			}
			s[target] = truth
			if err := c.runVictim(); err != nil {
				return fig6Sample{}, err
			}
			cycC, err := c.runAttempt(s, target)
			if err != nil {
				return fig6Sample{}, err
			}
			s[target] = truth ^ uint16(1+rng.Intn(1<<16-1))
			if err := c.runVictim(); err != nil {
				return fig6Sample{}, err
			}
			cycI, err := c.runAttempt(s, target)
			if err != nil {
				return fig6Sample{}, err
			}
			return fig6Sample{correct: cycC, incorrect: cycI}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	correct, incorrect = histo.New(25), histo.New(25)
	for _, r := range res {
		correct.Add(r.correct)
		incorrect.Add(r.incorrect)
	}
	return correct, incorrect, nil
}
