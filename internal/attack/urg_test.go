package attack

import (
	"bytes"
	"testing"

	"pandora/internal/dmp"
	"pandora/internal/ebpf"
)

func TestURGLeaksSecretBytes(t *testing.T) {
	secret := []byte("PANDORA!")
	u, err := NewURG(DefaultURGConfig(), secret)
	if err != nil {
		t.Fatal(err)
	}
	got, correct, err := u.LeakRange(len(secret))
	if err != nil {
		t.Fatalf("leak failed: %v (got %q)", err, got)
	}
	if correct != len(secret) {
		t.Fatalf("leaked %q, want %q (%d/%d correct)", got, secret, correct, len(secret))
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("leak mismatch: %q vs %q", got, secret)
	}
	if u.IMP.Stats.ProtectedReads == 0 {
		t.Error("prefetcher never read protected memory — leak path not exercised")
	}
}

func TestURGVerifierGate(t *testing.T) {
	// The unchecked variant of the attacker program must be rejected by
	// the sandbox — only the null-checked version gets in.
	u, err := NewURG(DefaultURGConfig(), []byte{0x42})
	if err != nil {
		t.Fatal(err)
	}
	unchecked := ebpf.Figure7ProgramUnchecked(0, 1, 2, urgN, 8, 1, 1)
	if _, err := ebpf.Compile(unchecked, u.Env); err == nil {
		t.Fatal("sandbox accepted the unchecked program")
	}
	if err := ebpf.Verify(u.BPFProgram(), u.Env); err != nil {
		t.Fatalf("sandbox rejected the checked program: %v", err)
	}
}

func TestURGNeverArchitecturallyReadsSecret(t *testing.T) {
	// The interpreter (dynamic sandbox oracle) confirms the attacker
	// program returns 0 and touches nothing outside the maps even with
	// the target planted.
	u, err := NewURG(DefaultURGConfig(), []byte{0xAA})
	if err != nil {
		t.Fatal(err)
	}
	target := uint64(urgSecret) - urgYBase
	u.precondition(target, 1)
	ip := &ebpf.Interp{Env: u.Env, Mem: u.Mem}
	r0, err := ip.Run(u.BPFProgram(), 0, 0)
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	if r0 != 0 {
		t.Errorf("program returned %d, want 0 (NULL-check exit)", r0)
	}
}

// TestURGTwoLevelCannotLeak reproduces the Section IV-D4 analysis: the
// 2-level IMP does not form a universal read gadget — the X[secret] leak
// line is never filled, so byte recovery fails.
func TestURGTwoLevelCannotLeak(t *testing.T) {
	cfg := DefaultURGConfig()
	cfg.Levels = dmp.TwoLevel
	cfg.Replays = 3
	u, err := NewURG(cfg, []byte{0x5A})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.LeakByte(0); err == nil {
		t.Fatal("2-level IMP leaked a byte — contradicts the paper's range analysis")
	}
}

// TestURGPrefetchBufferDoesNotMitigate reproduces Section V-B3: with a
// prefetch buffer in front of L1, the receiver monitors L2 and the attack
// still recovers the secret.
func TestURGPrefetchBufferDoesNotMitigate(t *testing.T) {
	cfg := DefaultURGConfig()
	cfg.PrefetchBuffer = true
	secret := []byte{0xC3, 0x07}
	u, err := NewURG(cfg, secret)
	if err != nil {
		t.Fatal(err)
	}
	got, correct, err := u.LeakRange(2)
	if err != nil {
		t.Fatal(err)
	}
	if correct != 2 {
		t.Fatalf("leaked %x, want %x", got, secret)
	}
}

func TestURGConfigValidation(t *testing.T) {
	if _, err := NewURG(DefaultURGConfig(), nil); err == nil {
		t.Error("empty secret accepted")
	}
	if _, err := NewURG(DefaultURGConfig(), make([]byte, 10000)); err == nil {
		t.Error("oversized secret accepted")
	}
}

// TestURGFourLevelLeaks: the Ainsworth-Jones 4-level pattern
// (W[X[Y[Z[i]]]]) forms a universal read gadget just the same — the
// paper's expectation that "a similar attack goes through using any
// data-dependent memory prefetcher that performs at least two-level
// indirections".
func TestURGFourLevelLeaks(t *testing.T) {
	cfg := DefaultURGConfig()
	cfg.Levels = dmp.FourLevel
	secret := []byte{0x5C, 0xA1}
	u, err := NewURG(cfg, secret)
	if err != nil {
		t.Fatal(err)
	}
	if err := ebpf.Verify(u.BPFProgram(), u.Env); err != nil {
		t.Fatalf("4-level chase program rejected: %v", err)
	}
	got, correct, err := u.LeakRange(2)
	if err != nil {
		t.Fatal(err)
	}
	if correct != 2 {
		t.Fatalf("leaked %x, want %x", got, secret)
	}
	if d := u.IMP.ConfirmedDepth(); d != 3 {
		t.Errorf("confirmed depth = %d, want 3", d)
	}
}

func TestURGAccessors(t *testing.T) {
	u, err := NewURG(DefaultURGConfig(), []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(u.ISAProgram()) == 0 {
		t.Error("empty JITed program")
	}
	if got := u.Secret(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Secret() = %v", got)
	}
	// Secret returns a copy.
	u.Secret()[0] = 99
	if u.Secret()[0] == 99 {
		t.Error("Secret exposed internal state")
	}
}
