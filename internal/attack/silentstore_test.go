package attack

import (
	"math/rand"
	"testing"

	"pandora/internal/bsaes"
)

func newBSAES(t *testing.T) *BSAESAttack {
	t.Helper()
	var vk, vp, ak [16]byte
	rng := rand.New(rand.NewSource(20210614)) // ISCA'21 ;-) deterministic
	rng.Read(vk[:])
	rng.Read(vp[:])
	rng.Read(ak[:])
	a, err := NewBSAESAttack(DefaultBSAESConfig(), vk, vp, ak)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBSAESCalibration(t *testing.T) {
	a := newBSAES(t)
	silent, nonSilent, err := a.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	gap := nonSilent - silent
	if gap < 80 {
		t.Errorf("calibration gap = %d cycles (silent=%d nonsilent=%d); the paper reports >100",
			gap, silent, nonSilent)
	}
	t.Logf("silent=%d nonSilent=%d gap=%d", silent, nonSilent, gap)
}

// TestBSAESSingleStoreDistinguishable is the Figure 6 property: whether a
// single dynamic store is silent creates a large, reliably separable
// end-to-end timing difference, for every one of the eight target slots.
func TestBSAESSingleStoreDistinguishable(t *testing.T) {
	a := newBSAES(t)
	if _, _, err := a.Calibrate(); err != nil {
		t.Fatal(err)
	}
	truth := a.VictimSlices()
	for k := 0; k < 8; k++ {
		correct := attackerSlicesWith(k, truth[k])
		silent, cyc1, err := a.attemptIsSilent(correct, k)
		if err != nil {
			t.Fatal(err)
		}
		if !silent {
			t.Errorf("slot %d: correct guess not classified silent (%d cycles)", k, cyc1)
		}
		wrong := attackerSlicesWith(k, truth[k]^0x4242)
		silent, cyc2, err := a.attemptIsSilent(wrong, k)
		if err != nil {
			t.Fatal(err)
		}
		if silent {
			t.Errorf("slot %d: wrong guess classified silent (%d cycles)", k, cyc2)
		}
		if cyc2-cyc1 < 80 {
			t.Errorf("slot %d: gap %d too small (correct=%d wrong=%d)", k, cyc2-cyc1, cyc1, cyc2)
		}
	}
}

// TestBSAESKeyRecovery runs the complete Section V-A3 chain with narrowed
// candidate windows (64 values per slot containing the truth — the full
// 65536-value sweep is exercised by the benchmark harness).
func TestBSAESKeyRecovery(t *testing.T) {
	a := newBSAES(t)
	truth := a.VictimSlices()
	got, err := a.RecoverKey(func(slot int) []uint16 {
		base := truth[slot] &^ 0x3f // 64-value aligned window containing the truth
		out := make([]uint16, 64)
		for i := range out {
			out[i] = base + uint16(i)
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	want := a.victimKey
	if got != want {
		t.Fatalf("recovered key %x, want %x", got, want)
	}
}

// TestBSAESPlaintextSweep runs the fully faithful online loop for one
// slot: the attacker varies plaintexts under its own key until the silent
// signal fires, then reports the victim's stale value. The test harness
// picks the victim so the hit lands within a bounded number of attempts.
func TestBSAESPlaintextSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("collision search skipped in -short mode")
	}
	var ak, vk [16]byte
	rng := rand.New(rand.NewSource(7))
	rng.Read(ak[:])
	rng.Read(vk[:])

	// Precompute the attacker's first `budget` sweep values (exactly what
	// RecoverSliceViaPlaintexts will produce), then search for a public
	// victim plaintext whose slot-0 spill collides with one of them. The
	// full attack simply runs the same loop for up to 65536 attempts; the
	// test harness bounds the search so the mechanism is exercised in
	// seconds.
	const budget = 48
	sweep := map[uint16]bool{}
	for i := 0; i < budget; i++ {
		var pt [16]byte
		pt[0] = byte(i)
		tr, err := bsaes.EncryptTrace(pt[:], ak[:])
		if err != nil {
			t.Fatal(err)
		}
		sweep[tr.FinalSlices[0]] = true
	}
	var vp [16]byte
	found := false
	for i := 0; i < 20000 && !found; i++ {
		rng.Read(vp[:])
		tr, err := bsaes.EncryptTrace(vp[:], vk[:])
		if err != nil {
			t.Fatal(err)
		}
		if sweep[tr.FinalSlices[0]] {
			found = true
		}
	}
	if !found {
		t.Skip("no colliding victim plaintext found within search budget")
	}

	a, err := NewBSAESAttack(DefaultBSAESConfig(), vk, vp, ak)
	if err != nil {
		t.Fatal(err)
	}
	v, attempts, ok, err := a.RecoverSliceViaPlaintexts(0, budget)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no silent signal within %d attempts", budget)
	}
	if v != a.VictimSlices()[0] {
		t.Errorf("recovered %#04x, want %#04x (after %d attempts)", v, a.VictimSlices()[0], attempts)
	}
}

func TestBSAESRecoverSliceMiss(t *testing.T) {
	a := newBSAES(t)
	truth := a.VictimSlices()
	// A candidate set that excludes the truth must report not-found.
	cands := []uint16{truth[0] ^ 1, truth[0] ^ 2, truth[0] ^ 3}
	_, ok, err := a.RecoverSliceDirect(0, cands)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("recovered a value from candidates that exclude the truth")
	}
}

// TestClearSpillsDefense verifies the Section VI-A2 targeted-clearing
// mitigation end to end: with the server zeroing spill slots after each
// call, the attacker's correct guess no longer produces a silent store.
func TestClearSpillsDefense(t *testing.T) {
	var vk, vp, ak [16]byte
	rng := rand.New(rand.NewSource(42))
	rng.Read(vk[:])
	rng.Read(vp[:])
	rng.Read(ak[:])

	plain, err := NewBSAESAttack(DefaultBSAESConfig(), vk, vp, ak)
	if err != nil {
		t.Fatal(err)
	}
	sil, non, err := plain.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	truth := plain.VictimSlices()
	if _, ok, _ := plain.RecoverSliceDirect(0, []uint16{truth[0]}); !ok {
		t.Fatal("undefended attack must work")
	}

	cfg := DefaultBSAESConfig()
	cfg.ClearSpills = true
	defended, err := NewBSAESAttack(cfg, vk, vp, ak)
	if err != nil {
		t.Fatal(err)
	}
	defended.SetThreshold((sil + non) / 2)
	if _, ok, _ := defended.RecoverSliceDirect(0, []uint16{truth[0]}); ok {
		t.Error("clearing defense did not block the attack")
	}
	// And the defense is not free: the cleared server does more stores.
}
