// Package attack implements the paper's two end-to-end proofs of concept
// on top of the simulator stack:
//
//   - the silent-store attack on constant-time bitslice AES-128 with the
//     amplification gadget (Section V-A, Figures 5 and 6), and
//   - the data memory-dependent prefetcher universal read gadget in the
//     eBPF sandbox (Section V-B, Figures 1 and 7).
package attack

import (
	"context"
	"fmt"
	"math/rand"

	"pandora/internal/cache"
	"pandora/internal/channel"
	"pandora/internal/dmp"
	"pandora/internal/ebpf"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/obs"
	"pandora/internal/parallel"
	"pandora/internal/pipeline"
	"pandora/internal/taint"
)

// Memory layout of the URG scenario. Everything below secretBase is the
// sandbox; the secret region is "kernel memory" the sandboxed program can
// never architecturally read (the verifier guarantees it), yet the
// 3-level IMP dereferences attacker-planted indices with no such bounds.
const (
	urgZBase = 0x10000  // Z: 8-byte elements (wide indices reach all of memory)
	urgYBase = 0x100000 // Y: 1-byte elements (byte-granular reads)
	urgXBase = 0x200000 // X: 64-byte elements (one cache line per index value)
	// urgWBase (4-level variant only) is congruent to urgXBase modulo the
	// L2 set period, so the W leak line for byte b lands in the same set
	// as the X leak line — one decoder covers both depths.
	urgWBase     = 0x300000
	urgSecret    = 0x40000000  // protected region
	urgProbeBase = 0x800000000 // attacker Prime+Probe buffer

	urgN      = 24 // Z length / loop bound
	urgYElems = 4096
	urgXElems = 256
	urgWElems = 256
)

// URGConfig parameterizes the universal-read-gadget experiment.
type URGConfig struct {
	// Levels selects the IMP depth; the paper's analysis (Section IV-D4)
	// is that ThreeLevel forms a universal read gadget and TwoLevel does
	// not.
	Levels dmp.Levels
	// Replays bounds preconditioning replays per leaked byte.
	Replays int
	// PrefetchBuffer interposes a prefetch buffer before L1
	// (Section V-B3); the attack monitors L2 and still succeeds.
	PrefetchBuffer bool
	// Taint, when non-nil, shadows the scenario with secret labels: the
	// pipeline propagates them and the IMP reports prefetches whose
	// addresses derive from labeled bytes. Purely observational.
	Taint *taint.State
	// Trace receives narrative progress lines when non-nil.
	Trace func(format string, args ...any)
	// Probe, when non-nil, attaches the observability layer to the
	// scenario's pipeline and caches (cycle-accurate event traces of the
	// prefetcher attack; `pandora trace -scenario ebpf`).
	Probe obs.Probe
}

// DefaultURGConfig returns the Figure 1 configuration.
func DefaultURGConfig() URGConfig {
	return URGConfig{Levels: dmp.ThreeLevel, Replays: 10}
}

// URG is one instantiated sandbox-escape scenario.
type URG struct {
	cfg URGConfig

	Mem     *mem.Memory
	Hier    *cache.Hierarchy
	IMP     *dmp.IMP
	Env     *ebpf.Env
	Machine *pipeline.Machine

	bpfProg ebpf.Program
	isaProg isa.Program
	probe   *channel.PrimeProbe

	secret []byte // planted secret (for experiment verification only)
}

// NewURG builds the scenario and plants secret in protected memory.
func NewURG(cfg URGConfig, secret []byte) (*URG, error) {
	if cfg.Replays <= 0 {
		cfg.Replays = 6
	}
	if cfg.Levels == 0 {
		cfg.Levels = dmp.ThreeLevel
	}
	if len(secret) == 0 || len(secret) > 4096 {
		return nil, fmt.Errorf("attack: secret must be 1..4096 bytes, got %d", len(secret))
	}

	m := mem.New()
	regions := []mem.Region{
		{Name: "Z", Base: urgZBase, Size: urgN * 8},
		{Name: "Y", Base: urgYBase, Size: urgYElems},
		{Name: "X", Base: urgXBase, Size: urgXElems * 64},
		{Name: "kernel", Base: urgSecret, Size: uint64(len(secret) + 8), Protected: true},
	}
	if cfg.Levels == dmp.FourLevel {
		regions = append(regions, mem.Region{Name: "W", Base: urgWBase, Size: urgWElems * 64})
	}
	for _, r := range regions {
		if err := m.AddRegion(r); err != nil {
			return nil, err
		}
	}
	m.StoreBytes(urgSecret, secret)
	if cfg.Levels == dmp.FourLevel {
		// X is the identity at the 4-level depth: X[j] = j, so the W leak
		// line index equals the secret byte.
		for j := uint64(0); j < urgXElems; j++ {
			m.Write(urgXBase+j*64, 1, j)
		}
	}

	hcfg := cache.DefaultHierConfig()
	hcfg.PrefetchBuffer = cfg.PrefetchBuffer
	hier, err := cache.NewHierarchy(hcfg)
	if err != nil {
		return nil, err
	}

	impCfg := dmp.DefaultConfig(cfg.Levels)
	impCfg.MaxShift = 6 // X's 64-byte elements
	impCfg.ConfirmThreshold = 3
	imp := dmp.New(impCfg, hier, m)
	hier.AddListener(imp)
	if cfg.Taint != nil {
		imp.AttachTaint(cfg.Taint)
	}

	env := &ebpf.Env{Maps: []ebpf.Map{
		{Name: "Z", ElemSize: 8, NElems: urgN, Base: urgZBase},
		{Name: "Y", ElemSize: 1, NElems: urgYElems, Base: urgYBase},
		{Name: "X", ElemSize: 64, NElems: urgXElems, Base: urgXBase},
	}}
	levels := []ebpf.ChaseLevel{{Map: 0, LoadSize: 8}, {Map: 1, LoadSize: 1}, {Map: 2, LoadSize: 1}}
	if cfg.Levels == dmp.FourLevel {
		env.Maps = append(env.Maps, ebpf.Map{Name: "W", ElemSize: 64, NElems: urgWElems, Base: urgWBase})
		levels = append(levels, ebpf.ChaseLevel{Map: 3, LoadSize: 1})
	}
	bpfProg := ebpf.ChaseProgram(levels, urgN)
	isaProg, err := ebpf.Compile(bpfProg, env)
	if err != nil {
		return nil, fmt.Errorf("attack: sandbox rejected the attacker program: %w", err)
	}

	pcfg := pipeline.DefaultConfig()
	pcfg.Taint = cfg.Taint
	pcfg.Probe = cfg.Probe
	machine, err := pipeline.New(pcfg, m, hier)
	if err != nil {
		return nil, err
	}
	probe, err := channel.NewPrimeProbe(hier, channel.L2, urgProbeBase)
	if err != nil {
		return nil, err
	}

	u := &URG{
		cfg:     cfg,
		Mem:     m,
		Hier:    hier,
		IMP:     imp,
		Env:     env,
		Machine: machine,
		bpfProg: bpfProg,
		isaProg: isaProg,
		probe:   probe,
		secret:  secret,
	}
	return u, nil
}

// BPFProgram returns the verified attacker bytecode (Figure 7a).
func (u *URG) BPFProgram() ebpf.Program { return u.bpfProg }

// ISAProgram returns the JITed attacker program (Figure 7b analogue).
func (u *URG) ISAProgram() isa.Program { return u.isaProg }

func (u *URG) trace(format string, args ...any) {
	if u.cfg.Trace != nil {
		u.cfg.Trace(format, args...)
	}
}

// precondition writes the attacker-controlled map contents for one
// experiment: irregular in-bounds Z indices (so the dependent Y accesses
// do not look like a stream of their own), distinct in-bounds Y values
// (so the detector can only lock the true X scaling), and the planted
// out-of-bounds target in Z[N-1], which the loop bound j < N-1 never
// architecturally reaches. It returns the L2 sets the attacker expects its
// own activity (demand and in-bounds prefetches) to touch.
func (u *URG) precondition(target uint64, salt int64) map[int]bool {
	rng := rand.New(rand.NewSource(0x5eed + salt))
	expected := map[int]bool{}
	note := func(addr uint64) { expected[u.probe.SetOf(addr)] = true }

	delta := u.IMP.Config().Delta
	zv := make([]uint64, urgN)
	for j := 0; j < urgN-1; j++ {
		// Irregular in-bounds Y indices with gaps larger than a line.
		zv[j] = uint64(rng.Intn(urgYElems-128)) &^ 1
		for j > 0 {
			d := int64(zv[j]) - int64(zv[j-1])
			if d > 64 || d < -64 {
				break
			}
			zv[j] = uint64(rng.Intn(urgYElems - 128))
		}
	}
	zv[urgN-1] = target
	for j, v := range zv {
		u.Mem.Write(urgZBase+uint64(j*8), 8, v)
		note(urgZBase + uint64(j*8))
	}
	// Distinct Y values at the indices the loop will read.
	used := map[uint64]bool{}
	for j := 0; j < urgN-1; j++ {
		yv := uint64(rng.Intn(urgXElems))
		for used[yv] {
			yv = uint64(rng.Intn(urgXElems))
		}
		used[yv] = true
		u.Mem.Write(urgYBase+zv[j], 1, yv)
		note(urgYBase + zv[j])
		note(urgXBase + yv*64) // the in-bounds X line
		if u.cfg.Levels == dmp.FourLevel {
			note(urgWBase + yv*64) // W[X[yv]] with the identity X
		}
	}
	// Prefetch chains for in-bounds j also touch Z ahead and the Y/X
	// lines above; the target chain touches the secret's own line, whose
	// address the attacker chose.
	for j := 0; j < urgN+delta; j++ {
		note(urgZBase + uint64(j*8))
	}
	note(urgYBase + target) // = the secret address itself
	// Mistrained chains over the probe buffer resolve to the array bases.
	note(urgYBase)
	note(urgXBase + u.Mem.Read(urgYBase, 1)*64)
	note(urgXBase)
	if u.cfg.Levels == dmp.FourLevel {
		note(urgWBase)
		note(urgWBase + u.Mem.Read(urgXBase, 1)*64)
	}
	return expected
}

// xSetToByte inverts the X-line set mapping: the candidate secret byte
// whose leak line falls in the given L2 set.
func (u *URG) xSetToByte(set int) (byte, bool) {
	baseSet := u.probe.SetOf(urgXBase)
	d := (set - baseSet + u.probe.Sets()) % u.probe.Sets()
	if d < 0 || d >= urgXElems {
		return 0, false
	}
	return byte(d), true
}

// LeakByte leaks the protected byte at offset off without ever
// architecturally reading it: plant target = &secret[off] - &Y[0] in
// Z[N-1], run the verified sandbox program, and observe which X line the
// prefetcher filled. The secret's leak set is hot in (almost) every
// replay whose preconditioning does not mask it, while the attacker's
// residual noise moves between preconditionings (Section II-2), so the
// decoder votes across replays.
func (u *URG) LeakByte(off int) (byte, error) {
	target := urgSecret + uint64(off) - urgYBase
	obs := map[byte]int{}
	informative := 0

	for replay := 0; replay < u.cfg.Replays; replay++ {
		expected := u.precondition(target, int64(replay))
		u.probe.PrimeAll()
		if _, err := u.Machine.Run(u.isaProg); err != nil {
			return 0, fmt.Errorf("attack: sandbox run: %w", err)
		}
		counts := u.probe.ProbeAll()

		seen := 0
		for _, set := range channel.HotSets(counts) {
			if expected[set] {
				continue
			}
			if b, ok := u.xSetToByte(set); ok {
				obs[b]++
				seen++
			}
		}
		if seen > 0 {
			informative++
		}
		u.trace("urg: off=%d replay=%d unexplained=%d", off, replay, seen)
	}

	// Majority vote: the true byte is seen in nearly every informative
	// replay; residual noise is not reproducible across preconditionings.
	var best byte
	bestN, secondN := 0, 0
	for b, n := range obs {
		switch {
		case n > bestN:
			best, bestN, secondN = b, n, bestN
		case n > secondN:
			secondN = n
		}
	}
	if informative == 0 || bestN < 2 || bestN < informative/2 || bestN == secondN {
		return 0, fmt.Errorf("attack: off %d: no dominant candidate (best=%d second=%d informative=%d)",
			off, bestN, secondN, informative)
	}
	return best, nil
}

// SecretBase returns the base address of the protected region.
func (u *URG) SecretBase() uint64 { return urgSecret }

// RunOnce plants the out-of-sandbox pointer for byte offset off and runs
// the verified sandbox program a single time, with no cache probing. The
// taint scanner uses it: one run is enough for the shadowed IMP to report
// the prefetcher dereferencing labeled kernel bytes.
func (u *URG) RunOnce(off int) error {
	target := urgSecret + uint64(off) - urgYBase
	u.precondition(target, 0)
	_, err := u.Machine.Run(u.isaProg)
	return err
}

// Clone builds an independent scenario with the same configuration and
// planted secret. Construction is deterministic (the sandbox program,
// maps and regions depend only on the config), so a clone's LeakByte
// results match a fresh scenario's exactly.
func (u *URG) Clone() (*URG, error) { return NewURG(u.cfg, u.secret) }

// urgByteResult carries one offset's outcome through the worker pool.
type urgByteResult struct {
	b     byte
	stats dmp.Stats
	err   error
}

// LeakRangeParallel is LeakRange sharded by byte offset over a worker
// pool (workers <= 0 selects GOMAXPROCS). Every offset leaks on its own
// freshly built scenario, so the recovered bytes are bit-identical at
// every worker count; per-replay preconditioning RNG is already keyed
// by replay index, not by a shared stream. The clones' prefetcher
// statistics are merged into u.IMP.Stats in offset order, mirroring
// what a serial run over one scenario would have accumulated.
func (u *URG) LeakRangeParallel(workers, n int) (got []byte, correct int, err error) {
	if n > len(u.secret) {
		n = len(u.secret)
	}
	res, perr := parallel.Sweep(context.Background(), workers, n,
		func(_ context.Context, i int) (urgByteResult, error) {
			c, err := u.Clone()
			if err != nil {
				return urgByteResult{err: err}, nil
			}
			b, lerr := c.LeakByte(i)
			return urgByteResult{b: b, stats: c.IMP.Stats, err: lerr}, nil
		})
	if perr != nil {
		return nil, 0, perr
	}
	got = make([]byte, n)
	for i, r := range res {
		u.IMP.Stats.Merge(r.stats)
		if r.err != nil {
			// Mirror the serial contract: stop at the first failed offset.
			return got[:i], correct, r.err
		}
		got[i] = r.b
		if r.b == u.secret[i] {
			correct++
		}
	}
	return got, correct, nil
}

// LeakRange leaks n bytes starting at the beginning of the protected
// region, returning the recovered bytes and the number of correct ones
// (scored against the planted secret, which only the experiment harness
// knows).
func (u *URG) LeakRange(n int) (got []byte, correct int, err error) {
	if n > len(u.secret) {
		n = len(u.secret)
	}
	got = make([]byte, n)
	for i := 0; i < n; i++ {
		b, lerr := u.LeakByte(i)
		if lerr != nil {
			return got, correct, lerr
		}
		got[i] = b
		if b == u.secret[i] {
			correct++
		}
	}
	return got, correct, nil
}

// Secret exposes the planted secret for experiment scoring.
func (u *URG) Secret() []byte { return append([]byte(nil), u.secret...) }
