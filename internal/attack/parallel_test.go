package attack

import (
	"testing"
)

// TestBSAESCloneIndependence: a clone must reproduce the parent's
// calibration and sweep behavior without sharing any mutable state.
func TestBSAESCloneIndependence(t *testing.T) {
	a := newBSAES(t)
	sa, na, err := a.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	c, err := a.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if c.threshold != a.threshold {
		t.Errorf("clone dropped the calibrated threshold: %d vs %d", c.threshold, a.threshold)
	}
	// A fresh clone of an *uncalibrated* parent calibrates to the same
	// gap as the parent did from its own canonical state.
	b := newBSAES(t)
	c2, err := b.Clone()
	if err != nil {
		t.Fatal(err)
	}
	sc, nc, err := c2.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if sc != sa || nc != na {
		t.Errorf("clone calibration (%d, %d) differs from parent's (%d, %d)", sc, nc, sa, na)
	}
	// Mutating the clone's memory must not leak into the parent.
	c2.Mem.Write(bsStackBase, 8, 0xDEAD)
	if got := b.Mem.Read(bsStackBase, 8); got == 0xDEAD {
		t.Error("clone memory write visible in parent")
	}
}

// TestBSAESResetRestoresCanonicalState: after arbitrary runs, Reset must
// return the scenario to a state where a fixed run sequence reproduces
// the same cycle counts as on a fresh scenario.
func TestBSAESResetRestoresCanonicalState(t *testing.T) {
	fresh := newBSAES(t)
	s0, n0, err := fresh.Calibrate()
	if err != nil {
		t.Fatal(err)
	}

	used := newBSAES(t)
	if _, _, err := used.Calibrate(); err != nil {
		t.Fatal(err)
	}
	truth := used.VictimSlices()
	if _, _, err := used.RecoverSliceDirect(3, []uint16{truth[3] ^ 1, truth[3]}); err != nil {
		t.Fatal(err)
	}
	used.Reset()
	used.SetThreshold(0)
	s1, n1, err := used.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s0 || n1 != n0 {
		t.Errorf("post-Reset calibration (%d, %d) differs from fresh (%d, %d)", s1, n1, s0, n0)
	}
}

// TestRecoverKeyParallelWorkerCounts: the recovered key must equal the
// victim key at every worker count, including the serial path.
func TestRecoverKeyParallelWorkerCounts(t *testing.T) {
	a := newBSAES(t)
	truth := a.VictimSlices()
	candidates := func(slot int) []uint16 {
		// A 16-value window around the true value, as the experiment
		// harness narrows the paper's 65536-value sweep.
		base := truth[slot] &^ 15
		out := make([]uint16, 16)
		for i := range out {
			out[i] = base + uint16(i)
		}
		return out
	}
	for _, workers := range []int{1, 2, 8} {
		got, err := a.RecoverKeyParallel(workers, candidates)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != a.victimKey {
			t.Errorf("workers=%d: recovered %x, want %x", workers, got, a.victimKey)
		}
	}
}

// TestFigure6ParallelDeterministic: histograms must be identical at any
// worker count and across repeated runs.
func TestFigure6ParallelDeterministic(t *testing.T) {
	a := newBSAES(t)
	type summary struct {
		cMin, cMax, iMin, iMax int64
		cN, iN                 int
	}
	run := func(workers int) summary {
		c, i, err := a.Figure6Parallel(12, workers, 0xABC)
		if err != nil {
			t.Fatal(err)
		}
		sc, si := c.Summarize(), i.Summarize()
		return summary{sc.Min, sc.Max, si.Min, si.Max, sc.N, si.N}
	}
	want := run(1)
	if want.cN != 12 || want.iN != 12 {
		t.Fatalf("sample counts %d/%d, want 12/12", want.cN, want.iN)
	}
	if want.iMin-want.cMax < 80 {
		t.Errorf("modes not separated: correct max %d, incorrect min %d", want.cMax, want.iMin)
	}
	for _, workers := range []int{2, 5, 12} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: summary %+v differs from serial %+v", workers, got, want)
		}
	}
}

// TestURGLeakRangeParallelWorkerCounts: leaked bytes and merged
// prefetcher statistics must match at every worker count.
func TestURGLeakRangeParallelWorkerCounts(t *testing.T) {
	secret := []byte{0xC0, 0xFF}
	type outcome struct {
		got            string
		correct        int
		protectedReads uint64
	}
	run := func(workers int) outcome {
		u, err := NewURG(DefaultURGConfig(), secret)
		if err != nil {
			t.Fatal(err)
		}
		got, correct, err := u.LeakRangeParallel(workers, len(secret))
		if err != nil {
			t.Fatal(err)
		}
		return outcome{string(got), correct, u.IMP.Stats.ProtectedReads}
	}
	want := run(1)
	if want.correct != len(secret) {
		t.Fatalf("serial leak failed: %+v", want)
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d: %+v differs from serial %+v", workers, got, want)
		}
	}
}
