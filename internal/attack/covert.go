package attack

import (
	"fmt"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
	"pandora/internal/uopt"
)

// Covert channels (Section II): two cooperating programs communicate
// through an optimization's hardware resource usage. These constructions
// demonstrate that every stateful optimization the paper studies carries
// a covert channel even with no victim involved — the sender modulates
// persistent state (memory contents, a memoization table), the receiver
// reads it back as time.

// SilentStoreChannel transmits bits through the silent-store check: the
// sender stores one of two values to a shared location; the receiver
// stores a known value and observes whether its store was silent.
type SilentStoreChannel struct {
	machine *pipeline.Machine
	// shared is the dead-drop location.
	shared uint64
	// markOne is the value meaning bit=1 (the receiver's probe value).
	markOne uint64

	threshold int64
}

// NewSilentStoreChannel builds sender and receiver on one machine (the
// shared-memory covert setting).
func NewSilentStoreChannel() (*SilentStoreChannel, error) {
	cfg := pipeline.DefaultConfig()
	cfg.SilentStores = &pipeline.SilentStoreConfig{}
	cfg.SQSize = 5
	hcfg := cache.DefaultHierConfig()
	hcfg.L1.Ways = 1
	m := mem.New()
	h, err := cache.NewHierarchy(hcfg)
	if err != nil {
		return nil, err
	}
	mach, err := pipeline.New(cfg, m, h)
	if err != nil {
		return nil, err
	}
	c := &SilentStoreChannel{
		machine: mach,
		shared:  0x800,
		markOne: 0x1111,
	}
	m.Write(0x4040, 8, c.shared+0x4000) // delay cell for the amplifier
	return c, nil
}

// kernel builds the store-with-amplifier program used by both ends.
func (c *SilentStoreChannel) kernel(value uint64) string {
	return fmt.Sprintf(`
		addi x1, x0, %d       # &delay cell
		addi x3, x0, %d       # &shared
		addi x6, x0, %d       # value
		ld   x4, 0(x1)
		ld   x5, 0(x4)
		ld   x7, 0x4000(x4)
		ld   x8, 0x8000(x4)
		ld   x9, 0xc000(x4)
		ld   x10, 0x10000(x4)
		ld   x11, 0x14000(x4)
		ld   x12, 0x18000(x4)
		ld   x13, 0x1c000(x4)
		sd   x6, 0(x3)
		halt
	`, 0x4040, c.shared, value)
}

func (c *SilentStoreChannel) resetLines() {
	c.machine.Hierarchy().EvictAll(0x4040)
	for n := 1; n <= 8; n++ {
		c.machine.Hierarchy().EvictAll(c.shared + uint64(n)*0x4000)
	}
	// The shared line itself must be present for the check to win.
	c.machine.Hierarchy().Access(c.shared, 0, false)
}

// run executes one store kernel and returns its cycles.
func (c *SilentStoreChannel) run(value uint64) (int64, error) {
	c.resetLines()
	res, err := c.machine.Run(asm.MustAssemble(c.kernel(value)))
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// Calibrate fixes the silent/non-silent threshold.
func (c *SilentStoreChannel) Calibrate() error {
	if _, err := c.run(c.markOne); err != nil {
		return err
	}
	silent, err := c.run(c.markOne)
	if err != nil {
		return err
	}
	nonSilent, err := c.run(c.markOne ^ 0xffff)
	if err != nil {
		return err
	}
	if nonSilent-silent < 16 {
		return fmt.Errorf("attack: covert channel calibration gap too small (%d vs %d)", silent, nonSilent)
	}
	c.threshold = (silent + nonSilent) / 2
	return nil
}

// Send transmits one bit: the sender leaves markOne for 1, anything else
// for 0.
func (c *SilentStoreChannel) Send(bit bool) error {
	v := c.markOne ^ 0xffff
	if bit {
		v = c.markOne
	}
	_, err := c.run(v)
	return err
}

// Receive reads one bit (destructively: the probe overwrites the drop)
// and the probe's cycle count.
func (c *SilentStoreChannel) Receive() (bool, int64, error) {
	cyc, err := c.run(c.markOne)
	if err != nil {
		return false, 0, err
	}
	return cyc < c.threshold, cyc, nil
}

// TransmitByte sends and receives 8 bits (LSB first), returning the
// received byte and total simulated cycles consumed.
func (c *SilentStoreChannel) TransmitByte(b byte) (byte, int64, error) {
	if c.threshold == 0 {
		if err := c.Calibrate(); err != nil {
			return 0, 0, err
		}
	}
	var got byte
	var cycles int64
	for i := 0; i < 8; i++ {
		if err := c.Send(b>>i&1 == 1); err != nil {
			return 0, 0, err
		}
		bit, cyc, err := c.Receive()
		if err != nil {
			return 0, 0, err
		}
		cycles += cyc
		if bit {
			got |= 1 << i
		}
	}
	return got, cycles, nil
}

// ReuseChannel transmits bits through the Sv computation-reuse buffer:
// the sender executes a multiply whose operand encodes the bit; the
// receiver executes the same static multiply with the bit=1 operand and
// times it — a memoization hit skips the multiplier. The channel needs no
// shared memory at all — the reuse buffer is the medium (the paper's
// footnote 5 observation that the table can be poisoned to transmit).
type ReuseChannel struct {
	machine *pipeline.Machine
	buffer  *uopt.ReuseBuffer
	markOne uint64

	threshold int64
}

// NewReuseChannel builds the channel.
func NewReuseChannel() (*ReuseChannel, error) {
	cfg := pipeline.DefaultConfig()
	rb := uopt.NewReuseBuffer(uopt.SchemeSv, 64)
	cfg.Reuse = rb
	mach, err := pipeline.New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		return nil, err
	}
	return &ReuseChannel{machine: mach, buffer: rb, markOne: 123457}, nil
}

// kernel executes a dependent chain of multiplies at fixed PCs (the
// channel's "frequency"); hits collapse the chain's latency.
func (c *ReuseChannel) kernel(operand uint64) string {
	return fmt.Sprintf(`
		addi x1, x0, %d
		addi x2, x0, 77
		mul  x3, x1, x2     # the modulated instructions: hit iff the
		mul  x4, x3, x2     # table holds this operand chain
		mul  x5, x4, x2
		mul  x6, x5, x2
		halt
	`, operand)
}

func (c *ReuseChannel) run(operand uint64) (int64, error) {
	res, err := c.machine.Run(asm.MustAssemble(c.kernel(operand)))
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

// UseScheme switches the reuse buffer's keying discipline (for the Sn
// ablation) and clears the table and calibration.
func (c *ReuseChannel) UseScheme(s uopt.ReuseScheme) {
	c.buffer.Scheme = s
	c.buffer.Flush()
	c.threshold = 0
}

// Calibrate fixes the hit/miss timing threshold.
func (c *ReuseChannel) Calibrate() error {
	if _, err := c.run(c.markOne); err != nil {
		return err
	}
	hit, err := c.run(c.markOne) // identical back-to-back: all hits
	if err != nil {
		return err
	}
	if _, err := c.run(c.markOne ^ 1); err != nil {
		return err
	}
	miss, err := c.run(c.markOne) // table holds the other operand: misses
	if err != nil {
		return err
	}
	if miss-hit < 2 {
		return fmt.Errorf("attack: reuse channel calibration gap too small (%d vs %d)", hit, miss)
	}
	c.threshold = (hit + miss) / 2
	// The calibration probe itself re-primed the table; clear it so the
	// first Send starts clean.
	c.buffer.Flush()
	return nil
}

// Send encodes a bit into the memoization table.
func (c *ReuseChannel) Send(bit bool) error {
	v := c.markOne ^ 1
	if bit {
		v = c.markOne
	}
	_, err := c.run(v)
	return err
}

// Receive decodes one bit from the probe's cycle count.
func (c *ReuseChannel) Receive() (bool, error) {
	cyc, err := c.run(c.markOne)
	if err != nil {
		return false, err
	}
	return cyc < c.threshold, nil
}

// TransmitByte sends and receives 8 bits (LSB first).
func (c *ReuseChannel) TransmitByte(b byte) (byte, error) {
	if c.threshold == 0 {
		if err := c.Calibrate(); err != nil {
			return 0, err
		}
	}
	var got byte
	for i := 0; i < 8; i++ {
		if err := c.Send(b>>i&1 == 1); err != nil {
			return 0, err
		}
		bit, err := c.Receive()
		if err != nil {
			return 0, err
		}
		if bit {
			got |= 1 << i
		}
	}
	return got, nil
}
