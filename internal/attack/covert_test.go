package attack

import (
	"testing"

	"pandora/internal/uopt"
)

func TestSilentStoreCovertChannel(t *testing.T) {
	c, err := NewSilentStoreChannel()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []byte{0x00, 0xff, 0xa5, 0x37} {
		got, cycles, err := c.TransmitByte(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != b {
			t.Errorf("sent %#02x, received %#02x", b, got)
		}
		if cycles <= 0 {
			t.Error("no cycle accounting")
		}
	}
}

func TestSilentStoreChannelBandwidth(t *testing.T) {
	c, err := NewSilentStoreChannel()
	if err != nil {
		t.Fatal(err)
	}
	got, cycles, err := c.TransmitByte(0x5A)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x5A {
		t.Fatalf("byte corrupted: %#02x", got)
	}
	perBit := cycles / 8
	// The probe costs a few hundred simulated cycles per bit (amplifier
	// misses dominate) — sanity-bound the bandwidth accounting.
	if perBit < 50 || perBit > 5000 {
		t.Errorf("per-bit cost = %d cycles, outside sane range", perBit)
	}
	t.Logf("silent-store covert channel: ~%d cycles/bit", perBit)
}

func TestReuseCovertChannel(t *testing.T) {
	c, err := NewReuseChannel()
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []byte{0x00, 0xff, 0xc3, 0x18} {
		got, err := c.TransmitByte(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != b {
			t.Errorf("sent %#02x, received %#02x", b, got)
		}
	}
}

// TestReuseChannelSnImmune: the Sn variant keys on register names, so the
// operand value never influences hit timing — the receiver cannot even
// calibrate a value-dependent threshold. That dead calibration is the
// Section VI-A3 defense, observed in the covert setting.
func TestReuseChannelSnImmune(t *testing.T) {
	c, err := NewReuseChannel()
	if err != nil {
		t.Fatal(err)
	}
	// Swap in an Sn buffer.
	c.buffer.Scheme = uopt.SchemeSn
	c.buffer.Flush()
	err = c.Calibrate()
	if err == nil {
		t.Fatal("Sn reuse still produced a value-dependent timing gap — channel should be dead")
	}
}
