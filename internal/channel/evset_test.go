package channel

import (
	"testing"

	"pandora/internal/cache"
)

func TestEvictionSetReduction(t *testing.T) {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	b, err := NewEvictionSetBuilder(h, h.Config().L2.Ways)
	if err != nil {
		t.Fatal(err)
	}
	victim := uint64(0x123440)
	// A pool spanning many times the cache: guaranteed to contain at
	// least Ways lines congruent with the victim.
	poolSize := h.Config().L2.Sets * h.Config().L2.Ways * 2
	pool := b.Pool(0x40000000, poolSize)

	set, err := b.Reduce(pool, victim)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) > b.Ways {
		t.Fatalf("reduced set has %d members, want <= %d", len(set), b.Ways)
	}
	// Every surviving member must be congruent with the victim — the
	// builder discovered the set mapping from timing alone.
	want := h.L2.SetOf(victim)
	for _, a := range set {
		if h.L2.SetOf(a) != want {
			t.Errorf("member %#x maps to set %d, victim is in %d", a, h.L2.SetOf(a), want)
		}
	}
	// And it still works as an eviction set.
	if !b.Evicts(set, victim) {
		t.Error("reduced set no longer evicts the victim")
	}
	t.Logf("reduced %d -> %d members in %d timing tests", poolSize, len(set), b.Tests)
}

func TestEvictionSetErrors(t *testing.T) {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	if _, err := NewEvictionSetBuilder(nil, 8); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := NewEvictionSetBuilder(h, 0); err == nil {
		t.Error("zero ways accepted")
	}
	b, _ := NewEvictionSetBuilder(h, 8)
	// A tiny pool in the wrong sets cannot evict: Reduce must refuse.
	if _, err := b.Reduce([]uint64{0x40, 0x80}, 0x123440); err == nil {
		t.Error("non-evicting pool accepted")
	}
}

// TestEvictionSetFeedsPrimeProbe: the discovered set works as a
// Prime+Probe prime for its set.
func TestEvictionSetFeedsPrimeProbe(t *testing.T) {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	b, err := NewEvictionSetBuilder(h, h.Config().L2.Ways)
	if err != nil {
		t.Fatal(err)
	}
	victim := uint64(0x555000)
	pool := b.Pool(0x40000000, h.Config().L2.Sets*h.Config().L2.Ways*2)
	set, err := b.Reduce(pool, victim)
	if err != nil {
		t.Fatal(err)
	}
	// Prime with the discovered set, victim touches its line, probe: at
	// least one member must have been evicted.
	for _, a := range set {
		h.Access(a, 0, false)
	}
	h.Access(victim, 0, false)
	evictions := 0
	for _, a := range set {
		if h.Access(a, 0, false).Latency >= b.Threshold {
			evictions++
		}
	}
	if evictions == 0 {
		t.Error("discovered set saw no victim activity")
	}
}
