package channel

import (
	"testing"

	"pandora/internal/cache"
)

// probeBase is far from victim addresses used in tests.
const probeBase = uint64(0x10000000)

func newPP(t *testing.T, level Level) (*PrimeProbe, *cache.Hierarchy) {
	t.Helper()
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	pp, err := NewPrimeProbe(h, level, probeBase)
	if err != nil {
		t.Fatal(err)
	}
	return pp, h
}

func TestPrimeProbeQuiescent(t *testing.T) {
	pp, _ := newPP(t, L2)
	pp.PrimeAll()
	counts := pp.ProbeAll()
	for s, c := range counts {
		if c != 0 {
			t.Fatalf("set %d reports %d evictions with no transmitter", s, c)
		}
	}
}

func TestPrimeProbeDetectsSingleAccess(t *testing.T) {
	pp, h := newPP(t, L2)
	pp.PrimeAll()

	victim := uint64(0x123440) // arbitrary line
	h.Access(victim, 0, false)

	counts := pp.ProbeAll()
	hot := HotSets(counts)
	if len(hot) != 1 {
		t.Fatalf("hot sets = %v, want exactly one", hot)
	}
	if hot[0] != pp.SetOf(victim) {
		t.Errorf("hot set %d, want %d", hot[0], pp.SetOf(victim))
	}
}

func TestPrimeProbeDetectsPrefetchFill(t *testing.T) {
	// The DMP attack's receiver sees prefetch fills exactly like demand
	// fills.
	pp, h := newPP(t, L2)
	pp.PrimeAll()
	h.Prefetch(0x55540)
	hot := HotSets(pp.ProbeAll())
	if len(hot) != 1 || hot[0] != pp.SetOf(0x55540) {
		t.Fatalf("hot = %v, want [%d]", hot, pp.SetOf(0x55540))
	}
}

func TestPrimeProbeL1(t *testing.T) {
	pp, h := newPP(t, L1)
	pp.PrimeAll()
	h.Access(0x77780, 0, false)
	hot := HotSets(pp.ProbeAll())
	found := false
	for _, s := range hot {
		if s == pp.SetOf(0x77780) {
			found = true
		}
	}
	if !found {
		t.Errorf("victim set %d not hot: %v", pp.SetOf(0x77780), hot)
	}
}

// TestPrimeProbeSeesThroughPrefetchBuffer verifies Section V-B3: with a
// prefetch buffer shielding L1, the L2 receiver still sees the fill.
func TestPrimeProbeSeesThroughPrefetchBuffer(t *testing.T) {
	cfg := cache.DefaultHierConfig()
	cfg.PrefetchBuffer = true
	h := cache.MustNewHierarchy(cfg)
	pp, err := NewPrimeProbe(h, L2, probeBase)
	if err != nil {
		t.Fatal(err)
	}
	pp.PrimeAll()
	h.Prefetch(0x66640)
	hot := HotSets(pp.ProbeAll())
	if len(hot) != 1 || hot[0] != pp.SetOf(0x66640) {
		t.Fatalf("L2 receiver must see buffered prefetch: hot=%v want [%d]", hot, pp.SetOf(0x66640))
	}
}

func TestNewPrimeProbeValidation(t *testing.T) {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	if _, err := NewPrimeProbe(nil, L2, 0); err == nil {
		t.Error("nil hierarchy accepted")
	}
	if _, err := NewPrimeProbe(h, L2, 0x33); err == nil {
		t.Error("unaligned base accepted")
	}
	if _, err := NewPrimeProbe(h, Level(9), 0); err == nil {
		t.Error("bad level accepted")
	}
}

func TestSetOfMatchesCache(t *testing.T) {
	pp, h := newPP(t, L2)
	for _, addr := range []uint64{0, 64, 0x1234, 0xffff7, 1 << 30} {
		if got, want := pp.SetOf(addr), h.L2.SetOf(addr); got != want {
			t.Errorf("SetOf(%#x) = %d, cache says %d", addr, got, want)
		}
	}
}

// TestPrimeProbeUnderTreePLRU: the receiver works on pseudo-LRU caches
// too (the replacement policy changes the MLD's extra state, not the
// set-index channel).
func TestPrimeProbeUnderTreePLRU(t *testing.T) {
	cfg := cache.DefaultHierConfig()
	cfg.L2.Policy = cache.TreePLRU
	h := cache.MustNewHierarchy(cfg)
	pp, err := NewPrimeProbe(h, L2, probeBase)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		pp.PrimeAll()
		victim := uint64(0x123440 + trial*0x5000)
		h.Access(victim, 0, false)
		hot := HotSets(pp.ProbeAll())
		found := false
		for _, s := range hot {
			if s == pp.SetOf(victim) {
				found = true
			}
		}
		if !found {
			t.Errorf("trial %d: victim set %d not detected under tree-PLRU (hot=%v)",
				trial, pp.SetOf(victim), hot)
		}
	}
}
