package channel

import (
	"fmt"

	"pandora/internal/cache"
)

// FlushReload is the shared-memory receiver [Yarom & Falkner, USENIX
// Sec'14]: flush a line the victim may touch, wait, then reload it and
// time the access — a hit means the victim (or a prefetcher acting on the
// victim's behalf) brought it back. Line-granular and noise-free compared
// to Prime+Probe, but requires the monitored line to be shared between
// attacker and victim.
type FlushReload struct {
	hier *cache.Hierarchy
	// Threshold below which a reload counts as a hit; defaults to halfway
	// between the L2 hit latency and memory.
	Threshold int
}

// NewFlushReload builds a receiver on the hierarchy.
func NewFlushReload(h *cache.Hierarchy) (*FlushReload, error) {
	if h == nil {
		return nil, fmt.Errorf("channel: nil hierarchy")
	}
	cfg := h.Config()
	return &FlushReload{
		hier:      h,
		Threshold: (cfg.L2.HitLatency + cfg.MemLatency) / 2,
	}, nil
}

// Flush evicts the line holding addr from the whole hierarchy (the
// clflush analogue).
func (fr *FlushReload) Flush(addr uint64) { fr.hier.EvictAll(addr) }

// Reload accesses addr and reports whether it hit (the victim touched the
// line since the flush) along with the observed latency.
func (fr *FlushReload) Reload(addr uint64) (hit bool, latency int) {
	res := fr.hier.Access(addr, 0, false)
	return res.Latency < fr.Threshold, res.Latency
}

// Monitor flushes a set of lines, runs the victim, and returns which
// lines the victim touched.
func (fr *FlushReload) Monitor(lines []uint64, victim func()) []bool {
	for _, a := range lines {
		fr.Flush(a)
	}
	victim()
	out := make([]bool, len(lines))
	for i, a := range lines {
		out[i], _ = fr.Reload(a)
	}
	return out
}
