package channel

import (
	"testing"

	"pandora/internal/cache"
)

func newFR(t *testing.T) (*FlushReload, *cache.Hierarchy) {
	t.Helper()
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	fr, err := NewFlushReload(h)
	if err != nil {
		t.Fatal(err)
	}
	return fr, h
}

func TestFlushReloadBasic(t *testing.T) {
	fr, h := newFR(t)
	const line = uint64(0x4000)
	h.Access(line, 0, false)

	fr.Flush(line)
	if hit, lat := fr.Reload(line); hit {
		t.Errorf("reload after flush hit (lat=%d)", lat)
	}

	// Victim touches the line; reload must hit.
	h.Access(line, 0, false)
	if hit, lat := fr.Reload(line); !hit {
		t.Errorf("reload after victim access missed (lat=%d)", lat)
	}
}

func TestFlushReloadSeesPrefetch(t *testing.T) {
	// The DMP threat model: the "victim touch" is a prefetcher fill.
	fr, h := newFR(t)
	const line = uint64(0x8000)
	fr.Flush(line)
	h.Prefetch(line)
	if hit, _ := fr.Reload(line); !hit {
		t.Error("prefetch fill not visible to Flush+Reload")
	}
}

func TestFlushReloadMonitor(t *testing.T) {
	fr, h := newFR(t)
	lines := []uint64{0x1000, 0x2000, 0x3000, 0x4000}
	touched := fr.Monitor(lines, func() {
		h.Access(0x2000, 0, false)
		h.Access(0x4000, 0, false)
	})
	want := []bool{false, true, false, true}
	for i := range want {
		if touched[i] != want[i] {
			t.Errorf("line %#x: touched=%v want %v", lines[i], touched[i], want[i])
		}
	}
}

func TestFlushReloadNilHierarchy(t *testing.T) {
	if _, err := NewFlushReload(nil); err == nil {
		t.Error("nil hierarchy accepted")
	}
}
