package channel

import (
	"fmt"

	"pandora/internal/cache"
)

// EvictionSetBuilder discovers minimal eviction sets using timing alone —
// no knowledge of the cache geometry beyond the line size and an upper
// bound on associativity. This is the attacker tooling Prime+Probe needs
// in the real world, where set-index bits are unknown (physical indexing,
// unknown hashing): start from a large candidate pool that evicts the
// victim, then shrink it by group testing [Vila, Köpf & Morales, S&P'19].
type EvictionSetBuilder struct {
	hier *cache.Hierarchy
	// Ways is the upper bound on the monitored cache's associativity.
	Ways int
	// LineSize is the line granularity for pool generation.
	LineSize int
	// Threshold above which a reload counts as a miss; defaults to
	// halfway between the L2 hit latency and memory.
	Threshold int

	// Tests counts eviction tests performed (the algorithm's cost).
	Tests int
}

// NewEvictionSetBuilder targets the hierarchy's last level.
func NewEvictionSetBuilder(h *cache.Hierarchy, ways int) (*EvictionSetBuilder, error) {
	if h == nil {
		return nil, fmt.Errorf("channel: nil hierarchy")
	}
	if ways <= 0 {
		return nil, fmt.Errorf("channel: ways bound must be positive")
	}
	cfg := h.Config()
	return &EvictionSetBuilder{
		hier:      h,
		Ways:      ways,
		LineSize:  cfg.L2.LineSize,
		Threshold: (cfg.L2.HitLatency + cfg.MemLatency) / 2,
	}, nil
}

// Evicts reports whether accessing the candidate set flushes victim out
// of the monitored cache: load victim, walk the candidates, reload victim
// and time it.
func (b *EvictionSetBuilder) Evicts(candidates []uint64, victim uint64) bool {
	b.Tests++
	b.hier.Access(victim, 0, false)
	for _, c := range candidates {
		b.hier.Access(c, 0, false)
	}
	res := b.hier.Access(victim, 0, false)
	return res.Latency >= b.Threshold
}

// Pool generates n candidate line addresses starting at base, stepping
// one line at a time in permuted order (a linear walk would train
// prefetchers and skew the timing tests).
func (b *EvictionSetBuilder) Pool(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		j := (i*97 + 13) % n
		out[i] = base + uint64(j*b.LineSize)
	}
	return out
}

// Reduce shrinks a working eviction pool to at most Ways addresses that
// still evict the victim, by group testing: split the set into Ways+1
// groups; at least one group is redundant (the set has more than Ways
// congruent members), so drop the first group whose removal preserves
// eviction, and repeat.
func (b *EvictionSetBuilder) Reduce(pool []uint64, victim uint64) ([]uint64, error) {
	set := append([]uint64(nil), pool...)
	if !b.Evicts(set, victim) {
		return nil, fmt.Errorf("channel: initial pool of %d does not evict the victim", len(set))
	}
	for len(set) > b.Ways {
		groups := b.Ways + 1
		if groups > len(set) {
			groups = len(set)
		}
		per := (len(set) + groups - 1) / groups
		removed := false
		for g := 0; g < groups; g++ {
			lo := g * per
			if lo >= len(set) {
				break
			}
			hi := lo + per
			if hi > len(set) {
				hi = len(set)
			}
			trial := make([]uint64, 0, len(set)-(hi-lo))
			trial = append(trial, set[:lo]...)
			trial = append(trial, set[hi:]...)
			if b.Evicts(trial, victim) {
				set = trial
				removed = true
				break
			}
		}
		if removed {
			continue
		}
		// Group removal can stall when redundant members straddle every
		// group; fall back to single-element elimination, which always
		// makes progress while the set is above the minimal size.
		for i := 0; i < len(set); i++ {
			trial := make([]uint64, 0, len(set)-1)
			trial = append(trial, set[:i]...)
			trial = append(trial, set[i+1:]...)
			if b.Evicts(trial, victim) {
				set = trial
				removed = true
				break
			}
		}
		if !removed {
			return nil, fmt.Errorf("channel: reduction stuck at %d members (threshold or noise)", len(set))
		}
	}
	return set, nil
}
