// Package channel implements classic cache covert-channel receivers on
// top of the cache model — the measurement half of every attack in this
// repository. The transmitter is whatever modulates cache state (a victim
// program, or a data memory-dependent prefetcher); the receiver is
// Prime+Probe [Osvik, Shamir & Tromer, CT-RSA'06]: fill the monitored
// sets with attacker lines, let the transmitter run, then re-access the
// attacker lines and time them — an evicted line means the transmitter
// touched that set.
package channel

import (
	"fmt"

	"pandora/internal/cache"
)

// Level selects which cache the receiver monitors.
type Level int

// Receiver monitoring levels.
const (
	L1 Level = iota
	L2
)

func (l Level) String() string {
	if l == L1 {
		return "L1"
	}
	return "L2"
}

// PrimeProbe is a deterministic Prime+Probe receiver bound to one cache
// level of a hierarchy.
type PrimeProbe struct {
	hier  *cache.Hierarchy
	level Level
	base  uint64 // attacker-owned probe buffer (must be cache-set aligned)

	sets     int
	ways     int
	lineSize int
	stride   uint64 // byte distance between same-set lines

	// Threshold above which a probed line counts as evicted; defaults to
	// halfway between the monitored level's hit latency and the next
	// level's.
	Threshold int
}

// NewPrimeProbe builds a receiver. base is the start of an attacker-owned
// buffer of at least sets*ways*stride bytes; it should be line-aligned.
func NewPrimeProbe(h *cache.Hierarchy, level Level, base uint64) (*PrimeProbe, error) {
	if h == nil {
		return nil, fmt.Errorf("channel: nil hierarchy")
	}
	var cfg cache.Config
	var threshold int
	hc := h.Config()
	switch level {
	case L1:
		cfg = hc.L1
		threshold = (hc.L1.HitLatency + hc.L2.HitLatency) / 2
	case L2:
		cfg = hc.L2
		threshold = (hc.L2.HitLatency + hc.MemLatency) / 2
	default:
		return nil, fmt.Errorf("channel: bad level %d", level)
	}
	if base%uint64(cfg.LineSize) != 0 {
		return nil, fmt.Errorf("channel: probe base %#x not line-aligned", base)
	}
	return &PrimeProbe{
		hier:      h,
		level:     level,
		base:      base,
		sets:      cfg.Sets,
		ways:      cfg.Ways,
		lineSize:  cfg.LineSize,
		stride:    uint64(cfg.Sets * cfg.LineSize),
		Threshold: threshold,
	}, nil
}

// Sets returns the number of monitored sets.
func (pp *PrimeProbe) Sets() int { return pp.sets }

// SetOf returns the monitored-level set index of addr.
func (pp *PrimeProbe) SetOf(addr uint64) int {
	return int(addr / uint64(pp.lineSize) % uint64(pp.sets))
}

// evictionAddr returns the attacker line for (set, way).
func (pp *PrimeProbe) evictionAddr(set, way int) uint64 {
	return pp.base + uint64(set)*uint64(pp.lineSize) + uint64(way)*pp.stride
}

// permutedWay visits ways in a fixed non-sequential order so the probe
// loop does not itself look like a constant-stride stream to a
// data-dependent prefetcher watching the access bus.
func (pp *PrimeProbe) permutedWay(i int) int {
	return (i*7 + 3) % pp.ways
}

// permutedSet visits sets with a large coprime stride for the same
// reason: consecutive same-way prime accesses to adjacent sets differ by
// exactly one line, which is a textbook stream.
func (pp *PrimeProbe) permutedSet(i int) int {
	return (i*97 + 13) % pp.sets
}

// Prime fills one monitored set with attacker lines.
func (pp *PrimeProbe) Prime(set int) {
	for i := 0; i < pp.ways; i++ {
		pp.hier.Access(pp.evictionAddr(set, pp.permutedWay(i)), 0, false)
	}
}

// PrimeAll primes every monitored set (in stream-free permuted order).
func (pp *PrimeProbe) PrimeAll() {
	for i := 0; i < pp.sets; i++ {
		pp.Prime(pp.permutedSet(i))
	}
}

// Probe re-accesses one set's attacker lines and returns how many missed
// the monitored level (were evicted since Prime).
func (pp *PrimeProbe) Probe(set int) int {
	evicted := 0
	for i := 0; i < pp.ways; i++ {
		res := pp.hier.Access(pp.evictionAddr(set, pp.permutedWay(i)), 0, false)
		if res.Latency >= pp.Threshold {
			evicted++
		}
	}
	return evicted
}

// ProbeAll probes every set (permuted order), returning per-set eviction
// counts.
func (pp *PrimeProbe) ProbeAll() []int {
	out := make([]int, pp.sets)
	for i := 0; i < pp.sets; i++ {
		s := pp.permutedSet(i)
		out[s] = pp.Probe(s)
	}
	return out
}

// HotSets returns the sets whose probe detected at least one eviction.
func HotSets(counts []int) []int {
	var hot []int
	for s, c := range counts {
		if c > 0 {
			hot = append(hot, s)
		}
	}
	return hot
}
