package parallel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	items := []int{10, 20, 30, 40, 50, 60, 70}
	for _, workers := range []int{0, 1, 2, 3, len(items), len(items) + 5} {
		got, err := Map(context.Background(), workers, items, func(_ context.Context, i int, v int) (int, error) {
			return v * 2, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != items[i]*2 {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, items[i]*2)
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	got, err := Map(context.Background(), 4, nil, func(_ context.Context, i int, v int) (int, error) {
		return v, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: got %v, err %v", got, err)
	}
	one, err := Sweep(context.Background(), 8, 1, func(_ context.Context, i int) (int, error) {
		return i + 1, nil
	})
	if err != nil || len(one) != 1 || one[0] != 1 {
		t.Fatalf("single sweep: got %v, err %v", one, err)
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	_, err := Sweep(context.Background(), 2, 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 3 {
			return 0, boom
		}
		// Give cancellation a chance to land before the queue drains.
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := started.Load(); n == 1000 {
		t.Errorf("cancellation did not stop the feed: all %d items started", n)
	}
}

func TestMapPanicContained(t *testing.T) {
	_, err := Sweep(context.Background(), 4, 16, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 5 || pe.Value != "kaboom" {
		t.Errorf("PanicError = %+v", pe)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Sweep(ctx, 2, 8, func(ctx context.Context, i int) (int, error) {
		return i, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSeedDeterministicAndSpread(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := Seed(42, i)
		if s != Seed(42, i) {
			t.Fatal("Seed not deterministic")
		}
		if seen[s] {
			t.Fatalf("Seed collision at i=%d", i)
		}
		seen[s] = true
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Error("Seed ignores the base")
	}
}

// TestSweepSeedOrderIndependence is the engine's core guarantee in
// miniature: a randomized sweep produces identical results at any
// worker count because randomness is keyed by item, not by worker.
func TestSweepSeedOrderIndependence(t *testing.T) {
	run := func(workers int) []uint64 {
		out, err := Sweep(context.Background(), workers, 64, func(_ context.Context, i int) (uint64, error) {
			rng := rand.New(rand.NewSource(Seed(7, i)))
			v := uint64(0)
			for k := 0; k < 10+i%7; k++ {
				v = v*31 + rng.Uint64()
			}
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, workers := range []int{2, 3, 8, 64} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result %d differs", workers, i)
			}
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(5) != 5 {
		t.Error("Workers(5) != 5")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("Workers must normalize to >= 1")
	}
}

func TestPoolReuseAndCap(t *testing.T) {
	var built atomic.Int32
	p := NewPool(2, func() (*int, error) {
		n := int(built.Add(1))
		return &n, nil
	})
	a, _ := p.Get()
	b, _ := p.Get()
	c, _ := p.Get()
	if built.Load() != 3 {
		t.Fatalf("built %d, want 3", built.Load())
	}
	p.Put(a)
	p.Put(b)
	p.Put(c) // dropped: over capacity
	x, _ := p.Get()
	y, _ := p.Get()
	if built.Load() != 3 {
		t.Fatalf("pool did not reuse: built %d", built.Load())
	}
	_, _ = x, y
	z, _ := p.Get()
	if built.Load() != 4 || *z != 4 {
		t.Fatalf("empty pool must build fresh (built=%d)", built.Load())
	}
}

func TestPoolNewError(t *testing.T) {
	p := NewPool(1, func() (int, error) { return 0, fmt.Errorf("nope") })
	if _, err := p.Get(); err == nil {
		t.Fatal("expected error from New")
	}
}

// Seed must give distinct streams across a grid of nearby (base, index)
// pairs — including the base/base+1 adjacency the diffcheck harness relies
// on for independent program and mask schedules.
func TestSeedDistinctAcrossGrid(t *testing.T) {
	seen := make(map[int64][2]int64)
	for base := int64(0); base < 16; base++ {
		for i := 0; i < 128; i++ {
			s := Seed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Seed collision: (%d,%d) and (%d,%d) -> %d",
					base, i, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, int64(i)}
		}
	}
}

func TestMapSeededPanicCarriesSeedAndStack(t *testing.T) {
	items := []string{"a", "b", "c"}
	_, err := MapSeeded(context.Background(), 2, items,
		func(i int, _ string) int64 { return Seed(9, i) },
		func(_ context.Context, i int, _ int64, item string) (int, error) {
			if item == "b" {
				panic("trial crashed")
			}
			return i, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 1 || pe.Seed != Seed(9, 1) || pe.Value != "trial crashed" {
		t.Errorf("PanicError = index %d seed %d value %v", pe.Index, pe.Seed, pe.Value)
	}
	if pe.Stack == "" {
		t.Errorf("PanicError carries no stack")
	}
	if msg := pe.Error(); !strings.Contains(msg, "repro seed") {
		t.Errorf("error %q does not advertise the repro seed", msg)
	}
}
