// Package parallel is the repository's parallel execution engine: a
// bounded worker pool that fans independent simulator runs out over
// goroutines while keeping results bit-identical to a serial run.
//
// Determinism is the design center, not an afterthought. Every helper
// assigns work by item index, returns results in item order, and leaves
// randomness to per-item seeds (Seed) rather than per-worker streams, so
// the outcome of a sweep is a pure function of its inputs — independent
// of the worker count, the scheduler, and the completion order. The
// serial path is simply Workers==1; the equivalence tests in
// internal/core assert that every registered experiment produces
// identical metrics at any worker count.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Workers normalizes a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Seed derives a per-item RNG seed from a base seed and an item index
// using a splitmix64 finalizer. Seeding each item independently (instead
// of drawing from one shared stream, or one stream per worker) is what
// makes randomized sweeps order-independent: item i sees the same
// randomness whether it runs first on worker 3 or last on worker 0.
func Seed(base int64, i int) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// PanicError wraps a panic recovered inside a worker so it propagates to
// the caller as an ordinary error instead of killing the process from a
// goroutine. It carries everything a crash artifact needs: the item
// index, the per-item seed when the sweep is seeded (MapSeeded), and the
// goroutine stack captured at recovery — without these, a crashed
// campaign item could not be reproduced in isolation.
type PanicError struct {
	Index int    // item index whose function panicked
	Seed  int64  // per-item seed (0 when the sweep is unseeded)
	Value any    // the recovered panic value
	Stack string // goroutine stack captured at recover time
}

func (p *PanicError) Error() string {
	s := fmt.Sprintf("parallel: item %d panicked: %v", p.Index, p.Value)
	if p.Seed != 0 {
		s += fmt.Sprintf(" (repro seed %d)", p.Seed)
	}
	return s
}

// Map runs fn over every item with at most workers concurrent
// goroutines and returns the results in item order.
//
// The first error (or contained panic) cancels the derived context and
// stops workers from starting new items; already-running items finish.
// When multiple items fail, the lowest-indexed recorded error is
// returned. Callers that need a fully deterministic error regardless of
// scheduling should capture per-item errors in R instead and scan the
// ordered results. A nil ctx is treated as context.Background().
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(items)
	out := make([]R, n)
	if n == 0 {
		return out, ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup

	runOne := func(i int) {
		defer func() {
			if v := recover(); v != nil {
				errs[i] = &PanicError{Index: i, Value: v, Stack: string(debug.Stack())}
				cancel()
			}
		}()
		r, err := fn(cctx, i, items[i])
		if err != nil {
			errs[i] = err
			cancel()
			return
		}
		out[i] = r
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				runOne(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-cctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// MapSeeded is Map for seeded sweeps: seedOf derives each item's seed
// (callers that resume a partial sweep derive it from a stable global
// index, not the position in the remaining work list), fn receives that
// seed alongside the item, and a panic inside fn is recovered into a
// PanicError annotated with the item's seed and stack — so a crashed item
// can be re-run in isolation from the error alone.
func MapSeeded[T, R any](ctx context.Context, workers int, items []T,
	seedOf func(i int, item T) int64,
	fn func(ctx context.Context, i int, seed int64, item T) (R, error)) ([]R, error) {
	return Map(ctx, workers, items, func(ctx context.Context, i int, item T) (r R, err error) {
		seed := seedOf(i, item)
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{Index: i, Seed: seed, Value: v, Stack: string(debug.Stack())}
			}
		}()
		return fn(ctx, i, seed, item)
	})
}

// Sweep is Map over the index range [0, n): the items are the indices
// themselves. It is the natural shape for "run n independent trials"
// loops (samples, byte offsets, candidate windows).
func Sweep[R any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	if n < 0 {
		n = 0
	}
	idx := make([]struct{}, n)
	return Map(ctx, workers, idx, func(ctx context.Context, i int, _ struct{}) (R, error) {
		return fn(ctx, i)
	})
}

// Pool is a bounded free list of reusable worker resources (cloned
// machines, attack scenarios, analyzer instances). Get hands out a
// pooled value or builds a fresh one; Put returns it for reuse. Unlike
// sync.Pool it never drops values under GC pressure and never exceeds
// its capacity, so a sweep over n items builds at most min(workers, n)
// resources.
//
// Determinism contract: values handed out by Get carry state from
// whichever item used them last, so callers must reset a pooled value
// to a canonical state before use (or only pool stateless values).
type Pool[T any] struct {
	// New builds a fresh value when the pool is empty.
	New func() (T, error)

	free chan T
}

// NewPool returns a pool that retains at most capacity idle values.
func NewPool[T any](capacity int, newFn func() (T, error)) *Pool[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Pool[T]{New: newFn, free: make(chan T, capacity)}
}

// Get returns an idle pooled value, or builds a fresh one.
func (p *Pool[T]) Get() (T, error) {
	select {
	case v := <-p.free:
		return v, nil
	default:
		return p.New()
	}
}

// Put returns v to the pool; if the pool is full, v is dropped.
func (p *Pool[T]) Put(v T) {
	select {
	case p.free <- v:
	default:
	}
}
