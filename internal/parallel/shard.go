package parallel

import (
	"errors"
	"sync"
)

// Submission errors returned by ShardPool.Submit. A full queue is
// back-pressure (the caller should shed or retry); a draining pool is
// shutting down and will never accept work again.
var (
	ErrQueueFull = errors.New("parallel: shard queue full")
	ErrDraining  = errors.New("parallel: pool draining")
)

// ShardPool is a long-lived sharded worker pool: a fixed number of
// shards, each with its own bounded FIFO queue drained by its own
// worker goroutine. Work routed by a stable key always lands on the
// same shard, so tasks that share a key execute in submission order and
// never concurrently with each other — the property the serve layer's
// content-addressed job cache relies on (two submissions of one job key
// cannot race each other into the result store).
//
// Unlike Map/Sweep, which fan a known work list out and join, a
// ShardPool accepts work forever until Drain: Submit never blocks
// (a full shard queue is reported as ErrQueueFull back-pressure), and
// Drain stops intake, runs every queued task to completion and joins
// the workers — the graceful-shutdown half of a long-running service.
type ShardPool struct {
	queues []chan func()

	mu       sync.Mutex
	draining bool
	wg       sync.WaitGroup
}

// NewShardPool starts a pool with the given shard count and per-shard
// queue depth. shards <= 0 selects Workers(0) (GOMAXPROCS); depth <= 0
// selects 64. In-flight work is bounded by shards (executing) plus
// shards*depth (queued).
func NewShardPool(shards, depth int) *ShardPool {
	shards = Workers(shards)
	if depth <= 0 {
		depth = 64
	}
	p := &ShardPool{queues: make([]chan func(), shards)}
	p.wg.Add(shards)
	for i := range p.queues {
		q := make(chan func(), depth)
		p.queues[i] = q
		go func() {
			defer p.wg.Done()
			for task := range q {
				task()
			}
		}()
	}
	return p
}

// Shards returns the shard count.
func (p *ShardPool) Shards() int { return len(p.queues) }

// Submit enqueues task on shard key % Shards(). It never blocks: a full
// shard queue returns ErrQueueFull, a draining pool ErrDraining. Tasks
// submitted to one shard run in submission order, one at a time.
func (p *ShardPool) Submit(key uint64, task func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return ErrDraining
	}
	select {
	case p.queues[key%uint64(len(p.queues))] <- task:
		return nil
	default:
		return ErrQueueFull
	}
}

// Drain stops intake, waits for every queued task to finish and joins
// the worker goroutines. Safe to call more than once; later calls just
// wait for the first drain to complete.
func (p *ShardPool) Drain() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		for _, q := range p.queues {
			close(q)
		}
	}
	p.mu.Unlock()
	p.wg.Wait()
}
