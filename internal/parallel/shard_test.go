package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// Tasks submitted to one shard execute in FIFO order and never
// concurrently with each other.
func TestShardPoolFIFOPerShard(t *testing.T) {
	p := NewShardPool(4, 128)
	const n = 100
	var mu sync.Mutex
	got := make(map[uint64][]int)
	var wg sync.WaitGroup
	wg.Add(4 * n)
	for shard := uint64(0); shard < 4; shard++ {
		for i := 0; i < n; i++ {
			shard, i := shard, i
			if err := p.Submit(shard, func() {
				mu.Lock()
				got[shard] = append(got[shard], i)
				mu.Unlock()
				wg.Done()
			}); err != nil {
				t.Fatalf("Submit(%d, %d): %v", shard, i, err)
			}
		}
	}
	wg.Wait()
	p.Drain()
	for shard, order := range got {
		for i, v := range order {
			if v != i {
				t.Fatalf("shard %d executed out of order at %d: got %d", shard, i, v)
			}
		}
	}
}

// A full shard queue reports ErrQueueFull instead of blocking.
func TestShardPoolQueueFull(t *testing.T) {
	p := NewShardPool(1, 2)
	block := make(chan struct{})
	started := make(chan struct{})
	if err := p.Submit(0, func() { close(started); <-block }); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started // worker busy; queue now empty
	if err := p.Submit(0, func() {}); err != nil {
		t.Fatalf("Submit 1: %v", err)
	}
	if err := p.Submit(0, func() {}); err != nil {
		t.Fatalf("Submit 2: %v", err)
	}
	if err := p.Submit(0, func() {}); err != ErrQueueFull {
		t.Fatalf("Submit over capacity: got %v, want ErrQueueFull", err)
	}
	close(block)
	p.Drain()
}

// Drain runs everything already queued, then rejects new work.
func TestShardPoolDrain(t *testing.T) {
	p := NewShardPool(2, 64)
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		if err := p.Submit(uint64(i), func() { ran.Add(1) }); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	p.Drain()
	if got := ran.Load(); got != 50 {
		t.Fatalf("after Drain: %d tasks ran, want 50", got)
	}
	if err := p.Submit(0, func() {}); err != ErrDraining {
		t.Fatalf("Submit after Drain: got %v, want ErrDraining", err)
	}
	p.Drain() // idempotent
}
