package dmp

import (
	"testing"

	"pandora/internal/cache"
	"pandora/internal/mem"
)

const wBase = uint64(0xC0000)

// chase4 drives the Ainsworth-Jones pattern W[X[Y[Z[i]]]].
func chase4(h *cache.Hierarchy, m *mem.Memory, n int) {
	for i := 0; i < n; i++ {
		zAddr := zBase + uint64(i*elemW)
		z := m.Read(zAddr, elemW)
		h.Access(zAddr, z, false)

		yAddr := yBase + z*elemW
		y := m.Read(yAddr, elemW)
		h.Access(yAddr, y, false)

		xAddr := xBase + y*elemW
		x := m.Read(xAddr, elemW)
		h.Access(xAddr, x, false)

		wAddr := wBase + x*elemW
		w := m.Read(wAddr, elemW)
		h.Access(wAddr, w, false)
	}
}

// setupChase4 extends setupChase with irregular X contents so the W
// addresses do not form a stream.
func setupChase4(n int) *mem.Memory {
	m := setupChase(n)
	for j := 0; j < 600; j++ {
		// X[j] irregular via a multiplicative scramble mod a prime range.
		m.Write(xBase+uint64(j*elemW), elemW, uint64((j*131+17)%500))
	}
	return m
}

func TestIMPFourLevelChase(t *testing.T) {
	m := setupChase4(32)
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	p := New(DefaultConfig(FourLevel), h, m)
	h.AddListener(p)

	chase4(h, m, 20)

	if d := p.ConfirmedDepth(); d != 3 {
		t.Fatalf("confirmed depth = %d, want 3 (W over X over Y over Z)", d)
	}
	for k, wantBase := range []uint64{yBase, xBase, wBase} {
		base, shift, ok := p.LevelMapping(k)
		if !ok || base != wantBase || shift != 2 {
			t.Errorf("level %d mapping = (%#x, %d, %v), want (%#x, 2, true)", k, base, shift, ok, wantBase)
		}
	}

	// The prefetch chain for i = 19+Δ must have touched all four arrays.
	delta := p.Config().Delta
	i := 19 + delta
	z := m.Read(zBase+uint64(i*elemW), elemW)
	y := m.Read(yBase+z*elemW, elemW)
	x := m.Read(xBase+y*elemW, elemW)
	for _, a := range []uint64{zBase + uint64(i*elemW), yBase + z*elemW, xBase + y*elemW, wBase + x*elemW} {
		if !h.L1.Contains(a) {
			t.Errorf("chain address %#x not prefetched", a)
		}
	}
}

func TestIMPFourLevelDepthBounds(t *testing.T) {
	m := setupChase4(32)
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	p := New(DefaultConfig(FourLevel), h, m)
	h.AddListener(p)
	// Drive only the 3-level pattern: the fourth level must not confirm.
	chase(h, m, 16)
	if d := p.ConfirmedDepth(); d != 2 {
		t.Errorf("confirmed depth = %d, want 2 when no fourth-level accesses occur", d)
	}
}

func TestLevelsValidation(t *testing.T) {
	m := mem.New()
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	p := New(Config{Levels: 9}, h, m)
	if p.Config().Levels != ThreeLevel {
		t.Errorf("out-of-range depth not defaulted: %d", p.Config().Levels)
	}
	p2 := New(Config{Levels: FourLevel}, h, m)
	if p2.Config().Levels != FourLevel {
		t.Errorf("4-level config rejected: %d", p2.Config().Levels)
	}
}

func TestResetClearsLevels(t *testing.T) {
	m := setupChase4(32)
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	p := New(DefaultConfig(FourLevel), h, m)
	h.AddListener(p)
	chase4(h, m, 20)
	p.Reset()
	if p.ConfirmedDepth() != 0 {
		t.Error("Reset left confirmed levels")
	}
}
