package dmp

import (
	"testing"

	"pandora/internal/cache"
	"pandora/internal/mem"
)

const (
	zBase = uint64(0x1000)
	yBase = uint64(0x40000)
	xBase = uint64(0x80000)
	elemW = 4
)

// zvals holds deliberately irregular index values: consecutive differences
// exceed one cache line so the dependent Y/X accesses do not themselves
// look like streams (which would be legitimate stride-prefetcher prey and
// starve the indirect detector).
var zvals = []uint64{5, 50, 9, 77, 23, 61, 130, 90, 31, 170, 2, 44, 111, 66, 19, 84,
	37, 150, 7, 99, 58, 21, 140, 73, 46, 12, 88, 30, 120, 65, 3, 55}

// setupChase builds memory holding Z, Y, X with X[Y[Z[i]]] well defined:
// Z[i] = zvals[i], Y[j] = j+100, X read implicitly (contents irrelevant).
func setupChase(n int) *mem.Memory {
	m := mem.New()
	for i := 0; i < n; i++ {
		m.Write(zBase+uint64(i*elemW), elemW, zvals[i%len(zvals)])
	}
	for j := 0; j < 512; j++ {
		m.Write(yBase+uint64(j*elemW), elemW, uint64(j+100))
	}
	return m
}

// chase performs the demand-access pattern of the victim loop
// for i in [0,n): X[Y[Z[i]]].
func chase(h *cache.Hierarchy, m *mem.Memory, n int) {
	for i := 0; i < n; i++ {
		zAddr := zBase + uint64(i*elemW)
		z := m.Read(zAddr, elemW)
		h.Access(zAddr, z, false)

		yAddr := yBase + z*elemW
		y := m.Read(yAddr, elemW)
		h.Access(yAddr, y, false)

		xAddr := xBase + y*elemW
		x := m.Read(xAddr, elemW)
		h.Access(xAddr, x, false)
	}
}

func newIMP(t *testing.T, levels Levels) (*IMP, *cache.Hierarchy, *mem.Memory) {
	t.Helper()
	m := setupChase(32)
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	p := New(DefaultConfig(levels), h, m)
	h.AddListener(p)
	return p, h, m
}

func TestIMPDetectsStreamAndIndirections(t *testing.T) {
	p, h, m := newIMP(t, ThreeLevel)
	chase(h, m, 12)
	if p.Stats.StreamsDetected == 0 {
		t.Fatal("stream not detected")
	}
	l1, l2 := p.Confirmed()
	if !l1 {
		t.Fatal("level-1 indirection not confirmed")
	}
	if !l2 {
		t.Fatal("level-2 indirection not confirmed")
	}
	base, shift, _ := p.Lvl1Mapping()
	if base != yBase || shift != 2 {
		t.Errorf("lvl1 mapping = (%#x, %d), want (%#x, 2)", base, shift, yBase)
	}
	base, shift, _ = p.Lvl2Mapping()
	if base != xBase || shift != 2 {
		t.Errorf("lvl2 mapping = (%#x, %d), want (%#x, 2)", base, shift, xBase)
	}
	if p.Stats.Prefetches == 0 {
		t.Error("no prefetch chains launched")
	}
}

func TestIMPPrefetchesAhead(t *testing.T) {
	p, h, m := newIMP(t, ThreeLevel)
	n := 12
	chase(h, m, n)
	// After the loop reached i = n-1, the prefetcher should have touched
	// the chain for i = n-1+Δ: Z, Y[Z], X[Y[Z]].
	delta := p.Config().Delta
	i := n - 1 + delta
	zAddr := zBase + uint64(i*elemW)
	z := m.Read(zAddr, elemW)
	yAddr := yBase + z*elemW
	y := m.Read(yAddr, elemW)
	xAddr := xBase + y*elemW
	for _, a := range []uint64{zAddr, yAddr, xAddr} {
		if !h.L1.Contains(a) {
			t.Errorf("address %#x not prefetched into L1", a)
		}
	}
}

func TestIMPTwoLevelSkipsX(t *testing.T) {
	p, h, m := newIMP(t, TwoLevel)
	chase(h, m, 12)
	l1, l2 := p.Confirmed()
	if !l1 {
		t.Fatal("2-level IMP should confirm level 1")
	}
	if l2 {
		t.Error("2-level IMP must not track a second indirection")
	}
	// Each 2-level chain touches exactly two lines (Z and Y), never X.
	if p.Stats.Prefetches == 0 {
		t.Fatal("no prefetch chains")
	}
	if p.Stats.LinesFetched != 2*p.Stats.Prefetches {
		t.Errorf("2-level chain fetched %d lines over %d chains, want exactly 2 per chain",
			p.Stats.LinesFetched, p.Stats.Prefetches)
	}
}

// TestIMPOutOfBoundsChase is the heart of the paper's attack (Figure 1):
// when the value "just past" the trained stream is attacker-controlled, the
// prefetcher dereferences it with no bounds awareness and fills a cache
// line whose index is a function of protected memory.
func TestIMPOutOfBoundsChase(t *testing.T) {
	m := setupChase(16)
	// Protected secret way outside every array.
	secretAddr := yBase + 5000*elemW
	if err := m.AddRegion(mem.Region{Name: "protected", Base: secretAddr, Size: 64, Protected: true}); err != nil {
		t.Fatal(err)
	}
	secret := uint64(0xAB)
	m.Write(secretAddr, elemW, secret)

	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	p := New(DefaultConfig(ThreeLevel), h, m)
	h.AddListener(p)

	// Attacker plants target = 5000 out of bounds of Z at index 8+Δ,
	// then walks the loop up to i=8.
	delta := p.Config().Delta
	m.Write(zBase+uint64((8+delta)*elemW), elemW, 5000)

	chase(h, m, 9)

	if p.Stats.Prefetches == 0 {
		t.Fatal("no prefetches")
	}
	// The prefetcher must have read the secret and touched
	// X[secret] = xBase + secret<<2.
	leakLine := xBase + secret*elemW
	if !h.L2.Contains(leakLine) {
		t.Errorf("leak line %#x not filled — secret not transmitted", leakLine)
	}
	if p.Stats.ProtectedReads == 0 {
		t.Error("prefetcher never read protected memory (diagnostic counter)")
	}
}

func TestIMPReset(t *testing.T) {
	p, h, m := newIMP(t, ThreeLevel)
	chase(h, m, 12)
	p.Reset()
	if l1, l2 := p.Confirmed(); l1 || l2 {
		t.Error("Reset left confirmations")
	}
}

func TestStridePrefetcher(t *testing.T) {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	s := NewStride(h)
	h.AddListener(s)
	for i := 0; i < 6; i++ {
		a := uint64(0x1000 + i*64)
		h.Access(a, 0, false)
	}
	if s.Prefetches == 0 {
		t.Fatal("stride prefetcher never fired")
	}
	// Next lines ahead must be present.
	if !h.L1.Contains(0x1000 + 6*64) {
		t.Error("next line not prefetched")
	}
}

func TestStrideIgnoresWritesAndRandom(t *testing.T) {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	s := NewStride(h)
	h.AddListener(s)
	addrs := []uint64{0x9000, 0x100, 0x77000, 0x340, 0x51000}
	for _, a := range addrs {
		h.Access(a, 0, false)
	}
	if s.Prefetches != 0 {
		t.Errorf("stride prefetcher fired on random pattern: %d", s.Prefetches)
	}
	for i := 0; i < 8; i++ {
		h.Access(uint64(0x1000+i*64), 0, true) // writes
	}
	if s.Prefetches != 0 {
		t.Errorf("stride prefetcher trained on stores: %d", s.Prefetches)
	}
}
