// Package dmp implements data memory-dependent prefetchers (Section IV-D2
// of the paper): the indirect-memory prefetcher (IMP) of Yu et al.
// [MICRO'15], in its 2-level (Y[Z[i]]) and 3-level (X[Y[Z[i]]]) variants,
// plus a conventional stride prefetcher as the security baseline.
//
// The IMP is the paper's motivating example: it reads *data memory
// contents* directly to compute prefetch addresses, so its cache fills are
// a transmitter for data at rest — forming a universal read gadget in the
// sandbox setting (Figure 1). The prefetcher deliberately has no notion of
// array bounds or protection domains; that is precisely the vulnerability.
package dmp

import (
	"fmt"

	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/taint"
)

// Levels selects the indirection depth the IMP prefetches through.
type Levels int

const (
	// TwoLevel detects Y[Z[i]] and prefetches Y[Z[i+Δ]].
	TwoLevel Levels = 2
	// ThreeLevel detects X[Y[Z[i]]] and prefetches X[Y[Z[i+Δ]]] (the
	// paper's universal-read-gadget variant, Yu et al.).
	ThreeLevel Levels = 3
	// FourLevel detects W[X[Y[Z[i]]]] — the pattern of Ainsworth & Jones
	// [ICS'16], which the paper notes is "similar" and equally unsafe.
	FourLevel Levels = 4
)

// Config parameterizes the IMP.
type Config struct {
	Levels Levels
	// Delta is the prefetch distance (the paper's Δ, default 4).
	Delta int
	// MaxShift bounds the index-scaling shifts tried when solving
	// addr = base + (value << shift); default 3 (up to 8-byte elements).
	MaxShift int
	// ConfirmThreshold is how many consistent (value, address) pairs are
	// required before a candidate (base, shift) is locked in; default 2.
	ConfirmThreshold int
	// StreamThreshold is how many constant-stride accesses to the index
	// array are required before streaming is recognized; default 3.
	StreamThreshold int
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig(levels Levels) Config {
	return Config{Levels: levels, Delta: 4, MaxShift: 3, ConfirmThreshold: 2, StreamThreshold: 3}
}

// Stats counts prefetcher activity.
type Stats struct {
	StreamsDetected   uint64
	IndirectConfirmed uint64 // level-1 indirections locked
	Level2Confirmed   uint64 // second indirections locked (3-level only)
	Prefetches        uint64 // prefetch chains launched
	LinesFetched      uint64 // cache lines touched by prefetch chains
	OutOfBoundsReads  uint64 // prefetcher data reads outside every region (diagnostic)
	ProtectedReads    uint64 // prefetcher data reads inside Protected regions (diagnostic)
}

// Merge folds o's counts into s — the supported way for callers (e.g. the
// parallel URG sweep) to aggregate per-clone prefetcher stats without
// writing this package's fields one by one.
func (s *Stats) Merge(o Stats) {
	s.StreamsDetected += o.StreamsDetected
	s.IndirectConfirmed += o.IndirectConfirmed
	s.Level2Confirmed += o.Level2Confirmed
	s.Prefetches += o.Prefetches
	s.LinesFetched += o.LinesFetched
	s.OutOfBoundsReads += o.OutOfBoundsReads
	s.ProtectedReads += o.ProtectedReads
}

// streamEntry tracks a candidate streaming (index) array.
type streamEntry struct {
	lastAddr  uint64
	stride    int64
	hits      int
	lastValue uint64
	valueSeen bool
	// recent holds the last few stream values: with an out-of-order core
	// the dependent indirection loads arrive interleaved across loop
	// iterations, so the detector must correlate a candidate indirection
	// address against several recent index values (the published IMP
	// keeps exactly such a table of recent index values).
	recent []uint64
}

// noteValue records a stream value in the recent ring.
func (s *streamEntry) noteValue(v uint64) {
	s.lastValue = v
	s.valueSeen = true
	s.recent = append(s.recent, v)
	if len(s.recent) > recentDepth {
		s.recent = s.recent[1:]
	}
}

// recentDepth bounds the recent-value rings.
const recentDepth = 4

// indirectCandidate is an un-confirmed hypothesis addr = base + v<<shift.
type indirectCandidate struct {
	base  uint64
	shift uint
	hits  int
}

// indirect tracks one indirection level once locked. valueWidth is the
// width of the values the core loads at this level's addresses (inferred
// at training time), which the prefetcher needs when it chases the
// indirection itself.
type indirect struct {
	confirmed  bool
	base       uint64
	shift      uint
	valueWidth int
	cands      []indirectCandidate
}

// IMP is the indirect-memory prefetcher. It observes demand accesses via
// the cache.AccessListener interface, reads data memory directly to chase
// indirections, and issues prefetches into the hierarchy.
//
// Detection follows the published design: a stream table finds the
// constant-stride index array Z; when the core subsequently issues a load,
// the prefetcher checks whether its address is explained by
// base + (lastIndexValue << shift) and, after ConfirmThreshold consistent
// observations, locks the indirection and begins prefetching
// Y[Z[i+Δ]] (and X[Y[Z[i+Δ]]] for the 3-level variant) on every further
// stream advance.
type IMP struct {
	cfg  Config
	hier *cache.Hierarchy
	mem  *mem.Memory

	// streams is a small FIFO table of candidate stream heads. A slice,
	// not a map: training must be deterministic, and Go map iteration
	// order is not.
	streams []*streamEntry
	// active is the stream currently driving indirection detection.
	active    *streamEntry
	elemWidth int // index element size inferred from stride

	// levels holds the indirection chain: levels[0] maps stream values to
	// the first dependent array, levels[1] maps its values onward, and so
	// on (cfg.Levels-1 entries).
	levels []indirect
	// recentOut[k] holds recent observed output values of levels[k]
	// (loaded at addresses its locked mapping explains), which train
	// levels[k+1]. Stream values (the chain's inputs) live on the stream
	// entry itself.
	recentOut [][]uint64

	Stats Stats

	// TraceFn, when set, receives a line per prefetcher action (used by
	// the Figure 1 narrative output).
	TraceFn func(format string, args ...any)

	// taintSt, when set (AttachTaint), reports prefetcher reads of
	// labeled bytes and prefetch addresses formed from labeled values —
	// the scanner's view of the universal read gadget.
	taintSt *taint.State
}

var _ cache.AccessListener = (*IMP)(nil)

// AttachTaint connects the prefetcher to the secret-label shadow: every
// chain step checks the shadow of the bytes it reads and of the values it
// turns into prefetch addresses, firing OptPrefetcher leak events.
func (p *IMP) AttachTaint(st *taint.State) { p.taintSt = st }

// New creates an IMP attached to the hierarchy and data memory. Callers
// must also register it: hier.AddListener(imp).
func New(cfg Config, hier *cache.Hierarchy, m *mem.Memory) *IMP {
	if cfg.Delta <= 0 {
		cfg.Delta = 4
	}
	if cfg.MaxShift <= 0 {
		cfg.MaxShift = 3
	}
	if cfg.ConfirmThreshold <= 0 {
		cfg.ConfirmThreshold = 2
	}
	if cfg.StreamThreshold <= 0 {
		cfg.StreamThreshold = 3
	}
	if cfg.Levels < TwoLevel || cfg.Levels > FourLevel {
		cfg.Levels = ThreeLevel
	}
	return &IMP{
		cfg:       cfg,
		hier:      hier,
		mem:       m,
		levels:    make([]indirect, int(cfg.Levels)-1),
		recentOut: make([][]uint64, int(cfg.Levels)-1),
	}
}

// Config returns the prefetcher configuration.
func (p *IMP) Config() Config { return p.cfg }

func (p *IMP) trace(format string, args ...any) {
	if p.TraceFn != nil {
		p.TraceFn(format, args...)
	}
}

// OnAccess implements cache.AccessListener. The IMP trains on demand
// loads only.
func (p *IMP) OnAccess(addr uint64, data uint64, isWrite bool) {
	if isWrite {
		return
	}
	// 1. Stream detection: is this access the next element of a known
	// constant-stride stream?
	if p.active != nil {
		next := p.active.lastAddr + uint64(p.active.stride)
		if addr == next {
			p.active.lastAddr = addr
			p.active.hits++
			p.active.noteValue(data)
			p.advanceStream(addr)
			return
		}
	}
	if p.trainStream(addr, data) {
		return
	}
	// 2. Not a stream access: candidate indirection. The value most
	// recently returned by the stream is the candidate index.
	p.trainIndirect(addr, data)
}

// trainStream updates the stream table; returns true if the access
// belongs to a (possibly newly promoted) stream.
func (p *IMP) trainStream(addr uint64, data uint64) bool {
	// Try to extend an existing tracked stream head (oldest first, so
	// established streams win ties deterministically).
	for _, s := range p.streams {
		if s.stride != 0 && addr == s.lastAddr+uint64(s.stride) {
			s.lastAddr = addr
			s.hits++
			s.noteValue(data)
			if s.hits >= p.cfg.StreamThreshold && p.active != s {
				p.active = s
				p.Stats.StreamsDetected++
				p.trace("imp: stream detected stride=%d at 0x%x", s.stride, addr)
			}
			if p.active == s {
				p.advanceStream(addr)
			}
			return true
		}
		if s.stride == 0 {
			d := int64(addr) - int64(s.lastAddr)
			if d != 0 && d >= -64 && d <= 64 {
				s.stride = d
				s.lastAddr = addr
				s.hits = 2
				s.noteValue(data)
				return true
			}
		}
	}
	// New candidate stream head; replace any stale head from the same
	// 256-byte neighborhood, else append (FIFO-bounded).
	ns := &streamEntry{lastAddr: addr, hits: 1}
	ns.noteValue(data)
	for i, s := range p.streams {
		if s.lastAddr>>8 == addr>>8 && s != p.active {
			p.streams[i] = ns
			return false
		}
	}
	p.streams = append(p.streams, ns)
	if len(p.streams) > 64 {
		// Evict the oldest non-active head.
		for i, s := range p.streams {
			if s != p.active {
				p.streams = append(p.streams[:i], p.streams[i+1:]...)
				break
			}
		}
	}
	return false
}

// trainIndirect walks the indirection chain: the first unconfirmed level
// trains against the previous level's recent output values; a confirmed
// level that explains addr records the observed output value (the next
// level's input) and infers the load width.
func (p *IMP) trainIndirect(addr uint64, data uint64) {
	if p.active == nil || !p.active.valueSeen {
		return
	}
	for k := range p.levels {
		lv := &p.levels[k]
		inputs := p.levelInputs(k)
		if !lv.confirmed {
			if len(inputs) > 0 {
				counter := &p.Stats.IndirectConfirmed
				if k > 0 {
					counter = &p.Stats.Level2Confirmed
				}
				p.train(lv, inputs, addr, counter, fmt.Sprintf("level-%d", k+1))
			}
			return
		}
		if p.matchesAny(lv, inputs, addr) {
			if k+1 < len(p.levels) {
				p.recentOut[k] = append(p.recentOut[k], data)
				if len(p.recentOut[k]) > recentDepth {
					p.recentOut[k] = p.recentOut[k][1:]
				}
			}
			if lv.valueWidth == 0 {
				lv.valueWidth = inferWidth(p.mem, addr, data)
			}
			return
		}
	}
}

// levelInputs returns the recent input values feeding level k: the stream
// values for level 0, the previous level's observed outputs otherwise.
func (p *IMP) levelInputs(k int) []uint64 {
	if k == 0 {
		if p.active == nil {
			return nil
		}
		return p.active.recent
	}
	return p.recentOut[k-1]
}

// inferWidth returns the smallest access width whose little-endian read
// at addr reproduces the observed value.
func inferWidth(m *mem.Memory, addr, data uint64) int {
	for _, w := range []int{1, 2, 4, 8} {
		if m.Read(addr, w) == data {
			return w
		}
	}
	return 4
}

func (p *IMP) matchesAny(ind *indirect, vs []uint64, addr uint64) bool {
	if !ind.confirmed {
		return false
	}
	for _, v := range vs {
		if ind.base+(v<<ind.shift) == addr {
			return true
		}
	}
	return false
}

func (p *IMP) train(ind *indirect, vs []uint64, addr uint64, counter *uint64, name string) {
	// Try to explain addr as base + v<<shift for any recent value v; a
	// (base, shift) hypothesis that stays consistent across observations
	// accumulates hits and is locked at the confirmation threshold.
	tried := map[indirectCandidate]bool{}
	for _, v := range vs {
		for s := uint(0); s <= uint(p.cfg.MaxShift); s++ {
			want := v << s
			if addr < want {
				continue
			}
			base := addr - want
			key := indirectCandidate{base: base, shift: s}
			if tried[key] {
				continue // one hit per observation per hypothesis
			}
			tried[key] = true
			found := false
			for i := range ind.cands {
				c := &ind.cands[i]
				if c.base == base && c.shift == s {
					c.hits++
					found = true
					if c.hits >= p.cfg.ConfirmThreshold {
						ind.confirmed = true
						ind.base = base
						ind.shift = s
						ind.cands = nil
						*counter++
						p.trace("imp: %s indirection locked base=0x%x shift=%d", name, base, s)
						return
					}
				}
			}
			if !found {
				ind.cands = append(ind.cands, indirectCandidate{base: base, shift: s, hits: 1})
			}
		}
	}
	// Bound candidate list.
	if len(ind.cands) > 1024 {
		ind.cands = ind.cands[len(ind.cands)-512:]
	}
}

// levelValueWidth returns the inferred width of level k's output values.
func (p *IMP) levelValueWidth(k int) int {
	if k >= 0 && k < len(p.levels) {
		switch p.levels[k].valueWidth {
		case 1, 2, 4, 8:
			return p.levels[k].valueWidth
		}
	}
	return p.elemWidthOrDefault()
}

func (p *IMP) elemWidthOrDefault() int {
	switch p.elemWidth {
	case 1, 2, 4, 8:
		return p.elemWidth
	}
	return 4
}

// advanceStream fires the prefetch chain for the element Δ ahead of the
// current stream position. This is the operation described by the MLD of
// Figure 3, Example 9: the prefetcher itself makes cache accesses for
// Z[i+Δ], then Y[Z[i+Δ]], then (3-level) X[Y[Z[i+Δ]]] — reading data
// memory directly for the intermediate values, with no bounds awareness.
func (p *IMP) advanceStream(addr uint64) {
	if len(p.levels) == 0 || !p.levels[0].confirmed {
		return
	}
	stride := p.active.stride
	if stride == 0 {
		return
	}
	if p.elemWidth == 0 {
		w := stride
		if w < 0 {
			w = -w
		}
		switch w {
		case 1, 2, 4, 8:
			p.elemWidth = int(w)
		default:
			p.elemWidth = 4
		}
	}
	p.Stats.Prefetches++

	// Index element: Z[i+Δ].
	zAddr := addr + uint64(stride*int64(p.cfg.Delta))
	p.hier.Prefetch(zAddr)
	p.Stats.LinesFetched++
	p.noteRead(zAddr)
	v := p.mem.Read(zAddr, p.elemWidthOrDefault())
	vl := p.shadowRead(zAddr, p.elemWidthOrDefault())
	p.trace("imp: prefetch chain z=0x%x (=%d)", zAddr, v)

	// Chase the chain through every confirmed indirection level, reading
	// data memory directly for each intermediate value — with no bounds
	// awareness at any step.
	for k := range p.levels {
		lv := &p.levels[k]
		if !lv.confirmed {
			break
		}
		a := lv.base + (v << lv.shift)
		if st := p.taintSt; st != nil && vl.Any() {
			// The prefetch address is a function of a labeled value: the
			// resulting cache fill transmits that value (Figure 1).
			st.ObservePrefetch(a, "prefetch address derives from labeled data", vl)
		}
		p.hier.Prefetch(a)
		p.Stats.LinesFetched++
		p.noteRead(a)
		p.trace("imp: prefetch chain level-%d value=%d -> addr 0x%x", k+1, v, a)
		if k+1 < len(p.levels) && p.levels[k+1].confirmed {
			v = p.mem.Read(a, p.levelValueWidth(k))
			vl = p.shadowRead(a, p.levelValueWidth(k))
		}
	}
}

// shadowRead returns the labels of the bytes a chain step reads, firing a
// leak event when they are labeled (the prefetcher read a secret).
func (p *IMP) shadowRead(addr uint64, width int) taint.LabelSet {
	st := p.taintSt
	if st == nil {
		return 0
	}
	l := st.Mem.Read(addr, width)
	if l.Any() {
		st.ObservePrefetch(addr, "prefetcher read labeled bytes", l)
	}
	return l
}

// noteRead updates the diagnostic counters classifying where the
// prefetcher's own data reads land. These counters exist purely for the
// experiment reports; hardware has no such awareness.
func (p *IMP) noteRead(addr uint64) {
	r, ok := p.mem.RegionOf(addr)
	if !ok {
		p.Stats.OutOfBoundsReads++
		return
	}
	if r.Protected {
		p.Stats.ProtectedReads++
	}
}

// ConfirmedDepth returns how many indirection levels are locked.
func (p *IMP) ConfirmedDepth() int {
	n := 0
	for _, lv := range p.levels {
		if lv.confirmed {
			n++
		} else {
			break
		}
	}
	return n
}

// Confirmed reports whether the first and second indirection levels are
// locked (convenience for the 2-/3-level experiments).
func (p *IMP) Confirmed() (lvl1, lvl2 bool) {
	d := p.ConfirmedDepth()
	return d >= 1, d >= 2
}

// LevelMapping returns the locked (base, shift) of indirection level k
// (0-based); ok is false before confirmation.
func (p *IMP) LevelMapping(k int) (base uint64, shift uint, ok bool) {
	if k < 0 || k >= len(p.levels) || !p.levels[k].confirmed {
		return 0, 0, false
	}
	return p.levels[k].base, p.levels[k].shift, true
}

// Lvl1Mapping returns the locked level-1 (base, shift).
func (p *IMP) Lvl1Mapping() (base uint64, shift uint, ok bool) { return p.LevelMapping(0) }

// Lvl2Mapping returns the locked level-2 (base, shift).
func (p *IMP) Lvl2Mapping() (base uint64, shift uint, ok bool) { return p.LevelMapping(1) }

// Reset clears all training state (stream table, candidates, locks).
func (p *IMP) Reset() {
	p.streams = nil
	p.active = nil
	p.levels = make([]indirect, int(p.cfg.Levels)-1)
	p.recentOut = make([][]uint64, int(p.cfg.Levels)-1)
	p.elemWidth = 0
}

func (p *IMP) String() string {
	return fmt.Sprintf("IMP(levels=%d Δ=%d)", p.cfg.Levels, p.cfg.Delta)
}
