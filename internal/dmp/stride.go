package dmp

import "pandora/internal/cache"

// Stride is a conventional per-stream stride prefetcher. It is the
// security baseline: because it consumes only access *addresses* (never
// data memory contents), it leaks nothing beyond the address pattern that
// the baseline architecture already leaks (Table I row "Addr"), and it
// cannot form a universal read gadget.
type Stride struct {
	hier *cache.Hierarchy
	// Degree is how many lines ahead to prefetch (default 2).
	Degree int
	// Threshold is confirmations required before prefetching (default 2).
	Threshold int

	last    uint64
	stride  int64
	hits    int
	started bool

	Prefetches uint64
}

var _ cache.AccessListener = (*Stride)(nil)

// NewStride returns a stride prefetcher attached to hier.
func NewStride(hier *cache.Hierarchy) *Stride {
	return &Stride{hier: hier, Degree: 2, Threshold: 2}
}

// OnAccess implements cache.AccessListener.
func (s *Stride) OnAccess(addr uint64, _ uint64, isWrite bool) {
	if isWrite {
		return
	}
	if !s.started {
		s.last = addr
		s.started = true
		return
	}
	d := int64(addr) - int64(s.last)
	if d == s.stride && d != 0 {
		s.hits++
	} else {
		s.stride = d
		s.hits = 1
	}
	s.last = addr
	if s.hits >= s.Threshold && s.stride != 0 {
		for i := 1; i <= s.Degree; i++ {
			s.Prefetches++
			s.hier.Prefetch(addr + uint64(s.stride*int64(i)))
		}
	}
}
