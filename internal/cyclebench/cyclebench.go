// Package cyclebench measures raw single-core simulation throughput —
// cycles simulated per wall-clock second — over a fixed seeded workload,
// and gates regressions against a committed baseline (BENCH_cycles.json).
//
// The workload is deliberately boring and reproducible: a fixed number of
// diffcheck-generated programs (seeded, guaranteed-terminating) run
// repeatedly on one machine per optimization mask, with invariant checking
// and probes off — the configuration every sweep-style experiment uses.
// The representative masks span the cost spectrum: no optimizations, the
// store-queue-heavy silent-store path, the squash-prone value predictor,
// and everything at once.
//
// Because the metric is wall-clock-derived, a measurement is only
// comparable against a baseline taken on the same CPU configuration;
// reports record NumCPU/GOMAXPROCS at measurement time and the gate
// refuses apples-to-oranges comparisons (and `pandora bench -cycles`
// refuses to overwrite a baseline from a different CPU count without
// -force).
package cyclebench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/diffcheck"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
)

// Schema identifies the report format.
const Schema = "pandora-bench-cycles/v1"

// DefaultTolerance is the fractional cycles/sec regression the gate
// allows before failing (run-to-run noise band).
const DefaultTolerance = 0.10

// Options parameterizes one measurement.
type Options struct {
	// Seed feeds the program generator. The default workload is Seed=1.
	Seed int64
	// Programs is how many generated programs form the workload (default 16).
	Programs int
	// Reps is how many times the whole program set runs per mask
	// (default 12). Total simulated work per mask is Programs×Reps runs.
	Reps int
	// Progress, when non-nil, receives one line per mask.
	Progress func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Programs <= 0 {
		o.Programs = 16
	}
	if o.Reps <= 0 {
		o.Reps = 12
	}
}

// MaskResult is the throughput of one optimization mask.
type MaskResult struct {
	Mask         string  `json:"mask"`
	Cycles       int64   `json:"cycles"`
	Seconds      float64 `json:"seconds"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// Baseline is a prior measurement kept inside the report for trajectory:
// the pre-overhaul throughput the current numbers are compared against in
// README/DESIGN discussions (the CI gate compares against the whole
// committed report instead, so the trajectory keeps ratcheting).
type Baseline struct {
	Date         string  `json:"date"`
	Note         string  `json:"note,omitempty"`
	CyclesPerSec float64 `json:"cycles_per_sec"`
}

// Report is the JSON artifact (BENCH_cycles.json).
type Report struct {
	Schema     string `json:"schema"`
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	Seed     int64 `json:"seed"`
	Programs int   `json:"programs"`
	Reps     int   `json:"reps"`

	Masks []MaskResult `json:"masks"`
	// TotalCyclesPerSec is total simulated cycles over total wall time
	// across every mask — the gate metric.
	TotalCyclesPerSec float64 `json:"total_cycles_per_sec"`

	// BaselineBefore preserves the pre-overhaul measurement this report
	// was first compared against; SpeedupVsBaseline = Total/Baseline.
	BaselineBefore    *Baseline `json:"baseline_before,omitempty"`
	SpeedupVsBaseline float64   `json:"speedup_vs_baseline,omitempty"`
}

// Masks returns the representative optimization masks the workload runs
// under, as (name, mask) pairs.
func Masks() []struct {
	Name string
	Mask diffcheck.ToggleMask
} {
	return []struct {
		Name string
		Mask diffcheck.ToggleMask
	}{
		{"none", 0},
		{"ss", diffcheck.TogSilentStores},
		{"vp", diffcheck.TogPredictor},
		{"all", diffcheck.ToggleMask(diffcheck.AllMasks - 1)},
	}
}

// spinKernel is the long-running half of the workload: a counted loop
// with a load/store pair over the diffcheck scratch region, so the
// steady-state cycle loop (issue wakeup, forwarding, store queue, cache
// hits, silent-store checks under the ss mask, value prediction under vp)
// dominates the measurement rather than per-Run setup. ~9 instructions ×
// 8000 iterations ≈ 10^5 simulated cycles per run.
const spinKernel = `
	addi x1, x0, 8000
	addi x2, x0, 0
	lui  x29, 1
loop:
	ld   x3, 0(x29)
	add  x2, x2, x3
	sd   x2, 8(x29)
	sd   x3, 16(x29)
	addi x1, x1, -1
	bne  x1, x0, loop
	halt
`

// Workload builds the fixed seeded program set: n short generated
// programs (the sweep-shaped half, dominated by Run setup and drain) plus
// the long spin kernel (the steady-state half).
func Workload(seed int64, n int) []isa.Program {
	rng := rand.New(rand.NewSource(seed))
	progs := make([]isa.Program, 0, n+1)
	for i := 0; i < n; i++ {
		progs = append(progs, diffcheck.Generate(rng))
	}
	progs = append(progs, asm.MustAssemble(spinKernel))
	return progs
}

// config builds the sweep-shaped pipeline configuration for one mask:
// diffcheck's per-mask optimization wiring, but with the differential
// harness's invariant checking off — this is the throughput path.
func config(mask diffcheck.ToggleMask) pipeline.Config {
	c := diffcheck.PipeConfig(mask)
	c.CheckInvariants = false
	return c
}

// Measure runs the workload and returns a fresh report (no baseline
// attached; the caller carries one forward from the committed file).
func Measure(opts Options) (Report, error) {
	opts.defaults()
	progs := Workload(opts.Seed, opts.Programs)

	rep := Report{
		Schema:     Schema,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       opts.Seed,
		Programs:   opts.Programs,
		Reps:       opts.Reps,
	}

	var totalCycles int64
	var totalSecs float64
	for _, mk := range Masks() {
		memory := mem.New()
		diffcheck.InitMemory(memory)
		m, err := pipeline.New(config(mk.Mask), memory, cache.MustNewHierarchy(cache.DefaultHierConfig()))
		if err != nil {
			return rep, fmt.Errorf("cyclebench: mask %s: %w", mk.Name, err)
		}
		var cycles int64
		start := time.Now()
		for r := 0; r < opts.Reps; r++ {
			for _, p := range progs {
				res, err := m.Run(p)
				if err != nil {
					return rep, fmt.Errorf("cyclebench: mask %s: %w", mk.Name, err)
				}
				cycles += res.Cycles
			}
		}
		secs := time.Since(start).Seconds()
		mr := MaskResult{Mask: mk.Name, Cycles: cycles, Seconds: round(secs)}
		if secs > 0 {
			mr.CyclesPerSec = round(float64(cycles) / secs)
		}
		rep.Masks = append(rep.Masks, mr)
		totalCycles += cycles
		totalSecs += secs
		if opts.Progress != nil {
			opts.Progress("bench -cycles: mask %-4s %12d cycles in %6.2fs = %11.0f cycles/sec",
				mk.Name, cycles, secs, mr.CyclesPerSec)
		}
	}
	if totalSecs > 0 {
		rep.TotalCyclesPerSec = round(float64(totalCycles) / totalSecs)
	}
	return rep, nil
}

// round trims float noise so the JSON artifact diffs cleanly.
func round(v float64) float64 { return float64(int64(v*100)) / 100 }

// ReadFile loads a committed report.
func ReadFile(path string) (Report, error) {
	var rep Report
	b, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		return rep, fmt.Errorf("cyclebench: %s: %w", path, err)
	}
	if rep.Schema != Schema {
		return rep, fmt.Errorf("cyclebench: %s: schema %q, want %q", path, rep.Schema, Schema)
	}
	return rep, nil
}

// WriteFile writes the report as indented JSON.
func (r Report) WriteFile(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// SameCPU reports whether two reports were measured under the same CPU
// configuration (the precondition for comparing wall-clock throughput).
func (r Report) SameCPU(o Report) bool {
	return r.NumCPU == o.NumCPU && r.GOMAXPROCS == o.GOMAXPROCS
}

// Compare gates current against baseline: an error describes a
// regression beyond tolerance (current more than tolerance slower than
// the committed baseline); ok=false with a nil error means the reports
// are not comparable (different CPU configuration) and the gate must not
// conclude anything.
func Compare(current, baseline Report, tolerance float64) (ok bool, err error) {
	if !current.SameCPU(baseline) {
		return false, nil
	}
	floor := baseline.TotalCyclesPerSec * (1 - tolerance)
	if current.TotalCyclesPerSec < floor {
		return true, fmt.Errorf(
			"cycles/sec regression: measured %.0f, committed baseline %.0f (floor %.0f at %.0f%% tolerance)",
			current.TotalCyclesPerSec, baseline.TotalCyclesPerSec, floor, tolerance*100)
	}
	return true, nil
}
