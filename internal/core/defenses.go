package core

import (
	"fmt"
	"math/rand"
	"strings"

	"pandora/internal/attack"
	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
	"pandora/internal/uopt"
)

// Section VI-A2: "retrofitting constant-time programming". Two of the
// paper's proposed software mitigations, evaluated against the attacks
// they target:
//
//  1. Targeted clearing of data memory (zero the spilled intermediates
//     after each call) against the silent-store attack.
//  2. OR-ing a 1 into the most-significant bit position of operands
//     against significance/pipeline compression.
//
// Both restore secrecy; both cost the optimization's benefit — the
// trade-off the paper flags.

func init() {
	register(&Experiment{
		Name: "defenses", Artifact: "Section VI-A2",
		Title: "Retrofitted constant-time defenses: spill clearing and MSB pinning",
		Run:   runDefenses,
	})
}

func runDefenses(o Options) (Result, error) {
	var b strings.Builder
	metrics := map[string]float64{}
	b.WriteString("Section VI-A2 — retrofitting constant-time programming\n\n")

	// --- Defense 1: targeted clearing vs silent stores ---
	var vk, vp, ak [16]byte
	rng := rand.New(rand.NewSource(0xDEF))
	rng.Read(vk[:])
	rng.Read(vp[:])
	rng.Read(ak[:])

	undefended, err := attack.NewBSAESAttack(attack.DefaultBSAESConfig(), vk, vp, ak)
	if err != nil {
		return Result{}, err
	}
	silentC, nonSilentC, err := undefended.Calibrate()
	if err != nil {
		return Result{}, err
	}
	truth := undefended.VictimSlices()
	got, ok, err := undefended.RecoverSliceDirect(0, []uint16{truth[0]})
	if err != nil {
		return Result{}, err
	}
	undefendedWorks := ok && got == truth[0]

	defCfg := attack.DefaultBSAESConfig()
	defCfg.ClearSpills = true
	defended, err := attack.NewBSAESAttack(defCfg, vk, vp, ak)
	if err != nil {
		return Result{}, err
	}
	// In-place calibration is itself broken by the defense (the attacker
	// can never produce a silent reference against cleared memory); carry
	// the undefended threshold over, as a strong attacker would.
	defended.SetThreshold((silentC + nonSilentC) / 2)
	_, okDefended, err := defended.RecoverSliceDirect(0, []uint16{truth[0]})
	if err != nil {
		return Result{}, err
	}

	fmt.Fprintf(&b, "1. Targeted spill clearing vs the silent-store attack\n")
	fmt.Fprintf(&b, "   undefended server: correct guess detected = %v\n", undefendedWorks)
	fmt.Fprintf(&b, "   clearing server:   correct guess detected = %v\n", okDefended)
	fmt.Fprintf(&b, "   (the attacker's store can only silently match the cleared zeros,\n")
	fmt.Fprintf(&b, "    which reveal nothing about the victim)\n\n")
	metrics["clearing_blocks"] = b2f(undefendedWorks && !okDefended)

	// --- Defense 2: MSB pinning vs operand packing ---
	packKernel := func(secret uint64, pinMSB bool) string {
		pin := ""
		if pinMSB {
			pin = `
		addi x8, x0, 1
		slli x8, x8, 40      # the mitigation: pin a high bit
		or   x1, x1, x8
		or   x2, x2, x8`
		}
		return fmt.Sprintf(`
		addi x1, x0, %d      # secret operand
		addi x2, x0, 7%s
		addi x9, x0, 48
	loop:
		add  x3, x1, x2
		add  x4, x1, x2
		add  x5, x1, x2
		add  x6, x1, x2
		addi x9, x9, -1
		bne  x9, x0, loop
		halt
	`, secret, pin)
	}
	runPack := func(secret uint64, pinMSB bool) (int64, error) {
		cfg := pipeline.DefaultConfig()
		cfg.ALUPorts = 1
		cfg.Packer = uopt.NewPacker()
		m, err := pipeline.New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
		if err != nil {
			return 0, err
		}
		prog, err := asmMust(packKernel(secret, pinMSB))
		if err != nil {
			return 0, err
		}
		res, err := m.Run(prog)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	nNarrow, err := runPack(12, false)
	if err != nil {
		return Result{}, err
	}
	nWide, err := runPack(1<<20, false)
	if err != nil {
		return Result{}, err
	}
	pNarrow, err := runPack(12, true)
	if err != nil {
		return Result{}, err
	}
	pWide, err := runPack(1<<20, true)
	if err != nil {
		return Result{}, err
	}
	leakBefore := abs64(nNarrow - nWide)
	leakAfter := abs64(pNarrow - pWide)
	cost := pNarrow - nNarrow

	fmt.Fprintf(&b, "2. MSB pinning vs operand packing (pipeline compression)\n")
	fmt.Fprintf(&b, "   unmitigated: narrow-secret %d cycles, wide-secret %d cycles (leak Δ=%d)\n",
		nNarrow, nWide, leakBefore)
	fmt.Fprintf(&b, "   OR 1<<40:    narrow-secret %d cycles, wide-secret %d cycles (leak Δ=%d)\n",
		pNarrow, pWide, leakAfter)
	fmt.Fprintf(&b, "   mitigation cost: +%d cycles — security back, the optimization's benefit gone\n\n", cost)
	metrics["pack_leak_before"] = float64(leakBefore)
	metrics["pack_leak_after"] = float64(leakAfter)
	metrics["pack_cost"] = float64(cost)

	b.WriteString("3. Architecting the optimization securely (Sn reuse) is evaluated by\n" +
		"   the `reuse` experiment: same protection, far lower cost.\n")

	pass := undefendedWorks && !okDefended && leakBefore > 0 && leakAfter == 0
	return Result{Name: "defenses", Text: b.String(), Metrics: metrics, Pass: pass}, nil
}
