package core

import (
	"testing"

	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
	"pandora/internal/taint"
)

// TestWitnessScanPairing checks the pairing discipline between the
// timing witnesses and the taint scanner: every witness kernel, run with
// its secret word labeled, produces zero leak events on the baseline
// machine (the configuration where the timing runs also show no
// secret-dependent cycles) and at least one event with the optimization
// enabled — for both contrasted secret values, since the trigger
// condition's *dependence* on the secret does not depend on which value
// the secret holds.
func TestWitnessScanPairing(t *testing.T) {
	for _, w := range witnesses() {
		w := w
		t.Run(w.name, func(t *testing.T) {
			scan := func(mk func() pipeline.Config, secret uint64) *taint.State {
				t.Helper()
				m := mem.New()
				h := cache.MustNewHierarchy(cache.DefaultHierConfig())
				if w.setup != nil {
					w.setup(m, h)
				}
				m.Write(witnessSecretAddr, 8, secret)
				st := taint.NewState()
				if _, err := st.DefineSecret(taint.Secret{Name: "secret", Base: witnessSecretAddr, Len: 8}); err != nil {
					t.Fatal(err)
				}
				cfg := mk()
				cfg.Taint = st
				mach, err := pipeline.New(cfg, m, h)
				if err != nil {
					t.Fatal(err)
				}
				prog, err := asmMust(w.kernel)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := mach.Run(prog); err != nil {
					t.Fatal(err)
				}
				return st
			}
			for _, secret := range w.secrets {
				if st := scan(w.baseline, secret); st.Rec.Total() != 0 {
					t.Errorf("baseline secret=%d: %d leak events, want 0 (first: %+v)",
						secret, st.Rec.Total(), st.Rec.Events[0])
				}
				if st := scan(w.config, secret); st.Rec.Total() == 0 {
					t.Errorf("enabled secret=%d: no leak events", secret)
				}
			}
		})
	}
}
