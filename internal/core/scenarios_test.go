package core

import (
	"context"
	"testing"
)

// TestScenarioRegistryBuiltins pins the built-in table: the eight core
// scenarios are present, in their historical display order, with their
// historical capabilities — the compatibility contract the registry
// conversion had to preserve.
func TestScenarioRegistryBuiltins(t *testing.T) {
	want := []struct {
		name        string
		scan, trace bool
	}{
		{"aes", true, true},
		{"aes-baseline", true, true},
		{"ebpf", true, true},
		{"stlf", true, true},
		{"stlf-baseline", true, false},
		{"specvect", true, true},
		{"specvect-baseline", true, false},
		{"sweep", false, true},
	}
	all := Scenarios()
	if len(all) < len(want) {
		t.Fatalf("registry has %d scenarios, want at least %d", len(all), len(want))
	}
	for i, w := range want {
		s := all[i]
		if s.Name != w.name {
			t.Fatalf("display position %d is %q, want %q", i, s.Name, w.name)
		}
		if s.Supports(AnalysisScan) != w.scan || s.Supports(AnalysisTrace) != w.trace {
			t.Errorf("%s: scan=%v trace=%v, want scan=%v trace=%v",
				s.Name, s.Supports(AnalysisScan), s.Supports(AnalysisTrace), w.scan, w.trace)
		}
	}
}

// TestScenarioNamesMatchSupports: the name lists the front ends print
// are exactly the Supports-filtered registry, and every named scenario
// resolves.
func TestScenarioNamesMatchSupports(t *testing.T) {
	for _, a := range []Analysis{AnalysisScan, AnalysisTrace} {
		names := ScenarioNames(a)
		if len(names) == 0 {
			t.Fatalf("no scenarios support %s", a)
		}
		for _, name := range names {
			s, ok := ScenarioByName(name)
			if !ok {
				t.Fatalf("%s list names unknown scenario %q", a, name)
			}
			if !s.Supports(a) {
				t.Fatalf("%s list includes %q which does not support %s", a, name, a)
			}
		}
	}
}

// TestRegisterScenarioPanics: the init-time misuse guards have teeth.
func TestRegisterScenarioPanics(t *testing.T) {
	expectPanic := func(name string, s Scenario) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterScenario did not panic", name)
			}
		}()
		RegisterScenario(s)
	}
	scan := func(ctx context.Context) (ScanSummary, error) { return ScanSummary{}, nil }
	expectPanic("empty name", Scenario{Scan: scan})
	expectPanic("no analysis", Scenario{Name: "no-analysis-at-all"})
	expectPanic("duplicate", Scenario{Name: "aes", Scan: scan})
}

// TestScanScenarioRejectsTraceOnly: asking the wrong front end for a
// scenario is an error naming the supported set, not a nil-call panic.
func TestScanScenarioRejectsTraceOnly(t *testing.T) {
	if _, err := ScanScenario(context.Background(), "sweep"); err == nil {
		t.Fatal("scan of trace-only scenario succeeded")
	}
	if _, err := RunTrace(context.Background(), "stlf-baseline", 0, 1); err == nil {
		t.Fatal("trace of scan-only scenario succeeded")
	}
}
