package core

import (
	"fmt"
	"strings"

	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
	"pandora/internal/uopt"
)

// Section VI-B: continuous/trace-based optimization "only creates novel
// security implications in specific circumstances". This experiment
// measures both ends of the spectrum the paper describes:
//
//   - µ-op fusion (implemented today): the fusion predicate is opcodes
//     and register names — pure control-flow information — so no operand
//     data reaches the observable. Safe.
//   - strength reduction keyed on a specific operand's value: manifests
//     "due to specific operand data beyond control flow". Unsafe.

func init() {
	register(&Experiment{
		Name: "continuous", Artifact: "Section VI-B",
		Title: "Continuous optimization: µ-op fusion is safe, strength reduction is not",
		Run:   runContinuous,
	})
}

func runContinuous(Options) (Result, error) {
	var b strings.Builder
	metrics := map[string]float64{}
	b.WriteString("Section VI-B — continuous/trace-based optimization\n\n")

	// --- µ-op fusion: data-independent speed-up ---
	fusionKernel := func(secret int64) string {
		// A self-referential pointer chase puts the addi+load pair on the
		// loop-carried critical path; a second fused pair reads the
		// secret, so any data dependence would surface as time.
		return fmt.Sprintf(`
			addi x2, x0, 0x700
			sd   x2, 0x700(x0)    # mem[0x700] = 0x700 (self loop)
			addi x2, x0, %d
			sd   x2, 0x708(x0)    # mem[0x708] = secret
			fence
			addi x9, x0, 40
			addi x3, x0, 0x700
		loop:
			addi x1, x3, 0        # fused pair on the critical path
			ld   x3, 0(x1)
			addi x4, x3, 8        # fused pair reading the secret
			ld   x5, 0(x4)
			addi x9, x9, -1
			bne  x9, x0, loop
			halt
		`, secret)
	}
	runF := func(fuse bool, secret int64) (int64, error) {
		cfg := pipeline.DefaultConfig()
		cfg.FuseAddiLoad = fuse
		m, err := pipeline.New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
		if err != nil {
			return 0, err
		}
		prog, err := asmMust(fusionKernel(secret))
		if err != nil {
			return 0, err
		}
		res, err := m.Run(prog)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	fusedA, err := runF(true, 7)
	if err != nil {
		return Result{}, err
	}
	fusedB, err := runF(true, 123456789)
	if err != nil {
		return Result{}, err
	}
	unfused, err := runF(false, 7)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "µ-op fusion (addi+load):\n")
	fmt.Fprintf(&b, "  benefit : %d -> %d cycles (fusion on)\n", unfused, fusedA)
	fmt.Fprintf(&b, "  leak    : secret A %d cycles, secret B %d cycles (Δ = %d — fusion keys on opcodes, not data)\n\n",
		fusedA, fusedB, abs64(fusedA-fusedB))
	metrics["fusion_benefit"] = float64(unfused - fusedA)
	metrics["fusion_leak"] = float64(abs64(fusedA - fusedB))

	// --- Strength reduction: operand-keyed speed-up ---
	srKernel := func(secret int64) string {
		return fmt.Sprintf(`
			addi x1, x0, %d
			addi x2, x0, 12345
			addi x5, x0, 48
		loop:
			mul  x3, x2, x1
			mul  x3, x3, x1
			addi x5, x5, -1
			bne  x5, x0, loop
			halt
		`, secret)
	}
	runSR := func(secret int64) (int64, error) {
		cfg := pipeline.DefaultConfig()
		cfg.Simplifier = &uopt.Simplifier{StrengthReduction: true}
		m, err := pipeline.New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
		if err != nil {
			return 0, err
		}
		prog, err := asmMust(srKernel(secret))
		if err != nil {
			return 0, err
		}
		res, err := m.Run(prog)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	pow2, err := runSR(64)
	if err != nil {
		return Result{}, err
	}
	odd, err := runSR(65)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "strength reduction (mul by power of two -> shift):\n")
	fmt.Fprintf(&b, "  leak    : secret=64 %d cycles, secret=65 %d cycles (Δ = %d — whether the\n",
		pow2, odd, odd-pow2)
	fmt.Fprintf(&b, "            secret is a power of two is observable)\n\n")
	metrics["strengthred_leak"] = float64(odd - pow2)

	b.WriteString("The dividing line the paper draws: an optimization whose trigger is a\n" +
		"function of instruction identity leaks only control flow (already public\n" +
		"to constant-time code); one whose trigger reads operand values is a new\n" +
		"transmitter.\n")

	pass := metrics["fusion_benefit"] > 0 && metrics["fusion_leak"] == 0 && metrics["strengthred_leak"] > 0
	return Result{Name: "continuous", Text: b.String(), Metrics: metrics, Pass: pass}, nil
}
