package core

import (
	"testing"

	"pandora/internal/pipeline"
)

func TestParseMachineSpec(t *testing.T) {
	cfg, err := ParseMachineSpec("silentstores,compsimp,packing,reuse-sv,vp:3,rfc-any,sq=5,rob=32,prf=48,alu=4,ld=1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SilentStores == nil || cfg.SilentStores.Scheme != pipeline.SSReadPortStealing {
		t.Error("silentstores not configured")
	}
	if cfg.Simplifier == nil || !cfg.Simplifier.ZeroSkipMul {
		t.Error("compsimp not configured")
	}
	if cfg.Packer == nil || cfg.Reuse == nil || cfg.Predictor == nil {
		t.Error("packing/reuse/vp not configured")
	}
	if cfg.SQSize != 5 || cfg.ROBSize != 32 || cfg.PhysRegs != 48 || cfg.ALUPorts != 4 || cfg.LoadPorts != 1 {
		t.Errorf("sizing overrides not applied: %+v", cfg)
	}
}

func TestParseMachineSpecVariants(t *testing.T) {
	cfg, err := ParseMachineSpec("silentstores-lsq,vp-stride,strengthred")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SilentStores.Scheme != pipeline.SSLSQCompare {
		t.Error("lsq scheme not selected")
	}
	if cfg.Predictor == nil {
		t.Error("stride predictor not selected")
	}
	if cfg.Simplifier == nil || !cfg.Simplifier.StrengthReduction {
		t.Error("strength reduction not selected")
	}
}

func TestParseMachineSpecSpeculation(t *testing.T) {
	cfg, err := ParseMachineSpec("spec,stlf,staddr=4")
	if err != nil {
		t.Fatal(err)
	}
	sp := cfg.Speculation
	if sp == nil || !sp.WrongPath || !sp.Bimodal || !sp.StLF {
		t.Errorf("spec,stlf misconfigured: %+v", sp)
	}
	if cfg.StoreAddrLat != 4 {
		t.Errorf("StoreAddrLat = %d, want 4", cfg.StoreAddrLat)
	}

	cfg, err = ParseMachineSpec("wrongpath:12")
	if err != nil {
		t.Fatal(err)
	}
	if sp = cfg.Speculation; sp == nil || !sp.WrongPath || sp.Bimodal || sp.MaxWrongPath != 12 {
		t.Errorf("wrongpath:12 misconfigured: %+v", sp)
	}

	cfg, err = ParseMachineSpec("bimodal")
	if err != nil {
		t.Fatal(err)
	}
	if sp = cfg.Speculation; sp == nil || sp.WrongPath || !sp.Bimodal {
		t.Errorf("bimodal misconfigured: %+v", sp)
	}
}

func TestParseMachineSpecErrors(t *testing.T) {
	for _, spec := range []string{"bogus", "vp:x", "sq=0", "sq=-3"} {
		if _, err := ParseMachineSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	if cfg, err := ParseMachineSpec("  "); err != nil || cfg.FetchWidth == 0 {
		t.Error("empty spec must yield the default baseline")
	}
}
