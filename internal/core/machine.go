package core

import (
	"strconv"
	"strings"

	"pandora/internal/pipeline"
	"pandora/internal/uopt"
)

// ParseMachineSpec builds a pipeline configuration from a comma-separated
// feature list, for the CLI's `run` subcommand and for scripting
// experiments. Supported features:
//
//	silentstores        read-port-stealing silent stores
//	silentstores-lsq    LSQ-compare silent stores
//	compsimp            zero-skip mul + trivial ops + early-exit div
//	strengthred         strength reduction (mul/div by powers of two)
//	packing             operand packing (pipeline compression)
//	fusion              addi+load µ-op fusion (safe continuous optimization)
//	reuse-sv / reuse-sn computation reuse, value- or name-keyed
//	vp[:N]              last-value prediction (confidence threshold N)
//	vp-stride[:N]       stride value prediction
//	rfc-any / rfc-01    register-file compression variants
//	spec                wrong-path fetch + bimodal direction prediction
//	wrongpath[:N]       wrong-path fetch only (at most N wrong-path µops)
//	bimodal             bimodal direction predictor only
//	stlf                speculative store-to-load forwarding predictor
//	staddr=N            store address resolution latency (StLF window)
//	sq=N, rob=N, prf=N, alu=N, ld=N  sizing overrides
//
// An empty spec returns the default baseline.
func ParseMachineSpec(spec string) (pipeline.Config, error) {
	cfg := pipeline.DefaultConfig()
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, raw := range strings.Split(spec, ",") {
		f := strings.TrimSpace(raw)
		if f == "" {
			continue
		}
		name, arg := f, ""
		if i := strings.IndexAny(f, ":="); i >= 0 {
			name, arg = f[:i], f[i+1:]
		}
		argN := func(def int) (int, error) {
			if arg == "" {
				return def, nil
			}
			n, err := strconv.Atoi(arg)
			if err != nil || n <= 0 {
				return 0, &SpecError{Feature: name, Arg: arg, Reason: "bad argument"}
			}
			return n, nil
		}
		var err error
		switch name {
		case "silentstores":
			cfg.SilentStores = &pipeline.SilentStoreConfig{}
		case "silentstores-lsq":
			cfg.SilentStores = &pipeline.SilentStoreConfig{Scheme: pipeline.SSLSQCompare}
		case "compsimp":
			cfg.Simplifier = &uopt.Simplifier{ZeroSkipMul: true, TrivialALU: true, EarlyExitDiv: true}
		case "strengthred":
			if cfg.Simplifier == nil {
				cfg.Simplifier = &uopt.Simplifier{}
			}
			cfg.Simplifier.StrengthReduction = true
		case "packing":
			cfg.Packer = uopt.NewPacker()
		case "fusion":
			cfg.FuseAddiLoad = true
		case "reuse-sv":
			cfg.Reuse = uopt.NewReuseBuffer(uopt.SchemeSv, 64)
		case "reuse-sn":
			cfg.Reuse = uopt.NewReuseBuffer(uopt.SchemeSn, 64)
		case "vp":
			n, e := argN(2)
			if e != nil {
				return cfg, e
			}
			cfg.Predictor = uopt.NewPredictor(n)
		case "vp-stride":
			n, e := argN(2)
			if e != nil {
				return cfg, e
			}
			cfg.Predictor = uopt.NewStridePredictor(n)
		case "rfc-any":
			cfg.RFC = uopt.RFCAnyValue
		case "rfc-01":
			cfg.RFC = uopt.RFCZeroOne
		case "spec":
			speculation(&cfg).WrongPath = true
			speculation(&cfg).Bimodal = true
		case "wrongpath":
			n, e := argN(0)
			if e != nil {
				return cfg, e
			}
			speculation(&cfg).WrongPath = true
			speculation(&cfg).MaxWrongPath = n
		case "bimodal":
			speculation(&cfg).Bimodal = true
		case "stlf":
			speculation(&cfg).StLF = true
		case "staddr":
			cfg.StoreAddrLat, err = argN(cfg.StoreAddrLat)
		case "sq":
			cfg.SQSize, err = argN(cfg.SQSize)
		case "rob":
			cfg.ROBSize, err = argN(cfg.ROBSize)
		case "prf":
			cfg.PhysRegs, err = argN(cfg.PhysRegs)
		case "alu":
			cfg.ALUPorts, err = argN(cfg.ALUPorts)
		case "ld":
			cfg.LoadPorts, err = argN(cfg.LoadPorts)
		default:
			return cfg, &SpecError{Feature: name, Reason: "unknown feature"}
		}
		if err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// MachineFeatures lists the spec grammar for CLI help.
func MachineFeatures() string {
	return "silentstores silentstores-lsq compsimp strengthred packing fusion reuse-sv reuse-sn " +
		"vp[:N] vp-stride[:N] rfc-any rfc-01 spec wrongpath[:N] bimodal stlf staddr=N sq=N rob=N prf=N alu=N ld=N"
}

// speculation returns cfg's speculation block, creating it on first use so
// the spec/wrongpath/bimodal/stlf features compose in any order.
func speculation(cfg *pipeline.Config) *pipeline.SpeculationConfig {
	if cfg.Speculation == nil {
		cfg.Speculation = &pipeline.SpeculationConfig{}
	}
	return cfg.Speculation
}
