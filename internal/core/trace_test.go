package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"pandora/internal/obs"
)

// sweepJSONL runs the sweep scenario and exports it as JSONL.
func sweepJSONL(t *testing.T, seed int64, workers int) []byte {
	t.Helper()
	res, err := RunTrace(context.Background(), "sweep", seed, workers)
	if err != nil {
		t.Fatalf("sweep workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceSweepDeterministicAcrossWorkers pins the ISSUE acceptance
// criterion: the same seed produces byte-identical JSONL at every
// worker count.
func TestTraceSweepDeterministicAcrossWorkers(t *testing.T) {
	ref := sweepJSONL(t, 7, 1)
	if len(ref) == 0 {
		t.Fatal("empty sweep trace")
	}
	for _, workers := range []int{2, 8} {
		if got := sweepJSONL(t, 7, workers); !bytes.Equal(got, ref) {
			t.Errorf("sweep JSONL differs between workers=1 and workers=%d", workers)
		}
	}
	if bytes.Equal(sweepJSONL(t, 8, 1), ref) {
		t.Error("different seeds produced identical sweep traces")
	}
}

// TestTraceAESChromeCycles pins the other acceptance criterion: the
// Chrome export of the aes scenario is valid JSON and its retire
// track's maximum timestamp equals the scenario's cycle count.
func TestTraceAESChromeCycles(t *testing.T) {
	res, err := RunTrace(context.Background(), "aes", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 {
		t.Fatalf("aes scenario reported %d cycles", res.Cycles)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Ts  int64  `json:"ts"`
			Tid int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	max := int64(-1)
	for _, e := range file.TraceEvents {
		if e.Ph != "M" && e.Tid == int(obs.TrackRetire) && e.Ts > max {
			max = e.Ts
		}
	}
	if max != res.Cycles {
		t.Errorf("chrome retire-track max ts = %d, want Cycles = %d", max, res.Cycles)
	}
	// The silent-store precondition must be visible in the trace.
	if res.Trace.CountKind(obs.KindTaintLeak) == 0 {
		t.Error("aes scenario trace has no taint-leak events")
	}
}

// TestTraceScenarioErrors covers the unknown-scenario path.
func TestTraceScenarioErrors(t *testing.T) {
	if _, err := RunTrace(context.Background(), "nope", 1, 1); err == nil {
		t.Error("unknown scenario did not error")
	}
}
