package core

import (
	"reflect"
	"testing"
)

// TestSerialParallelEquivalence is the parallel engine's contract: every
// registered experiment must produce a bit-identical Result — report
// text, every metric, and the pass verdict — at any worker count. Work
// is sharded by item index with per-item RNG seeds and merged in item
// order, so Parallel=1 (the serial path) and Parallel=N may differ only
// in wall-clock time.
func TestSerialParallelEquivalence(t *testing.T) {
	opts := Options{Samples: 8, SecretLen: 2}
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			serialOpts := opts
			serialOpts.Parallel = 1
			want, err := e.Run(serialOpts)
			if err != nil {
				t.Fatalf("%s serial: %v", e.Name, err)
			}
			for _, workers := range []int{2, 8} {
				parOpts := opts
				parOpts.Parallel = workers
				got, err := e.Run(parOpts)
				if err != nil {
					t.Fatalf("%s parallel=%d: %v", e.Name, workers, err)
				}
				if got.Text != want.Text {
					t.Errorf("%s: report text diverges at Parallel=%d\n--- serial ---\n%s\n--- parallel ---\n%s",
						e.Name, workers, want.Text, got.Text)
				}
				if !reflect.DeepEqual(got.Metrics, want.Metrics) {
					t.Errorf("%s: metrics diverge at Parallel=%d\nserial:   %v\nparallel: %v",
						e.Name, workers, want.Metrics, got.Metrics)
				}
				if got.Pass != want.Pass {
					t.Errorf("%s: pass verdict diverges at Parallel=%d (serial %v, parallel %v)",
						e.Name, workers, want.Pass, got.Pass)
				}
			}
		})
	}
}

// TestKeyRecoveryParallelWorkerCounts pins the headline artifact: the
// recovered AES key must be byte-identical at every worker count.
func TestKeyRecoveryParallelWorkerCounts(t *testing.T) {
	e, ok := Get("keyrec")
	if !ok {
		t.Fatal("keyrec not registered")
	}
	var texts []string
	for _, workers := range []int{1, 2, 8} {
		res, err := e.Run(Options{Parallel: workers})
		if err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if !res.Pass {
			t.Fatalf("parallel=%d: key not recovered:\n%s", workers, res.Text)
		}
		texts = append(texts, res.Text)
	}
	for i := 1; i < len(texts); i++ {
		if texts[i] != texts[0] {
			t.Errorf("recovered-key report differs between worker counts:\n%s\nvs\n%s", texts[0], texts[i])
		}
	}
}
