package core

import (
	"context"
	"fmt"
	"strings"

	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/parallel"
	"pandora/internal/pipeline"
	"pandora/internal/uopt"
)

// This file provides measured *timing witnesses* for the Table I analysis:
// for each optimization class, a pair of victim kernels that differ only
// in a secret value. With the optimization enabled the cycle counts
// differ (the leak); on the baseline they are identical (the data was
// safe). These runs turn the MLD-derived table into observed pipeline
// behavior.

// witnessSecretAddr is the memory word every witness kernel loads its
// secret from. Keeping the secret in memory (instead of an immediate)
// means the same kernels serve two masters: the timing runs contrast two
// planted values, and the taint scanner labels the word and checks that
// leak events appear exactly when the optimization is enabled
// (TestWitnessScanPairing).
const witnessSecretAddr = 0x7100

// witness is one paired-kernel experiment.
type witness struct {
	name     string
	item     string // the Table I row it witnesses
	config   func() pipeline.Config
	baseline func() pipeline.Config
	// kernel is the victim program text; it loads the secret from
	// witnessSecretAddr.
	kernel string
	// secrets are the two values to contrast.
	secrets [2]uint64
	// setup optionally preconditions memory/caches.
	setup func(m *mem.Memory, h *cache.Hierarchy)
}

func base() pipeline.Config { return pipeline.DefaultConfig() }

// rfcWitnessConfig is a wide core with a deliberately tight physical
// register file, so rename — not issue — is the bottleneck and register
// sharing has an observable effect.
func rfcWitnessConfig() pipeline.Config {
	c := base()
	c.PhysRegs = 48
	c.ROBSize = 128
	c.IQSize = 96
	c.FetchWidth = 8
	c.RetireWidth = 8
	c.ALUPorts = 8
	return c
}

// stlfWitnessConfig delays store address resolution (the window the
// forwarding predictor speculates across) and stretches the squash bubble
// so a single mis-forward replay is not hidden under the post-halt store
// drain. The baseline shares the config, so the contrast isolates the
// predictor itself; the baseline never squashes.
func stlfWitnessConfig() pipeline.Config {
	c := base()
	c.StoreAddrLat = 6
	c.SquashPenalty = 48
	return c
}

func witnesses() []witness {
	return []witness{
		{
			name: "zero-skip multiply", item: "Operands: Int mul (CS)",
			config: func() pipeline.Config {
				c := base()
				c.Simplifier = &uopt.Simplifier{ZeroSkipMul: true}
				return c
			},
			baseline: base,
			kernel: `
				addi x28, x0, 0x7100
				ld   x1, 0(x28)     # secret operand
				addi x2, x0, 12345
				addi x5, x0, 64
			loop:
				mul  x3, x1, x2     # dependent chain of multiplies
				mul  x3, x1, x3
				addi x5, x5, -1
				bne  x5, x0, loop
				halt
			`,
			secrets: [2]uint64{0, 3},
		},
		{
			name: "early-exit division", item: "Operands: Int div (CS)",
			config: func() pipeline.Config {
				c := base()
				c.Simplifier = &uopt.Simplifier{EarlyExitDiv: true}
				return c
			},
			baseline: base,
			kernel: `
				addi x28, x0, 0x7100
				ld   x1, 0(x28)     # secret dividend
				addi x2, x0, 3
				addi x5, x0, 32
			loop:
				div  x3, x1, x2
				addi x5, x5, -1
				bne  x5, x0, loop
				halt
			`,
			secrets: [2]uint64{9, 0x7fffffff},
		},
		{
			name: "operand packing", item: "Operands: Int simple ops (PC)",
			config: func() pipeline.Config {
				c := base()
				c.ALUPorts = 1
				c.Packer = uopt.NewPacker()
				return c
			},
			baseline: func() pipeline.Config {
				c := base()
				c.ALUPorts = 1
				return c
			},
			// Independent add pairs: all-narrow operands co-issue on
			// the single ALU port when packing is enabled.
			kernel: `
				addi x28, x0, 0x7100
				ld   x1, 0(x28)     # secret operand
				addi x2, x0, 7
				addi x9, x0, 48
			loop:
				add  x3, x1, x2
				add  x4, x1, x2
				add  x5, x1, x2
				add  x6, x1, x2
				addi x9, x9, -1
				bne  x9, x0, loop
				halt
			`,
			secrets: [2]uint64{12, 1 << 20},
		},
		{
			name: "computation reuse (Sv)", item: "Operands: Int mul (CR)",
			config: func() pipeline.Config {
				c := base()
				c.Reuse = uopt.NewReuseBuffer(uopt.SchemeSv, 64)
				return c
			},
			baseline: base,
			// The multiply's operand alternates between 1000 and the
			// secret each iteration. If the secret equals 1000, every
			// dynamic instance matches the memoized operands and the
			// chain collapses to reuse hits; otherwise every lookup
			// misses against the previous iteration's entry.
			kernel: `
				addi x28, x0, 0x7100
				addi x1, x0, 1000
				ld   x2, 0(x28)     # secret: equals 1000 or not
				addi x4, x0, 3
				addi x9, x0, 40
			loop:
				mul  x5, x1, x4     # memoized instance (operand alternates)
				mul  x7, x5, x4     # dependent multiply: same story
				add  x6, x1, x0     # swap x1 <-> x2
				add  x1, x2, x0
				add  x2, x6, x0
				addi x9, x9, -1
				bne  x9, x0, loop
				halt
			`,
			secrets: [2]uint64{1000, 1001},
		},
		{
			name: "load value prediction", item: "Data: Load (VP)",
			config: func() pipeline.Config {
				c := base()
				c.Predictor = uopt.NewPredictor(2)
				return c
			},
			baseline: base,
			// A loop whose load feeds a long dependent chain. The
			// stored value either stays constant (predictable) or
			// changes every iteration (squash storm).
			kernel: `
				addi x28, x0, 0x7100
				ld   x27, 0(x28)    # secret mask
				addi x1, x0, 0x900
				addi x2, x0, 5
				sd   x2, 0(x1)
				addi x9, x0, 48
			loop:
				ld   x3, 0(x1)      # predicted load
				mul  x4, x3, x2     # dependent work
				mul  x4, x4, x2
				add  x5, x5, x4
				add  x6, x3, x2
				and  x6, x6, x27    # secret selects constant vs varying
				sd   x6, 0(x1)
				addi x9, x9, -1
				bne  x9, x0, loop
				halt
			`,
			// secret 0: store writes 0 forever (after iteration 1 the
			// load is fully predictable); secret -1: the stored value
			// keeps changing, so every confident prediction squashes.
			secrets: [2]uint64{0, 0xfff},
		},
		{
			name: "register-file compression", item: "At rest: Register file (RFC)",
			config: func() pipeline.Config {
				c := rfcWitnessConfig()
				c.RFC = uopt.RFCAnyValue
				return c
			},
			baseline: rfcWitnessConfig,
			// Eight accumulators with per-register increments scaled by
			// the secret: secret 0 keeps every in-flight result at value 0
			// (all collapse onto one shared register under RFC); secret 1
			// makes every result distinct (full rename pressure on the
			// tight free list). The increments are distinct primes larger
			// than the iteration count, so no two live accumulator values
			// ever coincide when the secret is non-zero.
			kernel: `
				addi x28, x0, 0x7100
				ld   x27, 0(x28)    # secret scale
				addi x10, x0, 257
				addi x11, x0, 263
				addi x12, x0, 269
				addi x13, x0, 271
				addi x14, x0, 277
				addi x15, x0, 281
				addi x16, x0, 283
				addi x17, x0, 293
				mul  x10, x10, x27
				mul  x11, x11, x27
				mul  x12, x12, x27
				mul  x13, x13, x27
				mul  x14, x14, x27
				mul  x15, x15, x27
				mul  x16, x16, x27
				mul  x17, x17, x27
				addi x9, x0, 40
				addi x20, x0, 1
				div  x21, x9, x20   # long op at the ROB head: younger
				div  x22, x21, x20  # results must hold their registers
				div  x23, x22, x20  # until it retires — unless RFC
				div  x24, x23, x20  # returned them at writeback
			loop:
				add  x1, x1, x10
				add  x2, x2, x11
				add  x3, x3, x12
				add  x4, x4, x13
				add  x5, x5, x14
				add  x6, x6, x15
				add  x7, x7, x16
				add  x8, x8, x17
				addi x9, x9, -1
				bne  x9, x0, loop
				halt
			`,
			secrets: [2]uint64{0, 1},
		},
		{
			name: "store-to-leak forwarding", item: "Data: Store address (StLF)",
			config: func() pipeline.Config {
				c := stlfWitnessConfig()
				c.Speculation = &pipeline.SpeculationConfig{StLF: true}
				return c
			},
			baseline: stlfWitnessConfig,
			// Warm the contested line so the post-halt store-queue drain is
			// cheap; otherwise its cold miss gates the end of the run and
			// hides the replay bubble.
			setup: func(m *mem.Memory, h *cache.Hierarchy) {
				m.Write(0x3000, 8, 0)
				h.Access(0x3000, 0, false)
			},
			// A store whose address selects between aliasing the next load
			// (secret 0) and missing it by one word on the final iteration
			// (secret 5). The trained forwarding predictor speculatively
			// forwards before the store address resolves: an address match
			// verifies (fast), a mismatch replays (slow) — Schwarz et al.'s
			// Store-to-Leak channel. Without the predictor the load waits
			// for resolution and then forwards (2 cycles) or hits L1 (also
			// 2 cycles), so the baseline is secret-independent.
			kernel: `
				addi x28, x0, 0x7100
				ld   x26, 0(x28)    # secret word offset
				slli x27, x26, 3
				lui  x10, 3         # 0x3000: the contested address
				addi x11, x0, 6
				addi x12, x0, 81
			loop:
				slti x16, x11, 2    # 1 on the final iteration only
				mul  x17, x16, x27  # secret-scaled store offset
				add  x18, x10, x17
				sd   x12, 0(x18)    # address resolves 6 cycles after issue
				ld   x13, 0(x10)    # forwards speculatively once trained
				addi x12, x12, 7
				addi x11, x11, -1
				bne  x11, x0, loop
				halt
			`,
			secrets: [2]uint64{0, 5},
		},
		{
			name: "wrong-path vector lane", item: "Data: Wrong-path load (SV)",
			config: func() pipeline.Config {
				c := base()
				c.Speculation = &pipeline.SpeculationConfig{WrongPath: true}
				return c
			},
			baseline: base,
			// A forward-taken branch (static BTFN predicts not-taken)
			// guarded by a long division chain: while it is unresolved the
			// wrong-path lane load fetches 0x2000 + secret*64 and warms the
			// cache before the squash. The correct-path probe of 0x2000
			// then hits exactly when the secret is 0 — the squashed
			// access's fill is architectural dead weight but observable
			// state, the speculative-vectorization channel.
			kernel: `
				addi x28, x0, 0x7100
				ld   x1, 0(x28)     # secret lane index
				slli x2, x1, 6
				lui  x3, 2
				add  x2, x2, x3     # lane address 0x2000 + secret*64
				addi x8, x0, 1
				div  x9, x8, x8     # delay branch resolution
				div  x9, x9, x8
				div  x9, x9, x8
				div  x9, x9, x8
				div  x9, x9, x8
				div  x9, x9, x8
				div  x9, x9, x8
				div  x9, x9, x8
				bne  x9, x0, resume # taken; predicted not-taken
				ld   x5, 0(x2)      # wrong-path lane access (squashed)
				jal  x0, done
			resume:
				lui  x6, 2
				ld   x7, 0(x6)      # probe: hits iff secret == 0
			done:
				halt
			`,
			secrets: [2]uint64{0, 1},
		},
		{
			name: "silent stores", item: "Data: Store (SS)",
			config: func() pipeline.Config {
				c := base()
				c.SilentStores = &pipeline.SilentStoreConfig{}
				c.SQSize = 4
				return c
			},
			baseline: func() pipeline.Config {
				c := base()
				c.SQSize = 4
				return c
			},
			setup: func(m *mem.Memory, h *cache.Hierarchy) {
				for i := uint64(0); i < 8; i++ {
					m.Write(0xa00+i*64, 8, 7)
					h.Access(0xa00+i*64, 7, false)
				}
			},
			// Eight stores over stale value 7; when the secret is 7 they
			// all dequeue silently (in one cycle each group). The delay
			// div depends on the loaded secret so it issues after the
			// load returns and still retires ahead of the stores.
			kernel: `
				addi x28, x0, 0x7100
				ld   x2, 0(x28)     # secret store data
				addi x1, x0, 0xa00
				div  x3, x2, x2     # delay retirement so SS-Loads win
				sd   x2, 0(x1)
				sd   x2, 64(x1)
				sd   x2, 128(x1)
				sd   x2, 192(x1)
				sd   x2, 256(x1)
				sd   x2, 320(x1)
				sd   x2, 384(x1)
				sd   x2, 448(x1)
				halt
			`,
			secrets: [2]uint64{7, 8},
		},
	}
}

// runWitness returns the cycle counts of the two kernels under cfg.
func runWitness(w witness, mk func() pipeline.Config) (a, b int64, err error) {
	run := func(secret uint64) (int64, error) {
		m := mem.New()
		h := cache.MustNewHierarchy(cache.DefaultHierConfig())
		if w.setup != nil {
			w.setup(m, h)
		}
		m.Write(witnessSecretAddr, 8, secret)
		mach, err := pipeline.New(mk(), m, h)
		if err != nil {
			return 0, err
		}
		prog, err := asmMust(w.kernel)
		if err != nil {
			return 0, err
		}
		res, err := mach.Run(prog)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	if a, err = run(w.secrets[0]); err != nil {
		return
	}
	b, err = run(w.secrets[1])
	return
}

// WitnessReport holds one measured witness outcome.
type WitnessReport struct {
	Name, Item           string
	OptA, OptB           int64 // cycles with the optimization, per secret
	BaseA, BaseB         int64 // cycles on the baseline
	LeakDelta, BaseDelta int64
}

// RunWitnesses executes every timing witness serially.
func RunWitnesses() ([]WitnessReport, error) {
	return RunWitnessesParallel(1)
}

// RunWitnessesParallel executes the timing witnesses sharded over a
// worker pool (workers <= 0 selects GOMAXPROCS). Every witness builds
// its own machines, so reports are identical at every worker count and
// are returned in the canonical witness order.
func RunWitnessesParallel(workers int) ([]WitnessReport, error) {
	return parallel.Map(context.Background(), workers, witnesses(),
		func(_ context.Context, _ int, w witness) (WitnessReport, error) {
			oa, ob, err := runWitness(w, w.config)
			if err != nil {
				return WitnessReport{}, fmt.Errorf("witness %s: %w", w.name, err)
			}
			ba, bb, err := runWitness(w, w.baseline)
			if err != nil {
				return WitnessReport{}, fmt.Errorf("witness %s baseline: %w", w.name, err)
			}
			return WitnessReport{
				Name: w.name, Item: w.item,
				OptA: oa, OptB: ob, BaseA: ba, BaseB: bb,
				LeakDelta: abs64(oa - ob), BaseDelta: abs64(ba - bb),
			}, nil
		})
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func init() {
	register(&Experiment{
		Name: "witness", Artifact: "Table I (measured)",
		Title: "Per-class timing witnesses: secret-dependent cycles appear only with the optimization",
		Run:   runWitnessExperiment,
	})
	register(&Experiment{
		Name: "reuse", Artifact: "Section VI-A3",
		Title: "Sv vs Sn computation reuse: security/performance trade-off",
		Run:   runReuseAblation,
	})
}

func runWitnessExperiment(o Options) (Result, error) {
	reports, err := RunWitnessesParallel(o.Parallel)
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	b.WriteString("Measured timing witnesses for Table I\n\n")
	fmt.Fprintf(&b, "%-28s %-34s %10s %10s\n", "Optimization", "Data item", "opt Δcyc", "base Δcyc")
	b.WriteString(strings.Repeat("-", 86) + "\n")
	pass := true
	for _, r := range reports {
		fmt.Fprintf(&b, "%-28s %-34s %10d %10d\n", r.Name, r.Item, r.LeakDelta, r.BaseDelta)
		if r.LeakDelta == 0 || r.BaseDelta != 0 {
			pass = false
		}
	}
	b.WriteString("\nopt Δcyc > 0 with base Δcyc = 0 means the secret is observable only\nthrough the optimization — the Table I transition S→U, measured.\n")
	m := map[string]float64{"witnesses": float64(len(reports))}
	for _, r := range reports {
		m["leak_"+strings.ReplaceAll(r.Name, " ", "_")] = float64(r.LeakDelta)
	}
	return Result{Name: "witness", Text: b.String(), Metrics: m, Pass: pass}, nil
}

// runReuseAblation contrasts the Sv and Sn reuse variants (Section VI-A3):
// Sv leaks operand values but reuses more; Sn is value-blind.
func runReuseAblation(Options) (Result, error) {
	kernel := func(secret uint64) string {
		// The multiply operand alternates between 1000 and the secret, so
		// value-keyed reuse hits exactly when the secret matches.
		return fmt.Sprintf(`
			addi x1, x0, 1000
			addi x2, x0, %d
			addi x4, x0, 3
			addi x9, x0, 40
		loop:
			mul  x5, x1, x4
			mul  x7, x5, x4
			add  x6, x1, x0
			add  x1, x2, x0
			add  x2, x6, x0
			addi x9, x9, -1
			bne  x9, x0, loop
			halt
		`, secret)
	}
	run := func(scheme uopt.ReuseScheme, secret uint64) (int64, uint64, error) {
		cfg := base()
		rb := uopt.NewReuseBuffer(scheme, 64)
		cfg.Reuse = rb
		m, err := pipeline.New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
		if err != nil {
			return 0, 0, err
		}
		prog, err := asmMust(kernel(secret))
		if err != nil {
			return 0, 0, err
		}
		res, err := m.Run(prog)
		if err != nil {
			return 0, 0, err
		}
		return res.Cycles, rb.Hits, nil
	}
	svEq, svEqHits, err := run(uopt.SchemeSv, 1000)
	if err != nil {
		return Result{}, err
	}
	svNe, _, err := run(uopt.SchemeSv, 1001)
	if err != nil {
		return Result{}, err
	}
	snEq, snEqHits, err := run(uopt.SchemeSn, 1000)
	if err != nil {
		return Result{}, err
	}
	snNe, _, err := run(uopt.SchemeSn, 1001)
	if err != nil {
		return Result{}, err
	}
	svLeak := abs64(svEq - svNe)
	snLeak := abs64(snEq - snNe)
	text := fmt.Sprintf(`Section VI-A3 — architecting security-conscious microarchitecture

Dynamic instruction reuse, value-keyed (Sv) vs name-keyed (Sn):

  Sv: cycles(secret==memoized) = %4d, cycles(differs) = %4d  → leak Δ = %d
  Sn: cycles(secret==memoized) = %4d, cycles(differs) = %4d  → leak Δ = %d
  reuse hits: Sv = %d, Sn = %d

Sv's hit condition depends on operand *values*: the secret modulates
timing. Sn keys on register names only: same timing either way — the
"slight tweak" the paper highlights as still-efficient, more-secure.
`, svEq, svNe, svLeak, snEq, snNe, snLeak, svEqHits, snEqHits)
	return Result{
		Name: "reuse", Text: text,
		Metrics: map[string]float64{
			"sv_leak": float64(svLeak), "sn_leak": float64(snLeak),
			"sv_hits": float64(svEqHits), "sn_hits": float64(snEqHits),
		},
		Pass: svLeak > 0 && snLeak == 0,
	}, nil
}
