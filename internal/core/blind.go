package core

import (
	"fmt"
	"strings"

	"pandora/internal/cache"
	"pandora/internal/channel"
)

// The receivers in Section II assume the attacker can find cache-
// congruent addresses. This experiment shows the assumption costs only
// timing measurements: an attacker with no knowledge of the set-index
// function discovers a minimal eviction set by group-testing reduction
// and immediately uses it to observe a victim access.

func init() {
	register(&Experiment{
		Name: "blind", Artifact: "Section II (receiver construction)",
		Title: "Timing-only eviction-set discovery feeding Prime+Probe",
		Run:   runBlind,
	})
}

func runBlind(Options) (Result, error) {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	ways := h.Config().L2.Ways
	b, err := channel.NewEvictionSetBuilder(h, ways)
	if err != nil {
		return Result{}, err
	}

	victim := uint64(0x7777C0)
	poolSize := h.Config().L2.Sets * ways * 2
	pool := b.Pool(0x40000000, poolSize)
	set, err := b.Reduce(pool, victim)
	if err != nil {
		return Result{}, err
	}

	congruent := 0
	for _, a := range set {
		if h.L2.SetOf(a) == h.L2.SetOf(victim) {
			congruent++
		}
	}

	// Use the discovered set as a prime, then detect one victim access.
	for _, a := range set {
		h.Access(a, 0, false)
	}
	h.Access(victim, 0, false)
	detected := 0
	for _, a := range set {
		if h.Access(a, 0, false).Latency >= b.Threshold {
			detected++
		}
	}

	var s strings.Builder
	s.WriteString("Receiver construction without cache-geometry knowledge\n\n")
	fmt.Fprintf(&s, "  candidate pool    : %d lines (2x the cache)\n", poolSize)
	fmt.Fprintf(&s, "  reduced set       : %d members, %d/%d congruent with the victim\n",
		len(set), congruent, len(set))
	fmt.Fprintf(&s, "  timing tests used : %d\n", b.Tests)
	fmt.Fprintf(&s, "  victim detection  : %d eviction(s) observed after one victim access\n\n", detected)
	s.WriteString("The set-index function was never consulted: load latencies alone\n" +
		"yield a working Prime+Probe prime set (group-testing reduction).\n")

	pass := len(set) == ways && congruent == ways && detected >= 1
	return Result{
		Name: "blind", Text: s.String(),
		Metrics: map[string]float64{
			"tests": float64(b.Tests), "congruent": float64(congruent), "detected": float64(detected),
		},
		Pass: pass,
	}, nil
}
