// Package core is the public facade of the Pandora reproduction: a
// registry of named experiments, one per table and figure of the paper
// (plus the section-level analyses), each returning a human-readable
// report and structured metrics. The cmd/pandora CLI, the examples and
// the benchmark harness all drive experiments through this package.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"pandora/internal/parallel"
)

// Options tune experiment effort.
type Options struct {
	// Samples is the per-class sample count for distribution experiments
	// (Figure 6). Zero means a small default.
	Samples int
	// SecretLen is the number of protected bytes the URG experiments
	// leak. Zero means a short default.
	SecretLen int
	// Full enables full-scale sweeps (e.g. the 65536-value slice sweep in
	// the key-recovery experiment). Off by default: full sweeps take
	// minutes.
	Full bool
	// Parallel is the worker count for experiments with independent
	// trial structure (key-recovery slots, Figure 6 samples, URG byte
	// offsets, covert-channel trials, Table I rows, timing witnesses).
	// Zero selects runtime.GOMAXPROCS(0). Results are bit-identical at
	// every worker count: work is sharded by item index with per-item
	// RNG seeds and merged in item order.
	Parallel int
	// Trace receives narrative progress lines when non-nil.
	Trace func(format string, args ...any)
	// Ctx, when non-nil, bounds the experiment: multi-phase experiments
	// check it between phases and sweep-shaped experiments pass it to the
	// parallel engine, so a cancelled or expired job stops instead of
	// running its remaining work. Nil means context.Background().
	Ctx context.Context
}

// ctx returns the experiment's bounding context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// err reports the bounding context's cancellation state — the check
// multi-phase experiments run between phases.
func (o Options) err() error { return o.ctx().Err() }

// Workers returns the effective worker count for the options.
func (o Options) Workers() int { return parallel.Workers(o.Parallel) }

func (o Options) trace(format string, args ...any) {
	if o.Trace != nil {
		o.Trace(format, args...)
	}
}

func (o Options) samples(def int) int {
	if o.Samples > 0 {
		return o.Samples
	}
	return def
}

func (o Options) secretLen(def int) int {
	if o.SecretLen > 0 {
		return o.SecretLen
	}
	return def
}

// Result is one experiment's outcome.
type Result struct {
	Name string
	// Text is the rendered report (the regenerated table/figure).
	Text string
	// Metrics carries the headline numbers for benches and EXPERIMENTS.md
	// (e.g. cycle gaps, leak accuracy, agreement counts).
	Metrics map[string]float64
	// Pass reports whether the experiment reproduced the paper's
	// qualitative result (shape agreement, not absolute numbers).
	Pass bool
}

// Experiment is one registered reproduction artifact.
type Experiment struct {
	// Name is the CLI/registry key, e.g. "table1".
	Name string
	// Artifact cites the paper artifact, e.g. "Table I".
	Artifact string
	// Title is a one-line description.
	Title string
	// Run executes the experiment.
	Run func(Options) (Result, error)
}

// The registry is populated by package init functions and read
// concurrently afterwards (the parallel `pandora all` mode and the
// benchmark harness call Get/Experiments from worker goroutines), so all
// access is serialized by regMu. Registration after init is permitted
// and takes the same lock; the returned *Experiment values themselves
// are immutable by convention — Run closures must be safe for
// concurrent calls, which every built-in experiment satisfies by
// constructing its machines locally.
var (
	regMu    sync.RWMutex
	registry = map[string]*Experiment{}
	order    []string
)

func register(e *Experiment) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %q", e.Name))
	}
	registry[e.Name] = e
	order = append(order, e.Name)
}

// Get returns the named experiment. Safe for concurrent use.
func Get(name string) (*Experiment, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Experiments returns all registered experiments in registration order.
// Safe for concurrent use; the slice is the caller's to keep.
func Experiments() []*Experiment {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Experiment, 0, len(order))
	for _, n := range order {
		out = append(out, registry[n])
	}
	return out
}

// Names returns the sorted experiment names. Safe for concurrent use.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}
