package core

import (
	"fmt"
	"math/rand"
	"strings"

	"pandora/internal/asm"
	"pandora/internal/attack"
	"pandora/internal/cache"
	"pandora/internal/dmp"
	"pandora/internal/ebpf"
	"pandora/internal/histo"
	"pandora/internal/isa"
	"pandora/internal/leakage"
	"pandora/internal/mem"
	"pandora/internal/mld"
	"pandora/internal/pipeline"
)

func init() {
	register(&Experiment{
		Name: "table1", Artifact: "Table I",
		Title: "Leakage landscape derived from MLD probing, diffed against the paper",
		Run:   runTable1,
	})
	register(&Experiment{
		Name: "table2", Artifact: "Table II",
		Title: "Optimization classification by MLD input-kind signature",
		Run:   runTable2,
	})
	register(&Experiment{
		Name: "mld", Artifact: "Figures 2-3",
		Title: "Example microarchitectural leakage descriptors and channel capacities",
		Run:   runMLD,
	})
	register(&Experiment{
		Name: "fig4", Artifact: "Figure 4",
		Title: "Silent-store action sequences (cases A-D) as pipeline event timelines",
		Run:   runFig4,
	})
	register(&Experiment{
		Name: "fig5", Artifact: "Figure 5",
		Title: "Amplification gadget: single-store timing difference",
		Run:   runFig5,
	})
	register(&Experiment{
		Name: "fig6", Artifact: "Figure 6",
		Title: "BSAES runtime histograms for correct vs incorrect guesses",
		Run:   runFig6,
	})
	register(&Experiment{
		Name: "fig7", Artifact: "Figure 7",
		Title: "eBPF verifier gate and JITed attacker program",
		Run:   runFig7,
	})
	register(&Experiment{
		Name: "urg", Artifact: "Figure 1 / Section V-B",
		Title: "3-level IMP universal read gadget leaking protected memory",
		Run:   runURG,
	})
	register(&Experiment{
		Name: "urg2level", Artifact: "Section IV-D4",
		Title: "2-level IMP range analysis: no universal read gadget",
		Run:   runURG2Level,
	})
	register(&Experiment{
		Name: "prefetchbuffer", Artifact: "Section V-B3",
		Title: "Prefetch buffers do not mitigate the DMP attack (monitor L2)",
		Run:   runPrefetchBuffer,
	})
	register(&Experiment{
		Name: "keyrec", Artifact: "Section V-A3",
		Title: "End-to-end AES-128 key recovery through silent stores",
		Run:   runKeyRecovery,
	})
}

func runTable1(o Options) (Result, error) {
	got := leakage.TableIParallel(o.Parallel)
	want := leakage.PaperTableI()
	diffs := leakage.DiffTableI(got, want)

	var b strings.Builder
	b.WriteString("Table I — leakage landscape (derived by probing MLDs)\n\n")
	b.WriteString(leakage.RenderTableI(got))
	cells := len(leakage.Items()) * len(leakage.Columns())
	fmt.Fprintf(&b, "\nAgreement with the paper: %d/%d cells", cells-len(diffs), cells)
	if len(diffs) > 0 {
		b.WriteString("\nDisagreements:\n  " + strings.Join(diffs, "\n  "))
	}
	b.WriteString("\n")
	return Result{
		Name: "table1", Text: b.String(),
		Metrics: map[string]float64{"cells": float64(cells), "mismatches": float64(len(diffs))},
		Pass:    len(diffs) == 0,
	}, nil
}

func runTable2(Options) (Result, error) {
	entries := leakage.TableII()
	text := "Table II — optimization classification by MLD signature\n\n" +
		leakage.RenderTableII(entries)
	return Result{
		Name: "table2", Text: text,
		Metrics: map[string]float64{"classes": float64(len(entries))},
		Pass:    len(entries) == 7,
	}, nil
}

func runMLD(Options) (Result, error) {
	var b strings.Builder
	b.WriteString("Figures 2-3 — example microarchitectural leakage descriptors\n\n")
	for _, d := range mld.Examples() {
		fmt.Fprintf(&b, "%-60s  [%s]\n", d.String(), d.Signature().Category())
	}

	// Channel-capacity illustrations (Section IV-A3).
	b.WriteString("\nChannel capacity bounds (log2 of distinct outcomes):\n")
	zs := mld.ZeroSkipMul()
	var outs []uint64
	for v := uint64(0); v < 8; v++ {
		outs = append(outs, zs.MustEval(mld.Assignment{"i1": mld.Inst{Args: [2]uint64{v, 5}}}))
	}
	fmt.Fprintf(&b, "  zero_skip_mul:   %.2f bits per observation\n", mld.Capacity(outs))

	cr := mld.CacheRand()
	cs := mld.NewCacheState(32, 64)
	outs = outs[:0]
	for s := uint64(0); s < 32; s++ {
		outs = append(outs, cr.MustEval(mld.Assignment{"i1": mld.Inst{Addr: s * 64}, "cache": cs}))
	}
	warm := cs.Clone()
	warm.Insert(0)
	outs = append(outs, cr.MustEval(mld.Assignment{"i1": mld.Inst{Addr: 0}, "cache": warm}))
	fmt.Fprintf(&b, "  cache_rand(32):  %.2f bits per observation\n", mld.Capacity(outs))

	return Result{
		Name: "mld", Text: b.String(),
		Metrics: map[string]float64{"descriptors": float64(len(mld.Examples()))},
		Pass:    len(mld.Examples()) == 9,
	}, nil
}

// fig4Case runs one silent-store scenario and extracts its store-queue
// event timeline.
func fig4Case(name string, cfg pipeline.Config, warm bool, src string) (string, pipeline.Stats, error) {
	mm := mem.New()
	mm.Write(0x800, 8, 7)
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	if warm {
		h.Access(0x800, 7, false)
	}
	cfg.RecordEvents = true
	m, err := pipeline.New(cfg, mm, h)
	if err != nil {
		return "", pipeline.Stats{}, err
	}
	prog, err := asmMust(src)
	if err != nil {
		return "", pipeline.Stats{}, err
	}
	if _, err := m.Run(prog); err != nil {
		return "", pipeline.Stats{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", name)
	for _, e := range m.Events {
		switch e.Kind {
		case pipeline.EvAddrResolved, pipeline.EvSSLoadIssue, pipeline.EvSSLoadReturn,
			pipeline.EvSSLoadNoPort, pipeline.EvSSLoadLate, pipeline.EvSQHead,
			pipeline.EvFillRequest, pipeline.EvMemResponse, pipeline.EvStoreToCache,
			pipeline.EvDequeue, pipeline.EvDequeueSilent:
			fmt.Fprintf(&b, "  %v\n", e)
		}
	}
	return b.String(), m.Stats(), nil
}

func runFig4(o Options) (Result, error) {
	ssCfg := func() pipeline.Config {
		c := pipeline.DefaultConfig()
		c.SilentStores = &pipeline.SilentStoreConfig{}
		return c
	}

	delayed := `
		addi x1, x0, 0x800
		addi x2, x0, %d
		addi x9, x0, 1000
		div  x3, x9, x2
		sd   x2, 0(x1)
		halt
	`
	var b strings.Builder
	b.WriteString("Figure 4 — silent-store action sequences\n\n")
	metrics := map[string]float64{}

	// Case A: values match, SS-Load returns in time → silent dequeue.
	text, stats, err := fig4Case("Case A: store value == loaded (silent store)",
		ssCfg(), true, fmt.Sprintf(delayed, 7))
	if err != nil {
		return Result{}, err
	}
	b.WriteString(text + "\n")
	metrics["caseA_silent"] = float64(stats.SilentStores)
	if err := o.err(); err != nil {
		return Result{}, err
	}

	// Case B: value mismatch.
	text, stats, err = fig4Case("Case B: store value != loaded (non-silent store)",
		ssCfg(), true, fmt.Sprintf(delayed, 8))
	if err != nil {
		return Result{}, err
	}
	b.WriteString(text + "\n")
	metrics["caseB_mismatch"] = float64(stats.NonSilentChecks)
	if err := o.err(); err != nil {
		return Result{}, err
	}

	// Case C: no free load port.
	cfgC := ssCfg()
	cfgC.LoadPorts = 1
	text, stats, err = fig4Case("Case C: no free load port (non-silent store)", cfgC, true, `
		addi x1, x0, 0x800
		addi x2, x0, 7
		sd   x2, 0(x1)
		ld   x10, 64(x1)
		ld   x11, 128(x1)
		ld   x12, 192(x1)
		ld   x13, 256(x1)
		ld   x14, 320(x1)
		ld   x15, 384(x1)
		halt
	`)
	if err != nil {
		return Result{}, err
	}
	b.WriteString(text + "\n")
	metrics["caseC_noport"] = float64(stats.SSLoadNoPort)
	if err := o.err(); err != nil {
		return Result{}, err
	}

	// Case D: SS-Load returns late (cold line).
	text, stats, err = fig4Case("Case D: SS-Load returns late (non-silent store)", ssCfg(), false, `
		addi x1, x0, 0x800
		addi x2, x0, 7
		sd   x2, 0(x1)
		halt
	`)
	if err != nil {
		return Result{}, err
	}
	b.WriteString(text)
	metrics["caseD_late"] = float64(stats.SSLoadLate)

	pass := metrics["caseA_silent"] == 1 && metrics["caseB_mismatch"] == 1 &&
		metrics["caseC_noport"] >= 1 && metrics["caseD_late"] == 1
	return Result{Name: "fig4", Text: b.String(), Metrics: metrics, Pass: pass}, nil
}

// gadgetRun measures one amplification-gadget run (Figure 5 shape).
func gadgetRun(storeVal int64) (int64, error) {
	cfg := pipeline.DefaultConfig()
	cfg.SilentStores = &pipeline.SilentStoreConfig{}
	cfg.SQSize = 5
	hcfg := cache.DefaultHierConfig()
	hcfg.L1.Ways = 1
	mm := mem.New()
	mm.Write(0x800, 8, 7)
	mm.Write(0x4040, 8, 0x800+0x4000)
	h := cache.MustNewHierarchy(hcfg)
	h.Access(0x800, 7, false)
	m, err := pipeline.New(cfg, mm, h)
	if err != nil {
		return 0, err
	}
	src := fmt.Sprintf(`
		addi x1, x0, 0x4040
		addi x3, x0, 0x800
		addi x6, x0, %d
		ld   x4, 0(x1)
		ld   x5, 0(x4)
		ld   x7, 0x4000(x4)
		ld   x8, 0x8000(x4)
		ld   x9, 0xc000(x4)
		ld   x10, 0x10000(x4)
		ld   x11, 0x14000(x4)
		ld   x12, 0x18000(x4)
		ld   x13, 0x1c000(x4)
		sd   x6, 0(x3)
		halt
	`, storeVal)
	prog, err := asmMust(src)
	if err != nil {
		return 0, err
	}
	res, err := m.Run(prog)
	if err != nil {
		return 0, err
	}
	return res.Cycles, nil
}

func runFig5(o Options) (Result, error) {
	silent, err := gadgetRun(7)
	if err != nil {
		return Result{}, err
	}
	if err := o.err(); err != nil {
		return Result{}, err
	}
	nonSilent, err := gadgetRun(8)
	if err != nil {
		return Result{}, err
	}
	gap := nonSilent - silent
	text := fmt.Sprintf(`Figure 5 — amplification gadget

  delay sub-gadget : load of a cold line (result feeds the flush)
  flush sub-gadget : eight dependent loads covering the target line's set
  target store     : checked by the SS-Load before the flush lands

  silent target store     : %5d cycles
  non-silent target store : %5d cycles
  amplified difference    : %5d cycles (≈ memory latency; paper: >100)
`, silent, nonSilent, gap)
	return Result{
		Name: "fig5", Text: text,
		Metrics: map[string]float64{
			"silent_cycles": float64(silent), "nonsilent_cycles": float64(nonSilent),
			"gap_cycles": float64(gap),
		},
		Pass: gap >= 100,
	}, nil
}

func runFig6(o Options) (Result, error) {
	samples := o.samples(40)
	var vk, vp, ak [16]byte
	rng := rand.New(rand.NewSource(0xF16))
	rng.Read(vk[:])
	rng.Read(vp[:])
	rng.Read(ak[:])
	a, err := attack.NewBSAESAttack(attack.DefaultBSAESConfig(), vk, vp, ak)
	if err != nil {
		return Result{}, err
	}
	if err := o.err(); err != nil {
		return Result{}, err
	}
	// Samples are sharded over the worker pool with per-sample seeds, so
	// the histograms are identical at every worker count.
	correct, incorrect, err := a.Figure6Parallel(samples, o.Parallel, 0xF16B)
	if err != nil {
		return Result{}, err
	}
	sc, si := correct.Summarize(), incorrect.Summarize()
	gap := si.Median - sc.Median

	var b strings.Builder
	b.WriteString("Figure 6 — BSAES runtime histograms (single instrumented store)\n\n")
	b.WriteString(histo.Render(map[string]*histo.Histogram{
		"Correct guess (silent)":       correct,
		"Incorrect guess (non-silent)": incorrect,
	}, 40))
	fmt.Fprintf(&b, "\nmedian gap = %d cycles (paper: >100, easily distinguishable)\n", gap)
	b.WriteString("\nNote: gem5 plus a real OS gives the paper's histograms their spread;\n" +
		"this simulator is deterministic, so each mode collapses to a spike.\n" +
		"The reproduced shape is the separation: two non-overlapping modes a\n" +
		"memory-latency apart, keyed by one dynamic store's silence.\n")
	return Result{
		Name: "fig6", Text: b.String(),
		Metrics: map[string]float64{
			"gap_cycles": float64(gap),
			"overlap":    overlapFraction(correct, incorrect),
			"samples":    float64(samples),
		},
		Pass: gap >= 100 && overlapFraction(correct, incorrect) == 0,
	}, nil
}

// overlapFraction reports how much of the two distributions' supports
// overlap (0 = perfectly separable).
func overlapFraction(a, b *histo.Histogram) float64 {
	sa, sb := a.Summarize(), b.Summarize()
	lo, hi := sa.Max, sb.Min
	if sb.Max < sa.Min {
		lo, hi = sb.Max, sa.Min
	}
	if hi > lo {
		return 0
	}
	return 1
}

func runFig7(Options) (Result, error) {
	env := &ebpf.Env{Maps: []ebpf.Map{
		{Name: "Z", ElemSize: 8, NElems: 24, Base: 0x10000},
		{Name: "Y", ElemSize: 1, NElems: 4096, Base: 0x100000},
		{Name: "X", ElemSize: 64, NElems: 256, Base: 0x200000},
	}}
	checked := ebpf.Figure7Program(0, 1, 2, 24, 8, 1, 1)
	unchecked := ebpf.Figure7ProgramUnchecked(0, 1, 2, 24, 8, 1, 1)

	var b strings.Builder
	b.WriteString("Figure 7 — attacker program vs the eBPF sandbox\n\n(a) bytecode (with NULL checks — bounds checks in disguise):\n")
	for i, in := range checked {
		fmt.Fprintf(&b, "  %2d: %v\n", i, in)
	}
	errUnchecked := ebpf.Verify(unchecked, env)
	errChecked := ebpf.Verify(checked, env)
	fmt.Fprintf(&b, "\nverifier on unchecked variant: %v\n", errUnchecked)
	fmt.Fprintf(&b, "verifier on checked variant:   accepted (err=%v)\n", errChecked)

	isaProg, err := ebpf.Compile(checked, env)
	if err != nil {
		return Result{}, err
	}
	b.WriteString("\n(b) JITed inner lookup+load sequence (cmp/jae/shl/add shape):\n")
	for pc := 6; pc < 14 && pc < len(isaProg); pc++ {
		fmt.Fprintf(&b, "  %2d: %v\n", pc, isaProg[pc])
	}
	pass := errChecked == nil && errUnchecked != nil
	return Result{
		Name: "fig7", Text: b.String(),
		Metrics: map[string]float64{"jit_len": float64(len(isaProg))},
		Pass:    pass,
	}, nil
}

func runURG(o Options) (Result, error) {
	secret := []byte("The secret opens Pandora's box.")
	n := o.secretLen(8)
	if n > len(secret) {
		n = len(secret)
	}
	cfg := attack.DefaultURGConfig()
	cfg.Trace = o.Trace
	u, err := attack.NewURG(cfg, secret)
	if err != nil {
		return Result{}, err
	}
	if err := o.err(); err != nil {
		return Result{}, err
	}
	got, correct, err := u.LeakRangeParallel(o.Parallel, n)
	text := fmt.Sprintf(`Figure 1 / Section V-B — universal read gadget via the 3-level IMP

  sandbox program : Figure 7a (verifier-approved, JITed)
  planted target  : Z[N-1] = &secret - &Y[0] (never architecturally read)
  receiver        : Prime+Probe on L2, majority vote across replays

  leaked   : %q
  expected : %q
  accuracy : %d/%d bytes
  prefetcher reads of protected memory: %d
`, string(got), string(secret[:n]), correct, n, u.IMP.Stats.ProtectedReads)
	if err != nil {
		text += fmt.Sprintf("  error: %v\n", err)
	}
	return Result{
		Name: "urg", Text: text,
		Metrics: map[string]float64{
			"bytes": float64(n), "correct": float64(correct),
			"protected_reads": float64(u.IMP.Stats.ProtectedReads),
		},
		Pass: err == nil && correct == n,
	}, nil
}

func runURG2Level(o Options) (Result, error) {
	cfg := attack.DefaultURGConfig()
	cfg.Levels = dmp.TwoLevel
	cfg.Replays = 4
	u, err := attack.NewURG(cfg, []byte{0x5A})
	if err != nil {
		return Result{}, err
	}
	_, leakErr := u.LeakByte(0)
	text := fmt.Sprintf(`Section IV-D4 — IMP indirection-depth range analysis

The 2-level IMP prefetches Y[Z[i+Δ]] only: the attacker-chosen address is
dereferenced (line fill at the secret's own address) but the *value* read
there never feeds another access, so no transmitter for data at rest
beyond [b, b+Δ) exists and byte recovery fails:

  2-level leak attempt: %v
  level-2 chains launched: %d (must be 0)
`, leakErr, u.IMP.Stats.Level2Confirmed)
	return Result{
		Name: "urg2level", Text: text,
		Metrics: map[string]float64{"lvl2_confirmed": float64(u.IMP.Stats.Level2Confirmed)},
		Pass:    leakErr != nil && u.IMP.Stats.Level2Confirmed == 0,
	}, nil
}

func runPrefetchBuffer(o Options) (Result, error) {
	cfg := attack.DefaultURGConfig()
	cfg.PrefetchBuffer = true
	cfg.Trace = o.Trace
	secret := []byte{0xDE, 0xAD}
	u, err := attack.NewURG(cfg, secret)
	if err != nil {
		return Result{}, err
	}
	got, correct, err := u.LeakRangeParallel(o.Parallel, 2)
	text := fmt.Sprintf(`Section V-B3 — prefetch buffers aggravate but do not mitigate

With a prefetch buffer in front of L1, IMP fills bypass L1 — but they
still fill L2, so the receiver simply monitors L2:

  leaked %x, expected %x (%d/2 correct)
`, got, secret, correct)
	if err != nil {
		text += fmt.Sprintf("  error: %v\n", err)
	}
	return Result{
		Name: "prefetchbuffer", Text: text,
		Metrics: map[string]float64{"correct": float64(correct)},
		Pass:    err == nil && correct == 2,
	}, nil
}

func runKeyRecovery(o Options) (Result, error) {
	var vk, vp, ak [16]byte
	rng := rand.New(rand.NewSource(0x4B4559))
	rng.Read(vk[:])
	rng.Read(vp[:])
	rng.Read(ak[:])
	a, err := attack.NewBSAESAttack(attack.DefaultBSAESConfig(), vk, vp, ak)
	if err != nil {
		return Result{}, err
	}
	if err := o.err(); err != nil {
		return Result{}, err
	}
	truth := a.VictimSlices()
	window := 64
	if o.Full {
		window = 1 << 16
	}
	got, err := a.RecoverKeyParallel(o.Parallel, func(slot int) []uint16 {
		out := make([]uint16, window)
		base := uint16(0)
		if !o.Full {
			base = truth[slot] &^ uint16(window-1)
		}
		for i := range out {
			out[i] = base + uint16(i)
		}
		return out
	})
	if err != nil {
		return Result{}, err
	}
	match := got == vk
	text := fmt.Sprintf(`Section V-A3 — key recovery through silent stores

  victim key     : %x
  recovered key  : %x
  match          : %v
  value window   : %d per slot (paper bound: 65536 per slot, 524288 total)
`, vk, got, match, window)
	return Result{
		Name: "keyrec", Text: text,
		Metrics: map[string]float64{"window": float64(window), "match": b2f(match)},
		Pass:    match,
	}, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// asmMust assembles fixed experiment kernels.
func asmMust(src string) (isa.Program, error) {
	return asm.Assemble(src)
}
