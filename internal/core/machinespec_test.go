package core

import (
	"errors"
	"strings"
	"testing"
)

// TestMachineSpecRoundTrip: formatting a parsed spec is idempotent —
// FormatMachineSpec(Parse(canonical)) == canonical — and maps every
// accepted spelling onto one canonical form.
func TestMachineSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in, canonical string
	}{
		{"", ""},
		{"silentstores", "silentstores"},
		{"silentstores-lsq", "silentstores-lsq"},
		{"compsimp", "compsimp"},
		{"strengthred", "strengthred"},
		{"compsimp,strengthred", "compsimp,strengthred"},
		{"packing", "packing"},
		{"fusion", "fusion"},
		{"reuse-sv", "reuse-sv"},
		{"reuse-sn", "reuse-sn"},
		{"vp", "vp:2"},
		{"vp:8", "vp:8"},
		{"vp-stride", "vp-stride:2"},
		{"vp-stride:3", "vp-stride:3"},
		{"rfc-any", "rfc-any"},
		{"rfc-01", "rfc-01"},
		{"spec", "spec"},
		{"wrongpath", "wrongpath"},
		{"wrongpath:4", "wrongpath:4"},
		{"bimodal", "bimodal"},
		{"wrongpath,bimodal", "spec"},
		{"spec,wrongpath:4", "wrongpath:4,bimodal"},
		{"stlf", "stlf"},
		{"stlf,staddr=4", "stlf,staddr=4"},
		{"sq=4", "sq=4"},
		{"rob=16,prf=48", "rob=16,prf=48"},
		{"alu=1,ld=1", "alu=1,ld=1"},
		// Whitespace, ordering and redundant spellings collapse.
		{" vp:8 , silentstores ", "silentstores,vp:8"},
		{"stlf,compsimp,silentstores", "silentstores,compsimp,stlf"},
	}
	for _, tc := range cases {
		got, err := CanonicalMachineSpec(tc.in)
		if err != nil {
			t.Errorf("CanonicalMachineSpec(%q): %v", tc.in, err)
			continue
		}
		if got != tc.canonical {
			t.Errorf("CanonicalMachineSpec(%q) = %q, want %q", tc.in, got, tc.canonical)
			continue
		}
		again, err := CanonicalMachineSpec(got)
		if err != nil {
			t.Errorf("re-canonicalize %q: %v", got, err)
			continue
		}
		if again != got {
			t.Errorf("not idempotent: %q -> %q -> %q", tc.in, got, again)
		}
	}
}

// TestSpecErrorFields: a rejected spec is a *SpecError naming the bad
// token, and its message carries the grammar.
func TestSpecErrorFields(t *testing.T) {
	_, err := CanonicalMachineSpec("silentstors")
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("want *SpecError, got %T: %v", err, err)
	}
	if se.Feature != "silentstors" || se.Reason != "unknown feature" || se.Arg != "" {
		t.Fatalf("unexpected fields: %+v", se)
	}
	if !strings.Contains(se.Error(), MachineFeatures()) {
		t.Fatalf("error does not carry the grammar: %v", se)
	}

	_, err = CanonicalMachineSpec("vp:zero")
	if !errors.As(err, &se) {
		t.Fatalf("want *SpecError, got %T: %v", err, err)
	}
	if se.Feature != "vp" || se.Arg != "zero" || se.Reason != "bad argument" {
		t.Fatalf("unexpected fields: %+v", se)
	}
}
