package core

import (
	"fmt"
	"strconv"
	"strings"

	"pandora/internal/pipeline"
	"pandora/internal/uopt"
)

// SpecError is a rejected machine-spec token. It names exactly which
// feature (and argument, if any) was refused and why, and its Error
// string always carries the accepted grammar — so a failed `pandora run
// -machine` or a 400 from serve tells the caller what to type instead
// of just "bad spec".
type SpecError struct {
	// Feature is the feature token that was rejected (without any
	// argument), e.g. "vp" or "silentstors".
	Feature string
	// Arg is the offending argument, "" when the feature itself was
	// unknown.
	Arg string
	// Reason says what was wrong: "unknown feature" or "bad argument".
	Reason string
}

func (e *SpecError) Error() string {
	if e.Arg != "" {
		return fmt.Sprintf("core: machine feature %q: %s %q (accepted: %s)",
			e.Feature, e.Reason, e.Arg, MachineFeatures())
	}
	return fmt.Sprintf("core: machine feature %q: %s (accepted: %s)",
		e.Feature, e.Reason, MachineFeatures())
}

// FormatMachineSpec renders a pipeline configuration back into the
// ParseMachineSpec grammar, emitting only the features that differ from
// the default baseline, each in its one canonical spelling (thresholds
// always explicit: "vp:2", never bare "vp"). It is the round-tripping
// counterpart of ParseMachineSpec: for any spec the grammar accepts,
//
//	FormatMachineSpec(mustParse(s)) == FormatMachineSpec(mustParse(FormatMachineSpec(mustParse(s))))
//
// so two user spellings of the same machine ("vp,spec" vs
// " spec , vp:2 ") format identically — the property serve's cache
// keys rely on. Configuration fields outside the grammar (probes,
// watchdogs, taint, fault injectors, co-tenants) are ignored.
func FormatMachineSpec(cfg pipeline.Config) string {
	def := pipeline.DefaultConfig()
	var out []string
	add := func(f string) { out = append(out, f) }

	if ss := cfg.SilentStores; ss != nil {
		if ss.Scheme == pipeline.SSLSQCompare {
			add("silentstores-lsq")
		} else {
			add("silentstores")
		}
	}
	if s := cfg.Simplifier; s != nil {
		if s.ZeroSkipMul && s.TrivialALU && s.EarlyExitDiv {
			add("compsimp")
		}
		if s.StrengthReduction {
			add("strengthred")
		}
	}
	if cfg.Packer != nil {
		add("packing")
	}
	if cfg.FuseAddiLoad {
		add("fusion")
	}
	if rb := cfg.Reuse; rb != nil {
		if rb.Scheme == uopt.SchemeSn {
			add("reuse-sn")
		} else {
			add("reuse-sv")
		}
	}
	switch p := cfg.Predictor.(type) {
	case *uopt.Predictor:
		add("vp:" + strconv.Itoa(p.Threshold))
	case *uopt.StridePredictor:
		add("vp-stride:" + strconv.Itoa(p.Threshold))
	}
	switch cfg.RFC {
	case uopt.RFCAnyValue:
		add("rfc-any")
	case uopt.RFCZeroOne:
		add("rfc-01")
	}
	if sp := cfg.Speculation; sp != nil {
		if sp.WrongPath && sp.Bimodal && sp.MaxWrongPath == 0 {
			add("spec")
		} else {
			if sp.WrongPath {
				if sp.MaxWrongPath > 0 {
					add("wrongpath:" + strconv.Itoa(sp.MaxWrongPath))
				} else {
					add("wrongpath")
				}
			}
			if sp.Bimodal {
				add("bimodal")
			}
		}
		if sp.StLF {
			add("stlf")
		}
	}
	if cfg.StoreAddrLat != def.StoreAddrLat {
		add("staddr=" + strconv.Itoa(cfg.StoreAddrLat))
	}
	if cfg.SQSize != def.SQSize {
		add("sq=" + strconv.Itoa(cfg.SQSize))
	}
	if cfg.ROBSize != def.ROBSize {
		add("rob=" + strconv.Itoa(cfg.ROBSize))
	}
	if cfg.PhysRegs != def.PhysRegs {
		add("prf=" + strconv.Itoa(cfg.PhysRegs))
	}
	if cfg.ALUPorts != def.ALUPorts {
		add("alu=" + strconv.Itoa(cfg.ALUPorts))
	}
	if cfg.LoadPorts != def.LoadPorts {
		add("ld=" + strconv.Itoa(cfg.LoadPorts))
	}
	return strings.Join(out, ",")
}

// CanonicalMachineSpec parses a user-written machine spec and returns
// its canonical spelling (the empty string for the default baseline).
// Serve's job canonicalization stores this form in cache keys, so
// equivalent spellings of the same machine share one cache entry; the
// CLI keeps showing the user's own spelling in its output.
func CanonicalMachineSpec(spec string) (string, error) {
	cfg, err := ParseMachineSpec(spec)
	if err != nil {
		return "", err
	}
	return FormatMachineSpec(cfg), nil
}
