package core

import (
	"strings"
	"testing"
)

// TestAllExperimentsPass runs every registered experiment at default
// effort and requires each to reproduce its paper artifact.
func TestAllExperimentsPass(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := e.Run(Options{})
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if !res.Pass {
				t.Errorf("%s did not reproduce %s:\n%s", e.Name, e.Artifact, res.Text)
			}
			if res.Text == "" {
				t.Errorf("%s produced no report", e.Name)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	if len(Experiments()) < 12 {
		t.Errorf("only %d experiments registered", len(Experiments()))
	}
	if _, ok := Get("table1"); !ok {
		t.Error("table1 missing")
	}
	if _, ok := Get("nope"); ok {
		t.Error("bogus experiment found")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

func TestWitnessReports(t *testing.T) {
	reports, err := RunWitnesses()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if r.LeakDelta == 0 {
			t.Errorf("witness %q: no timing difference with the optimization (%d vs %d)",
				r.Name, r.OptA, r.OptB)
		}
		if r.BaseDelta != 0 {
			t.Errorf("witness %q: baseline leaks (%d vs %d) — kernels must differ only microarchitecturally",
				r.Name, r.BaseA, r.BaseB)
		}
	}
}

func TestExperimentTextMentionsArtifact(t *testing.T) {
	for _, name := range []string{"table1", "fig5", "fig7"} {
		e, _ := Get(name)
		res, err := e.Run(Options{})
		if err != nil {
			t.Fatal(err)
		}
		frag := map[string]string{
			"table1": "Table I", "fig5": "Figure 5", "fig7": "Figure 7",
		}[name]
		if !strings.Contains(res.Text, frag) {
			t.Errorf("%s report does not mention %q", name, frag)
		}
	}
}
