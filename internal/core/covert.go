package core

import (
	"context"
	"fmt"
	"strings"

	"pandora/internal/attack"
	"pandora/internal/parallel"
	"pandora/internal/uopt"
)

// The covert-channel setting of Section II: two cooperating programs
// communicate through optimization state with no victim involved. The
// experiment drives a full byte through the silent-store channel and the
// Sv computation-reuse channel, then shows the Sn variant killing the
// latter. The three trials build fully independent machines, so they run
// as parallel tasks and merge in fixed order.

func init() {
	register(&Experiment{
		Name: "covert", Artifact: "Section II / footnote 5",
		Title: "Covert channels through silent stores and the reuse table",
		Run:   runCovert,
	})
}

// covertTrial is one channel trial's contribution to the report.
type covertTrial struct {
	text    string
	metrics map[string]float64
	pass    bool
}

func runCovert(o Options) (Result, error) {
	const message = byte(0xA5)

	trials := []func() (covertTrial, error){
		func() (covertTrial, error) {
			ss, err := attack.NewSilentStoreChannel()
			if err != nil {
				return covertTrial{}, err
			}
			got, cycles, err := ss.TransmitByte(message)
			if err != nil {
				return covertTrial{}, err
			}
			return covertTrial{
				text: fmt.Sprintf("silent-store channel: sent %#02x, received %#02x (%d cycles/bit)\n",
					message, got, cycles/8),
				metrics: map[string]float64{
					"ss_cycles_per_bit": float64(cycles / 8),
					"ss_ok":             b2f(got == message),
				},
				pass: got == message,
			}, nil
		},
		func() (covertTrial, error) {
			ru, err := attack.NewReuseChannel()
			if err != nil {
				return covertTrial{}, err
			}
			got, err := ru.TransmitByte(message)
			if err != nil {
				return covertTrial{}, err
			}
			return covertTrial{
				text: fmt.Sprintf("Sv reuse channel:     sent %#02x, received %#02x (no shared memory needed)\n",
					message, got),
				metrics: map[string]float64{"sv_ok": b2f(got == message)},
				pass:    got == message,
			}, nil
		},
		func() (covertTrial, error) {
			snChan, err := attack.NewReuseChannel()
			if err != nil {
				return covertTrial{}, err
			}
			snChan.UseScheme(uopt.SchemeSn)
			if err := snChan.Calibrate(); err != nil {
				return covertTrial{
					text:    fmt.Sprintf("Sn reuse channel:     dead (%v)\n", err),
					metrics: map[string]float64{"sn_dead": 1},
					pass:    true,
				}, nil
			}
			return covertTrial{
				text:    "Sn reuse channel:     STILL ALIVE — unexpected\n",
				metrics: map[string]float64{"sn_dead": 0},
				pass:    false,
			}, nil
		},
	}

	results, err := parallel.Map(context.Background(), o.Parallel, trials,
		func(_ context.Context, _ int, fn func() (covertTrial, error)) (covertTrial, error) {
			return fn()
		})
	if err != nil {
		return Result{}, err
	}

	var b strings.Builder
	b.WriteString("Covert channels through the studied optimizations\n\n")
	metrics := map[string]float64{}
	pass := true
	for _, r := range results {
		b.WriteString(r.text)
		for k, v := range r.metrics {
			metrics[k] = v
		}
		pass = pass && r.pass
	}
	b.WriteString("\nEvery stateful optimization carries a covert channel; keying reuse on\n" +
		"register names instead of values (Sn) removes the value channel entirely.\n")

	return Result{
		Name: "covert", Text: b.String(), Metrics: metrics,
		Pass: pass,
	}, nil
}
