package core

import (
	"fmt"
	"strings"

	"pandora/internal/attack"
	"pandora/internal/uopt"
)

// The covert-channel setting of Section II: two cooperating programs
// communicate through optimization state with no victim involved. The
// experiment drives a full byte through the silent-store channel and the
// Sv computation-reuse channel, then shows the Sn variant killing the
// latter.

func init() {
	register(&Experiment{
		Name: "covert", Artifact: "Section II / footnote 5",
		Title: "Covert channels through silent stores and the reuse table",
		Run:   runCovert,
	})
}

func runCovert(Options) (Result, error) {
	var b strings.Builder
	metrics := map[string]float64{}
	b.WriteString("Covert channels through the studied optimizations\n\n")

	const message = byte(0xA5)

	ss, err := attack.NewSilentStoreChannel()
	if err != nil {
		return Result{}, err
	}
	gotSS, cycles, err := ss.TransmitByte(message)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "silent-store channel: sent %#02x, received %#02x (%d cycles/bit)\n",
		message, gotSS, cycles/8)
	metrics["ss_cycles_per_bit"] = float64(cycles / 8)

	ru, err := attack.NewReuseChannel()
	if err != nil {
		return Result{}, err
	}
	gotRU, err := ru.TransmitByte(message)
	if err != nil {
		return Result{}, err
	}
	fmt.Fprintf(&b, "Sv reuse channel:     sent %#02x, received %#02x (no shared memory needed)\n",
		message, gotRU)

	snDead := false
	snChan, err := attack.NewReuseChannel()
	if err != nil {
		return Result{}, err
	}
	snChan.UseScheme(uopt.SchemeSn)
	if err := snChan.Calibrate(); err != nil {
		snDead = true
		fmt.Fprintf(&b, "Sn reuse channel:     dead (%v)\n", err)
	} else {
		fmt.Fprintf(&b, "Sn reuse channel:     STILL ALIVE — unexpected\n")
	}

	b.WriteString("\nEvery stateful optimization carries a covert channel; keying reuse on\n" +
		"register names instead of values (Sn) removes the value channel entirely.\n")
	metrics["ss_ok"] = b2f(gotSS == message)
	metrics["sv_ok"] = b2f(gotRU == message)
	metrics["sn_dead"] = b2f(snDead)

	return Result{
		Name: "covert", Text: b.String(), Metrics: metrics,
		Pass: gotSS == message && gotRU == message && snDead,
	}, nil
}
