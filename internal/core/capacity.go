package core

import (
	"fmt"
	"math"
	"strings"

	"pandora/internal/cache"
	"pandora/internal/channel"
	"pandora/internal/mem"
	"pandora/internal/mld"
	"pandora/internal/pipeline"
	"pandora/internal/uopt"
)

// Section IV-A3: an MLD's partition bounds the channel capacity at log2
// of its distinct-outcome count. This experiment measures actual
// transmission through two channels and checks the measurements against
// the descriptors' bounds.

func init() {
	register(&Experiment{
		Name: "capacity", Artifact: "Section IV-A3",
		Title: "Measured channel capacities vs MLD partition bounds",
		Run:   runCapacity,
	})
}

func runCapacity(Options) (Result, error) {
	var b strings.Builder
	metrics := map[string]float64{}
	b.WriteString("Section IV-A3 — channel capacity: MLD bound vs measurement\n\n")

	// --- Cache channel: one access transmits a set index ---
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	pp, err := channel.NewPrimeProbe(h, channel.L2, 0x10000000)
	if err != nil {
		return Result{}, err
	}
	sets := pp.Sets()
	decoded := map[int]bool{}
	for sym := 0; sym < sets; sym++ {
		pp.PrimeAll()
		h.Access(0x200000+uint64(sym)*64, 0, false) // sender
		hot := channel.HotSets(pp.ProbeAll())
		if len(hot) == 1 {
			decoded[hot[0]] = true
		}
	}
	measuredCache := math.Log2(float64(len(decoded)))
	// Bound from the cache MLD's partition: sets + 1 outcomes.
	cs := mld.NewCacheState(sets, 64)
	boundCache := math.Log2(float64(cs.Domain()))
	fmt.Fprintf(&b, "cache channel (%d sets):\n", sets)
	fmt.Fprintf(&b, "  MLD bound : %.2f bits/observation (log2 of %d outcomes)\n", boundCache, cs.Domain())
	fmt.Fprintf(&b, "  measured  : %.2f bits/observation (%d/%d symbols decoded)\n\n",
		measuredCache, len(decoded), sets)
	metrics["cache_bound_bits"] = boundCache
	metrics["cache_measured_bits"] = measuredCache

	// --- Zero-skip multiplier: one multiply transmits one bit ---
	runMul := func(operand int64) (int64, error) {
		cfg := pipeline.DefaultConfig()
		cfg.Simplifier = &uopt.Simplifier{ZeroSkipMul: true}
		m, err := pipeline.New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
		if err != nil {
			return 0, err
		}
		prog, err := asmMust(fmt.Sprintf(`
			addi x1, x0, %d
			addi x2, x0, 9
			addi x5, x0, 32
		loop:
			mul  x3, x1, x2
			mul  x3, x1, x3
			addi x5, x5, -1
			bne  x5, x0, loop
			halt
		`, operand))
		if err != nil {
			return 0, err
		}
		res, err := m.Run(prog)
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}
	classes := map[int64]bool{}
	for _, v := range []int64{0, 1, 7, 1000, 65536} {
		c, err := runMul(v)
		if err != nil {
			return Result{}, err
		}
		classes[c] = true
	}
	measuredMul := math.Log2(float64(len(classes)))
	fmt.Fprintf(&b, "zero-skip multiplier:\n")
	fmt.Fprintf(&b, "  MLD bound : 1.00 bits/observation (2 outcomes)\n")
	fmt.Fprintf(&b, "  measured  : %.2f bits/observation (%d timing classes over 5 operand values)\n\n",
		measuredMul, len(classes))
	metrics["mul_measured_bits"] = measuredMul

	b.WriteString("Measurements respect the descriptor bounds: the MLD partition is the\n" +
		"whole channel — an attacker can never extract more per observation.\n")

	pass := measuredCache <= boundCache+1e-9 && measuredCache >= boundCache-1.01 &&
		len(classes) == 2
	return Result{Name: "capacity", Text: b.String(), Metrics: metrics, Pass: pass}, nil
}
