package core

import (
	"context"
	"fmt"
	"strings"

	"pandora/internal/asm"
	"pandora/internal/attack"
	"pandora/internal/bsaes"
	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
	"pandora/internal/taint"
)

// This file is the orchestration layer of `pandora scan`: it builds a
// shadowed machine for a scenario (the AES spill kernel, the eBPF
// sandbox, or user-supplied assembly with `.secret` directives), runs it
// once, and folds the taint recorder into a JSON-friendly report.

// ScanEvent is one leak event with label bits resolved to names.
type ScanEvent struct {
	Cycle  int64    `json:"cycle"`
	PC     int64    `json:"pc"`
	Opt    string   `json:"opt"`
	MLDRef string   `json:"mld"`
	Labels []string `json:"labels"`
	Detail string   `json:"detail,omitempty"`
}

// ScanClassCount is the exact event count for one optimization class.
type ScanClassCount struct {
	Opt    string `json:"opt"`
	MLDRef string `json:"mld"`
	Count  uint64 `json:"count"`
}

// ScanSummary is one scan's full report.
type ScanSummary struct {
	Scenario string           `json:"scenario"`
	Machine  string           `json:"machine,omitempty"`
	Secrets  []string         `json:"secrets"`
	Total    uint64           `json:"total_events"`
	Dropped  uint64           `json:"dropped_events,omitempty"`
	ByClass  []ScanClassCount `json:"by_class"`
	Events   []ScanEvent      `json:"events"`
}

// Count returns the exact number of events whose class renders as opt.
func (s ScanSummary) Count(opt string) uint64 {
	for _, c := range s.ByClass {
		if c.Opt == opt {
			return c.Count
		}
	}
	return 0
}

// HasLeak reports whether a retained event of class opt carries label.
func (s ScanSummary) HasLeak(opt, label string) bool {
	for _, ev := range s.Events {
		if ev.Opt != opt {
			continue
		}
		for _, l := range ev.Labels {
			if l == label {
				return true
			}
		}
	}
	return false
}

// Format renders the summary as a human-readable report.
func (s ScanSummary) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scan %s", s.Scenario)
	if s.Machine != "" {
		fmt.Fprintf(&b, " [%s]", s.Machine)
	}
	fmt.Fprintf(&b, ": secrets=%s\n", strings.Join(s.Secrets, ","))
	if s.Total == 0 {
		b.WriteString("  clean: no optimization trigger condition depended on a secret\n")
		return b.String()
	}
	for _, c := range s.ByClass {
		fmt.Fprintf(&b, "  %-22s %6d events  (mld: %s)\n", c.Opt, c.Count, c.MLDRef)
	}
	const maxShown = 10
	for i, ev := range s.Events {
		if i == maxShown {
			fmt.Fprintf(&b, "  ... %d more events retained (%d dropped)\n",
				len(s.Events)-maxShown, s.Dropped)
			break
		}
		fmt.Fprintf(&b, "  cycle %-7d pc %-5d %-22s {%s} %s\n",
			ev.Cycle, ev.PC, ev.Opt, strings.Join(ev.Labels, ","), ev.Detail)
	}
	return b.String()
}

// Summarize folds a shadow state's recorder into a report. Exported for
// contributor packages (internal/kernels) that build their own machines
// but want their scan output in the same shape as the built-in
// scenarios.
func Summarize(st *taint.State, scenario, machine string) ScanSummary {
	return summarize(st, scenario, machine)
}

// summarize folds a shadow state's recorder into a report.
func summarize(st *taint.State, scenario, machine string) ScanSummary {
	s := ScanSummary{
		Scenario: scenario,
		Machine:  machine,
		Secrets:  st.Names.Names(^taint.LabelSet(0)),
		Total:    st.Rec.Total(),
		Dropped:  st.Rec.Dropped,
	}
	for i := 0; i < taint.NumOptClasses; i++ {
		c := taint.OptClass(i)
		if n := st.Rec.CountOf(c); n > 0 {
			s.ByClass = append(s.ByClass, ScanClassCount{Opt: c.String(), MLDRef: c.MLDRef(), Count: n})
		}
	}
	for _, ev := range st.Rec.Events {
		s.Events = append(s.Events, ScanEvent{
			Cycle:  ev.Cycle,
			PC:     ev.PC,
			Opt:    ev.Opt.String(),
			MLDRef: ev.MLDRef,
			Labels: st.Names.Names(ev.Labels),
			Detail: ev.Detail,
		})
	}
	return s
}

// ScanAES scans the bitslice-AES encryption-server kernel (Section V-A):
// the victim's stale final-round slices sit labeled in the spill slots
// and the attacker's un-instrumented encryption runs over them. With
// silent stores disabled the kernel is constant-time and scans clean;
// with them enabled every spill store's elision check reads the stale
// key-derived bytes — the Figure 6 precondition, rediscovered by the
// scanner without any timing measurement.
func ScanAES(ctx context.Context, silentStores bool) (ScanSummary, error) {
	var victimKey, victimPlain [16]byte
	for i := range victimKey {
		victimKey[i] = byte(0x0f ^ i*0x11)
	}
	tr, err := bsaes.EncryptTrace(victimPlain[:], victimKey[:])
	if err != nil {
		return ScanSummary{}, err
	}

	st := taint.NewState()
	m := mem.New()
	hier, err := cache.NewHierarchy(cache.DefaultHierConfig())
	if err != nil {
		return ScanSummary{}, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Taint = st
	flag, stop := pipeline.CancelFromContext(ctx)
	defer stop()
	cfg.Cancel = flag
	scenario := "aes-baseline"
	if silentStores {
		cfg.SilentStores = &pipeline.SilentStoreConfig{}
		cfg.SQSize = 5
		scenario = "aes-silentstores"
	}
	machine, err := pipeline.New(cfg, m, hier)
	if err != nil {
		return ScanSummary{}, err
	}

	// The victim encrypts first: its slices are spilled to the stack and
	// the slot lines are left warm in the cache — the state the attacker
	// inherits. The victim computes the slices from its key off-simulation
	// (EncryptTrace), so the spilled bytes are then labeled key-derived.
	if _, err := machine.Run(attack.EncryptKernel(tr.FinalSlices, -1, false)); err != nil {
		return ScanSummary{}, err
	}
	lbl, err := st.Names.Define("key")
	if err != nil {
		return ScanSummary{}, err
	}
	for k := 0; k < 8; k++ {
		st.Mem.TaintRange(attack.SpillSlotAddr(k), 2, lbl)
	}

	// One attacker encryption, no amplification gadget.
	var att bsaes.State
	for i := range att {
		att[i] = uint16(0xA5A5 ^ i*0x0101)
	}
	if _, err := machine.Run(attack.EncryptKernel(att, -1, false)); err != nil {
		return ScanSummary{}, err
	}
	return summarize(st, scenario, ""), nil
}

// ScanEBPF scans the eBPF universal-read-gadget scenario (Section V-B):
// a verified sandbox program that never architecturally touches the
// labeled kernel region, run once on a machine whose 3-level IMP is
// shadowed. The scanner reports the prefetcher reading labeled kernel
// bytes and forming prefetch addresses from them.
func ScanEBPF(ctx context.Context) (ScanSummary, error) {
	secret := []byte("pandora-scan-secret-byte")
	st := taint.NewState()
	cfg := attack.DefaultURGConfig()
	cfg.Taint = st
	u, err := attack.NewURG(cfg, secret)
	if err != nil {
		return ScanSummary{}, err
	}
	if _, err := st.DefineSecret(taint.Secret{Name: "kernel", Base: u.SecretBase(), Len: uint64(len(secret))}); err != nil {
		return ScanSummary{}, err
	}
	if err := ctx.Err(); err != nil {
		return ScanSummary{}, err
	}
	if err := u.RunOnce(0); err != nil {
		return ScanSummary{}, err
	}
	return summarize(st, "ebpf-urg", ""), nil
}

// ScanStLF scans the store-to-leak forwarding witness kernel (Schwarz et
// al., 1905.05725). With the forwarding predictor enabled the scanner
// reports spec-forward events: the predictor forwards a store whose
// address derives from the labeled secret before that address resolves,
// so both the forwarding decision and the retire-time replay depend on
// the secret. With it disabled the same kernel scans clean.
func ScanStLF(ctx context.Context, stlf bool) (ScanSummary, error) {
	return scanSpecWitness(ctx, "store-to-leak forwarding", "stlf", stlf)
}

// ScanSpecVect scans the speculative-vectorization witness kernel
// (Karuppanan & Mirbagher, 2302.01131). With wrong-path fetch enabled the
// scanner reports a squashed lane load forming its cache address from the
// labeled secret — the squash unwinds the ROB, not the cache, so the
// event is recorded even though the load is architecturally dead. With
// speculation disabled the lane never issues and the kernel scans clean.
func ScanSpecVect(ctx context.Context, wrongPath bool) (ScanSummary, error) {
	return scanSpecWitness(ctx, "wrong-path vector lane", "specvect", wrongPath)
}

// scanSpecWitness runs one of the speculation timing witnesses under the
// taint scanner: same kernel, same machines, but with the secret word
// labeled instead of contrasted — pairing the timing evidence with
// shadow-label evidence exactly like TestWitnessScanPairing does for
// every witness.
func scanSpecWitness(ctx context.Context, name, scenario string, enabled bool) (ScanSummary, error) {
	var w witness
	found := false
	for _, cand := range witnesses() {
		if cand.name == name {
			w, found = cand, true
			break
		}
	}
	if !found {
		return ScanSummary{}, fmt.Errorf("core: no witness %q", name)
	}
	mk := w.baseline
	if enabled {
		mk = w.config
	} else {
		scenario += "-baseline"
	}

	st := taint.NewState()
	m := mem.New()
	hier, err := cache.NewHierarchy(cache.DefaultHierConfig())
	if err != nil {
		return ScanSummary{}, err
	}
	if w.setup != nil {
		w.setup(m, hier)
	}
	m.Write(witnessSecretAddr, 8, w.secrets[1])
	if _, err := st.DefineSecret(taint.Secret{Name: "secret", Base: witnessSecretAddr, Len: 8}); err != nil {
		return ScanSummary{}, err
	}
	cfg := mk()
	cfg.Taint = st
	flag, stop := pipeline.CancelFromContext(ctx)
	defer stop()
	cfg.Cancel = flag
	machine, err := pipeline.New(cfg, m, hier)
	if err != nil {
		return ScanSummary{}, err
	}
	prog, err := asmMust(w.kernel)
	if err != nil {
		return ScanSummary{}, err
	}
	if _, err := machine.Run(prog); err != nil {
		return ScanSummary{}, err
	}
	return summarize(st, scenario, ""), nil
}

// ScanSource assembles src (whose `.secret` directives declare the
// labeled regions, optionally extended by extra), runs it once on the
// machine described by spec, and reports every optimization trigger
// condition that depended on a secret.
func ScanSource(ctx context.Context, src, spec string, extra []taint.Secret) (ScanSummary, error) {
	unit, err := asm.AssembleUnit(src)
	if err != nil {
		return ScanSummary{}, err
	}
	var secrets []taint.Secret
	for _, s := range unit.Secrets {
		secrets = append(secrets, taint.Secret{Name: s.Name, Base: s.Base, Len: s.Len})
	}
	secrets = append(secrets, extra...)
	if len(secrets) == 0 {
		return ScanSummary{}, fmt.Errorf("core: nothing to scan: no .secret directive and no -secret flag")
	}

	cfg, err := ParseMachineSpec(spec)
	if err != nil {
		return ScanSummary{}, err
	}
	st := taint.NewState()
	cfg.Taint = st
	flag, stop := pipeline.CancelFromContext(ctx)
	defer stop()
	cfg.Cancel = flag
	m := mem.New()
	hier, err := cache.NewHierarchy(cache.DefaultHierConfig())
	if err != nil {
		return ScanSummary{}, err
	}
	machine, err := pipeline.New(cfg, m, hier)
	if err != nil {
		return ScanSummary{}, err
	}
	for _, s := range secrets {
		if _, err := st.DefineSecret(s); err != nil {
			return ScanSummary{}, err
		}
	}
	if _, err := machine.Run(unit.Prog); err != nil {
		return ScanSummary{}, err
	}
	return summarize(st, "source", spec), nil
}
