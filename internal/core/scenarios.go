package core

import (
	"context"
	"fmt"
	"strings"

	"pandora/internal/obs"
)

// Scenario is one named leakage scenario and every analysis that can
// run it. `pandora scan`, `pandora trace` and the serve job runners all
// resolve scenarios from this one table, so a scenario added here is
// immediately reachable from every front end — the previous split
// (a switch in cmd/pandora/scan.go, a second in RunTrace) let the two
// lists drift apart (stlf-baseline existed for scan but not trace).
//
// A nil Scan or Trace entry means the scenario does not support that
// analysis: sweep is a trace-only corpus, and the speculation baselines
// are scan-only contrast runs.
type Scenario struct {
	// Name is the CLI/API key, e.g. "aes" or "stlf-baseline".
	Name string
	// Title is a one-line description for listings.
	Title string
	// Scan runs the scenario under the taint scanner. ctx bounds the
	// run: cancellation stops the machine at its next checkpoint.
	Scan func(ctx context.Context) (ScanSummary, error)
	// Trace runs the scenario under the cycle-accurate probe. ctx bounds
	// the run; seed and workers only affect corpus scenarios (sweep);
	// extra, when non-nil, receives a copy of every probe event alongside
	// the recording trace (the serve layer's live progress bridge).
	Trace func(ctx context.Context, seed int64, workers int, extra obs.Probe) (*TraceResult, error)
}

// scenarioTable is the single source of truth, in display order.
var scenarioTable = []Scenario{
	{
		Name:  "aes",
		Title: "bitslice-AES victim spills under silent stores (Figure 6 precondition)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanAES(ctx, true) },
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceAES(ctx, true, extra)
		},
	},
	{
		Name:  "aes-baseline",
		Title: "the same AES kernel on a baseline machine (scans clean)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanAES(ctx, false) },
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceAES(ctx, false, extra)
		},
	},
	{
		Name:  "ebpf",
		Title: "eBPF universal read gadget through the 3-level IMP (Section V-B)",
		Scan:  ScanEBPF,
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceEBPF(ctx, extra)
		},
	},
	{
		Name:  "stlf",
		Title: "store-to-leak forwarding witness (arXiv:1905.05725)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanStLF(ctx, true) },
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceSpec(ctx, "store-to-leak forwarding", "stlf", extra)
		},
	},
	{
		Name:  "stlf-baseline",
		Title: "the same kernel with the forwarding predictor off (scans clean)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanStLF(ctx, false) },
	},
	{
		Name:  "specvect",
		Title: "wrong-path vector-lane leakage (arXiv:2302.01131)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanSpecVect(ctx, true) },
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceSpec(ctx, "wrong-path vector lane", "specvect", extra)
		},
	},
	{
		Name:  "specvect-baseline",
		Title: "the same kernel with speculation off (scans clean)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanSpecVect(ctx, false) },
	},
	{
		Name:  "sweep",
		Title: "seeded straight-line corpus traced program by program",
		Trace: traceSweep,
	},
}

// Scenarios returns the scenario table in display order. The slice is
// the caller's to keep; the Scenario values are immutable.
func Scenarios() []Scenario {
	return append([]Scenario(nil), scenarioTable...)
}

// ScenarioByName resolves one scenario.
func ScenarioByName(name string) (Scenario, bool) {
	for _, s := range scenarioTable {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// ScanScenarios names the scenarios the taint scanner can run, in
// display order.
func ScanScenarios() []string {
	var out []string
	for _, s := range scenarioTable {
		if s.Scan != nil {
			out = append(out, s.Name)
		}
	}
	return out
}

// TraceScenarios names the scenarios the trace probe can run, in
// display order.
func TraceScenarios() []string {
	var out []string
	for _, s := range scenarioTable {
		if s.Trace != nil {
			out = append(out, s.Name)
		}
	}
	return out
}

// ScanScenario runs one built-in scenario under the taint scanner.
// ctx bounds the run: a cancelled or expired context stops the machine
// at its next cooperative checkpoint.
func ScanScenario(ctx context.Context, name string) (ScanSummary, error) {
	s, ok := ScenarioByName(name)
	if !ok || s.Scan == nil {
		return ScanSummary{}, fmt.Errorf("core: unknown scan scenario %q (want %s)",
			name, strings.Join(ScanScenarios(), ", "))
	}
	return s.Scan(ctx)
}

// RunTrace runs one built-in scenario under the probe. ctx bounds the
// run; workers only affects the sweep scenario's execution schedule,
// never its output.
func RunTrace(ctx context.Context, scenario string, seed int64, workers int) (*TraceResult, error) {
	return RunTraceProbed(ctx, scenario, seed, workers, nil)
}

// RunTraceProbed is RunTrace with a live event bridge: extra, when
// non-nil, receives a copy of every probe event as the scenario runs —
// concurrently from worker goroutines for corpus scenarios, so extra
// must be safe for concurrent Emit there. The recorded TraceResult is
// unaffected by extra.
func RunTraceProbed(ctx context.Context, scenario string, seed int64, workers int, extra obs.Probe) (*TraceResult, error) {
	s, ok := ScenarioByName(scenario)
	if !ok || s.Trace == nil {
		return nil, fmt.Errorf("core: unknown trace scenario %q (want %s)",
			scenario, strings.Join(TraceScenarios(), ", "))
	}
	return s.Trace(ctx, seed, workers, extra)
}
