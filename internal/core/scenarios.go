package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pandora/internal/obs"
)

// Analysis names one of the front ends that can run a scenario. The
// capability question "can scenario X be scanned/traced?" is asked in
// three places (the scan CLI, the trace CLI, and serve's job-spec
// validation); Scenario.Supports answers it once, so the three can
// never drift apart the way the old nil-function checks could.
type Analysis int

const (
	// AnalysisScan is the taint-scanner front end (`pandora scan`,
	// serve's scan jobs).
	AnalysisScan Analysis = iota
	// AnalysisTrace is the cycle-accurate probe front end
	// (`pandora trace`, serve's trace jobs).
	AnalysisTrace
)

// String names the analysis for error messages.
func (a Analysis) String() string {
	switch a {
	case AnalysisScan:
		return "scan"
	case AnalysisTrace:
		return "trace"
	}
	return fmt.Sprintf("Analysis(%d)", int(a))
}

// Scenario is one named leakage scenario and every analysis that can
// run it. `pandora scan`, `pandora trace` and the serve job runners all
// resolve scenarios from this one registry, so a scenario registered
// here is immediately reachable from every front end — the previous
// split (a switch in cmd/pandora/scan.go, a second in RunTrace) let the
// two lists drift apart (stlf-baseline existed for scan but not trace).
//
// A nil Scan or Trace entry means the scenario does not support that
// analysis: sweep is a trace-only corpus, and the speculation baselines
// are scan-only contrast runs. Callers should ask Supports rather than
// testing the function fields directly.
type Scenario struct {
	// Name is the CLI/API key, e.g. "aes" or "stlf-baseline".
	Name string
	// Title is a one-line description for listings.
	Title string
	// Scan runs the scenario under the taint scanner. ctx bounds the
	// run: cancellation stops the machine at its next checkpoint.
	Scan func(ctx context.Context) (ScanSummary, error)
	// Trace runs the scenario under the cycle-accurate probe. ctx bounds
	// the run; seed and workers only affect corpus scenarios (sweep);
	// extra, when non-nil, receives a copy of every probe event alongside
	// the recording trace (the serve layer's live progress bridge).
	Trace func(ctx context.Context, seed int64, workers int, extra obs.Probe) (*TraceResult, error)
}

// Supports reports whether the scenario can run under the given
// analysis front end.
func (s Scenario) Supports(a Analysis) bool {
	switch a {
	case AnalysisScan:
		return s.Scan != nil
	case AnalysisTrace:
		return s.Trace != nil
	}
	return false
}

// registry holds every registered scenario in registration order, which
// is the display order. Registration happens in package init functions
// (core's built-ins first — package init order follows the import
// graph, so core's init always precedes an importer's), after which the
// table is effectively read-only; the mutex guards against a misbehaved
// late registration racing a reader.
var scenarioReg struct {
	mu    sync.RWMutex
	order []Scenario
	names map[string]int
}

// RegisterScenario adds a scenario to the shared table. It is intended
// to be called from package init functions: core registers its
// built-ins, and contributor packages (internal/kernels) register
// theirs without editing core. The display order is registration order.
// A duplicate name, an empty name, or a scenario supporting no analysis
// at all panics — these are programmer errors that should fail at init,
// not surface as a half-working table at run time.
func RegisterScenario(s Scenario) {
	if s.Name == "" {
		panic("core: RegisterScenario with empty name")
	}
	if s.Scan == nil && s.Trace == nil {
		panic(fmt.Sprintf("core: scenario %q supports no analysis", s.Name))
	}
	scenarioReg.mu.Lock()
	defer scenarioReg.mu.Unlock()
	if scenarioReg.names == nil {
		scenarioReg.names = make(map[string]int)
	}
	if _, dup := scenarioReg.names[s.Name]; dup {
		panic(fmt.Sprintf("core: duplicate scenario %q", s.Name))
	}
	scenarioReg.names[s.Name] = len(scenarioReg.order)
	scenarioReg.order = append(scenarioReg.order, s)
}

// init registers the built-in scenarios, in display order.
func init() {
	RegisterScenario(Scenario{
		Name:  "aes",
		Title: "bitslice-AES victim spills under silent stores (Figure 6 precondition)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanAES(ctx, true) },
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceAES(ctx, true, extra)
		},
	})
	RegisterScenario(Scenario{
		Name:  "aes-baseline",
		Title: "the same AES kernel on a baseline machine (scans clean)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanAES(ctx, false) },
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceAES(ctx, false, extra)
		},
	})
	RegisterScenario(Scenario{
		Name:  "ebpf",
		Title: "eBPF universal read gadget through the 3-level IMP (Section V-B)",
		Scan:  ScanEBPF,
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceEBPF(ctx, extra)
		},
	})
	RegisterScenario(Scenario{
		Name:  "stlf",
		Title: "store-to-leak forwarding witness (arXiv:1905.05725)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanStLF(ctx, true) },
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceSpec(ctx, "store-to-leak forwarding", "stlf", extra)
		},
	})
	RegisterScenario(Scenario{
		Name:  "stlf-baseline",
		Title: "the same kernel with the forwarding predictor off (scans clean)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanStLF(ctx, false) },
	})
	RegisterScenario(Scenario{
		Name:  "specvect",
		Title: "wrong-path vector-lane leakage (arXiv:2302.01131)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanSpecVect(ctx, true) },
		Trace: func(ctx context.Context, _ int64, _ int, extra obs.Probe) (*TraceResult, error) {
			return traceSpec(ctx, "wrong-path vector lane", "specvect", extra)
		},
	})
	RegisterScenario(Scenario{
		Name:  "specvect-baseline",
		Title: "the same kernel with speculation off (scans clean)",
		Scan:  func(ctx context.Context) (ScanSummary, error) { return ScanSpecVect(ctx, false) },
	})
	RegisterScenario(Scenario{
		Name:  "sweep",
		Title: "seeded straight-line corpus traced program by program",
		Trace: traceSweep,
	})
}

// Scenarios returns the scenario table in display order. The slice is
// the caller's to keep; the Scenario values are immutable.
func Scenarios() []Scenario {
	scenarioReg.mu.RLock()
	defer scenarioReg.mu.RUnlock()
	return append([]Scenario(nil), scenarioReg.order...)
}

// ScenarioByName resolves one scenario.
func ScenarioByName(name string) (Scenario, bool) {
	scenarioReg.mu.RLock()
	defer scenarioReg.mu.RUnlock()
	if i, ok := scenarioReg.names[name]; ok {
		return scenarioReg.order[i], true
	}
	return Scenario{}, false
}

// ScenarioNames names the scenarios supporting the given analysis, in
// display order.
func ScenarioNames(a Analysis) []string {
	scenarioReg.mu.RLock()
	defer scenarioReg.mu.RUnlock()
	var out []string
	for _, s := range scenarioReg.order {
		if s.Supports(a) {
			out = append(out, s.Name)
		}
	}
	return out
}

// ScanScenarios names the scenarios the taint scanner can run, in
// display order.
func ScanScenarios() []string {
	return ScenarioNames(AnalysisScan)
}

// TraceScenarios names the scenarios the trace probe can run, in
// display order.
func TraceScenarios() []string {
	return ScenarioNames(AnalysisTrace)
}

// ScanScenario runs one registered scenario under the taint scanner.
// ctx bounds the run: a cancelled or expired context stops the machine
// at its next cooperative checkpoint.
func ScanScenario(ctx context.Context, name string) (ScanSummary, error) {
	s, ok := ScenarioByName(name)
	if !ok || !s.Supports(AnalysisScan) {
		return ScanSummary{}, fmt.Errorf("core: unknown scan scenario %q (want %s)",
			name, strings.Join(ScanScenarios(), ", "))
	}
	return s.Scan(ctx)
}

// RunTrace runs one registered scenario under the probe. ctx bounds the
// run; workers only affects the sweep scenario's execution schedule,
// never its output.
func RunTrace(ctx context.Context, scenario string, seed int64, workers int) (*TraceResult, error) {
	return RunTraceProbed(ctx, scenario, seed, workers, nil)
}

// RunTraceProbed is RunTrace with a live event bridge: extra, when
// non-nil, receives a copy of every probe event as the scenario runs —
// concurrently from worker goroutines for corpus scenarios, so extra
// must be safe for concurrent Emit there. The recorded TraceResult is
// unaffected by extra.
func RunTraceProbed(ctx context.Context, scenario string, seed int64, workers int, extra obs.Probe) (*TraceResult, error) {
	s, ok := ScenarioByName(scenario)
	if !ok || !s.Supports(AnalysisTrace) {
		return nil, fmt.Errorf("core: unknown trace scenario %q (want %s)",
			scenario, strings.Join(TraceScenarios(), ", "))
	}
	return s.Trace(ctx, seed, workers, extra)
}
