package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"pandora/internal/asm"
	"pandora/internal/attack"
	"pandora/internal/bsaes"
	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/obs"
	"pandora/internal/parallel"
	"pandora/internal/pipeline"
	"pandora/internal/taint"
)

// This file is the orchestration layer of `pandora trace`: it runs a
// scenario with the observability probe attached and returns the
// cycle-accurate event trace for export (JSONL, Chrome trace-event, or
// the text report). Traces are deterministic: the same scenario, seed
// and machine configuration produce byte-identical exports at every
// worker count.

// TraceResult is one traced scenario run.
type TraceResult struct {
	Scenario string
	Seed     int64
	Workers  int
	// Cycles is the scenario's total simulated cycle count — the cycle
	// stamp of the last run-end marker on the retire track. For
	// multi-run scenarios (aes runs the victim then the attacker on one
	// machine) this accumulates across runs, matching the absolute
	// cycle stamps in the trace.
	Cycles  int64
	Retired uint64
	Trace   *obs.Trace
}

// traceAES is the ScanAES scenario with the probe attached: the victim
// encryption warms the spill slots, the slots are labeled key-derived,
// and the attacker encryption runs over them. With silent stores the
// trace carries uopt silent-store activations and taint-leak events —
// the Figure 6 precondition, visible per cycle.
func traceAES(ctx context.Context, silentStores bool, extra obs.Probe) (*TraceResult, error) {
	var victimKey, victimPlain [16]byte
	for i := range victimKey {
		victimKey[i] = byte(0x0f ^ i*0x11)
	}
	tr, err := bsaes.EncryptTrace(victimPlain[:], victimKey[:])
	if err != nil {
		return nil, err
	}

	trace := obs.NewTrace()
	st := taint.NewState()
	hier, err := cache.NewHierarchy(cache.DefaultHierConfig())
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig()
	cfg.Taint = st
	cfg.Probe = obs.Fanout(trace, extra)
	flag, stop := pipeline.CancelFromContext(ctx)
	defer stop()
	cfg.Cancel = flag
	scenario := "aes-baseline"
	if silentStores {
		cfg.SilentStores = &pipeline.SilentStoreConfig{}
		cfg.SQSize = 5
		scenario = "aes"
	}
	machine, err := pipeline.New(cfg, mem.New(), hier)
	if err != nil {
		return nil, err
	}

	var retired uint64
	res, err := machine.Run(attack.EncryptKernel(tr.FinalSlices, -1, false))
	if err != nil {
		return nil, err
	}
	retired += res.Retired
	lbl, err := st.Names.Define("key")
	if err != nil {
		return nil, err
	}
	for k := 0; k < 8; k++ {
		st.Mem.TaintRange(attack.SpillSlotAddr(k), 2, lbl)
	}
	var att bsaes.State
	for i := range att {
		att[i] = uint16(0xA5A5 ^ i*0x0101)
	}
	if res, err = machine.Run(attack.EncryptKernel(att, -1, false)); err != nil {
		return nil, err
	}
	retired += res.Retired

	return &TraceResult{
		Scenario: scenario,
		Workers:  1,
		Cycles:   machine.Cycle(),
		Retired:  retired,
		Trace:    trace,
	}, nil
}

// traceEBPF is the ScanEBPF scenario with the probe attached: one run
// of the verified sandbox program on the three-level-IMP machine. The
// trace shows the prefetch cascade on the prefetch track and the taint
// leaks where the IMP's addresses derive from labeled kernel bytes.
func traceEBPF(ctx context.Context, extra obs.Probe) (*TraceResult, error) {
	secret := []byte("pandora-scan-secret-byte")
	trace := obs.NewTrace()
	st := taint.NewState()
	cfg := attack.DefaultURGConfig()
	cfg.Taint = st
	cfg.Probe = obs.Fanout(trace, extra)
	u, err := attack.NewURG(cfg, secret)
	if err != nil {
		return nil, err
	}
	if _, err := st.DefineSecret(taint.Secret{Name: "kernel", Base: u.SecretBase(), Len: uint64(len(secret))}); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := u.RunOnce(0); err != nil {
		return nil, err
	}
	return &TraceResult{
		Scenario: "ebpf",
		Workers:  1,
		Cycles:   trace.MaxCycle(obs.TrackRetire),
		Retired:  uint64(trace.CountKind(obs.KindRetire)),
		Trace:    trace,
	}, nil
}

// traceSpec runs a speculation timing witness under the probe on its
// enabled machine, with the secret word labeled. The trace shows the
// speculative activity per cycle — wrong-path fetch and the mispredict
// squash for specvect, speculative forwards and the verify replay for
// stlf — alongside the taint-leak events those µops emit before being
// squashed.
func traceSpec(ctx context.Context, name, scenario string, extra obs.Probe) (*TraceResult, error) {
	var w witness
	found := false
	for _, cand := range witnesses() {
		if cand.name == name {
			w, found = cand, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("core: no witness %q", name)
	}
	trace := obs.NewTrace()
	st := taint.NewState()
	m := mem.New()
	hier, err := cache.NewHierarchy(cache.DefaultHierConfig())
	if err != nil {
		return nil, err
	}
	if w.setup != nil {
		w.setup(m, hier)
	}
	m.Write(witnessSecretAddr, 8, w.secrets[1])
	if _, err := st.DefineSecret(taint.Secret{Name: "secret", Base: witnessSecretAddr, Len: 8}); err != nil {
		return nil, err
	}
	cfg := w.config()
	cfg.Taint = st
	cfg.Probe = obs.Fanout(trace, extra)
	flag, stop := pipeline.CancelFromContext(ctx)
	defer stop()
	cfg.Cancel = flag
	machine, err := pipeline.New(cfg, m, hier)
	if err != nil {
		return nil, err
	}
	prog, err := asmMust(w.kernel)
	if err != nil {
		return nil, err
	}
	res, err := machine.Run(prog)
	if err != nil {
		return nil, err
	}
	return &TraceResult{
		Scenario: scenario,
		Workers:  1,
		Cycles:   res.Cycles,
		Retired:  res.Retired,
		Trace:    trace,
	}, nil
}

// sweepPrograms is the sweep scenario's corpus size.
const sweepPrograms = 12

// traceSweep traces a corpus of seeded straight-line programs, each on
// a fresh machine, and concatenates the per-program traces in corpus
// order with their cycle stamps shifted to follow one another. The
// parallel engine only changes which worker runs which program — the
// merged trace is byte-identical at every worker count.
func traceSweep(ctx context.Context, seed int64, workers int, extra obs.Probe) (*TraceResult, error) {
	type part struct {
		trace  *obs.Trace
		cycles int64
		ret    uint64
	}
	idx := make([]int, sweepPrograms)
	for i := range idx {
		idx[i] = i
	}
	parts, err := parallel.Map(ctx, workers, idx,
		func(ctx context.Context, _ int, i int) (part, error) {
			prog, err := asm.Assemble(sweepProgram(seed, i))
			if err != nil {
				return part{}, fmt.Errorf("sweep program %d: %w", i, err)
			}
			tr := obs.NewTrace()
			cfg := pipeline.DefaultConfig()
			cfg.Probe = obs.Fanout(tr, extra)
			flag, stop := pipeline.CancelFromContext(ctx)
			defer stop()
			cfg.Cancel = flag
			m, err := pipeline.New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
			if err != nil {
				return part{}, err
			}
			res, err := m.Run(prog)
			if err != nil {
				return part{}, fmt.Errorf("sweep program %d: %w", i, err)
			}
			return part{trace: tr, cycles: res.Cycles, ret: res.Retired}, nil
		})
	if err != nil {
		return nil, err
	}

	var offset int64
	var retired uint64
	traces := make([]*obs.Trace, 0, len(parts))
	for _, p := range parts {
		p.trace.ShiftCycles(offset)
		traces = append(traces, p.trace)
		offset += p.cycles + 1
		retired += p.ret
	}
	merged := obs.Merge(traces...)
	return &TraceResult{
		Scenario: "sweep",
		Seed:     seed,
		Workers:  parallel.Workers(workers),
		Cycles:   merged.MaxCycle(obs.TrackRetire),
		Retired:  retired,
		Trace:    merged,
	}, nil
}

// sweepProgram generates the i-th seeded straight-line program: a block
// of register initialization, a mix of ALU work and store/load pairs
// over a private scratch region, and a halt. Generation is a pure
// function of (seed, i).
func sweepProgram(seed int64, i int) string {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(i)))
	var b strings.Builder
	b.WriteString("addi x1, x0, 0x400\n")
	for r := 2; r <= 8; r++ {
		fmt.Fprintf(&b, "addi x%d, x0, %d\n", r, rng.Intn(2048)-1024)
	}
	ops := []string{"add", "sub", "and", "or", "xor", "mul"}
	for n := 0; n < 24+rng.Intn(16); n++ {
		switch rng.Intn(8) {
		case 0: // store then load back: exercises forwarding and the SQ
			off := 8 * rng.Intn(16)
			src := 2 + rng.Intn(7)
			dst := 2 + rng.Intn(7)
			fmt.Fprintf(&b, "sd x%d, %d(x1)\nld x%d, %d(x1)\n", src, off, dst, off)
		case 1: // cold load: exercises the cache hierarchy
			fmt.Fprintf(&b, "ld x%d, %d(x1)\n", 2+rng.Intn(7), 8*rng.Intn(32))
		default:
			op := ops[rng.Intn(len(ops))]
			fmt.Fprintf(&b, "%s x%d, x%d, x%d\n",
				op, 2+rng.Intn(7), 2+rng.Intn(7), 2+rng.Intn(7))
		}
	}
	b.WriteString("halt\n")
	return b.String()
}
