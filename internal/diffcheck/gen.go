package diffcheck

import (
	"math/rand"

	"pandora/internal/isa"
	"pandora/internal/mem"
)

// Generated programs follow one register convention so the generator can
// compose freely without liveness analysis: x1..x12 are scratch
// destinations, x26/x27/x29 hold region base addresses and are never
// written by the body, x28 is reserved for emit-time JALR targets, x30 is
// the loop counter, and RDCYCLE is never emitted — its value legitimately
// differs between the emulator and the pipeline, and the harness compares
// complete final state.
const (
	genRegHi   = 12     // scratch destinations are x1..genRegHi
	baseA      = 29     // region A base register
	baseB      = 27     // region B base register
	baseFar    = 26     // far-region base register (distinct L2 sets)
	jalrTmp    = 28     // JALR target staging register
	loopReg    = 30     // loop counter
	regionA    = 0x1000 // 512-byte scratch region
	regionB    = 0x2000 // second region, other cache sets
	regionFar  = 0x80000
	regionSpan = 512
)

// InitMemory seeds the three scratch regions with a deterministic
// address-derived pattern; generated programs read and write inside them.
func InitMemory(m *mem.Memory) {
	for _, base := range []uint64{regionA, regionB, regionFar} {
		for a := base; a < base+regionSpan; a += 8 {
			m.Write(a, 8, a*0x9e3779b97f4a7c15)
		}
	}
}

// ScratchRegions returns the base addresses and span of the scratch
// regions InitMemory seeds and generated programs access, for harnesses
// (like the taint fuzzer) that pick sub-ranges of them as secrets.
func ScratchRegions() (bases []uint64, span uint64) {
	return []uint64{regionA, regionB, regionFar}, regionSpan
}

// Generate builds a random but guaranteed-terminating program: a counted
// loop whose body mixes ALU, multiply/divide, loads and stores of every
// width over three scratch regions, forward branches, JAL/JALR with
// emit-time-resolved targets, FENCE, and silent-store pairs. Termination
// is by construction — the only backward edge is the loop bound — so every
// generated program is comparable against the emulator.
func Generate(rng *rand.Rand) isa.Program {
	var p isa.Program
	emit := func(in isa.Inst) { p = append(p, in) }

	scratch := func() isa.Reg { return isa.Reg(1 + rng.Intn(genRegHi)) }
	src := func() isa.Reg { return isa.Reg(rng.Intn(genRegHi + 1)) } // may be x0
	base := func() isa.Reg {
		switch rng.Intn(4) {
		case 0:
			return baseB
		case 1:
			return baseFar
		default:
			return baseA
		}
	}
	off := func() int64 { return int64(rng.Intn(regionSpan/8-1)) * 8 }

	iters := int64(1 + rng.Intn(6))
	emit(isa.Inst{Op: isa.ADDI, Rd: loopReg, Imm: iters})
	emit(isa.Inst{Op: isa.ADDI, Rd: baseA, Imm: regionA})
	emit(isa.Inst{Op: isa.ADDI, Rd: baseB, Imm: regionB})
	emit(isa.Inst{Op: isa.LUI, Rd: baseFar, Imm: regionFar >> 12})
	loopStart := int64(len(p))

	body := 4 + rng.Intn(16)
	for i := 0; i < body; i++ {
		rd, rs1, rs2 := scratch(), src(), src()
		switch rng.Intn(14) {
		case 0, 1:
			ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLT, isa.SLTU, isa.SLL, isa.SRL, isa.SRA}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: rd, Rs1: rs1, Rs2: rs2})
		case 2:
			ops := []isa.Op{isa.MUL, isa.MULH, isa.DIV, isa.REM}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: rd, Rs1: rs1, Rs2: rs2})
		case 3:
			ops := []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: rd, Rs1: rs1, Imm: int64(rng.Intn(4096) - 2048)})
		case 4:
			ops := []isa.Op{isa.SLLI, isa.SRLI, isa.SRAI}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: rd, Rs1: rs1, Imm: int64(rng.Intn(63))})
		case 5:
			emit(isa.Inst{Op: isa.LUI, Rd: rd, Imm: int64(rng.Intn(1 << 20))})
		case 6, 7:
			ops := []isa.Op{isa.SB, isa.SH, isa.SW, isa.SD}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rs1: base(), Rs2: rs2, Imm: off()})
		case 8:
			// Silent-store pair: store a location's own value back (the
			// second store is architecturally invisible — exactly what the
			// silent-store logic elides; the harness checks it still
			// reaches memory correctly when the elision is wrong).
			b, o := base(), off()
			emit(isa.Inst{Op: isa.LD, Rd: rd, Rs1: b, Imm: o})
			emit(isa.Inst{Op: isa.SD, Rs1: b, Rs2: rd, Imm: o})
		case 9:
			ops := []isa.Op{isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: rd, Rs1: base(), Imm: off()})
		case 10:
			// ADDI immediately feeding a load: the µ-op fusion shape.
			b, o := base(), off()
			emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: b, Imm: o})
			emit(isa.Inst{Op: isa.LD, Rd: scratch(), Rs1: rd})
		case 11:
			// Forward conditional branch over one or two instructions.
			skip := 1 + rng.Intn(2)
			bops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
			emit(isa.Inst{Op: bops[rng.Intn(len(bops))], Rs1: rs1, Rs2: rs2,
				Imm: int64(len(p)) + int64(skip) + 1})
			for s := 0; s < skip; s++ {
				emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: int64(rng.Intn(64))})
			}
		case 12:
			// Forward JAL or JALR with an emit-time-computed absolute
			// target. JALR always redirects fetch in the pipeline.
			skip := 1 + rng.Intn(2)
			if rng.Intn(2) == 0 {
				emit(isa.Inst{Op: isa.JAL, Rd: rd, Imm: int64(len(p)) + int64(skip) + 1})
			} else {
				target := int64(len(p)) + int64(skip) + 2
				emit(isa.Inst{Op: isa.ADDI, Rd: jalrTmp, Imm: target})
				emit(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: jalrTmp})
			}
			for s := 0; s < skip; s++ {
				emit(isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rd, Imm: 1})
			}
		default:
			emit(isa.Inst{Op: isa.FENCE})
		}
	}
	emit(isa.Inst{Op: isa.ADDI, Rd: loopReg, Rs1: loopReg, Imm: -1})
	emit(isa.Inst{Op: isa.BNE, Rs1: loopReg, Imm: loopStart})
	emit(isa.Inst{Op: isa.HALT})
	return p
}
