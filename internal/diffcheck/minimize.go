package diffcheck

import "pandora/internal/isa"

// Minimize shrinks c.Prog while fails keeps reporting a divergence,
// delta-debugging style: it first tries removing shrinking windows of
// instructions, then single instructions, until a fixpoint. Branch and JAL
// targets are renumbered across each removal; a removal that breaks a
// target (or removes the divergence) is simply rejected by the predicate,
// so minimization is always sound — the result is a program that still
// fails — just not guaranteed minimal.
func Minimize(c Case, fails func(Case) bool) Case {
	if !fails(c) {
		return c
	}
	for window := len(c.Prog) / 2; window >= 1; window /= 2 {
		for {
			shrunk := false
			for at := 0; at+window <= len(c.Prog); at++ {
				cand := Case{Name: c.Name, Init: c.Init, Prog: removeRange(c.Prog, at, window)}
				if fails(cand) {
					c = cand
					shrunk = true
					// Restart the scan at the same position: the window now
					// covers what used to be the next instructions.
					at--
				}
			}
			if !shrunk {
				break
			}
		}
	}
	return c
}

// removeRange deletes prog[at:at+n], renumbering absolute branch/JAL
// targets that pointed past the removed range. Targets inside the range
// are clamped to its start (the instruction that now sits there).
func removeRange(prog isa.Program, at, n int) isa.Program {
	out := make(isa.Program, 0, len(prog)-n)
	for i, in := range prog {
		if i >= at && i < at+n {
			continue
		}
		if isa.ClassOf(in.Op) == isa.ClassBranch || in.Op == isa.JAL {
			switch {
			case in.Imm >= int64(at+n):
				in.Imm -= int64(n)
			case in.Imm > int64(at):
				in.Imm = int64(at)
			}
		}
		out = append(out, in)
	}
	return out
}
