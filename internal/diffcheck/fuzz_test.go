package diffcheck

import (
	"testing"

	"pandora/internal/cache"
	"pandora/internal/isa"
)

// decodeProgram turns arbitrary fuzz bytes into a terminating program that
// follows the generator's register convention: a fixed prologue (bases +
// loop counter), a body decoded three bytes per instruction from a menu of
// safe shapes, and the counted-loop epilogue. Every input decodes to a
// comparable case — the fuzzer explores instruction mixes, not encodings.
func decodeProgram(data []byte) isa.Program {
	var p isa.Program
	emit := func(in isa.Inst) { p = append(p, in) }
	emit(isa.Inst{Op: isa.ADDI, Rd: loopReg, Imm: 2})
	emit(isa.Inst{Op: isa.ADDI, Rd: baseA, Imm: regionA})
	emit(isa.Inst{Op: isa.ADDI, Rd: baseB, Imm: regionB})
	emit(isa.Inst{Op: isa.LUI, Rd: baseFar, Imm: regionFar >> 12})
	loopStart := int64(len(p))

	bases := []isa.Reg{baseA, baseB, baseFar}
	for i := 0; i+2 < len(data) && i < 3*48; i += 3 {
		sel, b1, b2 := data[i], data[i+1], data[i+2]
		rd := isa.Reg(1 + b1%genRegHi)
		rs1 := isa.Reg(b1 % (genRegHi + 1)) // may be x0
		rs2 := isa.Reg(b2 % (genRegHi + 1))
		base := bases[b2%3]
		off := int64(b2%(regionSpan/8-1)) * 8
		switch sel % 10 {
		case 0:
			ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLT, isa.SLTU, isa.SLL, isa.SRL, isa.SRA}
			emit(isa.Inst{Op: ops[b1%byte(len(ops))], Rd: rd, Rs1: rs1, Rs2: rs2})
		case 1:
			ops := []isa.Op{isa.MUL, isa.MULH, isa.DIV, isa.REM}
			emit(isa.Inst{Op: ops[b1%byte(len(ops))], Rd: rd, Rs1: rs1, Rs2: rs2})
		case 2:
			ops := []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI}
			emit(isa.Inst{Op: ops[b1%byte(len(ops))], Rd: rd, Rs1: rs1, Imm: int64(b2) - 128})
		case 3:
			ops := []isa.Op{isa.SLLI, isa.SRLI, isa.SRAI}
			emit(isa.Inst{Op: ops[b1%byte(len(ops))], Rd: rd, Rs1: rs1, Imm: int64(b2 % 63)})
		case 4:
			ops := []isa.Op{isa.SB, isa.SH, isa.SW, isa.SD}
			emit(isa.Inst{Op: ops[b1%byte(len(ops))], Rs1: base, Rs2: rs2, Imm: off})
		case 5:
			ops := []isa.Op{isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD}
			emit(isa.Inst{Op: ops[b1%byte(len(ops))], Rd: rd, Rs1: base, Imm: off})
		case 6:
			// Silent-store pair.
			emit(isa.Inst{Op: isa.LD, Rd: rd, Rs1: base, Imm: off})
			emit(isa.Inst{Op: isa.SD, Rs1: base, Rs2: rd, Imm: off})
		case 7:
			// Forward branch over one instruction.
			bops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
			emit(isa.Inst{Op: bops[b1%byte(len(bops))], Rs1: rs1, Rs2: rs2, Imm: int64(len(p)) + 2})
			emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: int64(b2 % 64)})
		case 8:
			// ADDI feeding a load: the fusion shape.
			emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: base, Imm: off})
			emit(isa.Inst{Op: isa.LD, Rd: isa.Reg(1 + b2%genRegHi), Rs1: rd})
		default:
			emit(isa.Inst{Op: isa.FENCE})
		}
	}
	emit(isa.Inst{Op: isa.ADDI, Rd: loopReg, Rs1: loopReg, Imm: -1})
	emit(isa.Inst{Op: isa.BNE, Rs1: loopReg, Imm: loopStart})
	emit(isa.Inst{Op: isa.HALT})
	return p
}

// FuzzDifferential feeds decoded programs to the same pipeline-vs-emulator
// oracle the sweep uses; any divergence is a crasher.
func FuzzDifferential(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0, 1, 2, 4, 10, 20, 5, 3, 7, 6, 9, 1, 7, 40, 40}, uint16(AllMasks-1))
	f.Add([]byte{6, 0, 0, 4, 0, 0, 9, 0, 0, 5, 0, 0}, uint16(TogSilentStores|TogFuse))
	f.Add([]byte{0, 1, 2, 4, 10, 20, 5, 3, 7, 6, 9, 1, 7, 40, 40}, uint16(TogSpec|TogStLF))
	variants := CacheVariants()
	f.Fuzz(func(t *testing.T, data []byte, sel uint16) {
		c := Case{Name: "fuzz", Prog: decodeProgram(data), Init: InitMemory}
		mask := ToggleMask(sel % AllMasks)
		v := variants[int(sel)%len(variants)]
		if d := RunCase(c, mask, v, nil); d != nil {
			t.Fatalf("divergence under toggles=%v cache=%s: %v\nprogram: %v", mask, v.Name, d, c.Prog)
		}
	})
}

// FuzzCacheHierarchy drives a tiny self-checking hierarchy through
// byte-directed access/prefetch/evict sequences; the per-operation
// self-check plus a final probe must stay clean for every geometry,
// including non-power-of-two TreePLRU way counts.
func FuzzCacheHierarchy(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{5, 3, 255, 254, 253, 10, 11, 12, 13, 14, 15, 16})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		policies := []cache.Policy{cache.LRU, cache.TreePLRU, cache.Random}
		cfg := cache.HierConfig{
			L1: cache.Config{Name: "L1D", Sets: 2, Ways: 1 + int(data[0]%8), LineSize: 64,
				HitLatency: 1, Policy: policies[data[0]%3], Seed: 7},
			L2: cache.Config{Name: "L2", Sets: 4, Ways: 1 + int(data[1]%8), LineSize: 64,
				HitLatency: 4, Policy: policies[data[1]%3], Seed: 11},
			MemLatency: 20,
			SelfCheck:  true,
		}
		h, err := cache.NewHierarchy(cfg)
		if err != nil {
			t.Skip() // geometry rejected by construction-time validation
		}
		for i := 2; i+1 < len(data) && i < 2+2*256; i += 2 {
			addr := uint64(data[i+1]) << 6
			switch data[i] % 8 {
			case 0:
				h.Prefetch(addr)
			case 1:
				h.EvictAll(addr)
			default:
				h.Access(addr, uint64(i), data[i]%2 == 0)
			}
			if err := h.InvariantError(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
		if err := h.CheckInvariants(); err != nil {
			t.Fatalf("final state: %v", err)
		}
	})
}
