package diffcheck

import (
	"math/rand"
	"reflect"
	"testing"

	"pandora/internal/cache"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
	"pandora/internal/taint"
)

// schedRun executes prog under one optimization mask with the chosen
// candidate-gathering path and returns everything observable: the Result
// (stats included), the full ordered event log (which encodes retire
// order cycle by cycle), the taint recorder's leak events, and the final
// architectural registers.
func schedRun(t *testing.T, prog isa.Program, mask ToggleMask, linear bool) (pipeline.Result, []pipeline.Event, *taint.Recorder, [isa.NumRegs]uint64) {
	t.Helper()
	cfg := PipeConfig(mask)
	cfg.RecordEvents = true
	cfg.LinearScheduler = linear
	st := taint.NewState()
	bases, span := ScratchRegions()
	if _, err := st.DefineSecret(taint.Secret{Name: "k", Base: bases[0], Len: span}); err != nil {
		t.Fatalf("DefineSecret: %v", err)
	}
	cfg.Taint = st
	mm := mem.New()
	InitMemory(mm)
	m, err := pipeline.New(cfg, mm, cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatalf("Run(linear=%v): %v", linear, err)
	}
	var regs [isa.NumRegs]uint64
	for r := 0; r < isa.NumRegs; r++ {
		regs[r] = m.Reg(isa.Reg(r))
	}
	return res, m.Events, st.Rec, regs
}

// TestSchedulerEquivalence diffs the bitset scheduler against the
// reference linear walk over a seeded corpus: for every program and
// toggle mask, the two candidate-gathering paths must agree on the Stats
// block, the full per-µop event stream (dispatch/issue/retire/squash
// order, cycle for cycle — this is the retire-order check), the recorded
// taint-leak events, and the final architectural registers. Any
// divergence means the dispW/execW mask bookkeeping disagrees with the
// stages it mirrors.
func TestSchedulerEquivalence(t *testing.T) {
	const numPrograms = 120
	rng := rand.New(rand.NewSource(0xb17_5e7))
	for i := 0; i < numPrograms; i++ {
		prog := Generate(rng)
		// Cycle through the toggle space so every optimization class runs
		// under both schedulers many times, including the all-on mask.
		mask := ToggleMask(i * 11 % AllMasks)
		if i%16 == 0 {
			mask = AllMasks - 1
		}

		resL, evL, recL, regsL := schedRun(t, prog, mask, true)
		resB, evB, recB, regsB := schedRun(t, prog, mask, false)

		if resL.Stats != resB.Stats {
			t.Fatalf("program %d mask %v: stats diverge\nlinear: %+v\nbitset: %+v",
				i, mask, resL.Stats, resB.Stats)
		}
		if regsL != regsB {
			t.Fatalf("program %d mask %v: architectural registers diverge\nlinear: %v\nbitset: %v",
				i, mask, regsL, regsB)
		}
		if len(evL) != len(evB) {
			t.Fatalf("program %d mask %v: event counts diverge: linear=%d bitset=%d",
				i, mask, len(evL), len(evB))
		}
		for k := range evL {
			if evL[k] != evB[k] {
				t.Fatalf("program %d mask %v: event %d diverges\nlinear: %v\nbitset: %v",
					i, mask, k, evL[k], evB[k])
			}
		}
		if recL.Counts != recB.Counts {
			t.Fatalf("program %d mask %v: leak-event counts diverge\nlinear: %v\nbitset: %v",
				i, mask, recL.Counts, recB.Counts)
		}
		if !reflect.DeepEqual(recL.Events, recB.Events) {
			t.Fatalf("program %d mask %v: leak events diverge (linear %d, bitset %d events)",
				i, mask, len(recL.Events), len(recB.Events))
		}
	}
}
