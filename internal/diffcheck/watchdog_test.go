package diffcheck

import (
	"math/rand"
	"testing"

	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
)

// TestWatchdogNeverTripsOnCleanPrograms arms the forward-progress
// watchdog on a generated program under every optimization-toggle
// combination: a fault-free run must never be declared livelocked, and
// supervision must not perturb the result. This pins the false-positive
// rate of the retire-rate window at zero across the whole toggle space.
func TestWatchdogNeverTripsOnCleanPrograms(t *testing.T) {
	prog := Generate(rand.New(rand.NewSource(7)))
	for mask := ToggleMask(0); mask < AllMasks; mask++ {
		run := func(supervised bool) pipeline.Result {
			cfg := PipeConfig(mask)
			if supervised {
				cfg.Watchdog = &pipeline.WatchdogConfig{}
			}
			m := mem.New()
			InitMemory(m)
			pipe, err := pipeline.New(cfg, m, cache.MustNewHierarchy(cache.DefaultHierConfig()))
			if err != nil {
				t.Fatalf("mask %v: New: %v", mask, err)
			}
			res, err := pipe.Run(prog)
			if err != nil {
				t.Fatalf("mask %v (supervised=%v): %v", mask, supervised, err)
			}
			return res
		}
		plain := run(false)
		watched := run(true)
		if plain != watched {
			t.Errorf("mask %v: supervised result %+v differs from plain %+v", mask, watched, plain)
		}
	}
}
