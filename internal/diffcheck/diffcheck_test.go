package diffcheck

import (
	"context"
	"math/rand"
	"testing"

	"pandora/internal/isa"
	"pandora/internal/uopt"
)

func TestToggleMaskString(t *testing.T) {
	for mask, want := range map[ToggleMask]string{
		0:                         "none",
		TogSilentStores:           "ss",
		TogSilentStores | TogFuse: "ss+fu",
		TogPredictor | TogRFC:     "vp+rfc",
		TogSpec | TogStLF:         "sp+sf",
		AllMasks - 1:              "ss+vp+ru+cs+pk+rfc+fu+sp+sf",
	} {
		if got := mask.String(); got != want {
			t.Errorf("ToggleMask(%#x) = %q, want %q", uint16(mask), got, want)
		}
	}
}

func TestPipeConfigToggles(t *testing.T) {
	off := PipeConfig(0)
	if off.SilentStores != nil || off.Predictor != nil || off.Reuse != nil ||
		off.Simplifier != nil || off.Packer != nil || off.RFC != uopt.RFCOff || off.FuseAddiLoad {
		t.Errorf("mask 0 enabled an optimization: %+v", off)
	}
	if !off.CheckInvariants {
		t.Error("harness configs must have invariant checking on")
	}
	if off.Speculation != nil || off.StoreAddrLat != 0 {
		t.Errorf("mask 0 enabled speculation: %+v", off)
	}
	on := PipeConfig(AllMasks - 1)
	if on.SilentStores == nil || on.Predictor == nil || on.Reuse == nil ||
		on.Simplifier == nil || on.Packer == nil || on.RFC != uopt.RFCAnyValue || !on.FuseAddiLoad {
		t.Errorf("full mask left an optimization off: %+v", on)
	}
	if on.Speculation == nil || !on.Speculation.WrongPath || !on.Speculation.StLF || on.StoreAddrLat != 4 {
		t.Errorf("full mask left speculation off: %+v", on.Speculation)
	}
	if sf := PipeConfig(TogStLF); sf.Speculation == nil || !sf.Speculation.StLF || sf.Speculation.WrongPath {
		t.Errorf("TogStLF alone misconfigured: %+v", sf.Speculation)
	}
}

func TestFixturesCleanUnderExtremes(t *testing.T) {
	variants := CacheVariants()
	for _, c := range Fixtures() {
		for _, mask := range []ToggleMask{0, AllMasks - 1} {
			for _, v := range variants {
				if d := RunCase(c, mask, v, nil); d != nil {
					t.Errorf("%s under toggles=%v cache=%s: %v", c.Name, mask, v.Name, d)
				}
			}
		}
	}
}

func TestQuickSweepClean(t *testing.T) {
	rep, err := Check(context.Background(), Options{Programs: 24, MasksPerProgram: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("sweep diverged:\n%s", rep)
	}
	// 3 scheduled masks + 1 random per case.
	if min := rep.Programs * 4; rep.Runs < min {
		t.Errorf("Runs = %d, want >= %d", rep.Runs, min)
	}
}

// TestQuickScheduleCoversSpeculation pins the CI contract of the
// rotating-mask stride: even the 64-program `-quick` corpus must run
// deterministic masks with each speculation toggle set, not just reach
// them through the all-on extreme and random draws.
func TestQuickScheduleCoversSpeculation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var spec, stlf int
	for i := 0; i < 64; i++ {
		rotating := masksFor(i, 0, rng)[2]
		if rotating&TogSpec != 0 {
			spec++
		}
		if rotating&TogStLF != 0 {
			stlf++
		}
	}
	if spec == 0 || stlf == 0 {
		t.Errorf("64-case rotating schedule: %d masks with sp, %d with sf; want both > 0", spec, stlf)
	}
}

// TestRegressionReplayedMispredictWrongPath is the minimized repro of the
// first divergence the widened (speculative) mask space surfaced: a value
// predictor squash requeues a mispredicted loop branch together with its
// correct-path successors; on re-dispatch the branch re-entered wrong-path
// mode, and the harness's invariant checker flagged the correct-path
// replays dispatched behind it ("correct-path µop younger than unresolved
// mispredicted branch"). Replayed mispredicts must take the legacy
// redirect stall instead of restarting wrong-path fetch.
func TestRegressionReplayedMispredictWrongPath(t *testing.T) {
	prog := isa.Program{
		{Op: isa.ADDI, Rd: 30, Rs1: 0, Imm: 5},
		{Op: isa.LUI, Rd: 26, Imm: 128},
		{Op: isa.SD, Rs1: 29, Rs2: 6, Imm: 440},
		{Op: isa.LD, Rd: 2, Rs1: 26, Imm: 368},
		{Op: isa.SD, Rs1: 26, Rs2: 2, Imm: 368},
		{Op: isa.ADDI, Rd: 30, Rs1: 30, Imm: -1},
		{Op: isa.BNE, Rs1: 30, Imm: 2},
		{Op: isa.HALT},
	}
	c := Case{Name: "replayed-mispredict", Prog: prog, Init: InitMemory}
	for _, v := range CacheVariants() {
		for _, mask := range []ToggleMask{
			AllMasks - 1,
			TogPredictor | TogSpec,
			TogPredictor | TogSpec | TogStLF,
		} {
			if d := RunCase(c, mask, v, nil); d != nil {
				t.Errorf("toggles=%v cache=%s: %v", mask, v.Name, d)
			}
		}
	}
}

func TestInjectedBugCaughtAndMinimized(t *testing.T) {
	rep, err := Check(context.Background(), Options{
		Programs: 64, MasksPerProgram: 1, Seed: 1,
		Subject: BugSRAAsSRL, SkipFixtures: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("injected SRA-as-SRL bug not caught")
	}
	f := rep.Failures[0]
	if len(f.Repro) == 0 || len(f.Repro) > 10 {
		t.Fatalf("repro not minimized to <=10 instructions (%d):\n%s", len(f.Repro), rep)
	}
	// The minimized repro must itself still diverge, and only under the bug.
	c := Case{Name: "repro", Prog: f.Repro, Init: InitMemory}
	v := CacheVariants()[0]
	if RunCase(c, f.Mask, v, BugSRAAsSRL) == nil {
		t.Error("minimized repro no longer diverges under the injected bug")
	}
	if d := RunCase(c, f.Mask, v, nil); d != nil {
		t.Errorf("minimized repro diverges without the bug: %v", d)
	}
}

func TestRemoveRangeRenumbersTargets(t *testing.T) {
	prog := isa.Program{
		{Op: isa.ADDI, Rd: 1, Rs1: 0, Imm: 1}, // 0
		{Op: isa.BEQ, Rs1: 0, Rs2: 0, Imm: 3}, // 1: target past the removal
		{Op: isa.ADDI, Rd: 2, Rs1: 2, Imm: 1}, // 2: removed
		{Op: isa.JAL, Rd: 0, Imm: 2},          // 3: target inside the removal -> clamps
		{Op: isa.HALT},                        // 4
	}
	out := removeRange(prog, 2, 1)
	if len(out) != 4 {
		t.Fatalf("len = %d", len(out))
	}
	if out[1].Imm != 2 {
		t.Errorf("branch target = %d, want 2", out[1].Imm)
	}
	if out[2].Imm != 2 {
		t.Errorf("jal target = %d, want clamped 2", out[2].Imm)
	}
	if out[0].Imm != 1 || out[3].Op != isa.HALT {
		t.Errorf("unrelated instructions disturbed: %v", out)
	}
}

func TestMinimizeKeepsFailing(t *testing.T) {
	// Predicate: program still contains an SRA. Minimize must shrink to a
	// program that still satisfies it.
	rng := rand.New(rand.NewSource(9))
	var c Case
	for {
		c = Case{Name: "m", Prog: Generate(rng), Init: InitMemory}
		if hasOp(c.Prog, isa.SRA) || hasOp(c.Prog, isa.SRAI) {
			break
		}
	}
	fails := func(cand Case) bool { return hasOp(cand.Prog, isa.SRA) || hasOp(cand.Prog, isa.SRAI) }
	min := Minimize(c, fails)
	if !fails(min) {
		t.Fatal("minimized case no longer fails the predicate")
	}
	if len(min.Prog) >= len(c.Prog) {
		t.Errorf("no shrink: %d -> %d instructions", len(c.Prog), len(min.Prog))
	}
}

func hasOp(p isa.Program, op isa.Op) bool {
	for _, in := range p {
		if in.Op == op {
			return true
		}
	}
	return false
}
