// Package diffcheck is the differential-testing harness for the simulator
// core: it runs the same program through the functional emulator (package
// emu) and the out-of-order pipeline (package pipeline) and demands
// bit-identical final architectural state — every committed register and
// every byte of data memory — under every combination of the nine
// microarchitectural toggles (the seven optimization classes the paper
// studies plus branch speculation and the store-to-load forwarding
// predictor) and under a spread of cache geometries and replacement
// policies.
//
// The pipeline already cross-checks each retired result against an inline
// oracle, but that only covers values that flow through retire
// verification; final-state comparison additionally catches store-queue
// drain bugs, forwarding bugs that cancel out at retire, taint bookkeeping
// errors and cache-model corruption surfaced by the invariant checks
// (pipeline.Config.CheckInvariants, cache.HierConfig.SelfCheck), which the
// harness always enables.
//
// Programs come from three sources: a seeded random generator (Generate),
// hand-written fixtures, and the mini-eBPF JIT (Fixtures). A Subject hook
// rewrites programs before the pipeline sees them, which is how the
// harness proves it can catch bugs: an injected miscompile (BugSRAAsSRL)
// must be detected and minimized to a short repro (Minimize).
package diffcheck

import (
	"fmt"

	"pandora/internal/cache"
	"pandora/internal/dmp"
	"pandora/internal/emu"
	"pandora/internal/faults"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
	"pandora/internal/uopt"
)

// maxEmuSteps bounds the golden run; generated and fixture programs
// terminate in far fewer steps, so hitting it means the program does not
// halt and the case is not comparable.
const maxEmuSteps = 1_000_000

// ToggleMask selects which of the nine toggled mechanisms are enabled:
// the seven studied optimization classes, wrong-path branch speculation,
// and the store-to-load forwarding predictor. All 2^9 combinations are
// valid pipeline configurations.
type ToggleMask uint16

const (
	TogSilentStores ToggleMask = 1 << iota
	TogPredictor
	TogReuse
	TogSimplifier
	TogPacker
	TogRFC
	TogFuse
	// TogSpec enables wrong-path fetch behind a bimodal branch predictor:
	// squash recovery and speculative cache pollution join the compared
	// behavior (architectural state must stay bit-identical regardless).
	TogSpec
	// TogStLF enables the store-to-load forwarding predictor together with
	// a slow store AGU, so speculative forwards — and their retire-time
	// verify/replay — actually occur.
	TogStLF
)

// NumToggles is the number of independent toggles; AllMasks is the size of
// the full combination space.
const (
	NumToggles = 9
	AllMasks   = 1 << NumToggles
)

var toggleNames = []struct {
	bit  ToggleMask
	name string
}{
	{TogSilentStores, "ss"},
	{TogPredictor, "vp"},
	{TogReuse, "ru"},
	{TogSimplifier, "cs"},
	{TogPacker, "pk"},
	{TogRFC, "rfc"},
	{TogFuse, "fu"},
	{TogSpec, "sp"},
	{TogStLF, "sf"},
}

func (m ToggleMask) String() string {
	if m == 0 {
		return "none"
	}
	s := ""
	for _, t := range toggleNames {
		if m&t.bit != 0 {
			if s != "" {
				s += "+"
			}
			s += t.name
		}
	}
	return s
}

// PipeConfig builds the pipeline configuration for a toggle mask. Each
// call returns fresh optimization state (predictors and reuse buffers are
// stateful), with invariant checking on and a cycle budget suited to the
// short programs the harness runs.
func PipeConfig(mask ToggleMask) pipeline.Config {
	c := pipeline.DefaultConfig()
	c.MaxCycles = 2_000_000
	c.CheckInvariants = true
	if mask&TogSilentStores != 0 {
		c.SilentStores = &pipeline.SilentStoreConfig{Retry: true}
	}
	if mask&TogPredictor != 0 {
		c.Predictor = uopt.NewPredictor(2)
	}
	if mask&TogReuse != 0 {
		c.Reuse = uopt.NewReuseBuffer(uopt.SchemeSv, 64)
	}
	if mask&TogSimplifier != 0 {
		c.Simplifier = &uopt.Simplifier{ZeroSkipMul: true, TrivialALU: true, EarlyExitDiv: true}
	}
	if mask&TogPacker != 0 {
		c.Packer = uopt.NewPacker()
	}
	if mask&TogRFC != 0 {
		c.RFC = uopt.RFCAnyValue
		c.PhysRegs = 48 // tight free list so compression actually engages
	}
	if mask&TogFuse != 0 {
		c.FuseAddiLoad = true
	}
	if mask&TogSpec != 0 {
		c.Speculation = &pipeline.SpeculationConfig{WrongPath: true, Bimodal: true}
	}
	if mask&TogStLF != 0 {
		if c.Speculation == nil {
			c.Speculation = &pipeline.SpeculationConfig{}
		}
		c.Speculation.StLF = true
		c.StoreAddrLat = 4
	}
	return c
}

// CacheVariant names one hierarchy geometry the harness runs under.
// Stride additionally attaches a stride prefetcher, exercising the
// prefetch fill paths (and, with a prefetch buffer, the buffer's
// inclusivity bookkeeping).
type CacheVariant struct {
	Name   string
	Config cache.HierConfig
	Stride bool
}

// CacheVariants returns the hierarchy geometries the harness cycles
// through. All have SelfCheck on. The tiny variants force constant
// eviction and back-invalidation; the ways=6 variant is the
// non-power-of-two TreePLRU shape whose victim walk was previously broken.
func CacheVariants() []CacheVariant {
	tiny := func(policy cache.Policy, l1Ways, l2Ways int) cache.HierConfig {
		return cache.HierConfig{
			L1:         cache.Config{Name: "L1D", Sets: 4, Ways: l1Ways, LineSize: 64, HitLatency: 2, Policy: policy, Seed: 7},
			L2:         cache.Config{Name: "L2", Sets: 8, Ways: l2Ways, LineSize: 64, HitLatency: 12, Policy: policy, Seed: 11},
			MemLatency: 100,
			SelfCheck:  true,
		}
	}
	def := cache.DefaultHierConfig()
	def.SelfCheck = true

	pbuf := tiny(cache.LRU, 2, 4)
	pbuf.PrefetchBuffer = true
	pbuf.PrefetchBufferSize = 4

	return []CacheVariant{
		{Name: "default-lru", Config: def},
		{Name: "tiny-lru", Config: tiny(cache.LRU, 2, 4)},
		{Name: "tiny-plru-pow2", Config: tiny(cache.TreePLRU, 4, 8)},
		{Name: "tiny-plru-ways6", Config: tiny(cache.TreePLRU, 6, 6)},
		{Name: "tiny-random", Config: tiny(cache.Random, 2, 4)},
		{Name: "stride-pbuf", Config: pbuf, Stride: true},
	}
}

// Case is one comparable program: the code plus the memory image both
// machines start from.
type Case struct {
	Name string
	Prog isa.Program
	// Init seeds the memory image; it runs once per machine on a fresh
	// memory and must be deterministic.
	Init func(*mem.Memory)
}

// Subject rewrites a program before the pipeline runs it (the emulator
// always runs the original). It exists to inject deliberate miscompiles
// and model bugs so the harness can prove it detects them.
type Subject func(isa.Program) isa.Program

// SubjectFromPlan builds a Subject that applies a program-level fault
// plan (internal/faults) to each program before the pipeline runs it —
// the same mechanism the fault campaign uses, so `pandora check -inject`
// and `pandora fault` exercise one injector. A nil or inert plan yields a
// nil Subject. Each invocation uses a fresh Injector: a Subject is called
// once per run, and injector firing state is single-run.
func SubjectFromPlan(plan *faults.Plan) Subject {
	if faults.NewInjector(plan) == nil {
		return nil
	}
	return func(p isa.Program) isa.Program {
		return faults.NewInjector(plan).Rewrite(p)
	}
}

// BugSRAAsSRL is the canonical injected bug — every arithmetic right
// shift becomes a logical one, diverging only when a shifted value is
// negative, so catching it requires real data-dependent coverage. It is
// the SiteMiscompile fault plan applied as a Subject.
func BugSRAAsSRL(p isa.Program) isa.Program {
	return SubjectFromPlan(&faults.Plan{Site: faults.SiteMiscompile})(p)
}

// Divergence describes one disagreement between pipeline and emulator.
type Divergence struct {
	Kind   string // "register", "memory", "pipeline-error", "config-error"
	Detail string
}

func (d Divergence) String() string { return d.Kind + ": " + d.Detail }

// RunCase runs c through both machines under one toggle mask and cache
// variant and returns the first divergence, or nil when the final
// architectural states agree. RDCYCLE-derived (tainted) registers and
// memory bytes are excluded: they are timing-dependent by design.
// A case whose golden run does not halt is not comparable and returns nil.
func RunCase(c Case, mask ToggleMask, v CacheVariant, subject Subject) *Divergence {
	golden := emu.New(mem.New())
	if c.Init != nil {
		c.Init(golden.Mem)
	}
	if err := golden.Run(c.Prog, maxEmuSteps); err != nil {
		return nil
	}

	prog := c.Prog
	if subject != nil {
		prog = subject(prog)
	}
	pm := mem.New()
	if c.Init != nil {
		c.Init(pm)
	}
	hier := cache.MustNewHierarchy(v.Config)
	if v.Stride {
		hier.AddListener(dmp.NewStride(hier))
	}
	m, err := pipeline.New(PipeConfig(mask), pm, hier)
	if err != nil {
		return &Divergence{Kind: "config-error", Detail: err.Error()}
	}
	if _, err := m.Run(prog); err != nil {
		return &Divergence{Kind: "pipeline-error", Detail: err.Error()}
	}

	for r := isa.Reg(1); r < isa.NumRegs; r++ {
		if m.RegTainted(r) {
			continue
		}
		if got, want := m.Reg(r), golden.Regs[r]; got != want {
			return &Divergence{Kind: "register",
				Detail: fmt.Sprintf("%v = %#x, emulator has %#x", r, got, want)}
		}
	}
	for _, d := range mem.Diff(pm, golden.Mem, 0) {
		if m.MemTainted(d.Addr) {
			continue
		}
		return &Divergence{Kind: "memory",
			Detail: fmt.Sprintf("mem[%#x] = %#x, emulator has %#x", d.Addr, d.A, d.B)}
	}
	return nil
}
