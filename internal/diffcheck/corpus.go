package diffcheck

import (
	"fmt"

	"pandora/internal/asm"
	"pandora/internal/ebpf"
	"pandora/internal/mem"
)

// Fixtures returns the hand-written and JIT-produced cases the harness
// always runs in addition to the generated corpus: programs shaped like
// the paper's proofs of concept, which stress the exact machinery (silent
// stores, forwarding, fences, pointer-chase loads) the toggles modify.
func Fixtures() []Case {
	cases := []Case{
		{
			Name: "ss-amplify",
			// Repeated same-value stores: the silent-store candidate stream.
			Prog: asm.MustAssemble(`
				addi x1, x0, 0x1000
				addi x2, x0, 77
				addi x3, x0, 4
			loop:
				sd   x2, 0(x1)
				sd   x2, 64(x1)
				sd   x2, 0(x1)
				addi x3, x3, -1
				bne  x3, x0, loop
				halt
			`),
		},
		{
			Name: "forward-partial",
			// Narrow store under a wide load: partial forwarding merges
			// store-queue bytes with memory bytes.
			Prog: asm.MustAssemble(`
				addi x1, x0, 0x1200
				addi x2, x0, -1
				sd   x2, 0(x1)
				addi x3, x0, 0
				sb   x3, 3(x1)
				ld   x4, 0(x1)
				sh   x3, 6(x1)
				ld   x5, 0(x1)
				halt
			`),
		},
		{
			Name: "fence-widths",
			Prog: asm.MustAssemble(`
				addi x1, x0, 0x1300
				addi x2, x0, -2
				sw   x2, 0(x1)
				fence
				lb   x3, 0(x1)
				lbu  x4, 0(x1)
				lh   x5, 0(x1)
				lhu  x6, 2(x1)
				lwu  x7, 0(x1)
				halt
			`),
		},
		{
			Name: "jal-jalr-chain",
			Prog: asm.MustAssemble(`
				addi x5, x0, 6
				jal  x1, f1
				addi x6, x6, 100   # skipped
			f1:
				addi x6, x6, 1
				addi x7, x0, 7
				jalr x2, 0(x7)     # jump to index 7 (the next halt block)
				addi x6, x6, 100   # skipped
				addi x6, x6, 2
				halt
			`),
		},
	}
	if c, err := figure7Case(); err == nil {
		cases = append(cases, c)
	}
	if c, err := chaseCase(); err == nil {
		cases = append(cases, c)
	}
	return cases
}

// ebpfEnv builds a three-map environment with bases far from the
// generator's scratch regions, plus the Init that materializes map
// contents so the pointer chase follows real in-bounds indices.
func ebpfEnv() (*ebpf.Env, func(*mem.Memory)) {
	env := &ebpf.Env{Maps: []ebpf.Map{
		{Name: "Z", ElemSize: 8, NElems: 16, Base: 0x100000},
		{Name: "Y", ElemSize: 8, NElems: 16, Base: 0x110000},
		{Name: "X", ElemSize: 8, NElems: 16, Base: 0x120000},
	}}
	init := func(m *mem.Memory) {
		for i := 0; i < 16; i++ {
			m.Write(0x100000+uint64(i)*8, 8, uint64((i*7)%16))
			m.Write(0x110000+uint64(i)*8, 8, uint64((i*5)%16))
			m.Write(0x120000+uint64(i)*8, 8, uint64(i+1))
		}
	}
	return env, init
}

func figure7Case() (Case, error) {
	env, init := ebpfEnv()
	prog, err := ebpf.Compile(ebpf.Figure7Program(0, 1, 2, 12, 8, 8, 8), env)
	if err != nil {
		return Case{}, fmt.Errorf("diffcheck: figure7 fixture: %w", err)
	}
	return Case{Name: "ebpf-figure7", Prog: prog, Init: init}, nil
}

func chaseCase() (Case, error) {
	env, init := ebpfEnv()
	levels := []ebpf.ChaseLevel{{Map: 0, LoadSize: 8}, {Map: 1, LoadSize: 8}, {Map: 2, LoadSize: 8}}
	prog, err := ebpf.Compile(ebpf.ChaseProgram(levels, 10), env)
	if err != nil {
		return Case{}, fmt.Errorf("diffcheck: chase fixture: %w", err)
	}
	return Case{Name: "ebpf-chase3", Prog: prog, Init: init}, nil
}
