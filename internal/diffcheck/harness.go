package diffcheck

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"pandora/internal/isa"
	"pandora/internal/parallel"
)

// Options parameterizes a harness sweep.
type Options struct {
	// Programs is the number of generated programs (default 512, matching
	// the rotating-mask schedule so one default sweep covers every toggle
	// combination).
	Programs int
	// Seed is the corpus seed; every program derives its own RNG from
	// parallel.Seed(Seed, index), so the corpus is identical at any
	// worker count.
	Seed int64
	// MasksPerProgram is how many random toggle masks each program runs
	// under, in addition to the three scheduled ones (all-off, all-on, and
	// a rotating mask that covers all 512 combinations across the corpus).
	// Default 3.
	MasksPerProgram int
	// Workers bounds the fan-out (0 = GOMAXPROCS).
	Workers int
	// Subject, when set, rewrites each program before the pipeline runs it
	// (bug injection).
	Subject Subject
	// SkipFixtures drops the hand-written and eBPF cases.
	SkipFixtures bool
	// MaxFailures caps how many failures keep their minimized repro in the
	// report (default 4); further divergences are still counted, just
	// without a listing.
	MaxFailures int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// Failure is one minimized divergence.
type Failure struct {
	Name    string
	Mask    ToggleMask
	Variant string
	Div     Divergence
	Repro   isa.Program
}

// Report summarizes a sweep.
type Report struct {
	Programs int // cases examined (generated + fixtures)
	Runs     int // pipeline-vs-emulator comparisons executed
	Failures []Failure
}

// Ok reports a clean sweep.
func (r Report) Ok() bool { return len(r.Failures) == 0 }

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diffcheck: %d programs, %d differential runs, %d divergence(s)\n",
		r.Programs, r.Runs, len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "\nFAIL %s  toggles=%v  cache=%s\n  %v\n", f.Name, f.Mask, f.Variant, f.Div)
		if len(f.Repro) == 0 {
			fmt.Fprintf(&b, "  (repro not minimized: over the failure cap)\n")
			continue
		}
		fmt.Fprintf(&b, "  minimized repro (%d instructions):\n", len(f.Repro))
		for i, in := range f.Repro {
			fmt.Fprintf(&b, "    %3d: %v\n", i, in)
		}
	}
	return b.String()
}

// maskStride is the rotating schedule's step. It is odd, hence coprime
// with AllMasks (a power of two), so a 512-program sweep still visits
// every mask exactly once — but the walk spreads over the whole 9-bit
// space immediately, so even the 64-program `-quick` corpus exercises
// masks with the high speculation bits (sp, sf) set instead of only
// masks 0–63.
const maskStride = 73

// masksFor returns the toggle masks case index i runs under: the two
// extremes, a rotating mask so the whole corpus covers all 512
// combinations, and extra random draws.
func masksFor(i int, extra int, rng *rand.Rand) []ToggleMask {
	masks := []ToggleMask{0, AllMasks - 1, ToggleMask(i * maskStride % AllMasks)}
	for k := 0; k < extra; k++ {
		masks = append(masks, ToggleMask(rng.Intn(AllMasks)))
	}
	return masks
}

// Check runs the full differential sweep: fixtures plus Programs generated
// cases, each under several toggle masks, cycling through the cache
// variants. Divergent cases are minimized before being reported.
func Check(ctx context.Context, opts Options) (Report, error) {
	if opts.Programs <= 0 {
		opts.Programs = 512
	}
	if opts.MasksPerProgram <= 0 {
		opts.MasksPerProgram = 3
	}
	if opts.MaxFailures <= 0 {
		opts.MaxFailures = 4
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	variants := CacheVariants()

	var cases []Case
	if !opts.SkipFixtures {
		cases = Fixtures()
	}
	nFixtures := len(cases)
	for i := 0; i < opts.Programs; i++ {
		// Corpus generation can dominate huge sweeps; honor deadlines
		// here too, not just between runs.
		if i&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return Report{}, err
			}
		}
		rng := rand.New(rand.NewSource(parallel.Seed(opts.Seed, i)))
		cases = append(cases, Case{
			Name: fmt.Sprintf("gen-%04d", i),
			Prog: Generate(rng),
			Init: InitMemory,
		})
	}
	logf("diffcheck: %d fixtures + %d generated programs, %d cache variants",
		nFixtures, opts.Programs, len(variants))

	type caseResult struct {
		runs     int
		failures []Failure
	}
	results, err := parallel.Map(ctx, opts.Workers, cases,
		func(_ context.Context, i int, c Case) (caseResult, error) {
			var res caseResult
			// Mask draws reuse the per-case seed so the schedule is a pure
			// function of (Seed, index).
			rng := rand.New(rand.NewSource(parallel.Seed(opts.Seed+1, i)))
			v := variants[i%len(variants)]
			for _, mask := range masksFor(i, opts.MasksPerProgram, rng) {
				res.runs++
				div := RunCase(c, mask, v, opts.Subject)
				if div == nil {
					continue
				}
				min := Minimize(c, func(cand Case) bool {
					return RunCase(cand, mask, v, opts.Subject) != nil
				})
				res.failures = append(res.failures, Failure{
					Name: c.Name, Mask: mask, Variant: v.Name, Div: *div, Repro: min.Prog,
				})
				break // one minimized failure per case is enough signal
			}
			return res, nil
		})
	if err != nil {
		return Report{}, err
	}

	rep := Report{Programs: len(cases)}
	for _, r := range results {
		rep.Runs += r.runs
		for _, f := range r.failures {
			if len(rep.Failures) < opts.MaxFailures {
				rep.Failures = append(rep.Failures, f)
			} else {
				rep.Failures = append(rep.Failures, Failure{
					Name: f.Name, Mask: f.Mask, Variant: f.Variant, Div: f.Div,
				})
			}
		}
	}
	return rep, nil
}
