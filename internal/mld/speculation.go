package mld

// This file defines the descriptors for the two speculative leak classes
// added with the pipeline's speculation support: store-to-leak forwarding
// (Schwarz et al., "Store-to-Leak Forwarding", arXiv:1905.05725) and
// speculative-vectorization leakage (Karuppanan & Mirbagher,
// arXiv:2302.01131). Both are squash-transparent: the observable outcome
// exists whether or not the speculation is later unwound, which is why the
// taint layer records events from wrong-path and replayed µops.

// StLFThreshold is the forwarding predictor's confidence threshold: a
// load PC forwards speculatively once its counter reaches this value,
// matching the pipeline's trySpecForward gate.
const StLFThreshold = 2

// StLFTable is the store-to-load forwarding predictor's state: a
// per-load-PC saturating confidence counter (Uarch input).
type StLFTable map[int64]uint64

// BranchTable is the bimodal direction predictor's state: a per-branch-PC
// 2-bit saturating counter, taken iff >= 2 (Uarch input).
type BranchTable map[int64]uint64

// StoreToLeakForward is the store-to-leak forwarding descriptor: a
// forwarding predictor speculatively forwards an in-flight store's data to
// a younger load before the store's address resolves, and replays the load
// when the resolved addresses turn out not to match. The observable
// outcome is therefore whether the (possibly secret-dependent) store
// address equals the load address — gated on the predictor having trained.
// Outcomes: 0 = no speculative forward (predictor cold); 1 = forward
// replayed (addresses differ); 2 = forward verified (addresses match).
func StoreToLeakForward() *Descriptor {
	return &Descriptor{
		Name:  "store_to_leak",
		Class: "speculative store forwarding",
		Params: []Param{
			{Name: "i1", Kind: KindInst}, // older store, address unresolved
			{Name: "i2", Kind: KindInst}, // younger forwarded load
			{Name: "stlf_table", Kind: KindUarch},
		},
		Eval: func(a Assignment) uint64 {
			st := a["i1"].(Inst)
			ld := a["i2"].(Inst)
			tbl := a["stlf_table"].(StLFTable)
			if tbl[ld.PC] < StLFThreshold {
				return 0
			}
			return 1 + Bit(st.Addr == ld.Addr)
		},
	}
}

// SpecVectorization is the speculative-vectorization descriptor: under a
// predicted-taken branch, a vector lane (or wrong-path scalar load) issues
// a data-dependent memory access that updates the cache before the
// mispredict squash can suppress it. The outcome composes the direction
// predictor's gate with the cache MLD of the lane address: 0 = predicted
// not-taken (lane never issues); otherwise 1 + cache_h(lane address),
// leaking the secret-derived address through fill placement even though
// the access is architecturally dead.
func SpecVectorization() *Descriptor {
	return &Descriptor{
		Name:  "spec_vectorization",
		Class: "speculative vectorization",
		Params: []Param{
			{Name: "i1", Kind: KindInst}, // guarding branch
			{Name: "i2", Kind: KindInst}, // masked-lane load
			{Name: "branch_table", Kind: KindUarch},
			{Name: "cache", Kind: KindUarch},
		},
		Eval: func(a Assignment) uint64 {
			br := a["i1"].(Inst)
			ld := a["i2"].(Inst)
			bt := a["branch_table"].(BranchTable)
			c := a["cache"].(*CacheState)
			if bt[br.PC] < 2 {
				return 0
			}
			return 1 + c.MLDOutcome(ld.Addr)
		},
	}
}

// Speculative returns the descriptors of the two speculation-borne leak
// classes. They are kept separate from Examples() — which enumerates
// exactly the nine descriptors of the paper's Figures 2 and 3 — because
// these model attacks from the follow-on literature, not the paper's
// running examples.
func Speculative() []*Descriptor {
	return []*Descriptor{
		StoreToLeakForward(),
		SpecVectorization(),
	}
}
