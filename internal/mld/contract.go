package mld

// This file defines the descriptor behind the constant-time baseline
// contract the kernel-library checker (internal/kernels) enforces: the
// attacker observes the cache state left by every demand access, so a
// secret-dependent access address is a leak on any machine, before a
// single optimization is enabled. Barthe et al. ("Testing side-channel
// security of cryptographic implementations against future
// microarchitectures") call this the ct base contract; the optimization
// descriptors in examples.go and speculation.go are its extensions.

// CacheAddress is the demand-access cache descriptor: the observable
// outcome of a load or store is the cache MLD of its address — 0 on a
// hit, set(addr)+1 on a miss — so two secrets that map the access to
// different sets (or one to a hit and one to a miss) are
// distinguishable by a prime-and-probe attacker.
func CacheAddress() *Descriptor {
	return &Descriptor{
		Name:  "cache_address",
		Class: "baseline cache",
		Params: []Param{
			{Name: "i1", Kind: KindInst},     // the demand load/store
			{Name: "cache", Kind: KindUarch}, // cache state it perturbs
		},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			c := a["cache"].(*CacheState)
			return c.MLDOutcome(i1.Addr)
		},
	}
}

// Contract returns the descriptors of the constant-time base contract:
// the observations an attacker gets on every machine, optimizations
// aside. Kept separate from Examples() — which enumerates exactly the
// nine descriptors of the paper's Figures 2 and 3 — like Speculative().
func Contract() []*Descriptor {
	return []*Descriptor{
		CacheAddress(),
		BranchDirection(),
	}
}
