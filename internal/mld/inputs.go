package mld

// Concrete input value types used by the example descriptors. They are
// deliberately abstract (independent of the simulator packages): an MLD
// describes an optimization's observable behavior, not one implementation.

// Inst models one dynamic instruction's descriptor-relevant fields.
type Inst struct {
	PC   int64
	Op   string
	Args [2]uint64 // operand values (i1.arg.v0, i1.arg.v1)
	Dst  uint64    // result value (i1.dst.v)
	Addr uint64    // memory address (i1.addr.v)
	Data uint64    // store data (i1.data.v)
}

// CacheState abstracts a cache for descriptor evaluation: which lines are
// present and the set-index function.
type CacheState struct {
	Sets     int
	LineSize int
	Lines    map[uint64]bool // line-aligned addresses present
}

// NewCacheState returns an empty cache state.
func NewCacheState(sets, lineSize int) *CacheState {
	return &CacheState{Sets: sets, LineSize: lineSize, Lines: map[uint64]bool{}}
}

// LineAddr aligns addr down to its line.
func (c *CacheState) LineAddr(addr uint64) uint64 {
	return addr / uint64(c.LineSize) * uint64(c.LineSize)
}

// Set returns the cache set addr maps to.
func (c *CacheState) Set(addr uint64) uint64 {
	return (addr / uint64(c.LineSize)) % uint64(c.Sets)
}

// Cached reports whether addr's line is present.
func (c *CacheState) Cached(addr uint64) bool { return c.Lines[c.LineAddr(addr)] }

// Insert adds addr's line.
func (c *CacheState) Insert(addr uint64) { c.Lines[c.LineAddr(addr)] = true }

// Clone deep-copies the state.
func (c *CacheState) Clone() *CacheState {
	n := NewCacheState(c.Sets, c.LineSize)
	for l := range c.Lines {
		n.Lines[l] = true
	}
	return n
}

// MLDOutcome evaluates the cache MLD of Figure 2, Example 3 for a demand
// access at addr: set(addr)+1 on a miss (one outcome per set), 0 on a hit.
// This is the cache_h(.) helper referenced by Figure 3, Example 9.
func (c *CacheState) MLDOutcome(addr uint64) uint64 {
	if c.Cached(addr) {
		return 0
	}
	return c.Set(addr) + 1
}

// Domain returns the number of distinct outcomes the cache MLD can
// produce: one per set plus the hit outcome.
func (c *CacheState) Domain() uint64 { return uint64(c.Sets) + 1 }

// RegFile is the architectural register file (Arch input).
type RegFile []uint64

// MemoryState is data memory as a sparse word map (Arch input). Reads of
// absent addresses return zero, matching the simulator's memory.
type MemoryState map[uint64]uint64

// Read returns the word at addr.
func (m MemoryState) Read(addr uint64) uint64 { return m[addr] }

// ReuseTable is the PC-indexed memoization table of dynamic instruction
// reuse (Figure 3, Example 6): recorded operand values per memoized PC.
type ReuseTable map[int64][2]uint64

// PredEntry is one value-predictor table entry (Figure 3, Example 7).
type PredEntry struct {
	Conf       uint64
	Prediction uint64
}

// PredTable is the PC-indexed value-prediction table.
type PredTable map[int64]PredEntry

// IMPState is the indirect-memory prefetcher's locked state (Figure 3,
// Example 9): array bases and the stream offset for the prefetch i+Δ.
type IMPState struct {
	Start uint64 // s = i+Δ element offset, in elements
	BaseZ uint64
	BaseY uint64
	BaseX uint64
	// ElemShift is log2 of the element size used for indexing (the
	// figure's pseudo-code indexes word arrays; the shift generalizes it).
	ElemShift uint
}
