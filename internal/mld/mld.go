// Package mld implements the paper's microarchitectural leakage
// descriptors (Section IV-A): stateless functions that map interactions
// between in-flight instructions (Inst), persistent microarchitectural
// state (Uarch) and architectural state (Arch) to distinct observable
// outcomes. A descriptor partitions its input-assignment space; the
// partition determines what an attacker can learn and bounds the channel
// capacity (log2 of the partition size).
//
// The package provides the descriptor representation, the nine example
// MLDs of Figures 2 and 3, the concatenation operator "||" from the
// Figure 3 footnote, and capacity estimation. Package leakage uses these
// to regenerate Tables I and II.
package mld

import (
	"fmt"
	"math"
	"sort"
)

// Kind is the type of one descriptor input.
type Kind uint8

const (
	// KindInst is a dynamic instruction.
	KindInst Kind = iota
	// KindUarch is ISA-invisible persistent microarchitectural state.
	KindUarch
	// KindArch is ISA-visible architectural state.
	KindArch
)

func (k Kind) String() string {
	switch k {
	case KindInst:
		return "Inst"
	case KindUarch:
		return "Uarch"
	case KindArch:
		return "Arch"
	}
	return "Kind?"
}

// Param declares one named, typed descriptor input.
type Param struct {
	Name string
	Kind Kind
}

// Assignment binds parameter names to concrete values. The dynamic types
// used by the example descriptors are Inst, CacheState, RegFile,
// MemoryState, ReuseTable, PredTable and IMPState.
type Assignment map[string]any

// Descriptor is one microarchitectural leakage descriptor.
type Descriptor struct {
	// Name is the mld identifier, e.g. "silent_stores".
	Name string
	// Class is the optimization class it describes (Table II row).
	Class string
	// Params declares the inputs in order.
	Params []Param
	// Eval maps an assignment to a distinct-observable-outcome id.
	Eval func(Assignment) uint64
}

// Signature summarizes which input kinds the descriptor consumes — the
// basis of the paper's Table II classification.
type Signature struct {
	Inst  bool
	Uarch bool
	Arch  bool
}

// Signature computes the descriptor's input-kind signature.
func (d *Descriptor) Signature() Signature {
	var s Signature
	for _, p := range d.Params {
		switch p.Kind {
		case KindInst:
			s.Inst = true
		case KindUarch:
			s.Uarch = true
		case KindArch:
			s.Arch = true
		}
	}
	return s
}

// Category returns the paper's Table II column for this signature:
// "stateless instruction-centric", "stateful instruction-centric
// (uarch)", "stateful instruction-centric (arch)", or "memory-centric".
func (s Signature) Category() string {
	switch {
	case s.Inst && !s.Uarch && !s.Arch:
		return "stateless instruction-centric"
	case s.Inst && s.Uarch:
		return "stateful instruction-centric (uarch)"
	case s.Inst && s.Arch:
		return "stateful instruction-centric (arch)"
	case !s.Inst:
		return "memory-centric"
	}
	return "unclassified"
}

func (d *Descriptor) String() string {
	sig := ""
	for i, p := range d.Params {
		if i > 0 {
			sig += ", "
		}
		sig += fmt.Sprintf("%v %s", p.Kind, p.Name)
	}
	return fmt.Sprintf("mld %s(%s)", d.Name, sig)
}

// MustEval evaluates the descriptor, panicking with a descriptive message
// if the assignment is missing a parameter (programming error in an
// experiment, not a runtime condition).
func (d *Descriptor) MustEval(a Assignment) uint64 {
	for _, p := range d.Params {
		if _, ok := a[p.Name]; !ok {
			panic(fmt.Sprintf("mld %s: assignment missing %q", d.Name, p.Name))
		}
	}
	return d.Eval(a)
}

// Concat implements the Figure 3 footnote's "||" operator: projection of
// component outcomes d_{N-1}..d_0 with domain sizes D_{N-1}..D_0 onto the
// naturals, so that each component leaks independently. ids and domains
// are ordered d0 first (least significant).
func Concat(ids, domains []uint64) uint64 {
	if len(ids) != len(domains) {
		panic("mld: Concat length mismatch")
	}
	var out, scale uint64 = 0, 1
	for i := range ids {
		if domains[i] == 0 {
			panic("mld: Concat zero domain")
		}
		if ids[i] >= domains[i] {
			panic(fmt.Sprintf("mld: Concat id %d out of domain %d", ids[i], domains[i]))
		}
		out += ids[i] * scale
		scale *= domains[i]
	}
	return out
}

// Bit converts a boolean observable to its outcome id.
func Bit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Capacity returns the upper bound, in bits, on information encodable in
// one observation given the outcome ids seen across the enumerated input
// space: log2 of the number of distinct outcomes (Section IV-A3).
func Capacity(outcomes []uint64) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	distinct := map[uint64]struct{}{}
	for _, o := range outcomes {
		distinct[o] = struct{}{}
	}
	return math.Log2(float64(len(distinct)))
}

// Partition groups sample indices by outcome id: the partition the
// descriptor induces on the sampled input space. The result is a
// canonical form (groups sorted by first index) so two partitions can be
// compared with EqualPartitions.
func Partition(outcomes []uint64) [][]int {
	groups := map[uint64][]int{}
	for i, o := range outcomes {
		groups[o] = append(groups[o], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// EqualPartitions reports whether two canonical partitions are identical.
func EqualPartitions(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// Trivial reports whether a partition has a single block (the descriptor
// reveals nothing about the varied input on this sample).
func Trivial(p [][]int) bool { return len(p) <= 1 }
