package mld

// Section IV-A2 of the paper: what a descriptor leaks depends on whether
// its other inputs are public, attacker controlled or private (the
// security lattice L ⊑ C ⊑ H). This file provides the machinery to make
// that analysis executable: fix a "context" (the non-private inputs),
// vary the private data over a sample set, and examine the induced
// partition. An attacker-controlled input is modeled by letting the
// attacker pick, among its possible settings, the context that refines
// the partition the most (the best preconditioning).

// PartitionOver evaluates d over the private samples under the assignment
// builder mk and returns the induced canonical partition.
func PartitionOver(d *Descriptor, mk func(priv uint64) Assignment, samples []uint64) [][]int {
	outs := make([]uint64, len(samples))
	for i, v := range samples {
		outs[i] = d.MustEval(mk(v))
	}
	return Partition(outs)
}

// Blocks returns the number of blocks in a partition: how many classes of
// private values the attacker can distinguish in one observation.
func Blocks(p [][]int) int { return len(p) }

// BestControlledPartition models an active attacker: for each setting of
// the attacker-controlled input, compute the partition over the private
// samples; return the finest (most blocks) along with the controlling
// value that achieves it. This is the paper's preconditioning notion made
// concrete: the attacker chooses its data to maximize what one experiment
// reveals.
func BestControlledPartition(d *Descriptor, mk func(priv, ctrl uint64) Assignment,
	privSamples, ctrlSamples []uint64) (best [][]int, bestCtrl uint64) {
	for _, c := range ctrlSamples {
		c := c
		p := PartitionOver(d, func(v uint64) Assignment { return mk(v, c) }, privSamples)
		if best == nil || Blocks(p) > Blocks(best) {
			best, bestCtrl = p, c
		}
	}
	return best, bestCtrl
}
