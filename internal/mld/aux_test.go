package mld

import (
	"strings"
	"testing"
)

// Direct unit tests for the auxiliary descriptors the Table I analyzer
// probes (they are otherwise exercised only through package leakage).

func evalInst(d *Descriptor, a, b uint64) uint64 {
	return d.MustEval(Assignment{"i1": Inst{Args: [2]uint64{a, b}}})
}

func TestBranchDirection(t *testing.T) {
	d := BranchDirection()
	if evalInst(d, 1, 2) != 1 || evalInst(d, 3, 2) != 0 {
		t.Error("branch direction must reflect the predicate")
	}
}

func TestBaselineDivLatencyBuckets(t *testing.T) {
	d := BaselineDivLatency()
	// Outcome = bit length of the dividend.
	if evalInst(d, 0, 3) != 0 || evalInst(d, 1, 3) != 1 || evalInst(d, 0xff, 3) != 8 {
		t.Error("baseline div latency must bucket by dividend significance")
	}
	// Divisor does not matter in the baseline model.
	if evalInst(d, 100, 3) != evalInst(d, 100, 99) {
		t.Error("divisor should not change the baseline outcome")
	}
}

func TestEarlyExitDivBuckets(t *testing.T) {
	d := EarlyExitDiv()
	// Quotient-width based: equal widths exit immediately.
	if evalInst(d, 7, 7) != 0 {
		t.Errorf("equal-width div outcome = %d", evalInst(d, 7, 7))
	}
	wide := evalInst(d, 1<<40, 3)
	narrow := evalInst(d, 1<<8, 3)
	if wide <= narrow {
		t.Error("wider quotient must take more digit iterations")
	}
	// A different function than the baseline: divisor matters here.
	if evalInst(d, 1<<20, 2) == evalInst(d, 1<<20, 1<<19) {
		t.Error("divisor must change the early-exit outcome")
	}
}

func TestTrivialALUDescriptor(t *testing.T) {
	d := TrivialALU()
	if evalInst(d, 0, 9) != 1 || evalInst(d, 9, 0) != 1 || evalInst(d, 3, 9) != 0 {
		t.Error("trivial ALU keys on zero operands")
	}
}

func TestFPTrivialDescriptor(t *testing.T) {
	d := FPTrivial()
	one := uint64(0x3ff0000000000000)
	if evalInst(d, one, 0x4000000000000000) != 1 {
		t.Error("multiply by 1.0 is trivial")
	}
	if evalInst(d, 0, 0x4000000000000000) != 1 {
		t.Error("multiply by +0.0 is trivial")
	}
	if evalInst(d, 0x4000000000000000, 0x4008000000000000) != 0 {
		t.Error("2.0*3.0 is not trivial")
	}
}

func TestSignificanceOperandsDescriptor(t *testing.T) {
	d := SignificanceOperands()
	// Width classes in 16-bit granules, concatenated per operand.
	narrow := evalInst(d, 0xff, 0xff)
	wide := evalInst(d, 1<<60, 0xff)
	if narrow == wide {
		t.Error("operand significance must be observable")
	}
	// Values within the same granule are indistinguishable.
	if evalInst(d, 0x11, 5) != evalInst(d, 0xfe, 5) {
		t.Error("same-granule values must collide")
	}
}

func TestSignificanceRegFileDescriptor(t *testing.T) {
	d := SignificanceRegFile()
	eval := func(rf RegFile) uint64 {
		return d.MustEval(Assignment{"register_file": rf})
	}
	if eval(RegFile{1, 2}) == eval(RegFile{1, 1 << 40}) {
		t.Error("register width change must be observable")
	}
	if eval(RegFile{0x12, 5}) != eval(RegFile{0xee, 5}) {
		t.Error("same-granule register values must collide")
	}
}

func TestRFCResultDescriptor(t *testing.T) {
	d := RFCResult()
	rf := RegFile{1, 42, 0x999}
	eval := func(dst uint64) uint64 {
		return d.MustEval(Assignment{"i1": Inst{Dst: dst}, "register_file": rf})
	}
	if eval(42) != 1 || eval(43) != 0 {
		t.Error("RFC result sharing keys on value presence in the register file")
	}
}

func TestDescriptorStrings(t *testing.T) {
	s := SilentStores().String()
	for _, frag := range []string{"silent_stores", "Inst i1", "Arch data_memory"} {
		if !strings.Contains(s, frag) {
			t.Errorf("descriptor string %q missing %q", s, frag)
		}
	}
	if KindInst.String() != "Inst" || KindUarch.String() != "Uarch" || KindArch.String() != "Arch" {
		t.Error("kind strings wrong")
	}
}

func TestEqualPartitionsShapes(t *testing.T) {
	a := Partition([]uint64{0, 1, 2})
	b := Partition([]uint64{0, 0, 1})
	if EqualPartitions(a, b) {
		t.Error("different block counts must differ")
	}
	c := Partition([]uint64{0, 0, 1})
	d := Partition([]uint64{0, 1, 1})
	if EqualPartitions(c, d) {
		t.Error("different block sizes must differ")
	}
}

func TestCacheStateClone(t *testing.T) {
	c := NewCacheState(8, 64)
	c.Insert(0x100)
	cl := c.Clone()
	cl.Insert(0x200)
	if c.Cached(0x200) {
		t.Error("clone mutation leaked to original")
	}
	if !cl.Cached(0x100) {
		t.Error("clone lost contents")
	}
}
