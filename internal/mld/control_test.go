package mld

import "testing"

// TestZeroSkipControlClasses encodes the paper's Section IV-A2 walkthrough
// of the zero-skip multiplier under the four operand-control scenarios.
func TestZeroSkipControlClasses(t *testing.T) {
	d := ZeroSkipMul()
	priv := []uint64{0, 1, 2, 3, 42}
	mk := func(p, other uint64) Assignment {
		return Assignment{"i1": Inst{Args: [2]uint64{p, other}}}
	}

	// Public operand = 0: the skip is purely a function of public
	// information — the attacker learns nothing about the private operand.
	p := PartitionOver(d, func(v uint64) Assignment { return mk(v, 0) }, priv)
	if !Trivial(p) {
		t.Errorf("public zero operand must hide the private one: %v", p)
	}

	// Public operand non-zero: the attacker learns whether the private
	// operand is 0 — a 2-block partition.
	p = PartitionOver(d, func(v uint64) Assignment { return mk(v, 7) }, priv)
	if Blocks(p) != 2 {
		t.Errorf("public non-zero operand: blocks = %d, want 2", Blocks(p))
	}

	// Both private: the attacker learns whether at least one is zero.
	both := PartitionOver(d, func(v uint64) Assignment {
		return Assignment{"i1": Inst{Args: [2]uint64{v, v ^ 1}}}
	}, priv)
	if Trivial(both) {
		t.Error("both-private case must still leak the zero-ness disjunction")
	}

	// Attacker-controlled operand: the attacker picks a non-zero value to
	// learn precisely whether the private operand is zero.
	best, ctrl := BestControlledPartition(d, mk, priv, []uint64{0, 1, 9})
	if Blocks(best) != 2 {
		t.Errorf("best controlled partition: blocks = %d, want 2", Blocks(best))
	}
	if ctrl == 0 {
		t.Errorf("attacker should choose a non-zero controlling operand, chose %d", ctrl)
	}
}

// TestSilentStoreControlClasses: the silent-store MLD under attacker
// control of memory (the replay attack of Section IV-C4): each chosen
// memory value v partitions the private store data into {==v, !=v}; the
// attacker refines across experiments.
func TestSilentStoreControlClasses(t *testing.T) {
	d := SilentStores()
	priv := []uint64{1, 2, 3, 4}
	mk := func(p, ctrl uint64) Assignment {
		return Assignment{
			"i1":          Inst{Addr: 0x800, Data: p},
			"data_memory": MemoryState{0x800: ctrl},
		}
	}
	// One experiment distinguishes exactly one value from the rest.
	best, ctrl := BestControlledPartition(d, mk, priv, []uint64{1, 2, 3, 4, 99})
	if Blocks(best) != 2 {
		t.Errorf("blocks = %d, want 2", Blocks(best))
	}
	if ctrl == 99 {
		t.Error("attacker should pick a value inside the candidate set")
	}
	// Across replays (varying ctrl), the attacker can separate them all —
	// the exponential-reduction observation for narrower-width checks.
	distinguished := map[int]bool{}
	for _, c := range []uint64{1, 2, 3, 4} {
		c := c
		p := PartitionOver(d, func(v uint64) Assignment { return mk(v, c) }, priv)
		for _, block := range p {
			if len(block) == 1 {
				distinguished[block[0]] = true
			}
		}
	}
	if len(distinguished) != len(priv) {
		t.Errorf("replay attack separated %d/%d values", len(distinguished), len(priv))
	}
}
