package mld

import "math/bits"

// This file defines the example descriptors of the paper's Figures 2 and 3
// plus the auxiliary baseline descriptors (cache, branch direction,
// early-exit division, floating-point subnormal handling) that the
// leakage analyzer needs to reproduce Table I.

// PredMaxConf bounds the value-predictor confidence counter, fixing the
// domain size for the v_prediction concatenation.
const PredMaxConf = 7

// SingleCycleALU is Figure 2, Example 1: a single-cycle adder has exactly
// one observable outcome — it is Safe.
func SingleCycleALU() *Descriptor {
	return &Descriptor{
		Name:   "single_cycle_alu",
		Class:  "baseline",
		Params: []Param{{Name: "i1", Kind: KindInst}},
		Eval:   func(Assignment) uint64 { return 0 },
	}
}

// ZeroSkipMul is Figure 2, Example 2: a multiplier that skips when either
// operand is zero has two observable outcomes.
func ZeroSkipMul() *Descriptor {
	return &Descriptor{
		Name:   "zero_skip_mul",
		Class:  "computation simplification",
		Params: []Param{{Name: "i1", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			return Bit(i1.Args[0] == 0 || i1.Args[1] == 0)
		},
	}
}

// CacheRand is Figure 2, Example 3: a cache with no shared memory and
// random replacement; outcomes are set(addr)+1 on a miss, 0 on a hit.
func CacheRand() *Descriptor {
	return &Descriptor{
		Name:   "cache_rand",
		Class:  "baseline",
		Params: []Param{{Name: "i1", Kind: KindInst}, {Name: "cache", Kind: KindUarch}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			c := a["cache"].(*CacheState)
			return c.MLDOutcome(i1.Addr)
		},
	}
}

// OperandPacking is Figure 3, Example 4: arithmetic-unit operand packing;
// the outcome is one bit — whether both instructions' operands are all
// narrower than 16 bits.
func OperandPacking() *Descriptor {
	narrow := func(v uint64) bool { return bits.Len64(v) <= 16 }
	return &Descriptor{
		Name:   "operand_packing",
		Class:  "pipeline compression",
		Params: []Param{{Name: "i1", Kind: KindInst}, {Name: "i2", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			i1, i2 := a["i1"].(Inst), a["i2"].(Inst)
			return Bit(narrow(i1.Args[0]) && narrow(i1.Args[1]) &&
				narrow(i2.Args[0]) && narrow(i2.Args[1]))
		},
	}
}

// SilentStores is Figure 3, Example 5: the outcome is whether the
// in-flight store's data equals data memory at the store address.
func SilentStores() *Descriptor {
	return &Descriptor{
		Name:   "silent_stores",
		Class:  "silent stores",
		Params: []Param{{Name: "i1", Kind: KindInst}, {Name: "data_memory", Kind: KindArch}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			m := a["data_memory"].(MemoryState)
			return Bit(i1.Data == m.Read(i1.Addr))
		},
	}
}

// SilentStoresLSQ is the load-store-queue variant of silent stores
// (checking an in-flight store against an older in-flight store rather
// than against memory): the same equality leak, but as a function of two
// *in-flight* instructions — a different MLD signature (stateless
// instruction-centric) and different attacker assumptions, i.e. the
// paper's U′-style distinction between implementations of one class.
func SilentStoresLSQ() *Descriptor {
	return &Descriptor{
		Name:   "silent_stores_lsq",
		Class:  "silent stores",
		Params: []Param{{Name: "i1", Kind: KindInst}, {Name: "i2", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			older, younger := a["i1"].(Inst), a["i2"].(Inst)
			return Bit(older.Addr == younger.Addr && older.Data == younger.Data)
		},
	}
}

// InstructionReuse is Figure 3, Example 6 (dynamic instruction reuse, Sv
// variant): the outcome is whether all operand values match the
// memoization-table entry for this PC.
func InstructionReuse() *Descriptor {
	return &Descriptor{
		Name:   "instruction_reuse",
		Class:  "computation reuse",
		Params: []Param{{Name: "i1", Kind: KindInst}, {Name: "reuse_buffer", Kind: KindUarch}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			tbl := a["reuse_buffer"].(ReuseTable)
			e, ok := tbl[i1.PC]
			return Bit(ok && e[0] == i1.Args[0] && e[1] == i1.Args[1])
		},
	}
}

// VPrediction is Figure 3, Example 7: the outcome concatenates the
// predictor confidence with whether the prediction equals the
// instruction's result.
func VPrediction() *Descriptor {
	return &Descriptor{
		Name:   "v_prediction",
		Class:  "value prediction",
		Params: []Param{{Name: "i1", Kind: KindInst}, {Name: "prediction_table", Kind: KindUarch}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			tbl := a["prediction_table"].(PredTable)
			e := tbl[i1.PC]
			conf := e.Conf
			if conf > PredMaxConf {
				conf = PredMaxConf
			}
			eq := Bit(e.Prediction == i1.Dst)
			return Concat([]uint64{eq, conf}, []uint64{2, PredMaxConf + 1})
		},
	}
}

// RFCompression is Figure 3, Example 8 (register-file compression, 0/1
// variant over an N-entry register file): the outcome concatenates, for
// every register, whether its value is compressible (≤ 1).
func RFCompression() *Descriptor {
	return &Descriptor{
		Name:   "rf_compression",
		Class:  "register-file compression",
		Params: []Param{{Name: "register_file", Kind: KindArch}},
		Eval: func(a Assignment) uint64 {
			rf := a["register_file"].(RegFile)
			ids := make([]uint64, len(rf))
			domains := make([]uint64, len(rf))
			for i, v := range rf {
				ids[i] = Bit(v <= 1)
				domains[i] = 2
			}
			return Concat(ids, domains)
		},
	}
}

// IM3LPrefetcher is Figure 3, Example 9: the 3-level indirect-memory
// prefetcher for X[Y[Z[i]]]; the outcome concatenates the cache MLD
// outcomes of the three chained prefetch accesses, whose addresses are
// functions of data memory.
func IM3LPrefetcher() *Descriptor {
	return &Descriptor{
		Name:  "im3l_prefetcher",
		Class: "data memory-dependent prefetching",
		Params: []Param{
			{Name: "imp", Kind: KindUarch},
			{Name: "cache", Kind: KindUarch},
			{Name: "data_memory", Kind: KindArch},
		},
		Eval: func(a Assignment) uint64 {
			imp := a["imp"].(IMPState)
			c := a["cache"].(*CacheState)
			m := a["data_memory"].(MemoryState)

			s := imp.Start // s = i + Δ, in elements
			zAddr := imp.BaseZ + s<<imp.ElemShift
			z := m.Read(zAddr) // z = Z[i+Δ]
			yAddr := imp.BaseY + z<<imp.ElemShift
			y := m.Read(yAddr) // y = Y[Z[i+Δ]]
			xAddr := imp.BaseX + y<<imp.ElemShift

			d := c.Domain()
			return Concat(
				[]uint64{c.MLDOutcome(xAddr), c.MLDOutcome(yAddr), c.MLDOutcome(zAddr)},
				[]uint64{d, d, d},
			)
		},
	}
}

// --- Auxiliary descriptors used by the Table I analysis ---

// BranchDirection models the baseline control-flow channel: the observable
// outcome is the branch direction (through the predictor and the shape of
// execution), a function of the predicate operands.
func BranchDirection() *Descriptor {
	return &Descriptor{
		Name:   "branch_direction",
		Class:  "baseline",
		Params: []Param{{Name: "i1", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			return Bit(i1.Args[0] < i1.Args[1])
		},
	}
}

// BaselineDivLatency models commercial early-terminating integer division
// (the reason Table I marks Int div operands Unsafe in the Baseline,
// citing Coppens et al.): latency buckets by dividend significance.
func BaselineDivLatency() *Descriptor {
	return &Descriptor{
		Name:   "baseline_div",
		Class:  "baseline",
		Params: []Param{{Name: "i1", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			return uint64(bits.Len64(i1.Args[0]))
		},
	}
}

// EarlyExitDiv is the computation-simplification divider: latency buckets
// by the quotient width (the significance gap), a different function of
// the operands than BaselineDivLatency — hence U′ in Table I.
func EarlyExitDiv() *Descriptor {
	return &Descriptor{
		Name:   "early_exit_div",
		Class:  "computation simplification",
		Params: []Param{{Name: "i1", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			q := bits.Len64(i1.Args[0]) - bits.Len64(i1.Args[1])
			if q < 0 {
				q = 0
			}
			return uint64(q+1) / 2 // radix-4 digit iterations
		},
	}
}

// TrivialALU is computation simplification for simple integer ops: a
// trivial-operand bypass keyed on either operand being zero.
func TrivialALU() *Descriptor {
	return &Descriptor{
		Name:   "trivial_alu",
		Class:  "computation simplification",
		Params: []Param{{Name: "i1", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			return Bit(i1.Args[0] == 0 || i1.Args[1] == 0)
		},
	}
}

// fp unpacks IEEE-754 double fields.
func fpSubnormal(v uint64) bool {
	exp := (v >> 52) & 0x7ff
	mant := v & ((1 << 52) - 1)
	return exp == 0 && mant != 0
}

// FPSubnormal is the baseline floating-point channel (subnormal operands
// take slow microcoded paths — Andrysco et al., the Table I citation for
// FP ops Unsafe in the Baseline).
func FPSubnormal() *Descriptor {
	return &Descriptor{
		Name:   "fp_subnormal",
		Class:  "baseline",
		Params: []Param{{Name: "i1", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			return Bit(fpSubnormal(i1.Args[0]) || fpSubnormal(i1.Args[1]))
		},
	}
}

// FPTrivial is computation simplification for FP: skip on exact-zero or
// exact-one operands — a different partition of the operand space than
// the subnormal channel, so FP operands become U′ under CS.
func FPTrivial() *Descriptor {
	const one = 0x3ff0000000000000 // 1.0
	return &Descriptor{
		Name:   "fp_trivial",
		Class:  "computation simplification",
		Params: []Param{{Name: "i1", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			triv := func(v uint64) bool { return v == 0 || v == one }
			return Bit(triv(i1.Args[0]) || triv(i1.Args[1]))
		},
	}
}

// SignificanceOperands is pipeline (significance) compression applied to
// one instruction's operands: the outcome concatenates each operand's
// width class (16-bit granules), leaking operand significance.
func SignificanceOperands() *Descriptor {
	return &Descriptor{
		Name:   "significance_operands",
		Class:  "pipeline compression",
		Params: []Param{{Name: "i1", Kind: KindInst}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			w := func(v uint64) uint64 { return uint64(bits.Len64(v)+15) / 16 }
			return Concat([]uint64{w(i1.Args[0]), w(i1.Args[1])}, []uint64{5, 5})
		},
	}
}

// SignificanceRegFile is significance compression applied to the register
// file at rest: each register's width class is observable through
// read/write bandwidth, so register-file contents become Unsafe under
// pipeline compression (Table I, data-at-rest row).
func SignificanceRegFile() *Descriptor {
	return &Descriptor{
		Name:   "significance_regfile",
		Class:  "pipeline compression",
		Params: []Param{{Name: "register_file", Kind: KindArch}},
		Eval: func(a Assignment) uint64 {
			rf := a["register_file"].(RegFile)
			ids := make([]uint64, len(rf))
			domains := make([]uint64, len(rf))
			for i, v := range rf {
				ids[i] = uint64(bits.Len64(v)+15) / 16
				domains[i] = 5
			}
			return Concat(ids, domains)
		},
	}
}

// RFCResult is register-file compression observed at writeback: whether
// the produced result value can share an already-live register (any-value
// variant) — the mechanism that makes instruction results Unsafe under
// RFC in Table I.
func RFCResult() *Descriptor {
	return &Descriptor{
		Name:   "rfc_result",
		Class:  "register-file compression",
		Params: []Param{{Name: "i1", Kind: KindInst}, {Name: "register_file", Kind: KindArch}},
		Eval: func(a Assignment) uint64 {
			i1 := a["i1"].(Inst)
			rf := a["register_file"].(RegFile)
			for _, v := range rf {
				if v == i1.Dst {
					return 1
				}
			}
			return 0
		},
	}
}

// Examples returns the nine descriptors of Figures 2 and 3 in paper order.
func Examples() []*Descriptor {
	return []*Descriptor{
		SingleCycleALU(),
		ZeroSkipMul(),
		CacheRand(),
		OperandPacking(),
		SilentStores(),
		InstructionReuse(),
		VPrediction(),
		RFCompression(),
		IM3LPrefetcher(),
	}
}
