package mld

import "testing"

func TestStoreToLeakForwardMLD(t *testing.T) {
	d := StoreToLeakForward()
	eval := func(stAddr, ldAddr uint64, conf uint64) uint64 {
		return d.MustEval(Assignment{
			"i1":         Inst{Addr: stAddr, Data: 7},
			"i2":         Inst{PC: 9, Addr: ldAddr},
			"stlf_table": StLFTable{9: conf},
		})
	}
	// Cold predictor: single outcome regardless of addresses.
	if eval(0x800, 0x800, 0) != 0 || eval(0x800, 0x900, 1) != 0 {
		t.Error("untrained predictor must not forward (outcome 0)")
	}
	// Trained: address equality becomes observable through replay-vs-not.
	match := eval(0x800, 0x800, StLFThreshold)
	miss := eval(0x800, 0x900, StLFThreshold)
	if match == miss {
		t.Error("address match must be observable once forwarding (the Store-to-Leak channel)")
	}
	if miss != 1 || match != 2 {
		t.Errorf("outcomes: replay=%d verified=%d, want 1 and 2", miss, match)
	}
	// Varying only the store address (e.g. secret-dependent) flips the
	// outcome: the attacker-visible replay leaks the store address.
	if eval(0x900, 0x900, 3) != 2 || eval(0xA00, 0x900, 3) != 1 {
		t.Error("store-address variation must flip the outcome")
	}
	if got := d.Signature().Category(); got != "stateful instruction-centric (uarch)" {
		t.Errorf("category = %q", got)
	}
}

func TestSpecVectorizationMLD(t *testing.T) {
	d := SpecVectorization()
	c := NewCacheState(8, 64)
	eval := func(laneAddr uint64, counter uint64, cs *CacheState) uint64 {
		return d.MustEval(Assignment{
			"i1":           Inst{PC: 4},
			"i2":           Inst{Addr: laneAddr},
			"branch_table": BranchTable{4: counter},
			"cache":        cs,
		})
	}
	// Predicted not-taken: the lane never issues — one outcome only.
	if eval(0x1000, 0, c) != 0 || eval(0x2000, 1, c) != 0 {
		t.Error("not-taken prediction must suppress the lane access")
	}
	// Predicted taken: the lane's cache outcome leaks the address even
	// though the access will be squashed.
	o1 := eval(0x1000, 2, c)
	o2 := eval(0x1000+64, 3, c)
	if o1 == 0 || o2 == 0 || o1 == o2 {
		t.Errorf("distinct lane sets must produce distinct non-zero outcomes (%d, %d)", o1, o2)
	}
	// A warmed line produces the hit outcome, distinct from any miss.
	warm := c.Clone()
	warm.Insert(0x1000)
	if h := eval(0x1000, 2, warm); h == o1 || h == 0 {
		t.Errorf("hit outcome %d must differ from miss %d and from not-taken 0", h, o1)
	}
	if got := d.Signature().Category(); got != "stateful instruction-centric (uarch)" {
		t.Errorf("category = %q", got)
	}
}

func TestSpeculativeList(t *testing.T) {
	sp := Speculative()
	if len(sp) != 2 {
		t.Fatalf("Speculative() = %d descriptors, want 2", len(sp))
	}
	want := map[string]bool{"store_to_leak": true, "spec_vectorization": true}
	for _, d := range sp {
		if !want[d.Name] {
			t.Errorf("unexpected descriptor %q", d.Name)
		}
		delete(want, d.Name)
		if d.Eval == nil || len(d.Params) == 0 || d.Class == "" {
			t.Errorf("descriptor %q incomplete", d.Name)
		}
	}
	// The names must match the taint layer's MLDRef strings so scan output
	// cross-references correctly (pinned here; taint has the mirror test).
}
