package mld

import (
	"math"
	"testing"
)

func TestSingleCycleALUIsSafe(t *testing.T) {
	d := SingleCycleALU()
	var outs []uint64
	for v := uint64(0); v < 16; v++ {
		outs = append(outs, d.MustEval(Assignment{"i1": Inst{Args: [2]uint64{v, 15 - v}}}))
	}
	if Capacity(outs) != 0 {
		t.Errorf("single-cycle ALU capacity = %v, want 0", Capacity(outs))
	}
}

func TestZeroSkipMulOutcomes(t *testing.T) {
	d := ZeroSkipMul()
	cases := []struct {
		a, b uint64
		want uint64
	}{
		{0, 5, 1}, {5, 0, 1}, {0, 0, 1}, {3, 7, 0},
	}
	for _, c := range cases {
		got := d.MustEval(Assignment{"i1": Inst{Args: [2]uint64{c.a, c.b}}})
		if got != c.want {
			t.Errorf("zero_skip_mul(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCacheRandOutcomes(t *testing.T) {
	d := CacheRand()
	c := NewCacheState(8, 64)
	c.Insert(0x1000)
	hit := d.MustEval(Assignment{"i1": Inst{Addr: 0x1000}, "cache": c})
	if hit != 0 {
		t.Errorf("hit outcome = %d, want 0", hit)
	}
	// Misses: one outcome per set.
	seen := map[uint64]bool{}
	for s := uint64(0); s < 8; s++ {
		addr := 0x8000 + s*64
		out := d.MustEval(Assignment{"i1": Inst{Addr: addr}, "cache": c})
		if out == 0 {
			t.Errorf("miss at %#x produced hit outcome", addr)
		}
		seen[out] = true
	}
	if len(seen) != 8 {
		t.Errorf("distinct miss outcomes = %d, want 8 (one per set)", len(seen))
	}
}

func TestCacheCapacityBound(t *testing.T) {
	// Section IV-A3: capacity = log2(#outcomes); for an 8-set cache the
	// MLD has 9 outcomes.
	c := NewCacheState(8, 64)
	d := CacheRand()
	var outs []uint64
	for s := uint64(0); s < 8; s++ {
		outs = append(outs, d.MustEval(Assignment{"i1": Inst{Addr: s * 64}, "cache": c}))
	}
	c2 := c.Clone()
	c2.Insert(0)
	outs = append(outs, d.MustEval(Assignment{"i1": Inst{Addr: 0}, "cache": c2}))
	want := math.Log2(9)
	if got := Capacity(outs); math.Abs(got-want) > 1e-9 {
		t.Errorf("capacity = %v, want %v", got, want)
	}
}

func TestOperandPacking(t *testing.T) {
	d := OperandPacking()
	mk := func(a0, a1, b0, b1 uint64) uint64 {
		return d.MustEval(Assignment{
			"i1": Inst{Args: [2]uint64{a0, a1}},
			"i2": Inst{Args: [2]uint64{b0, b1}},
		})
	}
	if mk(1, 2, 3, 4) != 1 {
		t.Error("all narrow should pack")
	}
	if mk(1, 2, 1<<20, 4) != 0 {
		t.Error("one wide operand should not pack")
	}
	if mk(0xffff, 0xffff, 0xffff, 0xffff) != 1 {
		t.Error("16-bit operands should pack (msb index 16)")
	}
}

func TestSilentStoresMLD(t *testing.T) {
	d := SilentStores()
	m := MemoryState{0x800: 7}
	eval := func(data uint64) uint64 {
		return d.MustEval(Assignment{
			"i1":          Inst{Addr: 0x800, Data: data},
			"data_memory": m,
		})
	}
	if eval(7) != 1 || eval(8) != 0 {
		t.Error("silent_stores must key on data == mem[addr]")
	}
	// Symmetric: varying memory with fixed store data also flips it.
	m2 := MemoryState{0x800: 8}
	got := d.MustEval(Assignment{"i1": Inst{Addr: 0x800, Data: 7}, "data_memory": m2})
	if got != 0 {
		t.Error("memory variation must flip the outcome (data-at-rest leak)")
	}
}

func TestInstructionReuseMLD(t *testing.T) {
	d := InstructionReuse()
	tbl := ReuseTable{100: {4, 9}}
	eval := func(pc int64, a, b uint64) uint64 {
		return d.MustEval(Assignment{"i1": Inst{PC: pc, Args: [2]uint64{a, b}}, "reuse_buffer": tbl})
	}
	if eval(100, 4, 9) != 1 {
		t.Error("matching operands must hit")
	}
	if eval(100, 4, 8) != 0 || eval(100, 5, 9) != 0 {
		t.Error("partial match must miss")
	}
	if eval(101, 4, 9) != 0 {
		t.Error("unmemoized pc must miss")
	}
}

func TestVPredictionMLD(t *testing.T) {
	d := VPrediction()
	tbl := PredTable{5: {Conf: 3, Prediction: 42}}
	eval := func(dst uint64) uint64 {
		return d.MustEval(Assignment{"i1": Inst{PC: 5, Dst: dst}, "prediction_table": tbl})
	}
	match, miss := eval(42), eval(43)
	if match == miss {
		t.Error("prediction equality must be observable")
	}
	// Conf occupies the high component: id = eq + 2*conf.
	if match != 1+2*3 || miss != 0+2*3 {
		t.Errorf("concat encoding: match=%d miss=%d", match, miss)
	}
	// Confidence also leaks (independently).
	tbl[5] = PredEntry{Conf: 1, Prediction: 42}
	if eval(42) == match {
		t.Error("confidence change must alter the outcome id")
	}
}

func TestRFCompressionMLD(t *testing.T) {
	d := RFCompression()
	out0 := d.MustEval(Assignment{"register_file": RegFile{0, 5, 1}})
	out1 := d.MustEval(Assignment{"register_file": RegFile{0, 5, 2}})
	if out0 == out1 {
		t.Error("changing a register between compressible/incompressible must change the outcome")
	}
	out2 := d.MustEval(Assignment{"register_file": RegFile{1, 5, 1}})
	if out0 != out2 {
		t.Error("0 and 1 are both compressible in the 0/1 variant; outcome must not change")
	}
}

func TestIM3LPrefetcherMLD(t *testing.T) {
	d := IM3LPrefetcher()
	imp := IMPState{Start: 4, BaseZ: 0x1000, BaseY: 0x40000, BaseX: 0x80000, ElemShift: 2}
	c := NewCacheState(32, 64)
	mem := MemoryState{
		0x1000 + 4<<2:   50,  // Z[4] = 50
		0x40000 + 50<<2: 200, // Y[50] = 200 (the "secret")
	}
	out1 := d.MustEval(Assignment{"imp": imp, "cache": c, "data_memory": mem})

	// Change only the secret Y[50]: the X access set changes → outcome
	// changes. This is the universal-read-gadget property.
	mem2 := MemoryState{0x1000 + 4<<2: 50, 0x40000 + 50<<2: 1000}
	out2 := d.MustEval(Assignment{"imp": imp, "cache": c, "data_memory": mem2})
	if out1 == out2 {
		t.Error("3-level IMP outcome must depend on the second-level value (data at rest)")
	}

	// Same secret, different cache set only if value maps to a different
	// set; same value → same outcome.
	out3 := d.MustEval(Assignment{"imp": imp, "cache": c.Clone(), "data_memory": mem})
	if out1 != out3 {
		t.Error("identical inputs must produce identical outcomes (stateless descriptor)")
	}
}

func TestConcat(t *testing.T) {
	// d1||d0 with domains 3 and 4: id = d0 + 4*d1.
	if got := Concat([]uint64{3, 2}, []uint64{4, 3}); got != 3+4*2 {
		t.Errorf("Concat = %d", got)
	}
	if got := Concat(nil, nil); got != 0 {
		t.Errorf("empty Concat = %d", got)
	}
	// Distinct component combinations map to distinct ids.
	seen := map[uint64]bool{}
	for a := uint64(0); a < 3; a++ {
		for b := uint64(0); b < 5; b++ {
			id := Concat([]uint64{a, b}, []uint64{3, 5})
			if seen[id] {
				t.Fatalf("Concat collision at (%d,%d)", a, b)
			}
			seen[id] = true
		}
	}
}

func TestConcatPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"mismatch":      func() { Concat([]uint64{1}, []uint64{2, 2}) },
		"zero domain":   func() { Concat([]uint64{0}, []uint64{0}) },
		"out of domain": func() { Concat([]uint64{5}, []uint64{3}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		})
	}
}

func TestPartitionHelpers(t *testing.T) {
	p1 := Partition([]uint64{0, 0, 1, 1})
	p2 := Partition([]uint64{5, 5, 9, 9})
	if !EqualPartitions(p1, p2) {
		t.Error("partitions with relabeled outcomes must be equal")
	}
	p3 := Partition([]uint64{0, 1, 0, 1})
	if EqualPartitions(p1, p3) {
		t.Error("different groupings must not be equal")
	}
	if !Trivial(Partition([]uint64{7, 7, 7})) {
		t.Error("constant outcomes must be trivial")
	}
	if Trivial(p1) {
		t.Error("p1 is non-trivial")
	}
}

func TestSignatures(t *testing.T) {
	cases := []struct {
		d    *Descriptor
		want string
	}{
		{ZeroSkipMul(), "stateless instruction-centric"},
		{OperandPacking(), "stateless instruction-centric"},
		{SilentStores(), "stateful instruction-centric (arch)"},
		{InstructionReuse(), "stateful instruction-centric (uarch)"},
		{VPrediction(), "stateful instruction-centric (uarch)"},
		{RFCompression(), "memory-centric"},
		{IM3LPrefetcher(), "memory-centric"},
	}
	for _, c := range cases {
		if got := c.d.Signature().Category(); got != c.want {
			t.Errorf("%s category = %q, want %q", c.d.Name, got, c.want)
		}
	}
}

func TestMustEvalPanicsOnMissingParam(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for missing parameter")
		}
	}()
	SilentStores().MustEval(Assignment{"i1": Inst{}})
}

func TestExamplesList(t *testing.T) {
	ex := Examples()
	if len(ex) != 9 {
		t.Fatalf("Examples() = %d descriptors, want 9 (Figures 2-3)", len(ex))
	}
	names := map[string]bool{}
	for _, d := range ex {
		if names[d.Name] {
			t.Errorf("duplicate descriptor %q", d.Name)
		}
		names[d.Name] = true
		if d.Eval == nil || len(d.Params) == 0 && d.Name != "rf_compression" {
			if d.Name != "rf_compression" {
				t.Errorf("descriptor %q incomplete", d.Name)
			}
		}
	}
}

func TestFPSubnormalDetection(t *testing.T) {
	d := FPSubnormal()
	sub := uint64(1)                   // smallest subnormal double
	norm := uint64(0x3ff0000000000000) // 1.0
	zero := uint64(0)                  // +0.0 is not subnormal
	eval := func(a, b uint64) uint64 {
		return d.MustEval(Assignment{"i1": Inst{Args: [2]uint64{a, b}}})
	}
	if eval(sub, norm) != 1 || eval(norm, sub) != 1 {
		t.Error("subnormal operand undetected")
	}
	if eval(norm, norm) != 0 || eval(zero, norm) != 0 {
		t.Error("normal/zero misclassified as subnormal")
	}
}

func TestSilentStoresLSQVariant(t *testing.T) {
	d := SilentStoresLSQ()
	eval := func(a1, d1, a2, d2 uint64) uint64 {
		return d.MustEval(Assignment{
			"i1": Inst{Addr: a1, Data: d1},
			"i2": Inst{Addr: a2, Data: d2},
		})
	}
	if eval(0x800, 7, 0x800, 7) != 1 {
		t.Error("matching in-flight pair must be observable")
	}
	if eval(0x800, 7, 0x800, 8) != 0 || eval(0x800, 7, 0x900, 7) != 0 {
		t.Error("mismatched pair observable")
	}
	// The variant's signature differs from the memory-checking scheme:
	// stateless instruction-centric vs stateful (arch).
	if got := d.Signature().Category(); got != "stateless instruction-centric" {
		t.Errorf("LSQ variant category = %q", got)
	}
	if got := SilentStores().Signature().Category(); got != "stateful instruction-centric (arch)" {
		t.Errorf("memory variant category = %q", got)
	}
}
