package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// Chrome trace-event export. One simulated cycle maps to one
// microsecond of trace time (ts is in µs); each Track becomes a thread
// so Perfetto / chrome://tracing renders the pipeline structures as
// parallel timelines. KindIssue events carry a duration (the µop's
// execution latency) and render as complete "X" slices; everything else
// is an instant "i" event on its track.

type chromeArgs struct {
	Seq    uint64 `json:"seq,omitempty"`
	PC     int64  `json:"pc,omitempty"`
	Addr   uint64 `json:"addr,omitempty"`
	Arg    int64  `json:"arg,omitempty"`
	Detail string `json:"detail,omitempty"`
}

type chromeEvent struct {
	Name string      `json:"name"`
	Ph   string      `json:"ph"`
	Ts   int64       `json:"ts"`
	Dur  *int64      `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int         `json:"tid"`
	S    string      `json:"s,omitempty"`
	Args interface{} `json:"args,omitempty"`
}

type chromeMetaArgs struct {
	Name string `json:"name"`
}

type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChrome writes the trace in Chrome trace-event JSON format. The
// output is deterministic for a given event sequence: metadata records
// come first in track order, then events in emission order.
func (t *Trace) WriteChrome(w io.Writer) error {
	const pid = 1
	events := make([]chromeEvent, 0, len(t.Events)+int(NumTracks)+1)

	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: chromeMetaArgs{Name: "pandora"},
	})
	for _, tr := range t.Tracks() {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: int(tr),
			Args: chromeMetaArgs{Name: tr.String()},
		})
	}

	for _, e := range t.Events {
		ce := chromeEvent{
			Name: e.Kind.String(),
			Ts:   e.Cycle,
			Pid:  pid,
			Tid:  int(e.Track),
		}
		if e.Detail != "" {
			ce.Name = e.Kind.String() + ":" + e.Detail
		}
		if e.Seq != 0 || e.PC != 0 || e.Addr != 0 || e.Arg != 0 || e.Detail != "" {
			ce.Args = chromeArgs{Seq: e.Seq, PC: e.PC, Addr: e.Addr, Arg: e.Arg, Detail: e.Detail}
		}
		if e.Kind == KindIssue {
			ce.Ph = "X"
			dur := e.Arg
			if dur < 1 {
				dur = 1
			}
			ce.Dur = &dur
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		events = append(events, ce)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(chromeFile{DisplayTimeUnit: "ms", TraceEvents: events}); err != nil {
		return err
	}
	return bw.Flush()
}
