package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// Trace is the standard in-memory Probe: it records every event in
// emission order. Emission order is deterministic for a deterministic
// simulation, so two traces of the same seed compare byte-identical
// through WriteJSONL regardless of how many workers ran *other* items.
type Trace struct {
	Events []Event
}

// NewTrace returns an empty trace probe.
func NewTrace() *Trace { return &Trace{} }

// Emit implements Probe.
func (t *Trace) Emit(e Event) { t.Events = append(t.Events, e) }

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.Events) }

// Window returns a new trace holding only events with lo <= Cycle < hi.
// hi < 0 means no upper bound.
func (t *Trace) Window(lo, hi int64) *Trace {
	out := &Trace{}
	for _, e := range t.Events {
		if e.Cycle < lo || (hi >= 0 && e.Cycle >= hi) {
			continue
		}
		out.Events = append(out.Events, e)
	}
	return out
}

// ShiftCycles adds delta to every event's cycle stamp — used when
// concatenating per-item traces from a parallel sweep onto one timeline.
func (t *Trace) ShiftCycles(delta int64) {
	for i := range t.Events {
		t.Events[i].Cycle += delta
	}
}

// MaxCycle returns the largest cycle stamp on the given track, or -1 if
// the track has no events.
func (t *Trace) MaxCycle(track Track) int64 {
	max := int64(-1)
	for _, e := range t.Events {
		if e.Track == track && e.Cycle > max {
			max = e.Cycle
		}
	}
	return max
}

// CountKind returns how many events of kind k the trace holds.
func (t *Trace) CountKind(k Kind) int {
	n := 0
	for _, e := range t.Events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// Merge concatenates parts into one trace in argument order. Cycle
// stamps are taken as-is; callers shift first if they want one timeline.
func Merge(parts ...*Trace) *Trace {
	out := &Trace{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Events = append(out.Events, p.Events...)
	}
	return out
}

// jsonlEvent fixes the field order of the JSONL export. encoding/json
// marshals struct fields in declaration order, so the byte stream is a
// pure function of the event sequence.
type jsonlEvent struct {
	Cycle  int64  `json:"cycle"`
	Kind   string `json:"kind"`
	Track  string `json:"track"`
	Seq    uint64 `json:"seq,omitempty"`
	PC     int64  `json:"pc,omitempty"`
	Addr   uint64 `json:"addr,omitempty"`
	Arg    int64  `json:"arg,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// WriteJSONL writes one JSON object per event, in emission order. The
// output is deterministic: same event sequence, same bytes.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events {
		je := jsonlEvent{
			Cycle:  e.Cycle,
			Kind:   e.Kind.String(),
			Track:  e.Track.String(),
			Seq:    e.Seq,
			PC:     e.PC,
			Addr:   e.Addr,
			Arg:    e.Arg,
			Detail: e.Detail,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Tracks returns the sorted set of tracks that appear in the trace.
func (t *Trace) Tracks() []Track {
	var seen [NumTracks]bool
	for _, e := range t.Events {
		seen[e.Track] = true
	}
	var out []Track
	for i, ok := range seen {
		if ok {
			out = append(out, Track(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
