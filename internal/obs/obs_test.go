package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestRegistrySnapshotDelta(t *testing.T) {
	r := NewRegistry()
	var a uint64
	var c int64
	occupancy := uint64(0)
	r.CounterUint64("a", &a)
	r.CounterInt64("cycles", &c)
	r.Gauge("occ", func() uint64 { return occupancy })

	a, c, occupancy = 3, 10, 2
	before := r.Snapshot()
	a, c, occupancy = 8, 25, 7
	after := r.Snapshot()
	d := after.Delta(before)

	if got := d.Get("a"); got != 5 {
		t.Errorf("counter delta a = %d, want 5", got)
	}
	if got := d.GetInt64("cycles"); got != 15 {
		t.Errorf("counter delta cycles = %d, want 15", got)
	}
	if got := d.Get("occ"); got != 7 {
		t.Errorf("gauge delta occ = %d, want current value 7", got)
	}
	if got := d.Get("missing"); got != 0 {
		t.Errorf("missing metric = %d, want 0", got)
	}
	// Delta against the zero snapshot counts from zero.
	z := after.Delta(Snapshot{})
	if got := z.Get("a"); got != 8 {
		t.Errorf("delta vs zero snapshot = %d, want 8", got)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	var a uint64
	r.CounterUint64("dup", &a)
	r.CounterUint64("dup", &a)
}

func TestSnapshotIntoReusesBuffer(t *testing.T) {
	r := NewRegistry()
	var a, b uint64
	r.CounterUint64("a", &a)
	r.CounterUint64("b", &b)
	var s, prev, d Snapshot
	r.SnapshotInto(&prev)
	r.SnapshotInto(&s)
	s.DeltaInto(prev, &d)
	allocs := testing.AllocsPerRun(100, func() {
		r.SnapshotInto(&s)
		s.DeltaInto(prev, &d)
	})
	if allocs != 0 {
		t.Errorf("warm SnapshotInto+DeltaInto allocates %v per run, want 0", allocs)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{1, 4, 16})
	for _, v := range []int64{1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if got := s.Get("lat.count"); got != 5 {
		t.Errorf("lat.count = %d, want 5", got)
	}
	if got := s.Get("lat.sum"); got != 111 {
		t.Errorf("lat.sum = %d, want 111", got)
	}
	if got := s.Get("lat.le.1"); got != 1 {
		t.Errorf("lat.le.1 = %d, want 1", got)
	}
	if got := s.Get("lat.le.4"); got != 2 {
		t.Errorf("lat.le.4 = %d, want 2", got)
	}
	if got := s.Get("lat.le.16"); got != 1 {
		t.Errorf("lat.le.16 = %d, want 1", got)
	}
	if got := s.Get("lat.le.inf"); got != 1 {
		t.Errorf("lat.le.inf = %d, want 1", got)
	}
}

func sampleTrace() *Trace {
	tr := NewTrace()
	tr.Emit(Event{Cycle: 0, Kind: KindRunStart, Track: TrackRetire})
	tr.Emit(Event{Cycle: 1, Kind: KindFetch, Track: TrackFetch, Seq: 1, PC: 0})
	tr.Emit(Event{Cycle: 2, Kind: KindIssue, Track: TrackIssue, Seq: 1, PC: 0, Arg: 3})
	tr.Emit(Event{Cycle: 4, Kind: KindCacheMiss, Track: TrackL1, Addr: 0x40})
	tr.Emit(Event{Cycle: 6, Kind: KindRetire, Track: TrackRetire, Seq: 1, PC: 0, Arg: 5})
	tr.Emit(Event{Cycle: 7, Kind: KindRunEnd, Track: TrackRetire, Arg: 7})
	return tr
}

func TestTraceWindowShiftMerge(t *testing.T) {
	tr := sampleTrace()
	win := tr.Window(2, 6)
	if win.Len() != 2 {
		t.Fatalf("window [2,6) has %d events, want 2", win.Len())
	}
	if win.Events[0].Kind != KindIssue || win.Events[1].Kind != KindCacheMiss {
		t.Errorf("window contents wrong: %+v", win.Events)
	}
	open := tr.Window(2, -1)
	if open.Len() != 4 {
		t.Errorf("open window has %d events, want 4", open.Len())
	}

	b := sampleTrace()
	b.ShiftCycles(100)
	if b.Events[0].Cycle != 100 {
		t.Errorf("shift: first cycle = %d, want 100", b.Events[0].Cycle)
	}
	m := Merge(tr, nil, b)
	if m.Len() != tr.Len()*2 {
		t.Errorf("merge length = %d, want %d", m.Len(), tr.Len()*2)
	}
	if got := m.MaxCycle(TrackRetire); got != 107 {
		t.Errorf("merged MaxCycle(retire) = %d, want 107", got)
	}
}

func TestTraceJSONLDeterministic(t *testing.T) {
	tr := sampleTrace()
	var a, b bytes.Buffer
	if err := tr.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("repeated JSONL export differs")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != tr.Len() {
		t.Fatalf("JSONL has %d lines, want %d", len(lines), tr.Len())
	}
	for _, ln := range lines {
		var obj map[string]interface{}
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", ln, err)
		}
	}
}

func TestTraceChromeValid(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var f struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	// Metadata first, then one entry per trace event.
	meta, slices, instants := 0, 0, 0
	var retireMax int64 = -1
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if e.Dur < 1 {
				t.Errorf("X slice %q has dur %d, want >= 1", e.Name, e.Dur)
			}
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
		if e.Ph != "M" && e.Tid == int(TrackRetire) && e.Ts > retireMax {
			retireMax = e.Ts
		}
	}
	if meta < 2 {
		t.Errorf("chrome export has %d metadata records, want >= 2", meta)
	}
	if slices != 1 {
		t.Errorf("chrome export has %d X slices, want 1 (the issue event)", slices)
	}
	if instants != tr.Len()-1 {
		t.Errorf("chrome export has %d instants, want %d", instants, tr.Len()-1)
	}
	if retireMax != 7 {
		t.Errorf("retire track max ts = %d, want 7 (the run-end marker)", retireMax)
	}
}

func TestTraceReportRenders(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace report", "retire", "cycle attribution by PC"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Empty trace still renders.
	var empty bytes.Buffer
	if err := NewTrace().WriteReport(&empty); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no events") {
		t.Errorf("empty report = %q", empty.String())
	}
}

func TestKindTrackStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	for tr := Track(0); tr < NumTracks; tr++ {
		if tr.String() == "" || strings.HasPrefix(tr.String(), "track(") {
			t.Errorf("Track %d has no name", tr)
		}
	}
}
