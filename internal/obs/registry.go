package obs

import (
	"fmt"
	"sort"
	"strings"
)

// metricKind distinguishes how Delta treats a metric: counters subtract,
// gauges report the current value.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
)

// Registry is a named view over metrics that live as plain fields inside
// their owning packages. Registration hands the registry a read closure;
// the hot path keeps incrementing its raw field and pays nothing — the
// closure is only invoked at snapshot time. This is the redesigned
// replacement for field-by-field Stats plumbing: callers take a Snapshot
// before a region of interest and Delta after, instead of copying struct
// fields by hand.
//
// Registry is not safe for concurrent mutation; build it once at machine
// construction and snapshot it from the machine's own goroutine (the
// parallel engine gives each worker its own machine, so this is the
// natural discipline).
type Registry struct {
	names []string
	kinds []metricKind
	read  []func() uint64
	index map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]int)}
}

func (r *Registry) register(name string, k metricKind, read func() uint64) {
	if _, dup := r.index[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	r.index[name] = len(r.names)
	r.names = append(r.names, name)
	r.kinds = append(r.kinds, k)
	r.read = append(r.read, read)
}

// Counter registers a monotonically increasing metric read through fn.
func (r *Registry) Counter(name string, fn func() uint64) {
	r.register(name, kindCounter, fn)
}

// CounterUint64 registers a counter backed directly by a uint64 field.
func (r *Registry) CounterUint64(name string, p *uint64) {
	r.register(name, kindCounter, func() uint64 { return *p })
}

// CounterInt64 registers a counter backed by an int64 field (cycle
// counts). Values are stored as uint64 two's complement; Snapshot.Get
// callers that know the metric is cycle-like convert back with int64().
func (r *Registry) CounterInt64(name string, p *int64) {
	r.register(name, kindCounter, func() uint64 { return uint64(*p) })
}

// Gauge registers a point-in-time metric (occupancy, level). Delta
// reports the current value rather than a difference.
func (r *Registry) Gauge(name string, fn func() uint64) {
	r.register(name, kindGauge, fn)
}

// Histogram is a fixed-bucket distribution. Observe is alloc-free; the
// registry exposes it as name.count, name.sum and one name.le.B counter
// per bucket bound (plus name.le.inf).
type Histogram struct {
	bounds  []int64
	buckets []uint64
	count   uint64
	sum     uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count++
	h.sum += uint64(v)
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.bounds)]++
}

// Histogram registers a histogram with the given ascending bucket bounds
// and returns it for the owner to Observe into.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	h := &Histogram{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
	r.Counter(name+".count", func() uint64 { return h.count })
	r.Counter(name+".sum", func() uint64 { return h.sum })
	for i, b := range bounds {
		i := i
		r.Counter(fmt.Sprintf("%s.le.%d", name, b), func() uint64 { return h.buckets[i] })
	}
	last := len(bounds)
	r.Counter(name+".le.inf", func() uint64 { return h.buckets[last] })
	return h
}

// Names returns the registered metric names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Snapshot is a point-in-time copy of every metric value. It stays valid
// after the registry's underlying fields move on.
type Snapshot struct {
	reg  *Registry
	vals []uint64
}

// Snapshot reads every metric. Allocates; hot callers use SnapshotInto.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	r.SnapshotInto(&s)
	return s
}

// SnapshotInto reads every metric into dst, reusing dst's buffer when it
// is large enough — the Machine.Run hot path keeps two scratch snapshots
// and never allocates after the first run.
func (r *Registry) SnapshotInto(dst *Snapshot) {
	dst.reg = r
	if cap(dst.vals) < len(r.read) {
		dst.vals = make([]uint64, len(r.read))
	}
	dst.vals = dst.vals[:len(r.read)]
	for i, fn := range r.read {
		dst.vals[i] = fn()
	}
}

// Get returns the value of a named metric (0 if absent).
func (s Snapshot) Get(name string) uint64 {
	if s.reg == nil {
		return 0
	}
	if i, ok := s.reg.index[name]; ok {
		return s.vals[i]
	}
	return 0
}

// GetInt64 returns a cycle-like metric as a signed count.
func (s Snapshot) GetInt64(name string) int64 { return int64(s.Get(name)) }

// Map returns the snapshot as a name → value map, the shape the serve
// layer marshals for GET /v1/stats (encoding/json sorts map keys, so
// the JSON rendering is deterministic).
func (s Snapshot) Map() map[string]uint64 {
	if s.reg == nil {
		return map[string]uint64{}
	}
	out := make(map[string]uint64, len(s.vals))
	for name, i := range s.reg.index {
		out[name] = s.vals[i]
	}
	return out
}

// Delta returns a snapshot holding, for each counter, the increase since
// prev, and for each gauge, the current value. prev may be the zero
// Snapshot (everything counts from zero).
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{}
	s.DeltaInto(prev, &d)
	return d
}

// DeltaInto computes Delta into dst, reusing dst's buffer when possible.
func (s Snapshot) DeltaInto(prev Snapshot, dst *Snapshot) {
	dst.reg = s.reg
	if cap(dst.vals) < len(s.vals) {
		dst.vals = make([]uint64, len(s.vals))
	}
	dst.vals = dst.vals[:len(s.vals)]
	for i, v := range s.vals {
		if s.reg.kinds[i] == kindGauge || prev.reg == nil {
			dst.vals[i] = v
			continue
		}
		dst.vals[i] = v - prev.vals[i]
	}
}

// Format renders the snapshot as sorted "name value" lines, skipping
// zero-valued metrics unless all is set. Deterministic: sorted by name.
func (s Snapshot) Format(all bool) string {
	if s.reg == nil {
		return ""
	}
	names := s.reg.Names()
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		v := s.vals[s.reg.index[n]]
		if v == 0 && !all {
			continue
		}
		fmt.Fprintf(&b, "%-34s %d\n", n, v)
	}
	return b.String()
}
