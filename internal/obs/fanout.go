package obs

// fanout duplicates every event to a fixed set of probes, in order.
type fanout struct {
	probes []Probe
}

func (f *fanout) Emit(e Event) {
	for _, p := range f.probes {
		p.Emit(e)
	}
}

// Fanout composes probes into one: every event is emitted to each
// non-nil probe in argument order. Nil probes are dropped at
// construction, so the hot path never re-checks them; zero or one live
// probe collapses to nil or the probe itself, keeping the single-probe
// configuration exactly as cheap as before. The serve layer uses this
// to attach a job's progress bridge alongside the recording trace a
// scenario already owns.
func Fanout(probes ...Probe) Probe {
	live := make([]Probe, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &fanout{probes: live}
}
