package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteReport renders a text cycle-attribution report: per-track activity
// (event counts and the share of cycles on which the track was active,
// drawn as a bar), per-kind totals, and a flamegraph-style ranking of
// PCs by summed issue latency — where the simulated cycles actually
// went. Deterministic for a given event sequence.
func (t *Trace) WriteReport(w io.Writer) error {
	if len(t.Events) == 0 {
		_, err := fmt.Fprintln(w, "trace: no events")
		return err
	}

	minC, maxC := t.Events[0].Cycle, t.Events[0].Cycle
	var kindCount [numKinds]int
	trackCount := make([]int, NumTracks)
	trackCycles := make([]map[int64]struct{}, NumTracks)
	issueByPC := map[int64]int64{}
	issueCountByPC := map[int64]int{}
	for _, e := range t.Events {
		if e.Cycle < minC {
			minC = e.Cycle
		}
		if e.Cycle > maxC {
			maxC = e.Cycle
		}
		kindCount[e.Kind]++
		trackCount[e.Track]++
		if trackCycles[e.Track] == nil {
			trackCycles[e.Track] = map[int64]struct{}{}
		}
		trackCycles[e.Track][e.Cycle] = struct{}{}
		if e.Kind == KindIssue {
			issueByPC[e.PC] += e.Arg
			issueCountByPC[e.PC]++
		}
	}
	span := maxC - minC + 1

	fmt.Fprintf(w, "trace report: %d events over cycles [%d, %d] (%d cycles)\n\n",
		len(t.Events), minC, maxC, span)

	fmt.Fprintf(w, "%-10s %10s %10s  %s\n", "track", "events", "active", "active-cycle share")
	for tr := Track(0); tr < NumTracks; tr++ {
		if trackCount[tr] == 0 {
			continue
		}
		active := int64(len(trackCycles[tr]))
		share := float64(active) / float64(span)
		fmt.Fprintf(w, "%-10s %10d %10d  %s %5.1f%%\n",
			tr.String(), trackCount[tr], active, bar(share, 30), share*100)
	}

	fmt.Fprintf(w, "\n%-16s %10s\n", "kind", "events")
	for k := Kind(0); k < numKinds; k++ {
		if kindCount[k] == 0 {
			continue
		}
		fmt.Fprintf(w, "%-16s %10d\n", k.String(), kindCount[k])
	}

	if len(issueByPC) > 0 {
		type pcCost struct {
			pc     int64
			cycles int64
			n      int
		}
		var costs []pcCost
		var total int64
		for pc, c := range issueByPC {
			costs = append(costs, pcCost{pc, c, issueCountByPC[pc]})
			total += c
		}
		sort.Slice(costs, func(i, j int) bool {
			if costs[i].cycles != costs[j].cycles {
				return costs[i].cycles > costs[j].cycles
			}
			return costs[i].pc < costs[j].pc
		})
		if len(costs) > 20 {
			costs = costs[:20]
		}
		fmt.Fprintf(w, "\ncycle attribution by PC (issue latency, top %d):\n", len(costs))
		fmt.Fprintf(w, "%-8s %10s %8s  %s\n", "pc", "cycles", "issues", "share of issued cycles")
		for _, c := range costs {
			share := float64(c.cycles) / float64(total)
			fmt.Fprintf(w, "%-8d %10d %8d  %s %5.1f%%\n",
				c.pc, c.cycles, c.n, bar(share, 30), share*100)
		}
	}
	return nil
}

func bar(share float64, width int) string {
	n := int(share * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}
