// Package obs is the simulator's unified observability layer: a typed
// probe/event taxonomy every simulated structure publishes into, a
// registry of named counters behind snapshot/diff methods, and exporters
// (deterministic JSONL, Chrome trace-event format for Perfetto, and a
// text cycle-attribution report).
//
// The layer is zero-cost when disabled: every publisher guards its
// emission with a nil check on the probe, events are plain value structs
// with static detail strings (no formatting on hot paths), and the
// registry reads counters through closures only at snapshot time — the
// hot path keeps its raw field increments inside the owning package.
// Tests pin both properties: a nil probe performs no allocations, and
// the same seed yields byte-identical traces at every worker count.
package obs

import "fmt"

// Kind classifies one probe event. The taxonomy covers the µop lifecycle
// (fetch/rename/issue/forward/retire plus squash and store dequeue), the
// cache hierarchy (hit/miss/fill/evict/prefetch), optimization-feature
// activations, taint leak events, and fault injections.
type Kind uint8

const (
	// KindFetch: an instruction entered the frontend from the control-flow
	// oracle (replayed µops do not re-fetch).
	KindFetch Kind = iota
	// KindRename: a µop was renamed and dispatched into the backend.
	KindRename
	// KindIssue: a µop was scheduled onto a port; Arg is its latency.
	KindIssue
	// KindForward: a load was (at least partly) satisfied by
	// store-to-load forwarding.
	KindForward
	// KindRetire: a µop committed; Arg is its fetch-to-retire lifetime.
	KindRetire
	// KindSquash: a µop was squashed for replay (value misprediction).
	KindSquash
	// KindDequeue: a store left the store queue; Detail is "silent" for a
	// silently elided store (Figure 4 Case A).
	KindDequeue
	// KindRunStart / KindRunEnd bracket one Machine.Run on the retire
	// track, so a trace's retire-track cycle span equals Result.Cycles.
	KindRunStart
	KindRunEnd

	// KindCacheHit / KindCacheMiss: a demand lookup at one cache level.
	KindCacheHit
	KindCacheMiss
	// KindCacheFill: a line was inserted; Detail is "prefetch" for
	// prefetch fills.
	KindCacheFill
	// KindCacheEvict: a line was displaced or invalidated; Addr is the
	// victim line address.
	KindCacheEvict
	// KindCachePrefetch: the hierarchy accepted a prefetch request.
	KindCachePrefetch

	// KindUopt: an optimization-feature activation (Detail names the
	// feature: reuse, pack, simplify, value-predict, value-mispredict,
	// rfc-share, silent-store, ss-load).
	KindUopt
	// KindTaintLeak: an optimization trigger condition read secret-labeled
	// state (Detail names the optimization class, Arg the label set).
	KindTaintLeak
	// KindFault: a fault injector fired (Detail names the site).
	KindFault

	numKinds
)

var kindNames = [numKinds]string{
	KindFetch:         "fetch",
	KindRename:        "rename",
	KindIssue:         "issue",
	KindForward:       "forward",
	KindRetire:        "retire",
	KindSquash:        "squash",
	KindDequeue:       "sq-dequeue",
	KindRunStart:      "run-start",
	KindRunEnd:        "run-end",
	KindCacheHit:      "cache-hit",
	KindCacheMiss:     "cache-miss",
	KindCacheFill:     "cache-fill",
	KindCacheEvict:    "cache-evict",
	KindCachePrefetch: "cache-prefetch",
	KindUopt:          "uopt",
	KindTaintLeak:     "taint-leak",
	KindFault:         "fault",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Track assigns an event to one pipeline structure — rendered as one
// thread per track in the Chrome trace-event export, so Perfetto shows
// the fetch, rename, issue, memory, retire, cache and optimization
// activity as parallel timelines.
type Track uint8

const (
	TrackFetch Track = iota
	TrackRename
	TrackIssue
	// TrackMem is the load/store queue: forwarding, SS-Loads, dequeues.
	TrackMem
	TrackRetire
	TrackL1
	TrackL2
	TrackPrefetch
	TrackUopt
	TrackTaint
	TrackFaults

	NumTracks
)

var trackNames = [NumTracks]string{
	TrackFetch:    "fetch",
	TrackRename:   "rename",
	TrackIssue:    "issue",
	TrackMem:      "mem",
	TrackRetire:   "retire",
	TrackL1:       "L1",
	TrackL2:       "L2",
	TrackPrefetch: "prefetch",
	TrackUopt:     "uopt",
	TrackTaint:    "taint",
	TrackFaults:   "faults",
}

func (t Track) String() string {
	if int(t) < len(trackNames) {
		return trackNames[t]
	}
	return fmt.Sprintf("track(%d)", uint8(t))
}

// Event is one cycle-stamped observation. It is a plain value: emitting
// one allocates nothing, and Detail must be a static (or pre-built)
// string — publishers never format on the hot path.
type Event struct {
	Cycle int64
	Kind  Kind
	Track Track
	// Seq is the dynamic µop sequence number (0 when not applicable).
	Seq uint64
	// PC is the µop's program counter (-1 when not applicable).
	PC int64
	// Addr is the byte address for memory/cache events.
	Addr uint64
	// Arg is a kind-specific scalar: issue latency, retire lifetime,
	// taint label set, fault payload.
	Arg int64
	// Detail is short static context (feature name, fault site, ...).
	Detail string
}

// Probe consumes events. Implementations must not retain a pointer into
// the event (it is a value) and must be deterministic if the trace they
// produce is compared across runs. A nil Probe disables observation at
// zero cost; publishers guard every Emit with a nil check.
type Probe interface {
	Emit(Event)
}
