package pipeline

import (
	"math/bits"

	"pandora/internal/isa"
)

// This file holds the per-cycle structural self-checks enabled by
// Config.CheckInvariants. Every violation is reported through m.fail, so
// the error carries the cycle on which the structure first went wrong —
// the property the differential harness (internal/diffcheck) relies on to
// localize a bug, since an end-of-run state diff only says *that* the
// machines diverged, not *when*.

// checkInvariants runs once per cycle, after every stage has ticked.
func (m *Machine) checkInvariants() {
	if m.err != nil {
		return
	}

	// ROB: strict program order, head younger than everything retired,
	// no retired µop lingering (retire removes entries as it marks them),
	// and each occupant's scheduler-mask bits mirroring its stage and slot
	// exactly (the bitset path's candidate sets equal the linear scan's).
	prev := uint64(0)
	for i := 0; i < m.robN; i++ {
		u := m.robAt(i)
		if i > 0 && u.seq <= prev {
			m.fail("invariant: ROB out of order: µop #%d at slot %d follows #%d",
				u.seq, i, prev)
			return
		}
		prev = u.seq
		if u.stage == stRetired {
			m.fail("invariant: retired µop #%d (pc=%d) still in ROB slot %d", u.seq, u.pc, i)
			return
		}
		slot := (m.robHead + i) & (len(m.robBuf) - 1)
		if u.slot != slot {
			m.fail("invariant: µop #%d records slot %d but occupies slot %d", u.seq, u.slot, slot)
			return
		}
		w, b := slot>>6, uint64(1)<<(uint(slot)&63)
		if got, want := m.dispW[w]&b != 0, u.stage == stDispatched; got != want {
			m.fail("invariant: µop #%d (stage %d) dispW bit=%v at slot %d", u.seq, u.stage, got, slot)
			return
		}
		if got, want := m.execW[w]&b != 0, u.stage == stExecuting; got != want {
			m.fail("invariant: µop #%d (stage %d) execW bit=%v at slot %d", u.seq, u.stage, got, slot)
			return
		}
	}
	if m.robN > 0 && m.robBuf[m.robHead].seq <= m.lastRetiredSeq {
		m.fail("invariant: ROB head #%d not younger than last retired #%d",
			m.robBuf[m.robHead].seq, m.lastRetiredSeq)
		return
	}
	// No mask bit may survive outside the occupied window.
	pop := 0
	for w := range m.dispW {
		pop += bits.OnesCount64(m.dispW[w]) + bits.OnesCount64(m.execW[w])
	}
	inWindow := 0
	for i := 0; i < m.robN; i++ {
		if st := m.robAt(i).stage; st == stDispatched || st == stExecuting {
			inWindow++
		}
	}
	if pop != inWindow {
		m.fail("invariant: %d scheduler-mask bits set for %d dispatched/executing µops", pop, inWindow)
		return
	}

	// Store queue: stores only, program order, retired entries resolved,
	// and the dequeue discipline the config promises (only the head may be
	// in flight to the cache unless SQOutOfOrderDequeue).
	for i, e := range m.sq {
		if e.u.class != isa.ClassStore {
			m.fail("invariant: non-store µop #%d (%v) in SQ slot %d", e.u.seq, e.u.inst, i)
			return
		}
		if i > 0 && e.u.seq <= m.sq[i-1].u.seq {
			m.fail("invariant: SQ out of order: store #%d at slot %d follows #%d",
				e.u.seq, i, m.sq[i-1].u.seq)
			return
		}
		if e.u.stage == stRetired && !e.addrReady {
			m.fail("invariant: retired store #%d has unresolved address", e.u.seq)
			return
		}
		if e.dequeuing {
			if e.u.stage != stRetired {
				m.fail("invariant: store #%d dequeuing before retirement", e.u.seq)
				return
			}
			if i != 0 && !m.cfg.SQOutOfOrderDequeue {
				m.fail("invariant: store #%d dequeuing behind the SQ head under in-order dequeue", e.u.seq)
				return
			}
		}
	}

	// Speculation discipline: wrong-path µops are exactly the ROB suffix
	// younger than the outstanding mispredicted branch, their count
	// matches the fetch-side counter (wrong-path µops never retire, so
	// every one fetched is still in the ROB), and none may be queued for
	// replay (wrong-path victims are discarded, not replayed).
	wrongN := 0
	for i := 0; i < m.robN; i++ {
		u := m.robAt(i)
		if u.wrongPath {
			wrongN++
			if m.specBranch == nil || u.seq <= m.specBranch.seq {
				m.fail("invariant: wrong-path µop #%d with no unresolved mispredicted branch older than it", u.seq)
				return
			}
		} else if m.specBranch != nil && u.seq > m.specBranch.seq {
			m.fail("invariant: correct-path µop #%d younger than unresolved mispredicted branch #%d",
				u.seq, m.specBranch.seq)
			return
		}
	}
	if wrongN != m.wrongPathN {
		m.fail("invariant: %d wrong-path µops in ROB but counter says %d", wrongN, m.wrongPathN)
		return
	}
	for _, v := range m.replay {
		if v.wrongPath {
			m.fail("invariant: wrong-path µop #%d in the replay queue", v.seq)
			return
		}
	}

	// Cache hierarchy: inclusivity and replacement-state sanity. A latched
	// SelfCheck violation names the operation that exposed it; otherwise
	// probe directly.
	if err := m.hier.InvariantError(); err != nil {
		m.fail("invariant: %v", err)
		return
	}
	if err := m.hier.CheckInvariants(); err != nil {
		m.fail("invariant: %v", err)
	}
}

// checkForwardConsistency recomputes a store-to-load forwarding result
// with an independent algorithm — forwardScan's youngest-to-oldest, first
// writer per byte wins, instead of readWithForward's oldest-to-youngest
// overwrite — and fails the machine if the two disagree.
func (m *Machine) checkForwardConsistency(addr uint64, width int, seq uint64, gotVal uint64, gotFull, gotAny bool) {
	if m.err != nil {
		return
	}
	val, full, any := m.forwardScan(addr, width, seq, nil, nil)
	if val != gotVal || full != gotFull || any != gotAny {
		m.fail("invariant: forwarding disagreement at %#x/%d for load #%d: scan=(%#x full=%v any=%v) recheck=(%#x full=%v any=%v)",
			addr, width, seq, gotVal, gotFull, gotAny, val, full, any)
	}
}
