package pipeline

import (
	"testing"

	"pandora/internal/cache"
	"pandora/internal/faults"
	"pandora/internal/mem"
	"pandora/internal/taint"
)

func specConfig(mut func(*SpeculationConfig)) Config {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	sp := &SpeculationConfig{}
	if mut != nil {
		mut(sp)
	}
	cfg.Speculation = sp
	return cfg
}

// wrongPathKernel takes a forward conditional branch that static BTFN
// predicts not-taken, so the fall-through — a load and an ALU op — is
// fetched down the wrong path every time and must be squashed without
// an architectural trace.
const wrongPathKernel = `
	addi x1, x0, 1
	lui  x2, 2
	bne  x1, x0, skip   # taken forward branch: BTFN mispredicts
	ld   x3, 0(x2)      # wrong path: real cache access, no retirement
	addi x4, x0, 99     # wrong path
skip:
	addi x6, x0, 7
	halt
`

func TestWrongPathFetchAndSquash(t *testing.T) {
	m := newTestMachine(t, specConfig(func(sp *SpeculationConfig) { sp.WrongPath = true }))
	res := run(t, m, wrongPathKernel)
	if res.Stats.WrongPathFetched == 0 {
		t.Error("no wrong-path µops fetched")
	}
	if res.Stats.MispredictSquashes != 1 {
		t.Errorf("MispredictSquashes = %d, want 1", res.Stats.MispredictSquashes)
	}
	if got := m.Reg(3); got != 0 {
		t.Errorf("x3 = %d, want 0 (wrong-path load must not commit)", got)
	}
	if got := m.Reg(4); got != 0 {
		t.Errorf("x4 = %d, want 0 (wrong-path ALU op must not commit)", got)
	}
	if got := m.Reg(6); got != 7 {
		t.Errorf("x6 = %d, want 7", got)
	}
	if m.specBranch != nil || m.wrongPathN != 0 {
		t.Error("wrong-path mode still active after run")
	}
}

// TestWrongPathOffBitIdentical pins the inertness claim: with Speculation
// nil the same program produces the same architectural state and cycle
// count as before the speculation code existed (the fetchBlocked stall
// path), and no speculation counters move.
func TestWrongPathOffBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	m := newTestMachine(t, cfg)
	res := run(t, m, wrongPathKernel)
	if res.Stats.WrongPathFetched != 0 || res.Stats.MispredictSquashes != 0 {
		t.Errorf("speculation counters moved without a Speculation config: %+v", res.Stats)
	}
	if res.Stats.BranchMispredicts == 0 {
		t.Error("the kernel's branch should still count as mispredicted")
	}
	if got := m.Reg(6); got != 7 {
		t.Errorf("x6 = %d, want 7", got)
	}
}

// TestWrongPathLoadWarmsCache is the microarchitectural residue the
// speculative-vectorization channel rides on: a squashed wrong-path load
// still installs its line, so a later correct-path access to the same
// line hits. The kernel's probe load is measurably faster with wrong-path
// fetch enabled — and the architectural results are identical.
func TestWrongPathLoadWarmsCache(t *testing.T) {
	kernel := `
		addi x1, x0, 1
		addi x8, x0, 1
		div  x9, x8, x8     # delay chain: keep the branch unresolved
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		lui  x2, 2
		bne  x9, x0, skip   # taken forward branch, resolves late
		ld   x3, 0(x2)      # wrong path: warms line 0x2000
		jal  x0, done
	skip:
		ld   x7, 0(x2)      # probe: hits iff the wrong path ran
	done:
		halt
	`
	cycles := func(spec bool) int64 {
		cfg := DefaultConfig()
		cfg.CheckInvariants = true
		if spec {
			cfg.Speculation = &SpeculationConfig{WrongPath: true}
		}
		m := newTestMachine(t, cfg)
		res := run(t, m, kernel)
		if got := m.Reg(3); got != 0 {
			t.Errorf("spec=%v: x3 = %d, want 0", spec, got)
		}
		return res.Cycles
	}
	on, off := cycles(true), cycles(false)
	if on >= off {
		t.Errorf("probe load not warmed by squashed wrong-path access: %d cycles with speculation, %d without", on, off)
	}
}

// TestBimodalLearnsBranch contrasts the trained bimodal table against
// static BTFN on a loop whose body takes a forward branch every
// iteration: BTFN mispredicts every instance, the 2-bit counters only the
// first few.
func TestBimodalLearnsBranch(t *testing.T) {
	kernel := `
		addi x1, x0, 40
	loop:
		beq  x0, x0, skip   # always-taken forward branch
		addi x5, x5, 1      # never executes
	skip:
		addi x1, x1, -1
		bne  x1, x0, loop
		halt
	`
	mispredicts := func(bimodal bool) uint64 {
		m := newTestMachine(t, specConfig(func(sp *SpeculationConfig) {
			sp.WrongPath = true
			sp.Bimodal = bimodal
		}))
		res := run(t, m, kernel)
		if got := m.Reg(5); got != 0 {
			t.Errorf("bimodal=%v: x5 = %d, want 0", bimodal, got)
		}
		if got := m.Reg(1); got != 0 {
			t.Errorf("bimodal=%v: x1 = %d, want 0", bimodal, got)
		}
		return res.Stats.BranchMispredicts
	}
	static, trained := mispredicts(false), mispredicts(true)
	if static < 40 {
		t.Errorf("static BTFN mispredicted %d times, want >= 40", static)
	}
	if trained >= static/2 {
		t.Errorf("bimodal mispredicted %d times, static %d — table did not learn", trained, static)
	}
}

// TestStuckPredictorFault checks the structural stuck-predictor site:
// with training frozen, the bimodal table never leaves its initial
// not-taken state and mispredicts like an untrained one.
func TestStuckPredictorFault(t *testing.T) {
	kernel := `
		addi x1, x0, 40
	loop:
		beq  x0, x0, skip
		addi x5, x5, 1
	skip:
		addi x1, x1, -1
		bne  x1, x0, loop
		halt
	`
	run_ := func(stuck bool) uint64 {
		cfg := specConfig(func(sp *SpeculationConfig) { sp.WrongPath = true; sp.Bimodal = true })
		var inj *faults.Injector
		if stuck {
			inj = faults.NewInjector(&faults.Plan{Site: faults.SiteStuckPredictor})
			cfg.Faults = inj
		}
		m := newTestMachine(t, cfg)
		res := run(t, m, kernel)
		if stuck && !inj.Fired() {
			t.Error("stuck-predictor fault never fired")
		}
		return res.Stats.BranchMispredicts
	}
	healthy, stuck := run_(false), run_(true)
	if stuck <= healthy*2 {
		t.Errorf("stuck predictor mispredicted %d times vs healthy %d — training was not frozen", stuck, healthy)
	}
}

// TestMispredictStormFault checks the transient storm site on the
// plain non-speculative pipeline: correctly predicted branches are forced
// to mispredict, costing BranchPenalty each, with identical architectural
// results.
func TestMispredictStormFault(t *testing.T) {
	kernel := `
		addi x1, x0, 30
		addi x2, x0, 0
	loop:
		add  x2, x2, x1
		addi x1, x1, -1
		bne  x1, x0, loop
		halt
	`
	run_ := func(storm bool) (int64, uint64, uint64) {
		cfg := DefaultConfig()
		cfg.CheckInvariants = true
		var inj *faults.Injector
		if storm {
			inj = faults.NewInjector(&faults.Plan{Site: faults.SiteMispredictStorm, TriggerCycle: 5, Count: 4})
			cfg.Faults = inj
		}
		m := newTestMachine(t, cfg)
		res := run(t, m, kernel)
		if got := m.Reg(2); got != 465 {
			t.Errorf("storm=%v: sum = %d, want 465", storm, got)
		}
		if storm && !inj.Fired() {
			t.Error("mispredict storm never fired")
		}
		return res.Cycles, res.Stats.BranchMispredicts, res.Stats.Retired
	}
	cClean, mClean, rClean := run_(false)
	cStorm, mStorm, rStorm := run_(true)
	if rClean != rStorm {
		t.Errorf("retired %d vs %d — the storm changed architectural behavior", rClean, rStorm)
	}
	if mStorm != mClean+4 {
		t.Errorf("BranchMispredicts = %d with storm, want %d", mStorm, mClean+4)
	}
	if cStorm <= cClean {
		t.Errorf("storm run took %d cycles vs %d clean — forced mispredicts cost nothing", cStorm, cClean)
	}
}

// stlfKernel trains the forwarding predictor on a same-address
// store→load pair, then moves the store aside on the final iteration: the
// confident speculative forward latches the wrong value and retire must
// replay. The store data changes every iteration so the mis-forwarded
// value can never accidentally match memory.
const stlfKernel = `
	lui  x10, 3         # buffer base 0x3000
	addi x11, x0, 6     # loop counter
	addi x12, x0, 81    # store data (changes every iteration)
loop:
	slti x16, x11, 2    # 1 only on the final iteration
	slli x17, x16, 3
	add  x18, x10, x17  # store address: base, or base+8 at the end
	sd   x12, 0(x18)
	ld   x13, 0(x10)    # load always reads the base
	addi x12, x12, 7
	addi x11, x11, -1
	bne  x11, x0, loop
	halt
`

func stlfConfig() Config {
	cfg := specConfig(func(sp *SpeculationConfig) { sp.StLF = true })
	// A slow store AGU opens the window where the load's sources are ready
	// but the older store's address is not — the forwarding predictor's
	// habitat.
	cfg.StoreAddrLat = 6
	return cfg
}

func TestSpecForwardTrainsAndReplays(t *testing.T) {
	m := newTestMachine(t, stlfConfig())
	res := run(t, m, stlfKernel)
	if res.Stats.SpecForwards == 0 {
		t.Error("forwarding predictor never forwarded speculatively")
	}
	if res.Stats.SpecForwardReplays == 0 {
		t.Error("the final-iteration address swap did not force a replay")
	}
	// Architectural check: the last iteration's load must see the value
	// iteration 2 stored at the base (81 + 4*7), not the diverted store.
	if got := m.Reg(13); got != 109 {
		t.Errorf("x13 = %d, want 109 (replayed load must read the true memory value)", got)
	}
	if got := m.Reg(11); got != 0 {
		t.Errorf("x11 = %d, want 0", got)
	}
}

// TestSpecForwardCorrectPath: when the predicted forward is right (the
// addresses do match), there is no replay and the forwarded value is the
// architectural one.
func TestSpecForwardCorrectPath(t *testing.T) {
	kernel := `
		lui  x10, 3
		addi x11, x0, 8
		addi x12, x0, 5
	loop:
		sd   x12, 0(x10)    # constant data: every forward source agrees
		ld   x13, 0(x10)
		add  x14, x14, x13
		addi x11, x11, -1
		bne  x11, x0, loop
		halt
	`
	m := newTestMachine(t, stlfConfig())
	res := run(t, m, kernel)
	if res.Stats.SpecForwards == 0 {
		t.Error("no speculative forwards on a perfectly forwardable loop")
	}
	if res.Stats.SpecForwardReplays != 0 {
		t.Errorf("SpecForwardReplays = %d, want 0 (every forward was correct)", res.Stats.SpecForwardReplays)
	}
	if got := m.Reg(14); got != 40 {
		t.Errorf("x14 = %d, want 40", got)
	}
}

// TestSpecForwardOffBitIdentical: with StLF disabled the same
// slow-store-AGU kernel runs with zero speculative forwards and the same
// architectural results.
func TestSpecForwardOffBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	cfg.StoreAddrLat = 6
	m := newTestMachine(t, cfg)
	res := run(t, m, stlfKernel)
	if res.Stats.SpecForwards != 0 || res.Stats.SpecForwardReplays != 0 {
		t.Errorf("StLF counters moved without the predictor: %+v", res.Stats)
	}
	if got := m.Reg(13); got != 109 {
		t.Errorf("x13 = %d, want 109", got)
	}
}

// TestSpecForwardTaintObserved wires a taint state in and checks both new
// observers: the speculative forward of secret-derived store data fires
// OptSpecForward, and a wrong-path load with a secret-derived address
// fires OptWrongPath — even though the load is squashed.
func TestSpecForwardTaintObserved(t *testing.T) {
	cfg := stlfConfig()
	st := taint.NewState()
	cfg.Taint = st
	memory := mem.New()
	memory.Write(0x7100, 8, 5)
	if _, err := st.DefineSecret(taint.Secret{Name: "s", Base: 0x7100, Len: 8}); err != nil {
		t.Fatalf("DefineSecret: %v", err)
	}
	m := newTestMachineMem(t, cfg, memory)
	// The stored data is secret-derived, so every speculative forward of
	// it must be observed.
	run(t, m, `
		addi x28, x0, 0x7100
		ld   x26, 0(x28)    # secret
		lui  x10, 3
		addi x11, x0, 6
	loop:
		sd   x26, 0(x10)    # tainted store data
		ld   x13, 0(x10)
		addi x11, x11, -1
		bne  x11, x0, loop
		halt
	`)
	if n := st.Rec.CountOf(taint.OptSpecForward); n == 0 {
		t.Error("no OptSpecForward events for tainted speculative forwards")
	}
}

func TestWrongPathLoadTaintObserved(t *testing.T) {
	cfg := specConfig(func(sp *SpeculationConfig) { sp.WrongPath = true })
	st := taint.NewState()
	cfg.Taint = st
	memory := mem.New()
	memory.Write(0x7100, 8, 1)
	if _, err := st.DefineSecret(taint.Secret{Name: "s", Base: 0x7100, Len: 8}); err != nil {
		t.Fatalf("DefineSecret: %v", err)
	}
	m := newTestMachineMem(t, cfg, memory)
	run(t, m, `
		addi x28, x0, 0x7100
		ld   x1, 0(x28)     # secret
		slli x2, x1, 6
		lui  x3, 2
		add  x2, x2, x3     # secret-derived address
		addi x8, x0, 1
		div  x9, x8, x8     # delay the branch resolution
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		div  x9, x9, x8
		bne  x9, x0, skip   # taken forward branch: wrong path below
		ld   x5, 0(x2)      # squashed load, tainted address
		jal  x0, done
	skip:
		addi x6, x0, 1
	done:
		halt
	`)
	if n := st.Rec.CountOf(taint.OptWrongPath); n == 0 {
		t.Error("no OptWrongPath events for the squashed tainted-address load")
	}
	if got := m.Reg(5); got != 0 {
		t.Errorf("x5 = %d, want 0 (the leaking load must not commit)", got)
	}
}

// TestSquashInvariants runs a mispredict-heavy mixed kernel with the
// invariant checker on and both speculation features enabled — every
// cycle after every squash must satisfy the post-squash consistency
// checks (wrong-path discipline, forwarding consistency, refcounts).
func TestSquashInvariants(t *testing.T) {
	kernel := `
		addi x1, x0, 25
		lui  x10, 3
		addi x12, x0, 9
	loop:
		sd   x12, 0(x10)
		ld   x13, 0(x10)
		beq  x13, x12, t1   # always taken forward: mispredicts until trained
		addi x20, x20, 1
	t1:
		add  x14, x14, x13
		addi x12, x12, 5
		addi x1, x1, -1
		bne  x1, x0, loop
		halt
	`
	m := newTestMachine(t, func() Config {
		cfg := specConfig(func(sp *SpeculationConfig) {
			sp.WrongPath = true
			sp.Bimodal = true
			sp.StLF = true
		})
		cfg.StoreAddrLat = 4
		return cfg
	}())
	res := run(t, m, kernel)
	if got := m.Reg(20); got != 0 {
		t.Errorf("x20 = %d, want 0", got)
	}
	if res.Stats.WrongPathFetched == 0 {
		t.Error("kernel never went down the wrong path")
	}
}

// TestSpeculationConfigValidate rejects out-of-range predictor table
// sizes.
func TestSpeculationConfigValidate(t *testing.T) {
	for _, mut := range []func(*SpeculationConfig){
		func(sp *SpeculationConfig) { sp.BimodalBits = 30 },
		func(sp *SpeculationConfig) { sp.StLFBits = -1 },
		func(sp *SpeculationConfig) { sp.MaxWrongPath = -2 },
	} {
		cfg := specConfig(mut)
		if _, err := New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig())); err == nil {
			t.Error("invalid SpeculationConfig accepted")
		}
	}
}

func newTestMachineMem(t *testing.T, cfg Config, memory *mem.Memory) *Machine {
	t.Helper()
	m, err := New(cfg, memory, cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}
