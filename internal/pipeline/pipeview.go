package pipeline

import (
	"fmt"
	"sort"
	"strings"
)

// RenderPipeview draws the event log as a per-µop pipeline diagram in the
// style of gem5's O3 pipeview: one row per dynamic instruction, columns
// are cycles, with markers for dispatch (D), issue (I), store-queue
// events (s/q), squash (x) and retire (R). Intended for `pandora run
// -pipeview` and debugging timing experiments.
func RenderPipeview(events []Event, maxCols int) string {
	if len(events) == 0 {
		return "(no events — enable Config.RecordEvents)\n"
	}
	if maxCols <= 0 {
		maxCols = 96
	}

	type row struct {
		seq   uint64
		pc    int64
		label string
		marks map[int64]byte
		first int64
		last  int64
	}
	rows := map[uint64]*row{}
	var order []uint64
	var minC, maxC int64 = 1<<62 - 1, 0

	mark := func(e Event, m byte) {
		r := rows[e.Seq]
		if r == nil {
			r = &row{seq: e.Seq, pc: e.PC, marks: map[int64]byte{}, first: e.Cycle}
			rows[e.Seq] = r
			order = append(order, e.Seq)
		}
		// First marker wins within a cycle, except retire/squash which
		// always show.
		if _, busy := r.marks[e.Cycle]; !busy || m == 'R' || m == 'x' {
			r.marks[e.Cycle] = m
		}
		if e.Cycle < r.first {
			r.first = e.Cycle
		}
		if e.Cycle > r.last {
			r.last = e.Cycle
		}
		if e.Cycle < minC {
			minC = e.Cycle
		}
		if e.Cycle > maxC {
			maxC = e.Cycle
		}
	}

	for _, e := range events {
		switch e.Kind {
		case EvDispatch:
			mark(e, 'D')
			rows[e.Seq].label = e.Detail
		case EvIssue:
			mark(e, 'I')
		case EvSSLoadIssue:
			mark(e, 's')
		case EvSSLoadReturn:
			mark(e, 'r')
		case EvSQHead, EvDequeue, EvDequeueSilent:
			mark(e, 'q')
		case EvSquash:
			mark(e, 'x')
		case EvRetire:
			mark(e, 'R')
		}
	}

	span := maxC - minC + 1
	scale := int64(1)
	if span > int64(maxCols) {
		scale = (span + int64(maxCols) - 1) / int64(maxCols)
	}

	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "pipeview: cycles %d..%d (1 column = %d cycle(s))\n", minC, maxC, scale)
	b.WriteString("D dispatch  I issue  s ss-load  r ss-return  q sq-dequeue  x squash  R retire\n\n")
	for _, seq := range order {
		r := rows[seq]
		width := int((maxC-minC)/scale) + 1
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		for c := r.first; c <= r.last; c++ {
			i := int((c - minC) / scale)
			if line[i] == ' ' {
				line[i] = '.'
			}
		}
		for c, m := range r.marks {
			line[int((c-minC)/scale)] = m
		}
		fmt.Fprintf(&b, "#%-4d pc=%-4d |%s| %s\n", r.seq, r.pc, string(line), r.label)
	}
	return b.String()
}
