package pipeline

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"pandora/internal/asm"
	"pandora/internal/faults"
)

// fenceLivelockProg is the crafted livelock fixture: the fence-stuck
// structural fault makes FENCE wait for an *empty* store queue, but the
// younger SB's slot is allocated at rename and cannot drain until the
// fence retires — a circular wait the watchdog must name.
const fenceLivelockProg = `
	addi x1, x0, 1
	addi x2, x0, 0x700
	fence
	sb   x1, 0(x2)
	halt
`

func TestWatchdogLivelockDumpNamesStoreQueue(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Watchdog = &WatchdogConfig{Window: 2000}
	cfg.Faults = faults.NewInjector(&faults.Plan{Site: faults.SiteFenceStuck})
	m := newTestMachine(t, cfg)

	res, err := m.Run(asm.MustAssemble(fenceLivelockProg))
	if err == nil {
		t.Fatalf("livelocked run returned no error")
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *StallError", err, err)
	}
	if se.Reason != ReasonWatchdog {
		t.Fatalf("Reason = %q, want %q", se.Reason, ReasonWatchdog)
	}
	if se.Dump == nil {
		t.Fatalf("StallError carries no CoreDump")
	}
	if res.Cycles <= 0 {
		t.Fatalf("partial Result not returned alongside the error: %+v", res)
	}
	d := se.Dump
	if d.Cycle != res.Cycles {
		t.Errorf("dump cycle %d != partial result cycles %d", d.Cycle, res.Cycles)
	}
	if d.WatchdogWindow != 2000 {
		t.Errorf("WatchdogWindow = %d, want 2000", d.WatchdogWindow)
	}
	if d.Oldest == nil {
		t.Fatalf("dump has no oldest µop")
	}
	if !strings.Contains(d.Oldest.WaitReason, "store queue") {
		t.Errorf("oldest wait reason %q does not name the store queue", d.Oldest.WaitReason)
	}
	if d.SQ.Used == 0 {
		t.Errorf("dump shows an empty store queue; the blocking store must appear")
	}
	if len(d.StoreQueue) == 0 {
		t.Errorf("dump carries no store-queue entries")
	}
	if len(d.LastRetired) == 0 {
		t.Errorf("dump carries no retire history (the two ADDIs retired)")
	}
	// The rendered error names the stalled resource too.
	if !strings.Contains(err.Error(), "store queue") {
		t.Errorf("error %q does not name the stalled resource", err)
	}
	// The dump serializes to valid JSON for artifact capture.
	var decoded map[string]any
	if uerr := json.Unmarshal(d.JSON(), &decoded); uerr != nil {
		t.Fatalf("CoreDump.JSON is not valid JSON: %v", uerr)
	}
	if decoded["reason"] != ReasonWatchdog {
		t.Errorf("JSON reason = %v, want %q", decoded["reason"], ReasonWatchdog)
	}
}

func TestWatchdogIssueDropDump(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Watchdog = &WatchdogConfig{Window: 1500}
	cfg.Faults = faults.NewInjector(&faults.Plan{Site: faults.SiteIssueDrop, TriggerCycle: 1, Count: 1})
	m := newTestMachine(t, cfg)

	_, err := m.Run(asm.MustAssemble("addi x1, x0, 5\nhalt\n"))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *StallError", err, err)
	}
	if se.Reason != ReasonWatchdog || se.Dump == nil || se.Dump.Oldest == nil {
		t.Fatalf("unexpected stall shape: %+v", se)
	}
	if !strings.Contains(se.Dump.Oldest.WaitReason, "wakeup dropped") {
		t.Errorf("wait reason %q does not name the dropped wakeup", se.Dump.Oldest.WaitReason)
	}
}

func TestMaxCyclesReturnsPartialResult(t *testing.T) {
	// Legacy path: no watchdog configured, so the error message is the
	// bare MaxCycles diagnostic — but the partial Result must still come
	// back so callers can see how far the run got.
	cfg := DefaultConfig()
	cfg.MaxCycles = 3000
	cfg.Faults = faults.NewInjector(&faults.Plan{Site: faults.SiteFenceStuck})
	m := newTestMachine(t, cfg)

	res, err := m.Run(asm.MustAssemble(fenceLivelockProg))
	if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
		t.Fatalf("err = %v, want MaxCycles diagnostic", err)
	}
	var se *StallError
	if errors.As(err, &se) {
		t.Fatalf("legacy path (nil Watchdog) must not wrap in StallError, got %+v", se)
	}
	if res.Cycles <= 3000 || res.Retired == 0 {
		t.Errorf("partial result %+v, want >3000 cycles and the pre-fence retires", res)
	}
}

func TestMaxCyclesWrappedWhenSupervised(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 3000
	cfg.Watchdog = &WatchdogConfig{Window: 1 << 30} // never trips; MaxCycles first
	cfg.Faults = faults.NewInjector(&faults.Plan{Site: faults.SiteFenceStuck})
	m := newTestMachine(t, cfg)

	_, err := m.Run(asm.MustAssemble(fenceLivelockProg))
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("supervised MaxCycles not wrapped: %T (%v)", err, err)
	}
	if se.Reason != ReasonMaxCycles || se.Cause == nil || se.Dump == nil {
		t.Fatalf("stall = reason %q cause %v dump %v, want max-cycles with cause and dump",
			se.Reason, se.Cause, se.Dump != nil)
	}
	if !strings.Contains(se.Cause.Error(), "MaxCycles") {
		t.Errorf("wrapped cause %q lost the MaxCycles diagnostic", se.Cause)
	}
}

func TestWatchdogSilentOnCleanRun(t *testing.T) {
	// The same program must produce identical results with and without
	// the supervisor: the watchdog observes, it never perturbs.
	src := `
		addi x1, x0, 0
		addi x2, x0, 50
	loop:
		addi x1, x1, 3
		sd   x1, 0x200(x0)
		ld   x3, 0x200(x0)
		addi x2, x2, -1
		bne  x2, x0, loop
		halt
	`
	plain := newTestMachine(t, DefaultConfig())
	want, err := plain.Run(asm.MustAssemble(src))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}

	cfg := DefaultConfig()
	cfg.Watchdog = &WatchdogConfig{}
	m := newTestMachine(t, cfg)
	got, err := m.Run(asm.MustAssemble(src))
	if err != nil {
		t.Fatalf("supervised clean run failed: %v", err)
	}
	if got != want {
		t.Errorf("supervised result %+v differs from baseline %+v", got, want)
	}
	if m.Reg(1) != plain.Reg(1) || m.Reg(3) != plain.Reg(3) {
		t.Errorf("architectural state diverged under supervision")
	}
}
