package pipeline

import (
	"pandora/internal/isa"
	"pandora/internal/obs"
)

// fetchAndDispatch brings up to FetchWidth µops into the backend per
// cycle: replayed µops first (after a value-misprediction squash), then
// fresh instructions from the control-flow oracle. Direction prediction is
// static BTFN; a mispredicted branch or an indirect jump blocks fetch
// until it resolves, plus the redirect penalty.
func (m *Machine) fetchAndDispatch() {
	if m.fetchBlocked != nil {
		u := m.fetchBlocked
		if u.stage == stDone || u.stage == stRetired {
			if resume := u.doneC + int64(m.cfg.BranchPenalty); resume > m.fetchResumeC {
				m.fetchResumeC = resume
			}
			m.fetchBlocked = nil
		} else {
			return
		}
	}
	if m.cycle < m.fetchResumeC {
		return
	}

	for n := 0; n < m.cfg.FetchWidth; n++ {
		var u *uop
		fromReplay := false
		if len(m.replay) > 0 {
			u = m.replay[0]
			fromReplay = true
		} else {
			if m.oracleHalted || m.haltFetched {
				return
			}
			pc := m.oracle.PC
			if pc < 0 || pc >= int64(len(m.prog)) {
				m.fail("fetch pc %d out of program [0,%d)", pc, len(m.prog))
				return
			}
			// Peek the class for resource checks before committing to the
			// oracle step.
			if !m.resourcesFor(m.prog[pc]) {
				return
			}
			u = m.newUopFromOracle()
			if u == nil {
				return
			}
		}
		if fromReplay {
			if !m.resourcesFor(u.inst) {
				return
			}
			m.replay = m.replay[1:]
		}

		m.dispatch(u)
		if u.mispredicted {
			m.fetchBlocked = u
			return
		}
		if u.class == isa.ClassHalt {
			m.haltFetched = true
			return
		}
	}
}

// resourcesFor reports whether the backend can accept an instruction of
// this shape right now, counting stall causes.
func (m *Machine) resourcesFor(in isa.Inst) bool {
	if len(m.rob) >= m.cfg.ROBSize {
		m.stats.RenameStallROB++
		return false
	}
	cl := isa.ClassOf(in.Op)
	if cl != isa.ClassHalt && m.iqCount >= m.cfg.IQSize {
		m.stats.RenameStallIQ++
		return false
	}
	if cl == isa.ClassLoad && m.lqCount >= m.cfg.LQSize {
		m.stats.RenameStallLQ++
		return false
	}
	if cl == isa.ClassStore && len(m.sq) >= m.cfg.SQSize {
		m.stats.RenameStallSQ++
		return false
	}
	if in.Writes() != isa.X0 && m.prfFree <= 0 {
		m.stats.RenameStallPRF++
		return false
	}
	return true
}

// newUopFromOracle steps the functional oracle one instruction and wraps
// the outcome in a µop carrying the correct-path facts.
func (m *Machine) newUopFromOracle() *uop {
	pc := m.oracle.PC
	in := m.prog[pc]
	cl := isa.ClassOf(in.Op)

	u := &uop{
		pc:    pc,
		inst:  in,
		class: cl,
	}

	if cl == isa.ClassBranch {
		u.oracleTaken = isa.Taken(in.Op, m.oracle.Regs[in.Rs1], m.oracle.Regs[in.Rs2])
	}

	halted, err := m.oracle.Step(m.prog)
	if err != nil {
		m.fail("oracle: %v", err)
		return nil
	}
	if halted {
		m.oracleHalted = true
	}
	u.nextPC = m.oracle.PC
	if w := in.Writes(); w != isa.X0 {
		u.oracleResult = m.oracle.Regs[w]
	}

	switch cl {
	case isa.ClassBranch:
		// Static BTFN: backward targets predicted taken.
		u.predictedTaken = in.Imm <= pc
		u.mispredicted = u.predictedTaken != u.oracleTaken
	case isa.ClassJump:
		// Direct jumps (JAL) are predicted perfectly; indirect jumps
		// (JALR) always redirect — the toy frontend has no BTB.
		u.mispredicted = in.Op == isa.JALR
	}
	return u
}

// dispatch renames u and inserts it into the ROB (and LQ/SQ bookkeeping).
// Resources were checked by the caller.
func (m *Machine) dispatch(u *uop) {
	m.seq++
	u.seq = m.seq
	u.fetchC = m.cycle
	u.stage = stDispatched
	m.stats.Fetched++
	if u.replayed == 0 {
		// Replayed µops re-dispatch from the replay queue without passing
		// through fetch again.
		m.emit(obs.KindFetch, obs.TrackFetch, u, 0, "")
	}
	m.emit(obs.KindRename, obs.TrackRename, u, 0, "")
	if u.mispredicted && u.class == isa.ClassBranch {
		m.stats.BranchMispredicts++
	}

	// Capture producers for the source registers before installing this
	// µop as a producer itself (self-dependencies read the older writer).
	r1, r2 := u.inst.Uses()
	if r1 != isa.X0 {
		u.prod[0] = m.producer[r1]
	}
	if r2 != isa.X0 {
		u.prod[1] = m.producer[r2]
	}

	if u.writesReg() {
		m.prfFree--
		u.renamed = true
		m.producer[u.inst.Writes()] = u
	}

	m.rob = append(m.rob, u)
	switch u.class {
	case isa.ClassHalt:
		// HALT needs no execution resources; it is complete on arrival
		// and retires when oldest.
		u.stage = stExecuting
		u.doneC = m.cycle
	case isa.ClassLoad:
		m.iqCount++
		m.lqCount++
		// µ-op fusion: an ADDI dispatched immediately before this load,
		// producing its base register, issues fused with it.
		if m.cfg.FuseAddiLoad && u.prod[0] != nil {
			p := u.prod[0]
			if p.inst.Op == isa.ADDI && p.seq == u.seq-1 && p.stage == stDispatched {
				u.fusedProd = p
			}
		}
		if m.cfg.Predictor != nil {
			if v, ok := m.cfg.Predictor.Predict(u.pc); ok {
				u.predicted = true
				u.wasPredicted = true
				u.predictedVal = v
				m.emit(obs.KindUopt, obs.TrackUopt, u, 0, "value-predict")
			}
		}
	case isa.ClassStore:
		m.iqCount++
		m.sq = append(m.sq, &sqEntry{u: u})
	default:
		m.iqCount++
	}
	m.event(EvDispatch, u, u.inst.String())
}
