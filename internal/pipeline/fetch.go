package pipeline

import (
	"pandora/internal/isa"
	"pandora/internal/obs"
)

// fetchAndDispatch brings up to FetchWidth µops into the backend per
// cycle: replayed µops first (after a value-misprediction squash), then
// fresh instructions from the control-flow oracle. Decode comes from the
// per-PC template cache built at Run start; fetch only stamps the
// per-dynamic-instance facts into a pooled µop. Direction prediction is
// static BTFN; a mispredicted branch or an indirect jump blocks fetch
// until it resolves, plus the redirect penalty.
func (m *Machine) fetchAndDispatch() {
	if m.fetchBlocked != nil {
		u := m.fetchBlocked
		if u.stage == stDone || u.stage == stRetired {
			if resume := u.doneC + int64(m.cfg.BranchPenalty); resume > m.fetchResumeC {
				m.fetchResumeC = resume
			}
			m.fetchBlocked = nil
			m.unref(u)
		} else {
			return
		}
	}
	if m.cycle < m.fetchResumeC {
		return
	}

	for n := 0; n < m.cfg.FetchWidth; n++ {
		var u *uop
		fromReplay := false
		if len(m.replay) > 0 {
			u = m.replay[0]
			fromReplay = true
		} else if m.specBranch != nil {
			// Wrong-path mode: fetch follows the predicted path of the
			// unresolved mispredicted branch. The oracle is not stepped.
			u = m.newWrongPathUop()
			if u == nil {
				return
			}
		} else {
			if m.oracleHalted || m.haltFetched {
				return
			}
			pc := m.oracle.PC
			if pc < 0 || pc >= int64(len(m.prog)) {
				m.fail("fetch pc %d out of program [0,%d)", pc, len(m.prog))
				return
			}
			// Check resources against the decoded shape before committing
			// to the oracle step.
			if !m.resourcesFor(&m.tmpl[pc]) {
				return
			}
			u = m.newUopFromOracle()
			if u == nil {
				return
			}
		}
		if fromReplay {
			if !m.resourcesFor(u.t) {
				return
			}
			m.replay[0] = nil
			m.replay = m.replay[1:]
		}

		m.dispatch(u)
		if u.mispredicted {
			// A branch re-dispatched from the replay queue must not re-enter
			// wrong-path mode: its correct-path successors are already queued
			// right behind it, and dispatching them during wrong-path fetch
			// would break the speculation discipline (and they would only be
			// re-squashed at resolution). Replayed mispredicts take the
			// legacy redirect stall instead.
			if m.specCanWrongPath(u) && !fromReplay {
				m.beginWrongPath(u)
				continue // same-cycle fetch proceeds down the predicted path
			}
			m.fetchBlocked = u
			u.refs++
			return
		}
		if u.class == isa.ClassHalt {
			m.haltFetched = true
			return
		}
	}
}

// resourcesFor reports whether the backend can accept an instruction of
// this shape right now, counting stall causes.
func (m *Machine) resourcesFor(t *uopTemplate) bool {
	if m.robN >= m.cfg.ROBSize {
		m.stats.RenameStallROB++
		return false
	}
	if t.class != isa.ClassHalt && m.iqCount >= m.cfg.IQSize {
		m.stats.RenameStallIQ++
		return false
	}
	if t.class == isa.ClassLoad && m.lqCount >= m.cfg.LQSize {
		m.stats.RenameStallLQ++
		return false
	}
	if t.class == isa.ClassStore && len(m.sq) >= m.cfg.SQSize {
		m.stats.RenameStallSQ++
		return false
	}
	if t.writesReg && m.prfFree <= 0 {
		m.stats.RenameStallPRF++
		return false
	}
	return true
}

// newUopFromOracle steps the functional oracle one instruction and wraps
// the outcome in a pooled µop carrying the correct-path facts.
func (m *Machine) newUopFromOracle() *uop {
	t := &m.tmpl[m.oracle.PC]
	u := m.allocUop()
	u.t = t
	u.pc = t.pc
	u.inst = t.inst
	u.class = t.class
	u.memWidth = t.memWidth

	if t.class == isa.ClassBranch {
		u.oracleTaken = isa.Taken(t.inst.Op, m.oracle.Regs[t.inst.Rs1], m.oracle.Regs[t.inst.Rs2])
	}

	halted, err := m.oracle.Step(m.prog)
	if err != nil {
		m.freeUop(u)
		m.fail("oracle: %v", err)
		return nil
	}
	if halted {
		m.oracleHalted = true
	}
	u.nextPC = m.oracle.PC
	if t.writesReg {
		u.oracleResult = m.oracle.Regs[t.dest]
	}

	switch t.class {
	case isa.ClassBranch:
		// Direction prediction: static BTFN (decoded once into the
		// template) or the bimodal table when configured.
		u.predictedTaken = m.predictTaken(t)
		// Fault site: a mispredict storm forces correctly predicted
		// conditional branches to predict against the architectural
		// outcome.
		if m.cfg.Faults.MispredictStorm(m.cycle, u.predictedTaken == u.oracleTaken) {
			u.predictedTaken = !u.oracleTaken
		}
		u.mispredicted = u.predictedTaken != u.oracleTaken
	case isa.ClassJump:
		// Direct jumps (JAL) are predicted perfectly; indirect jumps
		// (JALR) always redirect — the toy frontend has no BTB.
		u.mispredicted = t.alwaysRedirect
	}
	return u
}

// dispatch renames u and inserts it into the ROB (and LQ/SQ bookkeeping).
// Resources were checked by the caller.
func (m *Machine) dispatch(u *uop) {
	m.seq++
	u.seq = m.seq
	u.fetchC = m.cycle
	u.stage = stDispatched
	m.stats.Fetched++
	if u.replayed == 0 {
		// Replayed µops re-dispatch from the replay queue without passing
		// through fetch again.
		m.emit(obs.KindFetch, obs.TrackFetch, u, 0, "")
	}
	m.emit(obs.KindRename, obs.TrackRename, u, 0, "")
	if u.mispredicted && u.class == isa.ClassBranch {
		m.stats.BranchMispredicts++
	}

	// Capture producers for the source registers before installing this
	// µop as a producer itself (self-dependencies read the older writer).
	t := u.t
	if t.src1 != isa.X0 {
		if p := m.producer[t.src1]; p != nil {
			u.prod[0] = p
			p.refs++
		}
	}
	if t.src2 != isa.X0 {
		if p := m.producer[t.src2]; p != nil {
			u.prod[1] = p
			p.refs++
		}
	}

	if t.writesReg {
		m.prfFree--
		u.renamed = true
		m.producer[t.dest] = u
	}

	m.robPush(u)
	switch u.class {
	case isa.ClassHalt:
		// HALT needs no execution resources; it is complete on arrival
		// and retires when oldest.
		u.stage = stExecuting
		u.doneC = m.cycle
		m.markExecuting(u)
	case isa.ClassLoad:
		m.markDispatched(u)
		m.iqCount++
		m.lqCount++
		// µ-op fusion: an ADDI dispatched immediately before this load,
		// producing its base register, issues fused with it.
		if m.cfg.FuseAddiLoad && u.prod[0] != nil {
			p := u.prod[0]
			if p.inst.Op == isa.ADDI && p.seq == u.seq-1 && p.stage == stDispatched {
				u.fusedProd = p
			}
		}
		// Wrong-path loads are never value-predicted: a wrong-path µop
		// must not initiate a value squash (its "misprediction" has no
		// architectural meaning) nor enter the replay queue.
		if m.cfg.Predictor != nil && !u.wrongPath {
			if v, ok := m.cfg.Predictor.Predict(u.pc); ok {
				u.predicted = true
				u.wasPredicted = true
				u.predictedVal = v
				m.emit(obs.KindUopt, obs.TrackUopt, u, 0, "value-predict")
			}
		}
	case isa.ClassStore:
		m.markDispatched(u)
		m.iqCount++
		m.sq = append(m.sq, m.allocSQ(u))
	case isa.ClassFence:
		m.markDispatched(u)
		m.iqCount++
		// The fence queue is the issue stage's O(1) stand-in for the old
		// walk-order fencePending flag: memory ops are blocked exactly
		// while an older, non-stuck fence is dispatched or executing.
		m.fenceQ = append(m.fenceQ, u)
		u.refs++
	default:
		m.markDispatched(u)
		m.iqCount++
	}
	m.event(EvDispatch, u, t.str)
}
