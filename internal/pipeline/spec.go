package pipeline

import (
	"pandora/internal/isa"
	"pandora/internal/obs"
	"pandora/internal/taint"
)

// Speculation mechanics (Config.Speculation): branch direction prediction
// (static BTFN or a 2-bit bimodal table), wrong-path fetch with
// squash-on-mispredict, and the store-to-load forwarding predictor with
// replay on misprediction. The two attack substrates this models:
//
//   - Store-to-Leak Forwarding (Schwarz et al., 1905.05725): the
//     forwarding predictor's decision — and whether the forwarded value
//     survives retire verification or forces a replay — is a function of
//     store addresses and data the attacker may not be allowed to read.
//
//   - Speculative-vectorization leakage (Karuppanan & Mirbagher,
//     2302.01131): a load fetched down the wrong path of a predicted
//     bounds check accesses the cache with an out-of-bounds (secret-
//     derived) address before the squash; the squash unwinds the ROB, not
//     the cache. A squashed leak is still a leak.
//
// Everything here is inert when Config.Speculation is nil: the machine
// then behaves bit-identically to the non-speculative pipeline, which is
// the baseline half of every differential check.

// storeAddrLat returns the store AGU latency (Config.StoreAddrLat, with 0
// meaning the legacy single cycle).
func (m *Machine) storeAddrLat() int {
	if m.cfg.StoreAddrLat > 0 {
		return m.cfg.StoreAddrLat
	}
	return 1
}

// predictTaken is the frontend's direction prediction for a conditional
// branch at t.pc: the bimodal counter table when configured, else the
// static BTFN rule decoded into the template.
func (m *Machine) predictTaken(t *uopTemplate) bool {
	if sp := m.cfg.Speculation; sp != nil && sp.Bimodal {
		return m.btable[uint64(t.pc)&uint64(len(m.btable)-1)] >= 2
	}
	return t.predictedTaken
}

// trainBranch updates the bimodal counter toward the architectural
// outcome. Called at retire — once per dynamic instance, in program
// order, never from the wrong path. The stuck-predictor fault site
// freezes training (the table keeps predicting from stale state).
func (m *Machine) trainBranch(u *uop) {
	sp := m.cfg.Speculation
	if sp == nil || !sp.Bimodal {
		return
	}
	if m.cfg.Faults.PredictorStuck(m.cycle) {
		return
	}
	i := uint64(u.pc) & uint64(len(m.btable)-1)
	if u.oracleTaken {
		if m.btable[i] < 3 {
			m.btable[i]++
		}
	} else if m.btable[i] > 0 {
		m.btable[i]--
	}
}

// specCanWrongPath reports whether a just-dispatched mispredicted µop
// starts wrong-path fetch instead of blocking the frontend. Only
// conditional branches qualify: a JALR has no predicted target to follow
// (no BTB), so it keeps the legacy fetchBlocked stall.
func (m *Machine) specCanWrongPath(u *uop) bool {
	sp := m.cfg.Speculation
	return sp != nil && sp.WrongPath && u.class == isa.ClassBranch
}

// beginWrongPath enters wrong-path mode: fetch follows u's predicted
// direction until the branch resolves and squashWrongPath unwinds.
// u stays referenced (like fetchBlocked) because the branch may retire-
// verify only after the squash logic has read it.
func (m *Machine) beginWrongPath(u *uop) {
	m.specBranch = u
	u.refs++
	if u.predictedTaken {
		m.wrongPathPC = u.inst.Imm
	} else {
		m.wrongPathPC = u.pc + 1
	}
	m.wrongPathN = 0
}

// newWrongPathUop fetches one µop down the predicted path. The oracle is
// never stepped — there are no architectural facts to be had on the wrong
// path — so the µop carries template facts only and must never retire.
// Returns nil (fetch stalls until the squash) when the predicted path
// runs off the program, reaches a HALT or an indirect jump, exceeds the
// wrong-path cap, or the backend lacks resources.
func (m *Machine) newWrongPathUop() *uop {
	pc := m.wrongPathPC
	if pc < 0 || pc >= int64(len(m.prog)) {
		return nil
	}
	t := &m.tmpl[pc]
	if t.class == isa.ClassHalt || t.alwaysRedirect {
		return nil
	}
	if m.wrongPathN >= m.cfg.Speculation.maxWrongPath(m.cfg.ROBSize) {
		return nil
	}
	if !m.resourcesFor(t) {
		return nil
	}
	u := m.allocUop()
	u.t = t
	u.pc = t.pc
	u.inst = t.inst
	u.class = t.class
	u.memWidth = t.memWidth
	u.wrongPath = true
	switch t.class {
	case isa.ClassBranch:
		// Nested prediction: wrong-path branches follow their own
		// predicted direction (there is no oracle outcome to mispredict
		// against).
		if m.predictTaken(t) {
			u.predictedTaken = true
			m.wrongPathPC = t.inst.Imm
		} else {
			m.wrongPathPC = pc + 1
		}
	case isa.ClassJump:
		m.wrongPathPC = t.inst.Imm // JAL; JALR was rejected above
	default:
		m.wrongPathPC = pc + 1
	}
	m.wrongPathN++
	m.stats.WrongPathFetched++
	return u
}

// squashWrongPath is mispredict recovery: the resolved branch stays in
// the ROB (it completes and retires normally); everything younger — the
// wrong path — is discarded, never replayed. Fetch resumes on the correct
// path after BranchPenalty: the oracle already sits at the branch's true
// successor, since wrong-path fetch never stepped it.
func (m *Machine) squashWrongPath(br *uop) {
	m.stats.MispredictSquashes++
	m.emit(obs.KindSquash, obs.TrackIssue, br, int64(m.wrongPathN), "mispredict")
	m.squashTail(br.seq+1, m.cfg.BranchPenalty)
	// squashTail clears specBranch only for seq >= minSeq; the initiating
	// branch itself is older, so exit wrong-path mode by hand.
	if m.specBranch == br {
		m.specBranch = nil
		m.wrongPathPC = -1
		m.wrongPathN = 0
		m.unref(br)
	}
}

// stlfConf/stlfBump/stlfReset manage the per-PC 2-bit forwarding
// confidence counters. Training happens on full (non-speculative)
// forwards and on successful retire verification; a mis-forward resets
// the counter, so a replayed load cannot immediately mis-forward again.
func (m *Machine) stlfConf(pc int64) uint8 {
	if m.stlf == nil {
		return 0
	}
	return m.stlf[uint64(pc)&uint64(len(m.stlf)-1)]
}

func (m *Machine) stlfBump(pc int64) {
	if m.stlf == nil || m.cfg.Faults.PredictorStuck(m.cycle) {
		return
	}
	if i := uint64(pc) & uint64(len(m.stlf) - 1); m.stlf[i] < 3 {
		m.stlf[i]++
	}
}

func (m *Machine) stlfReset(pc int64) {
	if m.stlf == nil || m.cfg.Faults.PredictorStuck(m.cycle) {
		return
	}
	m.stlf[uint64(pc)&uint64(len(m.stlf)-1)] = 0
}

// trySpecForward attempts a predictive store-to-load forward for a load
// blocked on an older store with an unresolved address. With high per-PC
// confidence, the load consumes the youngest older store whose data is
// already latched and issues at forwarding latency — before anyone knows
// whether the addresses match. Verification happens at retire
// (verifySpecForward); the forwarded value, its taint and its labels flow
// to consumers in the meantime. Returns true if a load port was consumed.
func (m *Machine) trySpecForward(u *uop) bool {
	sp := m.cfg.Speculation
	if sp == nil || !sp.StLF {
		return false
	}
	if m.stlfConf(u.pc) < 2 {
		return false
	}
	var src *uop
	for _, e := range m.sq {
		if e.u.seq >= u.seq {
			break
		}
		if e.u.stage != stDispatched {
			src = e.u // data latched at issue, address possibly not yet
		}
	}
	if src == nil {
		return false
	}
	m.readSources(u)
	u.addr = u.inst.EffectiveAddr(u.srcVals[0])
	val := src.storeVal
	if u.memWidth < 8 {
		val &= 1<<(8*uint(u.memWidth)) - 1
	}
	m.startExec(u, m.cfg.ForwardLat)
	u.result = isa.LoadExtend(u.inst.Op, val)
	u.specForwarded = true
	u.specData = true
	if src.tainted {
		u.tainted = true
	}
	u.labels |= src.labels
	m.stats.SpecForwards++
	m.emit(obs.KindForward, obs.TrackMem, u, int64(m.cfg.ForwardLat), "speculative")
	// The predictor's decision exposes the forwarded store's data and,
	// through the later verify/replay, the store-load address match.
	m.cfg.Taint.ObserveSpecForward(m.cycle, u.pc, u.labels)
	return true
}

// verifySpecForward checks a speculatively forwarded load at retire, the
// first point where every older store's address is architecturally
// resolved. A match folds the true bytes' labels and taint into the load
// (the speculative copy was correct, but its sources still determine what
// was observable); a mismatch squashes the load and everything younger
// for replay. Returns false when a replay squash happened — the caller
// must stop retiring this cycle.
func (m *Machine) verifySpecForward(u *uop) bool {
	var byteLabels [8]taint.LabelSet
	tainted := false
	val, _, _ := m.forwardScan(u.addr, u.memWidth, u.seq, &byteLabels, &tainted)
	val = isa.LoadExtend(u.inst.Op, val)
	if val != u.result {
		m.stlfReset(u.pc)
		m.stats.SpecForwardReplays++
		m.emit(obs.KindSquash, obs.TrackIssue, u, 0, "spec-forward-replay")
		m.event(EvSquash, u, "spec-forward-replay")
		m.squashTail(u.seq, m.cfg.SquashPenalty)
		return false
	}
	m.stlfBump(u.pc)
	u.specForwarded = false
	u.specData = false
	if tainted {
		u.tainted = true
	}
	if m.cfg.Taint != nil {
		for i := 0; i < u.memWidth; i++ {
			u.labels |= byteLabels[i]
		}
	}
	return true
}

// squashTail removes every µop with seq >= minSeq from the pipeline:
// correct-path victims queue for replay (the value-misprediction path),
// wrong-path victims are discarded outright (they have no architectural
// future). This is the one unwind routine every squash flavor —
// value-misprediction, branch-mispredict, spec-forward replay — goes
// through, so the ROB ring, scheduler bitsets, SQ, fence queue, rename
// map, PRF accounting and pool refcounts all recover in one place.
func (m *Machine) squashTail(minSeq uint64, penalty int) {
	squashed := m.squashScratch[:0]
	for m.robN > 0 {
		tail := m.robAt(m.robN - 1)
		if tail.seq < minSeq {
			break
		}
		m.robPopTail()
		squashed = append(squashed, tail)
	}
	// Pop order is youngest-first; reverse so accounting, events and the
	// replay queue all see program order.
	for i, j := 0, len(squashed)-1; i < j; i, j = i+1, j-1 {
		squashed[i], squashed[j] = squashed[j], squashed[i]
	}
	m.squashScratch = squashed

	for _, v := range squashed {
		m.stats.SquashedUops++
		m.emit(obs.KindSquash, obs.TrackIssue, v, 0, "")
		m.event(EvSquash, v, "")
		if v.t.writesReg {
			if v.wroteback {
				if m.vf.Release(v.result) {
					m.prfFree++
				}
			} else if v.renamed {
				m.prfFree++
			}
		}
		if v.stage == stDispatched {
			m.iqCount--
		}
		if v.class == isa.ClassLoad {
			m.lqCount--
		}
	}

	// Remove squashed stores from the SQ (none can be dequeuing: dequeue
	// requires retirement, and retirement is in-order behind the squash
	// point).
	sq := m.sq[:0]
	for _, e := range m.sq {
		if e.u.seq < minSeq {
			sq = append(sq, e)
			continue
		}
		if e.dequeuing || e.u.stage == stRetired {
			m.fail("squashed a retired/dequeuing store #%d", e.u.seq)
		}
		m.freeSQ(e)
	}
	for i := len(sq); i < len(m.sq); i++ {
		m.sq[i] = nil
	}
	m.sq = sq

	// Squashed fences leave the fence queue (its tail, by program order).
	for n := len(m.fenceQ); n > 0 && m.fenceQ[n-1].seq >= minSeq; n = len(m.fenceQ) {
		f := m.fenceQ[n-1]
		m.fenceQ[n-1] = nil
		m.fenceQ = m.fenceQ[:n-1]
		m.unref(f)
	}

	// Rebuild the rename map from surviving in-flight µops.
	m.producer = [isa.NumRegs]*uop{}
	for i := 0; i < m.robN; i++ {
		v := m.robAt(i)
		if v.t.writesReg && v.stage != stRetired {
			m.producer[v.t.dest] = v
		}
	}

	// Disposition. Two passes: every victim releases its producer
	// references first — a victim may hold the last reference to another
	// victim, and freeing A while B still points at it would corrupt the
	// pool — then wrong-path victims are freed and correct-path victims
	// queue for replay.
	replayable := 0
	for _, v := range squashed {
		if v.wrongPath {
			m.releaseProds(v)
		} else {
			m.resetForReplay(v) // releases prods internally
			replayable++
		}
	}
	if replayable > 0 {
		next := m.replaySwap[:0]
		for _, v := range squashed {
			if !v.wrongPath {
				next = append(next, v)
			}
		}
		next = append(next, m.replay...)
		for i := range m.replay {
			m.replay[i] = nil
		}
		m.replaySwap = m.replay[:0]
		m.replay = next
	}
	for _, v := range squashed {
		if !v.wrongPath {
			continue
		}
		if v.refs != 0 {
			m.fail("pool: squashed wrong-path µop #%d still referenced (refs=%d)", v.seq, v.refs)
			continue
		}
		m.freeUop(v)
	}

	if resume := m.cycle + int64(penalty); resume > m.fetchResumeC {
		m.fetchResumeC = resume
	}
	if m.fetchBlocked != nil && m.fetchBlocked.seq >= minSeq {
		b := m.fetchBlocked
		m.fetchBlocked = nil
		m.unref(b)
	}
	if m.specBranch != nil && m.specBranch.seq >= minSeq {
		b := m.specBranch
		m.specBranch = nil
		m.wrongPathPC = -1
		m.wrongPathN = 0
		m.unref(b)
	}
}

// forwardScan recomputes the bytes a load at (addr, width, seq) observes
// from the store queue and memory, youngest-store-first with first-
// writer-per-byte-wins — the independent algorithm the invariant checker
// diffs against readWithForward's oldest-first overwrite scan, and the
// architectural reference verifySpecForward compares a speculative
// forward against. byteLabels and tainted, when non-nil, collect the
// per-byte shadow labels and RDCYCLE taint of whatever source (store or
// memory) supplied each byte.
func (m *Machine) forwardScan(addr uint64, width int, seq uint64, byteLabels *[8]taint.LabelSet, tainted *bool) (val uint64, full, any bool) {
	var b [8]byte
	var covered [8]bool
	for k := len(m.sq) - 1; k >= 0; k-- {
		e := m.sq[k]
		if e.u.seq >= seq || !e.addrReady {
			continue
		}
		sa, sw := e.u.addr, e.u.memWidth
		for i := 0; i < width; i++ {
			a := addr + uint64(i)
			if !covered[i] && a >= sa && a < sa+uint64(sw) {
				b[i] = byte(e.u.storeVal >> (8 * (a - sa)))
				covered[i] = true
				if byteLabels != nil {
					byteLabels[i] = e.u.labels
				}
				if tainted != nil && e.u.tainted {
					*tainted = true
				}
			}
		}
	}
	st := m.cfg.Taint
	full, any = true, false
	for i := width - 1; i >= 0; i-- {
		if covered[i] {
			any = true
		} else {
			full = false
			a := addr + uint64(i)
			b[i] = m.mem.LoadByte(a)
			if byteLabels != nil && st != nil {
				byteLabels[i] = st.Mem.Get(a)
			}
			if tainted != nil && len(m.taintedMem) > 0 && m.taintedMem[a] {
				*tainted = true
			}
		}
		val = val<<8 | uint64(b[i])
	}
	full = full && any
	return val, full, any
}
