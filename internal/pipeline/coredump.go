package pipeline

import (
	"encoding/json"
	"fmt"

	"pandora/internal/cache"
	"pandora/internal/isa"
)

// This file is the supervision half of the fault layer: a forward-progress
// watchdog that replaces the bare MaxCycles bail-out with a structured
// post-mortem. When the machine stops retiring (livelock), violates an
// invariant, or exhausts its cycle budget, Run returns a StallError whose
// CoreDump records the pipeline state a human needs to diagnose the stall
// — occupancies, the oldest µop and why it is waiting, the store queue,
// the last retired µops, and the cache hierarchy's counters — serialized
// to JSON for artifact capture by campaign runners and CI.

// DefaultWatchdogWindow is the retire-rate window used when
// WatchdogConfig.Window is zero: a clean program on the default core
// retires at least once every few hundred cycles (the worst single-µop
// latency is a divide behind two memory misses), so 20k cycles of silence
// is unambiguous livelock, not a slow tail.
const DefaultWatchdogWindow = 20_000

// DefaultRetireHistory is how many retired µops the dump keeps when
// WatchdogConfig.HistoryDepth is zero.
const DefaultRetireHistory = 8

// WatchdogConfig enables the forward-progress supervisor. When
// Config.Watchdog is non-nil, Run monitors the retire rate: if no µop
// retires for Window cycles the run aborts with a StallError carrying a
// CoreDump, and every other error path (invariant violation, oracle
// mismatch, MaxCycles) is wrapped the same way. With a nil Watchdog the
// legacy error behavior is preserved exactly.
type WatchdogConfig struct {
	// Window is the number of consecutive cycles without a retire before
	// the run is declared livelocked (0 = DefaultWatchdogWindow).
	Window int64
	// HistoryDepth is how many recently retired µops the CoreDump keeps
	// (0 = DefaultRetireHistory).
	HistoryDepth int
}

func (w *WatchdogConfig) window() int64 {
	if w.Window > 0 {
		return w.Window
	}
	return DefaultWatchdogWindow
}

func (w *WatchdogConfig) depth() int {
	if w.HistoryDepth > 0 {
		return w.HistoryDepth
	}
	return DefaultRetireHistory
}

// StallError reasons.
const (
	// ReasonWatchdog: the retire-rate window elapsed with no retirement.
	ReasonWatchdog = "watchdog"
	// ReasonMaxCycles: the run exceeded Config.MaxCycles.
	ReasonMaxCycles = "max-cycles"
	// ReasonPipelineError: a stage reported an error (invariant violation
	// or oracle mismatch); Unwrap returns it.
	ReasonPipelineError = "pipeline-error"
)

// StallError is the supervised failure of a Run: why the supervisor
// intervened, the wrapped stage error if one triggered it, and the
// post-mortem CoreDump.
type StallError struct {
	Reason string
	Cause  error // non-nil for ReasonPipelineError
	Dump   *CoreDump
}

func (e *StallError) Error() string {
	if e.Cause != nil {
		return e.Cause.Error()
	}
	msg := fmt.Sprintf("pipeline: %s at cycle %d", e.Reason, e.Dump.Cycle)
	if e.Reason == ReasonWatchdog {
		msg = fmt.Sprintf("pipeline: watchdog: no µop retired in %d cycles at cycle %d",
			e.Dump.WatchdogWindow, e.Dump.Cycle)
	}
	if o := e.Dump.Oldest; o != nil && o.WaitReason != "" {
		msg += fmt.Sprintf(" (oldest µop #%d pc=%d %s: %s)", o.Seq, o.PC, o.Inst, o.WaitReason)
	}
	return msg
}

func (e *StallError) Unwrap() error { return e.Cause }

// Occupancy is a used/capacity pair for one pipeline structure.
type Occupancy struct {
	Used int `json:"used"`
	Size int `json:"size"`
}

// UopDump is one µop's state in a CoreDump.
type UopDump struct {
	Seq        uint64 `json:"seq"`
	PC         int64  `json:"pc"`
	Inst       string `json:"inst"`
	Class      string `json:"class"`
	Stage      string `json:"stage"`
	FetchCycle int64  `json:"fetch_cycle"`
	DoneCycle  int64  `json:"done_cycle,omitempty"`
	// WaitReason names the resource a non-done µop is stalled on
	// (operand producer, store queue, execution port, fence, dropped
	// wakeup) — the line a post-mortem reads first.
	WaitReason string `json:"wait_reason,omitempty"`
}

// SQDump is one store-queue slot in a CoreDump.
type SQDump struct {
	Seq          uint64 `json:"seq"`
	PC           int64  `json:"pc"`
	Addr         uint64 `json:"addr"`
	Width        int    `json:"width"`
	AddrReady    bool   `json:"addr_ready"`
	Retired      bool   `json:"retired"`
	Dequeuing    bool   `json:"dequeuing"`
	DequeueDoneC int64  `json:"dequeue_done_cycle,omitempty"`
}

// CacheDump snapshots the hierarchy's observable state (the model has no
// MSHRs — fills are latency-only — so the counters and the latched
// invariant error are the whole post-mortem surface).
type CacheDump struct {
	L1               cache.Stats `json:"l1"`
	L2               cache.Stats `json:"l2"`
	DemandAccesses   uint64      `json:"demand_accesses"`
	PrefetchRequests uint64      `json:"prefetch_requests"`
	InvariantError   string      `json:"invariant_error,omitempty"`
}

// CoreDump is the structured post-mortem of a supervised Run failure.
type CoreDump struct {
	Reason         string `json:"reason"`
	Cycle          int64  `json:"cycle"`
	WatchdogWindow int64  `json:"watchdog_window,omitempty"`

	ROB     Occupancy `json:"rob"`
	IQ      Occupancy `json:"iq"`
	LQ      Occupancy `json:"lq"`
	SQ      Occupancy `json:"sq"`
	PRFFree int       `json:"prf_free"`

	FetchBlocked     bool  `json:"fetch_blocked"`
	FetchResumeCycle int64 `json:"fetch_resume_cycle,omitempty"`

	// Oldest is the ROB head — the µop whose failure to retire stalls
	// everything behind it — with its wait reason resolved.
	Oldest *UopDump `json:"oldest,omitempty"`
	// ROBSample is the first few ROB entries in program order.
	ROBSample []UopDump `json:"rob_sample,omitempty"`
	// StoreQueue is the full store queue.
	StoreQueue []SQDump `json:"store_queue,omitempty"`
	// LastRetired is the most recent retirements, oldest first — what the
	// machine was doing before it stopped.
	LastRetired []UopDump `json:"last_retired,omitempty"`

	Cache *CacheDump `json:"cache,omitempty"`
	Stats Stats      `json:"stats"`
}

// JSON renders the dump for artifact files.
func (d *CoreDump) JSON() []byte {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil { // no unmarshalable fields exist; keep the API total
		return []byte(fmt.Sprintf("{%q:%q}", "marshal_error", err.Error()))
	}
	return b
}

func stageName(s uopStage) string {
	switch s {
	case stDispatched:
		return "dispatched"
	case stExecuting:
		return "executing"
	case stDone:
		return "done"
	case stRetired:
		return "retired"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// uopDump renders one µop; withWait resolves the stall reason (only
// meaningful for in-flight µops).
func (m *Machine) uopDump(u *uop, withWait bool) UopDump {
	d := UopDump{
		Seq:        u.seq,
		PC:         u.pc,
		Inst:       u.inst.String(),
		Class:      u.class.String(),
		Stage:      stageName(u.stage),
		FetchCycle: u.fetchC,
	}
	if u.stage == stExecuting || u.stage == stDone || u.stage == stRetired {
		d.DoneCycle = u.doneC
	}
	if withWait {
		d.WaitReason = m.waitReason(u)
	}
	return d
}

// waitReason explains why u has not retired yet, naming the stalled
// resource: the heart of the livelock post-mortem.
func (m *Machine) waitReason(u *uop) string {
	switch u.stage {
	case stExecuting:
		return fmt.Sprintf("executing, completes at cycle %d", u.doneC)
	case stDone:
		return "complete, waiting for in-order retire"
	case stRetired:
		return ""
	}
	// Dispatched and never issued — find out what issue is waiting on.
	if u.stuck {
		return "issue wakeup dropped (fault injection): permanently unscheduled"
	}
	if u.class == isa.ClassFence {
		if len(m.sq) > 0 {
			older, younger := 0, 0
			for _, e := range m.sq {
				if e.u.seq > u.seq {
					younger++
				} else {
					older++
				}
			}
			return fmt.Sprintf("fence waiting on store queue: %d older / %d younger store(s) occupy slots (head store #%d pc=%d)",
				older, younger, m.sq[0].u.seq, m.sq[0].u.pc)
		}
		if m.robN > 0 && m.robBuf[m.robHead] != u {
			return "fence waiting to reach ROB head"
		}
		return "fence ready to issue"
	}
	for i := 0; i < 2; i++ {
		if !u.srcReady(i, m.cycle) {
			p := u.prod[i]
			return fmt.Sprintf("waiting for operand %d from µop #%d (pc=%d, %s)",
				i, p.seq, p.pc, stageName(p.stage))
		}
	}
	// An uncompleted older fence blocks every memory operation.
	if u.class == isa.ClassLoad || u.class == isa.ClassStore {
		for i := 0; i < m.robN; i++ {
			v := m.robAt(i)
			if v.seq >= u.seq {
				break
			}
			if v.class == isa.ClassFence && v.stage != stDone && v.stage != stRetired {
				return fmt.Sprintf("waiting for fence #%d (pc=%d) to complete", v.seq, v.pc)
			}
		}
	}
	if u.class == isa.ClassLoad && !m.olderStoresResolved(u.seq) {
		return "memory disambiguation: waiting for an older store's address"
	}
	return "ready, waiting for an execution port"
}

// coreDump snapshots the machine for a supervised failure.
func (m *Machine) coreDump(reason string) *CoreDump {
	d := &CoreDump{
		Reason:           reason,
		Cycle:            m.cycle,
		ROB:              Occupancy{Used: m.robN, Size: m.cfg.ROBSize},
		IQ:               Occupancy{Used: m.iqCount, Size: m.cfg.IQSize},
		LQ:               Occupancy{Used: m.lqCount, Size: m.cfg.LQSize},
		SQ:               Occupancy{Used: len(m.sq), Size: m.cfg.SQSize},
		PRFFree:          m.prfFree,
		FetchBlocked:     m.fetchBlocked != nil,
		FetchResumeCycle: m.fetchResumeC,
		Stats:            m.stats,
	}
	if wd := m.cfg.Watchdog; wd != nil {
		d.WatchdogWindow = wd.window()
	}
	if m.robN > 0 {
		head := m.uopDump(m.robBuf[m.robHead], true)
		d.Oldest = &head
		for i := 0; i < m.robN && i < DefaultRetireHistory; i++ {
			d.ROBSample = append(d.ROBSample, m.uopDump(m.robAt(i), true))
		}
	}
	for _, e := range m.sq {
		d.StoreQueue = append(d.StoreQueue, SQDump{
			Seq:          e.u.seq,
			PC:           e.u.pc,
			Addr:         e.u.addr,
			Width:        e.u.memWidth,
			AddrReady:    e.addrReady,
			Retired:      e.u.stage == stRetired,
			Dequeuing:    e.dequeuing,
			DequeueDoneC: e.dequeueDoneC,
		})
	}
	d.LastRetired = append([]UopDump(nil), m.lastRetired...)
	if m.hier != nil {
		cd := &CacheDump{
			L1:               m.hier.L1.Stats(),
			L2:               m.hier.L2.Stats(),
			DemandAccesses:   m.hier.DemandAccesses(),
			PrefetchRequests: m.hier.PrefetchRequests(),
		}
		if err := m.hier.InvariantError(); err != nil {
			cd.InvariantError = err.Error()
		}
		d.Cache = cd
	}
	return d
}
