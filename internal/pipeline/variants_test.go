package pipeline

import (
	"testing"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/uopt"
)

// --- SSLSQCompare silent-store scheme ---

func lsqMachine(t *testing.T) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SilentStores = &SilentStoreConfig{Scheme: SSLSQCompare}
	mm := mem.New()
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	m, err := New(cfg, mm, h)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLSQCompareSilentPair(t *testing.T) {
	m := lsqMachine(t)
	// Two same-value stores to the same address in flight together: the
	// second is squashed by the LSQ comparison.
	run(t, m, `
		addi x1, x0, 0x800
		addi x2, x0, 7
		addi x9, x0, 1000
		div  x3, x9, x2      # delay retirement so both stores overlap
		sd   x2, 0(x1)
		sd   x2, 0(x1)
		halt
	`)
	if m.Stats().SilentStores != 1 {
		t.Errorf("SilentStores = %d, want 1 (stats %+v)", m.Stats().SilentStores, m.Stats())
	}
	if m.Stats().SSLoadsIssued != 0 {
		t.Errorf("LSQ scheme must not issue SS-Loads: %d", m.Stats().SSLoadsIssued)
	}
	if got := m.Memory().Read(0x800, 8); got != 7 {
		t.Errorf("mem = %d", got)
	}
}

func TestLSQCompareMismatchPerforms(t *testing.T) {
	m := lsqMachine(t)
	run(t, m, `
		addi x1, x0, 0x800
		addi x2, x0, 7
		addi x4, x0, 8
		addi x9, x0, 1000
		div  x3, x9, x2
		sd   x2, 0(x1)
		sd   x4, 0(x1)       # different value: must perform
		halt
	`)
	if m.Stats().SilentStores != 0 {
		t.Errorf("mismatched pair marked silent: %+v", m.Stats())
	}
	if m.Stats().NonSilentChecks != 1 {
		t.Errorf("NonSilentChecks = %d, want 1", m.Stats().NonSilentChecks)
	}
	if got := m.Memory().Read(0x800, 8); got != 8 {
		t.Errorf("mem = %d, want 8", got)
	}
}

// TestLSQCompareMissesMemoryMatch is the scheme's key limitation (and
// what distinguishes its MLD): a store matching *memory* but with no
// older in-flight store to the same address is not a candidate.
func TestLSQCompareMissesMemoryMatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SilentStores = &SilentStoreConfig{Scheme: SSLSQCompare}
	mm := mem.New()
	mm.Write(0x800, 8, 7)
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	h.Access(0x800, 7, false)
	m, err := New(cfg, mm, h)
	if err != nil {
		t.Fatal(err)
	}
	run(t, m, caseASrc) // stores 7 over 7, but no in-flight predecessor
	if m.Stats().SilentStores != 0 {
		t.Errorf("LSQ scheme detected a memory-only match: %+v", m.Stats())
	}
}

// --- Stride value predictor ---

func TestStridePredictorInPipeline(t *testing.T) {
	// A pointer chase over a regular linked list: each load's value is
	// the next load's address, so the chain serializes on the cache-miss
	// latency — unless the predictor breaks the dependence. The node
	// addresses stride by 256 bytes: last-value prediction always fails,
	// stride prediction covers every in-flight iteration.
	const (
		listBase = uint64(0x100000)
		nodeStep = uint64(256)
		nodes    = 100
	)
	src := `
		addi x1, x0, 0x100000
		addi x9, x0, 100
	loop:
		ld   x1, 0(x1)        # pointer chase
		addi x9, x9, -1
		bne  x9, x0, loop
		halt
	`
	runWith := func(pred uopt.ValuePredictor) (int64, error) {
		cfg := DefaultConfig()
		cfg.Predictor = pred
		mm := mem.New()
		for n := uint64(0); n <= nodes; n++ {
			mm.Write(listBase+n*nodeStep, 8, listBase+(n+1)*nodeStep)
		}
		m, err := New(cfg, mm, cache.MustNewHierarchy(cache.DefaultHierConfig()))
		if err != nil {
			return 0, err
		}
		res, err := m.Run(asm.MustAssemble(src))
		if err != nil {
			return 0, err
		}
		return res.Cycles, nil
	}

	noPred, err := runWith(nil)
	if err != nil {
		t.Fatal(err)
	}
	lastVal := uopt.NewPredictor(2)
	lvCycles, err := runWith(lastVal)
	if err != nil {
		t.Fatal(err)
	}
	stride := uopt.NewStridePredictor(2)
	stCycles, err := runWith(stride)
	if err != nil {
		t.Fatal(err)
	}
	if stride.Correct == 0 {
		t.Fatalf("stride predictor never predicted correctly: %+v", stride)
	}
	if stride.Mispredictions > stride.Correct {
		t.Errorf("stride predictor mostly wrong: %+v", stride)
	}
	if lastVal.Correct > 0 {
		t.Errorf("last-value predictor should fail on a striding value: %+v", lastVal)
	}
	// Stride prediction must substantially beat both (the chain is ~100
	// serialized misses without it; prediction starts once the predictor
	// is confident AND dispatch has caught up to training — about one
	// ROB's worth of cold-start iterations).
	if stCycles*2 >= noPred {
		t.Errorf("stride prediction did not break the chase: stride=%d baseline=%d", stCycles, noPred)
	}
	if stCycles >= lvCycles {
		t.Errorf("stride should beat last-value: stride=%d last-value=%d", stCycles, lvCycles)
	}
	t.Logf("pointer chase: baseline=%d last-value=%d stride=%d cycles", noPred, lvCycles, stCycles)
}

func TestStridePredictorUnit(t *testing.T) {
	p := uopt.NewStridePredictor(2)
	// Feed 10, 20, 30: stride 10 confirmed after three observations.
	p.Resolve(1, 10, false, 0)
	p.Resolve(1, 20, false, 0)
	if _, ok := p.Predict(1); ok {
		t.Error("prediction before threshold")
	}
	p.Resolve(1, 30, false, 0)
	p.Resolve(1, 40, false, 0)
	v, ok := p.Predict(1)
	if !ok || v != 50 {
		t.Errorf("Predict = %d, %v; want 50", v, ok)
	}
	if mis := p.Resolve(1, 50, true, v); mis {
		t.Error("correct prediction flagged as mispredict")
	}
	// Break the stride: confidence resets.
	if mis := p.Resolve(1, 99, true, 60); !mis {
		t.Error("wrong prediction not flagged")
	}
	if _, ok := p.Predict(1); ok {
		t.Error("prediction survived a stride break")
	}
}

// --- Strength reduction (Section VI-B) ---

func TestStrengthReductionLeak(t *testing.T) {
	src := func(secret int64) string {
		return `
		addi x1, x0, ` + itoa(secret) + `
		addi x2, x0, 12345
		addi x5, x0, 48
	loop:
		mul  x3, x2, x1
		mul  x3, x3, x1
		addi x5, x5, -1
		bne  x5, x0, loop
		halt
	`
	}
	runWith := func(simplify bool, secret int64) int64 {
		cfg := DefaultConfig()
		if simplify {
			cfg.Simplifier = &uopt.Simplifier{StrengthReduction: true}
		}
		m := newTestMachine(t, cfg)
		res, err := m.Run(asm.MustAssemble(src(secret)))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	// Power-of-two vs non-power-of-two secret multiplier.
	pow2 := runWith(true, 64)
	odd := runWith(true, 65)
	if pow2 >= odd {
		t.Errorf("strength reduction did not speed up the power-of-two operand: %d vs %d", pow2, odd)
	}
	// Baseline: no difference.
	if a, b := runWith(false, 64), runWith(false, 65); a != b {
		t.Errorf("baseline leaks: %d vs %d", a, b)
	}
}

func TestStrengthReductionDiv(t *testing.T) {
	s := &uopt.Simplifier{StrengthReduction: true}
	if lat, ok := s.SimplifiedLatency(uopt.KindDiv, 1000, 8, 20); !ok || lat != 1 {
		t.Errorf("div by 8 not reduced: %d %v", lat, ok)
	}
	if _, ok := s.SimplifiedLatency(uopt.KindDiv, 1000, 7, 20); ok {
		t.Error("div by 7 reduced")
	}
	if _, ok := s.SimplifiedLatency(uopt.KindDiv, 8, 0, 20); ok {
		t.Error("div by zero treated as power of two")
	}
}

// --- SMT co-tenant packing attack (Section IV-B3) ---

// TestCoTenantPackingAttack: the sibling thread sets its operands narrow;
// the victim's runtime then depends precisely on whether the victim's own
// operands are narrow — with a wide-operand sibling, no signal.
func TestCoTenantPackingAttack(t *testing.T) {
	victim := func(secret int64) string {
		return `
		addi x1, x0, ` + itoa(secret) + `
		addi x2, x0, 7
		addi x9, x0, 48
	loop:
		add  x3, x1, x2
		add  x4, x1, x2
		addi x9, x9, -1
		bne  x9, x0, loop
		halt
	`
	}
	runWith := func(coA, coB uint64, secret int64) int64 {
		cfg := DefaultConfig()
		cfg.ALUPorts = 2
		cfg.Packer = uopt.NewPacker()
		cfg.CoTenant = &CoTenantConfig{OperandA: coA, OperandB: coB}
		m := newTestMachine(t, cfg)
		res, err := m.Run(asm.MustAssemble(victim(secret)))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}

	// Attacker sets narrow operands: victim secret width is observable.
	narrowN := runWith(3, 9, 12)
	narrowW := runWith(3, 9, 1<<20)
	narrowGap := narrowW - narrowN
	if narrowGap <= 0 {
		t.Errorf("narrow-operand sibling sees no victim signal: %d vs %d", narrowN, narrowW)
	}
	// Attacker sets wide operands: sibling packing never fires. The
	// victim's own intra-thread packing still leaks (the passive PC
	// channel), but the sibling adds nothing to it.
	wideN := runWith(1<<30, 9, 12)
	wideW := runWith(1<<30, 9, 1<<20)
	wideGap := wideW - wideN
	if narrowGap <= wideGap {
		t.Errorf("active sibling packing did not amplify the signal: narrow-sibling gap %d, wide-sibling gap %d",
			narrowGap, wideGap)
	}
	// The sibling's port pressure is real: with it present the victim is
	// slower than running alone.
	cfg := DefaultConfig()
	cfg.ALUPorts = 2
	m := newTestMachine(t, cfg)
	res, err := m.Run(asm.MustAssemble(victim(12)))
	if err != nil {
		t.Fatal(err)
	}
	if narrowW <= res.Cycles {
		t.Errorf("co-tenant costs nothing: with=%d alone=%d", narrowW, res.Cycles)
	}
}

// --- In-order SQ dequeue ablation (DESIGN.md key design choice #1) ---

// TestSQDequeueAblation: the amplification gadget's end-to-end signal
// depends on in-order SQ dequeue (head-of-line blocking). With
// out-of-order dequeue, trailing stores slip past the blocked target and
// the refill hides under independent work — the gap collapses.
func TestSQDequeueAblation(t *testing.T) {
	kernel := func(storeVal int64) string {
		return `
			addi x1, x0, 0x4040   # &delay cell
			addi x3, x0, 0x800    # &target
			addi x6, x0, ` + itoa(storeVal) + `
			ld   x4, 0(x1)        # delay gadget
			ld   x5, 0(x4)        # flush gadget (8 lines of the L2 set)
			ld   x7, 0x4000(x4)
			ld   x8, 0x8000(x4)
			ld   x9, 0xc000(x4)
			ld   x10, 0x10000(x4)
			ld   x11, 0x14000(x4)
			ld   x12, 0x18000(x4)
			ld   x13, 0x1c000(x4)
			sd   x6, 0(x3)        # target store
			sd   x6, 64(x3)       # trailing stores to warm, distinct lines
			sd   x6, 128(x3)
			sd   x6, 192(x3)
			sd   x6, 256(x3)
			sd   x6, 320(x3)
			addi x20, x0, 3       # long independent work after the store burst
			addi x21, x0, 7
			addi x22, x0, 40
		work:
			mul  x21, x21, x20
			mul  x21, x21, x20
			addi x22, x22, -1
			bne  x22, x0, work
			halt
		`
	}
	run := func(ooo bool, storeVal int64) int64 {
		cfg := DefaultConfig()
		cfg.SilentStores = &SilentStoreConfig{}
		cfg.SQSize = 5
		cfg.SQOutOfOrderDequeue = ooo
		hcfg := cache.DefaultHierConfig()
		hcfg.L1.Ways = 1
		mm := mem.New()
		mm.Write(0x800, 8, 7)
		mm.Write(0x4040, 8, 0x800+0x4000)
		h := cache.MustNewHierarchy(hcfg)
		h.Access(0x800, 7, false)
		for n := 1; n <= 5; n++ {
			a := uint64(0x800 + n*64)
			mm.Write(a, 8, int64ToU(storeVal))
			h.Access(a, 0, false) // trailing lines warm
		}
		m := MustNew(cfg, mm, h)
		res, err := m.Run(asm.MustAssemble(kernel(storeVal)))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}

	inOrderGap := run(false, 8) - run(false, 7)
	oooGap := run(true, 8) - run(true, 7)
	if inOrderGap < 50 {
		t.Errorf("in-order dequeue gap = %d, want the amplified signal", inOrderGap)
	}
	if oooGap*4 > inOrderGap {
		t.Errorf("out-of-order dequeue did not collapse the signal: ooo=%d in-order=%d",
			oooGap, inOrderGap)
	}
	t.Logf("amplification gap: in-order dequeue %d cycles, out-of-order %d cycles", inOrderGap, oooGap)
}

func int64ToU(v int64) uint64 { return uint64(v) }
