package pipeline

import (
	"fmt"

	"pandora/internal/cache"
	"pandora/internal/emu"
	"pandora/internal/faults"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/obs"
	"pandora/internal/taint"
	"pandora/internal/uopt"
)

// Machine is one out-of-order core attached to a cache hierarchy and data
// memory. Create with New, run one program with Run. A Machine is
// single-use per Run call but may Run multiple programs sequentially;
// microarchitectural state (caches, predictors, reuse buffers) persists
// across runs, which is exactly what cross-program attacks rely on.
type Machine struct {
	cfg  Config
	mem  *mem.Memory
	hier *cache.Hierarchy

	prog         isa.Program
	oracle       *emu.Machine
	oracleHalted bool

	cycle int64
	seq   uint64

	// lastRetiredSeq is the most recently retired µop's sequence number,
	// for the in-order-retire invariant check.
	lastRetiredSeq uint64

	// The ROB is a power-of-two ring (see ring.go): robBuf[robHead] is the
	// oldest in-flight µop, robN the occupancy. dispW/execW are the
	// per-slot scheduler bitsets issue and complete iterate instead of
	// walking the whole buffer.
	robBuf  []*uop
	robHead int
	robN    int
	dispW   []uint64
	execW   []uint64

	sq      []*sqEntry
	lqCount int
	iqCount int

	// fenceQ holds dispatched-or-executing FENCEs in program order — the
	// O(1) stand-in for the old walk-order fencePending scan (entries are
	// refcounted, drained at issue, truncated at squash).
	fenceQ []*uop

	// tmpl is the per-PC decode cache, rebuilt by prepareProgram at the
	// top of every Run (see template.go).
	tmpl []uopTemplate

	// Free lists and per-cycle scratch buffers (see pool.go). All reuse
	// their backing arrays so the steady-state cycle loop allocates
	// nothing.
	uopPool []*uop
	sqPool  []*sqEntry
	// Total objects ever handed out by the pools. After a clean run every
	// object is back in its free list, so len(pool) == allocated — the
	// leak-detection invariant alloc_test pins across abort paths.
	uopAllocated    int
	sqAllocated     int
	issueScratch    []*uop
	completeScratch []*uop
	squashScratch   []*uop
	aluScratch      []aluSlot
	replaySwap      []*uop

	producer       [isa.NumRegs]*uop
	committed      [isa.NumRegs]uint64
	committedTaint [isa.NumRegs]bool

	prfFree int
	vf      *uopt.ValueFile

	fetchBlocked *uop  // unresolved mispredicted branch / indirect jump
	fetchResumeC int64 // earliest cycle fetch may proceed
	replay       []*uop

	// Speculation state (Config.Speculation; see spec.go). specBranch is
	// the outstanding mispredicted branch fetch is running wrong-path
	// behind (counted reference, like fetchBlocked); wrongPathPC is the
	// next predicted-path fetch PC (-1 when wrong-path fetch has run off
	// the program); wrongPathN counts wrong-path µops in flight. btable
	// holds the bimodal 2-bit direction counters, stlf the per-PC
	// forwarding-confidence counters — both persist across Runs, as real
	// predictor state does.
	specBranch  *uop
	wrongPathPC int64
	wrongPathN  int
	btable      []uint8
	stlf        []uint8

	haltFetched bool
	haltRetired bool

	taintedMem map[uint64]bool // byte-granular RDCYCLE-derived memory

	// lastRetired is the CoreDump retirement history, maintained only
	// when a watchdog is configured (bounded ring, oldest first).
	lastRetired []UopDump

	// stats holds the raw counters; only this package increments them.
	// External readers go through Stats() or the Metrics() registry.
	stats Stats
	// probe is Config.Probe, cached for the per-event nil check.
	probe obs.Probe
	// reg names every counter (pipeline, cache hierarchy); Run diffs it
	// via the three reusable scratch snapshots below instead of copying
	// stats fields by hand.
	reg                       *obs.Registry
	runStart, runEnd, runDiff obs.Snapshot

	Events []Event

	err error
}

// Stats returns a copy of the accumulated counters — the compatibility
// getter for code (diffcheck, the fault campaign) that compares whole
// Stats values; new code prefers the named Metrics() registry.
func (m *Machine) Stats() Stats { return m.stats }

// Metrics returns the machine's counter registry: every pipeline.* field
// plus the attached hierarchy's l1.*/l2.*/hier.* counters, behind
// Snapshot/Delta.
func (m *Machine) Metrics() *obs.Registry { return m.reg }

// Cycle returns the current simulated cycle (monotone across Runs).
func (m *Machine) Cycle() int64 { return m.cycle }

// registerMetrics names every counter in the registry. The hot path
// keeps its raw field increments; the registry reads them at snapshot
// time through these closures.
func (m *Machine) registerMetrics() {
	r := obs.NewRegistry()
	r.CounterInt64("pipeline.cycles", &m.stats.Cycles)
	r.CounterUint64("pipeline.retired", &m.stats.Retired)
	r.CounterUint64("pipeline.fetched", &m.stats.Fetched)
	r.CounterUint64("pipeline.branch_mispredicts", &m.stats.BranchMispredicts)
	r.CounterUint64("pipeline.value_squashes", &m.stats.ValueSquashes)
	r.CounterUint64("pipeline.squashed_uops", &m.stats.SquashedUops)
	r.CounterUint64("pipeline.wrong_path_fetched", &m.stats.WrongPathFetched)
	r.CounterUint64("pipeline.mispredict_squashes", &m.stats.MispredictSquashes)
	r.CounterUint64("pipeline.spec_forwards", &m.stats.SpecForwards)
	r.CounterUint64("pipeline.spec_forward_replays", &m.stats.SpecForwardReplays)
	r.CounterUint64("pipeline.loads_forwarded", &m.stats.LoadsForwarded)
	r.CounterUint64("pipeline.loads_from_cache", &m.stats.LoadsFromCache)
	r.CounterUint64("pipeline.silent_stores", &m.stats.SilentStores)
	r.CounterUint64("pipeline.non_silent_checks", &m.stats.NonSilentChecks)
	r.CounterUint64("pipeline.ssload_no_port", &m.stats.SSLoadNoPort)
	r.CounterUint64("pipeline.ssload_late", &m.stats.SSLoadLate)
	r.CounterUint64("pipeline.ssloads_issued", &m.stats.SSLoadsIssued)
	r.CounterUint64("pipeline.reuse_hits", &m.stats.ReuseHits)
	r.CounterUint64("pipeline.packed", &m.stats.Packed)
	r.CounterUint64("pipeline.rename_stall.prf", &m.stats.RenameStallPRF)
	r.CounterUint64("pipeline.rename_stall.sq", &m.stats.RenameStallSQ)
	r.CounterUint64("pipeline.rename_stall.rob", &m.stats.RenameStallROB)
	r.CounterUint64("pipeline.rename_stall.iq", &m.stats.RenameStallIQ)
	r.CounterUint64("pipeline.rename_stall.lq", &m.stats.RenameStallLQ)
	m.hier.RegisterMetrics(r)
	m.reg = r
}

// emit publishes one probe event for µop u (nil for machine-level
// events). The nil-probe path is a single branch and allocation-free.
func (m *Machine) emit(k obs.Kind, tr obs.Track, u *uop, arg int64, detail string) {
	if m.probe == nil {
		return
	}
	ev := obs.Event{Cycle: m.cycle, Kind: k, Track: tr, Arg: arg, Detail: detail, PC: -1}
	if u != nil {
		ev.Seq = u.seq
		ev.PC = u.pc
		ev.Addr = u.addr
	}
	m.probe.Emit(ev)
}

// Event is one entry of the µop event log (Figure 4 timelines).
type Event struct {
	Cycle  int64
	Seq    uint64
	PC     int64
	Kind   EventKind
	Detail string
}

// EventKind labels pipeline events.
type EventKind string

// Event kinds recorded when Config.RecordEvents is set.
const (
	EvDispatch      EventKind = "dispatch"
	EvIssue         EventKind = "issue"
	EvAddrResolved  EventKind = "addr-resolved"
	EvSSLoadIssue   EventKind = "ssload-issue"
	EvSSLoadNoPort  EventKind = "ssload-no-port"
	EvSSLoadReturn  EventKind = "ssload-return"
	EvSSLoadLate    EventKind = "ssload-late"
	EvSQHead        EventKind = "reaches-sq-head"
	EvFillRequest   EventKind = "fill-request"
	EvStoreToCache  EventKind = "store-sent-to-cache"
	EvMemResponse   EventKind = "response-from-mem"
	EvDequeue       EventKind = "sq-dequeue"
	EvDequeueSilent EventKind = "sq-dequeue-silent"
	EvRetire        EventKind = "retire"
	EvSquash        EventKind = "squash"
)

func (e Event) String() string {
	s := fmt.Sprintf("cycle %5d  #%-4d pc=%-4d %-20s", e.Cycle, e.Seq, e.PC, e.Kind)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// New builds a machine. mem and hier must be non-nil; the caller owns both
// and may pre-populate memory and cache state (preconditioning).
func New(cfg Config, memory *mem.Memory, hier *cache.Hierarchy) (*Machine, error) {
	if memory == nil {
		return nil, fmt.Errorf("pipeline: nil memory")
	}
	if err := cfg.validate(hier); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:        cfg,
		mem:        memory,
		hier:       hier,
		probe:      cfg.Probe,
		taintedMem: make(map[uint64]bool),
	}
	m.registerMetrics()
	m.initROB()
	if sp := cfg.Speculation; sp != nil {
		m.btable = make([]uint8, 1<<uint(sp.bimodalBits()))
		m.stlf = make([]uint8, 1<<uint(sp.stlfBits()))
		m.wrongPathPC = -1
	}
	if cfg.Probe != nil {
		// One probe observes everything attached to this core: both cache
		// levels and the prefetch path (stamped with the core's clock),
		// taint leak events, and fault firings.
		hier.SetProbe(cfg.Probe, m.Cycle)
		if cfg.Taint != nil {
			cfg.Taint.Probe = cfg.Probe
		}
		if cfg.Faults != nil {
			cfg.Faults.SetProbe(cfg.Probe)
		}
	}
	m.vf = uopt.NewValueFile(cfg.RFC)
	// Seed the physical register file: the 32 architectural registers hold
	// value 0 at reset. Under RFC they collapse onto a shared zero
	// register, freeing the rest — a real effect of value-sharing renames.
	m.prfFree = cfg.PhysRegs
	for i := 0; i < isa.NumRegs; i++ {
		m.prfFree--
		if m.vf.Produce(0) {
			m.prfFree++
		}
	}
	return m, nil
}

// MustNew is New that panics on error.
func MustNew(cfg Config, memory *mem.Memory, hier *cache.Hierarchy) *Machine {
	m, err := New(cfg, memory, hier)
	if err != nil {
		panic(err)
	}
	return m
}

// Hierarchy returns the attached cache hierarchy.
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Memory returns the attached data memory.
func (m *Machine) Memory() *mem.Memory { return m.mem }

// Reg returns the committed architectural value of r after a Run.
func (m *Machine) Reg(r isa.Reg) uint64 { return m.committed[r] }

// Result summarizes one Run.
type Result struct {
	Cycles  int64
	Retired uint64
	Stats   Stats
}

// Run executes prog to completion (HALT retired and store queue drained)
// and returns the cycle count. Architectural registers start at zero and
// the entry point is instruction 0. Timing state accumulated by earlier
// runs (cache contents, predictor state) is preserved.
func (m *Machine) Run(prog isa.Program) (Result, error) {
	if len(prog) == 0 {
		return Result{}, fmt.Errorf("pipeline: empty program")
	}
	m.prog = prog
	// The oracle runs on a copy-on-write image of data memory. Reuse the
	// oracle machine and its clone across runs — sweep-style attacks call
	// Run thousands of times, and re-cloning into the existing image is
	// allocation-free in steady state.
	if m.oracle == nil {
		m.oracle = emu.New(m.mem.Clone())
	} else {
		m.oracle.Reset()
		m.mem.CloneInto(m.oracle.Mem)
	}
	m.oracleHalted = false
	m.haltFetched = false
	m.haltRetired = false
	m.reclaimInFlight()
	m.prepareProgram(prog)
	m.lqCount, m.iqCount = 0, 0
	m.fetchResumeC = 0
	m.producer = [isa.NumRegs]*uop{}
	// Architectural registers reset to zero between runs, with PRF
	// accounting for the overwritten values.
	for r := 1; r < isa.NumRegs; r++ {
		if m.committed[r] != 0 {
			if m.vf.Release(m.committed[r]) {
				m.prfFree++
			}
			m.prfFree--
			if m.vf.Produce(0) {
				m.prfFree++
			}
			m.committed[r] = 0
		}
		m.committedTaint[r] = false
	}
	if m.cfg.Taint != nil {
		// Architectural shadow resets with the architectural registers;
		// shadow memory and the predictor-table shadow persist like their
		// counterparts.
		m.cfg.Taint.ResetRun()
	}
	m.err = nil

	startCycle := m.cycle
	// Per-run deltas come from the registry: snapshot every counter here,
	// diff at the end. The scratch snapshots are reused across Runs, so
	// steady-state sweeps allocate nothing for this.
	m.reg.SnapshotInto(&m.runStart)
	m.emit(obs.KindRunStart, obs.TrackRetire, nil, 0, "")
	wd := m.cfg.Watchdog
	wdMark := m.stats.Retired
	var wdNext int64
	if wd != nil {
		m.lastRetired = m.lastRetired[:0]
		wdNext = m.cycle + wd.window()
	}
	// The cancellation checkpoint keeps its flag in a local so the nil
	// path is one register compare per cycle, and the armed path one
	// masked compare plus an atomic load every cancelCheckInterval
	// cycles — both allocation-free.
	cancel := m.cfg.Cancel
	for {
		m.cycle++
		if cancel != nil && m.cycle&(cancelCheckInterval-1) == 0 && cancel.Cancelled() {
			return m.finishRun(startCycle), ErrCancelled
		}
		if m.cfg.Faults != nil {
			m.faultTick()
		}
		m.retire()
		m.complete()
		m.sqTick()
		m.issue()
		m.fetchAndDispatch()
		if m.cfg.CheckInvariants {
			m.checkInvariants()
		}
		if m.err != nil {
			return m.finishRun(startCycle), m.supervised(ReasonPipelineError, m.err)
		}
		if m.haltRetired && len(m.sq) == 0 {
			break
		}
		if wd != nil {
			if m.stats.Retired != wdMark {
				wdMark = m.stats.Retired
				wdNext = m.cycle + wd.window()
			} else if m.cycle >= wdNext {
				return m.finishRun(startCycle), &StallError{Reason: ReasonWatchdog, Dump: m.coreDump(ReasonWatchdog)}
			}
		}
		if m.cycle-startCycle > m.cfg.MaxCycles {
			err := fmt.Errorf("pipeline: exceeded MaxCycles=%d (livelock?)", m.cfg.MaxCycles)
			return m.finishRun(startCycle), m.supervised(ReasonMaxCycles, err)
		}
	}
	return m.finishRun(startCycle), nil
}

// finishRun closes out one Run: fold the elapsed cycles into the stats,
// diff the counter registry, and build the Result. Error paths return the
// partial Result alongside the error: cycle count and stats are exactly
// what a post-mortem needs, and discarding them on MaxCycles was hiding
// how far a livelocked run got. (A method, not a closure in Run — the
// closure captured the receiver and allocated once per Run.)
func (m *Machine) finishRun(startCycle int64) Result {
	m.stats.Cycles += m.cycle - startCycle
	m.reg.SnapshotInto(&m.runEnd)
	m.runEnd.DeltaInto(m.runStart, &m.runDiff)
	elapsed := m.runDiff.GetInt64("pipeline.cycles")
	m.emit(obs.KindRunEnd, obs.TrackRetire, nil, elapsed, "")
	return Result{Cycles: elapsed, Retired: m.runDiff.Get("pipeline.retired"), Stats: m.stats}
}

// supervised wraps an error into a StallError with a CoreDump when the
// watchdog supervisor is configured; with no watchdog the legacy error is
// returned untouched (same messages, no dump cost).
func (m *Machine) supervised(reason string, err error) error {
	if m.cfg.Watchdog == nil {
		return err
	}
	return &StallError{Reason: reason, Cause: err, Dump: m.coreDump(reason)}
}

// faultTick applies cycle-granular cache-state faults (tag and
// replacement-metadata corruption). Value and scheduling faults hook the
// stages directly.
func (m *Machine) faultTick() {
	f := m.cfg.Faults
	site, ok := f.CacheFaultDue(m.cycle)
	if !ok {
		return
	}
	corrupted := false
	switch site {
	case faults.SiteCacheLine:
		corrupted = m.hier.CorruptL1Line(f.CorruptionSeed())
	case faults.SiteReplacement:
		corrupted = m.hier.CorruptL1Replacement(f.CorruptionSeed())
	}
	// An empty cache has nothing to corrupt; the fault retries until a
	// valid line exists.
	if corrupted {
		f.CommitCacheFault(m.cycle)
	}
}

func (m *Machine) fail(format string, args ...any) {
	if m.err == nil {
		m.err = fmt.Errorf("pipeline: cycle %d: %s", m.cycle, fmt.Sprintf(format, args...))
	}
}

func (m *Machine) event(kind EventKind, u *uop, detail string) {
	if !m.cfg.RecordEvents {
		return
	}
	m.Events = append(m.Events, Event{Cycle: m.cycle, Seq: u.seq, PC: u.pc, Kind: kind, Detail: detail})
}

// readWithForward reads width bytes at addr, patching in store data from
// in-flight stores older than seq (store-to-load forwarding). It reports
// whether the whole access was covered by forwarding, whether any byte
// was, whether any byte carries RDCYCLE taint, and (when Config.Taint is
// set) the union of the bytes' secret labels — shadow memory for bytes
// read from memory, the store µop's labels for forwarded bytes.
func (m *Machine) readWithForward(addr uint64, width int, seq uint64) (val uint64, full, any, tainted bool, labels taint.LabelSet) {
	var b [8]byte
	var covered [8]bool
	var byteLabels [8]taint.LabelSet
	st := m.cfg.Taint
	// One page-granular memory read instead of a per-byte lookup loop;
	// the taint side channels stay byte-granular but are skipped entirely
	// when no taint is in play.
	mv := m.mem.Read(addr, width)
	for i := 0; i < width; i++ {
		b[i] = byte(mv >> (8 * i))
	}
	if len(m.taintedMem) > 0 {
		for i := 0; i < width; i++ {
			if m.taintedMem[addr+uint64(i)] {
				tainted = true
				break
			}
		}
	}
	if st != nil {
		for i := 0; i < width; i++ {
			byteLabels[i] = st.Mem.Get(addr + uint64(i))
		}
	}
	for _, e := range m.sq {
		if e.u.seq >= seq {
			break
		}
		if !e.addrReady {
			m.fail("load forwarded past unresolved store #%d", e.u.seq)
			break
		}
		sa, sw := e.u.addr, e.u.memWidth
		for i := 0; i < width; i++ {
			a := addr + uint64(i)
			if a >= sa && a < sa+uint64(sw) {
				b[i] = byte(e.u.storeVal >> (8 * (a - sa)))
				covered[i] = true
				if e.u.tainted {
					tainted = true
				}
				// A forwarded byte takes the store's labels, exactly as
				// shadow memory will once that store performs.
				byteLabels[i] = e.u.labels
			}
		}
	}
	if st != nil {
		for i := 0; i < width; i++ {
			labels |= byteLabels[i]
		}
	}
	full, any = true, false
	for i := 0; i < width; i++ {
		if covered[i] {
			any = true
		} else {
			full = false
		}
	}
	for i := width - 1; i >= 0; i-- {
		val = val<<8 | uint64(b[i])
	}
	// Fault site: mis-forwarded store data. Only fires on an access that
	// actually used forwarding; the independent recomputation below (or,
	// without invariant checking, retire verification) is the detector.
	if any {
		if fv, flipped := m.cfg.Faults.FlipValue(faults.SiteForward, m.cycle, val); flipped {
			val = fv
		}
	}
	if m.cfg.CheckInvariants {
		m.checkForwardConsistency(addr, width, seq, val, full && any, any)
	}
	return val, full && any, any, tainted, labels
}

// RegTainted reports whether r's committed value derives from RDCYCLE.
// Tainted registers are timing-dependent by design and must be excluded
// from architectural comparison against the functional emulator.
func (m *Machine) RegTainted(r isa.Reg) bool { return m.committedTaint[r] }

// MemTainted reports whether the byte at addr was written by a
// RDCYCLE-derived store, making its value timing-dependent.
func (m *Machine) MemTainted(addr uint64) bool { return m.taintedMem[addr] }
