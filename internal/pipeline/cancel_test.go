package pipeline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/isa"
	"pandora/internal/mem"
)

// longProgram builds a straight-line program long enough that a run
// spans many cancellation checkpoints.
func longProgram(t *testing.T, n int) isa.Program {
	t.Helper()
	var b strings.Builder
	b.WriteString("addi x1, x0, 1\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "add x2, x2, x1\n")
	}
	b.WriteString("halt\n")
	prog, err := asm.Assemble(b.String())
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog
}

func TestCancelFlagStopsRun(t *testing.T) {
	cfg := DefaultConfig()
	flag := &CancelFlag{}
	cfg.Cancel = flag
	m := MustNew(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))

	// A pre-raised flag aborts within the first checkpoint interval.
	flag.Cancel()
	res, err := m.Run(longProgram(t, 20000))
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run returned %v, want ErrCancelled", err)
	}
	if res.Cycles > 2*cancelCheckInterval {
		t.Fatalf("cancelled run still burned %d cycles (checkpoint every %d)", res.Cycles, cancelCheckInterval)
	}
}

func TestNilCancelRunsToCompletion(t *testing.T) {
	cfg := DefaultConfig()
	m := MustNew(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if _, err := m.Run(longProgram(t, 100)); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestMachineReusableAfterCancel(t *testing.T) {
	// A cancelled run must not poison the machine: the in-flight µops are
	// reclaimed at the top of the next Run and a fresh program completes.
	cfg := DefaultConfig()
	flag := &CancelFlag{}
	cfg.Cancel = flag
	m := MustNew(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	flag.Cancel()
	if _, err := m.Run(longProgram(t, 20000)); !errors.Is(err, ErrCancelled) {
		t.Fatalf("first run: %v, want ErrCancelled", err)
	}
	flag.v.Store(false)
	res, err := m.Run(longProgram(t, 100))
	if err != nil {
		t.Fatalf("run after cancel: %v", err)
	}
	if res.Retired == 0 {
		t.Fatalf("run after cancel retired nothing")
	}
}

func TestCancelFromContext(t *testing.T) {
	// Background (never cancellable) must yield a nil flag — the zero-cost
	// path the allocation tests pin.
	if f, stop := CancelFromContext(context.Background()); f != nil {
		t.Fatalf("CancelFromContext(Background) = %v, want nil flag", f)
	} else {
		stop()
	}

	ctx, cancel := context.WithCancel(context.Background())
	f, stop := CancelFromContext(ctx)
	defer stop()
	if f == nil {
		t.Fatalf("CancelFromContext(cancellable) returned nil flag")
	}
	if f.Cancelled() {
		t.Fatalf("flag raised before ctx cancellation")
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for !f.Cancelled() {
		if time.Now().After(deadline) {
			t.Fatalf("flag not raised after ctx cancellation")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCancelMidRun(t *testing.T) {
	// Cancellation raised from another goroutine while the loop is running
	// stops a program that would otherwise run ~1e6 instructions.
	cfg := DefaultConfig()
	flag := &CancelFlag{}
	cfg.Cancel = flag
	m := MustNew(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))

	// A tight backward loop: x1 counts down from a large value.
	prog, err := asm.Assemble(`
		addi x1, x0, 2047
		slli x1, x1, 12
	loop:
		addi x1, x1, -1
		bne  x1, x0, loop
		halt
	`)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	done := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		flag.Cancel()
		close(done)
	}()
	_, err = m.Run(prog)
	<-done
	if err != nil && !errors.Is(err, ErrCancelled) {
		t.Fatalf("Run: %v, want nil (finished first) or ErrCancelled", err)
	}
}
