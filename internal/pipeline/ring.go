package pipeline

import "math/bits"

// The ROB is a power-of-two ring of µop pointers plus two multi-word
// scheduler bitsets indexed by physical slot: dispW (stage ==
// stDispatched, the issue-wakeup candidates) and execW (stage ==
// stExecuting, the writeback candidates). The per-cycle stages used to
// range over every ROB entry; now issue and complete iterate only the set
// bits of their mask, in program order, via bits.TrailingZeros64 — a
// mostly-drained 64-entry ROB costs a couple of word tests instead of 64
// pointer chases. Config.LinearScheduler keeps the old full-scan candidate
// gathering alive as the reference implementation the equivalence tests
// diff against.
//
// Invariants (checked per cycle under Config.CheckInvariants): a slot's
// dispW/execW bits mirror its occupant's stage exactly, and no bit is set
// outside the occupied window.

// initROB sizes the ring and masks for the configured ROB capacity.
func (m *Machine) initROB() {
	size := 1
	for size < m.cfg.ROBSize {
		size <<= 1
	}
	m.robBuf = make([]*uop, size)
	words := (size + 63) / 64
	m.dispW = make([]uint64, words)
	m.execW = make([]uint64, words)
}

// robLen returns the ROB occupancy.
func (m *Machine) robLen() int { return m.robN }

// robAt returns the i-th ROB entry in program order (0 = oldest).
func (m *Machine) robAt(i int) *uop {
	return m.robBuf[(m.robHead+i)&(len(m.robBuf)-1)]
}

// robPush appends u at the ROB tail and records its physical slot.
func (m *Machine) robPush(u *uop) {
	slot := (m.robHead + m.robN) & (len(m.robBuf) - 1)
	m.robBuf[slot] = u
	u.slot = slot
	m.robN++
}

// robPopHead removes the oldest entry (retire).
func (m *Machine) robPopHead() {
	slot := m.robHead
	m.robBuf[slot] = nil
	m.clearSched(slot)
	m.robHead = (slot + 1) & (len(m.robBuf) - 1)
	m.robN--
}

// robPopTail removes and returns the youngest entry (squash).
func (m *Machine) robPopTail() *uop {
	m.robN--
	slot := (m.robHead + m.robN) & (len(m.robBuf) - 1)
	u := m.robBuf[slot]
	m.robBuf[slot] = nil
	m.clearSched(slot)
	return u
}

// markDispatched sets u's issue-wakeup bit (dispatch).
func (m *Machine) markDispatched(u *uop) {
	m.dispW[u.slot>>6] |= 1 << (uint(u.slot) & 63)
}

// markExecuting sets u's writeback bit without passing through dispW
// (HALT enters the ROB already "executing").
func (m *Machine) markExecuting(u *uop) {
	m.execW[u.slot>>6] |= 1 << (uint(u.slot) & 63)
}

// schedToExec moves u's bit from the wakeup mask to the writeback mask
// (issue).
func (m *Machine) schedToExec(u *uop) {
	w, b := u.slot>>6, uint(u.slot)&63
	m.dispW[w] &^= 1 << b
	m.execW[w] |= 1 << b
}

// execDone clears u's writeback bit (completion).
func (m *Machine) execDone(u *uop) {
	m.execW[u.slot>>6] &^= 1 << (uint(u.slot) & 63)
}

// clearSched clears both mask bits for a vacated slot.
func (m *Machine) clearSched(slot int) {
	w, b := slot>>6, uint(slot)&63
	m.dispW[w] &^= 1 << b
	m.execW[w] &^= 1 << b
}

// gatherMasked appends, in program order, every ROB occupant whose slot
// bit is set in w. The occupied window [head, head+n) is at most two
// contiguous slot ranges (one wrap).
func (m *Machine) gatherMasked(w []uint64, out []*uop) []*uop {
	if m.robN == 0 {
		return out
	}
	size := len(m.robBuf)
	end := m.robHead + m.robN
	if end <= size {
		return m.gatherRange(w, m.robHead, end, out)
	}
	out = m.gatherRange(w, m.robHead, size, out)
	return m.gatherRange(w, 0, end-size, out)
}

// gatherRange scans slots [lo, hi) word by word, trimming the first and
// last word to the range, and appends the occupants of set bits in
// ascending slot order.
func (m *Machine) gatherRange(w []uint64, lo, hi int, out []*uop) []*uop {
	for wi := lo >> 6; wi<<6 < hi; wi++ {
		word := w[wi]
		if word == 0 {
			continue
		}
		base := wi << 6
		if base < lo {
			word &= ^uint64(0) << uint(lo-base)
		}
		if base+64 > hi {
			word &= ^uint64(0) >> uint(base+64-hi)
		}
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			out = append(out, m.robBuf[base+b])
		}
	}
	return out
}

// gatherStage is the reference candidate gatherer (Config.LinearScheduler):
// a full program-order scan testing every occupant's stage, exactly the
// walk the bitset path replaced. The downstream issue/complete bodies are
// shared, so diffing the two schedulers isolates the mask bookkeeping.
func (m *Machine) gatherStage(stage uopStage, out []*uop) []*uop {
	for i := 0; i < m.robN; i++ {
		u := m.robAt(i)
		if u.stage == stage {
			out = append(out, u)
		}
	}
	return out
}
