package pipeline

import (
	"testing"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/faults"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/obs"
)

// allocKernel exercises the hot structures the pools and scratch buffers
// serve — ALU chains, mul, loads, stores (SQ entries, forwarding), a
// fence, and a taken backward branch — long enough that steady-state
// behavior dominates.
const allocKernel = `
	addi x1, x0, 300
	addi x2, x0, 0
	lui  x29, 1
loop:
	ld   x3, 0(x29)
	add  x2, x2, x3
	mul  x4, x2, x1
	sd   x2, 8(x29)
	fence
	sd   x4, 16(x29)
	addi x1, x1, -1
	bne  x1, x0, loop
	halt
`

// countProbe is the minimal enabled probe: emission must not allocate, so
// it only counts.
type countProbe struct{ n uint64 }

func (p *countProbe) Emit(obs.Event) { p.n++ }

func steadyStateAllocs(t *testing.T, cfg Config) float64 {
	t.Helper()
	m, err := New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	prog := asm.MustAssemble(allocKernel)
	// Warm every pool, scratch buffer, memory page and cache structure:
	// the claim is zero STEADY-STATE allocations, not a zero-alloc first
	// run.
	var runErr error
	for i := 0; i < 3; i++ {
		if _, runErr = m.Run(prog); runErr != nil {
			t.Fatalf("warmup Run: %v", runErr)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := m.Run(prog); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		t.Fatalf("Run: %v", runErr)
	}
	return avg
}

// TestSteadyStateAllocsNilProbe pins the core claim of the pooled cycle
// loop: with no probe attached, a whole steady-state Run — thousands of
// cycles of fetch, rename, issue, forwarding, store dequeue and retire —
// performs zero heap allocations.
func TestSteadyStateAllocsNilProbe(t *testing.T) {
	cfg := DefaultConfig()
	if avg := steadyStateAllocs(t, cfg); avg != 0 {
		t.Errorf("nil-probe steady-state Run allocates %.1f times, want 0", avg)
	}
}

// TestSteadyStateAllocsEnabledProbe pins the same property with a probe
// attached: every emission site builds the obs.Event by value with static
// Detail strings, so observation itself is allocation-free.
func TestSteadyStateAllocsEnabledProbe(t *testing.T) {
	cfg := DefaultConfig()
	p := &countProbe{}
	cfg.Probe = p
	if avg := steadyStateAllocs(t, cfg); avg != 0 {
		t.Errorf("enabled-probe steady-state Run allocates %.1f times, want 0", avg)
	}
	if p.n == 0 {
		t.Fatal("probe saw no events — the enabled-probe path was not exercised")
	}
}

// TestSteadyStateAllocsBitsetVsLinear runs the alloc check under the
// reference linear scheduler too: the scratch-buffer reuse must hold on
// both candidate-gathering paths.
func TestSteadyStateAllocsLinearScheduler(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinearScheduler = true
	if avg := steadyStateAllocs(t, cfg); avg != 0 {
		t.Errorf("linear-scheduler steady-state Run allocates %.1f times, want 0", avg)
	}
}

// TestPoolReclaimAcrossRuns checks that repeated Runs do not leak pooled
// µops: the free lists reach a fixed point bounded by the in-flight
// window, not by the dynamic instruction count.
func TestPoolReclaimAcrossRuns(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	prog := asm.MustAssemble(allocKernel)
	for i := 0; i < 5; i++ {
		if _, err := m.Run(prog); err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
	}
	after5 := len(m.uopPool)
	for i := 0; i < 5; i++ {
		if _, err := m.Run(prog); err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
	}
	if len(m.uopPool) != after5 {
		t.Errorf("µop pool grew across identical runs: %d -> %d", after5, len(m.uopPool))
	}
	bound := 4 * m.cfg.ROBSize
	if after5 > bound {
		t.Errorf("µop pool holds %d entries, want <= %d (in-flight window, not program length)", after5, bound)
	}
}

// TestUopDoubleFreeDetected proves the pool's double-free guard fails the
// machine loudly instead of corrupting an unrelated µop.
func TestUopDoubleFreeDetected(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	u := m.allocUop()
	m.freeUop(u)
	m.freeUop(u)
	if m.err == nil {
		t.Fatal("double free not detected")
	}
}

// specAllocConfig enables every speculation feature plus the slow store
// AGU, so aborted runs can strand wrong-path µops and unverified
// speculative forwards.
func specAllocConfig() Config {
	cfg := DefaultConfig()
	cfg.StoreAddrLat = 4
	cfg.Speculation = &SpeculationConfig{WrongPath: true, Bimodal: true, StLF: true}
	return cfg
}

// specAllocKernel mixes a constantly mispredicting forward branch (static
// wrong-path fetch over a load and a store) with a forwardable store→load
// pair, so aborts land in every speculative state.
const specAllocKernel = `
	addi x1, x0, 200
	lui  x29, 1
	addi x12, x0, 9
loop:
	sd   x12, 0(x29)
	ld   x3, 0(x29)
	beq  x3, x12, t1
	add  x4, x4, x3
	sd   x4, 8(x29)
t1:
	add  x2, x2, x3
	fence
	addi x1, x1, -1
	bne  x1, x0, loop
	halt
`

// TestSteadyStateAllocsSpeculation extends the zero-alloc claim to the
// speculative machine: wrong-path fetch, squash recovery and the
// forwarding predictor must all run out of the same pools.
func TestSteadyStateAllocsSpeculation(t *testing.T) {
	if avg := steadyStateAllocs(t, specAllocConfig()); avg != 0 {
		t.Errorf("speculative steady-state Run allocates %.1f times, want 0", avg)
	}
}

// TestReclaimAfterAbort checks reclaimInFlight: a run aborted mid-flight
// (MaxCycles) leaves µops in the ROB, SQ and fence queue; the next Run
// must recycle them all and still be correct.
func TestReclaimAfterAbort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 50 // aborts mid-loop
	m := newTestMachine(t, cfg)
	prog := asm.MustAssemble(allocKernel)
	if _, err := m.Run(prog); err == nil {
		t.Fatal("expected MaxCycles error")
	}
	m.cfg.MaxCycles = DefaultConfig().MaxCycles
	res, err := m.Run(prog)
	if err != nil {
		t.Fatalf("Run after abort: %v", err)
	}
	if res.Retired == 0 {
		t.Fatal("no retirement after abort recovery")
	}
	if got := m.Reg(isa.Reg(1)); got != 0 {
		t.Errorf("x1 = %d after loop, want 0", got)
	}
}

// checkPoolsComplete asserts the leak invariant: after a clean run every
// pooled object ever allocated is back in its free list. A µop stranded
// by an abort (e.g. a retired producer reachable only through an
// in-flight consumer's prod reference) breaks the equality.
func checkPoolsComplete(t *testing.T, m *Machine, ctx string) {
	t.Helper()
	if len(m.uopPool) != m.uopAllocated {
		t.Errorf("%s: µop pool holds %d of %d allocated — %d leaked",
			ctx, len(m.uopPool), m.uopAllocated, m.uopAllocated-len(m.uopPool))
	}
	if len(m.sqPool) != m.sqAllocated {
		t.Errorf("%s: SQ pool holds %d of %d allocated — %d leaked",
			ctx, len(m.sqPool), m.sqAllocated, m.sqAllocated-len(m.sqPool))
	}
}

// TestAbortReclaimNoNetLeak drives every Run error path — MaxCycles
// aborts at varying cut points, watchdog stalls, and fault-induced
// pipeline failures — and pins zero net pool growth: after the recovery
// run, every µop and SQ entry ever allocated is back in its pool. The
// abort points sweep across cycles so the in-flight snapshot lands on
// different mixes of dispatched, executing, replaying and (with
// speculation) wrong-path or spec-forwarded µops.
func TestAbortReclaimNoNetLeak(t *testing.T) {
	cases := []struct {
		name   string
		cfg    Config
		kernel string
	}{
		{"baseline", DefaultConfig(), allocKernel},
		{"speculation", specAllocConfig(), specAllocKernel},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newTestMachine(t, tc.cfg)
			prog := asm.MustAssemble(tc.kernel)
			if _, err := m.Run(prog); err != nil {
				t.Fatalf("clean Run: %v", err)
			}
			checkPoolsComplete(t, m, "after clean run")
			full := tc.cfg.MaxCycles
			for i := 0; i < 8; i++ {
				m.cfg.MaxCycles = int64(40 + 23*i)
				if _, err := m.Run(prog); err == nil {
					t.Fatalf("abort %d: expected MaxCycles error", i)
				}
				m.cfg.MaxCycles = full
				if _, err := m.Run(prog); err != nil {
					t.Fatalf("recovery Run %d: %v", i, err)
				}
				checkPoolsComplete(t, m, "after abort recovery")
			}
		})
	}
}

// TestAbortReclaimWatchdogPath covers the StallError return: a stuck
// fence (fault site) trips the watchdog mid-run, and the recovery run
// must drain every pooled object as usual.
func TestAbortReclaimWatchdogPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Watchdog = &WatchdogConfig{Window: 200}
	m := newTestMachine(t, cfg)
	prog := asm.MustAssemble(allocKernel)
	if _, err := m.Run(prog); err != nil {
		t.Fatalf("clean Run: %v", err)
	}
	m.cfg.Faults = faults.NewInjector(&faults.Plan{Site: faults.SiteFenceStuck})
	if _, err := m.Run(prog); err == nil {
		t.Fatal("expected watchdog StallError with a stuck fence")
	}
	m.cfg.Faults = nil
	if _, err := m.Run(prog); err != nil {
		t.Fatalf("recovery Run: %v", err)
	}
	checkPoolsComplete(t, m, "after watchdog recovery")
}

// TestReclaimAfterAbortSpeculation aborts mid-wrong-path (the kernel
// mispredicts constantly) and checks full recovery plus correct results.
func TestReclaimAfterAbortSpeculation(t *testing.T) {
	cfg := specAllocConfig()
	cfg.MaxCycles = 60
	m := newTestMachine(t, cfg)
	prog := asm.MustAssemble(specAllocKernel)
	if _, err := m.Run(prog); err == nil {
		t.Fatal("expected MaxCycles error")
	}
	m.cfg.MaxCycles = DefaultConfig().MaxCycles
	res, err := m.Run(prog)
	if err != nil {
		t.Fatalf("Run after abort: %v", err)
	}
	if res.Stats.WrongPathFetched == 0 {
		t.Fatal("kernel never exercised wrong-path fetch")
	}
	if got := m.Reg(isa.Reg(1)); got != 0 {
		t.Errorf("x1 = %d after loop, want 0", got)
	}
	checkPoolsComplete(t, m, "after speculative abort recovery")
}
