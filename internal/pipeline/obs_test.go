package pipeline

import (
	"testing"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/obs"
	"pandora/internal/uopt"
)

// obsProg exercises every event family: ALU work, a store-load pair
// (forwarding), a cache-missing load, and a loop (branches).
const obsProg = `
	addi x1, x0, 0x100
	addi x2, x0, 3
	sd   x2, 0(x1)
	ld   x3, 0(x1)
	addi x4, x0, 4
loop:
	add  x5, x5, x4
	addi x4, x4, -1
	bne  x4, x0, loop
	ld   x6, 64(x1)
	halt
`

func TestProbeEventStream(t *testing.T) {
	tr := obs.NewTrace()
	cfg := DefaultConfig()
	cfg.Probe = tr
	m := newTestMachine(t, cfg)
	res := run(t, m, obsProg)

	if tr.Len() == 0 {
		t.Fatal("probe saw no events")
	}
	// The acceptance property: on a fresh machine, the retire track's
	// maximum cycle stamp (the run-end marker) equals Result.Cycles.
	if got := tr.MaxCycle(obs.TrackRetire); got != res.Cycles {
		t.Errorf("retire-track max cycle = %d, want Result.Cycles = %d", got, res.Cycles)
	}
	if n := tr.CountKind(obs.KindRetire); uint64(n) != res.Retired {
		t.Errorf("retire events = %d, want %d", n, res.Retired)
	}
	if n := tr.CountKind(obs.KindRunStart); n != 1 {
		t.Errorf("run-start events = %d, want 1", n)
	}
	if n := tr.CountKind(obs.KindRunEnd); n != 1 {
		t.Errorf("run-end events = %d, want 1", n)
	}
	if n := tr.CountKind(obs.KindForward); n == 0 {
		t.Error("no forwarding event for the store-load pair")
	}
	if n := tr.CountKind(obs.KindCacheMiss); n == 0 {
		t.Error("no cache-miss event for the cold load")
	}
	stats := m.Stats()
	if n := tr.CountKind(obs.KindIssue); n == 0 {
		t.Error("no issue events")
	} else {
		for _, e := range tr.Events {
			if e.Kind == obs.KindIssue && e.Arg < 1 {
				t.Errorf("issue event with latency %d", e.Arg)
				break
			}
		}
	}
	if n := tr.CountKind(obs.KindFetch); uint64(n) != stats.Fetched {
		t.Errorf("fetch events = %d, want Fetched = %d", n, stats.Fetched)
	}
}

func TestProbeUoptActivations(t *testing.T) {
	tr := obs.NewTrace()
	cfg := DefaultConfig()
	cfg.Probe = tr
	cfg.SilentStores = &SilentStoreConfig{}
	cfg.Reuse = uopt.NewReuseBuffer(uopt.SchemeSv, 64)
	m := newTestMachine(t, cfg)
	run(t, m, `
		addi x1, x0, 0x200
		addi x2, x0, 9
		sd   x2, 0(x1)
		sd   x2, 0(x1)
		addi x5, x0, 2
	loop:
		add  x3, x2, x2
		addi x5, x5, -1
		bne  x5, x0, loop
		halt
	`)
	want := map[string]bool{"ss-load": false, "silent-store": false, "reuse": false}
	for _, e := range tr.Events {
		if e.Kind == obs.KindUopt {
			if _, ok := want[e.Detail]; ok {
				want[e.Detail] = true
			}
		}
	}
	stats := m.Stats()
	if stats.SilentStores > 0 && !want["silent-store"] {
		t.Errorf("SilentStores = %d but no silent-store uopt event", stats.SilentStores)
	}
	if stats.SSLoadsIssued > 0 && !want["ss-load"] {
		t.Errorf("SSLoadsIssued = %d but no ss-load uopt event", stats.SSLoadsIssued)
	}
	if stats.ReuseHits > 0 && !want["reuse"] {
		t.Errorf("ReuseHits = %d but no reuse uopt event", stats.ReuseHits)
	}
	if stats.ReuseHits == 0 {
		t.Error("expected a reuse hit from the repeated add")
	}
}

func TestMetricsRegistryMatchesStats(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	before := m.Metrics().Snapshot()
	res := run(t, m, obsProg)
	d := m.Metrics().Snapshot().Delta(before)
	if got := d.GetInt64("pipeline.cycles"); got != res.Cycles {
		t.Errorf("pipeline.cycles delta = %d, want %d", got, res.Cycles)
	}
	if got := d.Get("pipeline.retired"); got != res.Retired {
		t.Errorf("pipeline.retired delta = %d, want %d", got, res.Retired)
	}
	stats := m.Stats()
	if got := d.Get("pipeline.loads_forwarded"); got != stats.LoadsForwarded {
		t.Errorf("pipeline.loads_forwarded = %d, want %d", got, stats.LoadsForwarded)
	}
	if got := d.Get("l1.misses"); got == 0 {
		t.Error("hierarchy metrics not registered: l1.misses delta is 0")
	}
}

// TestNilProbeNoAllocations pins the zero-cost-when-disabled property:
// with no probe attached, the emission helpers and the Run bookkeeping
// allocate nothing on the hot path.
func TestNilProbeNoAllocations(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	u := &uop{seq: 1, pc: 2}
	if allocs := testing.AllocsPerRun(200, func() {
		m.emit(obs.KindIssue, obs.TrackIssue, u, 3, "")
	}); allocs != 0 {
		t.Errorf("nil-probe emit allocates %v per run, want 0", allocs)
	}

	c := cache.MustNew(cache.Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64, HitLatency: 1})
	c.Fill(0x40, false)
	if allocs := testing.AllocsPerRun(200, func() {
		c.Lookup(0x40)
	}); allocs != 0 {
		t.Errorf("nil-probe cache Lookup allocates %v per run, want 0", allocs)
	}

	// Warm snapshot scratch: after the first Run, the registry snapshot/
	// delta cycle reuses its buffers.
	prog := asm.MustAssemble("addi x1, x0, 1\nhalt")
	if _, err := m.Run(prog); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(10, func() {
		m.reg.SnapshotInto(&m.runEnd)
		m.runEnd.DeltaInto(m.runStart, &m.runDiff)
	}); allocs != 0 {
		t.Errorf("warm snapshot/delta allocates %v per run, want 0", allocs)
	}
}

// TestProbeDeterministic runs the same program twice on fresh machines
// and requires identical event streams.
func TestProbeDeterministic(t *testing.T) {
	capture := func() *obs.Trace {
		tr := obs.NewTrace()
		cfg := DefaultConfig()
		cfg.Probe = tr
		m, err := New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(asm.MustAssemble(obsProg)); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := capture(), capture()
	if a.Len() != b.Len() {
		t.Fatalf("event counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}
