package pipeline

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrCancelled is returned by Run when the machine's Config.Cancel flag
// was raised mid-run. It is deliberately a bare sentinel (no CoreDump,
// no cycle stamp): cancellation is the caller changing its mind, not the
// simulator failing, and callers route on errors.Is.
var ErrCancelled = errors.New("pipeline: run cancelled")

// CancelFlag is the cooperative cancellation handle for a Run: raise it
// from any goroutine and the cycle loop notices at its next checkpoint
// (every cancelCheckInterval cycles) and aborts with ErrCancelled.
//
// The flag exists so a job deadline can actually stop a simulation that
// is burning a worker — MaxCycles only bounds a run in simulated time,
// which bears no fixed relation to wall-clock. A nil Config.Cancel costs
// one pointer compare per cycle and nothing else; the armed path is a
// single atomic load every checkpoint interval, so the cycle loop stays
// allocation-free either way (the BENCH_cycles gate runs with the
// checkpoint compiled in).
type CancelFlag struct {
	v atomic.Bool
}

// Cancel raises the flag. Safe to call from any goroutine, repeatedly.
func (f *CancelFlag) Cancel() { f.v.Store(true) }

// Cancelled reports whether the flag has been raised.
func (f *CancelFlag) Cancelled() bool { return f.v.Load() }

// cancelCheckInterval is how often (in cycles) the run loop polls an
// armed CancelFlag. Must be a power of two; 1024 cycles is far below a
// millisecond of wall-clock at current simulation speed, so reaction to
// cancellation is prompt while the steady-state cost stays one masked
// compare per cycle.
const cancelCheckInterval = 1 << 10

// CancelFromContext returns a CancelFlag armed when ctx is cancelled
// (deadline or explicit), plus a stop function releasing the watcher.
// A ctx that can never be cancelled (context.Background and friends)
// returns a nil flag and a no-op stop, keeping the nil-deadline fast
// path free. Callers must invoke stop once the machine is done with the
// flag.
func CancelFromContext(ctx context.Context) (*CancelFlag, func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	f := &CancelFlag{}
	stop := context.AfterFunc(ctx, f.Cancel)
	return f, func() { stop() }
}
