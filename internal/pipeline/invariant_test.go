package pipeline

import (
	"math/rand"
	"testing"

	"pandora/internal/cache"
	"pandora/internal/emu"
	"pandora/internal/isa"
	"pandora/internal/mem"
)

// Regression: store-queue slots are allocated at rename, so a store fetched
// in the same window as a FENCE already occupies a slot while the fence
// waits to issue. Requiring a fully empty queue deadlocked — the store can
// never issue past the pending fence. The fence must only wait for OLDER
// stores to drain.
func TestFenceBeforeStoreNoDeadlock(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 100_000 // a deadlock should fail fast, not after 50M cycles
	m := newTestMachine(t, cfg)
	res := run(t, m, `
		fence
		sb x0, 0x700(x0)
		halt
	`)
	if res.Cycles >= cfg.MaxCycles {
		t.Fatalf("fence/store deadlock: %d cycles", res.Cycles)
	}

	// Fences interleaved with stores and loads at several widths must still
	// drain and retire in order.
	m = newTestMachine(t, cfg)
	run(t, m, `
		addi x1, x0, 0x700
		addi x2, x0, 77
		fence
		sd x2, 0(x1)
		fence
		sb x2, 8(x1)
		ld x3, 0(x1)
		fence
		halt
	`)
	if got := m.Reg(isa.Reg(3)); got != 77 {
		t.Errorf("x3 = %d, want 77", got)
	}
}

// With CheckInvariants on, random programs across the optimization
// variants must run to completion with no invariant failure, and still
// match the functional emulator.
func TestCheckInvariantsCleanOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	variants := optVariants()
	for i := 0; i < 12; i++ {
		prog := randProgram(rng)
		for name, mk := range variants {
			cfg := mk()
			cfg.CheckInvariants = true
			hier := cache.MustNewHierarchy(cache.DefaultHierConfig())
			pm := mem.New()
			for a := uint64(0x1000); a < 0x1100; a++ {
				pm.StoreByte(a, byte(a*7))
			}
			m, err := New(cfg, pm, hier)
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			if _, err := m.Run(prog); err != nil {
				t.Fatalf("prog %d under %s: %v", i, name, err)
			}

			em := emu.Machine{Mem: mem.New()}
			for a := uint64(0x1000); a < 0x1100; a++ {
				em.Mem.StoreByte(a, byte(a*7))
			}
			if err := em.Run(prog, 1_000_000); err != nil {
				t.Fatalf("emulator prog %d: %v", i, err)
			}
			for r := isa.Reg(1); r < isa.NumRegs; r++ {
				if m.RegTainted(r) {
					continue
				}
				if got, want := m.Reg(r), em.Regs[r]; got != want {
					t.Errorf("prog %d under %s: %v = %#x, want %#x", i, name, r, got, want)
				}
			}
		}
	}
}

// The retire-order invariant must accept replayed µops: a squash/replay
// storm (mispredicted value speculation) re-dispatches with fresh sequence
// numbers, which is legal and must not trip the strictly-increasing check.
func TestInvariantAllowsReplay(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CheckInvariants = true
	m := newTestMachine(t, cfg)
	// Dependent loads with interleaved stores force forwarding + replay
	// traffic through the checker.
	run(t, m, `
		addi x1, x0, 0x800
		addi x2, x0, 5
	loop:
		sd   x2, 0(x1)
		ld   x3, 0(x1)
		sb   x3, 8(x1)
		lb   x4, 8(x1)
		addi x2, x2, -1
		bne  x2, x0, loop
		halt
	`)
	if got := m.Reg(isa.Reg(4)); got != 1 {
		t.Errorf("x4 = %d, want 1", got)
	}
}
