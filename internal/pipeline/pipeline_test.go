package pipeline

import (
	"math/rand"
	"strings"
	"testing"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/emu"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/uopt"
)

func newTestMachine(t *testing.T, cfg Config) *Machine {
	t.Helper()
	m, err := New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func run(t *testing.T, m *Machine, src string) Result {
	t.Helper()
	res, err := m.Run(asm.MustAssemble(src))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestStraightLineALU(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	res := run(t, m, `
		addi x1, x0, 7
		addi x2, x0, 5
		add  x3, x1, x2
		mul  x4, x1, x2
		sub  x5, x2, x1
		halt
	`)
	if got := m.Reg(3); got != 12 {
		t.Errorf("x3 = %d, want 12", got)
	}
	if got := m.Reg(4); got != 35 {
		t.Errorf("x4 = %d, want 35", got)
	}
	if got := int64(m.Reg(5)); got != -2 {
		t.Errorf("x5 = %d, want -2", got)
	}
	if res.Cycles <= 0 || res.Retired != 6 {
		t.Errorf("res = %+v, want 6 retired", res)
	}
}

func TestLoopSum(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	run(t, m, `
		addi x1, x0, 100   # i = 100
		addi x2, x0, 0     # sum
	loop:
		add  x2, x2, x1
		addi x1, x1, -1
		bne  x1, x0, loop
		halt
	`)
	if got := m.Reg(2); got != 5050 {
		t.Errorf("sum = %d, want 5050", got)
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	run(t, m, `
		addi x1, x0, 0x100
		addi x2, x0, 1234
		sd   x2, 0(x1)
		ld   x3, 0(x1)      # forwarded from SQ
		addi x4, x3, 1
		halt
	`)
	if got := m.Reg(3); got != 1234 {
		t.Errorf("x3 = %d, want 1234", got)
	}
	if got := m.Reg(4); got != 1235 {
		t.Errorf("x4 = %d, want 1235", got)
	}
	if m.Stats().LoadsForwarded == 0 {
		t.Errorf("expected store-to-load forwarding, got %+v", m.Stats())
	}
	if got := m.Memory().Read(0x100, 8); got != 1234 {
		t.Errorf("mem[0x100] = %d, want 1234 (store must drain)", got)
	}
}

func TestPartialForwardReadsMemory(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	m.Memory().Write(0x200, 8, 0xffffffffffffffff)
	run(t, m, `
		addi x1, x0, 0x200
		addi x2, x0, 0
		sb   x2, 0(x1)      # clear low byte only
		ld   x3, 0(x1)      # one byte forwarded, seven from memory
		halt
	`)
	if got := m.Reg(3); got != 0xffffffffffffff00 {
		t.Errorf("x3 = %#x, want 0xffffffffffffff00", got)
	}
}

func TestByteHalfWordAccess(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	run(t, m, `
		addi x1, x0, 0x300
		addi x2, x0, -1     # 0xffff...ff
		sw   x2, 0(x1)
		lbu  x3, 0(x1)
		lb   x4, 0(x1)
		lhu  x5, 0(x1)
		lh   x6, 2(x1)
		lwu  x7, 0(x1)
		halt
	`)
	if got := m.Reg(3); got != 0xff {
		t.Errorf("lbu = %#x", got)
	}
	if got := int64(m.Reg(4)); got != -1 {
		t.Errorf("lb = %d", got)
	}
	if got := m.Reg(5); got != 0xffff {
		t.Errorf("lhu = %#x", got)
	}
	if got := int64(m.Reg(6)); got != -1 {
		t.Errorf("lh = %d", got)
	}
	if got := m.Reg(7); got != 0xffffffff {
		t.Errorf("lwu = %#x", got)
	}
}

func TestRDCYCLEMonotonic(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	run(t, m, `
		rdcycle x1
		addi x5, x0, 0
		addi x5, x5, 1
		addi x5, x5, 1
		rdcycle x2
		sub x3, x2, x1
		halt
	`)
	if int64(m.Reg(2)) <= int64(m.Reg(1)) {
		t.Errorf("rdcycle not monotonic: %d then %d", m.Reg(1), m.Reg(2))
	}
	if got := m.Reg(3); got == 0 || got > 100 {
		t.Errorf("cycle delta = %d, want small positive", got)
	}
}

func TestRDCYCLEStoreAndReload(t *testing.T) {
	// Timing values may be stored and reloaded (receiver measurement
	// pattern); taint tracking must suppress oracle verification.
	m := newTestMachine(t, DefaultConfig())
	run(t, m, `
		addi x1, x0, 0x400
		rdcycle x2
		sd   x2, 0(x1)
		fence
		ld   x3, 0(x1)
		halt
	`)
	if m.Reg(3) != m.Reg(2) {
		t.Errorf("reloaded cycle %d != stored %d", m.Reg(3), m.Reg(2))
	}
}

func TestBranchOnTimingFails(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	_, err := m.Run(asm.MustAssemble(`
		rdcycle x1
		beq x1, x0, 0
		halt
	`))
	if err == nil {
		t.Fatal("expected error for branch on RDCYCLE-derived value")
	}
}

func TestJalJalr(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	run(t, m, `
		jal x1, target
		addi x2, x0, 99    # skipped
	target:
		addi x3, x0, 42
		addi x4, x1, 0     # link register = 1
		halt
	`)
	if got := m.Reg(3); got != 42 {
		t.Errorf("x3 = %d, want 42", got)
	}
	if got := m.Reg(2); got != 0 {
		t.Errorf("x2 = %d, want 0 (skipped)", got)
	}
	if got := m.Reg(1); got != 1 {
		t.Errorf("link = %d, want 1", got)
	}
}

func TestFenceDrainsSQ(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	res := run(t, m, `
		addi x1, x0, 0x500
		addi x2, x0, 7
		sd   x2, 0(x1)
		fence
		ld   x3, 0(x1)     # after fence: must come from cache, not forwarding
		halt
	`)
	if got := m.Reg(3); got != 7 {
		t.Errorf("x3 = %d, want 7", got)
	}
	if m.Stats().LoadsForwarded != 0 {
		t.Errorf("load after fence should not forward: %+v", res.Stats)
	}
}

func TestDivByZeroMatchesRISCV(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	run(t, m, `
		addi x1, x0, 10
		div  x2, x1, x0
		rem  x3, x1, x0
		halt
	`)
	if got := m.Reg(2); got != ^uint64(0) {
		t.Errorf("div by zero = %#x, want all ones", got)
	}
	if got := m.Reg(3); got != 10 {
		t.Errorf("rem by zero = %d, want dividend", got)
	}
}

// randProgram builds a random but guaranteed-terminating program: a
// bounded counted loop whose body is straight-line ALU and memory ops over
// a small scratch buffer.
func randProgram(rng *rand.Rand) isa.Program {
	var p isa.Program
	emit := func(in isa.Inst) { p = append(p, in) }

	// x30 = loop counter, x29 = scratch base.
	iters := int64(1 + rng.Intn(6))
	emit(isa.Inst{Op: isa.ADDI, Rd: 30, Rs1: 0, Imm: iters})
	emit(isa.Inst{Op: isa.ADDI, Rd: 29, Rs1: 0, Imm: 0x1000})
	loopStart := int64(len(p))

	body := 3 + rng.Intn(12)
	for i := 0; i < body; i++ {
		rd := isa.Reg(1 + rng.Intn(12))
		rs1 := isa.Reg(rng.Intn(13))
		rs2 := isa.Reg(rng.Intn(13))
		switch rng.Intn(10) {
		case 0, 1, 2:
			ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLT, isa.SLTU}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: rd, Rs1: rs1, Rs2: rs2})
		case 3:
			ops := []isa.Op{isa.MUL, isa.MULH, isa.DIV, isa.REM}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: rd, Rs1: rs1, Rs2: rs2})
		case 4:
			ops := []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLTI}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: rd, Rs1: rs1, Imm: int64(rng.Intn(4096) - 2048)})
		case 5:
			ops := []isa.Op{isa.SLLI, isa.SRLI, isa.SRAI}
			emit(isa.Inst{Op: ops[rng.Intn(len(ops))], Rd: rd, Rs1: rs1, Imm: int64(rng.Intn(63))})
		case 6, 7:
			ops := []isa.Op{isa.SB, isa.SH, isa.SW, isa.SD}
			op := ops[rng.Intn(len(ops))]
			off := int64(rng.Intn(32)) * 8
			emit(isa.Inst{Op: op, Rs1: 29, Rs2: rs2, Imm: off})
		case 8:
			// Data-dependent forward branch over one or two instructions
			// (exercises BTFN prediction and redirects).
			skip := 1 + rng.Intn(2)
			bops := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGEU}
			emit(isa.Inst{Op: bops[rng.Intn(len(bops))], Rs1: rs1, Rs2: rs2,
				Imm: int64(len(p)) + int64(skip) + 1})
			for s := 0; s < skip; s++ {
				emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: int64(rng.Intn(64))})
			}
		default:
			ops := []isa.Op{isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW, isa.LWU, isa.LD}
			op := ops[rng.Intn(len(ops))]
			off := int64(rng.Intn(32)) * 8
			emit(isa.Inst{Op: op, Rd: rd, Rs1: 29, Imm: off})
		}
	}
	emit(isa.Inst{Op: isa.ADDI, Rd: 30, Rs1: 30, Imm: -1})
	emit(isa.Inst{Op: isa.BNE, Rs1: 30, Rs2: 0, Imm: loopStart})
	emit(isa.Inst{Op: isa.HALT})
	return p
}

// optVariants returns pipeline configurations covering every optimization
// class (the differential test must hold under all of them).
func optVariants() map[string]func() Config {
	return map[string]func() Config{
		"baseline": DefaultConfig,
		"silentstores": func() Config {
			c := DefaultConfig()
			c.SilentStores = &SilentStoreConfig{}
			return c
		},
		"valuepred": func() Config {
			c := DefaultConfig()
			c.Predictor = uopt.NewPredictor(1)
			return c
		},
		"reuse-sv": func() Config {
			c := DefaultConfig()
			c.Reuse = uopt.NewReuseBuffer(uopt.SchemeSv, 64)
			return c
		},
		"reuse-sn": func() Config {
			c := DefaultConfig()
			c.Reuse = uopt.NewReuseBuffer(uopt.SchemeSn, 64)
			return c
		},
		"compsimp": func() Config {
			c := DefaultConfig()
			c.Simplifier = &uopt.Simplifier{ZeroSkipMul: true, TrivialALU: true, EarlyExitDiv: true}
			return c
		},
		"packing": func() Config {
			c := DefaultConfig()
			c.Packer = uopt.NewPacker()
			return c
		},
		"rfc-any": func() Config {
			c := DefaultConfig()
			c.RFC = uopt.RFCAnyValue
			c.PhysRegs = 44
			return c
		},
		"tiny": func() Config {
			c := DefaultConfig()
			c.ROBSize = 8
			c.IQSize = 4
			c.LQSize = 2
			c.SQSize = 2
			c.PhysRegs = 40
			c.FetchWidth = 1
			c.RetireWidth = 1
			c.ALUPorts = 1
			c.LoadPorts = 1
			return c
		},
		"everything": func() Config {
			c := DefaultConfig()
			c.SilentStores = &SilentStoreConfig{Retry: true}
			c.Predictor = uopt.NewPredictor(2)
			c.Reuse = uopt.NewReuseBuffer(uopt.SchemeSv, 64)
			c.Simplifier = &uopt.Simplifier{ZeroSkipMul: true, TrivialALU: true, EarlyExitDiv: true}
			c.Packer = uopt.NewPacker()
			c.RFC = uopt.RFCAnyValue
			c.PhysRegs = 48
			return c
		},
	}
}

// TestDifferentialVsEmulator is the core property test: for random
// terminating programs, under every optimization configuration, the
// pipeline's committed registers and final memory must match the
// functional emulator exactly.
func TestDifferentialVsEmulator(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 10
	}
	for name, mk := range optVariants() {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < iters; i++ {
				prog := randProgram(rng)

				golden := emu.New(mem.New())
				// Pre-seed both memories identically.
				for a := uint64(0x1000); a < 0x1100; a += 8 {
					golden.Mem.Write(a, 8, a*0x9e3779b97f4a7c15)
				}
				if err := golden.Run(prog, 1_000_000); err != nil {
					t.Fatalf("iter %d: emulator: %v", i, err)
				}

				pm := mem.New()
				for a := uint64(0x1000); a < 0x1100; a += 8 {
					pm.Write(a, 8, a*0x9e3779b97f4a7c15)
				}
				m, err := New(mk(), pm, cache.MustNewHierarchy(cache.DefaultHierConfig()))
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				if _, err := m.Run(prog); err != nil {
					t.Fatalf("iter %d: pipeline: %v\nprogram:\n%v", i, err, prog)
				}

				for r := isa.Reg(0); r < isa.NumRegs; r++ {
					if m.Reg(r) != golden.Regs[r] {
						t.Fatalf("iter %d: %v = %#x, emulator has %#x\nprogram:\n%v",
							i, r, m.Reg(r), golden.Regs[r], prog)
					}
				}
				for a := uint64(0x1000); a < 0x1100; a++ {
					if got, want := pm.LoadByte(a), golden.Mem.LoadByte(a); got != want {
						t.Fatalf("iter %d: mem[%#x] = %#x, emulator has %#x", i, a, got, want)
					}
				}
			}
		})
	}
}

func TestSQFullStallsRename(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SQSize = 2
	m := newTestMachine(t, cfg)
	run(t, m, `
		addi x1, x0, 0x600
		sd x0, 0(x1)
		sd x0, 64(x1)
		sd x0, 128(x1)
		sd x0, 192(x1)
		sd x0, 256(x1)
		sd x0, 320(x1)
		halt
	`)
	if m.Stats().RenameStallSQ == 0 {
		t.Errorf("expected SQ-full rename stalls, got %+v", m.Stats())
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxCycles = 100
	m := newTestMachine(t, cfg)
	_, err := m.Run(asm.MustAssemble(`
	loop:
		addi x1, x1, 1
		jal x0, loop
		halt
	`))
	if err == nil {
		t.Fatal("expected MaxCycles error for infinite loop")
	}
}

func TestRenderPipeview(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordEvents = true
	m := newTestMachine(t, cfg)
	run(t, m, `
		addi x1, x0, 7
		mul  x2, x1, x1
		sd   x2, 0x100(x0)
		halt
	`)
	out := RenderPipeview(m.Events, 40)
	for _, frag := range []string{"pipeview", "D", "R", "pc=0", "pc=2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("pipeview missing %q:\n%s", frag, out)
		}
	}
	if got := RenderPipeview(nil, 0); !strings.Contains(got, "no events") {
		t.Errorf("empty pipeview: %q", got)
	}
}
