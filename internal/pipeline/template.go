package pipeline

import "pandora/internal/isa"

// uopTemplate is the decoded, immutable-per-program half of a µop: every
// fact derivable from the instruction and its PC alone. Fetch used to
// re-derive all of this (opcode-switch by opcode-switch) for every dynamic
// instance of every instruction, millions of times per run; now decode
// happens once per Run per PC and fetch just stamps the per-dynamic-
// instance fields into a pooled uop struct.
//
// What may live here: opcode class, register names, immediate handling,
// memory width, the static BTFN direction prediction (a pure function of
// opcode and target vs. PC). What may NOT live here: anything that depends
// on the dynamic instance — oracle results, operand values, addresses,
// taint labels, timing. Those stay on the uop.
type uopTemplate struct {
	inst  isa.Inst
	pc    int64
	class isa.Class

	// Renaming facts.
	dest       isa.Reg // X0 when the instruction writes no register
	writesReg  bool
	src1, src2 isa.Reg // from Uses(); X0 means "no producer tracking"

	// immSrc2 marks ALU-family immediate forms whose second operand is the
	// immediate (readSources' substitution rule); immVal is the pre-cast
	// value.
	immSrc2 bool
	immVal  uint64

	memWidth int // loads/stores

	// Static BTFN direction prediction (branches): backward targets are
	// predicted taken. alwaysRedirect marks JALR, which has no BTB and
	// always blocks fetch.
	predictedTaken bool
	alwaysRedirect bool

	// str is inst.String(), pre-rendered only when Config.RecordEvents is
	// set — the event log's dispatch detail. Hot runs never format it.
	str string
}

// prepareProgram (re)builds the decoded-template cache for prog. It runs
// once per Machine.Run: O(len(prog)) scalar work against millions of
// simulated cycles, and allocation-free once the scratch has grown to the
// largest program seen. Rebuilding unconditionally (rather than keying on
// the slice identity) means in-place program mutation between Runs can
// never serve stale µops.
func (m *Machine) prepareProgram(prog isa.Program) {
	if cap(m.tmpl) < len(prog) {
		m.tmpl = make([]uopTemplate, len(prog))
	}
	m.tmpl = m.tmpl[:len(prog)]
	for pc := range prog {
		in := prog[pc]
		t := &m.tmpl[pc]
		cl := isa.ClassOf(in.Op)
		dest := in.Writes()
		s1, s2 := in.Uses()
		*t = uopTemplate{
			inst:      in,
			pc:        int64(pc),
			class:     cl,
			dest:      dest,
			writesReg: dest != isa.X0,
			src1:      s1,
			src2:      s2,
			memWidth:  isa.MemWidth(in.Op),
		}
		switch cl {
		case isa.ClassALU, isa.ClassMul, isa.ClassDiv, isa.ClassCSR:
			if isa.HasImm(in.Op) {
				t.immSrc2 = true
				t.immVal = uint64(in.Imm)
			}
		case isa.ClassBranch:
			t.predictedTaken = in.Imm <= int64(pc)
		case isa.ClassJump:
			t.alwaysRedirect = in.Op == isa.JALR
		}
		if m.cfg.RecordEvents {
			t.str = in.String()
		}
	}
}
