package pipeline

import (
	"fmt"

	"pandora/internal/faults"
	"pandora/internal/isa"
	"pandora/internal/obs"
	"pandora/internal/taint"
	"pandora/internal/uopt"
)

// retire commits up to RetireWidth completed µops in program order,
// verifying each register result against the control-flow oracle.
func (m *Machine) retire() {
	for n := 0; n < m.cfg.RetireWidth && m.robN > 0; n++ {
		u := m.robBuf[m.robHead]
		if u.stage != stDone {
			return
		}
		// Wrong-path µops carry no architectural facts and must be
		// squashed before the initiating branch retires; one at the ROB
		// head is a recovery bug, not a recoverable state.
		if u.wrongPath {
			m.fail("invariant: wrong-path µop #%d (pc=%d) reached retirement", u.seq, u.pc)
			return
		}
		// A speculatively forwarded load verifies now, when every older
		// store address is architecturally resolved; a mismatch squashes
		// the load (inclusive) for replay and ends this retire sweep.
		if u.specForwarded && !m.verifySpecForward(u) {
			return
		}
		// Replay re-dispatches with a fresh sequence number, so retire
		// order is strictly increasing seq — anything else is a ROB bug.
		if m.cfg.CheckInvariants && u.seq <= m.lastRetiredSeq {
			m.fail("invariant: retire out of program order: µop #%d after #%d", u.seq, m.lastRetiredSeq)
			return
		}
		m.lastRetiredSeq = u.seq
		u.stage = stRetired
		u.retireC = m.cycle
		m.robPopHead()
		m.stats.Retired++
		m.emit(obs.KindRetire, obs.TrackRetire, u, m.cycle-u.fetchC, "")
		m.event(EvRetire, u, "")
		if m.cfg.Watchdog != nil {
			if depth := m.cfg.Watchdog.depth(); len(m.lastRetired) >= depth {
				copy(m.lastRetired, m.lastRetired[1:])
				m.lastRetired = m.lastRetired[:depth-1]
			}
			m.lastRetired = append(m.lastRetired, m.uopDump(u, false))
		}

		if st := m.cfg.Taint; st != nil {
			m.retireShadow(st, u)
		}

		if u.t.writesReg {
			r := u.t.dest
			if !u.tainted && u.result != u.oracleResult {
				m.fail("retire verification failed at pc=%d %v: pipeline=%#x oracle=%#x",
					u.pc, u.inst, u.result, u.oracleResult)
				return
			}
			// The previous committed value of r dies; its physical
			// register returns to the pool when its last reference does.
			if m.vf.Release(m.committed[r]) {
				m.prfFree++
			}
			m.committed[r] = u.result
			m.committedTaint[r] = u.tainted
			// Fault site: a bit flip at rest in the committed register
			// file, landing just after retire verification accepted the
			// value — only later readers can expose it.
			if fv, flipped := m.cfg.Faults.FlipValue(faults.SitePRF, m.cycle, u.result); flipped {
				m.committed[r] = fv
			}
			if m.producer[r] == u {
				m.producer[r] = nil
			}
		}
		switch u.class {
		case isa.ClassLoad:
			m.lqCount--
			// Predictors train at commit: exactly once per dynamic
			// instance, in program order, replay-immune.
			if m.cfg.Predictor != nil {
				m.cfg.Predictor.Resolve(u.pc, u.result, u.wasPredicted, u.predictedVal)
			}
		case isa.ClassBranch:
			// The bimodal predictor trains at commit, like the value
			// predictor: once per dynamic instance, in program order.
			m.trainBranch(u)
		case isa.ClassHalt:
			m.haltRetired = true
		}
		// An unreferenced µop recycles immediately; stores (SQ entry) and
		// in-queue fences recycle when their last reference drops.
		if u.refs == 0 {
			m.freeUop(u)
		}
	}
}

// retireShadow commits one µop's secret labels in program order,
// mirroring the emulator-side rules in taint.State.StepEmu. Retire is the
// only in-order point the pipeline has, so it is where the sticky control
// set is both grown (branch/JALR predicates) and folded into writes.
func (m *Machine) retireShadow(st *taint.State, u *uop) {
	switch u.class {
	case isa.ClassBranch:
		if u.labels.Any() {
			st.ObserveControlFlow(m.cycle, u.pc, u.labels)
			st.Control |= u.labels
		}
	case isa.ClassJump:
		if u.inst.Op == isa.JALR && u.labels.Any() {
			st.ObserveControlFlow(m.cycle, u.pc, u.labels)
			st.Control |= u.labels
		}
		u.labels = st.Control // the link value reflects only the path
	default:
		u.labels |= st.Control
	}
	if u.t.writesReg {
		st.Regs[u.t.dest] = u.labels
	}
	if u.class == isa.ClassLoad && m.cfg.Predictor != nil {
		// The predictor trains on this value at commit: its table now
		// holds secret-derived state, and future predictions of this PC
		// carry these labels (State.Pred).
		st.ObserveValuePred(m.cycle, u.pc, u.labels)
		st.Pred[u.pc] = u.labels
	}
}

// complete applies writeback effects for µops whose execution finishes at
// or before this cycle: result availability, RFC early register release,
// reuse-buffer update, value-prediction verification (and squash), and
// store-queue address resolution. Candidates come from the executing
// bitset (or a reference linear scan), in program order.
func (m *Machine) complete() {
	cands := m.completeScratch[:0]
	if m.cfg.LinearScheduler {
		cands = m.gatherStage(stExecuting, cands)
	} else {
		cands = m.gatherMasked(m.execW, cands)
	}
	m.completeScratch = cands

	var squashAfter *uop
	var mispredictDone *uop
	for _, u := range cands {
		if u.doneC > m.cycle {
			continue
		}
		u.stage = stDone
		m.execDone(u)

		if u.t.writesReg {
			u.wroteback = true
			if m.cfg.RFC != uopt.RFCOff {
				// The compressor tests the (possibly secret) result value
				// against every value at rest in the physical file.
				m.cfg.Taint.ObserveRFC(m.cycle, u.pc, u.labels)
			}
			if m.vf.Produce(u.result) {
				u.sharedReg = true
				m.prfFree++
				m.emit(obs.KindUopt, obs.TrackUopt, u, 0, "rfc-share")
			}
			if m.cfg.Reuse != nil {
				m.cfg.Reuse.InvalidateReg(uint8(u.t.dest))
			}
		}

		switch u.class {
		case isa.ClassALU, isa.ClassMul, isa.ClassDiv:
			if m.cfg.Reuse != nil && !u.reused && u.inst.Op != isa.LUI {
				m.cfg.Reuse.Update(u.pc, u.srcVals[0], u.srcVals[1], uint8(u.t.src1), uint8(u.t.src2), u.result)
			}
		case isa.ClassLoad:
			if u.predicted {
				if u.predictedVal != u.result {
					// Value misprediction: squash everything younger.
					if squashAfter == nil || u.seq < squashAfter.seq {
						squashAfter = u
					}
				}
				u.predicted = false // consumers must now read the real result
			}
		case isa.ClassStore:
			e := u.sqe
			e.addrReady = true
			if m.cfg.RecordEvents {
				m.event(EvAddrResolved, u, fmt.Sprintf("addr=%#x", u.addr))
			}
			if ss := m.cfg.SilentStores; ss != nil && ss.Scheme == SSLSQCompare {
				m.lsqCompare(e)
			}
		case isa.ClassBranch:
			// A wrong-path branch has no oracle outcome to diverge from.
			if u.wrongPath {
				break
			}
			taken := isa.Taken(u.inst.Op, u.srcVals[0], u.srcVals[1])
			// A branch fed by an unverified speculative forward may
			// legitimately compute the wrong direction; the forwarding
			// replay squashes it before it retires, so divergence is only
			// a machine bug on non-speculative dataflow.
			if taken != u.oracleTaken && !u.specData {
				m.fail("branch divergence at pc=%d %v (pipeline taken=%v oracle=%v)",
					u.pc, u.inst, taken, u.oracleTaken)
			}
			if u == m.specBranch {
				mispredictDone = u
			}
		case isa.ClassJump:
			if u.inst.Op == isa.JALR {
				target := int64(u.inst.EffectiveAddr(u.srcVals[0]))
				if target != u.nextPC && !u.specData {
					m.fail("indirect jump divergence at pc=%d (pipeline target=%d oracle=%d)",
						u.pc, target, u.nextPC)
				}
			}
		}
	}
	// A value squash at an older load subsumes mispredict recovery: the
	// branch itself is squashed for replay (mispredicted preserved) and
	// squashTail clears wrong-path mode. squashAfter is always older —
	// wrong-path loads are never value-predicted, so no predicted load
	// can sit younger than the unresolved branch.
	if squashAfter != nil {
		m.squashYounger(squashAfter)
	} else if mispredictDone != nil {
		m.squashWrongPath(mispredictDone)
	}
}

// squashYounger removes every µop younger than u from the pipeline and
// queues it for replay — the value-misprediction recovery path. The
// unwind itself lives in squashTail (spec.go), shared with mispredict and
// spec-forward-replay recovery.
func (m *Machine) squashYounger(u *uop) {
	m.stats.ValueSquashes++
	if m.cfg.Predictor != nil {
		m.cfg.Predictor.Squash()
	}
	m.squashTail(u.seq+1, m.cfg.SquashPenalty)
}

func (m *Machine) resetForReplay(v *uop) {
	v.stage = stDispatched
	m.releaseProds(v)
	v.srcVals = [2]uint64{}
	v.result = 0
	v.addr = 0
	v.storeVal = 0
	v.tainted = false
	v.labels = 0
	v.obsMask = 0
	v.predicted = false
	v.wasPredicted = false
	v.predictedVal = 0
	v.reused = false
	v.fusedProd = nil
	v.packed = false
	v.sharedReg = false
	v.renamed = false
	v.wroteback = false
	v.stuck = false // a squash clears a dropped wakeup: replay re-arms issue
	v.specForwarded = false
	v.specData = false
	v.replayed++
	if v.replayed > 64 {
		m.fail("µop #%d replayed %d times (livelock)", v.seq, v.replayed)
	}
}

// sqTick advances the store queue: SS-Load returns, silent dequeues, and
// in-order store performs (Figure 4 of the paper).
func (m *Machine) sqTick() {
	// SS-Load returns.
	for _, e := range m.sq {
		if e.ss == ssPending && m.cycle >= e.ssReturnC {
			e.ss = ssReturned
			e.ssMatch = e.ssValue == e.u.storeVal
			// The elision check compares old value against new: if either
			// side is secret, whether the store dequeues silently — and
			// hence its timing and cache footprint — depends on a secret.
			m.cfg.Taint.ObserveSilentStore(m.cycle, e.u.pc, false, e.u.labels|e.ssLabels)
			if e.ssMatch {
				m.event(EvSSLoadReturn, e.u, "match (silent candidate)")
			} else {
				m.stats.NonSilentChecks++
				if m.cfg.RecordEvents {
					m.event(EvSSLoadReturn, e.u, fmt.Sprintf("mismatch (read %#x, storing %#x)", e.ssValue, e.u.storeVal))
				}
			}
		}
	}
	// Head processing. Multiple consecutive silent stores may dequeue in
	// one cycle; a performing store occupies the head until its line is
	// in the cache.
	for len(m.sq) > 0 {
		e := m.sq[0]
		if e.dequeuing {
			if m.cycle < e.dequeueDoneC {
				if m.cfg.SQOutOfOrderDequeue {
					m.dequeuePastBlockedHead()
				}
				return
			}
			m.performStore(e)
			m.emit(obs.KindDequeue, obs.TrackMem, e.u, 0, "")
			m.event(EvMemResponse, e.u, "")
			m.event(EvStoreToCache, e.u, "")
			m.event(EvDequeue, e.u, "")
			m.popSQHead()
			return // next store begins dequeue next cycle
		}
		if e.u.stage != stRetired {
			return
		}
		// Fault site: store-queue data corrupted while the retired store
		// waits at the head — after younger loads may already have
		// forwarded the correct value.
		if fv, flipped := m.cfg.Faults.FlipValue(faults.SiteLSQ, m.cycle, e.u.storeVal); flipped {
			e.u.storeVal = fv
		}
		if !e.headSeen {
			e.headSeen = true
			m.event(EvSQHead, e.u, "")
		}
		if m.cfg.SilentStores != nil {
			switch e.ss {
			case ssReturned:
				if e.ssMatch {
					// Case A: silent store — dequeue without touching
					// memory or the cache; consecutive silent stores
					// dequeue in the same cycle. The shadow write still
					// happens: eliding the write is a timing decision,
					// not an architectural one, and the location now
					// provably holds the (equal) store value.
					if st := m.cfg.Taint; st != nil {
						st.Mem.Write(e.u.addr, e.u.memWidth, e.u.labels)
					}
					m.stats.SilentStores++
					m.emit(obs.KindUopt, obs.TrackUopt, e.u, 0, "silent-store")
					m.emit(obs.KindDequeue, obs.TrackMem, e.u, 0, "silent")
					m.event(EvDequeueSilent, e.u, "")
					m.popSQHead()
					continue
				}
				// Case B: value mismatch — perform normally.
			case ssPending:
				// Case D: SS-Load has not returned by perform time.
				m.stats.SSLoadLate++
				m.event(EvSSLoadLate, e.u, "")
				e.ss = ssFailed
			}
		}
		// Perform: the store needs its line in the (first-level) cache;
		// the access returns the fill latency.
		res := m.hier.Access(e.u.addr, e.u.storeVal, true)
		lat := int64(res.Latency)
		if res.L1Hit {
			lat = 1
		}
		// Fault site: one late fill/access on the store path.
		if d, delayed := m.cfg.Faults.FillDelay(m.cycle); delayed {
			lat += d
		}
		e.dequeuing = true
		e.dequeueDoneC = m.cycle + lat
		if !res.L1Hit && m.cfg.RecordEvents {
			m.event(EvFillRequest, e.u, fmt.Sprintf("latency=%d", lat))
		}
		return
	}
}

// lsqCompare implements the SSLSQCompare scheme: when a store's address
// and data resolve, compare it against the youngest older in-flight store
// to the same location. No memory read happens; stores with no in-flight
// predecessor are simply not candidates.
func (m *Machine) lsqCompare(e *sqEntry) {
	var prev *sqEntry
	for _, o := range m.sq {
		if o.u.seq >= e.u.seq {
			break
		}
		if o.addrReady && o.u.addr == e.u.addr && o.u.memWidth == e.u.memWidth {
			prev = o
		}
	}
	if prev == nil {
		e.ss = ssFailed
		return
	}
	e.ss = ssReturned
	e.ssValue = prev.u.storeVal
	e.ssLabels = prev.u.labels
	e.ssMatch = prev.u.storeVal == e.u.storeVal
	m.cfg.Taint.ObserveSilentStore(m.cycle, e.u.pc, true, e.u.labels|e.ssLabels)
	if e.ssMatch {
		m.event(EvSSLoadReturn, e.u, "lsq match (silent candidate)")
	} else {
		m.stats.NonSilentChecks++
		m.event(EvSSLoadReturn, e.u, "lsq mismatch")
	}
}

// dequeuePastBlockedHead is the ablation of the in-order-dequeue design
// choice: while the head store waits for its fill, younger retired stores
// whose addresses do not overlap any older in-flight store may dequeue
// around it (same-address ordering is always preserved; one cache-
// touching perform per cycle).
func (m *Machine) dequeuePastBlockedHead() {
	performed := false
	keep := m.sq[:1] // the blocked head stays
	for i := 1; i < len(m.sq); i++ {
		e := m.sq[i]
		removed := false
		if e.u.stage == stRetired && !e.dequeuing {
			overlaps := false
			for _, o := range keep {
				if e.u.addr < o.u.addr+uint64(o.u.memWidth) && o.u.addr < e.u.addr+uint64(e.u.memWidth) {
					overlaps = true
					break
				}
			}
			if !overlaps {
				switch {
				case e.ss == ssReturned && e.ssMatch:
					if st := m.cfg.Taint; st != nil {
						st.Mem.Write(e.u.addr, e.u.memWidth, e.u.labels)
					}
					m.stats.SilentStores++
					m.emit(obs.KindUopt, obs.TrackUopt, e.u, 0, "silent-store")
					m.emit(obs.KindDequeue, obs.TrackMem, e.u, 0, "silent")
					m.event(EvDequeueSilent, e.u, "out-of-order")
					removed = true
				case !performed && m.hier.L1.Contains(e.u.addr):
					m.hier.Access(e.u.addr, e.u.storeVal, true)
					m.performStore(e)
					m.emit(obs.KindDequeue, obs.TrackMem, e.u, 0, "out-of-order")
					m.event(EvDequeue, e.u, "out-of-order")
					performed = true
					removed = true
				}
			}
		}
		if removed {
			m.freeSQ(e)
		} else {
			keep = append(keep, e)
		}
	}
	for i := len(keep); i < len(m.sq); i++ {
		m.sq[i] = nil
	}
	m.sq = keep
}

// performStore writes the store's bytes to memory and updates taint.
func (m *Machine) performStore(e *sqEntry) {
	u := e.u
	m.mem.Write(u.addr, u.memWidth, u.storeVal)
	if st := m.cfg.Taint; st != nil {
		st.Mem.Write(u.addr, u.memWidth, u.labels)
	}
	if u.tainted {
		for i := 0; i < u.memWidth; i++ {
			m.taintedMem[u.addr+uint64(i)] = true
		}
	} else if len(m.taintedMem) > 0 {
		for i := 0; i < u.memWidth; i++ {
			delete(m.taintedMem, u.addr+uint64(i))
		}
	}
}

// aluSlot is one ALU µop issued this cycle, a potential host for one
// packed partner (operand packing).
type aluSlot struct {
	u      *uop
	packed bool
}

// fenceBlocks reports whether a memory µop with sequence number seq must
// hold back behind an older in-flight fence. Completed fences are drained
// from the queue head at the top of issue; a stuck fence (dropped wakeup)
// deliberately does not block younger memory ops, matching the walk-order
// semantics this queue replaced.
func (m *Machine) fenceBlocks(seq uint64) bool {
	for _, f := range m.fenceQ {
		if f.seq >= seq {
			return false
		}
		if !f.stuck {
			return true
		}
	}
	return false
}

// issue selects ready µops oldest-first subject to port availability and
// runs the optimization hooks: computation reuse, computation
// simplification, operand packing, and silent-store read-port stealing.
// Candidates come from the dispatched bitset (or a reference linear
// scan), in program order.
func (m *Machine) issue() {
	// Drain completed fences; the queue then holds only blocking ones.
	for len(m.fenceQ) > 0 {
		f := m.fenceQ[0]
		if f.stage != stDone && f.stage != stRetired {
			break
		}
		n := len(m.fenceQ)
		copy(m.fenceQ, m.fenceQ[1:])
		m.fenceQ[n-1] = nil
		m.fenceQ = m.fenceQ[:n-1]
		m.unref(f)
	}

	alu := m.cfg.ALUPorts
	md := m.cfg.MulDivUnits
	ld := m.cfg.LoadPorts
	st := m.cfg.StorePorts

	// The SMT sibling's ready ops claim ALU ports first; a sibling op can
	// later release its claim by packing with a victim op (the paper's
	// active packing attack).
	coOps := 0
	if ct := m.cfg.CoTenant; ct != nil {
		coOps = ct.OpsPerCycle
		if coOps <= 0 {
			coOps = 1
		}
		// The issue arbiter never lets one thread claim every port
		// (round-robin fairness), so the sibling takes at most all but
		// one.
		if coOps > m.cfg.ALUPorts-1 {
			coOps = m.cfg.ALUPorts - 1
		}
		alu -= coOps
	}

	// ALU µops issued this cycle, for operand packing: each entry may
	// host one packed partner.
	aluIssued := m.aluScratch[:0]

	cands := m.issueScratch[:0]
	if m.cfg.LinearScheduler {
		cands = m.gatherStage(stDispatched, cands)
	} else {
		cands = m.gatherMasked(m.dispW, cands)
	}
	m.issueScratch = cands

	ts := m.cfg.Taint
	for _, u := range cands {
		// A µop whose issue wakeup was dropped (fault injection) is never
		// scheduled again; once oldest it livelocks the machine.
		if u.stuck {
			continue
		}
		// Memory operations may not issue past a FENCE that has not
		// completed.
		if (u.class == isa.ClassLoad || u.class == isa.ClassStore) && m.fenceBlocks(u.seq) {
			continue
		}
		if !u.srcReady(0, m.cycle) || !u.srcReady(1, m.cycle) {
			continue
		}
		// Fault site: drop this ready µop's issue wakeup, permanently.
		if m.cfg.Faults.DropWakeup(m.cycle) {
			u.stuck = true
			continue
		}

		switch u.class {
		case isa.ClassFence:
			// Issue when oldest and every OLDER store has drained. SQ slots
			// are allocated at rename, so younger stores fetched in the same
			// window already occupy entries — requiring a fully empty queue
			// deadlocks against them (they cannot issue past the fence).
			// The SQ is in program order: checking the head suffices.
			//
			// Fault site: re-introduce the pre-fix rule (wait for a fully
			// empty queue), which deadlocks against those younger slots.
			if m.cfg.Faults.FenceRequiresEmptySQ(m.cycle, len(m.sq)) {
				if m.robBuf[m.robHead] == u && len(m.sq) == 0 {
					m.startExec(u, 1)
				}
				break
			}
			if m.robBuf[m.robHead] == u && (len(m.sq) == 0 || m.sq[0].u.seq > u.seq) {
				m.startExec(u, 1)
			}

		case isa.ClassCSR:
			if alu > 0 {
				alu--
				m.startExec(u, 1)
				u.result = uint64(m.cycle)
				u.tainted = true
			}

		case isa.ClassALU:
			m.readSources(u)
			if m.tryReuse(u) {
				m.startExec(u, 1)
				u.result = m.aluResult(u)
				break
			}
			lat := m.cfg.ALULat
			simplified := false
			if m.cfg.Simplifier != nil {
				lat, simplified = m.cfg.Simplifier.SimplifiedLatency(uopt.KindSimple, u.srcVals[0], u.srcVals[1], lat)
				if ts != nil && u.obsMask&obsSimplify == 0 {
					u.obsMask |= obsSimplify
					ts.ObserveSimplify(m.cycle, u.pc, "trivial_alu", u.labels)
				}
			}
			if alu > 0 {
				alu--
				m.startExec(u, lat)
				if simplified {
					m.emit(obs.KindUopt, obs.TrackUopt, u, int64(lat), "simplify")
				}
				u.result = m.aluResult(u)
				aluIssued = append(aluIssued, aluSlot{u: u})
				break
			}
			// Operand packing: share a port with an already-issued
			// narrow-operand ALU µop (pipeline compression), or with one
			// of the SMT sibling's ops — whose operands the attacker set
			// to be narrow precisely so that packing keys on the victim's.
			if m.cfg.Packer != nil {
				packed := false
				for i := range aluIssued {
					s := &aluIssued[i]
					if s.packed || s.u.class != isa.ClassALU {
						continue
					}
					// The narrowness test reads both µops' operands; if
					// either side is secret, co-issue (and thus both
					// µops' timing) depends on it.
					if ts != nil && u.obsMask&obsPack == 0 {
						u.obsMask |= obsPack
						ts.ObservePack(m.cycle, u.pc, s.u.labels|u.labels)
					}
					if m.cfg.Packer.CanPack(s.u.srcVals[0], s.u.srcVals[1], u.srcVals[0], u.srcVals[1]) {
						s.packed = true
						packed = true
						break
					}
				}
				if !packed && coOps > 0 {
					ct := m.cfg.CoTenant
					if ts != nil && u.obsMask&obsPack == 0 {
						u.obsMask |= obsPack
						ts.ObservePack(m.cycle, u.pc, u.labels)
					}
					if m.cfg.Packer.CanPack(ct.OperandA, ct.OperandB, u.srcVals[0], u.srcVals[1]) {
						coOps--
						packed = true
					}
				}
				if packed {
					u.packed = true
					m.cfg.Packer.NotePacked()
					m.stats.Packed++
					m.emit(obs.KindUopt, obs.TrackUopt, u, 0, "pack")
					m.startExec(u, lat)
					if simplified {
						m.emit(obs.KindUopt, obs.TrackUopt, u, int64(lat), "simplify")
					}
					u.result = m.aluResult(u)
				}
			}

		case isa.ClassMul, isa.ClassDiv:
			m.readSources(u)
			if m.tryReuse(u) {
				m.startExec(u, 1)
				u.result = m.aluResult(u)
				break
			}
			if md > 0 {
				lat := m.cfg.MulLat
				kind := uopt.KindMul
				if u.class == isa.ClassDiv {
					lat = m.cfg.DivLat
					kind = uopt.KindDiv
				}
				if m.cfg.Simplifier != nil {
					var simplified bool
					lat, simplified = m.cfg.Simplifier.SimplifiedLatency(kind, u.srcVals[0], u.srcVals[1], lat)
					if simplified {
						m.emit(obs.KindUopt, obs.TrackUopt, u, int64(lat), "simplify")
					}
					if ts != nil && u.obsMask&obsSimplify == 0 {
						u.obsMask |= obsSimplify
						ref := "zero_skip_mul"
						if kind == uopt.KindDiv {
							ref = "early_exit_div"
						}
						ts.ObserveSimplify(m.cycle, u.pc, ref, u.labels)
					}
				}
				md--
				m.startExec(u, lat)
				u.result = m.aluResult(u)
			}

		case isa.ClassJump:
			if alu > 0 {
				alu--
				m.readSources(u)
				if u.inst.Op == isa.JALR && u.tainted {
					m.fail("indirect jump target derives from RDCYCLE at pc=%d", u.pc)
				}
				m.startExec(u, 1)
				u.result = uint64(u.pc + 1)
				u.tainted = false // the link value is architectural
			}

		case isa.ClassBranch:
			if alu > 0 {
				alu--
				m.readSources(u)
				// A wrong-path predicate is never architecturally resolved,
				// so the RDCYCLE check only applies on the correct path.
				if u.tainted && !u.wrongPath {
					m.fail("branch predicate derives from RDCYCLE at pc=%d", u.pc)
				}
				m.startExec(u, 1)
			}

		case isa.ClassLoad:
			if ld == 0 {
				continue
			}
			if !m.olderStoresResolved(u.seq) {
				// The forwarding predictor's bet: consume an unresolved
				// older store's data now, verify at retire.
				if m.trySpecForward(u) {
					ld--
				}
				continue
			}
			if m.lqReadyLoad(u) {
				ld--
			}

		case isa.ClassStore:
			if st > 0 {
				st--
				m.readSources(u)
				u.addr = u.inst.EffectiveAddr(u.srcVals[0])
				u.storeVal = u.srcVals[1]
				if ts := m.cfg.Taint; ts != nil {
					// Address-formation labels only (srcLabels(0)): a
					// constant-time kernel may store secret data to a
					// public slot, and u.labels would drag the data
					// labels in. No-op unless the scan armed
					// ObserveAddrs.
					ts.ObserveCacheAddr(m.cycle, u.pc, u.addr, u.srcLabels(0, ts))
				}
				m.startExec(u, m.storeAddrLat()) // AGU
			}
		}
	}
	m.aluScratch = aluIssued

	// Silent stores: SS-Loads steal leftover load ports (read-port
	// stealing). Demand loads had priority above. An SS-Load that finds
	// no free port the cycle its store's address resolves gives up
	// (Figure 4 Case C) unless Retry is configured.
	if m.cfg.SilentStores != nil && m.cfg.SilentStores.Scheme == SSReadPortStealing {
		for _, e := range m.sq {
			if !e.addrReady || e.ss != ssNone || e.dequeuing {
				continue
			}
			// The SS-Load reads memory, so it must not run ahead of older
			// stores with unresolved addresses.
			if !m.olderStoresResolved(e.u.seq) {
				continue
			}
			if ld == 0 {
				if !m.cfg.SilentStores.Retry {
					e.ss = ssFailed
					m.stats.SSLoadNoPort++
					m.event(EvSSLoadNoPort, e.u, "")
				}
				continue
			}
			ld--
			lat := m.hier.AccessSilent(e.u.addr).Latency
			val, _, _, _, lbl := m.readWithForward(e.u.addr, e.u.memWidth, e.u.seq)
			e.ss = ssPending
			e.ssReturnC = m.cycle + int64(lat)
			e.ssValue = val
			e.ssLabels = lbl
			m.stats.SSLoadsIssued++
			m.emit(obs.KindUopt, obs.TrackUopt, e.u, int64(lat), "ss-load")
			if m.cfg.RecordEvents {
				m.event(EvSSLoadIssue, e.u, fmt.Sprintf("returns at %d", e.ssReturnC))
			}
		}
	}
}

// lqReadyLoad executes a load: forwarding check, cache access, value
// prediction bookkeeping. Returns true if a port was consumed.
func (m *Machine) lqReadyLoad(u *uop) bool {
	m.readSources(u)
	u.addr = u.inst.EffectiveAddr(u.srcVals[0])
	// u.labels here is exactly the address-formation label set (the data
	// labels join below, after the read): the contract checker's
	// cache-address observation point. A wrong-path load may fire both
	// this and the wrong-path observer — they answer different contracts.
	m.cfg.Taint.ObserveCacheAddr(m.cycle, u.pc, u.addr, u.labels)
	if u.wrongPath {
		// At this point u.labels is exactly the address-formation label
		// set. The access below changes real cache state even though the
		// µop will be squashed — a squashed leak is still a leak.
		m.cfg.Taint.ObserveWrongPathLoad(m.cycle, u.pc, u.labels)
	}
	val, full, _, memTaint, memLabels := m.readWithForward(u.addr, u.memWidth, u.seq)
	val = isa.LoadExtend(u.inst.Op, val)
	var lat int
	if full {
		lat = m.cfg.ForwardLat
		m.stats.LoadsForwarded++
		m.emit(obs.KindForward, obs.TrackMem, u, int64(lat), "")
		// A completed full forward trains the forwarding predictor: this
		// load PC has a history of hitting in-flight store data.
		m.stlfBump(u.pc)
	} else {
		res := m.hier.Access(u.addr, val, false)
		lat = res.Latency
		// Fault site: one late fill/access on the load path.
		if d, delayed := m.cfg.Faults.FillDelay(m.cycle); delayed {
			lat += int(d)
		}
		m.stats.LoadsFromCache++
	}
	m.startExec(u, lat)
	u.result = val
	if memTaint {
		u.tainted = true
	}
	u.labels |= memLabels
	return true
}

// readSources latches operand values and taint at issue time.
func (m *Machine) readSources(u *uop) {
	u.srcVals[0] = u.srcValue(0, &m.committed)
	u.srcVals[1] = u.srcValue(1, &m.committed)
	if u.t.immSrc2 {
		u.srcVals[1] = u.t.immVal
	}
	u.tainted = u.srcTainted(0, &m.committedTaint) || u.srcTainted(1, &m.committedTaint)
	// A consumer of a speculatively forwarded value is itself speculative
	// data until the forward verifies at retire: its result (and a branch
	// direction computed from it) may diverge from the oracle and be
	// squashed rather than failed.
	if (u.prod[0] != nil && u.prod[0].specData) || (u.prod[1] != nil && u.prod[1].specData) {
		u.specData = true
	}
	if st := m.cfg.Taint; st != nil {
		// Uses() maps immediate operands to X0, whose labels are always
		// empty, so the plain union is the immediate-substitution rule.
		u.labels = u.srcLabels(0, st) | u.srcLabels(1, st)
		if st.BreakALU &&
			(u.class == isa.ClassALU || u.class == isa.ClassMul || u.class == isa.ClassDiv) {
			u.labels = 0
		}
	}
}

// aluResult computes the result of an ALU-family µop from latched sources.
func (m *Machine) aluResult(u *uop) uint64 {
	return isa.EvalALU(u.inst.Op, u.srcVals[0], u.srcVals[1])
}

// tryReuse consults the computation-reuse buffer; a hit skips the
// functional unit (no port, single-cycle latency).
func (m *Machine) tryReuse(u *uop) bool {
	if m.cfg.Reuse == nil {
		return false
	}
	if m.cfg.Reuse.Scheme == uopt.SchemeSv {
		// Sv keys lookups on operand *values*; Sn compares only register
		// names and never observes the secret (Section VI-A3's safe tweak),
		// so it deliberately has no observer. The trigger condition is
		// re-evaluated every cycle the µop waits for a port, but the
		// dependence on the secret is a per-instance fact — obsMask
		// dedupes the event.
		if st := m.cfg.Taint; st != nil && u.obsMask&obsReuse == 0 {
			u.obsMask |= obsReuse
			st.ObserveReuse(m.cycle, u.pc, u.labels)
		}
	}
	if _, ok := m.cfg.Reuse.Lookup(u.pc, u.srcVals[0], u.srcVals[1], uint8(u.t.src1), uint8(u.t.src2)); ok {
		u.reused = true
		m.stats.ReuseHits++
		m.emit(obs.KindUopt, obs.TrackUopt, u, 0, "reuse")
		return true
	}
	return false
}

func (m *Machine) startExec(u *uop, latency int) {
	if latency < 1 {
		latency = 1
	}
	u.stage = stExecuting
	u.issueC = m.cycle
	u.doneC = m.cycle + int64(latency)
	m.iqCount--
	m.schedToExec(u)
	// Operands were latched (readSources) or are not needed; the producer
	// references drop here so retired producers can recycle.
	m.releaseProds(u)
	m.emit(obs.KindIssue, obs.TrackIssue, u, int64(latency), "")
	if m.cfg.RecordEvents {
		m.event(EvIssue, u, fmt.Sprintf("latency=%d", latency))
	}
}

// olderStoresResolved reports whether every store older than seq has a
// known address (conservative memory disambiguation).
func (m *Machine) olderStoresResolved(seq uint64) bool {
	for _, e := range m.sq {
		if e.u.seq >= seq {
			return true
		}
		if !e.addrReady {
			return false
		}
	}
	return true
}
