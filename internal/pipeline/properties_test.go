package pipeline

import (
	"math/rand"
	"testing"

	"pandora/internal/cache"
	"pandora/internal/isa"
	"pandora/internal/mem"
)

// TestDeterminism: two machines with identical configuration and inputs
// produce identical cycle counts and statistics — the property every
// experiment in this repository relies on.
func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for name, mk := range optVariants() {
		t.Run(name, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				prog := randProgram(rng)
				runOnce := func() (Result, Stats) {
					m, err := New(mk(), mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
					if err != nil {
						t.Fatal(err)
					}
					res, err := m.Run(prog)
					if err != nil {
						t.Fatal(err)
					}
					return res, m.Stats()
				}
				r1, s1 := runOnce()
				r2, s2 := runOnce()
				if r1.Cycles != r2.Cycles || s1 != s2 {
					t.Fatalf("nondeterministic run: %d vs %d cycles\n%+v\n%+v",
						r1.Cycles, r2.Cycles, s1, s2)
				}
			}
		})
	}
}

// TestRetiredMatchesDynamicCount: the pipeline retires exactly the
// dynamic instruction count the functional emulator executes.
func TestRetiredMatchesDynamicCount(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	res := run(t, m, `
		addi x1, x0, 10
	loop:
		addi x1, x1, -1
		bne  x1, x0, loop
		halt
	`)
	// 1 + 10*2 + 1 = 22 dynamic instructions.
	if res.Retired != 22 {
		t.Errorf("retired = %d, want 22", res.Retired)
	}
}

// TestCyclesBoundedBelow: a program can never finish faster than its
// dynamic length divided by the fetch width.
func TestCyclesBoundedBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		prog := randProgram(rng)
		m, err := New(DefaultConfig(), mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		minCycles := int64(res.Retired) / int64(DefaultConfig().FetchWidth)
		if res.Cycles < minCycles {
			t.Fatalf("impossible IPC: %d retired in %d cycles", res.Retired, res.Cycles)
		}
	}
}

// TestNonSpeculativeOptsHelpInAggregate: reuse/simplification/packing are
// non-speculative, so across a program population they must not cost
// cycles. (Per-program "never slower" is false even in real hardware:
// shortening one instruction's latency reorders issue and can shift cache
// replacement — a classic scheduling anomaly — so the assertion is on the
// aggregate.)
func TestNonSpeculativeOptsHelpInAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nonSpec := []string{"reuse-sv", "reuse-sn", "compsimp", "packing"}
	variants := optVariants()
	totals := map[string]int64{}
	var baseTotal int64
	for i := 0; i < 30; i++ {
		prog := randProgram(rng)
		baseTotal += runCycles(t, variants["baseline"](), prog)
		for _, name := range nonSpec {
			totals[name] += runCycles(t, variants[name](), prog)
		}
	}
	for _, name := range nonSpec {
		if totals[name] > baseTotal {
			t.Errorf("%s slower than baseline in aggregate (%d > %d cycles over 30 programs)",
				name, totals[name], baseTotal)
		}
	}
}

func runCycles(t *testing.T, cfg Config, prog isa.Program) int64 {
	t.Helper()
	m, err := New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles
}

// TestValueSquashRecovery: a deliberately unpredictable load under an
// eager predictor must squash and still produce correct results.
func TestValueSquashRecovery(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Predictor = newEagerPredictor()
	m := newTestMachine(t, cfg)
	res := run(t, m, `
		addi x1, x0, 0x900
		addi x9, x0, 16
		addi x2, x0, 0
	loop:
		sd   x9, 0(x1)       # value changes every iteration
		ld   x3, 0(x1)
		add  x2, x2, x3      # consumer of the (mis)predicted value
		addi x9, x9, -1
		bne  x9, x0, loop
		halt
	`)
	if got := m.Reg(2); got != 16*17/2 {
		t.Errorf("sum = %d, want %d", got, 16*17/2)
	}
	if m.Stats().ValueSquashes == 0 {
		t.Error("eager predictor on changing values must squash")
	}
	if res.Cycles <= 0 {
		t.Error("no cycles")
	}
}

// eagerPredictor always predicts the last value with full confidence —
// worst case for squash coverage.
type eagerPredictor struct {
	last map[int64]uint64
}

func newEagerPredictor() *eagerPredictor { return &eagerPredictor{last: map[int64]uint64{}} }

func (p *eagerPredictor) Predict(pc int64) (uint64, bool) {
	v, ok := p.last[pc]
	return v, ok
}

func (p *eagerPredictor) Resolve(pc int64, actual uint64, predicted bool, predictedVal uint64) bool {
	p.last[pc] = actual
	return predicted && predictedVal != actual
}

func (p *eagerPredictor) Squash() {}
func (p *eagerPredictor) Flush()  { p.last = map[int64]uint64{} }

// TestEventLogOrdering: per µop, dispatch ≤ issue ≤ retire cycles.
func TestEventLogOrdering(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordEvents = true
	m := newTestMachine(t, cfg)
	run(t, m, `
		addi x1, x0, 5
		mul  x2, x1, x1
		sd   x2, 0x100(x0)
		ld   x3, 0x100(x0)
		halt
	`)
	type times struct{ dispatch, issue, retire int64 }
	seen := map[uint64]*times{}
	for _, e := range m.Events {
		tt := seen[e.Seq]
		if tt == nil {
			tt = &times{-1, -1, -1}
			seen[e.Seq] = tt
		}
		switch e.Kind {
		case EvDispatch:
			tt.dispatch = e.Cycle
		case EvIssue:
			tt.issue = e.Cycle
		case EvRetire:
			tt.retire = e.Cycle
		}
	}
	for seq, tt := range seen {
		if tt.issue >= 0 && tt.dispatch >= 0 && tt.issue < tt.dispatch {
			t.Errorf("µop %d issued before dispatch (%d < %d)", seq, tt.issue, tt.dispatch)
		}
		if tt.retire >= 0 && tt.issue >= 0 && tt.retire < tt.issue {
			t.Errorf("µop %d retired before issue (%d < %d)", seq, tt.retire, tt.issue)
		}
	}
}

func TestResourceStallCounters(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
		src  string
		stat func(Stats) uint64
	}{
		{
			"LQ", func() Config { c := DefaultConfig(); c.LQSize = 1; return c },
			`addi x1, x0, 0x100
			 ld x2, 0(x1)
			 ld x3, 64(x1)
			 ld x4, 128(x1)
			 ld x5, 192(x1)
			 halt`,
			func(s Stats) uint64 { return s.RenameStallLQ },
		},
		{
			"ROB", func() Config {
				c := DefaultConfig()
				c.ROBSize = 4
				c.IQSize = 4
				return c
			},
			`addi x1, x0, 100
			 div x2, x1, x1
			 addi x3, x0, 1
			 addi x4, x0, 1
			 addi x5, x0, 1
			 addi x6, x0, 1
			 addi x7, x0, 1
			 halt`,
			func(s Stats) uint64 { return s.RenameStallROB },
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := newTestMachine(t, c.cfg())
			run(t, m, c.src)
			if c.stat(m.Stats()) == 0 {
				t.Errorf("expected %s stalls: %+v", c.name, m.Stats())
			}
		})
	}
}

func TestErrorPaths(t *testing.T) {
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	if _, err := New(DefaultConfig(), nil, h); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := New(DefaultConfig(), mem.New(), nil); err == nil {
		t.Error("nil hierarchy accepted")
	}
	bad := DefaultConfig()
	bad.FetchWidth = 0
	if _, err := New(bad, mem.New(), h); err == nil {
		t.Error("zero fetch width accepted")
	}
	bad = DefaultConfig()
	bad.PhysRegs = 33
	if _, err := New(bad, mem.New(), h); err == nil {
		t.Error("too-small PRF accepted")
	}
	m := MustNew(DefaultConfig(), mem.New(), h)
	if _, err := m.Run(nil); err == nil {
		t.Error("empty program accepted")
	}
}

// TestMultipleRunsReuseMachine: the machine can run several programs in
// sequence; architectural registers reset, cache state persists.
func TestMultipleRunsReuseMachine(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	r1 := run(t, m, `
		addi x1, x0, 0x700
		ld x2, 0(x1)     # cold: miss
		halt
	`)
	r2 := run(t, m, `
		addi x1, x0, 0x700
		ld x2, 0(x1)     # warm: hit
		halt
	`)
	if r2.Cycles >= r1.Cycles {
		t.Errorf("cache state did not persist: run1=%d run2=%d", r1.Cycles, r2.Cycles)
	}
	if m.Reg(5) != 0 {
		t.Error("registers not reset between runs")
	}
}

// TestTaintClearedBetweenRuns: RDCYCLE taint in one run must not poison
// the next.
func TestTaintClearedBetweenRuns(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	run(t, m, `
		rdcycle x1
		sd x1, 0x400(x0)
		halt
	`)
	// Overwrite the tainted location with clean data; verification must
	// pass against the oracle.
	run(t, m, `
		addi x1, x0, 77
		sd x1, 0x400(x0)
		fence
		ld x2, 0x400(x0)
		addi x3, x2, 1
		halt
	`)
	if m.Reg(3) != 78 {
		t.Errorf("x3 = %d, want 78", m.Reg(3))
	}
}

// TestQuickDifferentialWithMemoryOpsHeavy stresses forwarding with mixed
// widths at overlapping addresses.
func TestForwardingMixedWidths(t *testing.T) {
	m := newTestMachine(t, DefaultConfig())
	run(t, m, `
		addi x1, x0, 0x500
		addi x2, x0, -1
		sd   x2, 0(x1)       # ffff ffff ffff ffff
		addi x3, x0, 0
		sh   x3, 2(x1)       # clear bytes 2-3
		sb   x3, 5(x1)       # clear byte 5
		ld   x4, 0(x1)       # mixes three in-flight stores
		lw   x5, 2(x1)       # partially covered
		halt
	`)
	if got := m.Reg(4); got != 0xffff00ff0000ffff {
		t.Errorf("ld = %#x", got)
	}
	if got := m.Reg(5); got != 0xff0000 {
		t.Errorf("lw = %#x", got)
	}
}

var _ = isa.ADD // keep isa import for helper signatures
