package pipeline

// µop and store-queue-entry recycling. Fetch used to allocate a fresh
// *uop (and *sqEntry) for every dynamic instruction — ~20% of hot-path CPU
// went to the allocator and GC on sweep workloads. Both structs now come
// from per-Machine free lists, so steady-state simulation allocates
// nothing.
//
// A µop may be referenced after it leaves the ROB, so recycling is
// refcounted. The counted references are exactly:
//
//   - consumer prod[] pointers, taken at dispatch and released when the
//     consumer latches its operands and issues (startExec) or is reset for
//     replay — a producer may retire while a consumer still reads its
//     result through prod;
//   - the store's own sqEntry, released when the entry leaves the SQ
//     (stores retire before they dequeue);
//   - m.fetchBlocked (an unresolved branch/JALR, read by fetch after it
//     may have left the ROB);
//   - m.specBranch (the unresolved mispredicted branch wrong-path fetch
//     runs behind, read by the squash logic at resolution);
//   - the fence queue (read by the memory-issue check until the fence
//     completes).
//
// m.producer, the ROB ring, and the replay queue deliberately hold
// uncounted pointers: each only ever references in-flight (non-retired)
// µops, and a µop is recycled only once it is BOTH retired and
// unreferenced. u.fusedProd aliases u.prod[0] and needs no count of its
// own.

// allocUop returns a zeroed µop.
func (m *Machine) allocUop() *uop {
	n := len(m.uopPool)
	if n == 0 {
		m.uopAllocated++
		return &uop{}
	}
	u := m.uopPool[n-1]
	m.uopPool[n-1] = nil
	m.uopPool = m.uopPool[:n-1]
	u.pooled = false
	return u
}

// freeUop recycles u. Double frees indicate a reference-counting bug and
// fail the machine loudly rather than corrupting an unrelated µop.
func (m *Machine) freeUop(u *uop) {
	if u.pooled {
		m.fail("pool: double free of µop #%d (pc=%d)", u.seq, u.pc)
		return
	}
	*u = uop{pooled: true}
	m.uopPool = append(m.uopPool, u)
}

// unref drops one counted reference; the last reference to a retired µop
// recycles it (retire itself frees µops that are already unreferenced).
func (m *Machine) unref(u *uop) {
	u.refs--
	if u.refs == 0 && u.stage == stRetired {
		m.freeUop(u)
	}
}

// releaseProds drops u's producer references (idempotent: prod entries are
// nilled as they are released). Called when u latches operands and issues,
// and when a squash resets a still-waiting u for replay.
func (m *Machine) releaseProds(u *uop) {
	for i, p := range u.prod {
		if p != nil {
			u.prod[i] = nil
			m.unref(p)
		}
	}
}

// allocSQ returns a store-queue entry bound to store µop u, holding one
// reference to it for the entry's lifetime.
func (m *Machine) allocSQ(u *uop) *sqEntry {
	var e *sqEntry
	if n := len(m.sqPool); n > 0 {
		e = m.sqPool[n-1]
		m.sqPool[n-1] = nil
		m.sqPool = m.sqPool[:n-1]
	} else {
		m.sqAllocated++
		e = &sqEntry{}
	}
	e.u = u
	u.sqe = e
	u.refs++
	return e
}

// freeSQ recycles a store-queue entry and drops its hold on the store.
func (m *Machine) freeSQ(e *sqEntry) {
	u := e.u
	*e = sqEntry{}
	m.sqPool = append(m.sqPool, e)
	u.sqe = nil
	m.unref(u)
}

// popSQHead removes and recycles the head store-queue entry, keeping the
// slice's backing array (the SQ is bounded by SQSize, so the shift is a
// handful of pointer moves and the queue never reallocates in steady
// state).
func (m *Machine) popSQHead() {
	e := m.sq[0]
	n := len(m.sq)
	copy(m.sq, m.sq[1:])
	m.sq[n-1] = nil
	m.sq = m.sq[:n-1]
	m.freeSQ(e)
}

// reclaimInFlight returns every in-flight µop and SQ entry to the pools
// and empties the ROB, SQ, replay and fence queues — the start-of-Run
// reset. After a clean run everything is already drained and this is a
// no-op; after an aborted run (watchdog, MaxCycles, fault campaigns) it is
// what keeps the pools from leaking. A store µop can be reachable through
// both the ROB and its SQ entry, so the pooled flag guards re-free here.
//
// Producer references are released first, for every reachable µop: a
// consumer still waiting to issue may hold the only reference to a
// producer that already retired and left every queue, and freeing the
// consumer without the unref would leak that producer permanently (the
// pool would quietly re-allocate a replacement on every aborted run).
// The release pass must finish before any force-free below — unref on an
// already-recycled µop corrupts the fresh pool entry's refcount.
func (m *Machine) reclaimInFlight() {
	for i := 0; i < m.robN; i++ {
		m.releaseProds(m.robBuf[(m.robHead+i)&(len(m.robBuf)-1)])
	}
	for _, u := range m.replay {
		m.releaseProds(u)
	}
	if m.fetchBlocked != nil {
		m.releaseProds(m.fetchBlocked)
	}
	for i := 0; i < m.robN; i++ {
		slot := (m.robHead + i) & (len(m.robBuf) - 1)
		u := m.robBuf[slot]
		m.robBuf[slot] = nil
		// Return the physical register held by every in-flight writer —
		// the same accounting squashTail does. Without it each abort
		// leaks PRF entries until rename stalls the machine permanently.
		// (Replay-queue µops were already accounted at their squash; the
		// ROB holds every other non-retired µop exactly once.)
		if u.t != nil && u.t.writesReg {
			if u.wroteback {
				if m.vf.Release(u.result) {
					m.prfFree++
				}
			} else if u.renamed {
				m.prfFree++
			}
		}
		if !u.pooled {
			m.freeUop(u)
		}
	}
	m.robHead, m.robN = 0, 0
	for i := range m.dispW {
		m.dispW[i] = 0
		m.execW[i] = 0
	}
	for i, e := range m.sq {
		m.sq[i] = nil
		if e.u != nil && !e.u.pooled {
			m.freeUop(e.u)
		}
		*e = sqEntry{}
		m.sqPool = append(m.sqPool, e)
	}
	m.sq = m.sq[:0]
	for i, u := range m.replay {
		m.replay[i] = nil
		if !u.pooled {
			m.freeUop(u)
		}
	}
	m.replay = m.replay[:0]
	if u := m.fetchBlocked; u != nil {
		m.fetchBlocked = nil
		if !u.pooled {
			m.freeUop(u)
		}
	}
	if u := m.specBranch; u != nil {
		m.specBranch = nil
		if !u.pooled {
			m.freeUop(u)
		}
	}
	m.wrongPathPC = -1
	m.wrongPathN = 0
	for i, u := range m.fenceQ {
		m.fenceQ[i] = nil
		if !u.pooled {
			m.freeUop(u)
		}
	}
	m.fenceQ = m.fenceQ[:0]
}
