package pipeline

import (
	"testing"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/mem"
	"pandora/internal/obs"
)

func benchMachine(b *testing.B, cfg Config) *Machine {
	b.Helper()
	m, err := New(cfg, mem.New(), cache.MustNewHierarchy(cache.DefaultHierConfig()))
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	return m
}

// benchRun measures whole-Run throughput of the allocKernel loop and
// reports simulated cycles per wall-clock second — the same figure of
// merit `pandora bench -cycles` gates on.
func benchRun(b *testing.B, cfg Config) {
	m := benchMachine(b, cfg)
	prog := asm.MustAssemble(allocKernel)
	if _, err := m.Run(prog); err != nil { // warm pools and caches
		b.Fatalf("Run: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := m.Run(prog)
		if err != nil {
			b.Fatalf("Run: %v", err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkCycleLoop is the headline number: the bitset scheduler on the
// default configuration.
func BenchmarkCycleLoop(b *testing.B) {
	benchRun(b, DefaultConfig())
}

// BenchmarkCycleLoopLinear runs the same workload through the reference
// linear-walk candidate gatherer (Config.LinearScheduler) — the
// issue-wakeup comparison at machine scale.
func BenchmarkCycleLoopLinear(b *testing.B) {
	cfg := DefaultConfig()
	cfg.LinearScheduler = true
	benchRun(b, cfg)
}

// BenchmarkCycleLoopProbe measures the enabled-probe overhead: every
// pipeline/cache/µopt event flows through a counting probe.
func BenchmarkCycleLoopProbe(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Probe = &countProbe{}
	benchRun(b, cfg)
}

// BenchmarkFetchDecode measures prepareProgram — the per-Run decode into
// the µop template cache that replaced per-fetch ClassOf/Writes/Uses
// re-derivation.
func BenchmarkFetchDecode(b *testing.B) {
	m := benchMachine(b, DefaultConfig())
	prog := asm.MustAssemble(allocKernel)
	m.prepareProgram(prog)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.prepareProgram(prog)
	}
}

// BenchmarkIssueWakeup compares one candidate-gather pass over a
// half-drained ROB: the bitset iteration against the linear stage scan it
// replaced. The ROB holds 8 dispatched µops out of 64 slots — the shape
// the cycle loop sees most (a mostly-empty window with a few waiters).
func BenchmarkIssueWakeup(b *testing.B) {
	setup := func(b *testing.B) *Machine {
		b.Helper()
		m := benchMachine(b, DefaultConfig())
		m.prepareProgram(asm.MustAssemble(allocKernel))
		for i := 0; i < m.cfg.ROBSize; i++ {
			u := m.allocUop()
			u.t = &m.tmpl[0]
			u.seq = uint64(i + 1)
			m.robPush(u)
			if i%8 == 0 {
				u.stage = stDispatched
				m.markDispatched(u)
			} else {
				u.stage = stExecuting
				m.markExecuting(u)
			}
		}
		return m
	}
	b.Run("bitset", func(b *testing.B) {
		m := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.issueScratch = m.gatherMasked(m.dispW, m.issueScratch[:0])
		}
	})
	b.Run("linear", func(b *testing.B) {
		m := setup(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.issueScratch = m.gatherStage(stDispatched, m.issueScratch[:0])
		}
	})
}

// BenchmarkSnapshotRestore measures the per-Run counter bookkeeping:
// snapshotting the metrics registry and producing the run delta, plus the
// oracle-memory restore (CloneInto), the two fixed costs bounding how
// cheap a short Run can be.
func BenchmarkSnapshotRestore(b *testing.B) {
	b.Run("registry", func(b *testing.B) {
		m := benchMachine(b, DefaultConfig())
		var start, end, diff obs.Snapshot
		m.reg.SnapshotInto(&start)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.reg.SnapshotInto(&end)
			end.DeltaInto(start, &diff)
		}
	})
	b.Run("clone-into", func(b *testing.B) {
		src := mem.New()
		for i := uint64(0); i < 8; i++ {
			src.Write(i<<12, 8, i) // 8 pages
		}
		clone := src.Clone()
		clone.Write(0, 8, 99) // a private COW page to refresh
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			src.CloneInto(clone)
		}
	})
}
