package pipeline

import (
	"pandora/internal/isa"
	"pandora/internal/taint"
)

// uopStage is a µop's position in its lifecycle.
type uopStage uint8

const (
	stDispatched uopStage = iota // in ROB/IQ, waiting to issue
	stExecuting                  // issued, completing at doneC
	stDone                       // result available
	stRetired
)

// uop is one dynamic instruction in flight, carrying both the oracle's
// architectural facts (for verification and fetch steering) and the
// timing model's own computed values.
type uop struct {
	seq   uint64 // dynamic sequence number (program order)
	pc    int64
	inst  isa.Inst
	class isa.Class

	// t is the decoded template for this PC: the per-program-immutable
	// facts (register names, immediate rule, static prediction) fetch
	// stamps instead of re-deriving. Valid for the µop's whole lifetime,
	// including across squash/replay (the PC does not change).
	t *uopTemplate

	// slot is the µop's physical ROB ring slot — the bit index in the
	// scheduler masks. Valid while the µop is in the ROB.
	slot int

	// refs counts the live references that can outlast the µop's ROB
	// residence (see pool.go); a retired µop recycles when it hits zero.
	refs int32
	// pooled marks a µop currently in the free list (double-free guard).
	pooled bool
	// sqe is the store's queue entry (stores only; nil once released).
	sqe *sqEntry

	// Oracle facts, captured when the control-flow oracle executed this
	// instruction: the correct-path next PC, branch outcome, and (for
	// dest-writing ops) the correct result for retire-time verification.
	oracleResult uint64
	oracleTaken  bool
	nextPC       int64

	// Fetch-time prediction bookkeeping.
	predictedTaken bool
	mispredicted   bool // direction prediction was wrong (or JALR)

	// wrongPath marks a µop fetched down the predicted path of an
	// unresolved mispredicted branch: it carries template facts only (the
	// oracle never executed it), must never retire, and is discarded —
	// not replayed — at the squash.
	wrongPath bool
	// specForwarded marks a load that consumed predictively forwarded
	// store data (Speculation.StLF); retire verifies it against the
	// resolved store queue and replays on a mismatch.
	specForwarded bool
	// specData marks a µop whose value may derive from an unverified
	// speculative forward (the forwarded load itself, and transitively
	// any consumer that latched such a producer). Oracle-divergence
	// invariants are deferred for these µops: a wrong value is resolved
	// by the forwarding replay, not a machine failure.
	specData bool

	// Pipeline-computed values.
	srcVals  [2]uint64 // operand values read at issue
	result   uint64    // destination value (valid once done)
	addr     uint64    // memory address (loads/stores, valid once executed)
	memWidth int
	storeVal uint64 // store data (valid once executed)

	// Dataflow: producers of this µop's source registers still in flight
	// at rename time (nil entries mean the committed register file value
	// is current).
	prod [2]*uop

	// tainted marks values derived from RDCYCLE: correct in the pipeline,
	// unverifiable against the oracle.
	tainted bool

	// labels is the secret-label set of this µop's value (Config.Taint):
	// the union of its source labels, latched at issue like srcVals, plus
	// memory labels for loads and the sticky control set at retire.
	labels taint.LabelSet
	// obsMask dedupes per-class leak events for trigger conditions that
	// are re-evaluated every cycle the µop waits to issue.
	obsMask uint8

	stage   uopStage
	fetchC  int64
	issueC  int64
	doneC   int64
	retireC int64

	// Value prediction state (loads). predicted is live while consumers
	// may use the prediction; wasPredicted survives until retire for
	// predictor training/accounting.
	predicted    bool
	wasPredicted bool
	predictedVal uint64

	// reused marks a computation-reuse hit (skipped the functional unit).
	reused bool
	// fusedProd, when non-nil, is the ADDI this load is µ-op-fused with:
	// the pair issues as one, so the load may read the ADDI's result the
	// cycle it executes instead of waiting for completion.
	fusedProd *uop
	// packed marks an operand-packing co-issue (pipeline compression).
	packed bool
	// sharedReg marks that RFC returned this µop's physical register to
	// the free pool at writeback.
	sharedReg bool
	// renamed/wroteback track PRF accounting for squash undo.
	renamed   bool
	wroteback bool

	// stuck marks a µop whose issue wakeup was dropped by fault injection:
	// the scheduler never reconsiders it, so once it is oldest the machine
	// livelocks (the watchdog's canonical prey). Cleared on replay.
	stuck bool

	// replayed counts how many times this µop was squashed and replayed.
	replayed int
}

// obsMask bits: one per issue-loop observer that would otherwise fire
// again every cycle the µop retries issue.
const (
	obsSimplify uint8 = 1 << iota
	obsPack
	obsReuse
)

// writesReg reports whether the µop produces a register result.
func (u *uop) writesReg() bool {
	return u.t.writesReg
}

// srcReg returns the architectural name of source i (X0 when the operand
// is absent or an immediate).
func (u *uop) srcReg(i int) isa.Reg {
	if i == 0 {
		return u.t.src1
	}
	return u.t.src2
}

// srcReady reports whether source i is available at cycle c, honoring
// value-predicted producers and µ-op fusion.
func (u *uop) srcReady(i int, c int64) bool {
	p := u.prod[i]
	if p == nil {
		return true
	}
	if p.stage == stDone || p.stage == stRetired {
		return p.doneC <= c
	}
	// A fused pair issues as one µop: the load may proceed the same
	// cycle its ADDI half issues (the result is internally forwarded;
	// the issue scan visits the older half first).
	if p == u.fusedProd && p.stage == stExecuting && p.issueC <= c {
		return true
	}
	// A value-predicted load's consumers may proceed with the predicted
	// value one cycle after the load dispatched.
	if p.predicted {
		return p.fetchC < c
	}
	return false
}

// srcValue returns the value of source i at issue time. pre: srcReady.
func (u *uop) srcValue(i int, committed *[isa.NumRegs]uint64) uint64 {
	p := u.prod[i]
	if p == nil {
		return committed[u.srcReg(i)]
	}
	if p.stage == stDone || p.stage == stRetired {
		return p.result
	}
	if p == u.fusedProd && p.stage == stExecuting {
		return p.result // ALU results are computed at issue
	}
	return p.predictedVal
}

// srcLabels returns the secret labels of source i, mirroring srcValue's
// resolution: committed shadow register, in-flight producer labels, or —
// for a value-predicted producer whose real result is not available —
// the shadow of the predictor's table entry for that load PC.
func (u *uop) srcLabels(i int, st *taint.State) taint.LabelSet {
	p := u.prod[i]
	if p == nil {
		return st.Regs[u.srcReg(i)]
	}
	if p.stage == stDone || p.stage == stRetired {
		return p.labels
	}
	if p == u.fusedProd && p.stage == stExecuting {
		return p.labels
	}
	return st.Pred[p.pc]
}

// srcTainted reports whether source i carries a RDCYCLE-derived value.
func (u *uop) srcTainted(i int, committedTaint *[isa.NumRegs]bool) bool {
	p := u.prod[i]
	if p == nil {
		return committedTaint[u.srcReg(i)]
	}
	return p.tainted
}

// ssState tracks the silent-store check for one store-queue entry
// (Figure 4 of the paper).
type ssState uint8

const (
	ssNone     ssState = iota // no SS-Load issued yet
	ssPending                 // SS-Load in flight
	ssReturned                // SS-Load returned; ssMatch says if values matched
	ssFailed                  // no free load port (Case C) — store is not a candidate
)

// sqEntry is one store-queue slot. Entries are allocated at rename (so a
// full SQ stalls rename — the amplification gadget's lever) and released
// at dequeue.
type sqEntry struct {
	u         *uop
	addrReady bool

	ss        ssState
	ssReturnC int64
	ssValue   uint64 // value the SS-Load read
	ssMatch   bool
	// ssLabels is the secret-label set of the bytes the SS-Load read —
	// the "old value" side of the silent-store trigger condition.
	ssLabels taint.LabelSet

	// Dequeue-in-progress state: the store was sent to the cache and
	// completes (writes memory, releases the slot) at dequeueDoneC.
	dequeuing    bool
	dequeueDoneC int64

	// headSeen records the reach-SQ-head event exactly once.
	headSeen bool
}
