// Package pipeline implements the deterministic cycle-level out-of-order
// core used by every timing experiment in this repository — the role gem5
// played for the paper's proofs of concept.
//
// The model is functionally self-contained: instruction results, load
// values (with store-to-load forwarding) and store data are computed inside
// the timing model from the dataflow graph, while a functional oracle
// (package emu, running on a copy-on-write clone of data memory) steers
// fetch down the correct path and cross-checks every retired result.
// Programs therefore cannot diverge silently: any simulator bug that
// corrupts a value fails loudly at retire.
//
// All seven optimization classes studied by the paper plug into the
// stages: computation simplification and reuse and operand packing into
// issue/execute, value prediction into load dispatch/writeback (with full
// squash-and-replay), register-file compression into rename/retire free-
// list accounting, silent stores into the store queue (Lepak–Lipasti
// read-port stealing, Figure 4), and data memory-dependent prefetchers
// observe the cache hierarchy (package dmp).
package pipeline

import (
	"fmt"

	"pandora/internal/cache"
	"pandora/internal/faults"
	"pandora/internal/obs"
	"pandora/internal/taint"
	"pandora/internal/uopt"
)

// SilentStoreScheme selects how silent-store candidacy is checked.
// "Different proposals implement checking in different ways, in different
// pipeline stages" (Section IV-C1).
type SilentStoreScheme uint8

const (
	// SSReadPortStealing issues an SS-Load through a free load port as
	// soon as the store's address resolves (Lepak & Lipasti's free-
	// silent-store-squashing; the scheme the paper implements and
	// Figure 4 describes).
	SSReadPortStealing SilentStoreScheme = iota
	// SSLSQCompare compares the in-flight store against an older
	// in-flight store to the same address in the load-store queue — no
	// memory read at all, but it only catches store pairs that overlap
	// in flight.
	SSLSQCompare
)

func (s SilentStoreScheme) String() string {
	if s == SSLSQCompare {
		return "lsq-compare"
	}
	return "read-port-stealing"
}

// SilentStoreConfig enables and parameterizes the silent-store
// implementation (Section V-A1 of the paper; Lepak & Lipasti, "Silent
// Stores for Free", MICRO'00).
type SilentStoreConfig struct {
	// Scheme selects the candidacy check.
	Scheme SilentStoreScheme
	// Retry lets the SS-Load re-attempt issue on later cycles when no
	// load port is free. The paper's Figure 4 Case C corresponds to
	// Retry=false (a single attempt; failure means the store is simply
	// not a silent-store candidate). Read-port stealing only.
	Retry bool
}

// SpeculationConfig enables control- and memory-speculation: wrong-path
// fetch past mispredicted branches (with full squash recovery) and a
// store-to-load forwarding predictor that forwards before the store
// address resolves (with replay on misprediction). Nil disables all of it
// and the pipeline behaves exactly as the non-speculative machine — the
// property the differential oracle's baseline masks rely on.
type SpeculationConfig struct {
	// WrongPath lets fetch continue down the predicted path of a
	// mispredicted conditional branch instead of stalling; the wrong-path
	// µops rename, issue and access the cache, and are squashed (never
	// retired) when the branch resolves.
	WrongPath bool
	// MaxWrongPath caps how many wrong-path µops may be fetched per
	// outstanding mispredicted branch (0 means ROBSize).
	MaxWrongPath int

	// Bimodal replaces the static BTFN direction prediction with a table
	// of 2-bit saturating counters indexed by PC, trained at retire.
	Bimodal bool
	// BimodalBits is log2 of the counter-table size (0 means 10).
	BimodalBits int

	// StLF enables the store-to-load forwarding predictor: a load whose
	// older stores have unresolved addresses may speculatively consume the
	// youngest such store's data when the per-PC confidence counter is
	// high, verifying at retire and replaying on a mismatch (the
	// Store-to-Leak Forwarding substrate).
	StLF bool
	// StLFBits is log2 of the confidence-table size (0 means 8).
	StLFBits int
}

func (s *SpeculationConfig) maxWrongPath(robSize int) int {
	if s.MaxWrongPath > 0 {
		return s.MaxWrongPath
	}
	return robSize
}

func (s *SpeculationConfig) bimodalBits() int {
	if s.BimodalBits > 0 {
		return s.BimodalBits
	}
	return 10
}

func (s *SpeculationConfig) stlfBits() int {
	if s.StLFBits > 0 {
		return s.StLFBits
	}
	return 8
}

// Config parameterizes the core. The zero value is not valid; use
// DefaultConfig and adjust.
type Config struct {
	FetchWidth  int
	RetireWidth int

	ROBSize  int
	IQSize   int
	LQSize   int
	SQSize   int
	PhysRegs int

	ALUPorts    int
	LoadPorts   int
	StorePorts  int
	MulDivUnits int

	ALULat int
	MulLat int
	DivLat int

	// BranchPenalty is the fetch-redirect bubble after a mispredicted
	// branch or an indirect jump resolves. Direction prediction is static
	// BTFN (backward taken, forward not-taken); JALR always redirects.
	BranchPenalty int
	// SquashPenalty is the refetch bubble after a value-misprediction
	// squash.
	SquashPenalty int
	// ForwardLat is the latency of a load fully satisfied by
	// store-to-load forwarding.
	ForwardLat int
	// StoreAddrLat is the store address-generation latency (0 means 1).
	// Widening it opens the window in which a load's older stores are
	// unresolved — the window the store-to-load forwarding predictor bets
	// on.
	StoreAddrLat int

	// Speculation, when non-nil, enables wrong-path fetch and the
	// store-to-load forwarding predictor (see SpeculationConfig). Nil is
	// bit-identical to the non-speculative machine.
	Speculation *SpeculationConfig

	// MaxCycles bounds simulation (guards against livelock); Run returns
	// an error when exceeded.
	MaxCycles int64

	// Cancel, when non-nil, is the cooperative cancellation flag: raising
	// it from any goroutine makes Run abort with ErrCancelled at its next
	// checkpoint (every cancelCheckInterval cycles). This is how a job
	// deadline stops a simulation in wall-clock time — MaxCycles bounds
	// simulated time only. Nil costs one pointer compare per cycle.
	Cancel *CancelFlag

	// RecordEvents enables the per-µop event log used to render the
	// Figure 4 timelines.
	RecordEvents bool

	// Probe, when non-nil, receives a typed obs.Event for every pipeline,
	// cache, optimization, taint and fault occurrence (the observability
	// layer; see internal/obs). New wires the same probe into the cache
	// hierarchy, the taint engine and the fault injector. Nil costs
	// nothing: every emission site is guarded by a single nil check.
	Probe obs.Probe

	// Watchdog, when non-nil, enables the forward-progress supervisor: a
	// run that stops retiring for the configured window aborts with a
	// StallError carrying a structured CoreDump, and every other failure
	// (invariant violation, oracle mismatch, MaxCycles) is wrapped with
	// the same post-mortem. Nil preserves the bare legacy errors.
	Watchdog *WatchdogConfig

	// Faults, when non-nil, attaches a deterministic fault injector
	// (internal/faults): its plan decides which single structural fault —
	// a PRF/LSQ/forwarding bit flip, a dropped issue wakeup, a stuck
	// fence, a delayed fill, corrupted cache state — fires, and when. The
	// injector is single-run state; nil changes nothing.
	Faults *faults.Injector

	// CheckInvariants enables per-cycle structural self-checks: ROB
	// program order and in-order retire, store-queue ordering and dequeue
	// discipline, store-to-load forwarding recomputed by an independent
	// algorithm, and the cache hierarchy's inclusivity and replacement-
	// state sanity. A violation aborts the run with a cycle-stamped error.
	// Off by default — the checks walk the ROB, SQ and both cache levels
	// every cycle; they exist for the differential-testing harness
	// (internal/diffcheck), not for production sweeps.
	CheckInvariants bool

	// LinearScheduler selects the reference candidate-gathering path for
	// issue and complete: a full program-order ROB scan testing each
	// occupant's stage, exactly the walk the dispW/execW bitset iteration
	// replaced. Timing, stats, events and leak reports are identical by
	// construction (the equivalence tests in internal/diffcheck diff the
	// two paths cycle-for-cycle); the linear path exists as the oracle for
	// those tests, not for production use.
	LinearScheduler bool

	// Optimization classes (nil/zero disables each).
	SilentStores *SilentStoreConfig
	Simplifier   *uopt.Simplifier
	Packer       *uopt.Packer
	Reuse        *uopt.ReuseBuffer
	Predictor    uopt.ValuePredictor
	RFC          uopt.RFCMode

	// SQOutOfOrderDequeue lets retired stores dequeue past a blocked
	// older store when their addresses do not overlap (same-address order
	// is always preserved). The default — in-order dequeue, as in the
	// RISC-V BOOM the paper cites — is what gives the amplification
	// gadget its head-of-line blocking; this switch is the ablation for
	// that design choice.
	SQOutOfOrderDequeue bool

	// FuseAddiLoad enables µ-op fusion of an ADDI immediately followed by
	// a load consuming its result (address-generation fusion, the
	// "limited form of continuous optimization implemented today" the
	// paper's Section VI-B cites). The fusion predicate is purely
	// structural — opcodes and register names — so, unlike strength
	// reduction, it creates no data-dependent observable: the safe end of
	// the continuous-optimization spectrum.
	FuseAddiLoad bool

	// Taint, when non-nil, attaches the secret-label shadow engine: µops
	// carry label sets alongside their values, shadow registers/memory
	// are updated in program order at retire/store-perform, and each
	// enabled optimization's trigger condition reports to the taint
	// observers when it reads labeled state (`pandora scan`). The shadow
	// is passive — it never changes timing or architectural results.
	Taint *taint.State

	// CoTenant models an SMT sibling thread sharing the execution ports
	// (Section IV-B3's active attacker: "a receiver in a sibling SMT
	// thread can perform an active attack by setting its own instruction
	// operands such that the packing optimization occurs strictly as a
	// function of a victim instruction's operands").
	CoTenant *CoTenantConfig
}

// CoTenantConfig describes the sibling thread's instruction stream: an
// endless supply of single-cycle integer ops with fixed operand values.
type CoTenantConfig struct {
	// OperandA and OperandB are the sibling's instruction operands —
	// the attacker-controlled half of the packing predicate.
	OperandA, OperandB uint64
	// OpsPerCycle is how many sibling ops are ready each cycle (default 1).
	OpsPerCycle int
}

// DefaultConfig returns a modest 4-wide out-of-order core resembling the
// paper's simulated baseline.
func DefaultConfig() Config {
	return Config{
		FetchWidth:    4,
		RetireWidth:   4,
		ROBSize:       64,
		IQSize:        32,
		LQSize:        16,
		SQSize:        16,
		PhysRegs:      96,
		ALUPorts:      2,
		LoadPorts:     2,
		StorePorts:    1,
		MulDivUnits:   1,
		ALULat:        1,
		MulLat:        4,
		DivLat:        20,
		BranchPenalty: 6,
		SquashPenalty: 8,
		ForwardLat:    2,
		MaxCycles:     50_000_000,
	}
}

func (c Config) validate(h *cache.Hierarchy) error {
	if h == nil {
		return fmt.Errorf("pipeline: nil cache hierarchy")
	}
	checks := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth}, {"RetireWidth", c.RetireWidth},
		{"ROBSize", c.ROBSize}, {"IQSize", c.IQSize},
		{"LQSize", c.LQSize}, {"SQSize", c.SQSize},
		{"ALUPorts", c.ALUPorts}, {"LoadPorts", c.LoadPorts},
		{"StorePorts", c.StorePorts}, {"MulDivUnits", c.MulDivUnits},
		{"ALULat", c.ALULat}, {"MulLat", c.MulLat}, {"DivLat", c.DivLat},
		{"ForwardLat", c.ForwardLat},
	}
	for _, ck := range checks {
		if ck.v <= 0 {
			return fmt.Errorf("pipeline: %s must be positive, got %d", ck.name, ck.v)
		}
	}
	if c.PhysRegs < 40 {
		return fmt.Errorf("pipeline: PhysRegs must be at least 40 (32 architectural + headroom), got %d", c.PhysRegs)
	}
	if c.BranchPenalty < 0 || c.SquashPenalty < 0 {
		return fmt.Errorf("pipeline: penalties must be non-negative")
	}
	if c.StoreAddrLat < 0 {
		return fmt.Errorf("pipeline: StoreAddrLat must be non-negative, got %d", c.StoreAddrLat)
	}
	if sp := c.Speculation; sp != nil {
		if sp.MaxWrongPath < 0 {
			return fmt.Errorf("pipeline: Speculation.MaxWrongPath must be non-negative, got %d", sp.MaxWrongPath)
		}
		if sp.BimodalBits < 0 || sp.BimodalBits > 24 {
			return fmt.Errorf("pipeline: Speculation.BimodalBits must be in [0,24], got %d", sp.BimodalBits)
		}
		if sp.StLFBits < 0 || sp.StLFBits > 24 {
			return fmt.Errorf("pipeline: Speculation.StLFBits must be in [0,24], got %d", sp.StLFBits)
		}
	}
	if c.MaxCycles <= 0 {
		return fmt.Errorf("pipeline: MaxCycles must be positive")
	}
	return nil
}

// Stats aggregates run statistics. It stays a plain comparable struct —
// the fault campaign and diffcheck compare whole Stats values — but
// direct field writes are confined to this package: external readers use
// Machine.Stats() (a compatibility getter returning a copy) or the named
// counters on Machine.Metrics().
type Stats struct {
	Cycles  int64
	Retired uint64
	Fetched uint64

	BranchMispredicts uint64
	ValueSquashes     uint64
	SquashedUops      uint64

	WrongPathFetched   uint64 // µops fetched down a predicted (wrong) path
	MispredictSquashes uint64 // wrong-path squashes at branch resolution
	SpecForwards       uint64 // predictive store-to-load forwards
	SpecForwardReplays uint64 // spec forwards that failed retire verification

	LoadsForwarded uint64
	LoadsFromCache uint64

	SilentStores    uint64 // stores dequeued silently (Case A)
	NonSilentChecks uint64 // SS-Loads that returned a mismatch (Case B)
	SSLoadNoPort    uint64 // Case C
	SSLoadLate      uint64 // Case D
	SSLoadsIssued   uint64

	ReuseHits      uint64
	Packed         uint64
	RenameStallPRF uint64
	RenameStallSQ  uint64
	RenameStallROB uint64
	RenameStallIQ  uint64
	RenameStallLQ  uint64
}

// IPC returns retired instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}
