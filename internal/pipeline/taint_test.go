package pipeline_test

import (
	"math/rand"
	"testing"

	"pandora/internal/cache"
	"pandora/internal/diffcheck"
	"pandora/internal/emu"
	"pandora/internal/isa"
	"pandora/internal/mem"
	"pandora/internal/pipeline"
	"pandora/internal/taint"
	"pandora/internal/uopt"
)

// shadowConfigs are the machine variants the equivalence test covers.
// Value prediction is deliberately absent: its consumers may read the
// predictor-table shadow (taint.State.Pred) while the producing load is
// in flight, an over-approximation the in-order emulator has no
// counterpart for.
func shadowConfigs() map[string]func() pipeline.Config {
	return map[string]func() pipeline.Config{
		"baseline": pipeline.DefaultConfig,
		"silentstores": func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.SilentStores = &pipeline.SilentStoreConfig{}
			return c
		},
		"silentstores-lsq": func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.SilentStores = &pipeline.SilentStoreConfig{Scheme: pipeline.SSLSQCompare}
			return c
		},
		"compsimp": func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.Simplifier = &uopt.Simplifier{ZeroSkipMul: true, TrivialALU: true, EarlyExitDiv: true}
			return c
		},
		"packing": func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.Packer = uopt.NewPacker()
			return c
		},
		"reuse-sv": func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.Reuse = uopt.NewReuseBuffer(uopt.SchemeSv, 64)
			return c
		},
		"rfc": func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.RFC = uopt.RFCAnyValue
			return c
		},
		"fusion": func() pipeline.Config {
			c := pipeline.DefaultConfig()
			c.FuseAddiLoad = true
			return c
		},
	}
}

// TestShadowEquivalence checks that the pipeline's retire-time label
// propagation computes exactly the emulator's shadow state: same final
// register labels, same shadow memory, same control set — for the same
// program and secret region, across optimization configs. The pipeline's
// speculation, forwarding and optimizations may reorder execution, but
// retire order is program order, so the shadows must agree bit for bit.
func TestShadowEquivalence(t *testing.T) {
	for name, mk := range shadowConfigs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 40; seed++ {
				rng := rand.New(rand.NewSource(seed))
				prog := diffcheck.Generate(rng)
				bases, span := diffcheck.ScratchRegions()
				sec := taint.Secret{
					Name: "s",
					Base: bases[rng.Intn(len(bases))] + uint64(rng.Intn(int(span)/16))*8,
					Len:  uint64(8 * (1 + rng.Intn(4))),
				}

				memE := mem.New()
				diffcheck.InitMemory(memE)
				stE := taint.NewState()
				if _, err := stE.DefineSecret(sec); err != nil {
					t.Fatal(err)
				}
				mcE := emu.New(memE)
				stE.Attach(mcE)
				if err := mcE.Run(prog, 200000); err != nil {
					t.Fatalf("seed %d: emu: %v", seed, err)
				}

				memP := mem.New()
				diffcheck.InitMemory(memP)
				stP := taint.NewState()
				if _, err := stP.DefineSecret(sec); err != nil {
					t.Fatal(err)
				}
				cfg := mk()
				cfg.Taint = stP
				cfg.CheckInvariants = true
				m := pipeline.MustNew(cfg, memP, cache.MustNewHierarchy(cache.DefaultHierConfig()))
				if _, err := m.Run(prog); err != nil {
					t.Fatalf("seed %d: pipeline: %v", seed, err)
				}

				if stE.Control != stP.Control {
					t.Fatalf("seed %d: control set: emu=%v pipeline=%v", seed, stE.Control, stP.Control)
				}
				for r := 1; r < isa.NumRegs; r++ {
					if stE.Regs[r] != stP.Regs[r] {
						t.Fatalf("seed %d: x%d labels: emu=%v pipeline=%v", seed, r, stE.Regs[r], stP.Regs[r])
					}
				}
				if stE.Mem.Labeled() != stP.Mem.Labeled() {
					t.Fatalf("seed %d: labeled byte count: emu=%d pipeline=%d",
						seed, stE.Mem.Labeled(), stP.Mem.Labeled())
				}
				stE.Mem.Each(func(a uint64, l taint.LabelSet) {
					if got := stP.Mem.Get(a); got != l {
						t.Fatalf("seed %d: shadow mem[%#x]: emu=%v pipeline=%v", seed, a, l, got)
					}
				})
			}
		})
	}
}
