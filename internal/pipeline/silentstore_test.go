package pipeline

import (
	"testing"

	"pandora/internal/asm"
	"pandora/internal/cache"
	"pandora/internal/mem"
)

// ssSetup returns a machine with silent stores enabled, mem[0x800]=7 and
// the line warmed into the cache.
func ssSetup(t *testing.T, cfg Config) (*Machine, *mem.Memory) {
	t.Helper()
	mm := mem.New()
	mm.Write(0x800, 8, 7)
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	h.Access(0x800, 7, false) // warm the line
	m, err := New(cfg, mm, h)
	if err != nil {
		t.Fatal(err)
	}
	return m, mm
}

// caseASrc delays the store's retirement behind a slow divide so the
// SS-Load (issued as soon as the store's address resolves) returns before
// the store can dequeue — the paper's Figure 4 Case A when values match.
const caseASrc = `
	addi x1, x0, 0x800
	addi x2, x0, 7
	addi x9, x0, 1000
	div  x3, x9, x2      # slow older op delays in-order retire
	sd   x2, 0(x1)       # stores 7 over 7
	halt
`

func TestSilentStoreCaseA(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SilentStores = &SilentStoreConfig{}
	m, mm := ssSetup(t, cfg)
	if _, err := m.Run(asm.MustAssemble(caseASrc)); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SilentStores != 1 {
		t.Errorf("SilentStores = %d, want 1 (stats: %+v)", m.Stats().SilentStores, m.Stats())
	}
	if got := mm.Read(0x800, 8); got != 7 {
		t.Errorf("mem = %d", got)
	}
}

func TestSilentStoreCaseBValueMismatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SilentStores = &SilentStoreConfig{}
	m, mm := ssSetup(t, cfg)
	src := `
		addi x1, x0, 0x800
		addi x2, x0, 8       # differs from memory (7)
		addi x9, x0, 1000
		div  x3, x9, x2
		sd   x2, 0(x1)
		halt
	`
	if _, err := m.Run(asm.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SilentStores != 0 {
		t.Errorf("SilentStores = %d, want 0", m.Stats().SilentStores)
	}
	if m.Stats().NonSilentChecks != 1 {
		t.Errorf("NonSilentChecks = %d, want 1", m.Stats().NonSilentChecks)
	}
	if got := mm.Read(0x800, 8); got != 8 {
		t.Errorf("mem = %d, want 8 (store must still perform)", got)
	}
}

// TestSilentStoreCaseCNoPort starves the single load port with demand
// loads; the SS-Load gives up and the store is not a silent-store
// candidate even though the values match.
func TestSilentStoreCaseCNoPort(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SilentStores = &SilentStoreConfig{}
	cfg.LoadPorts = 1
	m, _ := ssSetup(t, cfg)
	src := `
		addi x1, x0, 0x800
		addi x2, x0, 7
		sd   x2, 0(x1)       # stores 7 over 7 — but SS-Load can't issue
		ld   x10, 64(x1)
		ld   x11, 128(x1)
		ld   x12, 192(x1)
		ld   x13, 256(x1)
		ld   x14, 320(x1)
		ld   x15, 384(x1)
		ld   x16, 448(x1)
		ld   x17, 512(x1)
		halt
	`
	if _, err := m.Run(asm.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SSLoadNoPort == 0 {
		t.Skipf("load port free at resolve cycle; stats: %+v", m.Stats())
	}
	if m.Stats().SilentStores != 0 {
		t.Errorf("store marked silent despite Case C: %+v", m.Stats())
	}
}

// TestSilentStoreCaseDLateReturn makes the SS-Load miss (cold line) so it
// cannot return before the store is ready to perform.
func TestSilentStoreCaseDLateReturn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SilentStores = &SilentStoreConfig{}
	mm := mem.New()
	mm.Write(0x800, 8, 7)
	h := cache.MustNewHierarchy(cache.DefaultHierConfig())
	// Line deliberately cold: the SS-Load takes the full miss latency.
	m, err := New(cfg, mm, h)
	if err != nil {
		t.Fatal(err)
	}
	src := `
		addi x1, x0, 0x800
		addi x2, x0, 7
		sd   x2, 0(x1)
		halt
	`
	if _, err := m.Run(asm.MustAssemble(src)); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SSLoadLate != 1 {
		t.Errorf("SSLoadLate = %d, want 1 (stats: %+v)", m.Stats().SSLoadLate, m.Stats())
	}
	if m.Stats().SilentStores != 0 {
		t.Errorf("late SS-Load must not mark the store silent")
	}
}

func TestSilentStoreEventTimeline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SilentStores = &SilentStoreConfig{}
	cfg.RecordEvents = true
	m, _ := ssSetup(t, cfg)
	if _, err := m.Run(asm.MustAssemble(caseASrc)); err != nil {
		t.Fatal(err)
	}
	var issueC, returnC, silentC int64 = -1, -1, -1
	for _, e := range m.Events {
		switch e.Kind {
		case EvSSLoadIssue:
			issueC = e.Cycle
		case EvSSLoadReturn:
			returnC = e.Cycle
		case EvDequeueSilent:
			silentC = e.Cycle
		}
	}
	if issueC < 0 || returnC < 0 || silentC < 0 {
		t.Fatalf("missing events: issue=%d return=%d silent=%d", issueC, returnC, silentC)
	}
	if !(issueC < returnC && returnC <= silentC) {
		t.Errorf("event order wrong: issue=%d return=%d silent=%d", issueC, returnC, silentC)
	}
}

// TestAmplificationGadgetShape is the Figure 5 mechanism at pipeline
// level: with a direct-mapped L1, a delay load (miss) followed by a
// dependent flush load that evicts the target store's line creates a
// large end-to-end timing difference between a silent and a non-silent
// target store.
func TestAmplificationGadgetShape(t *testing.T) {
	run := func(storeVal int64) int64 {
		cfg := DefaultConfig()
		cfg.SilentStores = &SilentStoreConfig{}
		cfg.SQSize = 5 // the paper's 5-entry SQ
		hcfg := cache.DefaultHierConfig()
		hcfg.L1.Ways = 1 // direct-mapped L1, as in Figure 5
		mm := mem.New()

		const (
			S = uint64(0x800)  // target store address (L1 set 0, L2 set 32)
			A = uint64(0x4040) // delay-load address: cold, different L1 set than S
		)
		mm.Write(S, 8, 7)        // stale value at S
		mm.Write(A, 8, S+0x4000) // delay load yields the first flush address
		h := cache.MustNewHierarchy(hcfg)
		h.Access(S, 7, false) // precondition: line(S) present (L1 and L2)

		m := MustNew(cfg, mm, h)
		// The flush gadget must remove line(S) from the whole hierarchy
		// (an L2 remnant would cap the stall at the L2 hit latency), so
		// it is eight loads covering S's 8-way L2 set, all dependent on
		// the delay load's result so they execute after the SS-Load has
		// returned. They share S's L1 set too (the L2 stride is a
		// multiple of the L1 stride), evicting the direct-mapped line.
		src := `
			addi x1, x0, 0x4040   # &A
			addi x3, x0, 0x800    # &S
			addi x6, x0, ` + itoa(storeVal) + `
			ld   x4, 0(x1)        # delay gadget: miss
			ld   x5, 0(x4)        # flush gadget: 8 conflicting lines
			ld   x7, 0x4000(x4)
			ld   x8, 0x8000(x4)
			ld   x9, 0xc000(x4)
			ld   x10, 0x10000(x4)
			ld   x11, 0x14000(x4)
			ld   x12, 0x18000(x4)
			ld   x13, 0x1c000(x4)
			sd   x6, 0(x3)        # target store
			halt
		`
		res, err := m.Run(asm.MustAssemble(src))
		if err != nil {
			t.Fatal(err)
		}
		if storeVal == 7 && m.Stats().SilentStores != 1 {
			t.Fatalf("matching store not silent: %+v", m.Stats())
		}
		return res.Cycles
	}

	silent := run(7)    // store matches memory → silent → no refill stall
	nonSilent := run(8) // mismatch → must refill the flushed line from memory
	gap := nonSilent - silent
	if gap < 80 {
		t.Errorf("amplification gap = %d cycles (silent=%d, non-silent=%d), want ~memory latency",
			gap, silent, nonSilent)
	}
}

func itoa(v int64) string {
	// minimal helper to splice immediates into assembly text
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
