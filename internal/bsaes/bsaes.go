// Package bsaes implements constant-time bitsliced AES-128 encryption —
// the victim of the paper's silent-store proof of concept (Section V-A3).
//
// The 128-bit state is held as eight 16-bit slices: bit p of slice i is
// bit i of state byte p (byte p = row p%4, column p/4, FIPS-197
// column-major order). The linear layers (ShiftRows, MixColumns,
// AddRoundKey) operate directly on slices; byte substitution applies a
// branchless, table-free S-box (GF(2^8) inversion by Fermat's little
// theorem plus the affine transform) to each byte position. No secret-
// dependent branches or memory indices exist anywhere in the cipher.
//
// The eight final-round slices are exactly the "eight locations storing
// intermediate values that can be used to reconstruct the AES state after
// byte substitution" that the paper's attack targets: they are 16 bits
// each, they are spilled to the victim's stack, and together with the
// ciphertext they reveal the last round key — from which the master key
// is recovered because the key schedule is invertible.
package bsaes

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// State is the bitsliced AES state: eight 16-bit planes.
type State [8]uint16

// Slice converts 16 state bytes (column-major, FIPS order) to planes.
func Slice(block []byte) State {
	var s State
	for p := 0; p < 16; p++ {
		b := block[p]
		for i := 0; i < 8; i++ {
			s[i] |= uint16(b>>i&1) << p
		}
	}
	return s
}

// Unslice converts planes back to 16 state bytes.
func (s State) Unslice() []byte {
	out := make([]byte, 16)
	for p := 0; p < 16; p++ {
		var b byte
		for i := 0; i < 8; i++ {
			b |= byte(s[i]>>p&1) << i
		}
		out[p] = b
	}
	return out
}

// gfMul multiplies in GF(2^8) mod x^8+x^4+x^3+x+1, branchlessly.
func gfMul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		p ^= a & (0 - (b & 1))
		hi := a >> 7
		a = (a << 1) ^ (0x1b & (0 - hi))
		b >>= 1
	}
	return p
}

// gfInv computes the GF(2^8) inverse as x^254 (maps 0 to 0), using the
// fixed addition chain 254 = 2+4+8+16+32+64+128 — constant time.
func gfInv(x byte) byte {
	cur := gfMul(x, x) // x^2
	acc := cur
	for i := 0; i < 6; i++ {
		cur = gfMul(cur, cur) // x^4 .. x^128
		acc = gfMul(acc, cur)
	}
	return acc
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }

// SBox is the AES S-box evaluated branchlessly: inversion then the affine
// transform.
func SBox(x byte) byte {
	inv := gfInv(x)
	return inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63
}

// subBytes applies the S-box to every byte position of the sliced state.
// Extraction and reinsertion are pure shifts/masks; no secret indexes
// memory.
func subBytes(s State) State {
	var out State
	for p := 0; p < 16; p++ {
		var b byte
		for i := 0; i < 8; i++ {
			b |= byte(s[i]>>p&1) << i
		}
		b = SBox(b)
		for i := 0; i < 8; i++ {
			out[i] |= uint16(b>>i&1) << p
		}
	}
	return out
}

// permute applies a byte-position permutation to every plane: output bit
// p comes from input bit perm[p].
func permute(s State, perm *[16]int) State {
	var out State
	for i := 0; i < 8; i++ {
		var v uint16
		for p := 0; p < 16; p++ {
			v |= s[i] >> perm[p] & 1 << p
		}
		out[i] = v
	}
	return out
}

// shiftRowsPerm: byte (r,c) takes the value of byte (r, c+r mod 4); bit
// index p = r + 4c.
var shiftRowsPerm = func() *[16]int {
	var perm [16]int
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			perm[r+4*c] = r + 4*((c+r)%4)
		}
	}
	return &perm
}()

// rotRowPerms[k]: byte (r,c) takes the value of byte (r+k mod 4, c) —
// the column rotations used by MixColumns.
var rotRowPerms = func() [4]*[16]int {
	var out [4]*[16]int
	for k := 0; k < 4; k++ {
		var perm [16]int
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				perm[r+4*c] = (r+k)%4 + 4*c
			}
		}
		p := perm
		out[k] = &p
	}
	return out
}()

// xtime multiplies every state byte by 2 in slice form.
func xtime(s State) State {
	return State{
		s[7],
		s[0] ^ s[7],
		s[1],
		s[2] ^ s[7],
		s[3] ^ s[7],
		s[4],
		s[5],
		s[6],
	}
}

func xorState(a, b State) State {
	var out State
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

// mixColumns: out = xtime(a ^ rot1(a)) ^ rot1(a) ^ rot2(a) ^ rot3(a),
// i.e. out[r] = 2·a[r] ^ 3·a[r+1] ^ a[r+2] ^ a[r+3] per column.
func mixColumns(s State) State {
	r1 := permute(s, rotRowPerms[1])
	r2 := permute(s, rotRowPerms[2])
	r3 := permute(s, rotRowPerms[3])
	return xorState(xorState(xtime(xorState(s, r1)), r1), xorState(r2, r3))
}

// ExpandKey computes the AES-128 key schedule: 11 round keys of 16 bytes.
func ExpandKey(key []byte) ([11][16]byte, error) {
	var rk [11][16]byte
	if len(key) != KeySize {
		return rk, fmt.Errorf("bsaes: key length %d, want %d", len(key), KeySize)
	}
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	rcon := byte(1)
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			t = [4]byte{SBox(t[1]) ^ rcon, SBox(t[2]), SBox(t[3]), SBox(t[0])}
			rcon = gfMul(rcon, 2)
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-4][j] ^ t[j]
		}
	}
	for r := 0; r < 11; r++ {
		for c := 0; c < 4; c++ {
			copy(rk[r][4*c:4*c+4], w[4*r+c][:])
		}
	}
	return rk, nil
}

// InvertKeySchedule recovers the master key from the round-10 key — the
// step the paper's attack uses after the silent-store channel reveals the
// final-round state ("the key expansion algorithm is invertible").
func InvertKeySchedule(round10 [16]byte) [16]byte {
	var w [44][4]byte
	for c := 0; c < 4; c++ {
		copy(w[40+c][:], round10[4*c:4*c+4])
	}
	rcons := [11]byte{}
	rc := byte(1)
	for i := 1; i <= 10; i++ {
		rcons[i] = rc
		rc = gfMul(rc, 2)
	}
	for i := 43; i >= 4; i-- {
		t := w[i-1]
		if i%4 == 0 {
			t = [4]byte{SBox(t[1]) ^ rcons[i/4], SBox(t[2]), SBox(t[3]), SBox(t[0])}
		}
		for j := 0; j < 4; j++ {
			w[i-4][j] = w[i][j] ^ t[j]
		}
	}
	var key [16]byte
	for i := 0; i < 4; i++ {
		copy(key[4*i:4*i+4], w[i][:])
	}
	return key
}

// Trace captures the observable intermediates the attack targets.
type Trace struct {
	// FinalSlices are the eight 16-bit planes of the state after the
	// last round's byte substitution and ShiftRows — the eight 16-bit
	// stack-spilled values of Section V-A3.
	FinalSlices State
	// Ciphertext is the encryption result.
	Ciphertext [16]byte
}

// Encrypt encrypts one 16-byte block under a 16-byte key.
func Encrypt(block, key []byte) ([16]byte, error) {
	tr, err := EncryptTrace(block, key)
	if err != nil {
		return [16]byte{}, err
	}
	return tr.Ciphertext, nil
}

// EncryptTrace encrypts and also returns the final-round intermediate
// slices (the attack's target values).
func EncryptTrace(block, key []byte) (Trace, error) {
	var tr Trace
	if len(block) != BlockSize {
		return tr, fmt.Errorf("bsaes: block length %d, want %d", len(block), BlockSize)
	}
	rk, err := ExpandKey(key)
	if err != nil {
		return tr, err
	}
	var rkSlices [11]State
	for r := range rk {
		rkSlices[r] = Slice(rk[r][:])
	}

	s := xorState(Slice(block), rkSlices[0])
	for r := 1; r <= 9; r++ {
		s = subBytes(s)
		s = permute(s, shiftRowsPerm)
		s = mixColumns(s)
		s = xorState(s, rkSlices[r])
	}
	s = subBytes(s)
	s = permute(s, shiftRowsPerm)
	tr.FinalSlices = s
	out := xorState(s, rkSlices[10]).Unslice()
	copy(tr.Ciphertext[:], out)
	return tr, nil
}

// RecoverRound10Key reconstructs the last round key from the recovered
// final-round slices and an observed ciphertext: K10 = state ⊕ ciphertext.
func RecoverRound10Key(finalSlices State, ciphertext [16]byte) [16]byte {
	state := finalSlices.Unslice()
	var k [16]byte
	for i := range k {
		k[i] = state[i] ^ ciphertext[i]
	}
	return k
}
