package bsaes

import (
	"bytes"
	"crypto/aes"
	"math/rand"
	"testing"
	"testing/quick"
)

// fips197Key/Plain/Cipher are the Appendix B vectors of FIPS-197.
var (
	fips197Key    = []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}
	fips197Plain  = []byte{0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37, 0x07, 0x34}
	fips197Cipher = []byte{0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a, 0x0b, 0x32}
)

func TestSBoxKnownValues(t *testing.T) {
	known := map[byte]byte{
		0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0xff: 0x16, 0x10: 0xca, 0xc5: 0xa6,
	}
	for in, want := range known {
		if got := SBox(in); got != want {
			t.Errorf("SBox(%#02x) = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestSBoxIsPermutation(t *testing.T) {
	seen := map[byte]bool{}
	for i := 0; i < 256; i++ {
		v := SBox(byte(i))
		if seen[v] {
			t.Fatalf("SBox collision at %#02x", i)
		}
		seen[v] = true
	}
}

func TestGFInv(t *testing.T) {
	if gfInv(0) != 0 {
		t.Error("gfInv(0) must be 0")
	}
	for i := 1; i < 256; i++ {
		x := byte(i)
		if gfMul(x, gfInv(x)) != 1 {
			t.Fatalf("gfInv(%#02x) wrong", x)
		}
	}
}

func TestSliceRoundTrip(t *testing.T) {
	f := func(b [16]byte) bool {
		return bytes.Equal(Slice(b[:]).Unslice(), b[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

func TestFIPS197Vector(t *testing.T) {
	ct, err := Encrypt(fips197Plain, fips197Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ct[:], fips197Cipher) {
		t.Errorf("ciphertext = %x, want %x", ct, fips197Cipher)
	}
}

// TestAgainstCryptoAES differential-tests the whole cipher against the
// standard library for random keys and blocks.
func TestAgainstCryptoAES(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		var key, pt [16]byte
		rng.Read(key[:])
		rng.Read(pt[:])
		want := make([]byte, 16)
		c, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		c.Encrypt(want, pt[:])
		got, err := Encrypt(pt[:], key[:])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:], want) {
			t.Fatalf("iter %d: got %x, want %x (key %x, pt %x)", i, got, want, key, pt)
		}
	}
}

func TestExpandKeyFirstRounds(t *testing.T) {
	// FIPS-197 Appendix A.1: w4..w7 for the same key.
	rk, err := ExpandKey(fips197Key)
	if err != nil {
		t.Fatal(err)
	}
	wantRK1 := []byte{0xa0, 0xfa, 0xfe, 0x17, 0x88, 0x54, 0x2c, 0xb1, 0x23, 0xa3, 0x39, 0x39, 0x2a, 0x6c, 0x76, 0x05}
	if !bytes.Equal(rk[1][:], wantRK1) {
		t.Errorf("round key 1 = %x, want %x", rk[1], wantRK1)
	}
	wantRK10 := []byte{0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63, 0x0c, 0xa6}
	if !bytes.Equal(rk[10][:], wantRK10) {
		t.Errorf("round key 10 = %x, want %x", rk[10], wantRK10)
	}
}

func TestInvertKeySchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		var key [16]byte
		rng.Read(key[:])
		rk, err := ExpandKey(key[:])
		if err != nil {
			t.Fatal(err)
		}
		got := InvertKeySchedule(rk[10])
		if got != key {
			t.Fatalf("inverted key = %x, want %x", got, key)
		}
	}
}

// TestAttackReconstruction is the paper's end-to-end algebra: final-round
// slices + ciphertext → round-10 key → master key.
func TestAttackReconstruction(t *testing.T) {
	var key [16]byte
	copy(key[:], fips197Key)
	tr, err := EncryptTrace(fips197Plain, key[:])
	if err != nil {
		t.Fatal(err)
	}
	k10 := RecoverRound10Key(tr.FinalSlices, tr.Ciphertext)
	recovered := InvertKeySchedule(k10)
	if recovered != key {
		t.Errorf("recovered key %x, want %x", recovered, key)
	}
}

func TestErrorCases(t *testing.T) {
	if _, err := Encrypt(make([]byte, 15), fips197Key); err == nil {
		t.Error("short block accepted")
	}
	if _, err := Encrypt(fips197Plain, make([]byte, 8)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := ExpandKey(nil); err == nil {
		t.Error("nil key accepted")
	}
}

// TestFinalSlicesMatchLastRoundAlgebra checks the documented property the
// attack relies on: FinalSlices ⊕ K10 = ciphertext.
func TestFinalSlicesMatchLastRoundAlgebra(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		var key, pt [16]byte
		rng.Read(key[:])
		rng.Read(pt[:])
		tr, err := EncryptTrace(pt[:], key[:])
		if err != nil {
			t.Fatal(err)
		}
		rk, _ := ExpandKey(key[:])
		state := tr.FinalSlices.Unslice()
		for j := 0; j < 16; j++ {
			if state[j]^rk[10][j] != tr.Ciphertext[j] {
				t.Fatalf("algebra violated at byte %d", j)
			}
		}
	}
}

func TestInvSBoxInverts(t *testing.T) {
	for i := 0; i < 256; i++ {
		if got := InvSBox(SBox(byte(i))); got != byte(i) {
			t.Fatalf("InvSBox(SBox(%#02x)) = %#02x", i, got)
		}
	}
}

func TestDecryptFIPS197(t *testing.T) {
	pt, err := Decrypt(fips197Cipher, fips197Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt[:], fips197Plain) {
		t.Errorf("decrypted %x, want %x", pt, fips197Plain)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		var key, msg [16]byte
		rng.Read(key[:])
		rng.Read(msg[:])
		ct, err := Encrypt(msg[:], key[:])
		if err != nil {
			t.Fatal(err)
		}
		pt, err := Decrypt(ct[:], key[:])
		if err != nil {
			t.Fatal(err)
		}
		if pt != msg {
			t.Fatalf("round trip failed: %x -> %x -> %x", msg, ct, pt)
		}
	}
}

func TestDecryptAgainstCryptoAES(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		var key, ct [16]byte
		rng.Read(key[:])
		rng.Read(ct[:])
		want := make([]byte, 16)
		c, err := aes.NewCipher(key[:])
		if err != nil {
			t.Fatal(err)
		}
		c.Decrypt(want, ct[:])
		got, err := Decrypt(ct[:], key[:])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:], want) {
			t.Fatalf("iter %d: got %x, want %x", i, got, want)
		}
	}
}

func TestDecryptErrors(t *testing.T) {
	if _, err := Decrypt(make([]byte, 8), fips197Key); err == nil {
		t.Error("short block accepted")
	}
	if _, err := Decrypt(fips197Cipher, make([]byte, 3)); err == nil {
		t.Error("short key accepted")
	}
}
