package bsaes

import "fmt"

// Decryption, with the same constant-time discipline as encryption: the
// inverse S-box goes through the affine inverse plus Fermat inversion,
// and the inverse linear layers are slice-domain permutations and xtime
// chains. The attack does not need decryption; a credible AES library
// does.

// InvSBox is the inverse AES S-box, evaluated branchlessly: undo the
// affine transform, then invert in GF(2^8).
func InvSBox(x byte) byte {
	// Inverse affine: s = rotl(x,1) ^ rotl(x,3) ^ rotl(x,6) ^ 0x05.
	t := rotl8(x, 1) ^ rotl8(x, 3) ^ rotl8(x, 6) ^ 0x05
	return gfInv(t)
}

// invShiftRowsPerm: byte (r,c) takes the value of byte (r, c-r mod 4).
var invShiftRowsPerm = func() *[16]int {
	var perm [16]int
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			perm[r+4*c] = r + 4*((c-r+4)%4)
		}
	}
	return &perm
}()

// invSubBytes applies the inverse S-box to every byte position.
func invSubBytes(s State) State {
	var out State
	for p := 0; p < 16; p++ {
		var b byte
		for i := 0; i < 8; i++ {
			b |= byte(s[i]>>p&1) << i
		}
		b = InvSBox(b)
		for i := 0; i < 8; i++ {
			out[i] |= uint16(b>>i&1) << p
		}
	}
	return out
}

// invMixColumns: out[r] = 14·a[r] ^ 11·a[r+1] ^ 13·a[r+2] ^ 9·a[r+3],
// built from xtime chains in slice form: with a2 = xtime(a), a4 =
// xtime(a2), a8 = xtime(a4):
//
//	9·a  = a8 ^ a
//	11·a = a8 ^ a2 ^ a
//	13·a = a8 ^ a4 ^ a
//	14·a = a8 ^ a4 ^ a2
func invMixColumns(s State) State {
	mulBy := func(v State, m byte) State {
		var out State
		cur := v
		for bit := byte(1); bit <= 8; bit <<= 1 {
			if m&bit != 0 {
				out = xorState(out, cur)
			}
			cur = xtime(cur)
		}
		return out
	}
	r1 := permute(s, rotRowPerms[1])
	r2 := permute(s, rotRowPerms[2])
	r3 := permute(s, rotRowPerms[3])
	return xorState(
		xorState(mulBy(s, 14), mulBy(r1, 11)),
		xorState(mulBy(r2, 13), mulBy(r3, 9)),
	)
}

// Decrypt decrypts one 16-byte block under a 16-byte key.
func Decrypt(block, key []byte) ([16]byte, error) {
	var out [16]byte
	if len(block) != BlockSize {
		return out, fmt.Errorf("bsaes: block length %d, want %d", len(block), BlockSize)
	}
	rk, err := ExpandKey(key)
	if err != nil {
		return out, err
	}
	var rkSlices [11]State
	for r := range rk {
		rkSlices[r] = Slice(rk[r][:])
	}

	s := xorState(Slice(block), rkSlices[10])
	s = permute(s, invShiftRowsPerm)
	s = invSubBytes(s)
	for r := 9; r >= 1; r-- {
		s = xorState(s, rkSlices[r])
		s = invMixColumns(s)
		s = permute(s, invShiftRowsPerm)
		s = invSubBytes(s)
	}
	s = xorState(s, rkSlices[0])
	copy(out[:], s.Unslice())
	return out, nil
}
