// Package histo provides the small statistics toolkit the experiments
// use: cycle histograms (rendered like the paper's Figure 6), and
// distribution summaries for benchmark tables.
package histo

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram buckets integer samples (cycle counts) into fixed-width bins.
type Histogram struct {
	BinWidth int64
	bins     map[int64]int // bin start → count
	samples  []int64
}

// New returns a histogram with the given bin width (minimum 1).
func New(binWidth int64) *Histogram {
	if binWidth < 1 {
		binWidth = 1
	}
	return &Histogram{BinWidth: binWidth, bins: make(map[int64]int)}
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	bin := v / h.BinWidth * h.BinWidth
	if v < 0 && v%h.BinWidth != 0 {
		bin -= h.BinWidth
	}
	h.bins[bin]++
	h.samples = append(h.samples, v)
}

// N returns the sample count.
func (h *Histogram) N() int { return len(h.samples) }

// Bins returns (start, count) pairs in ascending order.
func (h *Histogram) Bins() (starts []int64, counts []int) {
	for b := range h.bins {
		starts = append(starts, b)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	counts = make([]int, len(starts))
	for i, b := range starts {
		counts[i] = h.bins[b]
	}
	return starts, counts
}

// Summary holds distribution statistics.
type Summary struct {
	N                int
	Min, Max, Median int64
	Mean, Stddev     float64
}

// Summarize computes distribution statistics.
func (h *Histogram) Summarize() Summary {
	return Summarize(h.samples)
}

// Summarize computes statistics over raw samples.
func Summarize(samples []int64) Summary {
	var s Summary
	s.N = len(samples)
	if s.N == 0 {
		return s
	}
	sorted := append([]int64(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s.Min, s.Max = sorted[0], sorted[s.N-1]
	s.Median = sorted[s.N/2]
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
	}
	s.Mean = sum / float64(s.N)
	var sq float64
	for _, v := range sorted {
		d := float64(v) - s.Mean
		sq += d * d
	}
	s.Stddev = math.Sqrt(sq / float64(s.N))
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%d median=%d max=%d mean=%.1f stddev=%.1f",
		s.N, s.Min, s.Median, s.Max, s.Mean, s.Stddev)
}

// Render draws labeled side-by-side histograms as ASCII, in the spirit of
// the paper's Figure 6 (frequency of runtimes per guess type). Counts are
// normalized to percentages per series.
func Render(series map[string]*Histogram, width int) string {
	if width <= 0 {
		width = 40
	}
	names := make([]string, 0, len(series))
	for n := range series {
		names = append(names, n)
	}
	sort.Strings(names)

	// Shared bar scale across series, so side-by-side heights compare.
	maxPct := 0.0
	for _, n := range names {
		h := series[n]
		if h.N() == 0 {
			continue
		}
		_, counts := h.Bins()
		for _, c := range counts {
			if pct := 100 * float64(c) / float64(h.N()); pct > maxPct {
				maxPct = pct
			}
		}
	}
	if maxPct == 0 {
		maxPct = 1
	}

	var out strings.Builder
	for _, n := range names {
		h := series[n]
		fmt.Fprintf(&out, "%s (%s)\n", n, h.Summarize())
		if h.N() == 0 {
			continue // no samples: nothing to normalize against
		}
		// Bin ranges are labeled with this series' own width — series may
		// legitimately differ in BinWidth, and a shared width would
		// mislabel every range but one.
		starts, counts := h.Bins()
		for i, b := range starts {
			pct := 100 * float64(counts[i]) / float64(h.N())
			bar := strings.Repeat("#", int(pct/maxPct*float64(width))+1)
			fmt.Fprintf(&out, "  [%6d, %6d) %6.1f%% %s\n", b, b+h.BinWidth, pct, bar)
		}
	}
	return out.String()
}
