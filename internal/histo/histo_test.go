package histo

import (
	"strings"
	"testing"
)

func TestBinning(t *testing.T) {
	h := New(10)
	for _, v := range []int64{0, 5, 9, 10, 19, 25} {
		h.Add(v)
	}
	starts, counts := h.Bins()
	want := map[int64]int{0: 3, 10: 2, 20: 1}
	if len(starts) != 3 {
		t.Fatalf("bins = %v %v", starts, counts)
	}
	for i, s := range starts {
		if counts[i] != want[s] {
			t.Errorf("bin %d count = %d, want %d", s, counts[i], want[s])
		}
	}
}

func TestNegativeBinning(t *testing.T) {
	h := New(10)
	h.Add(-1)
	h.Add(-10)
	h.Add(-11)
	starts, counts := h.Bins()
	if len(starts) != 2 || starts[0] != -20 || counts[0] != 1 || starts[1] != -10 || counts[1] != 2 {
		t.Errorf("negative bins: %v %v", starts, counts)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]int64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.Mean != 22 {
		t.Errorf("mean = %v", s.Mean)
	}
	if s.Stddev <= 0 {
		t.Errorf("stddev = %v", s.Stddev)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary")
	}
}

func TestMinBinWidth(t *testing.T) {
	h := New(0)
	if h.BinWidth != 1 {
		t.Errorf("BinWidth = %d", h.BinWidth)
	}
}

func TestRender(t *testing.T) {
	correct, incorrect := New(50), New(50)
	for i := 0; i < 20; i++ {
		correct.Add(14000 + int64(i))
		incorrect.Add(14200 + int64(i))
	}
	out := Render(map[string]*Histogram{"Correct": correct, "Incorrect": incorrect}, 30)
	for _, frag := range []string{"Correct", "Incorrect", "#", "14000", "14200"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	// Alphabetical series order: Correct before Incorrect.
	if strings.Index(out, "Correct") > strings.Index(out, "Incorrect") {
		t.Error("series not sorted")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render(map[string]*Histogram{"empty": New(10)}, 0)
	if !strings.Contains(out, "empty") {
		t.Errorf("render: %q", out)
	}
}

// Regression: Render labelled every series' bins with a single bin width,
// so mixed-width series printed wrong interval bounds. Each series must be
// labelled with its own BinWidth.
func TestRenderPerSeriesBinWidth(t *testing.T) {
	narrow, wide := New(10), New(64)
	narrow.Add(15) // bin [10, 20)
	wide.Add(100)  // bin [64, 128)
	out := Render(map[string]*Histogram{"narrow": narrow, "wide": wide}, 20)
	if !strings.Contains(out, "10") || !strings.Contains(out, "20)") {
		t.Errorf("narrow series bounds wrong:\n%s", out)
	}
	if !strings.Contains(out, "64") || !strings.Contains(out, "128)") {
		t.Errorf("wide series bounds wrong:\n%s", out)
	}
	if strings.Contains(out, "74)") { // 10+64: the cross-width artifact
		t.Errorf("narrow bin labelled with wide series' width:\n%s", out)
	}
}

// Regression: an empty series alongside a populated one must not divide by
// a zero sample count (NaN percentages) or emit bogus bars.
func TestRenderEmptyAlongsidePopulated(t *testing.T) {
	full := New(10)
	full.Add(5)
	out := Render(map[string]*Histogram{"empty": New(10), "full": full}, 20)
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into render:\n%s", out)
	}
	if !strings.Contains(out, "full") || !strings.Contains(out, "empty") {
		t.Errorf("series headers missing:\n%s", out)
	}
}
