package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCfg() Config {
	return Config{Name: "t", Sets: 4, Ways: 2, LineSize: 64, HitLatency: 2, Policy: LRU}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Sets: 3, Ways: 1, LineSize: 64, HitLatency: 1},
		{Sets: 4, Ways: 0, LineSize: 64, HitLatency: 1},
		{Sets: 4, Ways: 1, LineSize: 48, HitLatency: 1},
		{Sets: 4, Ways: 1, LineSize: 64, HitLatency: 0},
		{Sets: 0, Ways: 1, LineSize: 64, HitLatency: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
	if _, err := New(smallCfg()); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestSetMapping(t *testing.T) {
	c := MustNew(smallCfg())
	if got := c.SetOf(0); got != 0 {
		t.Errorf("SetOf(0) = %d", got)
	}
	if got := c.SetOf(64); got != 1 {
		t.Errorf("SetOf(64) = %d", got)
	}
	if got := c.SetOf(64 * 4); got != 0 {
		t.Errorf("SetOf(256) = %d (wraps)", got)
	}
	if got := c.LineAddr(0x1234); got != 0x1200 {
		t.Errorf("LineAddr = %#x", got)
	}
}

func TestFillLookupEvict(t *testing.T) {
	c := MustNew(smallCfg())
	if c.Lookup(0x100) {
		t.Error("lookup on empty cache hit")
	}
	c.Fill(0x100, false)
	if !c.Lookup(0x100) {
		t.Error("miss after fill")
	}
	if !c.Contains(0x13f) {
		t.Error("Contains should match any address on the line")
	}
	if !c.Evict(0x100) {
		t.Error("evict reported absent")
	}
	if c.Contains(0x100) {
		t.Error("present after evict")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := MustNew(smallCfg()) // 4 sets x 2 ways, 64B lines: set stride 256
	a, b, d := uint64(0), uint64(0x100), uint64(0x200)
	c.Fill(a, false)
	c.Fill(b, false)
	c.Lookup(a) // a is now MRU
	victim, evicted := c.Fill(d, false)
	if !evicted || victim != b {
		t.Errorf("victim = %#x (evicted=%v), want %#x", victim, evicted, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Error("wrong set contents after LRU eviction")
	}
}

func TestTreePLRUEvictsUntouched(t *testing.T) {
	cfg := smallCfg()
	cfg.Ways = 4
	cfg.Policy = TreePLRU
	c := MustNew(cfg)
	addrs := []uint64{0, 0x100, 0x200, 0x300} // all map to set 0
	for _, a := range addrs {
		c.Fill(a, false)
	}
	// Touch the left-subtree ways (0, 1); the PLRU bits now point at the
	// right subtree, where way 2 is the pseudo-LRU leaf (fill of way 3
	// pointed its subtree bit back at way 2).
	c.Lookup(addrs[0])
	c.Lookup(addrs[1])
	victim, evicted := c.Fill(0x400, false)
	if !evicted {
		t.Fatal("expected eviction")
	}
	if victim != addrs[2] {
		t.Errorf("PLRU victim = %#x, want %#x", victim, addrs[2])
	}
	// A subsequent touch of way 2 flips the victim to way 3's replacement
	// ... which is now 0x400; touching 0x400 sends the victim left.
	c.Lookup(0x400)
	victim, evicted = c.Fill(0x500, false)
	if !evicted {
		t.Fatal("expected second eviction")
	}
	if victim == 0x400 {
		t.Errorf("PLRU evicted the just-touched line")
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	mk := func() *Cache {
		cfg := smallCfg()
		cfg.Policy = Random
		cfg.Seed = 99
		return MustNew(cfg)
	}
	c1, c2 := mk(), mk()
	seq := []uint64{0, 0x100, 0x200, 0x300, 0x400, 0x500}
	for _, a := range seq {
		c1.Fill(a, false)
		c2.Fill(a, false)
	}
	for _, a := range seq {
		if c1.Contains(a) != c2.Contains(a) {
			t.Errorf("same-seed caches diverge at %#x", a)
		}
	}
}

func TestStats(t *testing.T) {
	c := MustNew(smallCfg())
	c.Lookup(0x40) // miss
	c.Fill(0x40, false)
	c.Lookup(0x40) // hit
	c.Fill(0x40+0x100, false)
	c.Fill(0x40+0x200, false) // evicts
	if c.Stats().Hits != 1 || c.Stats().Misses != 1 || c.Stats().Evictions != 1 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

func TestPrefetchedStats(t *testing.T) {
	c := MustNew(smallCfg())
	c.Fill(0x40, true)
	if c.Stats().PrefetchFills != 1 {
		t.Errorf("PrefetchFills = %d", c.Stats().PrefetchFills)
	}
	c.Lookup(0x40)
	if c.Stats().PrefetchHits != 1 {
		t.Errorf("PrefetchHits = %d", c.Stats().PrefetchHits)
	}
	c.Lookup(0x40)
	if c.Stats().PrefetchHits != 1 {
		t.Errorf("PrefetchHits counted twice: %d", c.Stats().PrefetchHits)
	}
}

func TestSetContents(t *testing.T) {
	c := MustNew(smallCfg())
	c.Fill(0x100, false)
	c.Fill(0x500, false) // same set (set 0 at stride 0x100... set= (0x100>>6)&3 = 0)
	got := c.SetContents(c.SetOf(0x100))
	if len(got) != 2 {
		t.Fatalf("SetContents = %#v", got)
	}
}

// TestContainsMatchesFillHistory property-checks presence tracking: after
// a random sequence of fills/evicts with no capacity pressure (one line
// per set max), Contains must mirror a reference map.
func TestContainsMatchesFillHistory(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := Config{Name: "p", Sets: 64, Ways: 8, LineSize: 64, HitLatency: 1, Policy: LRU}
		c := MustNew(cfg)
		ref := map[uint64]bool{}
		for i, op := range ops {
			// Constrain to 32 distinct lines in distinct sets: no evictions.
			line := uint64(op%32) * 64
			if i%3 == 0 {
				c.Evict(line)
				delete(ref, line)
			} else {
				c.Fill(line, false)
				ref[line] = true
			}
		}
		for l := uint64(0); l < 32; l++ {
			if c.Contains(l*64) != ref[l*64] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFlushAll(t *testing.T) {
	c := MustNew(smallCfg())
	for i := uint64(0); i < 8; i++ {
		c.Fill(i*64, false)
	}
	c.FlushAll()
	for i := uint64(0); i < 8; i++ {
		if c.Contains(i * 64) {
			t.Errorf("line %#x survived FlushAll", i*64)
		}
	}
}

// Regression: Fill's refresh path must keep the prefetched mark honest.
// A demand refresh clears it (the line is demand-touched); a prefetch
// refresh of a demand-resident line must NOT set it — the refresh path
// counts no PrefetchFill, so a later Lookup would invent a PrefetchHit
// and PrefetchHits could exceed PrefetchFills.
func TestFillRefreshUpdatesPrefetchedMark(t *testing.T) {
	c := MustNew(smallCfg())
	c.Fill(0x40, true)
	c.Fill(0x40, false) // demand refresh clears the mark
	c.Lookup(0x40)
	if c.Stats().PrefetchHits != 0 {
		t.Errorf("demand-refreshed line counted as prefetch hit: %+v", c.Stats())
	}

	c = MustNew(smallCfg())
	c.Fill(0x80, false)
	c.Fill(0x80, true) // prefetch refresh of a demand-resident line
	c.Lookup(0x80)
	if got := c.Stats(); got.PrefetchHits != 0 {
		t.Errorf("prefetch refresh of a demand line invented a hit: %+v", got)
	}

	// A genuinely prefetch-filled line refreshed by another prefetch still
	// counts its (single) hit, and the books balance.
	c = MustNew(smallCfg())
	c.Fill(0xc0, true)
	c.Fill(0xc0, true)
	c.Lookup(0xc0)
	got := c.Stats()
	if got.PrefetchHits != 1 {
		t.Errorf("prefetch-filled line lost its hit: %+v", got)
	}
	if got.PrefetchHits > got.PrefetchFills {
		t.Errorf("PrefetchHits %d exceeds PrefetchFills %d", got.PrefetchHits, got.PrefetchFills)
	}
}

// Regression for the accounting invariant directly: no fill/refresh
// sequence may drive PrefetchHits above PrefetchFills.
func TestPrefetchHitsNeverExceedFills(t *testing.T) {
	c := MustNew(smallCfg())
	for i := 0; i < 4; i++ {
		c.Fill(0x40, false) // demand fill
		c.Fill(0x40, true)  // prefetch refresh (the old bug set the mark here)
		c.Lookup(0x40)
	}
	got := c.Stats()
	if got.PrefetchHits > got.PrefetchFills {
		t.Errorf("PrefetchHits %d exceeds PrefetchFills %d after refresh loop",
			got.PrefetchHits, got.PrefetchFills)
	}
	if got.PrefetchHits != 0 {
		t.Errorf("no prefetch ever filled this line, yet PrefetchHits = %d", got.PrefetchHits)
	}
}

// Regression: with a non-power-of-two way count the TreePLRU walk used
// complete-binary-heap bit indexing, which steps outside the bit array and
// can never select the last way as a victim.
func TestTreePLRUNonPowerOfTwoWays(t *testing.T) {
	cfg := smallCfg()
	cfg.Ways = 3
	cfg.Policy = TreePLRU
	c := MustNew(cfg)
	addrs := []uint64{0, 0x100, 0x200} // all in set 0
	for _, a := range addrs {
		c.Fill(a, false)
	}
	// Touch way 1 (right subtree: its bit points at way 2), then way 0
	// (root bit points right): the pseudo-LRU walk must land on way 2.
	c.Lookup(addrs[1])
	c.Lookup(addrs[0])
	victim, evicted := c.Fill(0x300, false)
	if !evicted || victim != addrs[2] {
		t.Errorf("victim = %#x (evicted=%v), want %#x", victim, evicted, addrs[2])
	}
	if err := c.CheckReplacementState(); err != nil {
		t.Errorf("CheckReplacementState: %v", err)
	}

	// The last way must be reachable as a victim under plain filling, for
	// every irregular tree shape.
	for ways := 2; ways <= 9; ways++ {
		cfg.Ways = ways
		c := MustNew(cfg)
		for w := 0; w < ways; w++ {
			c.Fill(uint64(w)*0x100, false)
		}
		last := uint64(ways-1) * 0x100
		gone := false
		for i := ways; i < ways+3*ways && !gone; i++ {
			if v, ev := c.Fill(uint64(i)*0x100, false); ev && v == last {
				gone = true
			}
			if err := c.CheckReplacementState(); err != nil {
				t.Fatalf("ways=%d: %v", ways, err)
			}
		}
		if !gone {
			t.Errorf("ways=%d: last way's line never evicted (unreachable victim)", ways)
		}
	}
}
