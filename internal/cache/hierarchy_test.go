package cache

import "testing"

func testHier(t *testing.T, pbuf bool) *Hierarchy {
	t.Helper()
	cfg := DefaultHierConfig()
	cfg.PrefetchBuffer = pbuf
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyLatencies(t *testing.T) {
	h := testHier(t, false)
	cfg := h.Config()

	r := h.Access(0x1000, 0, false)
	if r.Latency != cfg.MemLatency || r.L1Hit || r.L2Hit {
		t.Errorf("cold access: %+v", r)
	}
	r = h.Access(0x1000, 0, false)
	if !r.L1Hit || r.Latency != cfg.L1.HitLatency {
		t.Errorf("L1 hit: %+v", r)
	}
	// Evict from L1 only: next access is an L2 hit.
	h.L1.Evict(0x1000)
	r = h.Access(0x1000, 0, false)
	if !r.L2Hit || r.Latency != cfg.L2.HitLatency {
		t.Errorf("L2 hit: %+v", r)
	}
}

func TestHierarchyConfigValidation(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.MemLatency = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("MemLatency=0 accepted")
	}
	cfg = DefaultHierConfig()
	cfg.L2.LineSize = 128
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("mismatched line sizes accepted")
	}
}

func TestPrefetchFillsBothLevels(t *testing.T) {
	h := testHier(t, false)
	h.Prefetch(0x2000)
	if !h.L1.Contains(0x2000) || !h.L2.Contains(0x2000) {
		t.Error("prefetch did not fill both levels")
	}
	if h.PrefetchRequests() != 1 {
		t.Errorf("PrefetchRequests = %d", h.PrefetchRequests())
	}
}

// TestPrefetchBufferBypassesL1 verifies the Section V-B3 behaviour the
// paper flags: a prefetch buffer keeps prefetches out of L1 but they still
// fill L2, so an attacker monitoring L2 keeps the channel.
func TestPrefetchBufferBypassesL1(t *testing.T) {
	h := testHier(t, true)
	h.Prefetch(0x2000)
	if h.L1.Contains(0x2000) {
		t.Error("prefetch with buffer must not fill L1")
	}
	if !h.L2.Contains(0x2000) {
		t.Error("prefetch with buffer must still fill L2 — the paper's point")
	}
	// Demand access is satisfied by the buffer and promotes into L1.
	r := h.Access(0x2000, 0, false)
	if !r.BufferHit {
		t.Errorf("expected buffer hit: %+v", r)
	}
	if !h.L1.Contains(0x2000) {
		t.Error("buffer hit should promote into L1")
	}
}

func TestPrefetchBufferFIFOEviction(t *testing.T) {
	cfg := DefaultHierConfig()
	cfg.PrefetchBuffer = true
	cfg.PrefetchBufferSize = 2
	h := MustNewHierarchy(cfg)
	h.Prefetch(0x1000)
	h.Prefetch(0x2000)
	h.Prefetch(0x3000) // evicts 0x1000 from the buffer
	if r := h.Access(0x1000, 0, false); r.BufferHit {
		t.Error("0x1000 should have been evicted from the buffer")
	}
	if r := h.Access(0x3000, 0, false); !r.BufferHit {
		t.Error("0x3000 should be buffered")
	}
}

func TestInclusiveFill(t *testing.T) {
	h := testHier(t, false)
	h.Access(0x40, 0, false)
	if !h.L1.Contains(0x40) || !h.L2.Contains(0x40) {
		t.Error("demand miss must fill both levels")
	}
}

func TestLatencyProbeDoesNotPerturb(t *testing.T) {
	h := testHier(t, false)
	h.Access(0x40, 0, false)
	before := h.L1.Stats()
	if got := h.Latency(0x40); got != h.Config().L1.HitLatency {
		t.Errorf("Latency = %d", got)
	}
	if got := h.Latency(0x123456); got != h.Config().MemLatency {
		t.Errorf("Latency cold = %d", got)
	}
	if h.L1.Stats() != before {
		t.Error("Latency probe changed stats")
	}
}

type recordingListener struct {
	addrs  []uint64
	writes int
}

func (r *recordingListener) OnAccess(addr uint64, data uint64, isWrite bool) {
	r.addrs = append(r.addrs, addr)
	if isWrite {
		r.writes++
	}
}

func TestListeners(t *testing.T) {
	h := testHier(t, false)
	rec := &recordingListener{}
	h.AddListener(rec)
	h.Access(0x10, 1, false)
	h.Access(0x20, 2, true)
	h.AccessSilent(0x30) // silent: no notification
	if len(rec.addrs) != 2 || rec.writes != 1 {
		t.Errorf("listener saw %v (writes=%d)", rec.addrs, rec.writes)
	}
}

func TestEvictAll(t *testing.T) {
	h := testHier(t, true)
	h.Access(0x40, 0, false)
	h.Prefetch(0x7000)
	h.EvictAll(0x40)
	h.EvictAll(0x7000)
	if h.L1.Contains(0x40) || h.L2.Contains(0x40) || h.L2.Contains(0x7000) {
		t.Error("EvictAll left lines behind")
	}
	if r := h.Access(0x7000, 0, false); r.BufferHit {
		t.Error("EvictAll left the prefetch buffer entry")
	}
}

func TestFlushAllHierarchy(t *testing.T) {
	h := testHier(t, true)
	h.Access(0x40, 0, false)
	h.Prefetch(0x80)
	h.FlushAll()
	if h.L1.Contains(0x40) || h.L2.Contains(0x40) || h.L2.Contains(0x80) {
		t.Error("FlushAll left lines")
	}
}

func TestCheckInclusiveDetectsViolation(t *testing.T) {
	h := MustNewHierarchy(DefaultHierConfig())
	h.Access(0x1000, 0, false)
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("clean hierarchy: %v", err)
	}
	// Break inclusivity by hand: drop the line from L2 only.
	h.L2.Evict(0x1000)
	if err := h.CheckInclusive(); err == nil {
		t.Error("L1-only line not flagged as an inclusivity violation")
	}
}

// Back-invalidation must preserve L2 ⊇ L1 under sustained eviction
// pressure, including through prefetches and an L2 policy different from
// L1's. SelfCheck validates after every operation; the test also probes
// directly at the end.
func TestBackInvalidationKeepsInclusivity(t *testing.T) {
	cfg := HierConfig{
		L1:         Config{Name: "L1", Sets: 2, Ways: 2, LineSize: 64, HitLatency: 1, Policy: LRU},
		L2:         Config{Name: "L2", Sets: 4, Ways: 3, LineSize: 64, HitLatency: 4, Policy: TreePLRU},
		MemLatency: 10,
		SelfCheck:  true,
	}
	h := MustNewHierarchy(cfg)
	x := uint64(12345)
	for i := 0; i < 800; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		a := (x >> 33) % (1 << 14)
		switch i % 5 {
		case 0:
			h.Prefetch(a)
		case 1:
			h.EvictAll(a)
		default:
			h.Access(a, uint64(i), i%2 == 0)
		}
		if err := h.InvariantError(); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("final state: %v", err)
	}
}
