// Package cache implements the set-associative cache models used by the
// simulator: single caches with pluggable replacement policies, and a
// two-level inclusive hierarchy with a fixed-latency memory behind it.
//
// The cache is a pure timing/presence model: data values live in package
// mem. That split mirrors how the paper reasons about channels — a cache
// leaks *which lines are present*, never their contents.
package cache

import (
	"fmt"
	"math/rand"

	"pandora/internal/obs"
)

// Policy selects a replacement policy.
type Policy uint8

const (
	// LRU evicts the least-recently-used way.
	LRU Policy = iota
	// Random evicts a uniformly random way (seeded, deterministic).
	Random
	// TreePLRU evicts following a binary pseudo-LRU tree.
	TreePLRU
)

func (p Policy) String() string {
	switch p {
	case LRU:
		return "lru"
	case Random:
		return "random"
	case TreePLRU:
		return "tree-plru"
	}
	return "policy?"
}

// Config describes one cache level.
type Config struct {
	Name       string
	Sets       int // power of two
	Ways       int
	LineSize   int // bytes, power of two
	HitLatency int // cycles
	Policy     Policy
	Seed       int64 // for Random replacement
}

func (c Config) validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: Sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: LineSize must be a positive power of two, got %d", c.Name, c.LineSize)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: Ways must be positive, got %d", c.Name, c.Ways)
	}
	if c.HitLatency <= 0 {
		return fmt.Errorf("cache %s: HitLatency must be positive, got %d", c.Name, c.HitLatency)
	}
	return nil
}

// Stats counts cache events. Counters live behind the Stats() getter and
// the obs registry (RegisterMetrics); only this package increments them.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	PrefetchFills uint64
	PrefetchHits  uint64 // demand accesses satisfied by a prefetched line
}

type line struct {
	valid      bool
	tag        uint64
	lastUse    uint64 // LRU timestamp
	prefetched bool   // filled by a prefetch, not yet demand-touched
}

// Cache is a single set-associative cache level.
type Cache struct {
	cfg   Config
	sets  [][]line
	plru  [][]bool // tree bits per set, len ways-1 (TreePLRU)
	rng   *rand.Rand
	tick  uint64
	stats Stats

	probe obs.Probe
	clock func() int64
	track obs.Track

	lineShift uint
	setMask   uint64
}

// Stats returns a copy of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// SetProbe attaches an event probe. clock supplies the current simulated
// cycle (the cache has no clock of its own); track labels this level's
// events. A nil probe keeps the hot path allocation- and branch-cheap.
func (c *Cache) SetProbe(p obs.Probe, clock func() int64, track obs.Track) {
	c.probe = p
	c.clock = clock
	c.track = track
}

// RegisterMetrics registers this level's counters under prefix.
func (c *Cache) RegisterMetrics(r *obs.Registry, prefix string) {
	r.CounterUint64(prefix+".hits", &c.stats.Hits)
	r.CounterUint64(prefix+".misses", &c.stats.Misses)
	r.CounterUint64(prefix+".evictions", &c.stats.Evictions)
	r.CounterUint64(prefix+".prefetch_fills", &c.stats.PrefetchFills)
	r.CounterUint64(prefix+".prefetch_hits", &c.stats.PrefetchHits)
}

// emit publishes one cache event; no-op (and allocation-free) when no
// probe is attached.
func (c *Cache) emit(k obs.Kind, addr uint64, detail string) {
	if c.probe == nil {
		return
	}
	var cyc int64
	if c.clock != nil {
		cyc = c.clock()
	}
	c.probe.Emit(obs.Event{Cycle: cyc, Kind: k, Track: c.track, Addr: addr, Detail: detail})
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	c := &Cache{cfg: cfg}
	c.sets = make([][]line, cfg.Sets)
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	if cfg.Policy == TreePLRU {
		c.plru = make([][]bool, cfg.Sets)
		for i := range c.plru {
			c.plru[i] = make([]bool, maxInt(cfg.Ways-1, 1))
		}
	}
	c.rng = rand.New(rand.NewSource(cfg.Seed))
	for l := cfg.LineSize; l > 1; l >>= 1 {
		c.lineShift++
	}
	c.setMask = uint64(cfg.Sets - 1)
	return c, nil
}

// MustNew is New that panics on config error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// SetOf returns the set index addr maps to.
func (c *Cache) SetOf(addr uint64) int {
	return int((addr >> c.lineShift) & c.setMask)
}

// tagOf returns the tag for addr.
func (c *Cache) tagOf(addr uint64) uint64 {
	return addr >> c.lineShift / uint64(c.cfg.Sets)
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr >> c.lineShift << c.lineShift
}

// Contains reports whether the line holding addr is present. It does not
// update replacement state (a pure probe, for assertions and analysis, not
// a hardware operation).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.SetOf(addr), c.tagOf(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			return true
		}
	}
	return false
}

// Lookup performs a demand access: on hit it updates replacement state and
// returns true; on miss it returns false without filling (the hierarchy
// decides fills). evictedLine reports the address of a line displaced by
// Fill, not Lookup, so it is absent here.
func (c *Cache) Lookup(addr uint64) bool {
	c.tick++
	set, tag := c.SetOf(addr), c.tagOf(addr)
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			c.stats.Hits++
			if ln.prefetched {
				c.stats.PrefetchHits++
				ln.prefetched = false
				c.emit(obs.KindCacheHit, addr, "prefetched")
			} else {
				c.emit(obs.KindCacheHit, addr, "")
			}
			c.touch(set, i)
			return true
		}
	}
	c.stats.Misses++
	c.emit(obs.KindCacheMiss, addr, "")
	return false
}

// Fill inserts the line holding addr, evicting per policy if needed. It
// returns the line-aligned address of the victim and whether one was
// evicted. prefetched marks the line as prefetch-filled for stats.
func (c *Cache) Fill(addr uint64, prefetched bool) (victim uint64, evicted bool) {
	c.tick++
	set, tag := c.SetOf(addr), c.tagOf(addr)
	// Already present: refresh. A demand re-fill clears the prefetched
	// mark (the line is demand-touched now), but a prefetch re-fill of a
	// demand-resident line must NOT set it: the line's presence was
	// already earned by demand, and marking it would let a later Lookup
	// invent a PrefetchHit for a line no prefetch brought in —
	// PrefetchHits could exceed PrefetchFills, since the refresh path
	// never counts a fill.
	for i := range c.sets[set] {
		ln := &c.sets[set][i]
		if ln.valid && ln.tag == tag {
			ln.prefetched = ln.prefetched && prefetched
			c.touch(set, i)
			return 0, false
		}
	}
	fillDetail := ""
	if prefetched {
		fillDetail = "prefetch"
	}
	// Free way?
	for i := range c.sets[set] {
		if !c.sets[set][i].valid {
			c.sets[set][i] = line{valid: true, tag: tag, prefetched: prefetched}
			c.touch(set, i)
			if prefetched {
				c.stats.PrefetchFills++
			}
			c.emit(obs.KindCacheFill, c.LineAddr(addr), fillDetail)
			return 0, false
		}
	}
	// Evict.
	w := c.victimWay(set)
	old := c.sets[set][w]
	c.sets[set][w] = line{valid: true, tag: tag, prefetched: prefetched}
	c.touch(set, w)
	c.stats.Evictions++
	if prefetched {
		c.stats.PrefetchFills++
	}
	victim = c.addrOf(set, old.tag)
	c.emit(obs.KindCacheEvict, victim, "")
	c.emit(obs.KindCacheFill, c.LineAddr(addr), fillDetail)
	return victim, true
}

// Evict removes the line containing addr if present, returning whether it
// was. Models back-invalidation (inclusive hierarchies) and test setup.
func (c *Cache) Evict(addr uint64) bool {
	set, tag := c.SetOf(addr), c.tagOf(addr)
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			c.sets[set][i] = line{}
			c.emit(obs.KindCacheEvict, c.LineAddr(addr), "invalidate")
			return true
		}
	}
	return false
}

// FlushAll invalidates every line.
func (c *Cache) FlushAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = line{}
		}
	}
}

// addrOf reconstructs the line address for (set, tag).
func (c *Cache) addrOf(set int, tag uint64) uint64 {
	return (tag*uint64(c.cfg.Sets) + uint64(set)) << c.lineShift
}

// SetContents returns the line addresses currently valid in set, for
// analysis and tests (most-recently-used order is not implied).
func (c *Cache) SetContents(set int) []uint64 {
	var out []uint64
	for _, ln := range c.sets[set] {
		if ln.valid {
			out = append(out, c.addrOf(set, ln.tag))
		}
	}
	return out
}

func (c *Cache) touch(set, way int) {
	switch c.cfg.Policy {
	case LRU, Random:
		c.sets[set][way].lastUse = c.tick
	case TreePLRU:
		// Walk root→leaf; at each node set the bit to point away from
		// the touched way (true = victim side is right).
		//
		// The tree over a non-power-of-two way count is irregular (a left
		// subtree of floor(n/2) leaves, a right subtree of the rest), so
		// the bits use subtree-offset indexing — a subtree of n leaves
		// owns n-1 consecutive bits, root first — rather than complete-
		// binary-heap indexing, which walks out of the array for such
		// trees (left child of the root's right child is at heap index 5
		// of a 2-bit array for Ways=3).
		bits := c.plru[set]
		n := c.cfg.Ways
		node, lo := 0, 0
		for n > 1 {
			half := n / 2
			if way < lo+half {
				bits[node] = true
				node++ // left subtree root
				n = half
			} else {
				bits[node] = false
				node += half // skip the left subtree's half-1 bits
				lo += half
				n -= half
			}
		}
	}
}

// CheckReplacementState verifies the cache's replacement metadata: no set
// holds two valid lines with the same tag, every LRU timestamp is bounded
// by the access tick (timestamps are assigned from the monotone tick, so a
// larger value means corrupted state), and for TreePLRU the victim walk of
// every set stays inside the bit array and lands on a legal way — the
// property the heap-indexed walk violated for non-power-of-two way counts.
// It is a pure probe used by the invariant-checking harness.
func (c *Cache) CheckReplacementState() error {
	for s := range c.sets {
		seen := make(map[uint64]int, c.cfg.Ways)
		for w, ln := range c.sets[s] {
			if !ln.valid {
				continue
			}
			if prev, dup := seen[ln.tag]; dup {
				return fmt.Errorf("cache %s: set %d ways %d and %d both hold tag %#x",
					c.cfg.Name, s, prev, w, ln.tag)
			}
			seen[ln.tag] = w
			if ln.lastUse > c.tick {
				return fmt.Errorf("cache %s: set %d way %d lastUse %d ahead of tick %d",
					c.cfg.Name, s, w, ln.lastUse, c.tick)
			}
		}
		if c.cfg.Policy == TreePLRU {
			bits := c.plru[s]
			n := c.cfg.Ways
			node, lo := 0, 0
			for n > 1 {
				if node < 0 || node >= len(bits) {
					return fmt.Errorf("cache %s: set %d tree-plru walk node %d outside [0,%d)",
						c.cfg.Name, s, node, len(bits))
				}
				half := n / 2
				if bits[node] {
					node += half
					lo += half
					n -= half
				} else {
					node++
					n = half
				}
			}
			if lo < 0 || lo >= c.cfg.Ways {
				return fmt.Errorf("cache %s: set %d tree-plru victim way %d outside [0,%d)",
					c.cfg.Name, s, lo, c.cfg.Ways)
			}
		}
	}
	return nil
}

// CorruptLineTag flips a high tag bit of one valid line, chosen
// deterministically by seed — a seeded structural fault for the
// fault-injection campaign. The flipped bit is far above any address the
// simulator touches, so in a hierarchy the corrupted line is guaranteed
// absent from the other level and CheckInclusive must object. Returns
// false when the cache holds no valid line to corrupt (the injector
// retries later).
func (c *Cache) CorruptLineTag(seed int64) bool {
	target := c.nthValidLine(seed)
	if target == nil {
		return false
	}
	target.tag ^= 1 << 40
	return true
}

// CorruptReplacementState corrupts replacement metadata for one set,
// chosen deterministically by seed. For LRU/Random a valid line's
// timestamp is pushed ahead of the access tick — illegal state that
// CheckReplacementState must flag. For TreePLRU one tree bit is flipped:
// the state stays structurally legal but the victim choice changes, a
// pure timing fault only a reference-run comparison can see. Returns
// false when there is nothing to corrupt yet.
func (c *Cache) CorruptReplacementState(seed int64) bool {
	if c.cfg.Policy == TreePLRU {
		bits := c.plru[int(uint64(seed)%uint64(len(c.plru)))]
		bit := int(uint64(seed) >> 16 % uint64(len(bits)))
		bits[bit] = !bits[bit]
		return true
	}
	target := c.nthValidLine(seed)
	if target == nil {
		return false
	}
	target.lastUse = c.tick + 1_000_000
	return true
}

// nthValidLine returns the seed-selected valid line, or nil if none.
func (c *Cache) nthValidLine(seed int64) *line {
	valid := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				valid++
			}
		}
	}
	if valid == 0 {
		return nil
	}
	n := int(uint64(seed) % uint64(valid))
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				if n == 0 {
					return &c.sets[s][w]
				}
				n--
			}
		}
	}
	return nil
}

func (c *Cache) victimWay(set int) int {
	switch c.cfg.Policy {
	case Random:
		return c.rng.Intn(c.cfg.Ways)
	case TreePLRU:
		// Follow the bits toward the pseudo-LRU leaf, mirroring touch's
		// subtree-offset indexing (the heap-indexed walk used previously
		// read past the bit array for non-power-of-two way counts and
		// could never select the last way as victim).
		bits := c.plru[set]
		n := c.cfg.Ways
		node, lo := 0, 0
		for n > 1 {
			half := n / 2
			if bits[node] {
				node += half
				lo += half
				n -= half
			} else {
				node++
				n = half
			}
		}
		return lo
	default: // LRU
		best, bestUse := 0, ^uint64(0)
		for i, ln := range c.sets[set] {
			if ln.lastUse < bestUse {
				best, bestUse = i, ln.lastUse
			}
		}
		return best
	}
}
