package cache

import (
	"fmt"

	"pandora/internal/obs"
)

// HierConfig describes a two-level inclusive hierarchy with a flat memory
// latency behind L2.
type HierConfig struct {
	L1, L2     Config
	MemLatency int // cycles for an access that misses everywhere

	// PrefetchBuffer, when true, directs prefetch fills at a small buffer
	// in front of L1 instead of L1 itself (Section V-B3 of the paper).
	// Prefetches still fill L2 — which is exactly why the paper argues
	// prefetch buffers do not mitigate the DMP attack: the receiver just
	// monitors L2.
	PrefetchBuffer     bool
	PrefetchBufferSize int // entries; default 8

	// SelfCheck makes the hierarchy verify its structural invariants —
	// L2 ⊇ L1 inclusivity (prefetch-buffer entries included) and per-level
	// replacement-state sanity — after every mutating operation. The first
	// violation is latched and reported by InvariantError; the pipeline's
	// invariant harness polls it and attaches the violating cycle. Off by
	// default: the checks walk both caches and cost far more than the
	// operations they guard.
	SelfCheck bool
}

// DefaultHierConfig returns the configuration used by most experiments:
// 32-set 4-way 64B L1 (2-cycle hit), 256-set 8-way L2 (12-cycle hit),
// 100-cycle memory.
func DefaultHierConfig() HierConfig {
	return HierConfig{
		L1:         Config{Name: "L1D", Sets: 32, Ways: 4, LineSize: 64, HitLatency: 2, Policy: LRU},
		L2:         Config{Name: "L2", Sets: 256, Ways: 8, LineSize: 64, HitLatency: 12, Policy: LRU},
		MemLatency: 100,
	}
}

// AccessResult describes where a demand access was satisfied.
type AccessResult struct {
	Latency int
	L1Hit   bool
	L2Hit   bool
	// BufferHit reports the access was satisfied by the prefetch buffer.
	BufferHit bool
}

// Hierarchy is an inclusive two-level cache with prefetch support.
type Hierarchy struct {
	cfg HierConfig
	L1  *Cache
	L2  *Cache

	pbuf []uint64 // FIFO of line addresses in the prefetch buffer

	// Listeners observe demand accesses; the data memory-dependent
	// prefetcher registers itself here.
	listeners []AccessListener

	// invErr latches the first invariant violation found by SelfCheck.
	invErr error

	probe obs.Probe
	clock func() int64

	demandAccesses   uint64
	prefetchRequests uint64
}

// DemandAccesses returns the total demand accesses made through Access.
func (h *Hierarchy) DemandAccesses() uint64 { return h.demandAccesses }

// PrefetchRequests returns the total prefetch requests.
func (h *Hierarchy) PrefetchRequests() uint64 { return h.prefetchRequests }

// SetProbe attaches an event probe to both levels (tracks L1/L2) and to
// the prefetch path. clock supplies the current simulated cycle.
func (h *Hierarchy) SetProbe(p obs.Probe, clock func() int64) {
	h.probe = p
	h.clock = clock
	h.L1.SetProbe(p, clock, obs.TrackL1)
	h.L2.SetProbe(p, clock, obs.TrackL2)
}

// RegisterMetrics registers both levels' counters plus the hierarchy's
// own under "l1.", "l2." and "hier.".
func (h *Hierarchy) RegisterMetrics(r *obs.Registry) {
	h.L1.RegisterMetrics(r, "l1")
	h.L2.RegisterMetrics(r, "l2")
	r.CounterUint64("hier.demand_accesses", &h.demandAccesses)
	r.CounterUint64("hier.prefetch_requests", &h.prefetchRequests)
}

// AccessListener observes every demand access made through the hierarchy.
// addr is the byte address; data is the value the access returned (loads)
// or wrote (stores); isWrite distinguishes the two. The IMP trains on
// loads: it needs both the value returned to the core and the addresses
// the core subsequently touches.
type AccessListener interface {
	OnAccess(addr uint64, data uint64, isWrite bool)
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierConfig) (*Hierarchy, error) {
	if cfg.MemLatency <= 0 {
		return nil, fmt.Errorf("cache: MemLatency must be positive, got %d", cfg.MemLatency)
	}
	if cfg.L1.LineSize != cfg.L2.LineSize {
		return nil, fmt.Errorf("cache: L1/L2 line sizes differ (%d vs %d)", cfg.L1.LineSize, cfg.L2.LineSize)
	}
	l1, err := New(cfg.L1)
	if err != nil {
		return nil, err
	}
	l2, err := New(cfg.L2)
	if err != nil {
		return nil, err
	}
	if cfg.PrefetchBuffer && cfg.PrefetchBufferSize == 0 {
		cfg.PrefetchBufferSize = 8
	}
	return &Hierarchy{cfg: cfg, L1: l1, L2: l2}, nil
}

// MustNewHierarchy is NewHierarchy that panics on config error.
func MustNewHierarchy(cfg HierConfig) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() HierConfig { return h.cfg }

// AddListener registers an access observer.
func (h *Hierarchy) AddListener(l AccessListener) {
	h.listeners = append(h.listeners, l)
}

// Access performs a demand access (timing only; data moves in package
// mem). data is the value read or written, forwarded to listeners so the
// IMP can train. Fills are inclusive: an L2 miss fills both levels.
func (h *Hierarchy) Access(addr uint64, data uint64, isWrite bool) AccessResult {
	h.demandAccesses++
	res := h.accessTiming(addr)
	for _, l := range h.listeners {
		l.OnAccess(addr, data, isWrite)
	}
	return res
}

// AccessSilent is Access without notifying listeners — used by hardware-
// internal accesses (the silent-store SS-Load, prefetcher pointer chases)
// that must not retrain the prefetcher on themselves.
func (h *Hierarchy) AccessSilent(addr uint64) AccessResult {
	return h.accessTiming(addr)
}

func (h *Hierarchy) accessTiming(addr uint64) AccessResult {
	if h.cfg.SelfCheck {
		defer h.selfCheck("access", addr)
	}
	if h.L1.Lookup(addr) {
		return AccessResult{Latency: h.cfg.L1.HitLatency, L1Hit: true}
	}
	// Prefetch buffer in front of L1.
	if h.cfg.PrefetchBuffer {
		la := h.L1.LineAddr(addr)
		for i, b := range h.pbuf {
			if b == la {
				h.pbuf = append(h.pbuf[:i], h.pbuf[i+1:]...)
				h.fillL1(addr)
				// Buffer hit costs an L2-ish latency: the buffer sits
				// beside L1 but off the critical path.
				return AccessResult{Latency: h.cfg.L1.HitLatency + 1, BufferHit: true}
			}
		}
	}
	if h.L2.Lookup(addr) {
		h.fillL1(addr)
		return AccessResult{Latency: h.cfg.L2.HitLatency, L2Hit: true}
	}
	h.fillL2(addr, false)
	h.fillL1(addr)
	return AccessResult{Latency: h.cfg.MemLatency}
}

// fillL2 inserts into L2 and enforces inclusion: a line evicted from L2
// is back-invalidated out of L1 (and the prefetch buffer).
func (h *Hierarchy) fillL2(addr uint64, prefetched bool) {
	victim, evicted := h.L2.Fill(addr, prefetched)
	if evicted {
		h.L1.Evict(victim)
		la := h.L1.LineAddr(victim)
		for i, b := range h.pbuf {
			if b == la {
				h.pbuf = append(h.pbuf[:i], h.pbuf[i+1:]...)
				break
			}
		}
	}
}

// fillL1 inserts into L1 (demand fill).
func (h *Hierarchy) fillL1(addr uint64) {
	h.L1.Fill(addr, false)
}

// Prefetch inserts the line holding addr as a prefetch. With a prefetch
// buffer configured, L1 is bypassed but L2 still fills.
func (h *Hierarchy) Prefetch(addr uint64) {
	h.prefetchRequests++
	if h.probe != nil {
		var cyc int64
		if h.clock != nil {
			cyc = h.clock()
		}
		h.probe.Emit(obs.Event{Cycle: cyc, Kind: obs.KindCachePrefetch, Track: obs.TrackPrefetch, Addr: h.L1.LineAddr(addr)})
	}
	if h.cfg.SelfCheck {
		defer h.selfCheck("prefetch", addr)
	}
	h.fillL2(addr, true)
	if h.cfg.PrefetchBuffer {
		la := h.L1.LineAddr(addr)
		for _, b := range h.pbuf {
			if b == la {
				return
			}
		}
		h.pbuf = append(h.pbuf, la)
		if len(h.pbuf) > h.cfg.PrefetchBufferSize {
			h.pbuf = h.pbuf[1:]
		}
		return
	}
	h.L1.Fill(addr, true)
}

// Latency returns the cycles a load of addr would take right now, without
// perturbing any state. Used by analysis code, never by modeled hardware.
func (h *Hierarchy) Latency(addr uint64) int {
	if h.L1.Contains(addr) {
		return h.cfg.L1.HitLatency
	}
	if h.L2.Contains(addr) {
		return h.cfg.L2.HitLatency
	}
	return h.cfg.MemLatency
}

// CheckInclusive verifies L2 ⊇ L1: every valid L1 line, and every line
// parked in the prefetch buffer, must be present in L2. A pure probe.
func (h *Hierarchy) CheckInclusive() error {
	l1 := h.L1.Config()
	for s := 0; s < l1.Sets; s++ {
		for _, la := range h.L1.SetContents(s) {
			if !h.L2.Contains(la) {
				return fmt.Errorf("cache: inclusivity broken: L1 line %#x absent from L2", la)
			}
		}
	}
	for _, la := range h.pbuf {
		if !h.L2.Contains(la) {
			return fmt.Errorf("cache: inclusivity broken: prefetch-buffer line %#x absent from L2", la)
		}
	}
	return nil
}

// CheckInvariants runs every structural check: inclusivity plus both
// levels' replacement-state sanity. A pure probe.
func (h *Hierarchy) CheckInvariants() error {
	if err := h.CheckInclusive(); err != nil {
		return err
	}
	if err := h.L1.CheckReplacementState(); err != nil {
		return err
	}
	return h.L2.CheckReplacementState()
}

// InvariantError returns the first violation latched by SelfCheck mode,
// or nil.
func (h *Hierarchy) InvariantError() error { return h.invErr }

// selfCheck latches the first invariant violation, tagged with the
// operation that exposed it.
func (h *Hierarchy) selfCheck(op string, addr uint64) {
	if h.invErr != nil {
		return
	}
	if err := h.CheckInvariants(); err != nil {
		h.invErr = fmt.Errorf("after %s of %#x: %w", op, addr, err)
	}
}

// CorruptL1Line flips a tag bit of one valid L1 line (fault injection):
// the corrupted line is no longer backed by L2, so inclusivity checking
// must object. Returns false when L1 is still empty.
func (h *Hierarchy) CorruptL1Line(seed int64) bool {
	return h.L1.CorruptLineTag(seed)
}

// CorruptL1Replacement corrupts L1 replacement metadata (fault
// injection). Returns false when there is nothing to corrupt yet.
func (h *Hierarchy) CorruptL1Replacement(seed int64) bool {
	return h.L1.CorruptReplacementState(seed)
}

// EvictAll removes the line containing addr from every level.
func (h *Hierarchy) EvictAll(addr uint64) {
	h.L1.Evict(addr)
	h.L2.Evict(addr)
	la := h.L1.LineAddr(addr)
	for i, b := range h.pbuf {
		if b == la {
			h.pbuf = append(h.pbuf[:i], h.pbuf[i+1:]...)
			break
		}
	}
}

// FlushAll empties every level and the prefetch buffer.
func (h *Hierarchy) FlushAll() {
	h.L1.FlushAll()
	h.L2.FlushAll()
	h.pbuf = nil
}
